# CI entry points. `make ci` is what the pipeline runs; the individual
# targets are for local iteration.

GO ?= go

.PHONY: ci fmt-check vet build test race examples bench clean

ci: fmt-check vet build test race examples

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-check every example binary without running it.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null "./$$d" || exit 1; \
	done

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

clean:
	$(GO) clean ./...
