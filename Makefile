# CI entry points. `make ci` is what the pipeline runs; the individual
# targets are for local iteration.

GO ?= go

# Coverage floor for `make cover`: fail the build when total statement
# coverage drops below this (baseline at the time the gate landed was
# 74.8%; keep a small buffer for flaky branches).
COVER_FLOOR ?= 73.0

.PHONY: ci fmt-check vet staticcheck build test race examples serve-smoke dist-smoke load-smoke fuzz-smoke bench alloc-gate cover clean

# cover runs the full (shuffled) suite with a coverage profile, so ci
# does not also run the plain `test` target — that would execute the
# identical suite twice. `race` is a separate instrumented build.
ci: fmt-check vet staticcheck build cover race examples alloc-gate serve-smoke dist-smoke load-smoke

# staticcheck runs when the binary is available (CI installs it; local
# boxes without it skip with a notice instead of failing the build).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# fuzz-smoke gives every fuzz target a short budget: parser (text query
# language), wire decoder, sparse builder/CSR invariants, shard hash
# ring (determinism / balance / minimal movement). CI runs it after
# make ci.
fuzz-smoke:
	$(GO) test ./query -run '^$$' -fuzz FuzzParseQuery -fuzztime 20s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzDecodeRequest -fuzztime 20s
	$(GO) test ./internal/sparse -run '^$$' -fuzz FuzzBuilderCSR -fuzztime 15s
	$(GO) test ./internal/sparse -run '^$$' -fuzz FuzzFromRows -fuzztime 10s
	$(GO) test ./internal/shard -run '^$$' -fuzz FuzzRing -fuzztime 15s
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzDecodeStoreV2 -fuzztime 15s

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest-parent) execution order so
# inter-test state dependencies cannot hide; failures print the seed to
# reproduce.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# cover runs the (shuffled) suite with statement coverage and fails
# below COVER_FLOOR, so the conformance/shard suites' coverage is
# tracked commit over commit instead of silently eroding. Test output
# is kept and replayed on failure — it carries the failing test and the
# shuffle seed needed to reproduce.
cover:
	@$(GO) test -shuffle=on -coverprofile=.cover.out ./... > .cover.log 2>&1 || \
		{ cat .cover.log; rm -f .cover.out .cover.log; exit 1; }
	@rm -f .cover.log
	@total=$$($(GO) tool cover -func=.cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f .cover.out; \
	echo "coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

# Compile-check every example binary without running it.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null "./$$d" || exit 1; \
	done

# serve-smoke exercises the HTTP serving stack for real: generate a
# dataset, start ustserve, query it remotely (ustquery -remote must
# match in-process output byte for byte), run a curl query + subscribe
# round-trip, scrape /metrics, and shut down gracefully.
serve-smoke:
	GO="$(GO)" ./scripts/serve_smoke.sh

# dist-smoke stands up a real multi-process deployment — two worker
# ustserve processes and a coordinator fronting them — and diffs remote
# queries (including a count aggregate) byte-for-byte against
# in-process evaluation, checks /readyz and role metrics, kills a
# worker, and shuts the fleet down gracefully.
dist-smoke:
	GO="$(GO)" ./scripts/dist_smoke.sh

# load-smoke runs the open-loop traffic harness (cmd/ustload) briefly
# against every deployment shape — in-process, in-process -shards 4,
# and a real ustserve -shards 4 over HTTP — then checks the
# BENCH_LOAD.json artifact, the `ustload analyze` round-trip, the
# `benchjson -load` gate, and the server's per-endpoint latency
# histograms.
load-smoke:
	GO="$(GO)" ./scripts/load_smoke.sh

# bench writes BENCH.json (machine-readable, via cmd/benchjson) while
# echoing the usual human-readable lines, so the perf trajectory is
# trackable commit over commit. Two-step through a temp file so a
# benchmark failure fails the target (a pipe would mask go test's exit).
bench:
	@$(GO) test -bench=. -benchtime=20x -benchmem -run '^$$' -json . ./internal/core ./internal/store > .bench.jsonl || { cat .bench.jsonl; rm -f .bench.jsonl; exit 1; }
	@$(GO) run ./cmd/benchjson -o BENCH.json < .bench.jsonl
	@rm -f .bench.jsonl

# alloc-gate re-runs the ingest benchmark and fails ci when its
# allocs/op regresses more than 20% past the BENCH.json baseline — the
# single-copy WithObservation + column-reuse ingest path stays cheap by
# construction, not by convention. Missing baseline entries (fresh
# checkout, renamed benchmark) pass with a notice.
alloc-gate:
	@$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkIngest' -benchmem -benchtime=100x -json > .gate.jsonl || { cat .gate.jsonl; rm -f .gate.jsonl; exit 1; }
	@$(GO) run ./cmd/benchjson -o '' -baseline BENCH.json -gate BenchmarkIngest < .gate.jsonl
	@rm -f .gate.jsonl

clean:
	$(GO) clean ./...
