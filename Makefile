# CI entry points. `make ci` is what the pipeline runs; the individual
# targets are for local iteration.

GO ?= go

.PHONY: ci fmt-check vet staticcheck build test race examples serve-smoke fuzz-smoke bench clean

ci: fmt-check vet staticcheck build test race examples serve-smoke

# staticcheck runs when the binary is available (CI installs it; local
# boxes without it skip with a notice instead of failing the build).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# fuzz-smoke gives every fuzz target a short budget: parser (text query
# language), wire decoder, sparse builder/CSR invariants. CI runs it
# after make ci.
fuzz-smoke:
	$(GO) test ./query -run '^$$' -fuzz FuzzParseQuery -fuzztime 20s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzDecodeRequest -fuzztime 20s
	$(GO) test ./internal/sparse -run '^$$' -fuzz FuzzBuilderCSR -fuzztime 15s
	$(GO) test ./internal/sparse -run '^$$' -fuzz FuzzFromRows -fuzztime 10s

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-check every example binary without running it.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null "./$$d" || exit 1; \
	done

# serve-smoke exercises the HTTP serving stack for real: generate a
# dataset, start ustserve, query it remotely (ustquery -remote must
# match in-process output byte for byte), run a curl query + subscribe
# round-trip, scrape /metrics, and shut down gracefully.
serve-smoke:
	GO="$(GO)" ./scripts/serve_smoke.sh

# bench writes BENCH.json (machine-readable, via cmd/benchjson) while
# echoing the usual human-readable lines, so the perf trajectory is
# trackable commit over commit. Two-step through a temp file so a
# benchmark failure fails the target (a pipe would mask go test's exit).
bench:
	@$(GO) test -bench=. -benchtime=1x -run '^$$' -json . > .bench.jsonl || { cat .bench.jsonl; rm -f .bench.jsonl; exit 1; }
	@$(GO) run ./cmd/benchjson -o BENCH.json < .bench.jsonl
	@rm -f .bench.jsonl

clean:
	$(GO) clean ./...
