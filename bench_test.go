package ust_test

// One benchmark per table/figure of the paper's evaluation (Section
// VIII), plus ablation benchmarks for the design decisions called out in
// DESIGN.md. The figures' full parameter sweeps live in cmd/ustbench
// (and internal/exp); the benchmarks here measure one representative
// point per curve so `go test -bench=.` stays tractable while still
// exposing every shape (who wins, by roughly what factor).
//
// Mapping:
//
//	BenchmarkFig8a*  — Fig 8(a): MC vs OB vs QB, small DB
//	BenchmarkFig8b*  — Fig 8(b): OB vs QB, larger DB and state space
//	BenchmarkFig9a*  — Fig 9(a): query start time sweep, synthetic
//	BenchmarkFig9b*  — Fig 9(b): Munich-like road network
//	BenchmarkFig9c*  — Fig 9(c): North-America-like road network
//	BenchmarkFig9d   — Fig 9(d): accuracy experiment (exact vs indep)
//	BenchmarkFig10a* — Fig 10(a): ∃/∀/k predicates, object-based
//	BenchmarkFig10b* — Fig 10(b): ∃/∀/k predicates, query-based
//	BenchmarkFig11a* — Fig 11(a): max_step sweep
//	BenchmarkFig11b* — Fig 11(b): state_spread sweep
//	BenchmarkTableI  — Table I: synthetic generator at defaults
//	BenchmarkAblation* — augmented-matrix materialization vs implicit

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"ust"
	"ust/client"
	"ust/internal/agg"
	"ust/internal/core"
	"ust/internal/dist"
	"ust/internal/gen"
	"ust/internal/markov"
	"ust/internal/network"
	"ust/internal/service"
	"ust/internal/shard"
)

// benchDB builds a synthetic database of Table I shape.
func benchDB(b *testing.B, numObjects, numStates int) *ust.Database {
	b.Helper()
	p := gen.Defaults(42)
	p.NumObjects = numObjects
	p.NumStates = numStates
	ds, err := gen.Generate(p)
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	db := ust.NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		if err := db.AddSimple(i, o); err != nil {
			b.Fatalf("add: %v", err)
		}
	}
	return db
}

func benchQuery(numStates int) ust.Query {
	w := gen.DefaultWindow()
	return ust.NewQuery(w.States(numStates), w.Times())
}

func runExists(b *testing.B, db *ust.Database, q ust.Query, s ust.Strategy, mcSamples int) {
	b.Helper()
	e := ust.NewEngine(db, ust.Options{Strategy: s, MonteCarloSamples: mcSamples})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exists(q); err != nil {
			b.Fatalf("Exists: %v", err)
		}
	}
}

// --- Figure 8(a): small database, all three algorithms. -----------------

func BenchmarkFig8aSmallStateSpace(b *testing.B) {
	for _, nStates := range []int{2000, 10000} {
		db := benchDB(b, 100, nStates)
		q := benchQuery(nStates)
		b.Run(fmt.Sprintf("states=%d/MC", nStates), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyMonteCarlo, 100)
		})
		b.Run(fmt.Sprintf("states=%d/OB", nStates), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyObjectBased, 0)
		})
		b.Run(fmt.Sprintf("states=%d/QB", nStates), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyQueryBased, 0)
		})
	}
}

// --- Figure 8(b): larger database and state space, OB vs QB. ------------

func BenchmarkFig8bLargeStateSpace(b *testing.B) {
	for _, nStates := range []int{10000, 50000} {
		db := benchDB(b, 1000, nStates)
		q := benchQuery(nStates)
		b.Run(fmt.Sprintf("states=%d/OB", nStates), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyObjectBased, 0)
		})
		b.Run(fmt.Sprintf("states=%d/QB", nStates), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyQueryBased, 0)
		})
	}
}

// --- Figure 9(a): query start time, synthetic. ---------------------------

func BenchmarkFig9aQueryStartSynthetic(b *testing.B) {
	db := benchDB(b, 200, 10000)
	w := gen.DefaultWindow()
	for _, h := range []int{10, 30, 50} {
		q := ust.NewQuery(w.States(10000), ust.Interval(h, h+5))
		b.Run(fmt.Sprintf("start=%d/OB", h), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyObjectBased, 0)
		})
		b.Run(fmt.Sprintf("start=%d/QB", h), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyQueryBased, 0)
		})
	}
}

// --- Figures 9(b)/9(c): road networks. -----------------------------------

func benchNetworkDB(b *testing.B, spec network.RoadNetworkSpec, numObjects int) (*ust.Database, []int) {
	b.Helper()
	g, err := network.Generate(spec)
	if err != nil {
		b.Fatalf("network: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	chain, err := markov.NewChain(g.TransitionMatrix(rng))
	if err != nil {
		b.Fatalf("chain: %v", err)
	}
	db := ust.NewDatabase(chain)
	for id := 0; id < numObjects; id++ {
		anchor := rng.Intn(g.NumNodes())
		if err := db.AddSimple(id, ust.PointDistribution(g.NumNodes(), anchor)); err != nil {
			b.Fatalf("add: %v", err)
		}
	}
	// Query region: BFS neighborhood of a node.
	region := []int{0}
	seen := map[int]bool{0: true}
	frontier := []int{0}
	for len(region) < 21 && len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			g.Successors(u, func(v int) {
				if !seen[v] && len(region) < 21 {
					seen[v] = true
					region = append(region, v)
					next = append(next, v)
				}
			})
		}
		frontier = next
	}
	return db, region
}

func benchNetworkFigure(b *testing.B, spec network.RoadNetworkSpec) {
	db, region := benchNetworkDB(b, spec, 200)
	for _, h := range []int{10, 30} {
		q := ust.NewQuery(region, ust.Interval(h, h+5))
		b.Run(fmt.Sprintf("start=%d/OB", h), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyObjectBased, 0)
		})
		b.Run(fmt.Sprintf("start=%d/QB", h), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyQueryBased, 0)
		})
	}
}

func BenchmarkFig9bQueryStartMunich(b *testing.B) {
	benchNetworkFigure(b, network.MunichSpec(3).Scaled(10))
}

func BenchmarkFig9cQueryStartNA(b *testing.B) {
	benchNetworkFigure(b, network.NorthAmericaSpec(3).Scaled(10))
}

// --- Figure 9(d): accuracy (not a runtime plot; measures both models). ---

func BenchmarkFig9dAccuracy(b *testing.B) {
	db := benchDB(b, 100, 10000)
	e := core.NewEngine(db, core.Options{})
	w := gen.DefaultWindow()
	q := ust.NewQuery(w.States(10000), ust.Interval(20, 29))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range db.Objects() {
			if _, err := e.ExistsOB(o, q); err != nil {
				b.Fatal(err)
			}
			if _, err := e.ExistsIndependent(o, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 10: predicates under OB and QB. -------------------------------

func benchPredicates(b *testing.B, strategy ust.Strategy) {
	db := benchDB(b, 100, 10000)
	w := gen.DefaultWindow()
	for _, winLen := range []int{2, 6, 10} {
		q := ust.NewQuery(w.States(10000), ust.Interval(20, 20+winLen-1))
		e := ust.NewEngine(db, ust.Options{Strategy: strategy})
		b.Run(fmt.Sprintf("win=%d/exists", winLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Exists(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("win=%d/forall", winLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.ForAll(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("win=%d/ktimes", winLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.KTimes(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig10aPredicatesOB(b *testing.B) {
	benchPredicates(b, ust.StrategyObjectBased)
}

func BenchmarkFig10bPredicatesQB(b *testing.B) {
	benchPredicates(b, ust.StrategyQueryBased)
}

// --- Figure 11: locality parameter sweeps. --------------------------------

func BenchmarkFig11aMaxStep(b *testing.B) {
	for _, maxStep := range []int{10, 40, 100} {
		p := gen.Defaults(42)
		p.NumObjects, p.NumStates, p.MaxStep = 100, 10000, maxStep
		ds, err := gen.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		db := ust.NewDatabase(ds.Chain)
		for i, o := range ds.Objects {
			db.AddSimple(i, o)
		}
		q := benchQuery(p.NumStates)
		b.Run(fmt.Sprintf("max_step=%d/OB", maxStep), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyObjectBased, 0)
		})
		b.Run(fmt.Sprintf("max_step=%d/QB", maxStep), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyQueryBased, 0)
		})
	}
}

func BenchmarkFig11bStateSpread(b *testing.B) {
	for _, spread := range []int{2, 10, 20} {
		p := gen.Defaults(42)
		p.NumObjects, p.NumStates, p.StateSpread = 100, 10000, spread
		ds, err := gen.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		db := ust.NewDatabase(ds.Chain)
		for i, o := range ds.Objects {
			db.AddSimple(i, o)
		}
		q := benchQuery(p.NumStates)
		b.Run(fmt.Sprintf("spread=%d/OB", spread), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyObjectBased, 0)
		})
		b.Run(fmt.Sprintf("spread=%d/QB", spread), func(b *testing.B) {
			runExists(b, db, q, ust.StrategyQueryBased, 0)
		})
	}
}

// --- Table I: the synthetic generator itself. ------------------------------

func BenchmarkTableIGenerator(b *testing.B) {
	p := gen.Defaults(42)
	p.NumObjects, p.NumStates = 1000, 20000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		if _, err := gen.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations. ------------------------------------------------------------

// BenchmarkAblationAugmented quantifies DESIGN.md decision #2: applying
// the absorbing-state operator implicitly vs materializing the paper's
// M−/M+ matrices per query.
func BenchmarkAblationAugmented(b *testing.B) {
	p := gen.Defaults(42)
	p.NumObjects, p.NumStates = 1, 5000
	ds, err := gen.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	db := ust.NewDatabase(ds.Chain)
	db.AddSimple(0, ds.Objects[0])
	o := db.Objects()[0]
	e := core.NewEngine(db, core.Options{})
	q := benchQuery(p.NumStates)
	init := ds.Objects[0].Clone()
	init.Vec().Normalize()

	b.Run("implicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.ExistsOB(o, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ExistsOBAugmented(ds.Chain, q.States, q.Times, init.Vec(), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationKTimesAugmented measures the paper's blown-up
// (|T□|+1)·|S| matrices for PSTkQ against the memory-efficient C(t)
// algorithm of Section VII.
func BenchmarkAblationKTimesAugmented(b *testing.B) {
	p := gen.Defaults(42)
	p.NumObjects, p.NumStates = 1, 2000
	ds, err := gen.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	db := ust.NewDatabase(ds.Chain)
	db.AddSimple(0, ds.Objects[0])
	o := db.Objects()[0]
	e := core.NewEngine(db, core.Options{})
	q := benchQuery(p.NumStates)
	init := ds.Objects[0].Clone()
	init.Vec().Normalize()

	b.Run("efficient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.KTimesOB(o, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.KTimesOBAugmented(ds.Chain, q.States, q.Times, init.Vec(), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAliasSampler compares the O(out-degree) linear-scan
// transition sampler against the O(1) alias-table sampler across row
// weights. The crossover matters: Table I rows are light (spread 5-20)
// and favor the cache-friendly linear scan; heavy rows favor the alias
// table.
func BenchmarkAblationAliasSampler(b *testing.B) {
	const steps = 50
	for _, cfg := range []struct{ spread, maxStep int }{
		{20, 40},
		{200, 400},
	} {
		p := gen.Defaults(42)
		p.NumObjects, p.NumStates = 1, 5000
		p.StateSpread, p.MaxStep = cfg.spread, cfg.maxStep
		ds, err := gen.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		init := ds.Objects[0]
		b.Run(fmt.Sprintf("spread=%d/linear", cfg.spread), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				ds.Chain.SamplePath(init.Vec(), steps, rng)
			}
		})
		b.Run(fmt.Sprintf("spread=%d/alias", cfg.spread), func(b *testing.B) {
			s := markov.NewSampler(ds.Chain)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SamplePath(init, steps, rng)
			}
		})
	}
}

// BenchmarkAblationParallelOB measures the goroutine fan-out of the
// object-based strategy.
func BenchmarkAblationParallelOB(b *testing.B) {
	db := benchDB(b, 500, 10000)
	e := core.NewEngine(db, core.Options{})
	q := benchQuery(10000)
	for _, workers := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.ExistsOBParallel(q, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationThresholdPruning measures the early-termination
// forward pass (Section V-C pruning) against the exact pass.
func BenchmarkAblationThresholdPruning(b *testing.B) {
	db := benchDB(b, 100, 10000)
	e := core.NewEngine(db, core.Options{})
	q := benchQuery(10000)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, o := range db.Objects() {
				if _, err := e.ExistsOB(o, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("threshold=0.1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, o := range db.Objects() {
				if _, _, err := e.ExistsOBBounds(o, q, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- Kernel layer: score cache and filter–refine (this repo's ---------
// --- engine-wide additions beyond the paper). -------------------------

// BenchmarkScoreCacheRepeatedEvaluate measures a repeated identical
// PST∃Q: cold computes the backward sweep, cached serves it from the
// engine-wide score cache, uncached recomputes per request
// (WithCache(false)). The cached/uncached gap is the sweep cost the
// cache amortizes across repeated and standing queries.
func BenchmarkScoreCacheRepeatedEvaluate(b *testing.B) {
	db := benchDB(b, 1000, 10000)
	q := benchQuery(10000)
	req := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q))
	ctx := context.Background()

	b.Run("uncached", func(b *testing.B) {
		e := ust.NewEngine(db, ust.Options{})
		r := req.With(ust.WithCache(false))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Evaluate(ctx, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := ust.NewEngine(db, ust.Options{})
		if _, err := e.Evaluate(ctx, req); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Evaluate(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFilterRefineTopK measures ranked retrieval with and without
// the filter stage on a Table I workload, for both exact strategies.
// The filter prunes objects whose reachability envelope cannot touch
// the window; the reported refined/total metric is the exact-evaluation
// funnel.
func BenchmarkFilterRefineTopK(b *testing.B) {
	db := benchDB(b, 1000, 10000)
	q := benchQuery(10000)
	ctx := context.Background()
	for _, strat := range []ust.Strategy{ust.StrategyQueryBased, ust.StrategyObjectBased} {
		for _, filtered := range []bool{false, true} {
			name := fmt.Sprintf("%v/filter=%v", strat, filtered)
			b.Run(name, func(b *testing.B) {
				e := ust.NewEngine(db, ust.Options{})
				req := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q),
					ust.WithTopK(20), ust.WithStrategy(strat), ust.WithFilterRefine(filtered))
				var refined, candidates int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resp, err := e.Evaluate(ctx, req)
					if err != nil {
						b.Fatal(err)
					}
					refined, candidates = resp.Filter.Refined, resp.Filter.Candidates
				}
				b.StopTimer()
				if filtered && candidates > 0 {
					b.ReportMetric(float64(refined), "refined/op")
					b.ReportMetric(float64(candidates), "candidates/op")
				}
			})
		}
	}
}

// BenchmarkFilterRefineThreshold is the thresholded companion: retrieve
// every object with P∃ ≥ τ, pruned vs unpruned.
func BenchmarkFilterRefineThreshold(b *testing.B) {
	db := benchDB(b, 1000, 10000)
	q := benchQuery(10000)
	ctx := context.Background()
	for _, filtered := range []bool{false, true} {
		b.Run(fmt.Sprintf("filter=%v", filtered), func(b *testing.B) {
			e := ust.NewEngine(db, ust.Options{})
			req := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q),
				ust.WithThreshold(0.1), ust.WithStrategy(ust.StrategyObjectBased),
				ust.WithFilterRefine(filtered))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Evaluate(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeHTTPQuery measures the HTTP round-trip overhead of the
// serving stack: client → wire encode → ustserve handler → service
// (admission + single-flight) → engine → wire decode, against the
// in-process Evaluate baseline on the same engine. The delta is the
// cost of going over the wire.
func BenchmarkServeHTTPQuery(b *testing.B) {
	db := benchDB(b, 1000, 10000)
	q := benchQuery(10000)
	ctx := context.Background()
	req := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q), ust.WithTopK(20))

	b.Run("inprocess", func(b *testing.B) {
		e := ust.NewEngine(db, ust.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Evaluate(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		svc := ust.NewService(ust.ServiceConfig{})
		defer svc.Close()
		if err := svc.Create("bench", db, nil); err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(ust.NewServiceHandler(svc))
		defer ts.Close()
		c := client.New(ts.URL, ts.Client())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Query(ctx, "bench", req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http-stream", func(b *testing.B) {
		svc := ust.NewService(ust.ServiceConfig{})
		defer svc.Close()
		if err := svc.Create("bench", db, nil); err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(ust.NewServiceHandler(svc))
		defer ts.Close()
		c := client.New(ts.URL, ts.Client())
		streamReq := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			err := c.QueryStream(ctx, "bench", streamReq, func(r ust.Result) error {
				n++
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != db.Len() {
				b.Fatalf("streamed %d of %d", n, db.Len())
			}
		}
	})
}

// BenchmarkSingleFlightDedup measures what coalescing buys: C identical
// concurrent requests against a cold-ish engine, with the single-flight
// layer folding them into one evaluation versus each running its own.
// The dedup ratio is visible in the reported evaluations/op metric.
// --- Batch evaluation: the multi-query optimizer. -----------------------
//
// A dashboard-style workload: 32 requests over sliding, heavily
// overlapping windows of the same region (plus forall/threshold/top-k
// variants). "sequential" answers them with one Evaluate call each on a
// cold engine; "batched" hands the same slice to EvaluateBatch, whose
// optimizer deduplicates shared sweeps and runs the rest through the
// fused block kernel — one transition-matrix traversal per time step
// for all requests together. Results are byte-identical; the ratio of
// the two numbers in BENCH.json is the optimizer's win.

func batchWorkload(numStates int) []ust.Request {
	var reqs []ust.Request
	region := benchQuery(numStates).States
	for i := 0; i < 32; i++ {
		lo := 5 + i
		opts := []ust.RequestOption{ust.WithStates(region), ust.WithTimeRange(lo, 64)}
		pred := ust.PredicateExists
		switch i % 4 {
		case 1:
			pred = ust.PredicateForAll
		case 2:
			opts = append(opts, ust.WithThreshold(0.3))
		case 3:
			opts = append(opts, ust.WithTopK(10))
		}
		reqs = append(reqs, ust.NewRequest(pred, opts...))
	}
	return reqs
}

func BenchmarkEvaluateBatch(b *testing.B) {
	db := benchDB(b, 500, 10000)
	reqs := batchWorkload(10000)
	ctx := context.Background()

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := ust.NewEngine(db, ust.Options{})
			for _, req := range reqs {
				if _, err := e.Evaluate(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := ust.NewEngine(db, ust.Options{})
			if _, err := e.EvaluateBatch(ctx, reqs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExprEvaluate measures the augmented compound-expression
// sweep against the naive (and incorrect) alternative a client would
// otherwise run: one request per atom. The compound evaluation pays
// 2^m vectors per sweep but answers correlations exactly.
func BenchmarkExprEvaluate(b *testing.B) {
	db := benchDB(b, 1000, 10000)
	region := benchQuery(10000).States
	atomA := ust.ExistsAtom(ust.WithStates(region), ust.WithTimeRange(10, 15))
	atomB := ust.ForAllAtom(ust.WithStates(region[:len(region)/2]), ust.WithTimeRange(18, 22))
	expr := ust.And(atomA, ust.Not(atomB))
	ctx := context.Background()

	b.Run("compound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := ust.NewEngine(db, ust.Options{})
			if _, err := e.Evaluate(ctx, ust.NewExprRequest(expr)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-atom-naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := ust.NewEngine(db, ust.Options{})
			for _, x := range []ust.Expr{atomA, atomB} {
				if _, err := e.Evaluate(ctx, ust.NewExprRequest(x)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkSingleFlightDedup(b *testing.B) {
	// The shared request is deliberately expensive (uncached, unfiltered
	// object-based scan): evaluations must outlive the scheduler's
	// preemption quantum so concurrent callers genuinely overlap — that
	// is what single-flight deduplicates.
	db := benchDB(b, 500, 5000)
	q := benchQuery(5000)
	ctx := context.Background()
	req := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q),
		ust.WithStrategy(ust.StrategyObjectBased),
		ust.WithCache(false), ust.WithFilterRefine(false))
	const clients = 16

	b.Run("coalesced", func(b *testing.B) {
		svc := ust.NewService(ust.ServiceConfig{})
		defer svc.Close()
		if err := svc.Create("bench", db, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for cidx := 0; cidx < clients; cidx++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := svc.Evaluate(ctx, "bench", req); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
		b.StopTimer()
		st := svc.Stats()
		if b.N > 0 {
			b.ReportMetric(float64(st.Evaluations)/float64(b.N), "evaluations/op")
			b.ReportMetric(float64(st.Coalesced)/float64(b.N), "coalesced/op")
		}
	})
	b.Run("independent", func(b *testing.B) {
		e := ust.NewEngine(db, ust.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for cidx := 0; cidx < clients; cidx++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := e.Evaluate(ctx, req); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
		b.StopTimer()
		b.ReportMetric(float64(clients), "evaluations/op")
	})
}

// BenchmarkShardedEvaluate is the scale-out headline: the |D|=1000,
// |S|=10000 scan answered by one engine vs the 8-shard router over the
// same database. The object-based scan is the parallel workload — per-
// object forward passes fan out across shards, so wall clock approaches
// single/min(shards, GOMAXPROCS) on multi-core hardware (on a 1-CPU
// runner the concurrency cannot help and the two are expected to tie).
// The query-based pair measures the router's overhead floor: one sweep
// computed once fleet-wide through the shared cache plus the merge, so
// sharded QB must stay within noise of the single engine.
func BenchmarkShardedEvaluate(b *testing.B) {
	db := benchDB(b, 1000, 10000)
	q := benchQuery(10000)
	ctx := context.Background()
	scanOB := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q),
		ust.WithStrategy(ust.StrategyObjectBased))
	scanQB := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q),
		ust.WithStrategy(ust.StrategyQueryBased))

	run := func(b *testing.B, eval ust.Evaluator, req ust.Request) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := eval.Evaluate(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Results) != 1000 {
				b.Fatalf("scan returned %d results", len(resp.Results))
			}
		}
	}
	b.Run("ob/single", func(b *testing.B) {
		run(b, ust.NewEngine(db, ust.Options{}), scanOB)
	})
	b.Run("ob/shards=8", func(b *testing.B) {
		r, err := ust.NewShardedEngine(db, 8, ust.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run(b, r, scanOB)
	})
	b.Run("qb/single", func(b *testing.B) {
		run(b, ust.NewEngine(db, ust.Options{}), scanQB)
	})
	b.Run("qb/shards=8", func(b *testing.B) {
		r, err := ust.NewShardedEngine(db, 8, ust.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run(b, r, scanQB)
	})
}

// BenchmarkAggregateCount is the aggregate-subsystem headline at the
// |D|=1000, |S|=10000 scale of Fig 8(b): the count-distribution query
// count(exists(...)) answered four ways. "naive" folds the per-object
// factors left to right with no certificate pruning — the O(|D|²)
// textbook construction of the Poisson-binomial PMF. "engine" is the
// shipped path: filter–refine certificates bound each factor before the
// exact kernel runs, and the balanced divide-and-conquer fold keeps the
// convolution near O(|D| log²|D|). The sharded pair pins the router's
// merge cost: factors are pooled across shards and re-folded through
// the identical canonical tree, so shards=8 must match single up to the
// fan-out overhead (and beat it on multi-core hardware).
func BenchmarkAggregateCount(b *testing.B) {
	db := benchDB(b, 1000, 10000)
	q := benchQuery(10000)
	ctx := context.Background()
	req := ust.NewAggRequest(ust.PredicateExists,
		ust.AggSpec{Kind: ust.AggCount}, ust.WithWindow(q))

	b.Run("naive-loop", func(b *testing.B) {
		e := core.NewEngine(db, core.Options{})
		raw := core.NewAggRequest(core.PredicateExists,
			core.AggSpec{Kind: core.AggCount},
			core.WithWindow(q), core.WithFilterRefine(false))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fs, err := e.AggregateFactors(ctx, raw)
			if err != nil {
				b.Fatal(err)
			}
			pmf := agg.NaiveCountPMF(fs.Factors)
			if len(pmf) != 1001 {
				b.Fatalf("pmf has %d entries", len(pmf))
			}
		}
	})
	run := func(b *testing.B, eval ust.Evaluator) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := eval.Evaluate(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Agg == nil || len(resp.Agg.PMF) != 1001 {
				b.Fatalf("bad aggregate: %+v", resp.Agg)
			}
		}
	}
	b.Run("engine", func(b *testing.B) {
		run(b, ust.NewEngine(db, ust.Options{}))
	})
	b.Run("shards=1", func(b *testing.B) {
		r, err := ust.NewShardedEngine(db, 1, ust.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run(b, r)
	})
	b.Run("shards=8", func(b *testing.B) {
		r, err := ust.NewShardedEngine(db, 8, ust.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run(b, r)
	})
}

// BenchmarkDistributedEvaluate prices the process boundary: the
// |D|=1000, |S|=10000 scan answered by the in-process 2-shard router vs
// a 2-worker distributed deployment (real worker services behind
// localhost HTTP, coordinator-side dist router, results through the
// wire codec). The delta over inproc is pure deployment overhead —
// JSON encode/decode plus localhost round-trips — since both rings run
// the identical shard evaluation underneath; the query-based pair
// additionally rides the networked sweep lease tier, so its floor
// includes one /v1/sweeps round-trip per distinct sweep.
func BenchmarkDistributedEvaluate(b *testing.B) {
	db := benchDB(b, 1000, 10000)
	q := benchQuery(10000)
	ctx := context.Background()
	scanOB := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q),
		ust.WithStrategy(ust.StrategyObjectBased))
	scanQB := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q),
		ust.WithStrategy(ust.StrategyQueryBased))

	newDistRouter := func(b *testing.B) *shard.Router {
		b.Helper()
		coord := service.New(service.Config{Role: "coordinator"})
		coordTS := httptest.NewServer(service.NewHandler(coord))
		b.Cleanup(func() { coord.Close(); coordTS.Close() })
		clients := make([]*client.Client, 2)
		for i := range clients {
			w := service.New(service.Config{
				Role:    "worker",
				Options: core.Options{Sweeps: dist.NewSweepClient(coordTS.URL, nil)},
			})
			ts := httptest.NewServer(service.NewHandler(w))
			b.Cleanup(func() { w.Close(); ts.Close() })
			clients[i] = client.NewWithConfig(ts.URL, client.Config{HTTPClient: ts.Client()})
		}
		r, err := dist.NewRouter(db, 2, core.Options{}, "bench", clients)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { r.Close() })
		return r
	}
	run := func(b *testing.B, eval ust.Evaluator, req ust.Request) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := eval.Evaluate(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Results) != 1000 {
				b.Fatalf("scan returned %d results", len(resp.Results))
			}
		}
	}
	b.Run("ob/inproc=2", func(b *testing.B) {
		r, err := ust.NewShardedEngine(db, 2, ust.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run(b, r, scanOB)
	})
	b.Run("ob/workers=2", func(b *testing.B) {
		run(b, newDistRouter(b), scanOB)
	})
	b.Run("qb/inproc=2", func(b *testing.B) {
		r, err := ust.NewShardedEngine(db, 2, ust.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run(b, r, scanQB)
	})
	b.Run("qb/workers=2", func(b *testing.B) {
		run(b, newDistRouter(b), scanQB)
	})
}
