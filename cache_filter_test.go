package ust_test

// Acceptance tests for the shared sweep-kernel layer on the paper's
// Table I synthetic workload: repeated identical requests must be served
// from the score cache, and the filter–refine path must answer ranked /
// thresholded queries with at least 2× fewer exact per-object
// evaluations than the unpruned path — byte-identically.

import (
	"context"
	"testing"

	"ust"
	"ust/internal/gen"
)

// tableIDB builds a scaled-down Table I database (same generator, same
// shape, smaller sizes so the test stays fast).
func tableIDB(t testing.TB, objects, states int) *ust.Database {
	t.Helper()
	p := gen.Defaults(7)
	p.NumObjects = objects
	p.NumStates = states
	ds, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	db := ust.NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		if err := db.AddSimple(i, o); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func tableIWindow() (states, times []int) {
	w := gen.DefaultWindow()
	return w.States(1 << 30), w.Times()
}

func sameResults(t *testing.T, label string, got, want []ust.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ObjectID != want[i].ObjectID || got[i].Prob != want[i].Prob {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
		if len(got[i].Dist) != len(want[i].Dist) {
			t.Fatalf("%s: result %d dist length differs", label, i)
		}
		for k := range want[i].Dist {
			if got[i].Dist[k] != want[i].Dist[k] {
				t.Fatalf("%s: result %d dist[%d] differs", label, i, k)
			}
		}
	}
}

func TestTableIRepeatedEvaluateServedFromCache(t *testing.T) {
	db := tableIDB(t, 300, 4000)
	e := ust.NewEngine(db, ust.Options{})
	states, times := tableIWindow()
	req := ust.NewRequest(ust.PredicateExists, ust.WithStates(states), ust.WithTimes(times))

	cold, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.Misses == 0 {
		t.Fatalf("cold evaluate reported no sweep computation: %+v", cold.Cache)
	}
	hot, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Cache.Misses != 0 || hot.Cache.Hits == 0 {
		t.Fatalf("repeated evaluate not served from cache: %+v", hot.Cache)
	}
	sameResults(t, "cached repeat", hot.Results, cold.Results)

	if stats := e.CacheStats(); stats.Hits == 0 || stats.Entries == 0 {
		t.Fatalf("engine cache stats empty after traffic: %+v", stats)
	}
}

func TestTableIFilterRefinePrunesAtLeastTwoFold(t *testing.T) {
	db := tableIDB(t, 400, 4000)
	e := ust.NewEngine(db, ust.Options{})
	states, times := tableIWindow()

	cases := []struct {
		name string
		opts []ust.RequestOption
	}{
		{"topk-qb", []ust.RequestOption{ust.WithTopK(20)}},
		{"topk-ob", []ust.RequestOption{ust.WithTopK(20), ust.WithStrategy(ust.StrategyObjectBased)}},
		{"threshold-qb", []ust.RequestOption{ust.WithThreshold(0.05)}},
		{"threshold-ob", []ust.RequestOption{ust.WithThreshold(0.05), ust.WithStrategy(ust.StrategyObjectBased)}},
	}
	for _, tc := range cases {
		opts := append([]ust.RequestOption{ust.WithStates(states), ust.WithTimes(times)}, tc.opts...)
		req := ust.NewRequest(ust.PredicateExists, opts...)
		pruned, err := e.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		exact, err := e.Evaluate(context.Background(), req.With(ust.WithFilterRefine(false)))
		if err != nil {
			t.Fatalf("%s exact: %v", tc.name, err)
		}
		sameResults(t, tc.name, pruned.Results, exact.Results)

		f := pruned.Filter
		if f.Candidates != db.Len() {
			t.Fatalf("%s: Candidates = %d, want %d", tc.name, f.Candidates, db.Len())
		}
		if f.Refined*2 > f.Candidates {
			t.Fatalf("%s: %d of %d candidates needed exact evaluation; want ≥2× pruning",
				tc.name, f.Refined, f.Candidates)
		}
	}
}
