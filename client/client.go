// Package client is the Go client for a ustserve server: the remote
// twin of ust.Engine.Evaluate. Requests travel as canonical wire JSON
// and results decode back to the exact float64 bits the server
// computed, so a remote Query returns byte-identical results to
// in-process evaluation of the same request.
//
//	c := client.New("http://localhost:8080", nil)
//	resp, err := c.Query(ctx, "fleet", ust.NewRequest(ust.PredicateExists,
//		ust.WithStates([]int{100, 101}), ust.WithTimeRange(20, 25)))
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"ust"
	"ust/internal/wire"
)

// Config tunes a Client beyond the defaults New applies.
type Config struct {
	// HTTPClient carries the transport; nil means http.DefaultClient,
	// unless a transport knob below is set, in which case New builds a
	// dedicated pooled transport.
	HTTPClient *http.Client
	// MaxIdleConnsPerHost widens the keep-alive connection pool toward
	// one host on the transport built when HTTPClient is nil (Go's
	// default keeps only 2 idle conns per host — an open-loop driver
	// firing hundreds of concurrent requests at one server would churn
	// through ephemeral ports without this).
	MaxIdleConnsPerHost int
	// ResponseHeaderTimeout bounds the wait for response headers per
	// attempt on the built transport. Streaming bodies are unaffected,
	// so subscriptions stay long-lived; per-request deadlines still come
	// from the caller's context. 0 means no transport-level bound.
	ResponseHeaderTimeout time.Duration
	// MaxRetries is the number of ADDITIONAL attempts after a failed
	// first one, applied only to idempotent requests (queries, factor
	// fetches, GETs) on transport errors and 5xx statuses. Ingest
	// (Observe, Track, CreateDataset, Import, Evict) is never retried —
	// a request that died mid-flight may still have been applied. 0
	// disables retrying.
	MaxRetries int
	// RetryBase is the first backoff delay; each further attempt doubles
	// it, capped at RetryMax, with ±25% jitter. Defaults: 50ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
}

// Client talks to one ustserve base URL. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	cfg  Config
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"). hc may be nil for http.DefaultClient. No
// retrying; use NewWithConfig for that.
func New(baseURL string, hc *http.Client) *Client {
	return NewWithConfig(baseURL, Config{HTTPClient: hc})
}

// NewWithConfig builds a client with explicit retry/transport settings.
func NewWithConfig(baseURL string, cfg Config) *Client {
	if cfg.HTTPClient == nil {
		if cfg.MaxIdleConnsPerHost > 0 || cfg.ResponseHeaderTimeout > 0 {
			perHost := cfg.MaxIdleConnsPerHost
			if perHost <= 0 {
				perHost = 2 // the net/http default
			}
			cfg.HTTPClient = &http.Client{Transport: &http.Transport{
				Proxy:                 http.ProxyFromEnvironment,
				MaxIdleConns:          max(100, 2*perHost),
				MaxIdleConnsPerHost:   perHost,
				IdleConnTimeout:       90 * time.Second,
				ResponseHeaderTimeout: cfg.ResponseHeaderTimeout,
			}}
		} else {
			cfg.HTTPClient = http.DefaultClient
		}
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: cfg.HTTPClient, cfg: cfg}
}

// APIError is a non-2xx server response: the HTTP status code plus the
// server's error message.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("client: server returned %d", e.Status)
}

// ServerStreamError is an error the server reported mid-stream: the
// evaluation itself failed on the server, as opposed to the connection
// being cut (which surfaces as a plain error). Evaluation is
// deterministic, so callers implementing replica failover must not
// retry a ServerStreamError elsewhere — it reproduces identically.
type ServerStreamError struct {
	Msg string
}

func (e *ServerStreamError) Error() string {
	return fmt.Sprintf("client: server error mid-stream: %s", e.Msg)
}

// apiError converts a non-2xx response into an *APIError carrying the
// server's message.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	e := &APIError{Status: resp.StatusCode}
	var eb wire.ErrorBody
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		e.Msg = eb.Error
	}
	return e
}

// attempt runs one HTTP exchange. body may be nil.
func (c *Client) attempt(ctx context.Context, method, path, contentType string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	return resp, nil
}

// retryable reports whether an attempt's failure may be retried:
// transport errors (connection refused, reset — the server may be
// restarting) and 5xx statuses. 4xx statuses are the caller's mistake
// and context expiry is the caller's deadline; neither retries.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	return true // transport-level failure
}

// do runs the exchange, retrying idempotent requests per the client's
// Config with exponential backoff and jitter.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, idempotent bool) (*http.Response, error) {
	retries := 0
	if idempotent {
		retries = c.cfg.MaxRetries
	}
	var lastErr error
	for att := 0; ; att++ {
		resp, err := c.attempt(ctx, method, path, contentType, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if att >= retries || !retryable(ctx, err) {
			return nil, lastErr
		}
		d := backoff(c.cfg.RetryBase, c.cfg.RetryMax, att)
		d = time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, lastErr
		case <-t.C:
		}
	}
}

// backoff is the exponential delay before retry attempt att: base·2^att
// saturated at limit. The shift is clamped — base<<att overflows
// time.Duration once att is large enough (a caller setting MaxRetries
// in the hundreds), and an overflowed negative/zero delay would turn
// backoff into a hot retry loop.
func backoff(base, limit time.Duration, att int) time.Duration {
	// base·2^att > limit ⟺ base > limit>>att (exact for positive ints;
	// Go shifts by ≥ 64 yield 0, so huge att saturates too).
	if att < 0 || base <= 0 || uint(att) > 62 || base > limit>>uint(att) {
		return limit
	}
	return base << uint(att)
}

func (c *Client) doJSON(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = data
	}
	resp, err := c.do(ctx, method, path, "application/json", body, idempotent)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil, true)
}

// Ready checks /readyz: nil exactly when the server finished its
// startup load and is not draining.
func (c *Client) Ready(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/readyz", nil, nil, true)
}

// Metrics fetches the raw Prometheus exposition from /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", "", nil, true)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

func toInfo(in wire.DatasetInfo) ust.DatasetInfo {
	return ust.DatasetInfo{Name: in.Name, Objects: in.Objects, States: in.States, Version: in.Version}
}

// Datasets lists the server's datasets.
func (c *Client) Datasets(ctx context.Context) ([]ust.DatasetInfo, error) {
	var infos []wire.DatasetInfo
	if err := c.doJSON(ctx, http.MethodGet, "/v1/datasets", nil, &infos, true); err != nil {
		return nil, err
	}
	out := make([]ust.DatasetInfo, len(infos))
	for i, in := range infos {
		out[i] = toInfo(in)
	}
	return out, nil
}

// Dataset describes one named dataset.
func (c *Client) Dataset(ctx context.Context, name string) (ust.DatasetInfo, error) {
	var in wire.DatasetInfo
	if err := c.doJSON(ctx, http.MethodGet, "/v1/datasets/"+name, nil, &in, true); err != nil {
		return ust.DatasetInfo{}, err
	}
	return toInfo(in), nil
}

// CreateDataset uploads a database in the binary store format (what
// ust.SaveDatabase / ustgen write) under the given name. Never retried:
// a create that died mid-flight may still have registered.
func (c *Client) CreateDataset(ctx context.Context, name string, data io.Reader) (ust.DatasetInfo, error) {
	image, err := io.ReadAll(data)
	if err != nil {
		return ust.DatasetInfo{}, err
	}
	resp, err := c.do(ctx, http.MethodPut, "/v1/datasets/"+name, "application/octet-stream", image, false)
	if err != nil {
		return ust.DatasetInfo{}, err
	}
	defer resp.Body.Close()
	var in wire.DatasetInfo
	if derr := json.NewDecoder(resp.Body).Decode(&in); derr != nil {
		return ust.DatasetInfo{}, fmt.Errorf("client: decoding response: %w", derr)
	}
	return toInfo(in), nil
}

// DropDataset removes the named dataset.
func (c *Client) DropDataset(ctx context.Context, name string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/datasets/"+name, nil, nil, false)
}

// Observe ingests one observation for an existing object.
func (c *Client) Observe(ctx context.Context, dataset string, objectID int, obs ust.Observation) error {
	wo, err := toWireObservation(obs)
	if err != nil {
		return err
	}
	payload := struct {
		Object int `json:"object"`
		wire.Observation
	}{Object: objectID, Observation: wo}
	return c.doJSON(ctx, http.MethodPost, "/v1/datasets/"+dataset+"/observe", payload, nil, false)
}

// Track registers a brand-new object (default motion model; objects
// with a private chain cannot travel over the wire).
func (c *Client) Track(ctx context.Context, dataset string, o *ust.Object) error {
	if o.Chain != nil {
		return fmt.Errorf("client: objects with a private chain cannot be tracked remotely")
	}
	payload := wire.Object{ID: o.ID}
	for _, obs := range o.Observations {
		wo, err := toWireObservation(obs)
		if err != nil {
			return err
		}
		payload.Observations = append(payload.Observations, wo)
	}
	return c.doJSON(ctx, http.MethodPost, "/v1/datasets/"+dataset+"/objects", payload, nil, false)
}

func toWireObservation(obs ust.Observation) (wire.Observation, error) {
	if obs.PDF == nil {
		return wire.Observation{}, fmt.Errorf("client: observation has no pdf")
	}
	sup := obs.PDF.Support()
	probs := make([]float64, len(sup))
	for i, s := range sup {
		probs[i] = obs.PDF.P(s)
	}
	return wire.Observation{Time: obs.Time, States: sup, Probs: probs}, nil
}

func queryEnvelope(dataset string, req ust.Request) ([]byte, error) {
	wr, err := wire.FromRequest(req)
	if err != nil {
		return nil, err
	}
	return json.Marshal(wire.QueryEnvelope{Dataset: dataset, Request: &wr})
}

// textEnvelope addresses a text-language query (see package ust/query)
// to a dataset; the server parses it.
func textEnvelope(dataset, query string) ([]byte, error) {
	return json.Marshal(wire.QueryEnvelope{Dataset: dataset, Query: query})
}

// Query evaluates one batch request remotely. The returned Response
// carries the same results, strategy, planner estimates and
// cache/filter reports as an in-process Evaluate on the server's
// engine.
func (c *Client) Query(ctx context.Context, dataset string, req ust.Request) (*ust.Response, error) {
	body, err := queryEnvelope(dataset, req)
	if err != nil {
		return nil, err
	}
	return c.postQuery(ctx, body)
}

// QueryText evaluates a text-language query (see package ust/query)
// remotely — the server parses it, so any client that can send a
// string can ask compound questions:
//
//	c.QueryText(ctx, "fleet",
//		"exists(states(100-120) @ [20,25]) and not forall(states(7) @ [5,9]) where tau=0.3")
func (c *Client) QueryText(ctx context.Context, dataset, queryText string) (*ust.Response, error) {
	body, err := textEnvelope(dataset, queryText)
	if err != nil {
		return nil, err
	}
	return c.postQuery(ctx, body)
}

func (c *Client) postQuery(ctx context.Context, body []byte) (*ust.Response, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/query", "application/json", body, true)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResponse(data)
}

// Factors fetches the factor decomposition of an aggregate request —
// the distributed aggregate protocol: a coordinator pools workers'
// factors and folds them in canonical order, because pooling per-shard
// PMFs would break byte-identity with a single engine.
func (c *Client) Factors(ctx context.Context, dataset string, req ust.Request) (*ust.FactorSet, error) {
	body, err := queryEnvelope(dataset, req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/factors", "application/json", body, true)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.DecodeFactorSet(data)
}

// ImportObjects applies one migration batch to a worker dataset: store
// bytes under a strictly increasing generation fence. Never retried — a
// replay is rejected server-side with 409.
func (c *Client) ImportObjects(ctx context.Context, dataset string, gen uint64, image []byte) error {
	path := fmt.Sprintf("/v1/datasets/%s/import?gen=%d", dataset, gen)
	resp, err := c.do(ctx, http.MethodPost, path, "application/octet-stream", image, false)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// EvictObjects removes object ids from a worker dataset under the same
// generation fence as ImportObjects. Never retried.
func (c *Client) EvictObjects(ctx context.Context, dataset string, gen uint64, ids []int) error {
	return c.doJSON(ctx, http.MethodPost, "/v1/datasets/"+dataset+"/evict",
		wire.Evict{Gen: gen, IDs: ids}, nil, false)
}

// QueryStream evaluates one request remotely with NDJSON streaming,
// calling yield for each result as the server produces it. A yield
// error stops the stream and is returned. The stream must end with the
// server's done marker — a connection cut mid-stream is an error, never
// a silent truncation.
func (c *Client) QueryStream(ctx context.Context, dataset string, req ust.Request, yield func(ust.Result) error) error {
	if _, isAgg := req.AggregateHint(); isAgg {
		// The server would answer with a single distribution line the
		// per-result yield cannot deliver; fail fast with the same
		// sentinel the in-process streaming entry points use.
		return fmt.Errorf("client: aggregate requests answer as one distribution; use Query: %w", ust.ErrAggregateStream)
	}
	body, err := queryEnvelope(dataset, req)
	if err != nil {
		return err
	}
	// Retrying the OPEN is safe (no line has been consumed yet); once
	// streaming begins, a cut surfaces as the missing done marker.
	resp, err := c.do(ctx, http.MethodPost, "/v1/query/stream", "application/json", body, true)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	for {
		line, rerr := readLine(br)
		if len(line) > 0 {
			var sl wire.StreamLine
			if err := json.Unmarshal(line, &sl); err != nil {
				return fmt.Errorf("client: bad stream line: %w", err)
			}
			switch {
			case sl.Error != "":
				return &ServerStreamError{Msg: sl.Error}
			case sl.Done:
				return nil
			case sl.Result != nil:
				if err := yield(sl.Result.ToResult()); err != nil {
					return err
				}
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				return fmt.Errorf("client: stream: %w", rerr)
			}
			return fmt.Errorf("client: stream ended without a done marker")
		}
	}
}

// readLine reads one NDJSON line of arbitrary length (a subscription
// snapshot is a single line carrying the full result set, so no fixed
// per-line cap is safe), trimmed of surrounding whitespace.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	return bytes.TrimSpace(line), err
}

// Subscription is a client-side standing query: updates pushed by the
// server arrive on Updates(). Close (or cancelling the Subscribe
// context) ends it.
type Subscription struct {
	updates chan ust.Update
	cancel  context.CancelFunc

	mu  sync.Mutex
	err error
}

// Updates delivers the server's pushes, starting with the full
// snapshot. Closed when the subscription ends; check Err afterwards.
func (s *Subscription) Updates() <-chan ust.Update { return s.updates }

// Err reports why the subscription ended (nil on clean close/cancel).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close terminates the subscription.
func (s *Subscription) Close() { s.cancel() }

// Subscribe registers a standing query on the server; incremental
// updates stream back over NDJSON as the dataset ingests observations.
func (c *Client) Subscribe(ctx context.Context, dataset string, req ust.Request) (*Subscription, error) {
	body, err := queryEnvelope(dataset, req)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	resp, err := c.do(ctx, http.MethodPost, "/v1/subscribe", "application/json", body, false)
	if err != nil {
		cancel()
		return nil, err
	}
	sub := &Subscription{updates: make(chan ust.Update), cancel: cancel}
	go func() {
		defer close(sub.updates)
		defer resp.Body.Close()
		defer cancel()
		br := bufio.NewReader(resp.Body)
		for {
			line, rerr := readLine(br)
			if len(line) > 0 {
				var wu wire.Update
				if err := json.Unmarshal(line, &wu); err != nil {
					sub.fail(fmt.Errorf("client: bad update line: %w", err))
					return
				}
				if wu.Error != "" {
					sub.fail(fmt.Errorf("client: subscription error: %s", wu.Error))
					return
				}
				up := ust.Update{
					Seq:     wu.Seq,
					Version: wu.Version,
					Full:    wu.Full,
					Results: wire.ToResults(wu.Results),
					Removed: wu.Removed,
				}
				select {
				case sub.updates <- up:
				case <-ctx.Done():
					return
				}
			}
			if rerr != nil {
				if rerr != io.EOF && ctx.Err() == nil {
					sub.fail(fmt.Errorf("client: subscription stream: %w", rerr))
				}
				return
			}
		}
	}()
	return sub, nil
}

func (s *Subscription) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}
