package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	ust "ust"
)

// flaky wraps a handler so the first fail requests answer 503; every
// later request is handled normally. hits counts all arrivals.
type flaky struct {
	fail int32
	hits atomic.Int32
	next http.Handler
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.hits.Add(1)
	if n <= f.fail {
		http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

// TestRetryIdempotentConverges pins the retry contract's positive half:
// an idempotent request against a flapping server (first attempts 503)
// converges within the retry budget, and the server sees exactly
// failures+1 attempts.
func TestRetryIdempotentConverges(t *testing.T) {
	h := &flaky{fail: 2, next: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`[]`))
	})}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewWithConfig(ts.URL, Config{
		HTTPClient: ts.Client(),
		MaxRetries: 3,
		RetryBase:  time.Millisecond,
		RetryMax:   5 * time.Millisecond,
	})
	infos, err := c.Datasets(context.Background())
	if err != nil {
		t.Fatalf("flapping server should converge within retries: %v", err)
	}
	if len(infos) != 0 {
		t.Fatalf("datasets: %+v", infos)
	}
	if got := h.hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 failures + 1 success)", got)
	}
}

// TestRetryBudgetExhausted pins the bound: a server that never recovers
// yields the final attempt's error after exactly MaxRetries+1 tries.
func TestRetryBudgetExhausted(t *testing.T) {
	h := &flaky{fail: 1 << 30, next: http.NotFoundHandler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewWithConfig(ts.URL, Config{
		HTTPClient: ts.Client(),
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
		RetryMax:   5 * time.Millisecond,
	})
	_, err := c.Datasets(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 APIError, got %v", err)
	}
	if got := h.hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (MaxRetries=2 + initial)", got)
	}
}

// TestNoRetryOnIngest pins the contract's negative half: non-idempotent
// requests (ingest) are attempted exactly once even with a retry budget
// — a replayed observation would double-apply.
func TestNoRetryOnIngest(t *testing.T) {
	h := &flaky{fail: 1 << 30, next: http.NotFoundHandler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewWithConfig(ts.URL, Config{
		HTTPClient: ts.Client(),
		MaxRetries: 5,
		RetryBase:  time.Millisecond,
	})
	err := c.Observe(context.Background(), "fleet", 1,
		ust.Observation{Time: 1, PDF: ust.PointDistribution(3, 2)})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 APIError, got %v", err)
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("ingest saw %d attempts, want exactly 1", got)
	}
}

// TestBackoffClamp pins the shift bound: base·2^att saturates at
// RetryMax instead of overflowing time.Duration into negative or zero
// sleeps when the attempt count grows (the hot-retry-loop bug).
func TestBackoffClamp(t *testing.T) {
	base, limit := 50*time.Millisecond, 2*time.Second
	prev := time.Duration(0)
	for att := 0; att <= 200; att++ {
		d := backoff(base, limit, att)
		if d <= 0 || d > limit {
			t.Fatalf("att %d: backoff %v outside (0, %v]", att, d, limit)
		}
		if d < prev {
			t.Fatalf("att %d: backoff %v decreased from %v", att, d, prev)
		}
		prev = d
	}
	if got := backoff(base, limit, 0); got != base {
		t.Errorf("att 0: got %v, want base %v", got, base)
	}
	if got := backoff(base, limit, 2); got != 4*base {
		t.Errorf("att 2: got %v, want %v", got, 4*base)
	}
	if got := backoff(base, limit, 6); got != limit {
		t.Errorf("att 6: got %v, want saturation at %v", got, limit)
	}
	// The exact overflow shape of the old code: att ≥ 63 shifted every
	// bit out; att near 62 went negative. Both must saturate now.
	for _, att := range []int{61, 62, 63, 64, 127, 1 << 20} {
		if got := backoff(base, limit, att); got != limit {
			t.Errorf("att %d: got %v, want %v", att, got, limit)
		}
	}
}

// TestNoRetryOnContextCancel pins that cancellation is terminal: a
// cancelled context never burns retry attempts.
func TestNoRetryOnContextCancel(t *testing.T) {
	h := &flaky{fail: 1 << 30, next: http.NotFoundHandler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewWithConfig(ts.URL, Config{
		HTTPClient: ts.Client(),
		MaxRetries: 5,
		RetryBase:  50 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Datasets(ctx)
	if err == nil {
		t.Fatal("cancelled context should fail")
	}
	if got := h.hits.Load(); got > 1 {
		t.Fatalf("cancelled request saw %d attempts, want at most 1", got)
	}
}
