package client

// Round-trip coverage of the client surface against a real service
// handler: every method travels over localhost HTTP and is checked
// against the in-process engine's answer. (The cross-layer conformance
// pins live in cmd/ustserve and internal/dist; this file is the
// client-side unit coverage of each call path.)

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	ust "ust"
	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/service"
	"ust/internal/store"
)

func testChain(t *testing.T) *markov.Chain {
	t.Helper()
	chain, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return chain
}

func testDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase(testChain(t))
	for id := 0; id < 6; id++ {
		db.MustAdd(core.MustObject(id, nil,
			core.Observation{Time: 0, PDF: markov.PointDistribution(3, id%3)}))
	}
	return db
}

func newServer(t *testing.T) (*service.Service, *Client) {
	t.Helper()
	svc := service.New(service.Config{})
	if err := svc.Create("d", testDB(t), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() { svc.Close(); ts.Close() })
	return svc, New(ts.URL, ts.Client())
}

func TestClientRoundTrip(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()
	ref := core.NewEngine(testDB(t), core.Options{})

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatal(err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil || !strings.Contains(metrics, "ust_role") {
		t.Fatalf("metrics: %v", err)
	}

	infos, err := c.Datasets(ctx)
	if err != nil || len(infos) != 1 || infos[0].Name != "d" {
		t.Fatalf("datasets: %+v err=%v", infos, err)
	}
	info, err := c.Dataset(ctx, "d")
	if err != nil || info.Objects != 6 {
		t.Fatalf("dataset: %+v err=%v", info, err)
	}

	req := ust.NewRequest(ust.PredicateExists,
		ust.WithStates([]int{0, 1}), ust.WithTimes([]int{1, 2}))
	want, err := ref.Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(ctx, "d", req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Results, got.Results) {
		t.Fatalf("remote results diverged:\n%+v\n%+v", want.Results, got.Results)
	}

	textResp, err := c.QueryText(ctx, "d", "exists(states(0-1) @ [1,2])")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Results, textResp.Results) {
		t.Fatalf("text query diverged: %+v", textResp.Results)
	}

	var streamed []ust.Result
	if err := c.QueryStream(ctx, "d", req, func(r ust.Result) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Results, streamed) {
		t.Fatalf("streamed results diverged: %+v", streamed)
	}
}

func TestClientFactors(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()
	ref := core.NewEngine(testDB(t), core.Options{})

	req := ust.NewAggRequest(ust.PredicateExists, ust.AggSpec{Kind: ust.AggCount},
		ust.WithStates([]int{0, 1}), ust.WithTimes([]int{1, 2}))
	want, err := ref.AggregateFactors(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Factors(ctx, "d", req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Factors, got.Factors) {
		t.Fatalf("remote factors diverged:\n%+v\n%+v", want.Factors, got.Factors)
	}
}

func TestClientIngestAndDatasetLifecycle(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()

	// Observe an existing object, then track a brand-new one.
	if err := c.Observe(ctx, "d", 0, ust.Observation{Time: 2, PDF: ust.PointDistribution(3, 0)}); err != nil {
		t.Fatal(err)
	}
	o, err := ust.NewObject(100, nil, ust.Observation{Time: 0, PDF: ust.PointDistribution(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Track(ctx, "d", o); err != nil {
		t.Fatal(err)
	}
	info, err := c.Dataset(ctx, "d")
	if err != nil || info.Objects != 7 {
		t.Fatalf("after track: %+v err=%v", info, err)
	}

	// Upload a second dataset through CreateDataset, then drop it.
	var buf bytes.Buffer
	if err := store.SaveDatabase(&buf, testDB(t)); err != nil {
		t.Fatal(err)
	}
	up, err := c.CreateDataset(ctx, "d2", &buf)
	if err != nil || up.Objects != 6 {
		t.Fatalf("create: %+v err=%v", up, err)
	}
	if err := c.DropDataset(ctx, "d2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Dataset(ctx, "d2"); err == nil {
		t.Fatal("dropped dataset still answers")
	}
}

func TestClientImportEvict(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()

	// Import a migration batch under the generation fence, then evict it.
	batch := core.NewDatabase(testChain(t))
	batch.MustAdd(core.MustObject(200, nil,
		core.Observation{Time: 0, PDF: markov.PointDistribution(3, 2)}))
	var buf bytes.Buffer
	if err := store.SaveDatabase(&buf, batch); err != nil {
		t.Fatal(err)
	}
	if err := c.ImportObjects(ctx, "d", 1, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	info, err := c.Dataset(ctx, "d")
	if err != nil || info.Objects != 7 {
		t.Fatalf("after import: %+v err=%v", info, err)
	}
	if err := c.EvictObjects(ctx, "d", 2, []int{200}); err != nil {
		t.Fatal(err)
	}
	info, err = c.Dataset(ctx, "d")
	if err != nil || info.Objects != 6 {
		t.Fatalf("after evict: %+v err=%v", info, err)
	}
	// Replaying a generation is rejected with 409.
	err = c.EvictObjects(ctx, "d", 2, []int{0})
	var ae *APIError
	if err == nil || !errors.As(err, &ae) || ae.Status != 409 {
		t.Fatalf("stale generation: %v", err)
	}
}

func TestClientSubscribe(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()

	req := ust.NewRequest(ust.PredicateExists,
		ust.WithStates([]int{0, 1}), ust.WithTimes([]int{1, 2}))
	sub, err := c.Subscribe(ctx, "d", req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case u, ok := <-sub.Updates():
		if !ok {
			t.Fatalf("subscription closed before the snapshot: %v", sub.Err())
		}
		if !u.Full || len(u.Results) != 6 {
			t.Fatalf("snapshot: %+v", u)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no snapshot within 10s")
	}
	sub.Close()
	for range sub.Updates() {
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("closed subscription reports %v", err)
	}
}
