package client

import (
	"net/http"
	"testing"
	"time"
)

// The connection-pool knobs must materialize on a dedicated transport —
// and must never mutate http.DefaultClient.
func TestNewWithConfigBuildsPooledTransport(t *testing.T) {
	c := NewWithConfig("http://x", Config{
		MaxIdleConnsPerHost:   128,
		ResponseHeaderTimeout: 3 * time.Second,
	})
	if c.hc == http.DefaultClient {
		t.Fatal("pool knobs left the client on http.DefaultClient")
	}
	tr, ok := c.hc.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T, want *http.Transport", c.hc.Transport)
	}
	if tr.MaxIdleConnsPerHost != 128 {
		t.Errorf("MaxIdleConnsPerHost = %d, want 128", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < 128 {
		t.Errorf("MaxIdleConns = %d, want ≥ per-host width", tr.MaxIdleConns)
	}
	if tr.ResponseHeaderTimeout != 3*time.Second {
		t.Errorf("ResponseHeaderTimeout = %v, want 3s", tr.ResponseHeaderTimeout)
	}
	if c.hc.Timeout != 0 {
		t.Errorf("client-level Timeout = %v set; it would kill long-lived subscriptions", c.hc.Timeout)
	}
}

func TestNewWithConfigDefaultsToDefaultClient(t *testing.T) {
	if c := NewWithConfig("http://x", Config{}); c.hc != http.DefaultClient {
		t.Fatal("no knobs set but a dedicated client was built")
	}
	hc := &http.Client{}
	if c := NewWithConfig("http://x", Config{HTTPClient: hc, MaxIdleConnsPerHost: 9}); c.hc != hc {
		t.Fatal("explicit HTTPClient overridden by pool knobs")
	}
}
