// Command benchjson converts a `go test -json -bench` event stream
// (stdin) into a machine-readable benchmark summary (BENCH.json), so the
// performance trajectory of the engine can be tracked across commits.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchtime=1x -json . | benchjson -o BENCH.json
//
// Benchmark output lines are echoed to stderr as they arrive, so the
// human-readable stream is preserved. The JSON artifact is an array of
//
//	{"name": ..., "package": ..., "iterations": N, "ns_per_op": ...,
//	 "metrics": {"B/op": ..., "allocs/op": ..., ...}}
//
// entries, one per benchmark result.
//
// With -baseline and -gate, benchjson doubles as a regression gate:
//
//	go test -run '^$' -bench 'BenchmarkIngest' -benchmem -benchtime=100x -json ./internal/core |
//	    benchjson -o '' -baseline BENCH.json -gate BenchmarkIngest
//
// compares the gated benchmarks' allocs/op (see -gate-metric) against
// the matching entries of the baseline summary and exits nonzero when a
// result regresses past -tolerance. A missing baseline file, baseline
// entry or gated benchmark is a notice, not a failure, so the gate is
// safe on fresh checkouts. -o ” suppresses the summary artifact (a
// gate run is usually a narrow benchmark selection that should not
// clobber the full BENCH.json).
//
// With -load, results come from a BENCH_LOAD.json report (cmd/ustload)
// instead of stdin — each workload class at each offered rate becomes a
// pseudo-benchmark named Load/<class>@<rate> carrying p50/p99/p999
// latency metrics, so the same gate machinery covers latency under
// load:
//
//	benchjson -load BENCH_LOAD.new.json -o '' \
//	    -baseline BENCH_LOAD.json -gate Load -gate-metric p99_ms
//
// The -baseline for a -load gate may be either a prior benchjson
// summary or a raw BENCH_LOAD.json report (auto-detected).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"ust/internal/load"
)

// testEvent is the subset of the `go test -json` event schema we need.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkFoo/sub-8   	     123	   4567 ns/op	  89 B/op	  2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "BENCH.json", "output path for the JSON summary ('' = don't write)")
	baseline := flag.String("baseline", "", "prior summary to gate against")
	gate := flag.String("gate", "", "benchmark name (prefix) whose results must not regress vs -baseline")
	gateMetric := flag.String("gate-metric", "allocs/op", "metric compared by the gate")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression before the gate fails")
	loadPath := flag.String("load", "", "read results from a BENCH_LOAD.json report (cmd/ustload) instead of stdin")
	flag.Parse()

	var results []Result
	if *loadPath != "" {
		r, err := load.ReadReport(*loadPath)
		if err != nil {
			fatal(err)
		}
		results = loadResults(r)
	} else {
		results = stdinResults()
	}

	sort.Slice(results, func(a, b int) bool {
		if results[a].Package != results[b].Package {
			return results[a].Package < results[b].Package
		}
		return results[a].Name < results[b].Name
	})
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d result(s) to %s\n", len(results), *out)
	}
	if *gate != "" {
		if err := runGate(results, *baseline, *gate, *gateMetric, *tolerance); err != nil {
			fatal(err)
		}
	}
}

// stdinResults parses a `go test -json -bench` event stream from stdin.
func stdinResults() []Result {
	var results []Result
	// `go test -json` emits output in fragments (a benchmark's name and
	// its measurements arrive as separate events), so reassemble full
	// lines per package before parsing.
	partial := map[string]string{}
	flush := func(pkg, frag string) {
		buf := partial[pkg] + frag
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			line := buf[:nl]
			buf = buf[nl+1:]
			if strings.HasPrefix(line, "Benchmark") || strings.HasPrefix(line, "ok ") ||
				strings.HasPrefix(line, "PASS") || strings.HasPrefix(line, "FAIL") ||
				strings.HasPrefix(line, "--- ") {
				fmt.Fprintln(os.Stderr, line)
			}
			if r, ok := parseBench(line, pkg); ok {
				results = append(results, r)
			}
		}
		partial[pkg] = buf
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Tolerate plain-text lines (the stream may be piped through
			// other tools); try to parse them directly.
			ev = testEvent{Action: "output", Output: sc.Text() + "\n"}
		}
		if ev.Action != "output" {
			continue
		}
		flush(ev.Package, ev.Output)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	for pkg, rest := range partial {
		if rest != "" {
			flush(pkg, "\n")
		}
	}
	return results
}

// loadResults converts a BENCH_LOAD.json report into pseudo-benchmark
// results so the existing gate machinery applies to latency under load:
// one result per (class, offered rate), metrics carrying the quantiles.
// The schema version is baked into the package key: a v1 baseline and a
// v2 candidate then share no keys, so the gate reports "no baseline
// entry" instead of silently comparing quantiles whose semantics
// changed between versions.
func loadResults(r *load.Report) []Result {
	var out []Result
	for _, s := range r.Steps {
		classes := make([]string, 0, len(s.Classes))
		for c := range s.Classes {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			cs := s.Classes[c]
			out = append(out, Result{
				Name:       fmt.Sprintf("Load/%s@%g", c, s.OfferedRate),
				Package:    fmt.Sprintf("ust/internal/load/v%d", r.Version),
				Iterations: int64(cs.Count),
				NsPerOp:    cs.MeanMs * 1e6,
				Metrics: map[string]float64{
					"p50_ms":           cs.P50Ms,
					"p90_ms":           cs.P90Ms,
					"p99_ms":           cs.P99Ms,
					"p999_ms":          cs.P999Ms,
					"max_ms":           cs.MaxMs,
					"intended_p99_ms":  cs.IntendedP99Ms,
					"intended_p999_ms": cs.IntendedP999Ms,
					"overloaded":       float64(cs.Overloaded),
					"dropped":          float64(cs.Dropped),
				},
			})
		}
	}
	return out
}

// gated reports whether a result name belongs to the gated benchmark:
// the name itself, a sub-benchmark, or either with a -GOMAXPROCS
// suffix.
func gated(name, gate string) bool {
	if !strings.HasPrefix(name, gate) {
		return false
	}
	rest := name[len(gate):]
	return rest == "" || rest[0] == '/' || rest[0] == '-'
}

// runGate compares the gated results' metric against the baseline
// summary. Missing pieces (no baseline file, no baseline entry, no
// gated result, no metric) produce notices and pass; a metric exceeding
// baseline·(1+tolerance) fails.
func runGate(results []Result, baselinePath, gate, metric string, tolerance float64) error {
	if baselinePath == "" {
		return fmt.Errorf("-gate requires -baseline")
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchjson: gate skipped: baseline %s does not exist\n", baselinePath)
			return nil
		}
		return err
	}
	var base []Result
	if err := json.Unmarshal(raw, &base); err != nil {
		// Not a benchjson summary array — accept a raw BENCH_LOAD.json
		// report as the baseline for -load gates.
		var lr load.Report
		if lerr := json.Unmarshal(raw, &lr); lerr != nil || len(lr.Steps) == 0 {
			return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
		}
		base = loadResults(&lr)
	}
	byKey := map[string]Result{}
	for _, r := range base {
		byKey[r.Package+" "+r.Name] = r
	}

	checked := 0
	var failures []string
	for _, r := range results {
		if !gated(r.Name, gate) {
			continue
		}
		got, ok := r.Metrics[metric]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate notice: %s has no %q metric (run with -benchmem?)\n", r.Name, metric)
			continue
		}
		b, ok := byKey[r.Package+" "+r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate notice: %s not in baseline, skipped\n", r.Name)
			continue
		}
		want, ok := b.Metrics[metric]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate notice: baseline %s has no %q metric, skipped\n", r.Name, metric)
			continue
		}
		checked++
		limit := want * (1 + tolerance)
		if got > limit {
			failures = append(failures,
				fmt.Sprintf("%s: %s %.6g exceeds baseline %.6g by more than %.0f%%",
					r.Name, metric, got, want, tolerance*100))
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s %s %.6g (baseline %.6g, limit %.6g)\n",
			r.Name, metric, got, want, limit)
	}
	if len(failures) > 0 {
		return fmt.Errorf("gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate notice: no %s results compared (benchmark or baseline missing)\n", gate)
	}
	return nil
}

// parseBench parses one benchmark result line into a Result.
func parseBench(line, pkg string) (Result, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: m[1], Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
	// The tail is whitespace-separated (value, unit) pairs.
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
