// Command ustbench regenerates the tables behind every figure of the
// paper's evaluation (Section VIII).
//
// Usage:
//
//	ustbench [-fig all|fig8a|fig8b|fig9a|fig9b|fig9c|fig9d|fig10a|fig10b|fig11a|fig11b]
//	         [-scale tiny|small|paper] [-seed N] [-csv DIR]
//
// Beyond the paper's figures, `-list` shows the extension experiments:
// ext-cluster (interval-chain pruning), ext-parallel (OB fan-out) and
// ext-kernel (score-cache and filter–refine speedups on repeated and
// ranked queries).
//
// -scale small (the default) runs each experiment at a size that
// preserves the paper's qualitative shapes in minutes; -scale paper uses
// the paper's dataset sizes and can run for hours.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"ust/internal/exp"
)

func main() {
	fig := flag.String("fig", "all", "experiment id or 'all'")
	scaleStr := flag.String("scale", "small", "tiny | small | paper")
	seed := flag.Int64("seed", 42, "dataset seed")
	csvDir := flag.String("csv", "", "also write one CSV per experiment into this directory")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	scale, err := exp.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	cfg := exp.Config{Scale: scale, Seed: *seed}

	var experiments []exp.Experiment
	if strings.EqualFold(*fig, "all") {
		experiments = exp.All()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			e, ok := exp.Lookup(strings.TrimSpace(id))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q (try -list)", id))
			}
			experiments = append(experiments, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	// Ctrl-C / SIGTERM aborts the current experiment cleanly — useful at
	// -scale paper, where single figures run for hours.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("running %d experiment(s) at scale %s, seed %d\n\n", len(experiments), scale, *seed)
	for _, e := range experiments {
		rep, err := e.Run(ctx, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, rep.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := rep.CSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("  wrote %s\n\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ustbench:", err)
	os.Exit(1)
}
