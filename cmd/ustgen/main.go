// Command ustgen generates datasets — the synthetic workloads of the
// paper's Table I or road-network-backed databases — and persists them
// in the library's binary format (or JSON with -json).
//
// Usage:
//
//	ustgen -out data.ustd [-kind synthetic|munich|na]
//	       [-objects N] [-states N] [-object-spread N] [-state-spread N]
//	       [-max-step N] [-network-scale N] [-seed N] [-json] [-format v1|v2]
//
// -o is shorthand for -out; the emitted binary store format is exactly
// what `ustserve -dataset name=file.ust` loads and what
// `PUT /v1/datasets/{name}` accepts, so generated workloads feed the
// server directly. A .json extension (or -json) selects the JSON
// interchange form instead.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"ust/internal/core"
	"ust/internal/gen"
	"ust/internal/markov"
	"ust/internal/network"
	"ust/internal/store"
)

func main() {
	out := flag.String("out", "", "output file (required)")
	flag.StringVar(out, "o", "", "shorthand for -out")
	kind := flag.String("kind", "synthetic", "synthetic | munich | na")
	objects := flag.Int("objects", 10000, "|D|: number of objects")
	states := flag.Int("states", 100000, "|S|: number of states (synthetic only)")
	objectSpread := flag.Int("object-spread", 5, "states per object's initial pdf")
	stateSpread := flag.Int("state-spread", 5, "successors per state (synthetic only)")
	maxStep := flag.Int("max-step", 40, "locality window (synthetic only)")
	netScale := flag.Int("network-scale", 10, "divide network node/edge counts by this factor")
	seed := flag.Int64("seed", 42, "generator seed")
	asJSON := flag.Bool("json", false, "write JSON instead of binary")
	format := flag.String("format", "v2", "binary store version: v2 (columnar, zero-copy loadable) or v1 (legacy row-oriented)")
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	var db *core.Database
	var err error
	switch *kind {
	case "synthetic":
		db, err = genSynthetic(gen.Params{
			NumObjects:   *objects,
			NumStates:    *states,
			ObjectSpread: *objectSpread,
			StateSpread:  *stateSpread,
			MaxStep:      *maxStep,
			Seed:         *seed,
		})
	case "munich":
		db, err = genNetwork(network.MunichSpec(*seed).Scaled(*netScale), *objects, *objectSpread)
	case "na":
		db, err = genNetwork(network.NorthAmericaSpec(*seed).Scaled(*netScale), *objects, *objectSpread)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch {
	case *asJSON || strings.HasSuffix(*out, ".json"):
		err = store.ExportJSON(f, db)
	case *format == "v1":
		err = store.SaveDatabaseV1(f, db)
	case *format == "v2":
		err = store.SaveDatabase(f, db)
	default:
		err = fmt.Errorf("unknown -format %q (v1 or v2)", *format)
	}
	if err != nil {
		fatal(err)
	}
	info, _ := f.Stat()
	var size int64
	if info != nil {
		size = info.Size()
	}
	fmt.Printf("wrote %s: %d objects, %d states, %d transitions (%d bytes)\n",
		*out, db.Len(), db.DefaultChain().NumStates(), db.DefaultChain().NNZ(), size)
}

func genSynthetic(p gen.Params) (*core.Database, error) {
	ds, err := gen.Generate(p)
	if err != nil {
		return nil, err
	}
	db := core.NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		if err := db.AddSimple(i, o); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func genNetwork(spec network.RoadNetworkSpec, objects, spread int) (*core.Database, error) {
	g, err := network.Generate(spec)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	chain, err := markov.NewChain(g.TransitionMatrix(rng))
	if err != nil {
		return nil, err
	}
	db := core.NewDatabase(chain)
	n := g.NumNodes()
	for id := 0; id < objects; id++ {
		anchor := rng.Intn(n)
		states := []int{anchor}
		g.Successors(anchor, func(v int) {
			if len(states) < spread {
				states = append(states, v)
			}
		})
		if err := db.AddSimple(id, markov.UniformOver(n, states)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ustgen:", err)
	os.Exit(1)
}
