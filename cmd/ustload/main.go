// Command ustload is the open-loop traffic harness: it fires a
// configurable workload mix at a deployment of the serving stack on a
// Poisson arrival schedule — never waiting for responses, so queueing
// delay under overload is measured rather than hidden — and reports
// client-observed latency quantiles per workload class as
// BENCH_LOAD.json, the traffic trajectory tracked per PR next to
// BENCH.json.
//
// Usage (run):
//
//	ustload -rate 200 -duration 5s -mix point=2,scan=1,topk=1,ingest=1
//	        [-db file.ust | -objects N -states N -gen-seed S] [-shards N]
//	        [-remote URL] [-dataset name]
//	        [-ramp start:end:step] [-seed N] [-timeout D] [-max-inflight N]
//	        [-max-concurrent N] [-horizon N] [-conns N] [-o BENCH_LOAD.json]
//	        [-log requests.log]
//
// Three deployment shapes, one harness: with no -remote the service
// runs in-process (optionally sharded via -shards); with -remote it
// drives a ustserve over HTTP — or a coordinator fronting a worker
// fleet, which speaks the identical wire contract. -ramp sweeps the
// offered rate in steps to find the knee where achieved rate falls
// away from offered and tail latency departs.
//
// A fixed -seed makes the generated request *sequence* reproducible
// (arrival timing is wall-clock); -log writes the dispatched ops in
// order, so two runs with one seed diff clean.
//
// Usage (analyze):
//
//	ustload analyze [-tolerance 0.25] old.json new.json
//
// diffs two BENCH_LOAD.json files and exits nonzero when a workload
// class's p99/p999 regressed past tolerance (or a class newly sheds
// load) at any offered rate present in both.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ust/client"
	"ust/internal/core"
	"ust/internal/gen"
	"ust/internal/load"
	"ust/internal/service"
	"ust/internal/store"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		analyzeMain(os.Args[2:])
		return
	}
	runMain(os.Args[1:])
}

func runMain(args []string) {
	fs := flag.NewFlagSet("ustload", flag.ExitOnError)
	rate := fs.Float64("rate", 100, "offered arrival rate (requests/second, Poisson)")
	duration := fs.Duration("duration", 5*time.Second, "arrival window per step")
	// expr is absent from the default: compound expressions require
	// single-observation objects, so expr can't share a mix with ingest
	// (use a read-only mix like "expr=1,point=1" to drive that path).
	mixSpec := fs.String("mix", "point=2,scan=1,topk=1,threshold=1,count=1,subscribe=0.2,ingest=1", "workload mix (class=weight,...)")
	seed := fs.Int64("seed", 1, "request-sequence seed (fixed seed = reproducible op stream)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline")
	maxInFlight := fs.Int("max-inflight", 16384, "cap on outstanding requests; arrivals past it count as dropped")
	ramp := fs.String("ramp", "", "rate sweep start:end:step (overrides -rate)")
	horizon := fs.Int("horizon", 30, "query time horizon (windows stay within [1,horizon])")
	out := fs.String("o", "BENCH_LOAD.json", "report path ('' = don't write)")
	logPath := fs.String("log", "", "request log path (dispatched ops in order; the determinism witness)")

	db := fs.String("db", "", "dataset file for the in-process service (binary store format)")
	objects := fs.Int("objects", 500, "synthetic |D| when no -db/-remote given")
	states := fs.Int("states", 5000, "synthetic |S| when no -db/-remote given")
	genSeed := fs.Int64("gen-seed", 42, "synthetic dataset seed")
	shards := fs.Int("shards", 1, "in-process shard engines (>1 = consistent-hash scale-out)")
	maxConcurrent := fs.Int("max-concurrent", service.DefaultMaxConcurrent, "in-process admission limit")

	remote := fs.String("remote", "", "drive a remote ustserve/coordinator at this base URL instead of in-process")
	dataset := fs.String("dataset", "load", "dataset name (remote: must exist; in-process: created)")
	conns := fs.Int("conns", 256, "keep-alive connections per host for -remote")
	fs.Parse(args)

	mix, err := load.ParseMix(*mixSpec)
	if err != nil {
		fatal(err)
	}
	rates := []float64{*rate}
	if *ramp != "" {
		var start, end, step float64
		if _, err := fmt.Sscanf(*ramp, "%g:%g:%g", &start, &end, &step); err != nil {
			fatal(fmt.Errorf("bad -ramp %q (want start:end:step): %v", *ramp, err))
		}
		if rates, err = load.RampRates(start, end, step); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	target, shardsUsed, err := buildTarget(ctx, *remote, *dataset, *db, *objects, *states, *genSeed, *shards, *maxConcurrent, *conns, *timeout)
	if err != nil {
		fatal(err)
	}
	shape, err := load.ShapeOf(ctx, target, *horizon)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ustload: target=%s dataset=%q |D|=%d |S|=%d mix=%s\n",
		target.Name(), *dataset, shape.NumObjects, shape.NumStates, mix)

	var reqLog *os.File
	if *logPath != "" {
		if reqLog, err = os.Create(*logPath); err != nil {
			fatal(err)
		}
		defer reqLog.Close()
	}

	report := &load.Report{Version: load.ReportVersion, Target: target.Name(), Mix: mix.String(), Seed: *seed, Shards: shardsUsed}
	for i, r := range rates {
		// Each step draws a fresh deterministic op stream; the derived
		// seed keeps steps distinct while the whole ramp stays a pure
		// function of -seed.
		g, err := load.NewGenerator(mix, shape, *seed+int64(i)*1000003)
		if err != nil {
			fatal(err)
		}
		if reqLog != nil {
			fmt.Fprintf(reqLog, "# step rate=%g\n", r)
		}
		res, err := load.Run(ctx, target, g, mix, load.Config{
			Rate:        r,
			Duration:    *duration,
			Seed:        *seed + int64(i)*1000003,
			Timeout:     *timeout,
			MaxInFlight: *maxInFlight,
			RequestLog:  reqLog,
		})
		if err != nil {
			fatal(err)
		}
		step := load.Summarize(res)
		report.Steps = append(report.Steps, step)
		printStep(step)
	}
	if len(rates) > 1 {
		printKnee(report)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ustload: wrote %s (%d step(s))\n", *out, len(report.Steps))
	}
}

// buildTarget assembles the deployment shape under test. Remote targets
// get a pooled transport (-conns) so the open-loop driver itself never
// bottlenecks on ephemeral ports; in-process targets build (or load)
// their dataset and serve it through the same Service the HTTP stack
// uses, optionally sharded.
func buildTarget(ctx context.Context, remote, dataset, dbPath string, objects, states int, genSeed int64, shards, maxConcurrent, conns int, timeout time.Duration) (load.Target, int, error) {
	if remote != "" {
		c := client.NewWithConfig(remote, client.Config{
			MaxIdleConnsPerHost:   conns,
			ResponseHeaderTimeout: timeout,
		})
		if err := c.Ready(ctx); err != nil {
			return nil, 0, fmt.Errorf("remote %s not ready: %w", remote, err)
		}
		return &load.RemoteTarget{Client: c, Dataset: dataset}, 0, nil
	}
	var cdb *core.Database
	if dbPath != "" {
		data, err := os.ReadFile(dbPath)
		if err != nil {
			return nil, 0, err
		}
		if cdb, err = store.LoadDatabaseMapped(data); err != nil {
			return nil, 0, err
		}
	} else {
		ds, err := gen.Generate(gen.Params{
			NumObjects: objects, NumStates: states,
			ObjectSpread: 5, StateSpread: 5, MaxStep: 40, Seed: genSeed,
		})
		if err != nil {
			return nil, 0, err
		}
		cdb = core.NewDatabase(ds.Chain)
		for i, o := range ds.Objects {
			if err := cdb.AddSimple(i, o); err != nil {
				return nil, 0, err
			}
		}
	}
	svc := service.New(service.Config{Shards: shards, MaxConcurrent: maxConcurrent})
	if err := svc.Create(dataset, cdb, nil); err != nil {
		return nil, 0, err
	}
	return &load.InProcTarget{Svc: svc, Dataset: dataset}, shards, nil
}

func printStep(s load.Step) {
	fmt.Fprintf(os.Stderr, "step offered=%g/s achieved=%g/s dispatched=%d dropped=%d\n",
		s.OfferedRate, s.AchievedRate, s.Dispatched, s.Dropped)
	all := s.Classes[load.AllClass]
	printClass(load.AllClass, all)
	for _, c := range load.Classes {
		if cs, ok := s.Classes[c]; ok && cs.Count+cs.Overloaded+cs.Timeouts+cs.Errors+cs.Dropped > 0 {
			printClass(c, cs)
		}
	}
}

func printClass(name string, c load.ClassSummary) {
	fmt.Fprintf(os.Stderr, "  %-10s n=%-6d p50=%.2fms p90=%.2fms p99=%.2fms p999=%.2fms max=%.2fms int_p99=%.2fms over=%d to=%d err=%d drop=%d\n",
		name, c.Count, c.P50Ms, c.P90Ms, c.P99Ms, c.P999Ms, c.MaxMs, c.IntendedP99Ms,
		c.Overloaded, c.Timeouts, c.Errors, c.Dropped)
}

// printKnee names the first ramp step where the system stopped keeping
// up: achieved rate under 95% of the *realized* dispatch rate (the
// Poisson draw can undershoot the nominal rate on short windows — that
// is arrival variance, not system slowness), or any load shed.
func printKnee(r *load.Report) {
	for _, s := range r.Steps {
		all := s.Classes[load.AllClass]
		shed := all.Overloaded + all.Timeouts + all.Dropped
		realized := s.OfferedRate
		if s.DurationS > 0 {
			realized = float64(s.Dispatched) / s.DurationS
		}
		if s.AchievedRate < 0.95*realized || shed > 0 {
			fmt.Fprintf(os.Stderr, "ustload: knee at offered=%g/s (achieved=%g/s, shed=%d)\n",
				s.OfferedRate, s.AchievedRate, shed)
			return
		}
	}
	fmt.Fprintln(os.Stderr, "ustload: no knee within the ramp (system kept up at every step)")
}

func analyzeMain(args []string) {
	fs := flag.NewFlagSet("ustload analyze", flag.ExitOnError)
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional p99/p999 regression")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("analyze wants exactly two BENCH_LOAD.json paths, got %d", fs.NArg()))
	}
	oldR, err := load.ReadReport(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	newR, err := load.ReadReport(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	findings, err := load.Analyze(oldR, newR, *tolerance)
	if err != nil {
		fatal(err)
	}
	if len(findings) == 0 {
		fmt.Fprintf(os.Stderr, "ustload analyze: no regressions (%d step(s) in %s vs %d in %s)\n",
			len(oldR.Steps), fs.Arg(0), len(newR.Steps), fs.Arg(1))
		return
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "ustload analyze: REGRESSION %s\n", f)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ustload:", err)
	os.Exit(1)
}
