// Command ustquery evaluates a probabilistic spatio-temporal query
// against a stored dataset (see ustgen) — either in-process through the
// unified Request/Evaluate API, or against a running ustserve with
// -remote (results are byte-identical either way; the request travels
// as canonical wire JSON).
//
// Usage:
//
//	ustquery -db data.ustd -states 100-120 -times 20-25
//	         [-predicate exists|forall|ktimes|eventually]
//	         [-strategy auto|qb|ob|mc] [-workers N]
//	         [-threshold P] [-top N] [-stream] [-json]
//	         [-no-cache] [-no-filter]
//	ustquery -remote http://localhost:8080 -dataset fleet
//	         -states 100-120 -times 20-25 [same query flags]
//
// Threshold and top-k queries run through the engine's filter–refine
// path, and repeated evaluations share backward sweeps via the score
// cache; the per-query cache/filter statistics are reported on stderr.
// -no-cache / -no-filter disable either (results are identical).
//
// State and time ranges accept "lo-hi" intervals or comma-separated
// lists ("100-120" or "5,9,13" or a mix: "1-3,7"). -times is optional
// for -predicate eventually (the unbounded-horizon query ignores it).
// Ctrl-C cancels the evaluation cleanly mid-scan.
//
// -stream emits results one object at a time as they are produced
// (NDJSON with -json), without materializing the full result set —
// use it for scans over very large databases.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"ust/client"
	"ust/internal/core"
	"ust/internal/store"
)

func main() {
	dbPath := flag.String("db", "", "dataset file written by ustgen (required unless -remote)")
	remote := flag.String("remote", "", "ustserve base URL; query a server instead of a local file")
	dataset := flag.String("dataset", "default", "dataset name on the server (with -remote)")
	statesArg := flag.String("states", "", "query region, e.g. 100-120 (required)")
	timesArg := flag.String("times", "", "query times, e.g. 20-25 (required unless -predicate eventually)")
	predicate := flag.String("predicate", "exists", "exists | forall | ktimes | eventually")
	strategyArg := flag.String("strategy", "qb", "auto | qb | ob | mc")
	workers := flag.Int("workers", 1, "parallel workers for ob/mc strategies (0 = GOMAXPROCS)")
	threshold := flag.Float64("threshold", 0, "only report objects with P ≥ threshold")
	top := flag.Int("top", 20, "report at most N objects: ranked in batch mode, first N in -stream mode (0 = all)")
	mcSamples := flag.Int("mc-samples", 100, "samples per object for -strategy mc")
	stream := flag.Bool("stream", false, "stream results as they are produced (unranked)")
	asJSON := flag.Bool("json", false, "emit JSON (NDJSON with -stream) instead of a table")
	noCache := flag.Bool("no-cache", false, "bypass the engine score cache")
	noFilter := flag.Bool("no-filter", false, "disable filter–refine pruning for threshold/top-k")
	flag.Parse()

	if (*dbPath == "") == (*remote == "") || *statesArg == "" || (*timesArg == "" && *predicate != "eventually") {
		flag.Usage()
		os.Exit(2)
	}
	states, err := parseIntSet(*statesArg)
	if err != nil {
		fatal(fmt.Errorf("-states: %w", err))
	}
	var times []int
	if *timesArg != "" {
		times, err = parseIntSet(*timesArg)
		if err != nil {
			fatal(fmt.Errorf("-times: %w", err))
		}
	}

	var engine *core.Engine
	if *remote == "" {
		f, ferr := os.Open(*dbPath)
		if ferr != nil {
			fatal(ferr)
		}
		db, lerr := store.LoadDatabase(f)
		f.Close()
		if lerr != nil {
			fatal(lerr)
		}
		engine = core.NewEngine(db, core.Options{})
	}

	// Ctrl-C / SIGTERM cancels the evaluation within one work item.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []core.RequestOption{core.WithStates(states), core.WithTimes(times)}
	switch *strategyArg {
	case "auto":
		opts = append(opts, core.WithAutoPlan())
	case "qb":
		opts = append(opts, core.WithStrategy(core.StrategyQueryBased))
	case "ob":
		opts = append(opts, core.WithStrategy(core.StrategyObjectBased))
	case "mc":
		opts = append(opts, core.WithStrategy(core.StrategyMonteCarlo), core.WithMonteCarloBudget(*mcSamples, 0))
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategyArg))
	}
	if *workers != 1 {
		opts = append(opts, core.WithParallelism(*workers))
	}
	if *threshold > 0 {
		opts = append(opts, core.WithThreshold(*threshold))
	}
	if *noCache {
		opts = append(opts, core.WithCache(false))
	}
	if *noFilter {
		opts = append(opts, core.WithFilterRefine(false))
	}

	var pred core.Predicate
	switch *predicate {
	case "exists":
		pred = core.PredicateExists
	case "forall":
		pred = core.PredicateForAll
	case "ktimes":
		pred = core.PredicateKTimes
	case "eventually":
		pred = core.PredicateEventually
	default:
		fatal(fmt.Errorf("unknown predicate %q", *predicate))
	}
	ranked := *top > 0 && pred != core.PredicateKTimes && !*stream
	if ranked {
		opts = append(opts, core.WithTopK(*top))
	}

	req := core.NewRequest(pred, opts...)

	if *stream {
		if *remote != "" {
			streamResults(remoteSeq(ctx, *remote, *dataset, req), pred, *top, *asJSON)
		} else {
			streamResults(engine.EvaluateSeq(ctx, req), pred, *top, *asJSON)
		}
		return
	}

	var resp *core.Response
	if *remote != "" {
		resp, err = client.New(*remote, nil).Query(ctx, *dataset, req)
	} else {
		resp, err = engine.Evaluate(ctx, req)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ustquery: strategy %s, %d result(s)\n", resp.Strategy, len(resp.Results))
	if resp.Cache.Hits+resp.Cache.Misses > 0 {
		fmt.Fprintf(os.Stderr, "ustquery: score cache %d hit(s), %d miss(es)\n", resp.Cache.Hits, resp.Cache.Misses)
	}
	if resp.Filter.Candidates > 0 {
		fmt.Fprintf(os.Stderr, "ustquery: filter pruned %d of %d object(s), %d refined exactly\n",
			resp.Filter.Pruned, resp.Filter.Candidates, resp.Filter.Refined)
	}
	results := resp.Results
	if !ranked && pred != core.PredicateKTimes {
		// -top 0 means "all", still reported best-first like every other
		// batch table (WithTopK already ranked the ranked case).
		sort.Slice(results, func(a, b int) bool {
			if results[a].Prob != results[b].Prob {
				return results[a].Prob > results[b].Prob
			}
			return results[a].ObjectID < results[b].ObjectID
		})
	}
	if !ranked && *top > 0 && len(results) > *top {
		results = results[:*top]
	}
	if *asJSON {
		emitJSON(results)
		return
	}
	if pred == core.PredicateKTimes {
		for _, r := range results {
			fmt.Printf("object %d:\n", r.ObjectID)
			for k, p := range r.Dist {
				if p > 1e-9 {
					fmt.Printf("  P(%d visits) = %.6f\n", k, p)
				}
			}
		}
		return
	}
	fmt.Printf("%-10s  %s\n", "object", "probability")
	for _, r := range results {
		fmt.Printf("%-10d  %.6f\n", r.ObjectID, r.Prob)
	}
}

// errStopStream signals an early consumer stop through the remote
// stream callback.
var errStopStream = fmt.Errorf("stop")

// remoteSeq adapts the client's callback streaming to the same result
// sequence the local EvaluateSeq yields.
func remoteSeq(ctx context.Context, remote, dataset string, req core.Request) func(yield func(core.Result, error) bool) {
	return func(yield func(core.Result, error) bool) {
		cl := client.New(remote, nil)
		err := cl.QueryStream(ctx, dataset, req, func(r core.Result) error {
			if !yield(r, nil) {
				return errStopStream
			}
			return nil
		})
		if err != nil && err != errStopStream {
			yield(core.Result{}, err)
		}
	}
}

// streamResults drains a result sequence (local EvaluateSeq or a remote
// NDJSON stream), printing each result as it is produced: NDJSON with
// -json, the plain table otherwise. top > 0 caps the output at the
// first N results in evaluation order (streaming cannot rank).
func streamResults(results func(yield func(core.Result, error) bool), pred core.Predicate, top int, asJSON bool) {
	enc := json.NewEncoder(os.Stdout)
	if !asJSON && pred != core.PredicateKTimes {
		fmt.Printf("%-10s  %s\n", "object", "probability")
	}
	n := 0
	for r, err := range results {
		if err != nil {
			fatal(err)
		}
		if top > 0 && n == top {
			fmt.Fprintf(os.Stderr, "ustquery: stopped after %d result(s); -top 0 streams all\n", top)
			break
		}
		n++
		switch {
		case asJSON:
			if err := enc.Encode(r); err != nil {
				fatal(err)
			}
		case pred == core.PredicateKTimes:
			fmt.Printf("object %d:\n", r.ObjectID)
			for k, p := range r.Dist {
				if p > 1e-9 {
					fmt.Printf("  P(%d visits) = %.6f\n", k, p)
				}
			}
		default:
			fmt.Printf("%-10d  %.6f\n", r.ObjectID, r.Prob)
		}
	}
	fmt.Fprintf(os.Stderr, "ustquery: streamed %d result(s)\n", n)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

// parseIntSet parses "1-3,7,10-12" into an id list.
func parseIntSet(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(strings.TrimSpace(lo))
			if err != nil {
				return nil, fmt.Errorf("bad interval %q", part)
			}
			b, err := strconv.Atoi(strings.TrimSpace(hi))
			if err != nil {
				return nil, fmt.Errorf("bad interval %q", part)
			}
			if b < a {
				return nil, fmt.Errorf("inverted interval %q", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty set")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ustquery:", err)
	os.Exit(1)
}
