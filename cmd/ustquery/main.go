// Command ustquery evaluates a probabilistic spatio-temporal query
// against a stored dataset (see ustgen).
//
// Usage:
//
//	ustquery -db data.ustd -states 100-120 -times 20-25
//	         [-predicate exists|forall|ktimes] [-strategy qb|ob|mc]
//	         [-threshold P] [-top N] [-json]
//
// State and time ranges accept "lo-hi" intervals or comma-separated
// lists ("100-120" or "5,9,13" or a mix: "1-3,7").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ust/internal/core"
	"ust/internal/store"
)

func main() {
	dbPath := flag.String("db", "", "dataset file written by ustgen (required)")
	statesArg := flag.String("states", "", "query region, e.g. 100-120 (required)")
	timesArg := flag.String("times", "", "query times, e.g. 20-25 (required)")
	predicate := flag.String("predicate", "exists", "exists | forall | ktimes")
	strategyArg := flag.String("strategy", "qb", "qb | ob | mc")
	threshold := flag.Float64("threshold", 0, "only report objects with P ≥ threshold")
	top := flag.Int("top", 20, "print at most N objects (0 = all)")
	mcSamples := flag.Int("mc-samples", 100, "samples per object for -strategy mc")
	asJSON := flag.Bool("json", false, "emit JSON instead of a table")
	flag.Parse()

	if *dbPath == "" || *statesArg == "" || *timesArg == "" {
		flag.Usage()
		os.Exit(2)
	}
	states, err := parseIntSet(*statesArg)
	if err != nil {
		fatal(fmt.Errorf("-states: %w", err))
	}
	times, err := parseIntSet(*timesArg)
	if err != nil {
		fatal(fmt.Errorf("-times: %w", err))
	}

	f, err := os.Open(*dbPath)
	if err != nil {
		fatal(err)
	}
	db, err := store.LoadDatabase(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var strategy core.Strategy
	switch *strategyArg {
	case "qb":
		strategy = core.StrategyQueryBased
	case "ob":
		strategy = core.StrategyObjectBased
	case "mc":
		strategy = core.StrategyMonteCarlo
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategyArg))
	}
	engine := core.NewEngine(db, core.Options{Strategy: strategy, MonteCarloSamples: *mcSamples})
	q := core.NewQuery(states, times)

	switch *predicate {
	case "exists", "forall":
		var res []core.Result
		if *predicate == "exists" {
			res, err = engine.Exists(q)
		} else {
			res, err = engine.ForAll(q)
		}
		if err != nil {
			fatal(err)
		}
		res = filterSort(res, *threshold)
		if *top > 0 && len(res) > *top {
			res = res[:*top]
		}
		if *asJSON {
			emitJSON(res)
			return
		}
		fmt.Printf("%-10s  %s\n", "object", "probability")
		for _, r := range res {
			fmt.Printf("%-10d  %.6f\n", r.ObjectID, r.Prob)
		}
	case "ktimes":
		res, err := engine.KTimes(q)
		if err != nil {
			fatal(err)
		}
		if *top > 0 && len(res) > *top {
			res = res[:*top]
		}
		if *asJSON {
			emitJSON(res)
			return
		}
		for _, r := range res {
			fmt.Printf("object %d:\n", r.ObjectID)
			for k, p := range r.Dist {
				if p > 1e-9 {
					fmt.Printf("  P(%d visits) = %.6f\n", k, p)
				}
			}
		}
	default:
		fatal(fmt.Errorf("unknown predicate %q", *predicate))
	}
}

func filterSort(res []core.Result, threshold float64) []core.Result {
	out := res[:0]
	for _, r := range res {
		if r.Prob >= threshold {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Prob != out[b].Prob {
			return out[a].Prob > out[b].Prob
		}
		return out[a].ObjectID < out[b].ObjectID
	})
	return out
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

// parseIntSet parses "1-3,7,10-12" into a sorted id list.
func parseIntSet(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(strings.TrimSpace(lo))
			if err != nil {
				return nil, fmt.Errorf("bad interval %q", part)
			}
			b, err := strconv.Atoi(strings.TrimSpace(hi))
			if err != nil {
				return nil, fmt.Errorf("bad interval %q", part)
			}
			if b < a {
				return nil, fmt.Errorf("inverted interval %q", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty set")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ustquery:", err)
	os.Exit(1)
}
