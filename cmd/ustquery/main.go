// Command ustquery evaluates a probabilistic spatio-temporal query
// against a stored dataset (see ustgen) — either in-process through the
// unified Request/Evaluate API, or against a running ustserve with
// -remote (results are byte-identical either way; the request travels
// as canonical wire JSON).
//
// Usage:
//
//	ustquery -db data.ustd -states 100-120 -times 20-25
//	         [-predicate exists|forall|ktimes|eventually]
//	         [-strategy auto|qb|ob|mc] [-workers N]
//	         [-threshold P] [-top N] [-stream] [-json]
//	         [-no-cache] [-no-filter]
//	ustquery -db data.ustd -q 'exists(states(100-120) @ [20,25]) and
//	         not forall(states(7) @ [5,9]) where tau=0.3'
//	ustquery -remote http://localhost:8080 -dataset fleet
//	         -states 100-120 -times 20-25 [same query flags]
//
// -q takes a complete query in the text query language (see
// ust/query/README.md), including compound and/or/not/then expressions
// over per-atom windows — evaluated exactly, correlations included. It
// replaces the window/predicate/tuning flags; parse errors are reported
// with a caret under the offending column.
//
// Aggregate queries — count(...) and occupancy(...) — answer with one
// distribution instead of per-object rows:
//
//	ustquery -db data.ustd -q 'count(exists(states(100-120) @ [20,25])) where min=10'
//
// prints the exact count PMF with its moments (and P(count ≥ 10)); with
// -stream the PMF arrives as NDJSON rows {"count":k,"p":…} (occupancy:
// one row per timestep), with -json as a single document.
//
// Threshold and top-k queries run through the engine's filter–refine
// path, and repeated evaluations share backward sweeps via the score
// cache; the per-query cache/filter statistics are reported on stderr.
// -no-cache / -no-filter disable either (results are identical).
//
// State and time ranges accept "lo-hi" intervals or comma-separated
// lists ("100-120" or "5,9,13" or a mix: "1-3,7"). -times is optional
// for -predicate eventually (the unbounded-horizon query ignores it).
// Ctrl-C cancels the evaluation cleanly mid-scan.
//
// -stream emits results one object at a time as they are produced
// (NDJSON with -json), without materializing the full result set —
// use it for scans over very large databases.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"ust/client"
	"ust/internal/core"
	"ust/internal/store"
	"ust/query"
)

func main() {
	dbPath := flag.String("db", "", "dataset file written by ustgen (required unless -remote)")
	queryText := flag.String("q", "", "complete query in the text query language (replaces -states/-times/-predicate/-strategy/... flags)")
	remote := flag.String("remote", "", "ustserve base URL; query a server instead of a local file")
	dataset := flag.String("dataset", "default", "dataset name on the server (with -remote)")
	statesArg := flag.String("states", "", "query region, e.g. 100-120 (required)")
	timesArg := flag.String("times", "", "query times, e.g. 20-25 (required unless -predicate eventually)")
	predicate := flag.String("predicate", "exists", "exists | forall | ktimes | eventually")
	strategyArg := flag.String("strategy", "qb", "auto | qb | ob | mc")
	workers := flag.Int("workers", 1, "parallel workers for ob/mc strategies (0 = GOMAXPROCS)")
	threshold := flag.Float64("threshold", 0, "only report objects with P ≥ threshold")
	top := flag.Int("top", 20, "report at most N objects: ranked in batch mode, first N in -stream mode (0 = all)")
	mcSamples := flag.Int("mc-samples", 100, "samples per object for -strategy mc")
	stream := flag.Bool("stream", false, "stream results as they are produced (unranked)")
	asJSON := flag.Bool("json", false, "emit JSON (NDJSON with -stream) instead of a table")
	noCache := flag.Bool("no-cache", false, "bypass the engine score cache")
	noFilter := flag.Bool("no-filter", false, "disable filter–refine pruning for threshold/top-k")
	flag.Parse()

	if (*dbPath == "") == (*remote == "") {
		flag.Usage()
		os.Exit(2)
	}
	if *queryText != "" {
		// -q carries the whole question; reject conflicting flag usage
		// instead of silently ignoring it.
		conflicting := map[string]bool{
			"states": true, "times": true, "predicate": true, "strategy": true,
			"workers": true, "threshold": true, "mc-samples": true,
			"no-cache": true, "no-filter": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if conflicting[f.Name] {
				fatal(fmt.Errorf("-%s conflicts with -q; put it in the query's where-clause", f.Name))
			}
		})
	} else if *statesArg == "" || (*timesArg == "" && *predicate != "eventually") {
		flag.Usage()
		os.Exit(2)
	}
	var states, times []int
	var err error
	if *queryText == "" {
		states, err = parseIntSet(*statesArg)
		if err != nil {
			fatal(fmt.Errorf("-states: %w", err))
		}
		if *timesArg != "" {
			times, err = parseIntSet(*timesArg)
			if err != nil {
				fatal(fmt.Errorf("-times: %w", err))
			}
		}
	}

	var engine *core.Engine
	if *remote == "" {
		f, ferr := os.Open(*dbPath)
		if ferr != nil {
			fatal(ferr)
		}
		db, lerr := store.LoadDatabase(f)
		f.Close()
		if lerr != nil {
			fatal(lerr)
		}
		engine = core.NewEngine(db, core.Options{})
	}

	// Ctrl-C / SIGTERM cancels the evaluation within one work item.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var req core.Request
	if *queryText != "" {
		req, err = query.Parse(*queryText)
		if err != nil {
			fatalParse(*queryText, err)
		}
	} else {
		opts := []core.RequestOption{core.WithStates(states), core.WithTimes(times)}
		switch *strategyArg {
		case "auto":
			opts = append(opts, core.WithAutoPlan())
		case "qb":
			opts = append(opts, core.WithStrategy(core.StrategyQueryBased))
		case "ob":
			opts = append(opts, core.WithStrategy(core.StrategyObjectBased))
		case "mc":
			opts = append(opts, core.WithStrategy(core.StrategyMonteCarlo), core.WithMonteCarloBudget(*mcSamples, 0))
		default:
			fatal(fmt.Errorf("unknown strategy %q", *strategyArg))
		}
		if *workers != 1 {
			opts = append(opts, core.WithParallelism(*workers))
		}
		if *threshold > 0 {
			opts = append(opts, core.WithThreshold(*threshold))
		}
		if *noCache {
			opts = append(opts, core.WithCache(false))
		}
		if *noFilter {
			opts = append(opts, core.WithFilterRefine(false))
		}
		var pred core.Predicate
		switch *predicate {
		case "exists":
			pred = core.PredicateExists
		case "forall":
			pred = core.PredicateForAll
		case "ktimes":
			pred = core.PredicateKTimes
		case "eventually":
			pred = core.PredicateEventually
		default:
			fatal(fmt.Errorf("unknown predicate %q", *predicate))
		}
		if *top > 0 && pred != core.PredicateKTimes && !*stream {
			opts = append(opts, core.WithTopK(*top))
		}
		req = core.NewRequest(pred, opts...)
	}
	pred := req.Predicate
	ranked := req.TopKHint() > 0

	// Buffered stdout: batch output flushes once at the end; -stream
	// flushes per result so a consumer at the end of a pipe sees each
	// NDJSON line as it is produced, not when the buffer happens to
	// fill.
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if spec, isAgg := req.AggregateHint(); isAgg {
		// count(...)/occupancy(...) answer with one distribution, so
		// they go through the batch entry point even under -stream;
		// -stream only changes the rendering (NDJSON rows per count or
		// timestep instead of one document).
		var resp *core.Response
		if *remote != "" {
			resp, err = client.New(*remote, nil).Query(ctx, *dataset, req)
		} else {
			resp, err = engine.Evaluate(ctx, req)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ustquery: strategy %s, aggregate %s\n", resp.Strategy, spec.Kind)
		emitAggregate(out, resp.Agg, spec, *stream, *asJSON)
		return
	}

	if *stream {
		if *remote != "" {
			streamResults(out, remoteSeq(ctx, *remote, *dataset, req), pred, *top, *asJSON)
		} else {
			streamResults(out, engine.EvaluateSeq(ctx, req), pred, *top, *asJSON)
		}
		return
	}

	var resp *core.Response
	if *remote != "" {
		resp, err = client.New(*remote, nil).Query(ctx, *dataset, req)
	} else {
		resp, err = engine.Evaluate(ctx, req)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ustquery: strategy %s, %d result(s)\n", resp.Strategy, len(resp.Results))
	if resp.Cache.Hits+resp.Cache.Misses > 0 {
		fmt.Fprintf(os.Stderr, "ustquery: score cache %d hit(s), %d miss(es)\n", resp.Cache.Hits, resp.Cache.Misses)
	}
	if resp.Filter.Candidates > 0 {
		fmt.Fprintf(os.Stderr, "ustquery: filter pruned %d of %d object(s), %d refined exactly\n",
			resp.Filter.Pruned, resp.Filter.Candidates, resp.Filter.Refined)
	}
	results := resp.Results
	if !ranked && pred != core.PredicateKTimes {
		// -top 0 means "all", still reported best-first like every other
		// batch table (WithTopK already ranked the ranked case).
		sort.Slice(results, func(a, b int) bool {
			if results[a].Prob != results[b].Prob {
				return results[a].Prob > results[b].Prob
			}
			return results[a].ObjectID < results[b].ObjectID
		})
	}
	if !ranked && *top > 0 && len(results) > *top {
		results = results[:*top]
	}
	if *asJSON {
		emitJSON(out, results)
		return
	}
	if pred == core.PredicateKTimes {
		for _, r := range results {
			fmt.Fprintf(out, "object %d:\n", r.ObjectID)
			for k, p := range r.Dist {
				if p > 1e-9 {
					fmt.Fprintf(out, "  P(%d visits) = %.6f\n", k, p)
				}
			}
		}
		return
	}
	fmt.Fprintf(out, "%-10s  %s\n", "object", "probability")
	for _, r := range results {
		fmt.Fprintf(out, "%-10d  %.6f\n", r.ObjectID, r.Prob)
	}
}

// fatalParse reports a text-query syntax error with a caret under the
// offending column.
func fatalParse(q string, err error) {
	var pe *query.ParseError
	if errors.As(err, &pe) && pe.Pos <= len(q) {
		fmt.Fprint(os.Stderr, caretError(q, pe))
		os.Exit(2)
	}
	fatal(err)
}

// caretError renders a parse error with the query echoed and a caret
// under the offending column.
func caretError(q string, pe *query.ParseError) string {
	return fmt.Sprintf("ustquery: parse error at column %d: %s\n  %s\n  %s^\n",
		pe.Pos+1, pe.Msg, q, strings.Repeat(" ", pe.Pos))
}

// errStopStream signals an early consumer stop through the remote
// stream callback.
var errStopStream = fmt.Errorf("stop")

// remoteSeq adapts the client's callback streaming to the same result
// sequence the local EvaluateSeq yields.
func remoteSeq(ctx context.Context, remote, dataset string, req core.Request) func(yield func(core.Result, error) bool) {
	return func(yield func(core.Result, error) bool) {
		cl := client.New(remote, nil)
		err := cl.QueryStream(ctx, dataset, req, func(r core.Result) error {
			if !yield(r, nil) {
				return errStopStream
			}
			return nil
		})
		if err != nil && err != errStopStream {
			yield(core.Result{}, err)
		}
	}
}

// streamResults drains a result sequence (local EvaluateSeq or a remote
// NDJSON stream), printing each result as it is produced: NDJSON with
// -json, the plain table otherwise. Every result is flushed through the
// buffered writer immediately, so a pipe consumer (jq, a dashboard
// tailer) sees lines as they are computed — stdout being a pipe rather
// than a terminal must not batch them up. top > 0 caps the output at
// the first N results in evaluation order (streaming cannot rank).
func streamResults(out *bufio.Writer, results func(yield func(core.Result, error) bool), pred core.Predicate, top int, asJSON bool) {
	enc := json.NewEncoder(out)
	if !asJSON && pred != core.PredicateKTimes {
		fmt.Fprintf(out, "%-10s  %s\n", "object", "probability")
	}
	n := 0
	for r, err := range results {
		if err != nil {
			out.Flush()
			fatal(err)
		}
		if top > 0 && n == top {
			fmt.Fprintf(os.Stderr, "ustquery: stopped after %d result(s); -top 0 streams all\n", top)
			break
		}
		n++
		switch {
		case asJSON:
			if err := enc.Encode(r); err != nil {
				fatal(err)
			}
		case pred == core.PredicateKTimes:
			fmt.Fprintf(out, "object %d:\n", r.ObjectID)
			for k, p := range r.Dist {
				if p > 1e-9 {
					fmt.Fprintf(out, "  P(%d visits) = %.6f\n", k, p)
				}
			}
		default:
			fmt.Fprintf(out, "%-10d  %.6f\n", r.ObjectID, r.Prob)
		}
		if err := out.Flush(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "ustquery: streamed %d result(s)\n", n)
}

// emitAggregate renders an aggregate answer. -stream emits one NDJSON
// row per PMF entry ({"count":k,"p":…}) or occupancy timestep; -json
// emits the aggregate as a single document; the default is a table with
// the moments summarized first.
func emitAggregate(out *bufio.Writer, a *core.AggResult, spec core.AggSpec, stream, asJSON bool) {
	if a == nil {
		fatal(fmt.Errorf("aggregate request returned no aggregate"))
	}
	if stream {
		enc := json.NewEncoder(out)
		if a.Kind == core.AggOccupancy {
			for _, pt := range a.Profile {
				row := struct {
					Time     int     `json:"time"`
					Mean     float64 `json:"mean"`
					Variance float64 `json:"variance"`
					Tail     float64 `json:"tail,omitempty"`
				}{pt.Time, pt.Mean, pt.Variance, pt.Tail}
				if err := enc.Encode(row); err != nil {
					fatal(err)
				}
				out.Flush()
			}
			fmt.Fprintf(os.Stderr, "ustquery: streamed %d timestep(s)\n", len(a.Profile))
			return
		}
		for k, p := range a.PMF {
			row := struct {
				Count int     `json:"count"`
				P     float64 `json:"p"`
			}{k, p}
			if err := enc.Encode(row); err != nil {
				fatal(err)
			}
			out.Flush()
		}
		fmt.Fprintf(os.Stderr, "ustquery: streamed %d count(s)\n", len(a.PMF))
		return
	}
	if asJSON {
		emitJSON(out, a)
		return
	}
	if a.Kind == core.AggOccupancy {
		fmt.Fprintf(out, "%-8s  %-12s  %-12s", "time", "mean", "variance")
		if spec.MinCount > 0 {
			fmt.Fprintf(out, "  P(count>=%d)", spec.MinCount)
		}
		fmt.Fprintln(out)
		for _, pt := range a.Profile {
			fmt.Fprintf(out, "%-8d  %-12.6f  %-12.6f", pt.Time, pt.Mean, pt.Variance)
			if spec.MinCount > 0 {
				fmt.Fprintf(out, "  %.6f", pt.Tail)
			}
			fmt.Fprintln(out)
		}
		return
	}
	fmt.Fprintf(out, "E[count] = %.6f  Var = %.6f  mode = %d\n", a.Mean, a.Variance, a.ModeCount)
	if spec.MinCount > 0 {
		fmt.Fprintf(out, "P(count >= %d) = %.6f\n", spec.MinCount, a.Tail)
	}
	fmt.Fprintf(out, "%-8s  %s\n", "count", "probability")
	for k, p := range a.PMF {
		if p > 1e-9 {
			fmt.Fprintf(out, "%-8d  %.6f\n", k, p)
		}
	}
}

func emitJSON(out *bufio.Writer, v any) {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

// parseIntSet parses "1-3,7,10-12" into an id list.
func parseIntSet(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(strings.TrimSpace(lo))
			if err != nil {
				return nil, fmt.Errorf("bad interval %q", part)
			}
			b, err := strconv.Atoi(strings.TrimSpace(hi))
			if err != nil {
				return nil, fmt.Errorf("bad interval %q", part)
			}
			if b < a {
				return nil, fmt.Errorf("inverted interval %q", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty set")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ustquery:", err)
	os.Exit(1)
}
