package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ust/client"
	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/service"
	"ust/query"
)

func TestParseIntSet(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"5", []int{5}, true},
		{"1-3", []int{1, 2, 3}, true},
		{"1-3,7", []int{1, 2, 3, 7}, true},
		{"10-12, 2", []int{10, 11, 12, 2}, true},
		{" 4 ", []int{4}, true},
		{"3-1", nil, false},
		{"a", nil, false},
		{"1-b", nil, false},
		{"a-2", nil, false},
		{"", nil, false},
		{",,,", nil, false},
	}
	for _, c := range cases {
		got, err := parseIntSet(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseIntSet(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseIntSet(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseIntSet(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

// TestRemoteSeqMatchesLocal pins the -remote streaming path: the
// sequence adapted from a server's NDJSON stream must equal the local
// EvaluateSeq over the same data.
func TestRemoteSeqMatchesLocal(t *testing.T) {
	chain, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	mkdb := func() *core.Database {
		db := core.NewDatabase(chain)
		for id := 0; id < 7; id++ {
			if err := db.AddSimple(id, markov.PointDistribution(3, id%3)); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	svc := service.New(service.Config{})
	defer svc.Close()
	if err := svc.Create("default", mkdb(), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()

	req := core.NewRequest(core.PredicateExists,
		core.WithStates([]int{0, 1}), core.WithTimes([]int{2, 3}))
	engine := core.NewEngine(mkdb(), core.Options{})
	var local []core.Result
	for r, serr := range engine.EvaluateSeq(context.Background(), req) {
		if serr != nil {
			t.Fatal(serr)
		}
		local = append(local, r)
	}
	var remote []core.Result
	for r, serr := range remoteSeq(context.Background(), ts.URL, "default", req) {
		if serr != nil {
			t.Fatal(serr)
		}
		remote = append(remote, r)
	}
	if !reflect.DeepEqual(local, remote) {
		t.Fatalf("remote stream diverged:\n  remote %+v\n  local  %+v", remote, local)
	}
}

// TestRemoteAggregateMatchesLocal pins the -q "count(...)" path the CLI
// routes through Query: the remote aggregate must carry the exact PMF
// bits of a local evaluation.
func TestRemoteAggregateMatchesLocal(t *testing.T) {
	chain, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	mkdb := func() *core.Database {
		db := core.NewDatabase(chain)
		for id := 0; id < 7; id++ {
			if err := db.AddSimple(id, markov.PointDistribution(3, id%3)); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	svc := service.New(service.Config{})
	defer svc.Close()
	if err := svc.Create("default", mkdb(), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()

	req, err := query.Parse("count(exists(states(0,1) @ [2,3])) where min=2")
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine(mkdb(), core.Options{})
	want, err := engine.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.New(ts.URL, nil).Query(context.Background(), "default", req)
	if err != nil {
		t.Fatal(err)
	}
	if want.Agg == nil || got.Agg == nil {
		t.Fatalf("missing aggregate: local %v, remote %v", want.Agg, got.Agg)
	}
	if !reflect.DeepEqual(got.Agg, want.Agg) {
		t.Fatalf("remote aggregate diverged:\n  remote %+v\n  local  %+v", got.Agg, want.Agg)
	}
}

// TestCaretError pins the -q parse-error rendering: the caret lands
// under the offending column.
func TestCaretError(t *testing.T) {
	q := "exists(states(1) @ [1,2]) and exsts(states(2) @ [3,4])"
	_, err := query.Parse(q)
	if err == nil {
		t.Fatal("bad query parsed")
	}
	var pe *query.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a ParseError", err)
	}
	msg := caretError(q, pe)
	lines := strings.Split(msg, "\n")
	if len(lines) < 3 {
		t.Fatalf("caret message too short: %q", msg)
	}
	if !strings.Contains(lines[0], "column 31") {
		t.Errorf("wrong column: %q", lines[0])
	}
	caret := strings.Index(lines[2], "^")
	bad := strings.Index(lines[1], "exsts")
	if caret != bad {
		t.Errorf("caret at %d, offending token at %d:\n%s", caret, bad, msg)
	}
}
