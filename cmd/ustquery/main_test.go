package main

import (
	"testing"
)

func TestParseIntSet(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"5", []int{5}, true},
		{"1-3", []int{1, 2, 3}, true},
		{"1-3,7", []int{1, 2, 3, 7}, true},
		{"10-12, 2", []int{10, 11, 12, 2}, true},
		{" 4 ", []int{4}, true},
		{"3-1", nil, false},
		{"a", nil, false},
		{"1-b", nil, false},
		{"a-2", nil, false},
		{"", nil, false},
		{",,,", nil, false},
	}
	for _, c := range cases {
		got, err := parseIntSet(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseIntSet(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseIntSet(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseIntSet(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}
