package main

import (
	"testing"

	"ust/internal/core"
)

func TestParseIntSet(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"5", []int{5}, true},
		{"1-3", []int{1, 2, 3}, true},
		{"1-3,7", []int{1, 2, 3, 7}, true},
		{"10-12, 2", []int{10, 11, 12, 2}, true},
		{" 4 ", []int{4}, true},
		{"3-1", nil, false},
		{"a", nil, false},
		{"1-b", nil, false},
		{"a-2", nil, false},
		{"", nil, false},
		{",,,", nil, false},
	}
	for _, c := range cases {
		got, err := parseIntSet(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseIntSet(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseIntSet(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseIntSet(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestFilterSort(t *testing.T) {
	in := []core.Result{
		{ObjectID: 1, Prob: 0.2},
		{ObjectID: 2, Prob: 0.9},
		{ObjectID: 3, Prob: 0.5},
		{ObjectID: 4, Prob: 0.9},
	}
	out := filterSort(in, 0.5)
	if len(out) != 3 {
		t.Fatalf("filtered to %d, want 3", len(out))
	}
	if out[0].ObjectID != 2 || out[1].ObjectID != 4 || out[2].ObjectID != 3 {
		t.Errorf("order = %v", out)
	}
}
