// Command ustserve serves uncertain-spatio-temporal query evaluation
// over HTTP: the network face of the library's Service layer. It loads
// named datasets from the binary store format (see ustgen), then
// answers batch queries (JSON), streaming scans (NDJSON) and standing
// subscriptions (NDJSON push), with per-request deadlines, admission
// control, and single-flight coalescing of identical concurrent
// requests — observable at /metrics.
//
// Usage:
//
//	ustserve -addr :8080 -dataset fleet=fleet.ust -dataset bergs=bergs.ust
//	         [-max-concurrent N] [-timeout 30s] [-cache-bytes N] [-shards N]
//	         [-coordinator -worker URL ...] [-sweep-tier URL]
//
// -shards N backs every dataset with the consistent-hash shard router:
// objects partition across N shard engines sharing one score cache,
// queries fan out and merge with byte-identical results — single-process
// scale-out over the same wire contract a multi-process deployment
// speaks.
//
// -coordinator turns the process into the front of a multi-process
// deployment: every dataset is served by a ring of remote ustserve
// workers (each -worker URL is one), populated through the migration
// protocol and queried over the wire contract, still byte-identical to
// a single engine. The coordinator also hosts the sweep lease tier at
// /v1/sweeps; point each worker's -sweep-tier at the coordinator so the
// fleet computes each distinct backward sweep exactly once.
//
// -replicas k (coordinator mode) places every shard on its top-k
// workers by the rendezvous ring: writes mirror to all replicas under
// the generation fence, and reads go to the primary with automatic
// failover to the next live replica on connection failure or
// probe-declared death — byte-identical results either way, so a
// killed worker costs availability of nothing. The coordinator probes
// every worker's /readyz on -probe-interval (consecutive-failure
// thresholds, no flapping) and exposes ust_worker_healthy{worker} at
// /metrics.
//
// Endpoints:
//
//	GET  /healthz                    liveness
//	GET  /metrics                    Prometheus text format
//	GET  /v1/datasets                list datasets
//	PUT  /v1/datasets/{name}         upload a dataset (binary store bytes)
//	POST /v1/datasets/{name}/observe ingest an observation
//	POST /v1/datasets/{name}/objects track a new object
//	POST /v1/query                   batch query
//	POST /v1/query/stream            streaming query (NDJSON)
//	POST /v1/subscribe               standing query (NDJSON push)
//
// The three query endpoints take either a structured request or the
// text query language in the same envelope — {"dataset":d,"query":
// "exists(states(1-9) @ [5,15]) and not forall(...) where tau=0.3"} —
// parsed server-side (see ust/query/README.md). Compound expressions,
// ranking and strategy hints all travel either way.
//
// SIGINT/SIGTERM triggers a graceful shutdown: listeners close, active
// subscriptions terminate, in-flight requests get a drain window.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ust/client"
	"ust/internal/core"
	"ust/internal/dist"
	"ust/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", service.DefaultMaxConcurrent, "admission limit on concurrently running evaluations")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline (0 = none)")
	cacheBytes := flag.Int("cache-bytes", 0, "score-cache budget per dataset (0 = default, negative = disabled)")
	shards := flag.Int("shards", 1, "shard engines per dataset (>1 = consistent-hash scale-out, byte-identical results)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	coordinator := flag.Bool("coordinator", false, "serve datasets through a ring of remote workers (-worker URLs)")
	replicas := flag.Int("replicas", 1, "replicas per shard in -coordinator mode (>1 = health-probed read failover)")
	probeEvery := flag.Duration("probe-interval", time.Second, "worker health-probe period in -coordinator mode")
	sweepTier := flag.String("sweep-tier", "", "coordinator URL whose /v1/sweeps lease tier this worker joins")
	var workers []string
	flag.Func("worker", "worker base URL for -coordinator mode (repeatable)", func(v string) error {
		workers = append(workers, v)
		return nil
	})
	var datasets []string
	flag.Func("dataset", "name=path dataset to load at startup (repeatable)", func(v string) error {
		datasets = append(datasets, v)
		return nil
	})
	flag.Parse()

	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be ≥ 1, got %d", *shards))
	}
	opts := core.Options{CacheBytes: *cacheBytes}
	role := "server"
	if *sweepTier != "" {
		opts.Sweeps = dist.NewSweepClient(*sweepTier, nil)
		role = "worker"
	}
	cfg := service.Config{
		Options:        opts,
		MaxConcurrent:  *maxConcurrent,
		DefaultTimeout: *timeout,
		Shards:         *shards,
	}
	if *replicas < 1 {
		fatal(fmt.Errorf("-replicas must be ≥ 1, got %d", *replicas))
	}
	if *replicas > 1 && !*coordinator {
		fatal(fmt.Errorf("-replicas only applies to -coordinator mode"))
	}
	ringMembers := *shards
	var prober *dist.Prober
	if *coordinator {
		if len(workers) == 0 {
			fatal(fmt.Errorf("-coordinator needs at least one -worker URL"))
		}
		role = "coordinator"
		clients := make([]*client.Client, len(workers))
		for i, w := range workers {
			clients[i] = client.NewWithConfig(w, client.Config{MaxRetries: 3})
		}
		n := *shards
		if n < len(workers) {
			n = len(workers)
		}
		ringMembers = n
		if *replicas > 1 {
			// Replicated placement: each shard lives on its top-k workers
			// by the worker rendezvous ring; reads fail over in owner
			// order, gated by the active health prober.
			prober = dist.NewProber(clients, workers, dist.ProberConfig{Interval: *probeEvery})
			cfg.WorkerHealth = func() []service.WorkerHealth {
				snap := prober.Snapshot()
				out := make([]service.WorkerHealth, len(snap))
				for i, wh := range snap {
					out[i] = service.WorkerHealth{Worker: wh.Worker, Healthy: wh.Healthy}
				}
				return out
			}
			cfg.Engines = func(name string, db *core.Database) (service.Evaluator, service.Ingester, error) {
				router, err := dist.NewReplicatedRouter(db, n, core.Options{CacheBytes: *cacheBytes}, name, clients, *replicas, prober)
				if err != nil {
					return nil, nil, err
				}
				return router, router, nil
			}
		} else {
			cfg.Engines = func(name string, db *core.Database) (service.Evaluator, service.Ingester, error) {
				router, err := dist.NewRouter(db, n, core.Options{CacheBytes: *cacheBytes}, name, clients)
				if err != nil {
					return nil, nil, err
				}
				return router, router, nil
			}
		}
	}
	cfg.Role = role
	svc := service.New(cfg)
	// Not ready until every -dataset finished loading (and, for a
	// coordinator, its worker rings are populated); /healthz answers the
	// moment the listener is up, /readyz only after this block.
	svc.SetReady(false)
	svc.SetRingMembers(ringMembers)
	for _, spec := range datasets {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fatal(fmt.Errorf("bad -dataset %q (want name=path)", spec))
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = svc.Load(name, f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("loading dataset %q: %w", name, err))
		}
		info, err := svc.Info(name)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ustserve: dataset %q: %d objects over %d states\n",
			info.Name, info.Objects, info.States)
	}
	svc.SetReady(true)
	if prober != nil {
		prober.Start()
		defer prober.Stop()
	}

	// No WriteTimeout: streaming and subscription responses are
	// long-lived by design; the handlers bound each individual write
	// instead, so a stalled reader is cut without capping stream length.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ustserve: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "ustserve: shutting down")
	svc.SetReady(false) // flip /readyz before the drain window
	svc.Close()         // terminate subscriptions so streaming handlers drain
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "ustserve: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ustserve:", err)
	os.Exit(1)
}
