package main

// End-to-end tests of the HTTP front end: a ustserve handler mounted on
// httptest, driven through the public client package. The central
// invariant is remote ≡ in-process: the shared conformance suite
// (internal/conformance) runs its full predicate × strategy × ranking
// × region × expr table against the HTTP stack — unsharded and sharded
// — and requires byte-identical results (same float64 bits) to a local
// engine over the same data.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"iter"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ust"
	"ust/client"
	"ust/internal/conformance"
	"ust/internal/core"
	"ust/internal/service"
)

// testDB builds a deterministic multi-object database over the paper's
// 3-state chain.
func testDB(t testing.TB, objects int) *ust.Database {
	t.Helper()
	chain, err := ust.ChainFromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := ust.NewDatabase(chain)
	for id := 0; id < objects; id++ {
		if err := db.AddSimple(id, ust.PointDistribution(3, id%3)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// newServer spins a service with one dataset plus a local twin engine
// over an identical database.
func newServer(t testing.TB, objects int) (*client.Client, *ust.Engine, *service.Service) {
	t.Helper()
	svc := service.New(service.Config{})
	if err := svc.Create("d", testDB(t, objects), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})
	local := ust.NewEngine(testDB(t, objects), ust.Options{})
	return client.New(ts.URL, ts.Client()), local, svc
}

// remoteEvaluator adapts the HTTP client to the conformance suite's
// Evaluator surface: Evaluate via /v1/query, EvaluateSeq via the NDJSON
// stream, EvaluateBatch as sequential queries (the wire API is
// per-request; the contract under test is result identity).
type remoteEvaluator struct {
	c    *client.Client
	name string
}

var errStopStream = errors.New("consumer stopped")

func (r remoteEvaluator) Evaluate(ctx context.Context, req core.Request) (*core.Response, error) {
	return r.c.Query(ctx, r.name, req)
}

func (r remoteEvaluator) EvaluateSeq(ctx context.Context, req core.Request) iter.Seq2[core.Result, error] {
	return func(yield func(core.Result, error) bool) {
		err := r.c.QueryStream(ctx, r.name, req, func(res ust.Result) error {
			if !yield(res, nil) {
				return errStopStream
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopStream) {
			yield(core.Result{}, err)
		}
	}
}

func (r remoteEvaluator) EvaluateBatch(ctx context.Context, reqs []core.Request) ([]*core.Response, error) {
	out := make([]*core.Response, len(reqs))
	for i, req := range reqs {
		resp, err := r.c.Query(ctx, r.name, req)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// TestRemoteConformance runs the shared conformance table against the
// full HTTP stack — requests wire-encoded, regions re-grounded
// server-side, results decoded back — for both an unsharded service and
// a 4-shard one. Every case must be byte-identical to a local engine
// over the same dataset.
func TestRemoteConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  service.Config
		opts conformance.Options
	}{
		{"unsharded", service.Config{}, conformance.Options{}},
		// The router documents per-object MC seeding, hence SkipSerialMC.
		{"shards=4", service.Config{Shards: 4}, conformance.Options{SkipSerialMC: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, res := conformance.NewDataset()
			svc := service.New(tc.cfg)
			if err := svc.Create("conf", db, res); err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(service.NewHandler(svc))
			t.Cleanup(func() {
				svc.Close()
				ts.Close()
			})
			ref := ust.NewEngine(db, ust.Options{})
			remote := remoteEvaluator{c: client.New(ts.URL, ts.Client()), name: "conf"}
			conformance.Verify(t, res, ref, remote, tc.opts)
		})
	}
}

// TestRemoteMultiObsConformance runs the multi-observation table over
// the HTTP stack, unsharded and sharded, including the
// ingest-during-query pass: observations appended through
// Client.Observe (the wire ingest path) must land in the served dataset
// before the table replays against the local reference.
func TestRemoteMultiObsConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  service.Config
		opts conformance.Options
	}{
		{"unsharded", service.Config{}, conformance.Options{}},
		{"shards=4", service.Config{Shards: 4}, conformance.Options{SkipSerialMC: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, res := conformance.NewMultiObsDataset()
			svc := service.New(tc.cfg)
			if err := svc.Create("conf", db, res); err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(service.NewHandler(svc))
			t.Cleanup(func() {
				svc.Close()
				ts.Close()
			})
			ref := ust.NewEngine(db, ust.Options{})
			c := client.New(ts.URL, ts.Client())
			remote := remoteEvaluator{c: c, name: "conf"}
			ingest := func(id int, obs core.Observation) error {
				return c.Observe(context.Background(), "conf", id, obs)
			}
			conformance.VerifyMultiObs(t, db, res, ref, remote, ingest, tc.opts)
		})
	}
}

func TestParallelClients(t *testing.T) {
	c, local, _ := newServer(t, 12)
	want, err := local.Evaluate(context.Background(), ust.NewRequest(ust.PredicateExists,
		ust.WithStates([]int{0, 1}), ust.WithTimes([]int{2, 3})))
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := ust.NewRequest(ust.PredicateExists,
				ust.WithStates([]int{0, 1}), ust.WithTimes([]int{2, 3}))
			if i%2 == 0 {
				resp, qerr := c.Query(context.Background(), "d", req)
				if qerr != nil {
					t.Errorf("client %d: %v", i, qerr)
					return
				}
				if !reflect.DeepEqual(resp.Results, want.Results) {
					t.Errorf("client %d diverged", i)
				}
				return
			}
			var got []ust.Result
			if serr := c.QueryStream(context.Background(), "d", req, func(r ust.Result) error {
				got = append(got, r)
				return nil
			}); serr != nil {
				t.Errorf("client %d stream: %v", i, serr)
				return
			}
			if !reflect.DeepEqual(got, want.Results) {
				t.Errorf("client %d stream diverged", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestIngestDuringRemoteQueries(t *testing.T) {
	c, _, _ := newServer(t, 6)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := ust.NewRequest(ust.PredicateExists,
				ust.WithStates([]int{0, 1}), ust.WithTimes([]int{2, 3}))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Query(context.Background(), "d", req); err != nil {
					t.Errorf("query during ingest: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		o, err := ust.NewObject(500+i, nil, ust.Observation{Time: 0, PDF: ust.PointDistribution(3, i%3)})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Track(context.Background(), "d", o); err != nil {
			t.Fatal(err)
		}
		if err := c.Observe(context.Background(), "d", 500+i,
			ust.Observation{Time: 4, PDF: ust.PointDistribution(3, (i+1)%3)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	info, err := c.Dataset(context.Background(), "d")
	if err != nil {
		t.Fatal(err)
	}
	if info.Objects != 16 {
		t.Fatalf("objects = %d, want 16", info.Objects)
	}
}

func TestStreamCancellationMidStream(t *testing.T) {
	// Enough objects that the full stream cannot fit in socket buffers:
	// TCP flow control guarantees the server is still writing when the
	// client cancels, so the cut genuinely happens mid-stream.
	c, _, _ := newServer(t, 30000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	err := c.QueryStream(ctx, "d", ust.NewRequest(ust.PredicateExists,
		ust.WithStates([]int{0, 1}), ust.WithTimes([]int{2, 3})), func(r ust.Result) error {
		n++
		if n == 5 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Fatal("cancelled stream reported success")
	}
	if n >= 30000 {
		t.Fatalf("stream ran to completion (%d results) despite cancellation", n)
	}
}

func TestRemoteSubscription(t *testing.T) {
	c, _, svc := newServer(t, 4)
	req := ust.NewRequest(ust.PredicateExists,
		ust.WithStates([]int{0, 1}), ust.WithTimes([]int{2, 3}))
	sub, err := c.Subscribe(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	state := map[int]ust.Result{}
	apply := func(up ust.Update) {
		if up.Full {
			state = map[int]ust.Result{}
		}
		for _, r := range up.Results {
			state[r.ObjectID] = r
		}
		for _, id := range up.Removed {
			delete(state, id)
		}
	}
	recv := func() ust.Update {
		t.Helper()
		select {
		case up, ok := <-sub.Updates():
			if !ok {
				t.Fatalf("subscription closed early: %v", sub.Err())
			}
			return up
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for update")
		}
		panic("unreachable")
	}

	first := recv()
	if !first.Full {
		t.Fatalf("first update not full: %+v", first)
	}
	apply(first)

	// Ingest through the client; an incremental update must arrive and
	// the applied state must equal a fresh remote query.
	if err := c.Observe(context.Background(), "d", 1,
		ust.Observation{Time: 1, PDF: ust.PointDistribution(3, 2)}); err != nil {
		t.Fatal(err)
	}
	apply(recv())
	fresh, err := c.Query(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]ust.Result{}
	for _, r := range fresh.Results {
		want[r.ObjectID] = r
	}
	if !reflect.DeepEqual(state, want) {
		t.Fatalf("subscription state diverged:\n  sub   %+v\n  fresh %+v", state, want)
	}

	// Server-side close (service shutdown path) must end the stream.
	svc.Close()
	select {
	case _, ok := <-sub.Updates():
		if ok {
			// drain any trailing update; channel must close eventually
			for range sub.Updates() {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription did not end after service close")
	}
}

func TestDatasetUploadAndDrop(t *testing.T) {
	c, _, _ := newServer(t, 3)
	var buf bytes.Buffer
	if err := ust.SaveDatabase(&buf, testDB(t, 5)); err != nil {
		t.Fatal(err)
	}
	info, err := c.CreateDataset(context.Background(), "up", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "up" || info.Objects != 5 {
		t.Fatalf("uploaded info: %+v", info)
	}
	infos, err := c.Datasets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("datasets: %+v", infos)
	}
	if _, err := c.CreateDataset(context.Background(), "up", bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("duplicate upload accepted")
	}
	if err := c.DropDataset(context.Background(), "up"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Dataset(context.Background(), "up"); err == nil {
		t.Fatal("dropped dataset still served")
	}
	// Corrupt upload must be rejected cleanly.
	if _, err := c.CreateDataset(context.Background(), "bad", strings.NewReader("not a store file")); err == nil {
		t.Fatal("corrupt upload accepted")
	}
}

func TestHTTPErrors(t *testing.T) {
	c, _, _ := newServer(t, 3)
	req := ust.NewRequest(ust.PredicateExists, ust.WithStates([]int{0}), ust.WithTimes([]int{1}))
	if _, err := c.Query(context.Background(), "nope", req); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown dataset: %v", err)
	}
	// Region without a server-side resolver is a clean 400.
	regionReq := ust.NewRequest(ust.PredicateExists,
		ust.WithRegion(ust.NewRect(0, 0, 1, 1), nil), ust.WithTimes([]int{1}))
	if _, err := c.Query(context.Background(), "d", regionReq); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("region without resolver: %v", err)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	c, _, _ := newServer(t, 3)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := ust.NewRequest(ust.PredicateExists, ust.WithStates([]int{0, 1}), ust.WithTimes([]int{2, 3}))
	if _, err := c.Query(context.Background(), "d", req); err != nil {
		t.Fatal(err)
	}
	metrics, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ust_requests_total",
		"ust_singleflight_coalesced_total",
		"ust_evaluations_total",
		"ust_subscriptions",
		fmt.Sprintf("ust_dataset_objects{dataset=%q} 3", "d"),
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestRawWireContract pins a few literal HTTP exchanges so the wire
// format cannot drift silently.
func TestRawWireContract(t *testing.T) {
	svc := service.New(service.Config{})
	if err := svc.Create("d", testDB(t, 1), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	defer func() { svc.Close(); ts.Close() }()

	body := `{"dataset":"d","request":{"predicate":"exists","states":[0,1],"times":[2,3]}}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	// Object 0 sits at state 0 — inside the region — but the paper
	// window starts at t=2; the exact probability is determined by the
	// chain. The pinned fact: a stable JSON shape with results and a
	// strategy name.
	out := buf.String()
	for _, want := range []string{`"results":[{"object":0,"prob":`, `"strategy":"qb"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("wire response missing %q: %s", want, out)
		}
	}

	// Unknown fields must be rejected (strict decoding end to end).
	bad := `{"dataset":"d","request":{"predicate":"exists","bogus":1}}`
	resp2, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("lax decode: status %s", resp2.Status)
	}
}
