// Probabilistic aggregates — asking "how many?" instead of "which?".
//
// A ferry terminal has one waiting area and a fleet of shuttles whose
// positions are only known probabilistically (each shuttle reports a
// noisy location fix, then drifts through the road grid). The operator
// does not care *which* shuttles end up at the terminal — only *how
// many*, because staffing and berth allocation depend on the count:
//
//  1. count(...): the full probability distribution of the number of
//     shuttles that reach the terminal during the evening window, its
//     mean/variance/mode, and the iceberg tail P(count ≥ 4) that
//     triggers calling in a second crew.
//  2. occupancy(...): the expected head-count per timestep — the
//     load curve the operator actually plots on the wall.
//
// Both answers are exact: the engine multiplies one generating-function
// factor (1 − pᵢ + pᵢ·x) per shuttle, so "two of the counted shuttles
// can't be the same shuttle" holds by construction — no Monte Carlo,
// no independence approximation across counts.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ust"
)

const (
	gridW, gridH = 12, 8
	horizon      = 20 // timestamps in the evening window
	fleet        = 9  // shuttles
)

func main() {
	town := ust.NewGrid(gridW, gridH)
	chain, err := commuteChain(town)
	if err != nil {
		log.Fatal(err)
	}
	db := ust.NewDatabase(chain)

	// Each shuttle's last fix: a point for GPS, a small blur for the
	// ones reporting over the legacy radio channel.
	rng := rand.New(rand.NewSource(7))
	for id := 0; id < fleet; id++ {
		x, y := rng.Intn(gridW), rng.Intn(gridH)
		pdf := fixPDF(town, x, y, id%3 == 0)
		if err := db.AddSimple(id, pdf); err != nil {
			log.Fatal(err)
		}
	}

	engine := ust.NewEngine(db, ust.Options{})
	ctx := context.Background()

	// The terminal: the grid cells around the dock, over the whole
	// evening window.
	terminal := []int{
		town.ID(10, 3), town.ID(11, 3),
		town.ID(10, 4), town.ID(11, 4),
	}
	window := ust.Query{States: terminal, Times: timesUpTo(horizon)}

	// --- Query 1: the count distribution with an iceberg tail. ---
	// "How many shuttles reach the terminal tonight, and how likely is
	// it that at least 4 do?" One request, one exact PMF.
	resp, err := engine.Evaluate(ctx, ust.NewAggRequest(
		ust.PredicateExists,
		ust.AggSpec{Kind: ust.AggCount, MinCount: 4},
		ust.WithWindow(window),
	))
	if err != nil {
		log.Fatal(err)
	}
	a := resp.Agg
	fmt.Printf("count(exists(terminal @ evening)):\n")
	fmt.Printf("  E[count] = %.3f   Var = %.3f   mode = %d\n",
		a.Mean, a.Variance, a.ModeCount)
	fmt.Printf("  P(count >= %d) = %.4f  (second crew threshold)\n",
		a.MinCount, a.Tail)
	for k, p := range a.PMF {
		if p < 1e-4 {
			continue
		}
		fmt.Printf("  P(count = %d) = %.4f  %s\n", k, p, bar(p))
	}

	// --- Query 2: the occupancy curve. ---
	// The same window, but summarized per timestep: expected head-count
	// and the per-timestep P(count ≥ 2) that decides when the second
	// berth opens.
	resp, err = engine.Evaluate(ctx, ust.NewAggRequest(
		ust.PredicateExists,
		ust.AggSpec{Kind: ust.AggOccupancy, MinCount: 2},
		ust.WithWindow(window),
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noccupancy(terminal @ evening):\n")
	for _, pt := range resp.Agg.Profile {
		fmt.Printf("  t=%2d  E=%.3f  P(>=2)=%.4f  %s\n",
			pt.Time, pt.Mean, pt.Tail, bar(pt.Mean/3))
	}

	// Sanity: the legacy scalar answer is the PMF's mean, bit for bit.
	mean, err := engine.ExpectedCount(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExpectedCount = %.6f (== E[count] above)\n", mean)
}

// commuteChain drifts traffic toward the dock in the east: moves that
// reduce the distance to the terminal get the bulk of the mass.
func commuteChain(g *ust.Grid) (*ust.Chain, error) {
	n := g.NumStates()
	rows := make([][]float64, n)
	dockX, dockY := 10, 4
	for c := 0; c < n; c++ {
		x, y := g.Cell(c)
		row := make([]float64, n)
		add := func(nx, ny int, w float64) {
			if nx < 0 || nx >= gridW || ny < 0 || ny >= gridH {
				row[c] += w // bounce off the shore
				return
			}
			row[g.ID(nx, ny)] += w
		}
		toward := func(nx, ny int) float64 {
			if abs(nx-dockX)+abs(ny-dockY) < abs(x-dockX)+abs(y-dockY) {
				return 0.35
			}
			return 0.05
		}
		add(x+1, y, toward(x+1, y))
		add(x-1, y, toward(x-1, y))
		add(x, y+1, toward(x, y+1))
		add(x, y-1, toward(x, y-1))
		sum := 0.0
		for _, w := range row {
			sum += w
		}
		row[c] += 1 - sum // the rest stays put
		rows[c] = row
	}
	return ust.ChainFromDense(rows)
}

// fixPDF is a location fix: a point for GPS, a 3×3 blur for radio.
func fixPDF(g *ust.Grid, x, y int, blur bool) *ust.Distribution {
	if !blur {
		return ust.PointDistribution(g.NumStates(), g.ID(x, y))
	}
	var states []int
	var weights []float64
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			nx, ny := x+dx, y+dy
			if nx < 0 || nx >= gridW || ny < 0 || ny >= gridH {
				continue
			}
			w := 1.0
			if dx != 0 || dy != 0 {
				w = 0.5
			}
			states = append(states, g.ID(nx, ny))
			weights = append(weights, w)
		}
	}
	d, err := ust.WeightedOver(g.NumStates(), states, weights)
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func timesUpTo(n int) []int {
	ts := make([]int, n)
	for i := range ts {
		ts[i] = i + 1
	}
	return ts
}

func bar(p float64) string {
	n := int(p*40 + 0.5)
	if n > 40 {
		n = 40
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
