// Algebra: compound queries over one trajectory, answered exactly.
//
// A delivery van moves on a small road grid. We ask three questions a
// dispatcher would actually ask, none of which a single predicate can
// express:
//
//  1. "Does the van pass the depot during [2,4] AND the customer during
//     [6,9]?" — a Then-sequence; the atoms are correlated through the
//     shared trajectory, so P(A then B) ≠ P(A)·P(B).
//  2. "Does it avoid the congestion zone the whole time OR at least
//     reach the customer?" — forall and exists mixed under Or.
//  3. The same compound question as a batch: 16 overlapping dashboard
//     variants answered through EvaluateBatch, which detects the shared
//     sweep work and runs it once.
//
// The naive product of per-atom probabilities is printed next to the
// exact answers to show how wrong independence assumptions get, and a
// brute-force possible-worlds enumeration verifies the exact numbers.
// Finally the same query round-trips through the text query language.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ust"
)

func main() {
	ctx := context.Background()

	// A ring-with-shortcuts road grid of 12 nodes.
	const n = 12
	rows := make([][]float64, n)
	rng := rand.New(rand.NewSource(4))
	for i := range rows {
		rows[i] = make([]float64, n)
		rows[i][(i+1)%n] = 0.55 // onward
		rows[i][i] = 0.25       // dwell
		rows[i][(i+2)%n] = 0.20 // shortcut
		_ = rng
	}
	chain, err := ust.ChainFromDense(rows)
	if err != nil {
		log.Fatal(err)
	}

	db := ust.NewDatabase(chain)
	// The van was last seen near node 0 (uncertain between 0 and 1).
	if err := db.AddSimple(1, ust.UniformOver(n, []int{0, 1})); err != nil {
		log.Fatal(err)
	}
	engine := ust.NewEngine(db, ust.Options{})

	depot := []int{3, 4}    // depot nodes
	customer := []int{7, 8} // customer nodes
	jam := []int{5}         // congestion zone

	// --- 1. Sequencing: depot during [2,4], THEN customer during [6,9].
	passDepot := ust.ExistsAtom(ust.WithStates(depot), ust.WithTimeRange(2, 4))
	reachCustomer := ust.ExistsAtom(ust.WithStates(customer), ust.WithTimeRange(6, 9))
	seq := ust.Then(passDepot, reachCustomer)

	resp, err := engine.Evaluate(ctx, ust.NewExprRequest(seq))
	if err != nil {
		log.Fatal(err)
	}
	exact := resp.Results[0].Prob

	// What a client combining two separate requests would compute:
	pDepot := one(engine.Evaluate(ctx, ust.NewRequest(ust.PredicateExists,
		ust.WithStates(depot), ust.WithTimeRange(2, 4))))
	pCustomer := one(engine.Evaluate(ctx, ust.NewRequest(ust.PredicateExists,
		ust.WithStates(customer), ust.WithTimeRange(6, 9))))
	naive := pDepot * pCustomer

	// Ground truth by possible-worlds enumeration.
	truth, err := ust.BruteForceExpr(chain, db.Get(1), seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(depot then customer)   exact %.6f   naive product %.6f   brute force %.6f\n",
		exact, naive, truth)

	// --- 2. forall/exists mixed under Or, with a negation.
	avoidJam := ust.ForAllAtom(ust.WithStates(complement(n, jam)), ust.WithTimeRange(1, 9))
	either := ust.Or(avoidJam, reachCustomer)
	resp, err = engine.Evaluate(ctx, ust.NewExprRequest(either, ust.WithThreshold(0.5)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(avoid jam OR reach customer) ≥ 0.5 for %d object(s)\n", len(resp.Results))

	// The same question in the text query language:
	req, err := ust.ParseQuery(
		"forall(states(0-4,6-11) @ [1,9]) or exists(states(7,8) @ [6,9]) where tau=0.5")
	if err != nil {
		log.Fatal(err)
	}
	resp2, err := engine.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	canonical, _ := ust.FormatQuery(req)
	fmt.Printf("text form %q -> %d result(s), same as built form: %v\n",
		canonical, len(resp2.Results), len(resp2.Results) == len(resp.Results))

	// --- 3. A dashboard batch: 16 sliding variants of the customer
	// question, answered as one unit. The multi-query optimizer shares
	// the backward-sweep work across them (Response contents are
	// byte-identical to 16 sequential Evaluate calls).
	var reqs []ust.Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, ust.NewRequest(ust.PredicateExists,
			ust.WithStates(customer), ust.WithTimeRange(1+i%4, 9)))
	}
	batch, err := engine.EvaluateBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dashboard batch: %d requests, first P=%.6f, last P=%.6f\n",
		len(batch), batch[0].Results[0].Prob, batch[len(batch)-1].Results[0].Prob)
}

// one extracts the single result probability.
func one(resp *ust.Response, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return resp.Results[0].Prob
}

// complement returns {0..n-1} minus the given states.
func complement(n int, minus []int) []int {
	skip := map[int]bool{}
	for _, s := range minus {
		skip[s] = true
	}
	var out []int
	for s := 0; s < n; s++ {
		if !skip[s] {
			out = append(out, s)
		}
	}
	return out
}
