// Distributed: a multi-process-shaped deployment, in one process.
//
// The same fleet of uncertain objects, now served by a coordinator and
// two workers connected over real localhost HTTP — the exact topology
// `ustserve -coordinator -worker URL…` deploys across machines. The
// walkthrough stands up:
//
//	client ──HTTP──▶ coordinator (shard.Router over remote backends)
//	        ┌──────────┴──────────┐
//	      worker0             worker1     (one dataset slice each)
//	        └──────────┬──────────┘
//	          /v1/sweeps lease tier
//
// and then shows the four properties the deployment is built around:
//
//  1. Byte-identical answers: the distributed fleet returns the same
//     float64 bits as a single in-process engine.
//  2. One backward sweep fleet-wide: workers share sweeps through the
//     coordinator's lease tier, so each distinct sweep is computed once
//     (the lease holder's miss) and adopted everywhere else.
//  3. Live rebalance: the ring grows a third worker and shrinks it away
//     while staying correct — objects migrate through generation-fenced
//     Import/Evict batches.
//  4. Graceful degradation: a dead lease holder stalls waiters only
//     until the lease TTL, then one of them takes over and computes.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"reflect"
	"time"

	"ust"
	"ust/client"
	"ust/internal/core"
	"ust/internal/dist"
	"ust/internal/service"
	"ust/internal/shard"
)

func main() {
	ctx := context.Background()

	// A synthetic Table-I-style fleet: 300 objects over 1500 states.
	p := ust.DefaultSyntheticParams(42)
	p.NumObjects, p.NumStates = 300, 1500
	db, err := ust.GenerateSyntheticDatabase(p)
	if err != nil {
		log.Fatal(err)
	}

	// The coordinator process: hosts the sweep lease tier at /v1/sweeps
	// and (in a real deployment) the router serving client queries.
	coord := service.New(service.Config{Role: "coordinator"})
	coordSrv := httptest.NewServer(service.NewHandler(coord))
	defer func() { coord.Close(); coordSrv.Close() }()

	// Two worker processes. Each joins the coordinator's sweep tier —
	// the exact wiring `ustserve -sweep-tier <coordinator URL>` does.
	newWorker := func() (*service.Service, *client.Client) {
		w := service.New(service.Config{
			Role:    "worker",
			Options: core.Options{Sweeps: dist.NewSweepClient(coordSrv.URL, nil)},
		})
		srv := httptest.NewServer(service.NewHandler(w))
		return w, client.NewWithConfig(srv.URL, client.Config{
			HTTPClient: srv.Client(),
			MaxRetries: 3, // idempotent requests survive transient 5xx
		})
	}
	w0, c0 := newWorker()
	w1, c1 := newWorker()
	defer func() { w0.Close(); w1.Close() }()

	// The coordinator-side router: every shard a remote worker dataset
	// ("demo.shard0" on worker0, "demo.shard1" on worker1), populated
	// through the migration protocol during construction.
	router, err := dist.NewRouter(db, 2, core.Options{}, "demo", []*client.Client{c0, c1})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	fmt.Printf("deployment: %d objects over %d states, 2 remote workers\n",
		db.Len(), p.NumStates)

	// 1. Byte-identical answers across the process boundary.
	single := ust.NewEngine(db, ust.Options{})
	req := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(100, 160)),
		core.WithTimes(core.Interval(12, 17)),
		core.WithTopK(5))
	want, err := single.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	got, err := router.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 identical across the wire: %v\n",
		reflect.DeepEqual(want.Results, got.Results))
	for _, r := range got.Results {
		fmt.Printf("  object %4d  P∃ = %.6f\n", r.ObjectID, r.Prob)
	}

	// 2. One backward sweep fleet-wide: re-running the query hits the
	// workers' caches; the lease tier's counters show each distinct
	// sweep was filled once and served to everyone else.
	if _, err := router.Evaluate(ctx, req); err != nil {
		log.Fatal(err)
	}
	st := coord.Sweeps().Stats()
	fmt.Printf("sweep lease tier: %d leases granted, %d payloads filled, %d served from the board\n",
		st.Leases, st.Fills, st.Served)

	// 3. Live rebalance: grow a third worker into the ring (a slice of
	// every existing shard migrates to it, generation-fenced), verify
	// the answer is still byte-identical, then shrink it back out.
	w2, c2 := newWorker()
	defer w2.Close()
	label, err := router.Grow(func(label int, shadow *core.Database) (shard.Backend, error) {
		return dist.Factory("demo", []*client.Client{c2})(label, shadow)
	})
	if err != nil {
		log.Fatal(err)
	}
	grown, err := router.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grew worker %d: still identical: %v\n",
		label, reflect.DeepEqual(want.Results, grown.Results))
	if err := router.Shrink(label); err != nil {
		log.Fatal(err)
	}
	shrunk, err := router.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shrank worker %d away: still identical: %v\n",
		label, reflect.DeepEqual(want.Results, shrunk.Results))

	// 4. Lease takeover: the liveness story when a worker dies holding a
	// computation lease. The board grants the right to compute to one
	// caller; if it never fills (crashed mid-sweep), the next caller
	// waits at most the TTL and then takes the lease over. Demonstrated
	// on a short-TTL board — the same component the coordinator hosts.
	board := service.NewSweepBoard(300*time.Millisecond, 0)
	key := core.SweepKey{Chain: 1, Kind: 1, Sig: 0xdead, T0: 17}
	_, lease, err := board.Acquire(ctx, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker A holds lease %s … and crashes mid-sweep\n", lease)
	start := time.Now()
	_, takeover, err := board.Acquire(ctx, key) // blocks until the TTL expires
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker B takes over with lease %s after %v (TTL-bounded stall)\n",
		takeover, time.Since(start).Round(10*time.Millisecond))
	if err := board.Fill(ctx, key, lease, []byte("late")); err != nil {
		fmt.Printf("worker A's late fill rejected: %v\n", err)
	}
}
