// Heterogeneous fleet — the Section V-C discussion made concrete.
//
// A delivery fleet mixes vehicle classes (bikes, vans, trucks) whose
// motion models differ: bikes cut through the grid in any direction,
// vans follow the main-road drift, trucks are slow and inert. Every
// vehicle additionally gets a slightly perturbed personal chain
// (driver behaviour), so no two objects share a matrix — the worst
// case for query-based processing.
//
// The example demonstrates the paper's suggested remedies:
//
//  1. cluster vehicles by class and bound each cluster with an
//     interval chain (ClusteredExists) — most vehicles are decided
//     against the threshold without touching their individual chains;
//  2. let the cost planner pick a strategy per query (ExistsAuto);
//  3. compare against exact per-object evaluation to show the pruned
//     result is identical.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ust"
)

const (
	gridW, gridH = 25, 25
	perClass     = 60
)

func main() {
	grid := ust.NewGrid(gridW, gridH)
	rng := rand.New(rand.NewSource(17))

	// Class base models.
	classes := []struct {
		name string
		base func() (*ust.Chain, error)
	}{
		{"bike", func() (*ust.Chain, error) { return walkChain(grid, 0.2, 1.0) }},
		{"van", func() (*ust.Chain, error) { return walkChain(grid, 0.4, 0.3) }},
		{"truck", func() (*ust.Chain, error) { return walkChain(grid, 0.7, 0.1) }},
	}

	// The database: every vehicle gets a personal perturbation of its
	// class chain.
	first, err := classes[0].base()
	if err != nil {
		log.Fatal(err)
	}
	db := ust.NewDatabase(first)
	var clusterOf []int
	id := 0
	for ci, class := range classes {
		base, err := class.base()
		if err != nil {
			log.Fatal(err)
		}
		for v := 0; v < perClass; v++ {
			personal, err := perturb(base, 0.05, rng)
			if err != nil {
				log.Fatal(err)
			}
			depot := grid.ID(rng.Intn(gridW), rng.Intn(gridH))
			obj, err := ust.NewObject(id, personal,
				ust.Observation{Time: 0, PDF: ust.PointDistribution(grid.NumStates(), depot)})
			if err != nil {
				log.Fatal(err)
			}
			if err := db.Add(obj); err != nil {
				log.Fatal(err)
			}
			clusterOf = append(clusterOf, ci)
			id++
		}
	}
	fmt.Printf("fleet: %d vehicles in %d classes, %d distinct chains\n",
		db.Len(), len(classes), db.Len())

	// The query: which vehicles reach the city-centre pickup zone in
	// minutes 4..8 with probability ≥ 30%? The region goes into the
	// request as geometry; the R-tree resolves it at evaluation time.
	index := ust.IndexSpace(grid, 0)
	zone := index.Search(ust.NewRect(10, 10, 14, 14))
	query := ust.NewQuery(zone, ust.Interval(4, 8))
	engine := ust.NewEngine(db, ust.Options{})
	ctx := context.Background()
	const tau = 0.3

	// 1. Cluster-pruned evaluation. The envelope index is built once
	// (an offline cost amortized over every future query).
	t0 := time.Now()
	clusterIdx, err := engine.BuildClusterIndex(clusterOf)
	if err != nil {
		log.Fatal(err)
	}
	tBuild := time.Since(t0)

	t0 = time.Now()
	pruned, decided, err := engine.ExistsThresholdClustered(query, tau, clusterIdx)
	if err != nil {
		log.Fatal(err)
	}
	tPruned := time.Since(t0)
	fmt.Printf("\ncluster index built in %s (once, reused across queries)\n", tBuild.Round(time.Microsecond))
	fmt.Printf("cluster-pruned: %d qualifying, %d/%d vehicles decided by cluster bounds alone (%.0f%%), %s\n",
		len(pruned), decided, db.Len(), 100*float64(decided)/float64(db.Len()), tPruned.Round(time.Microsecond))

	// 2. Exact per-object evaluation for comparison, through the
	// unified entry point: region + window + threshold + ranking in one
	// request.
	t0 = time.Now()
	exactResp, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateExists,
		ust.WithRegion(ust.NewRect(10, 10, 14, 14), index),
		ust.WithTimeRange(4, 8),
		ust.WithThreshold(tau),
		ust.WithTopK(db.Len())))
	if err != nil {
		log.Fatal(err)
	}
	exact := exactResp.Results
	tExact := time.Since(t0)
	fmt.Printf("exact:          %d qualifying, %s\n", len(exact), tExact.Round(time.Microsecond))
	if len(exact) != len(pruned) {
		log.Fatalf("PRUNING BUG: %d vs %d qualifying", len(pruned), len(exact))
	}
	for _, r := range exact[:min(3, len(exact))] {
		fmt.Printf("  vehicle %3d (%s): P = %.3f\n", r.ObjectID, classes[clusterOf[r.ObjectID]].name, r.Prob)
	}

	// 3. The cost planner's view of this query: WithAutoPlan picks the
	// cheaper strategy per request and reports the estimates.
	autoResp, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateExists,
		ust.WithWindow(query), ust.WithAutoPlan()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplanner estimates:")
	for _, p := range autoResp.Plans {
		fmt.Printf("  %-13s sweeps=%3d  ops≈%.2g\n", p.Strategy, p.Sweeps, p.Ops)
	}
	fmt.Printf("auto-selected strategy: %s (%d results)\n", autoResp.Strategy, len(autoResp.Results))
}

// walkChain builds a lazy random walk with the given stay probability;
// diagonal mobility scales the 8-neighborhood weights.
func walkChain(g *ust.Grid, stay, diagonal float64) (*ust.Chain, error) {
	n := g.NumStates()
	rows := make([][]float64, n)
	for id := 0; id < n; id++ {
		rows[id] = make([]float64, n)
		rows[id][id] = stay
		x, y := g.Cell(id)
		total := 0.0
		type nb struct {
			id int
			w  float64
		}
		var nbs []nb
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := x+dx, y+dy
				if nx < 0 || nx >= g.W || ny < 0 || ny >= g.H {
					continue
				}
				w := 1.0
				if dx != 0 && dy != 0 {
					w = diagonal
				}
				if w == 0 {
					continue
				}
				nbs = append(nbs, nb{g.ID(nx, ny), w})
				total += w
			}
		}
		for _, v := range nbs {
			rows[id][v.id] = (1 - stay) * v.w / total
		}
	}
	return ust.ChainFromDense(rows)
}

// perturb jitters each row's weights by ±eps and renormalizes,
// modelling per-driver behaviour within a class.
func perturb(base *ust.Chain, eps float64, rng *rand.Rand) (*ust.Chain, error) {
	n := base.NumStates()
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = make([]float64, n)
		sum := 0.0
		base.Successors(i, func(j int, p float64) {
			v := p * (1 + eps*(2*rng.Float64()-1))
			rows[i][j] = v
			sum += v
		})
		for j := range rows[i] {
			rows[i][j] /= sum
		}
	}
	return ust.ChainFromDense(rows)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
