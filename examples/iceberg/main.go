// Iceberg monitoring — the paper's motivating application.
//
// The International Ice Patrol sights icebergs near the Grand Banks and
// must warn ships whose routes the bergs may drift into. We model the
// North Atlantic as a grid whose prevailing current pushes ice south-
// east, seed the database with sighted icebergs (some sighted twice:
// the second sighting *conditions* the trajectory, Section VI of the
// paper), and ask:
//
//  1. PST∃Q: which bergs could enter the shipping lane within the next
//     48 hours? (one timestamp = one hour)
//  2. PST∀Q: which bergs will *stay* inside the observation box long
//     enough for an aerial survey?
//  3. Posterior: where is a twice-sighted berg most likely right now?
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ust"
)

const (
	gridW, gridH = 40, 30
	hours        = 48
)

func main() {
	ocean := ust.NewGrid(gridW, gridH)
	chain, err := driftChain(ocean)
	if err != nil {
		log.Fatal(err)
	}
	db := ust.NewDatabase(chain)

	// Sighted icebergs. Sightings have different precision: a radar fix
	// is a point; a visual report from a ship spreads over a few cells.
	sightings := []struct {
		id     int
		x, y   int
		spread bool
	}{
		{id: 1, x: 5, y: 20},
		{id: 2, x: 10, y: 25, spread: true},
		{id: 3, x: 18, y: 8},
		{id: 4, x: 3, y: 4, spread: true},
	}
	for _, s := range sightings {
		pdf := sightingPDF(ocean, s.x, s.y, s.spread)
		if err := db.AddSimple(s.id, pdf); err != nil {
			log.Fatal(err)
		}
	}

	// Berg 5 was sighted twice: at t=0 and again at t=12. The engine
	// interpolates between the sightings and discards impossible worlds.
	berg5, err := ust.NewObject(5, nil,
		ust.Observation{Time: 0, PDF: sightingPDF(ocean, 8, 18, true)},
		ust.Observation{Time: 12, PDF: sightingPDF(ocean, 12, 15, true)},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Add(berg5); err != nil {
		log.Fatal(err)
	}

	engine := ust.NewEngine(db, ust.Options{})
	ctx := context.Background()

	// --- Query 1: shipping-lane intrusion (PST∃Q). ---
	// The lane is a diagonal corridor, passed to the request as raw
	// geometry: the engine resolves it to states through the R-tree
	// index at evaluation time. WithTopK ranks the bergs by risk.
	index := ust.IndexSpace(ocean, 0)
	lane := ust.RegionUnion{
		ust.NewRect(12, 10, 30, 14),
		ust.NewRect(24, 6, 36, 11),
	}

	fmt.Println("== Icebergs that may enter the shipping lane within 48h ==")
	res, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateExists,
		ust.WithRegion(lane, index),
		ust.WithTimeRange(1, hours),
		ust.WithTopK(db.Len())))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Results {
		warn := ""
		switch {
		case r.Prob >= 0.5:
			warn = "  << ALERT"
		case r.Prob >= 0.1:
			warn = "  << watch"
		}
		fmt.Printf("  berg %d: P = %.4f%s\n", r.ObjectID, r.Prob, warn)
	}

	// --- Query 2: survey stability (PST∀Q). ---
	// An aircraft needs the berg inside the survey box for six
	// consecutive hours starting at t=6. Same entry point, different
	// predicate; the threshold drops the hopeless bergs server-side.
	fmt.Println("\n== Icebergs stably inside the survey box during t=6..11 ==")
	stay, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateForAll,
		ust.WithRegion(ust.NewRect(2, 14, 16, 26), index),
		ust.WithTimeRange(6, 11),
		ust.WithThreshold(0.01),
		ust.WithTopK(db.Len())))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range stay.Results {
		fmt.Printf("  berg %d: P(stays) = %.4f\n", r.ObjectID, r.Prob)
	}

	// --- Query 3: posterior position of the twice-sighted berg. ---
	post, err := ust.PosteriorAt(chain, berg5.Observations, 12)
	if err != nil {
		log.Fatal(err)
	}
	state, p := post.Mode()
	x, y := ocean.Cell(state)
	fmt.Printf("\n== Berg 5 most likely position at t=12: cell (%d,%d), P = %.3f ==\n", x, y, p)
	fmt.Printf("   posterior entropy: %.2f nats (lower = more certain)\n", post.Entropy())
}

// driftChain builds the ocean-current motion model: ice drifts east and
// slightly south with inertia; at each hour it stays or moves to a
// neighboring cell with current-weighted probabilities.
func driftChain(g *ust.Grid) (*ust.Chain, error) {
	rng := rand.New(rand.NewSource(1912)) // the Titanic year
	n := g.NumStates()
	rows := make([][]float64, n)
	for id := 0; id < n; id++ {
		rows[id] = make([]float64, n)
		x, y := g.Cell(id)
		add := func(nx, ny int, w float64) {
			if nx >= 0 && nx < g.W && ny >= 0 && ny < g.H && w > 0 {
				rows[id][g.ID(nx, ny)] += w
			}
		}
		jitter := 0.1 * rng.Float64()
		add(x, y, 0.35)         // inertia: ice is slow
		add(x+1, y, 0.3+jitter) // prevailing eastward current
		add(x+1, y-1, 0.15)     // south-east component
		add(x, y-1, 0.1)        // southward leak
		add(x-1, y, 0.05)       // occasional back-eddy
		add(x, y+1, 0.05)
		// Normalize (border cells lose some options).
		sum := 0.0
		for _, v := range rows[id] {
			sum += v
		}
		if sum == 0 {
			rows[id][id] = 1
			continue
		}
		for j, v := range rows[id] {
			rows[id][j] = v / sum
		}
	}
	return ust.ChainFromDense(rows)
}

// sightingPDF converts a sighting into an observation pdf: a radar fix
// is a point distribution; a visual report spreads over the 3×3
// neighborhood with the centre weighted highest.
func sightingPDF(g *ust.Grid, x, y int, spread bool) *ust.Distribution {
	if !spread {
		return ust.PointDistribution(g.NumStates(), g.ID(x, y))
	}
	var states []int
	var weights []float64
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := x+dx, y+dy
			if nx < 0 || nx >= g.W || ny < 0 || ny >= g.H {
				continue
			}
			states = append(states, g.ID(nx, ny))
			if dx == 0 && dy == 0 {
				weights = append(weights, 4)
			} else {
				weights = append(weights, 1)
			}
		}
	}
	pdf, err := ust.WeightedOver(g.NumStates(), states, weights)
	if err != nil {
		log.Fatal(err)
	}
	return pdf
}
