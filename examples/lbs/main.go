// Location-based services — the paper's PST∀Q/PSTkQ motivation: "a
// service provider could be interested in customers that remain at a
// certain region for a while, such that they can receive advertisements
// relevant to the location."
//
// A shopping district is modeled as a grid; customers wander with a
// stay-prone random walk. The campaign rule: push a coupon only to
// customers who will *stay* inside the food court for the whole
// 5-minute push window (PST∀Q ≥ 60%), and report how many minutes each
// candidate is expected to spend there (PSTkQ). The example also
// demonstrates threshold retrieval and the early-termination bounds.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ust"
)

func main() {
	mall := ust.NewGrid(20, 20)
	chain, err := wanderChain(mall, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	db := ust.NewDatabase(chain)

	// Customers last seen by wifi triangulation: pdf over a small disk.
	rng := rand.New(rand.NewSource(99))
	index := ust.IndexSpace(mall, 0)
	for id := 0; id < 500; id++ {
		cx := rng.Float64() * 20
		cy := rng.Float64() * 20
		cells := index.Search(ust.Circle{Center: ust.Point{X: cx, Y: cy}, Radius: 1.5})
		if len(cells) == 0 {
			continue
		}
		if err := db.AddSimple(id, ust.UniformOver(mall.NumStates(), cells)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("customers tracked: %d\n", db.Len())

	// The food court occupies the mall's north-east quadrant corner.
	// The request carries the geometry; minutes 3..7 from now.
	foodCourt := ust.NewRect(13, 13, 18, 18)
	window := []ust.RequestOption{
		ust.WithRegion(foodCourt, index),
		ust.WithTimeRange(3, 7),
	}
	query := ust.NewQuery(index.Search(foodCourt), ust.Interval(3, 7))
	engine := ust.NewEngine(db, ust.Options{})
	ctx := context.Background()

	// --- Campaign targeting: PST∀Q with threshold. ---
	stay, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateForAll,
		append(window, ust.WithThreshold(0.6))...))
	if err != nil {
		log.Fatal(err)
	}
	targets := stay.Results
	fmt.Printf("coupon targets (P(stay all 5 min) ≥ 0.6): %d customers\n", len(targets))
	for i, r := range targets {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  customer %3d: P = %.3f\n", r.ObjectID, r.Prob)
	}

	// --- Reach estimate: anyone touching the food court (PST∃Q ≥ 0.2). ---
	// The streaming path counts qualifying customers without
	// materializing a result slice — the shape of a million-user scan.
	reach := 0
	for r, err := range engine.EvaluateSeq(ctx, ust.NewRequest(ust.PredicateExists,
		append(window, ust.WithThreshold(0.2))...)) {
		if err != nil {
			log.Fatal(err)
		}
		_ = r
		reach++
	}
	fmt.Printf("\nfootfall reach (P(visit) ≥ 0.2): %d customers\n", reach)

	// --- Dwell profile of the best target (PSTkQ). ---
	if len(targets) > 0 {
		best := db.Get(targets[0].ObjectID)
		dist, err := engine.KTimesOB(best, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ndwell profile of customer %d (minutes in food court during window):\n", best.ID)
		expected := 0.0
		for k, p := range dist {
			expected += float64(k) * p
			if p > 0.001 {
				fmt.Printf("  %d min: %.3f\n", k, p)
			}
		}
		fmt.Printf("  expected dwell: %.2f of 5 minutes\n", expected)
	}

	// --- Early-termination bounds (Section V-C pruning). ---
	// Decide "P∃ ≥ 0.5?" for one customer without a full evaluation.
	if db.Len() > 0 {
		o := db.Objects()[0]
		lo, hi, err := engine.ExistsOBBounds(o, query, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "undecided"
		switch {
		case lo >= 0.5:
			verdict = "YES (lower bound reached threshold)"
		case hi < 0.5:
			verdict = "NO (upper bound fell below threshold)"
		}
		fmt.Printf("\nthreshold test for customer %d: P∃ ∈ [%.3f, %.3f] -> %s\n",
			o.ID, lo, hi, verdict)
	}
}

// wanderChain builds a lazy random walk: with probability stay the
// customer remains in place, otherwise moves to a uniformly random
// 4-neighbor. Staying makes dwell behaviour realistic (and is exactly
// the temporal correlation the paper's model captures and the
// independence model of prior work gets wrong).
func wanderChain(g *ust.Grid, stay float64) (*ust.Chain, error) {
	n := g.NumStates()
	rows := make([][]float64, n)
	for id := 0; id < n; id++ {
		rows[id] = make([]float64, n)
		rows[id][id] = stay
		nbrs := g.Neighbors4(id)
		for _, nb := range nbrs {
			rows[id][nb] = (1 - stay) / float64(len(nbrs))
		}
	}
	return ust.ChainFromDense(rows)
}
