// Quickstart: the paper's running example in ~40 lines.
//
// A single object moves over three states following a Markov chain; we
// ask for the probability that it enters the region {s1, s2} at time 2
// or 3 — the PST∃Q of Definition 2 — and for the distribution over how
// often it is inside (PSTkQ). Expected output: P∃ = 0.864 and the
// k-distribution (0.136, 0.672, 0.192), the exact numbers worked in
// Sections V and VII of the paper.
package main

import (
	"context"
	"fmt"
	"log"

	"ust"
)

func main() {
	ctx := context.Background()
	// The motion model: a homogeneous Markov chain over 3 states.
	chain, err := ust.ChainFromDense([][]float64{
		{0, 0, 1},     // s1 -> s3
		{0.6, 0, 0.4}, // s2 -> s1 (60%) or s3 (40%)
		{0, 0.8, 0.2}, // s3 -> s2 (80%) or s3 (20%)
	})
	if err != nil {
		log.Fatal(err)
	}

	// One object, observed precisely at state s2 at time 0.
	db := ust.NewDatabase(chain)
	if err := db.AddSimple(1, ust.PointDistribution(3, 1)); err != nil {
		log.Fatal(err)
	}

	// The query window: region {s1, s2} at times {2, 3}. Every
	// predicate is one Request evaluated through the same entry point;
	// only the predicate kind changes.
	window := []ust.RequestOption{
		ust.WithStates([]int{0, 1}),
		ust.WithTimes([]int{2, 3}),
	}
	engine := ust.NewEngine(db, ust.Options{})

	exists, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateExists, window...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(object enters the window)   = %.3f\n", exists.Results[0].Prob)

	kTimes, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateKTimes, window...))
	if err != nil {
		log.Fatal(err)
	}
	for k, p := range kTimes.Results[0].Dist {
		fmt.Printf("P(inside at exactly %d times) = %.3f\n", k, p)
	}

	forAll, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateForAll, window...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(inside at all query times)  = %.3f\n", forAll.Results[0].Prob)
}
