// Example server: the wire-ready service API end to end, in one
// process — a Service with a named dataset, the HTTP/NDJSON front end,
// the Go client, and a standing subscription fed by live ingest.
//
// It is the programmatic twin of running:
//
//	ustgen -o fleet.ust -objects 100 -states 900
//	ustserve -addr :8080 -dataset fleet=fleet.ust
//	ustquery -remote http://localhost:8080 -dataset fleet -states 420-480 -times 8-12
//
// See README.md next to this file for the equivalent curl session.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"ust"
	"ust/client"
)

func main() {
	// --- build a dataset: 100 vehicles random-walking a 30×30 grid ----
	grid := ust.NewGrid(30, 30)
	chain, err := gridChain(30, 30)
	if err != nil {
		log.Fatal(err)
	}
	db := ust.NewDatabase(chain)
	for id := 0; id < 100; id++ {
		if err := db.AddSimple(id, ust.PointDistribution(900, (id*37)%900)); err != nil {
			log.Fatal(err)
		}
	}

	// --- serve it -----------------------------------------------------
	svc := ust.NewService(ust.ServiceConfig{DefaultTimeout: 10 * time.Second})
	defer svc.Close()
	// The resolver lets wire requests carry geometric regions: the
	// server grounds them against the grid.
	if err := svc.Create("fleet", db, grid); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: ust.NewServiceHandler(svc)}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// --- query remotely ----------------------------------------------
	ctx := context.Background()
	c := client.New(base, nil)
	watch := ust.NewRequest(ust.PredicateExists,
		ust.WithRegion(ust.NewRect(10, 10, 15, 15), nil), // resolved server-side
		ust.WithTimeRange(5, 9),
		ust.WithTopK(5))
	resp, err := c.Query(ctx, "fleet", watch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top vehicles likely to enter the watched block (t=5..9), strategy %v:\n", resp.Strategy)
	for _, r := range resp.Results {
		fmt.Printf("  vehicle %3d  P = %.4f\n", r.ObjectID, r.Prob)
	}

	// --- stand a subscription, then ingest ----------------------------
	sub, err := c.Subscribe(ctx, "fleet", watch)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	first := <-sub.Updates()
	fmt.Printf("subscription snapshot: %d qualifying vehicles\n", len(first.Results))

	// A fresh sighting of vehicle 10 inside the watched block (its walk
	// started two cells away, so the sighting is consistent): the
	// standing query pushes the delta without being re-asked.
	if err := c.Observe(ctx, "fleet", 10,
		ust.Observation{Time: 6, PDF: ust.PointDistribution(900, 12*30+12)}); err != nil {
		log.Fatal(err)
	}
	select {
	case up, ok := <-sub.Updates():
		if !ok {
			log.Fatal("subscription ended: ", sub.Err())
		}
		fmt.Printf("update #%d after ingest: %d changed, %d retracted\n",
			up.Seq, len(up.Results), len(up.Removed))
		for _, r := range up.Results {
			fmt.Printf("  vehicle %3d  P = %.4f\n", r.ObjectID, r.Prob)
		}
	case <-time.After(5 * time.Second):
		log.Fatal("no update arrived")
	}

	// --- the serving counters ----------------------------------------
	st := svc.Stats()
	fmt.Printf("served %d requests (%d coalesced), %d ingest(s), %d update(s) pushed\n",
		st.Requests, st.Coalesced, st.Ingests, st.Updates)
}

// gridChain builds a lazy random walk over a w×h grid: stay or step to
// a 4-neighbour, uniformly over the legal moves.
func gridChain(w, h int) (*ust.Chain, error) {
	n := w * h
	rows := make([][]float64, n)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := y*w + x
			row := make([]float64, n)
			moves := []int{s}
			if x > 0 {
				moves = append(moves, s-1)
			}
			if x < w-1 {
				moves = append(moves, s+1)
			}
			if y > 0 {
				moves = append(moves, s-w)
			}
			if y < h-1 {
				moves = append(moves, s+w)
			}
			p := 1.0 / float64(len(moves))
			for _, m := range moves {
				row[m] = p
			}
			rows[s] = row
		}
	}
	return ust.ChainFromDense(rows)
}
