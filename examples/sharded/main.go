// Sharded: horizontal scale-out with byte-identical answers.
//
// A fleet of uncertain objects is partitioned across 8 shard engines by
// consistent hashing on object id (ust.NewShardedEngine). Every query —
// scans, thresholds, top-k, compound expressions — fans out over the
// shards and merges back into EXACTLY the single-engine output: same
// float64 bits, same order. The walkthrough proves it side by side,
// shows the shared score cache computing each backward sweep once for
// the whole fleet, and routes live ingest through the router.
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"

	"ust"
)

func main() {
	ctx := context.Background()

	// A synthetic Table-I-style fleet: 400 objects over 2000 states.
	p := ust.DefaultSyntheticParams(21)
	p.NumObjects, p.NumStates = 400, 2000
	db, err := ust.GenerateSyntheticDatabase(p)
	if err != nil {
		log.Fatal(err)
	}

	single := ust.NewEngine(db, ust.Options{})
	sharded, err := ust.NewShardedEngine(db, 8, ust.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d objects over %d states, %d shards\n",
		db.Len(), p.NumStates, sharded.Shards())

	// 1. A ranked query, answered by both: the shard responses merge by
	// k-way heap under the engine's exact tie-break order.
	req := ust.NewRequest(ust.PredicateExists,
		ust.WithStates(ust.Interval(100, 160)),
		ust.WithTimes(ust.Interval(12, 17)),
		ust.WithTopK(5))
	want, err := single.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	got, err := sharded.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 identical across 8 shards: %v\n",
		reflect.DeepEqual(want.Results, got.Results))
	for _, r := range got.Results {
		fmt.Printf("  object %4d  P∃ = %.6f\n", r.ObjectID, r.Prob)
	}

	// 2. The shared score cache: the QB sweep behind that query was
	// computed ONCE for the whole fleet — every other shard hit it.
	fmt.Printf("fleet cache after one query: %d misses (sweeps computed), %d cross-shard hits\n",
		got.Cache.Misses, got.Cache.Hits)

	// 3. Streaming scan: the merge restores global emission order, so a
	// consumer sees the exact single-engine sequence.
	scan := ust.NewRequest(ust.PredicateExists,
		ust.WithStates(ust.Interval(100, 160)),
		ust.WithTimes(ust.Interval(12, 17)),
		ust.WithThreshold(0.4))
	var ids []int
	for r, serr := range sharded.EvaluateSeq(ctx, scan) {
		if serr != nil {
			log.Fatal(serr)
		}
		ids = append(ids, r.ObjectID)
	}
	fmt.Printf("threshold scan streamed %d qualifying objects in single-engine order\n", len(ids))

	// 4. Compound expressions shard too — the augmented sweep is per
	// chain, so shards share it like any other.
	expr := ust.And(
		ust.ExistsAtom(ust.WithStates(ust.Interval(100, 160)), ust.WithTimeRange(12, 15)),
		ust.Not(ust.ForAllAtom(ust.WithStates(ust.Interval(100, 130)), ust.WithTimeRange(16, 18))),
	)
	w2, err := single.Evaluate(ctx, ust.NewExprRequest(expr, ust.WithTopK(3)))
	if err != nil {
		log.Fatal(err)
	}
	g2, err := sharded.Evaluate(ctx, ust.NewExprRequest(expr, ust.WithTopK(3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compound expression identical across shards: %v\n",
		reflect.DeepEqual(w2.Results, g2.Results))

	// 5. Live ingest through the router: the new sighting lands on its
	// owning shard and the next evaluation reflects it.
	target := got.Results[0].ObjectID
	marg, err := single.Marginal(db.Get(target), 20)
	if err != nil {
		log.Fatal(err)
	}
	likely, _ := marg.Mode()
	if err := sharded.Observe(target, ust.Observation{
		Time: 20, PDF: ust.PointDistribution(p.NumStates, likely),
	}); err != nil {
		log.Fatal(err)
	}
	after, err := sharded.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after observing object %d at t=20: leader P∃ = %.6f (was %.6f)\n",
		target, after.Results[0].Prob, got.Results[0].Prob)
}
