// Traffic prediction on a road network — the paper's second application
// domain ("predict the number of cars that will be in a congested road
// segment after 10-15 minutes").
//
// We generate a Munich-shaped road network (scaled down), derive the
// motion model from its adjacency as the paper does, place vehicles at
// intersections, and ask for the *expected number of vehicles* inside a
// congestion zone during the 10-15 minute window: the sum of the
// per-vehicle PST∃Q probabilities. The query-based strategy answers
// this for every vehicle with a single backward sweep.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ust"
)

const (
	numVehicles = 2000
	networkDiv  = 50 // scale factor applied to the Munich-sized network
)

func main() {
	// 1. Road network shaped like the paper's Munich dataset.
	spec := ust.MunichSpec(7).Scaled(networkDiv)
	roads, err := ust.NewRoadNetwork(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d intersections, %d directed segments\n",
		roads.NumNodes(), roads.NumEdges())

	rng := rand.New(rand.NewSource(7))
	chain, err := ust.ChainFromGraph(roads, rng)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Vehicles: each last seen at an intersection; a GPS fix may snap
	// to any adjacent intersection, so the pdf covers the neighborhood.
	db := ust.NewDatabase(chain)
	n := roads.NumNodes()
	for id := 0; id < numVehicles; id++ {
		anchor := rng.Intn(n)
		states := []int{anchor}
		roads.Successors(anchor, func(v int) {
			if len(states) < 4 {
				states = append(states, v)
			}
		})
		if err := db.AddSimple(id, ust.UniformOver(n, states)); err != nil {
			log.Fatal(err)
		}
	}

	// 3. The congestion zone: an intersection plus its two-hop
	// neighborhood (a blocked junction backs traffic up its feeders).
	zone := neighborhood(roads, n/2, 2)
	fmt.Printf("congestion zone: %d intersections around node %d\n", len(zone), n/2)

	// One timestamp = one minute. The window of interest: 10-15 minutes
	// from now.
	window := []ust.RequestOption{
		ust.WithStates(zone),
		ust.WithTimeRange(10, 15),
	}
	engine := ust.NewEngine(db, ust.Options{}) // query-based by default
	ctx := context.Background()

	// The aggregate runs over the streaming path: per-vehicle results
	// are folded into the sum as they are produced, so a city-scale
	// fleet never materializes a result slice.
	expected := 0.0
	for r, err := range engine.EvaluateSeq(ctx, ust.NewRequest(ust.PredicateExists, window...)) {
		if err != nil {
			log.Fatal(err)
		}
		expected += r.Prob
	}
	fmt.Printf("\nexpected vehicles touching the zone in minutes 10-15: %.1f of %d\n",
		expected, numVehicles)

	// Ranked retrieval: the five most likely arrivals, directly from the
	// request (a k-sized heap, not a full sort).
	topResp, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateExists,
		append(window, ust.WithTopK(5))...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most likely arrivals:")
	for _, r := range topResp.Results {
		fmt.Printf("  vehicle %4d: P = %.4f\n", r.ObjectID, r.Prob)
	}

	// 4. Dwell analysis (PSTkQ): of the top vehicle, how many of the six
	// window minutes will it spend inside the zone? A single-object
	// question uses the per-object API.
	top := db.Get(topResp.Results[0].ObjectID)
	dist, err := engine.KTimesOB(top, ust.NewQuery(zone, ust.Interval(10, 15)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndwell distribution for vehicle %d (minutes inside the zone):\n", top.ID)
	for k, p := range dist {
		if p > 0.001 {
			fmt.Printf("  %d min: %.4f\n", k, p)
		}
	}
}

// neighborhood returns the BFS ball of the given radius around a node.
func neighborhood(g *ust.Graph, center, radius int) []int {
	seen := map[int]bool{center: true}
	frontier := []int{center}
	out := []int{center}
	for d := 0; d < radius; d++ {
		var next []int
		for _, u := range frontier {
			g.Successors(u, func(v int) {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
					next = append(next, v)
				}
			})
		}
		frontier = next
	}
	return out
}
