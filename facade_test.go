package ust_test

// Facade coverage for the surfaces PR 3 exported: the persistence
// codec (SaveDatabase/LoadDatabase), the standing-query Monitor, the
// Service layer and the wire request codec.

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"ust"
)

func facadeDB(t testing.TB) *ust.Database {
	t.Helper()
	chain, err := ust.ChainFromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := ust.NewDatabase(chain)
	for id := 1; id <= 5; id++ {
		if err := db.AddSimple(id, ust.PointDistribution(3, id%3)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestFacadePersistRoundTrip(t *testing.T) {
	db := facadeDB(t)
	var bin, js bytes.Buffer
	if err := ust.SaveDatabase(&bin, db); err != nil {
		t.Fatal(err)
	}
	if err := ust.ExportDatabaseJSON(&js, db); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ust.LoadDatabase(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ust.ImportDatabaseJSON(bytes.NewReader(js.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	q := ust.NewQuery([]int{0, 1}, []int{2, 3})
	want, err := ust.NewEngine(db, ust.Options{}).Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	for name, loaded := range map[string]*ust.Database{"binary": fromBin, "json": fromJSON} {
		got, gerr := ust.NewEngine(loaded, ust.Options{}).Exists(q)
		if gerr != nil {
			t.Fatalf("%s: %v", name, gerr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round-trip changed results: %+v vs %+v", name, got, want)
		}
	}

	var chainBuf bytes.Buffer
	if err := ust.SaveChain(&chainBuf, db.DefaultChain()); err != nil {
		t.Fatal(err)
	}
	if _, err := ust.LoadChain(bytes.NewReader(chainBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMonitor(t *testing.T) {
	db := facadeDB(t)
	engine := ust.NewEngine(db, ust.Options{})
	q := ust.NewQuery([]int{0, 1}, []int{2, 3})
	var mon *ust.Monitor = engine.NewMonitor(q)
	first, err := mon.Results()
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("monitor %+v != exists %+v", first, want)
	}
	if err := mon.Observe(1, ust.Observation{Time: 1, PDF: ust.PointDistribution(3, 2)}); err != nil {
		t.Fatal(err)
	}
	refreshed, err := mon.Results()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := engine.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refreshed, fresh) {
		t.Fatalf("incremental monitor %+v != fresh %+v", refreshed, fresh)
	}
}

func TestFacadeServiceAndWire(t *testing.T) {
	svc := ust.NewService(ust.ServiceConfig{})
	defer svc.Close()
	if err := svc.Create("d", facadeDB(t), nil); err != nil {
		t.Fatal(err)
	}
	req := ust.NewRequest(ust.PredicateExists,
		ust.WithStates([]int{0, 1}), ust.WithTimes([]int{2, 3}), ust.WithTopK(3))

	// The wire codec round-trips the request exactly.
	data, err := ust.MarshalRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ust.UnmarshalRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, req) {
		t.Fatalf("wire round-trip changed request: %#v vs %#v", back, req)
	}

	resp, err := svc.Evaluate(context.Background(), "d", back)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ust.NewEngine(facadeDB(t), ust.Options{}).Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Results, direct.Results) {
		t.Fatalf("service %+v != direct %+v", resp.Results, direct.Results)
	}

	// Subscriptions work through the facade types.
	sub, err := svc.Subscribe(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	up := <-sub.Updates()
	if !up.Full || !reflect.DeepEqual(up.Results, direct.Results) {
		t.Fatalf("subscription snapshot %+v != direct %+v", up.Results, direct.Results)
	}
}
