module ust

go 1.24
