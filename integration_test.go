package ust_test

// End-to-end integration: generate a workload, persist it, reload it,
// and answer every query type through the public API — the full
// lifecycle a downstream user runs.

import (
	"bytes"
	"math"
	"testing"

	"ust"
	"ust/internal/store"
)

func TestEndToEndLifecycle(t *testing.T) {
	// 1. Generate a synthetic Table I dataset.
	p := ust.DefaultSyntheticParams(99)
	p.NumObjects, p.NumStates = 50, 3000
	db, err := ust.GenerateSyntheticDatabase(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	// 2. Persist and reload.
	var buf bytes.Buffer
	if err := store.SaveDatabase(&buf, db); err != nil {
		t.Fatalf("save: %v", err)
	}
	reloaded, err := store.LoadDatabase(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	// 3. Answer all three predicates on the reloaded data with both
	// exact strategies; they must agree with the pre-persistence engine.
	q := ust.NewQuery(ust.Interval(100, 140), ust.Interval(12, 17))
	fresh := ust.NewEngine(db, ust.Options{})
	loaded := ust.NewEngine(reloaded, ust.Options{})

	wantExists, err := fresh.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []ust.Strategy{ust.StrategyQueryBased, ust.StrategyObjectBased} {
		e := ust.NewEngine(reloaded, ust.Options{Strategy: strategy})
		got, err := e.Exists(q)
		if err != nil {
			t.Fatalf("%v over reloaded db: %v", strategy, err)
		}
		for i := range wantExists {
			if math.Abs(got[i].Prob-wantExists[i].Prob) > 1e-9 {
				t.Fatalf("%v: object %d drifted across persistence: %g vs %g",
					strategy, got[i].ObjectID, got[i].Prob, wantExists[i].Prob)
			}
		}
	}

	// 4. Aggregates and rankings line up.
	count, err := loaded.ExpectedCount(q)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range wantExists {
		sum += r.Prob
	}
	if math.Abs(count-sum) > 1e-9 {
		t.Errorf("ExpectedCount %g != Σ P %g", count, sum)
	}
	top, err := loaded.TopKExists(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Prob > top[i-1].Prob {
			t.Error("TopK not sorted")
		}
	}

	// 5. A monitor over the reloaded database refreshes incrementally
	// as a new sighting arrives.
	mon := loaded.NewMonitor(q)
	before, err := mon.Results()
	if err != nil {
		t.Fatal(err)
	}
	target := before[0].ObjectID
	// Observe the object where its own forecast says it most likely is,
	// so the new sighting is guaranteed consistent with the model.
	marginal, err := loaded.Marginal(reloaded.Get(target), 20)
	if err != nil {
		t.Fatal(err)
	}
	likely, _ := marginal.Mode()
	obs := ust.PointDistribution(p.NumStates, likely)
	if err := mon.Observe(target, ust.Observation{Time: 20, PDF: obs}); err != nil {
		t.Fatalf("observe: %v", err)
	}
	after, err := mon.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("result set size changed: %d vs %d", len(after), len(before))
	}
	// The updated object must now match a fresh multi-observation
	// evaluation.
	freshP, err := loaded.ExistsOB(reloaded.Get(target), q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.ObjectID == target && math.Abs(r.Prob-freshP) > 1e-9 {
			t.Errorf("monitor cache stale for object %d: %g vs %g", target, r.Prob, freshP)
		}
	}

	// 6. JSON export of the mutated database round-trips.
	var jbuf bytes.Buffer
	if err := store.ExportJSON(&jbuf, reloaded); err != nil {
		t.Fatalf("export: %v", err)
	}
	back, err := store.ImportJSON(&jbuf)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if back.Len() != reloaded.Len() {
		t.Errorf("JSON round trip lost objects: %d vs %d", back.Len(), reloaded.Len())
	}
}

func TestEndToEndHeterogeneousFleet(t *testing.T) {
	// Mixed chains + cluster pruning through the public facade.
	base, err := ust.ChainFromDense([][]float64{
		{0.4, 0.6, 0, 0},
		{0.3, 0.3, 0.4, 0},
		{0, 0.5, 0.2, 0.3},
		{0, 0, 0.7, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := ust.NewDatabase(base)
	var labels []int
	for id := 0; id < 12; id++ {
		o, err := ust.NewObject(id, nil, ust.Observation{Time: 0, PDF: ust.PointDistribution(4, id%4)})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(o); err != nil {
			t.Fatal(err)
		}
		labels = append(labels, 0)
	}
	engine := ust.NewEngine(db, ust.Options{})
	q := ust.NewQuery([]int{3}, ust.Interval(1, 3))
	idx, err := engine.BuildClusterIndex(labels)
	if err != nil {
		t.Fatal(err)
	}
	pruned, decided, err := engine.ExistsThresholdClustered(q, 0.4, idx)
	if err != nil {
		t.Fatal(err)
	}
	if decided != 12 {
		t.Errorf("identical chains should decide all 12 by bounds, got %d", decided)
	}
	exact, err := engine.ExistsThreshold(q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != len(exact) {
		t.Errorf("pruned found %d, exact %d", len(pruned), len(exact))
	}
}
