// Package agg evaluates probabilistic count aggregates by generating
// functions (Züfle's technique): each database object i contributes an
// independent factor polynomial fᵢ(x) whose coefficient j is the
// probability that the object contributes j to the count — the
// Bernoulli [1−pᵢ, pᵢ·x] for predicate satisfaction, or the full
// visit-count distribution for PSTkQ — and the product ∏ᵢ fᵢ(x) is the
// exact generating function of the database-level count: coefficient k
// of the product is P(count = k), the Poisson-binomial distribution in
// the Bernoulli case.
//
// The package has one hard obligation beyond correctness: the engine,
// the shard router (any shard count) and the remote service must all
// produce BYTE-IDENTICAL distributions. Floating-point multiplication
// of polynomials is not associative, so the product is defined as ONE
// canonical algorithm — a fixed balanced divide-and-conquer tree over
// the factors sorted by ascending object id, with Neumaier-compensated
// coefficient sums — that every caller runs over the same sorted factor
// sequence. A shard merge therefore does not fold "per-shard
// polynomials" left to right; it pools the per-object factors and
// re-runs the canonical tree, whose internal combine steps ARE the
// per-shard polynomial multiplications whenever a subtree happens to
// coincide with a shard — and are well-defined even when it does not.
//
// Value-based fast paths keep certificate-pruned objects O(1) without
// breaking bit-identity: a factor [1] (p = 0, the object certainly does
// not count) multiplies as a copy, and a factor [0, 1] (p = 1, the
// object certainly counts) multiplies as a coefficient shift. Both
// shortcuts produce bit-for-bit the coefficients the general compensated
// convolution would, because x·1.0 = x and a two-term compensated sum
// with one exact-zero addend is exact.
package agg

import (
	"fmt"
	"math"
	"sort"
)

// Factor is one object's generating polynomial: Coeffs[j] is the
// probability the object contributes exactly j to the count. A
// predicate factor is the Bernoulli pair [1−p, p]; a PSTkQ factor is
// the object's visit-count distribution. In occupancy mode the same
// struct transports a per-timestep probability row instead (Coeffs[ti]
// is the probability at times[ti]); see Occupancy.
type Factor struct {
	ID     int
	Coeffs []float64
}

// Bernoulli is the factor of one object under a boolean predicate:
// (1−p) + p·x.
func Bernoulli(id int, p float64) Factor {
	return Factor{ID: id, Coeffs: []float64{1 - p, p}}
}

// CountResult is the canonical aggregate of one factor set.
type CountResult struct {
	// PMF[k] = P(count = k), k = 0..Σᵢ deg(fᵢ).
	PMF []float64
	// Mean and Variance of the count, computed from the PMF with
	// compensated summation.
	Mean, Variance float64
	// Mode is the most likely count (smallest index on ties).
	Mode int
	// Tail is P(count ≥ minCount) when minCount > 0, else 0.
	Tail float64
}

// Count runs the canonical aggregation: factors sorted by ascending id,
// the fixed divide-and-conquer product, compensated moments, and the
// iceberg tail when minCount > 0. The input slice is not mutated.
func Count(factors []Factor, minCount int) (CountResult, error) {
	pmf, err := CountPMF(factors)
	if err != nil {
		return CountResult{}, err
	}
	mean, variance, mode := Stats(pmf)
	out := CountResult{PMF: pmf, Mean: mean, Variance: variance, Mode: mode}
	if minCount > 0 {
		out.Tail = TailGE(pmf, minCount)
	}
	return out, nil
}

// CountPMF multiplies the factor polynomials with the canonical
// algorithm and returns the count PMF, padded with exact zeros to the
// full degree Σᵢ (len(Coeffs)−1) so the result length is partition- and
// value-independent. An empty factor set yields the empty product [1]
// (the count of an empty database is certainly zero).
func CountPMF(factors []Factor) ([]float64, error) {
	sorted, err := sortByID(factors)
	if err != nil {
		return nil, err
	}
	full := 1
	polys := make([][]float64, len(sorted))
	for i, f := range sorted {
		coeffs, err := sanitize(f)
		if err != nil {
			return nil, err
		}
		full += len(f.Coeffs) - 1
		// Trim exact trailing zeros (value-based, hence deterministic):
		// a Bernoulli with p = 0 becomes the identity [1], keeping
		// certificate-pruned objects O(1) in every combine they touch.
		trimmed := trimZeros(coeffs)
		if len(trimmed) == 0 {
			return nil, fmt.Errorf("agg: factor for object %d is identically zero", f.ID)
		}
		polys[i] = trimmed
	}
	pmf := product(polys)
	for len(pmf) < full {
		pmf = append(pmf, 0)
	}
	return pmf, nil
}

// sortByID returns the factors sorted by ascending object id — the
// canonical multiplication order — rejecting duplicates, which would
// silently double-count an object merged from two shards.
func sortByID(factors []Factor) ([]Factor, error) {
	sorted := make([]Factor, len(factors))
	copy(sorted, factors)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].ID == sorted[i-1].ID {
			return nil, fmt.Errorf("agg: duplicate factor for object %d", sorted[i].ID)
		}
	}
	return sorted, nil
}

// negRoundoff bounds how far below zero a coefficient may sit and still
// be treated as floating-point roundoff rather than invalid input: the
// exact kernels report probabilities like 1 + 2⁻⁵² (a dot product over a
// distribution whose mass rounds past one), whose Bernoulli complement
// is a few ulps negative.
const negRoundoff = 1e-9

// sanitize validates one factor and returns its coefficients with tiny
// negative roundoff snapped to exact zero. The snap is value-based —
// the same coefficient bits snap the same way on every caller — so it
// preserves the cross-topology byte-identity guarantee. The returned
// slice is a copy whenever it differs from the input.
func sanitize(f Factor) ([]float64, error) {
	if len(f.Coeffs) == 0 {
		return nil, fmt.Errorf("agg: factor for object %d has no coefficients", f.ID)
	}
	coeffs := f.Coeffs
	for j, c := range coeffs {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < -negRoundoff {
			return nil, fmt.Errorf("agg: factor for object %d has invalid coefficient %g", f.ID, c)
		}
		if c < 0 {
			if &coeffs[0] == &f.Coeffs[0] {
				coeffs = append([]float64(nil), f.Coeffs...)
			}
			coeffs[j] = 0
		}
	}
	return coeffs, nil
}

func trimZeros(coeffs []float64) []float64 {
	end := len(coeffs)
	for end > 0 && coeffs[end-1] == 0 {
		end--
	}
	return coeffs[:end]
}

// product multiplies the polynomials over the fixed balanced binary
// tree: split at mid = len/2, recurse, convolve. The tree shape depends
// only on the number of factors, never on their values, so every
// evaluation topology that feeds the same sorted factor sequence gets
// the same floating-point operation order.
func product(polys [][]float64) []float64 {
	switch len(polys) {
	case 0:
		return []float64{1}
	case 1:
		out := make([]float64, len(polys[0]))
		copy(out, polys[0])
		return out
	}
	mid := len(polys) / 2
	return convolve(product(polys[:mid]), product(polys[mid:]))
}

// convolve returns the coefficient-wise product a·b, each output
// coefficient a Neumaier-compensated sum over the diagonal, with
// value-based O(1) shortcuts for the identity [1] and the shift [0, 1].
// The shortcuts are bit-identical to the general path (see the package
// comment), so pruned and refined evaluations cannot drift apart.
func convolve(a, b []float64) []float64 {
	if isIdentity(a) {
		return b
	}
	if isIdentity(b) {
		return a
	}
	if isShift(a) {
		return shift(b)
	}
	if isShift(b) {
		return shift(a)
	}
	out := make([]float64, len(a)+len(b)-1)
	for j := range out {
		var s neumaier
		lo := j - len(b) + 1
		if lo < 0 {
			lo = 0
		}
		hi := j
		if hi > len(a)-1 {
			hi = len(a) - 1
		}
		for i := lo; i <= hi; i++ {
			s.add(a[i] * b[j-i])
		}
		out[j] = s.value()
	}
	return out
}

func isIdentity(p []float64) bool { return len(p) == 1 && p[0] == 1 }
func isShift(p []float64) bool    { return len(p) == 2 && p[0] == 0 && p[1] == 1 }

func shift(p []float64) []float64 {
	out := make([]float64, len(p)+1)
	copy(out[1:], p)
	return out
}

// NaiveCountPMF is the reference product: factors folded left to right
// in the order GIVEN (no sorting), each fold a plain uncompensated
// convolution. It is deliberately a different algorithm — tests compare
// it against CountPMF within float tolerance, and benchmarks use it as
// the naive per-object loop baseline. Invalid factors panic; use
// CountPMF for validated input.
func NaiveCountPMF(factors []Factor) []float64 {
	pmf := []float64{1}
	for _, f := range factors {
		if len(f.Coeffs) == 0 {
			panic(fmt.Sprintf("agg: factor for object %d has no coefficients", f.ID))
		}
		out := make([]float64, len(pmf)+len(f.Coeffs)-1)
		for i, a := range pmf {
			for j, b := range f.Coeffs {
				out[i+j] += a * b
			}
		}
		pmf = out
	}
	return pmf
}

// Stats returns the compensated mean, variance (clamped at 0) and mode
// (smallest index on ties) of a count PMF.
func Stats(pmf []float64) (mean, variance float64, mode int) {
	var m1, m2 neumaier
	best := math.Inf(-1)
	for j, p := range pmf {
		m1.add(float64(j) * p)
		m2.add(float64(j) * float64(j) * p)
		if p > best {
			best, mode = p, j
		}
	}
	mean = m1.value()
	variance = m2.value() - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance, mode
}

// TailGE returns P(count ≥ k): the compensated sum of pmf[k:], in
// ascending index order. k ≤ 0 sums the whole PMF.
func TailGE(pmf []float64, k int) float64 {
	if k < 0 {
		k = 0
	}
	if k >= len(pmf) {
		return 0
	}
	var s neumaier
	for _, p := range pmf[k:] {
		s.add(p)
	}
	return s.value()
}

// CDF returns the running P(count ≤ k), one compensated prefix sum.
func CDF(pmf []float64) []float64 {
	out := make([]float64, len(pmf))
	var s neumaier
	for j, p := range pmf {
		s.add(p)
		out[j] = s.value()
	}
	return out
}

// OccPoint is one timestep of an occupancy profile: the distribution of
// how many objects are inside the spatial predicate at that instant,
// summarized by its exact Poisson-binomial mean and variance, plus the
// iceberg tail P(occupancy ≥ minCount) when requested.
type OccPoint struct {
	Time           int
	Mean, Variance float64
	Tail           float64
}

// Occupancy computes the per-timestep profile from probability rows:
// rows[i].Coeffs[ti] is object rows[i].ID's probability of being inside
// the spatial predicate at times[ti]. Rows are sorted by ascending id
// (the canonical summation and convolution order); the tail is computed
// from the full per-timestep count PMF only when minCount > 0.
func Occupancy(rows []Factor, times []int, minCount int) ([]OccPoint, error) {
	sorted, err := sortByID(rows)
	if err != nil {
		return nil, err
	}
	for _, r := range sorted {
		if len(r.Coeffs) != len(times) {
			return nil, fmt.Errorf("agg: occupancy row for object %d has %d probabilities for %d timesteps", r.ID, len(r.Coeffs), len(times))
		}
	}
	out := make([]OccPoint, len(times))
	factors := make([]Factor, len(sorted))
	for ti, t := range times {
		var mean, variance neumaier
		for i, r := range sorted {
			p := r.Coeffs[ti]
			if math.IsNaN(p) || p < -negRoundoff || p > 1+negRoundoff {
				return nil, fmt.Errorf("agg: occupancy probability %g for object %d outside [0, 1]", p, r.ID)
			}
			// Snap kernel roundoff (value-based, deterministic).
			if p < 0 {
				p = 0
			} else if p > 1 {
				p = 1
			}
			mean.add(p)
			variance.add(p * (1 - p))
			factors[i] = Bernoulli(r.ID, p)
		}
		pt := OccPoint{Time: t, Mean: mean.value(), Variance: variance.value()}
		if minCount > 0 {
			pmf, perr := CountPMF(factors)
			if perr != nil {
				return nil, perr
			}
			pt.Tail = TailGE(pmf, minCount)
		}
		out[ti] = pt
	}
	return out, nil
}

// neumaier is Neumaier's improved Kahan–Babuška compensated summation:
// the running compensation also captures the case where the incoming
// term is larger than the running sum.
type neumaier struct{ sum, comp float64 }

func (n *neumaier) add(x float64) {
	t := n.sum + x
	if math.Abs(n.sum) >= math.Abs(x) {
		n.comp += (n.sum - t) + x
	} else {
		n.comp += (x - t) + n.sum
	}
	n.sum = t
}

func (n *neumaier) value() float64 { return n.sum + n.comp }
