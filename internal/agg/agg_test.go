package agg

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomFactors(rng *rand.Rand, n int) []Factor {
	factors := make([]Factor, n)
	for i := range factors {
		if rng.Intn(4) == 0 {
			// A multi-coefficient (PSTkQ-style) distribution factor.
			k := 1 + rng.Intn(4)
			coeffs := make([]float64, k+1)
			sum := 0.0
			for j := range coeffs {
				coeffs[j] = rng.Float64()
				sum += coeffs[j]
			}
			for j := range coeffs {
				coeffs[j] /= sum
			}
			factors[i] = Factor{ID: i*7 + 3, Coeffs: coeffs}
			continue
		}
		p := rng.Float64()
		switch rng.Intn(5) {
		case 0:
			p = 0
		case 1:
			p = 1
		}
		factors[i] = Bernoulli(i*7+3, p)
	}
	return factors
}

// TestCountPMFAgainstNaive pins the canonical divide-and-conquer product
// against the independent left-fold reference on randomized factor sets.
func TestCountPMFAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		factors := randomFactors(rng, rng.Intn(20))
		pmf, err := CountPMF(factors)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := NaiveCountPMF(factors)
		if len(pmf) != len(want) {
			t.Fatalf("trial %d: PMF length %d, naive %d", trial, len(pmf), len(want))
		}
		for j := range pmf {
			if !almostEqual(pmf[j], want[j], 1e-12) {
				t.Fatalf("trial %d: PMF[%d] = %g, naive %g", trial, j, pmf[j], want[j])
			}
		}
	}
}

// TestCountProperties: the PMF is a distribution (sums to 1, entries in
// [0,1]), its mean equals Σ E[factor] and its variance Σ Var[factor]
// (independence), CDF ends at the total mass, and the tail identities
// hold.
func TestCountProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		factors := randomFactors(rng, 1+rng.Intn(30))
		res, err := Count(factors, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sum := 0.0
		var wantMean, wantVar float64
		for _, f := range factors {
			m, m2 := 0.0, 0.0
			for j, c := range f.Coeffs {
				m += float64(j) * c
				m2 += float64(j) * float64(j) * c
			}
			wantMean += m
			wantVar += m2 - m*m
		}
		for j, p := range res.PMF {
			if p < -1e-15 || p > 1+1e-12 {
				t.Fatalf("trial %d: PMF[%d] = %g outside [0,1]", trial, j, p)
			}
			sum += p
		}
		if !almostEqual(sum, 1, 1e-10) {
			t.Fatalf("trial %d: PMF sums to %g", trial, sum)
		}
		if !almostEqual(res.Mean, wantMean, 1e-9) {
			t.Fatalf("trial %d: mean %g, want Σμ = %g", trial, res.Mean, wantMean)
		}
		if !almostEqual(res.Variance, wantVar, 1e-9) {
			t.Fatalf("trial %d: variance %g, want Σσ² = %g", trial, res.Variance, wantVar)
		}
		if !almostEqual(res.Tail, TailGE(res.PMF, 2), 0) {
			t.Fatalf("trial %d: tail mismatch", trial)
		}
		cdf := CDF(res.PMF)
		if !almostEqual(cdf[len(cdf)-1], sum, 1e-12) {
			t.Fatalf("trial %d: CDF ends at %g, mass %g", trial, cdf[len(cdf)-1], sum)
		}
		// P(count ≥ k) + P(count ≤ k−1) = total mass.
		if !almostEqual(TailGE(res.PMF, 2)+cdf[1], sum, 1e-10) {
			t.Fatalf("trial %d: tail + cdf = %g, mass %g", trial, TailGE(res.PMF, 2)+cdf[1], sum)
		}
	}
}

// TestCountPMFOrderIndependence: the canonical product must not depend
// on the input order — shuffled (shard-merged) factor sets produce
// byte-identical PMFs.
func TestCountPMFOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		factors := randomFactors(rng, 2+rng.Intn(25))
		want, err := CountPMF(factors)
		if err != nil {
			t.Fatal(err)
		}
		shuffled := make([]Factor, len(factors))
		copy(shuffled, factors)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := CountPMF(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d vs %d", trial, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("trial %d: PMF[%d] differs bitwise: %v vs %v", trial, j, got[j], want[j])
			}
		}
	}
}

// TestFastPathsBitwiseNeutral: replacing a p∈{0,1} Bernoulli factor's
// convolution by the identity/shift shortcut must give bit-for-bit the
// coefficients of the general compensated path, so certificate-pruned
// and exactly-refined evaluations cannot drift apart.
func TestFastPathsBitwiseNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		b := make([]float64, n)
		for j := range b {
			b[j] = rng.Float64()
		}
		general := func(a []float64) []float64 {
			out := make([]float64, len(a)+len(b)-1)
			for j := range out {
				var s neumaier
				for i := range a {
					if j-i >= 0 && j-i < len(b) {
						s.add(a[i] * b[j-i])
					}
				}
				out[j] = s.value()
			}
			return out
		}
		id := convolve([]float64{1}, b)
		wantID := general([]float64{1})
		sh := convolve([]float64{0, 1}, b)
		wantSh := general([]float64{0, 1})
		for j := range wantID {
			if id[j] != wantID[j] {
				t.Fatalf("identity shortcut drifts at %d: %v vs %v", j, id[j], wantID[j])
			}
		}
		for j := range wantSh {
			if sh[j] != wantSh[j] {
				t.Fatalf("shift shortcut drifts at %d: %v vs %v", j, sh[j], wantSh[j])
			}
		}
	}
}

func TestCountPMFEdgeCases(t *testing.T) {
	pmf, err := CountPMF(nil)
	if err != nil || len(pmf) != 1 || pmf[0] != 1 {
		t.Fatalf("empty product: %v %v", pmf, err)
	}
	if _, err := CountPMF([]Factor{Bernoulli(1, 0.5), Bernoulli(1, 0.2)}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if _, err := CountPMF([]Factor{{ID: 1, Coeffs: []float64{0.5, math.NaN()}}}); err == nil {
		t.Fatal("NaN coefficient accepted")
	}
	if _, err := CountPMF([]Factor{{ID: 1, Coeffs: []float64{0, 0}}}); err == nil {
		t.Fatal("zero polynomial accepted")
	}
	if _, err := CountPMF([]Factor{{ID: 1, Coeffs: []float64{1.5, -0.5}}}); err == nil {
		t.Fatal("genuinely negative coefficient accepted")
	}
	// Kernel roundoff a few ulps below zero snaps to exact zero without
	// mutating the caller's factor.
	eps := -2.220446049250313e-16
	in := []float64{eps, 1 - eps}
	pmf, err = CountPMF([]Factor{{ID: 1, Coeffs: in}})
	if err != nil {
		t.Fatalf("roundoff coefficient rejected: %v", err)
	}
	if pmf[0] != 0 || pmf[1] != 1-eps {
		t.Fatalf("roundoff snap: PMF %v", pmf)
	}
	if in[0] != eps {
		t.Fatal("sanitize mutated the caller's coefficients")
	}
	if _, err := CountPMF([]Factor{{ID: 1}}); err == nil {
		t.Fatal("empty factor accepted")
	}
	// All-certain factors: PMF is a point mass at the number of p=1
	// objects, at full length.
	pmf, err = CountPMF([]Factor{Bernoulli(1, 1), Bernoulli(2, 0), Bernoulli(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 0}
	if len(pmf) != len(want) {
		t.Fatalf("PMF %v, want %v", pmf, want)
	}
	for j := range want {
		if pmf[j] != want[j] {
			t.Fatalf("PMF %v, want %v", pmf, want)
		}
	}
}

func TestOccupancy(t *testing.T) {
	rows := []Factor{
		{ID: 2, Coeffs: []float64{0.5, 1}},
		{ID: 1, Coeffs: []float64{0.25, 0}},
	}
	pts, err := Occupancy(rows, []int{7, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Time != 7 || pts[1].Time != 8 {
		t.Fatalf("profile %+v", pts)
	}
	if !almostEqual(pts[0].Mean, 0.75, 1e-15) || !almostEqual(pts[1].Mean, 1, 1e-15) {
		t.Fatalf("means %g %g", pts[0].Mean, pts[1].Mean)
	}
	if !almostEqual(pts[0].Variance, 0.25*0.75+0.5*0.5, 1e-15) {
		t.Fatalf("variance %g", pts[0].Variance)
	}
	// P(both inside at t=7) = 0.25·0.5; at t=8 one object is certain,
	// the other impossible.
	if !almostEqual(pts[0].Tail, 0.125, 1e-15) || pts[1].Tail != 0 {
		t.Fatalf("tails %g %g", pts[0].Tail, pts[1].Tail)
	}

	if _, err := Occupancy([]Factor{{ID: 1, Coeffs: []float64{0.5}}}, []int{1, 2}, 0); err == nil {
		t.Fatal("row length mismatch accepted")
	}
	if _, err := Occupancy([]Factor{{ID: 1, Coeffs: []float64{1.5}}}, []int{1}, 0); err == nil {
		t.Fatal("probability outside [0,1] accepted")
	}
}

// TestNeumaierCompensation: the compensated sum recovers a classically
// catastrophic sequence a plain fold gets wrong.
func TestNeumaierCompensation(t *testing.T) {
	var s neumaier
	s.add(1)
	s.add(1e100)
	s.add(1)
	s.add(-1e100)
	if s.value() != 2 {
		t.Fatalf("compensated sum %g, want 2", s.value())
	}
}
