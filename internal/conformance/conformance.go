// Package conformance pins every engine implementation — the
// in-process core.Engine, the shard router, the remote client — to
// byte-identical query results. It provides a canonical dataset, a
// table of (predicate × strategy × ranking × window/region × expr)
// cases, and a Verify runner that answers each case through a
// reference and a candidate Evaluator and requires the same float64
// bits in the same order, through both the batch and the streaming
// entry points (and EvaluateBatch when available).
//
// Implementations instantiate it in their own tests: the engine against
// itself (a smoke check of the table), the shard router at 1, 2 and 8
// shards against a single engine, and the HTTP stack against a local
// twin through httptest.
package conformance

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"reflect"
	"testing"

	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/spatial"
)

// Evaluator is the surface a candidate must serve — the two primary
// entry points of core.Evaluator. Implementations that also serve
// EvaluateBatch get it verified when both sides support it.
type Evaluator interface {
	Evaluate(ctx context.Context, req core.Request) (*core.Response, error)
	EvaluateSeq(ctx context.Context, req core.Request) iter.Seq2[core.Result, error]
}

// BatchEvaluator is the optional batch surface.
type BatchEvaluator interface {
	EvaluateBatch(ctx context.Context, reqs []core.Request) ([]*core.Response, error)
}

// Options tailor a Verify run to a candidate's documented semantics.
type Options struct {
	// SkipSerialMC skips the serial Monte-Carlo case: its shared rng
	// stream is consumed in whole-database order, which a sharded
	// engine cannot reproduce (the router documents per-object seeding
	// instead; the seeded MC cases cover it).
	SkipSerialMC bool
}

// Case is one conformance query.
type Case struct {
	Name string
	Req  core.Request
	// SerialMC marks the case as depending on the serial shared-rng
	// Monte-Carlo stream (see Options.SkipSerialMC).
	SerialMC bool
}

// NewDataset builds the canonical conformance dataset: a 8×8 grid state
// space, two motion models (a lazy 4-neighbour random walk as the
// database default, a right-drifting walk for every third object)
// interleaved so that chain-group emission order differs between the
// whole database and typical shard slices, scattered object ids (the
// hash ring must not see a contiguous range), observation times spread
// over 0..3, and a mix of precise and imprecise observations. The
// returned resolver grounds the table's geometric region cases.
func NewDataset() (*core.Database, spatial.Resolver) {
	grid := spatial.NewGrid(8, 8)
	walk := gridChain(grid, false)
	drift := gridChain(grid, true)
	db := core.NewDatabase(walk)
	for i := 0; i < 24; i++ {
		id := (i*37 + 5) % 211
		var chain *markov.Chain
		if i%3 == 1 {
			chain = drift
		}
		t0 := i % 4
		s := (i * 13) % 64
		var pdf *markov.Distribution
		if i%5 == 0 {
			pdf = markov.UniformOver(64, []int{s, (s + 9) % 64, (s + 27) % 64})
		} else {
			pdf = markov.PointDistribution(64, s)
		}
		db.MustAdd(core.MustObject(id, chain, core.Observation{Time: t0, PDF: pdf}))
	}
	return db, grid
}

// NewMultiObsDataset builds the multi-observation variant of the
// canonical dataset: the same grid, chain mix, scattered ids and
// initial pdfs, but every object carries three or four observations.
// Each later observation is drawn from the states the motion model can
// actually reach from the previous one (evolve, then keep a spread of
// the reachable support), so the joint mass is never zero and the
// interpolating multi-observation kernels — not the extrapolating
// single-observation sweeps — answer every query.
func NewMultiObsDataset() (*core.Database, spatial.Resolver) {
	grid := spatial.NewGrid(8, 8)
	walk := gridChain(grid, false)
	drift := gridChain(grid, true)
	db := core.NewDatabase(walk)
	for i := 0; i < 24; i++ {
		id := (i*37 + 5) % 211
		chain := walk
		var own *markov.Chain
		if i%3 == 1 {
			own = drift
			chain = drift
		}
		t0 := i % 4
		s := (i * 13) % 64
		var pdf *markov.Distribution
		if i%5 == 0 {
			pdf = markov.UniformOver(64, []int{s, (s + 9) % 64, (s + 27) % 64})
		} else {
			pdf = markov.PointDistribution(64, s)
		}
		obs := []core.Observation{{Time: t0, PDF: pdf}}
		cur := pdf.Clone().Vec()
		cur.Normalize()
		t := t0
		for k := 1; k < 3+i%2; k++ {
			dt := 2 + (i+k)%2
			cur = chain.Evolve(cur, dt)
			t += dt
			// Keep half to three-quarters of the reachable support:
			// narrow enough that fusion genuinely reshapes the
			// posterior, wide enough that Monte-Carlo rejection
			// sampling keeps a workable acceptance rate.
			supp := cur.Support()
			next := reachableSpread(supp, max(2, len(supp)*(2+(i+k)%2)/4))
			opdf := markov.UniformOver(64, next)
			obs = append(obs, core.Observation{Time: t, PDF: opdf})
			cur = opdf.Clone().Vec()
			cur.Normalize()
		}
		db.MustAdd(core.MustObject(id, own, obs...))
	}
	return db, grid
}

// reachableSpread deterministically picks up to want states spread
// across a reachable support (ascending, as UniformOver expects).
func reachableSpread(supp []int, want int) []int {
	if want < 1 {
		want = 1
	}
	if want > len(supp) {
		want = len(supp)
	}
	picked := make([]int, 0, want)
	for k := 0; k < want; k++ {
		picked = append(picked, supp[k*(len(supp)-1)/max(want-1, 1)])
	}
	out := picked[:1]
	for _, s := range picked[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// NextObservation derives a fresh, motion-model-consistent sighting for
// an object: two steps past its last observation, over a spread of the
// states reachable from it. The ingest-during-query conformance pass
// feeds these through each implementation's ingest surface.
func NextObservation(db *core.Database, o *core.Object) core.Observation {
	ch := db.ChainOf(o)
	cur := o.Last().PDF.Clone().Vec()
	cur.Normalize()
	const dt = 2
	evolved := ch.Evolve(cur, dt)
	supp := evolved.Support()
	// Half the reachable support, like the dataset's own observations:
	// narrower picks (the support's extremes are the least likely
	// states) would starve Monte-Carlo rejection sampling.
	return core.Observation{
		Time: o.Last().Time + dt,
		PDF:  markov.UniformOver(ch.NumStates(), reachableSpread(supp, max(2, len(supp)/2))),
	}
}

// gridChain builds a row-stochastic motion model over the grid: a lazy
// random walk (equal mass on self and the 4-neighbourhood), or a
// right-drifting variant that weights the +x neighbour triple.
func gridChain(grid *spatial.Grid, drift bool) *markov.Chain {
	n := grid.NumStates()
	rows := make([][]float64, n)
	for s := 0; s < n; s++ {
		row := make([]float64, n)
		x, _ := grid.Cell(s)
		row[s] += 2
		for _, nb := range grid.Neighbors4(s) {
			nx, _ := grid.Cell(nb)
			w := 1.0
			if drift && nx == x+1 {
				w = 4
			}
			row[nb] += w
		}
		total := 0.0
		for _, v := range row {
			total += v
		}
		for j := range row {
			row[j] /= total
		}
		rows[s] = row
	}
	chain, err := markov.FromDense(rows)
	if err != nil {
		panic(fmt.Sprintf("conformance: grid chain: %v", err))
	}
	return chain
}

// Cases returns the conformance table. res grounds the geometric
// cases; pass the resolver NewDataset returned.
func Cases(res spatial.Resolver) []Case {
	region := core.Interval(40, 55) // rows 5-6 of the grid
	small := core.Interval(58, 61)  // part of the top row
	window := core.WithTimes(core.Interval(5, 8))
	late := core.WithTimes(core.Interval(9, 11))
	inRegion := core.WithStates(region)

	var cases []Case
	add := func(name string, req core.Request) {
		cases = append(cases, Case{Name: name, Req: req})
	}

	// Predicate × strategy over the shared window.
	for _, p := range []struct {
		name string
		pred core.Predicate
	}{
		{"exists", core.PredicateExists},
		{"forall", core.PredicateForAll},
		{"ktimes", core.PredicateKTimes},
	} {
		add(p.name+"/qb", core.NewRequest(p.pred, inRegion, window,
			core.WithStrategy(core.StrategyQueryBased)))
		add(p.name+"/ob", core.NewRequest(p.pred, inRegion, window,
			core.WithStrategy(core.StrategyObjectBased)))
		add(p.name+"/mc", core.NewRequest(p.pred, inRegion, window,
			core.WithStrategy(core.StrategyMonteCarlo),
			core.WithMonteCarloBudget(48, 11), core.WithParallelism(2)))
	}
	cases = append(cases, Case{
		Name: "exists/mc-serial",
		Req: core.NewRequest(core.PredicateExists, inRegion, window,
			core.WithStrategy(core.StrategyMonteCarlo), core.WithMonteCarloBudget(48, 11)),
		SerialMC: true,
	})

	// Unbounded horizon, default and custom fixed-point limits.
	add("eventually/default", core.NewRequest(core.PredicateEventually, core.WithStates(small)))
	add("eventually/limits", core.NewRequest(core.PredicateEventually, core.WithStates(small),
		core.WithHittingLimits(40, 1e-7)))

	// Planner-chosen strategy.
	add("exists/auto", core.NewRequest(core.PredicateExists, inRegion, window, core.WithAutoPlan()))
	add("exists/auto-topk", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithAutoPlan(), core.WithTopK(7)))

	// Ranking: threshold (evaluation order), top-k (ranked order), both.
	add("exists/threshold", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithThreshold(0.25)))
	add("exists/threshold-ob", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithThreshold(0.25), core.WithStrategy(core.StrategyObjectBased)))
	add("exists/topk", core.NewRequest(core.PredicateExists, inRegion, window, core.WithTopK(5)))
	add("forall/topk", core.NewRequest(core.PredicateForAll, inRegion, window, core.WithTopK(9)))
	add("exists/topk-threshold", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithTopK(6), core.WithThreshold(0.1)))
	add("ktimes/threshold", core.NewRequest(core.PredicateKTimes, inRegion, window,
		core.WithThreshold(0.2)))

	// Cache and filter toggles must not change results.
	add("exists/no-cache", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithCache(false)))
	add("exists/topk-no-filter", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithTopK(5), core.WithFilterRefine(false)))

	// Parallel object-based fan-out.
	add("exists/ob-parallel", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithStrategy(core.StrategyObjectBased), core.WithParallelism(3)))

	// Geometric region, resolved through the spatial index.
	add("exists/region", core.NewRequest(core.PredicateExists,
		core.WithRegion(spatial.NewRect(4.5, 1.5, 7.5, 5.5), res), window))
	add("ktimes/region", core.NewRequest(core.PredicateKTimes,
		core.WithRegion(spatial.NewRect(0.5, 4.5, 3.5, 7.5), res), late))

	// Compound expressions: every combinator, with ranking and both
	// exact strategies.
	atomA := core.ExistsAtom(core.WithStates(region), core.WithTimes(core.Interval(4, 6)))
	atomB := core.ForAllAtom(core.WithStates(core.Interval(16, 47)), core.WithTimes(core.Interval(8, 9)))
	atomEarly := core.ExistsAtom(core.WithStates(small), core.WithTimes(core.Interval(4, 5)))
	atomLate := core.ExistsAtom(core.WithStates(region), core.WithTimes(core.Interval(7, 9)))
	add("expr/and-not", core.NewExprRequest(core.And(atomA, core.Not(atomB))))
	add("expr/or-ob", core.NewExprRequest(core.Or(atomA, atomB),
		core.WithStrategy(core.StrategyObjectBased)))
	add("expr/then", core.NewExprRequest(core.Then(atomEarly, atomLate)))
	add("expr/threshold", core.NewExprRequest(core.And(atomA, core.Not(atomB)),
		core.WithThreshold(0.15)))
	add("expr/topk", core.NewExprRequest(core.Or(atomA, atomB), core.WithTopK(8)))
	add("expr/region", core.NewExprRequest(core.And(
		core.ExistsAtom(core.WithRegion(spatial.NewRect(4.5, 1.5, 7.5, 5.5), res),
			core.WithTimes(core.Interval(4, 6))),
		core.Not(atomB))))
	add("expr/mc", core.NewExprRequest(core.Or(atomA, atomB),
		core.WithStrategy(core.StrategyMonteCarlo),
		core.WithMonteCarloBudget(32, 23), core.WithParallelism(2)))

	// Probabilistic aggregates: the count distribution IS the answer, so
	// these cases compare Response.Agg bit for bit — the PMF must come
	// out byte-identical whether the factors were folded by one engine,
	// pooled across shards, or carried over the wire.
	count := core.AggSpec{Kind: core.AggCount}
	add("agg/count-qb", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithStrategy(core.StrategyQueryBased)))
	add("agg/count-ob", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithStrategy(core.StrategyObjectBased)))
	add("agg/count-forall", core.NewAggRequest(core.PredicateForAll, count, inRegion, window))
	add("agg/count-ktimes", core.NewAggRequest(core.PredicateKTimes, count, inRegion, window))
	add("agg/count-min", core.NewAggRequest(core.PredicateExists,
		core.AggSpec{Kind: core.AggCount, MinCount: 4}, inRegion, window))
	add("agg/count-auto", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithAutoPlan()))
	add("agg/count-no-filter", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithFilterRefine(false)))
	add("agg/count-mc", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithStrategy(core.StrategyMonteCarlo),
		core.WithMonteCarloBudget(48, 11), core.WithParallelism(2)))
	add("agg/count-expr", core.NewExprRequest(core.And(atomA, core.Not(atomB)),
		core.WithAggregate(count)))
	add("agg/count-eventually", core.NewAggRequest(core.PredicateEventually, count,
		core.WithStates(small)))
	add("agg/count-region", core.NewAggRequest(core.PredicateExists, count,
		core.WithRegion(spatial.NewRect(4.5, 1.5, 7.5, 5.5), res), window))
	add("agg/occupancy", core.NewAggRequest(core.PredicateExists,
		core.AggSpec{Kind: core.AggOccupancy, MinCount: 2}, inRegion, window))

	return cases
}

// MultiObsCases returns the conformance table for the multi-observation
// dataset. It spans the same dimensions as Cases — predicate × strategy,
// ranking, planner, cache/filter toggles, geometric regions, count
// aggregates — minus the surfaces that document single-observation-only
// semantics (ktimes, eventually, compound expressions) and so error on
// every object of a multi-observation database.
func MultiObsCases(res spatial.Resolver) []Case {
	region := core.Interval(40, 55)
	window := core.WithTimes(core.Interval(5, 8))
	inRegion := core.WithStates(region)

	var cases []Case
	add := func(name string, req core.Request) {
		cases = append(cases, Case{Name: name, Req: req})
	}

	for _, p := range []struct {
		name string
		pred core.Predicate
	}{
		{"exists", core.PredicateExists},
		{"forall", core.PredicateForAll},
	} {
		add(p.name+"/qb", core.NewRequest(p.pred, inRegion, window,
			core.WithStrategy(core.StrategyQueryBased)))
		add(p.name+"/ob", core.NewRequest(p.pred, inRegion, window,
			core.WithStrategy(core.StrategyObjectBased)))
		add(p.name+"/mc", core.NewRequest(p.pred, inRegion, window,
			core.WithStrategy(core.StrategyMonteCarlo),
			core.WithMonteCarloBudget(192, 11), core.WithParallelism(2)))
	}
	cases = append(cases, Case{
		Name: "exists/mc-serial",
		Req: core.NewRequest(core.PredicateExists, inRegion, window,
			core.WithStrategy(core.StrategyMonteCarlo), core.WithMonteCarloBudget(192, 11)),
		SerialMC: true,
	})

	add("exists/auto", core.NewRequest(core.PredicateExists, inRegion, window, core.WithAutoPlan()))
	add("exists/auto-topk", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithAutoPlan(), core.WithTopK(7)))

	add("exists/threshold", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithThreshold(0.25)))
	add("exists/threshold-ob", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithThreshold(0.25), core.WithStrategy(core.StrategyObjectBased)))
	add("exists/topk", core.NewRequest(core.PredicateExists, inRegion, window, core.WithTopK(5)))
	add("forall/topk", core.NewRequest(core.PredicateForAll, inRegion, window, core.WithTopK(9)))

	add("exists/no-cache", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithCache(false)))
	add("exists/topk-no-filter", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithTopK(5), core.WithFilterRefine(false)))
	add("exists/ob-parallel", core.NewRequest(core.PredicateExists, inRegion, window,
		core.WithStrategy(core.StrategyObjectBased), core.WithParallelism(3)))

	add("exists/region", core.NewRequest(core.PredicateExists,
		core.WithRegion(spatial.NewRect(4.5, 1.5, 7.5, 5.5), res), window))

	count := core.AggSpec{Kind: core.AggCount}
	add("agg/count-qb", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithStrategy(core.StrategyQueryBased)))
	add("agg/count-ob", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithStrategy(core.StrategyObjectBased)))
	add("agg/count-forall", core.NewAggRequest(core.PredicateForAll, count, inRegion, window))
	add("agg/count-min", core.NewAggRequest(core.PredicateExists,
		core.AggSpec{Kind: core.AggCount, MinCount: 4}, inRegion, window))
	add("agg/count-auto", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithAutoPlan()))
	add("agg/count-no-filter", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithFilterRefine(false)))
	add("agg/count-mc", core.NewAggRequest(core.PredicateExists, count, inRegion, window,
		core.WithStrategy(core.StrategyMonteCarlo),
		core.WithMonteCarloBudget(192, 11), core.WithParallelism(2)))
	add("agg/count-region", core.NewAggRequest(core.PredicateExists, count,
		core.WithRegion(spatial.NewRect(4.5, 1.5, 7.5, 5.5), res), window))
	add("agg/occupancy", core.NewAggRequest(core.PredicateExists,
		core.AggSpec{Kind: core.AggOccupancy, MinCount: 2}, inRegion, window))

	return cases
}

// Verify answers every case through ref and got and requires
// byte-identical Results (and the same resolved Strategy and planner
// estimates) from Evaluate, the same sequence from EvaluateSeq, and —
// when both sides implement BatchEvaluator — the same per-item results
// from one EvaluateBatch over the whole table.
func Verify(t *testing.T, res spatial.Resolver, ref, got Evaluator, opts Options) {
	t.Helper()
	verifyCases(t, Cases(res), ref, got, opts)
}

// VerifyMultiObs runs the multi-observation table, then — when an
// ingest hook is supplied — appends a fresh consistent sighting to
// several objects through the candidate's own ingest surface and
// replays the table. db must be the database both evaluators serve;
// ingest routes an observation the way the implementation's callers
// would (ReplaceObject on the engine, Router.Observe across shards,
// Client.Observe over HTTP).
func VerifyMultiObs(t *testing.T, db *core.Database, res spatial.Resolver, ref, got Evaluator,
	ingest func(objectID int, obs core.Observation) error, opts Options) {
	t.Helper()
	cases := MultiObsCases(res)
	t.Run("initial", func(t *testing.T) {
		verifyCases(t, cases, ref, got, opts)
	})
	if ingest == nil {
		return
	}
	t.Run("ingest-during-query", func(t *testing.T) {
		objs := db.Objects()
		for i := 0; i < len(objs); i += 7 {
			o := objs[i]
			if err := ingest(o.ID, NextObservation(db, o)); err != nil {
				t.Fatalf("ingest for object %d: %v", o.ID, err)
			}
			if cur := db.Get(o.ID); len(cur.Observations) != len(o.Observations)+1 {
				t.Fatalf("ingest for object %d did not reach the shared database", o.ID)
			}
		}
		verifyCases(t, cases, ref, got, opts)
	})
}

func verifyCases(t *testing.T, cases []Case, ref, got Evaluator, opts Options) {
	t.Helper()
	ctx := context.Background()
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			if c.SerialMC && opts.SkipSerialMC {
				t.Skip("serial Monte-Carlo stream is not shardable (per-object seeding applies)")
			}
			want, err := ref.Evaluate(ctx, c.Req)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			have, err := got.Evaluate(ctx, c.Req)
			if err != nil {
				t.Fatalf("candidate: %v", err)
			}
			if !reflect.DeepEqual(normalize(have.Results), normalize(want.Results)) {
				t.Fatalf("results diverge:\n  candidate %+v\n  reference %+v", have.Results, want.Results)
			}
			// Aggregate answers compare bit for bit — DeepEqual over the
			// PMF/profile float64s is the byte-identity pin.
			if !reflect.DeepEqual(have.Agg, want.Agg) {
				t.Fatalf("aggregate diverges:\n  candidate %+v\n  reference %+v", have.Agg, want.Agg)
			}
			if have.Strategy != want.Strategy {
				t.Fatalf("strategy: candidate %v, reference %v", have.Strategy, want.Strategy)
			}
			if !reflect.DeepEqual(have.Plans, want.Plans) {
				t.Fatalf("plans: candidate %+v, reference %+v", have.Plans, want.Plans)
			}

			if _, isAgg := c.Req.AggregateHint(); isAgg {
				// Streaming an aggregate must refuse with the sentinel on
				// every implementation, not hang or fabricate rows.
				sawSentinel := false
				for _, serr := range got.EvaluateSeq(ctx, c.Req) {
					if serr == nil {
						t.Fatal("candidate streamed a result for an aggregate request")
					}
					if !errors.Is(serr, core.ErrAggregateStream) {
						t.Fatalf("candidate stream error %v, want ErrAggregateStream", serr)
					}
					sawSentinel = true
					break
				}
				if !sawSentinel {
					t.Fatal("candidate stream for an aggregate request yielded nothing")
				}
				return
			}
			var streamed []core.Result
			for r, serr := range got.EvaluateSeq(ctx, c.Req) {
				if serr != nil {
					t.Fatalf("candidate stream: %v", serr)
				}
				streamed = append(streamed, r)
			}
			if !reflect.DeepEqual(normalize(streamed), normalize(want.Results)) {
				t.Fatalf("streamed results diverge:\n  candidate %+v\n  reference %+v", streamed, want.Results)
			}
		})
	}

	refBatch, refOK := ref.(BatchEvaluator)
	gotBatch, gotOK := got.(BatchEvaluator)
	if !refOK || !gotOK {
		return
	}
	t.Run("batch", func(t *testing.T) {
		var reqs []core.Request
		var names []string
		for _, c := range cases {
			if c.SerialMC && opts.SkipSerialMC {
				continue
			}
			reqs = append(reqs, c.Req)
			names = append(names, c.Name)
		}
		want, err := refBatch.EvaluateBatch(ctx, reqs)
		if err != nil {
			t.Fatalf("reference batch: %v", err)
		}
		have, err := gotBatch.EvaluateBatch(ctx, reqs)
		if err != nil {
			t.Fatalf("candidate batch: %v", err)
		}
		for i := range reqs {
			if !reflect.DeepEqual(normalize(have[i].Results), normalize(want[i].Results)) {
				t.Errorf("%s: batch results diverge:\n  candidate %+v\n  reference %+v",
					names[i], have[i].Results, want[i].Results)
			}
			if !reflect.DeepEqual(have[i].Agg, want[i].Agg) {
				t.Errorf("%s: batch aggregate diverges:\n  candidate %+v\n  reference %+v",
					names[i], have[i].Agg, want[i].Agg)
			}
		}
	})
}

// normalize maps empty result slices to nil so batch (non-nil empty)
// and streamed (nil) shapes compare equal.
func normalize(rs []core.Result) []core.Result {
	if len(rs) == 0 {
		return nil
	}
	return rs
}
