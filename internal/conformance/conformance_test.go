package conformance

import (
	"testing"

	"ust/internal/core"
)

// TestTableAgainstEngineTwin is the suite's own smoke check: two
// independent engines over the same dataset must agree on every case —
// it proves each case is well-formed (no errors), deterministic across
// engine instances, and exercises the full table before the real
// candidates (shard router, remote stack) instantiate it.
func TestTableAgainstEngineTwin(t *testing.T) {
	db, res := NewDataset()
	ref := core.NewEngine(db, core.Options{})
	got := core.NewEngine(db, core.Options{})
	Verify(t, res, ref, got, Options{})
}

// TestMultiObsTableAgainstEngineTwin runs the multi-observation table —
// every object carries three or four sightings, so the interpolating
// kernels answer every case — through two engines over the shared
// database, then ingests further observations at the database level and
// replays the table.
func TestMultiObsTableAgainstEngineTwin(t *testing.T) {
	db, res := NewMultiObsDataset()
	ref := core.NewEngine(db, core.Options{})
	got := core.NewEngine(db, core.Options{})
	ingest := func(id int, obs core.Observation) error {
		upd, err := db.Get(id).WithObservation(obs)
		if err != nil {
			return err
		}
		return db.ReplaceObject(upd)
	}
	VerifyMultiObs(t, db, res, ref, got, ingest, Options{})
}

// TestMultiObsDatasetShape pins the variant's defining property: no
// object may degrade to the single-observation fast paths.
func TestMultiObsDatasetShape(t *testing.T) {
	db, _ := NewMultiObsDataset()
	if db.Len() != 24 {
		t.Fatalf("dataset has %d objects, want 24", db.Len())
	}
	for _, o := range db.Objects() {
		if len(o.Observations) < 3 {
			t.Errorf("object %d has %d observations, want ≥3", o.ID, len(o.Observations))
		}
		for k := 1; k < len(o.Observations); k++ {
			if o.Observations[k].Time <= o.Observations[k-1].Time {
				t.Errorf("object %d observation times not strictly increasing", o.ID)
			}
		}
	}
}

// TestTableCoversShapes pins the table's breadth so a future edit
// cannot silently drop a dimension.
func TestTableCoversShapes(t *testing.T) {
	_, res := NewDataset()
	var mc, ranked, region, expr, eventually int
	for _, c := range Cases(res) {
		if s, ok := c.Req.StrategyHint(); ok && s == core.StrategyMonteCarlo {
			mc++
		}
		if _, ok := c.Req.ThresholdHint(); ok || c.Req.TopKHint() > 0 {
			ranked++
		}
		if c.Req.NeedsResolver() || c.Req.Region != nil {
			region++
		}
		if c.Req.Predicate == core.PredicateExpr {
			expr++
		}
		if c.Req.Predicate == core.PredicateEventually {
			eventually++
		}
	}
	for name, n := range map[string]int{"mc": mc, "ranked": ranked, "expr": expr, "eventually": eventually} {
		if n < 2 {
			t.Errorf("table has only %d %s cases", n, name)
		}
	}
	if region < 2 {
		t.Errorf("table has only %d region cases", region)
	}
}
