package conformance

import (
	"testing"

	"ust/internal/core"
)

// TestTableAgainstEngineTwin is the suite's own smoke check: two
// independent engines over the same dataset must agree on every case —
// it proves each case is well-formed (no errors), deterministic across
// engine instances, and exercises the full table before the real
// candidates (shard router, remote stack) instantiate it.
func TestTableAgainstEngineTwin(t *testing.T) {
	db, res := NewDataset()
	ref := core.NewEngine(db, core.Options{})
	got := core.NewEngine(db, core.Options{})
	Verify(t, res, ref, got, Options{})
}

// TestTableCoversShapes pins the table's breadth so a future edit
// cannot silently drop a dimension.
func TestTableCoversShapes(t *testing.T) {
	_, res := NewDataset()
	var mc, ranked, region, expr, eventually int
	for _, c := range Cases(res) {
		if s, ok := c.Req.StrategyHint(); ok && s == core.StrategyMonteCarlo {
			mc++
		}
		if _, ok := c.Req.ThresholdHint(); ok || c.Req.TopKHint() > 0 {
			ranked++
		}
		if c.Req.NeedsResolver() || c.Req.Region != nil {
			region++
		}
		if c.Req.Predicate == core.PredicateExpr {
			expr++
		}
		if c.Req.Predicate == core.PredicateEventually {
			eventually++
		}
	}
	for name, n := range map[string]int{"mc": mc, "ranked": ranked, "expr": expr, "eventually": eventually} {
		if n < 2 {
			t.Errorf("table has only %d %s cases", n, name)
		}
	}
	if region < 2 {
		t.Errorf("table has only %d region cases", region)
	}
}
