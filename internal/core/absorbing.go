package core

import (
	"fmt"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// AugmentedChain materializes the paper's absorbing-state matrices for a
// query region (Section V-A):
//
//	M− = | M    0 |        M+ = | M′  sum(S□) |
//	     | 0ᵀ   1 |             | 0ᵀ      1   |
//
// over the extended state space S ∪ {◆}, where ◆ (index |S|) is the
// absorbing "true hit" state, M′ zeroes the columns of S□, and sum(S□)
// carries the per-row mass removed that way.
//
// The production engine applies the same operator implicitly; this type
// exists to (a) stay faithful to the paper's formulation, (b) cross-
// validate the implicit path, and (c) measure the cost of materializing
// (BenchmarkAblationAugmented).
type AugmentedChain struct {
	base   *markov.Chain
	minus  *sparse.CSR // (|S|+1)², used stepping into non-query times
	plus   *sparse.CSR // (|S|+1)², used stepping into query times
	minusT *sparse.CSR
	plusT  *sparse.CSR
}

// HitState returns the index of the absorbing ◆ state.
func (a *AugmentedChain) HitState() int { return a.base.NumStates() }

// Minus returns the materialized M− matrix.
func (a *AugmentedChain) Minus() *sparse.CSR { return a.minus }

// Plus returns the materialized M+ matrix.
func (a *AugmentedChain) Plus() *sparse.CSR { return a.plus }

// NewAugmentedChain builds M− and M+ for the spatial predicate of the
// compiled window. Transposes are built lazily.
func NewAugmentedChain(chain *markov.Chain, regionStates []int) *AugmentedChain {
	n := chain.NumStates()
	mask := make([]bool, n)
	for _, s := range regionStates {
		if s < 0 || s >= n {
			panic(fmt.Sprintf("core: region state %d outside space of %d", s, n))
		}
		mask[s] = true
	}
	m := chain.Matrix()

	minus := sparse.FromRows(n+1, n+1, func(i int) ([]int, []float64) {
		if i == n {
			return []int{n}, []float64{1}
		}
		cols, vals := m.RowSlices(i)
		return cols, vals
	})

	plus := sparse.FromRows(n+1, n+1, func(i int) ([]int, []float64) {
		if i == n {
			return []int{n}, []float64{1}
		}
		cols, vals := m.RowSlices(i)
		var idx []int
		var out []float64
		redirected := 0.0
		for k, j := range cols {
			if mask[j] {
				redirected += vals[k]
			} else {
				idx = append(idx, j)
				out = append(out, vals[k])
			}
		}
		if redirected > 0 {
			idx = append(idx, n)
			out = append(out, redirected)
		}
		return idx, out
	})

	return &AugmentedChain{base: chain, minus: minus, plus: plus}
}

// ExtendVec embeds a |S|-dimensional distribution into the extended
// space with zero initial hit mass.
func (a *AugmentedChain) ExtendVec(v *sparse.Vec) *sparse.Vec {
	out := sparse.NewVec(a.base.NumStates() + 1)
	v.Range(func(i int, x float64) { out.Set(i, x) })
	return out
}

// ExistsOBAugmented evaluates P∃ exactly as Section V-A writes it: the
// extended distribution vector is multiplied with the materialized M−
// or M+ at every step, and the answer is the final mass of ◆.
func ExistsOBAugmented(chain *markov.Chain, regionStates []int, times []int, init *sparse.Vec, t0 int) (float64, error) {
	q := NewQuery(regionStates, times)
	w, err := compile(q, chain.NumStates())
	if err != nil {
		return 0, err
	}
	if w.k == 0 {
		return 0, nil
	}
	if t0 > w.horizon {
		return 0, fmt.Errorf("core: start time %d after query horizon %d", t0, w.horizon)
	}
	aug := NewAugmentedChain(chain, q.States)
	cur := aug.ExtendVec(init)
	// Footnote 2: if t0 itself is a query time, mass inside S□ moves to
	// ◆ before any transition.
	if w.atTime(t0) {
		hit := sweepHits(cur, w) // mask is n states; ◆ (index n) unaffected
		cur.Add(aug.HitState(), hit)
	}
	next := sparse.NewVec(cur.Len())
	for t := t0; t < w.horizon; t++ {
		if w.atTime(t + 1) {
			sparse.VecMat(next, cur, aug.plus)
		} else {
			sparse.VecMat(next, cur, aug.minus)
		}
		cur, next = next, cur
	}
	return cur.At(aug.HitState()), nil
}

// ExistsQBAugmented evaluates P∃ with the transposed materialized
// matrices, exactly as Section V-B writes it: backward from the hit
// vector (0,…,0,1) at the horizon, then one dot product with the
// extended initial distribution.
func ExistsQBAugmented(chain *markov.Chain, regionStates []int, times []int, init *sparse.Vec, t0 int) (float64, error) {
	q := NewQuery(regionStates, times)
	w, err := compile(q, chain.NumStates())
	if err != nil {
		return 0, err
	}
	if w.k == 0 {
		return 0, nil
	}
	if t0 > w.horizon {
		return 0, fmt.Errorf("core: start time %d after query horizon %d", t0, w.horizon)
	}
	aug := NewAugmentedChain(chain, q.States)
	if aug.minusT == nil {
		aug.minusT = aug.minus.Transpose()
		aug.plusT = aug.plus.Transpose()
	}
	score := sparse.NewVec(chain.NumStates() + 1)
	score.Set(aug.HitState(), 1)
	next := sparse.NewVec(score.Len())
	for t := w.horizon; t > t0; t-- {
		if w.atTime(t) {
			sparse.VecMat(next, score, aug.plusT)
		} else {
			sparse.VecMat(next, score, aug.minusT)
		}
		score, next = next, score
	}
	ext := aug.ExtendVec(init)
	if w.atTime(t0) {
		// Footnote 2 again: worlds starting inside the window at t0 are
		// immediate hits regardless of the backward scores.
		w.eachRegionState(func(s int) { score.Set(s, 1) })
	}
	return ext.Dot(score), nil
}
