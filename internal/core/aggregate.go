package core

import (
	"context"
	"errors"
	"fmt"

	"ust/internal/agg"
)

// Probabilistic aggregates: database-level count distributions computed
// by generating functions (Züfle's technique). Each object contributes
// an independent factor polynomial — the Bernoulli (1−p) + p·x of its
// predicate probability, or its full PSTkQ visit-count distribution —
// and the product of the factors is the exact generating function of
// the count. The per-object probabilities come from the SAME exact
// evaluators the per-object streams use (kernel.go, plan.go), riding
// the score cache and the fused batch sweeps, so an aggregate answer is
// consistent with the per-object answers to the ulp, and the canonical
// product (internal/agg) makes the distribution byte-identical across
// the in-process engine, the shard router and the remote service.
//
// The filter–refine integration brackets objects with the reachability
// envelopes before any exact evaluation: an exists-object whose
// possible-envelope mass is exactly zero carries the bit-exact zero
// certificate (kern.existsUpper) and enters the product as the identity
// factor [1]; a forall-object whose COMPLEMENT-window envelope mass is
// exactly zero is certain (P∀ = 1 − 0, bit-exactly 1) and enters as the
// shift factor [0, 1]. Both multiply in O(1) and are bit-identical to
// what exact refinement would have produced, so pruning can only skip
// work, never change a coefficient.

// AggKind selects the aggregate computed by WithAggregate.
type AggKind int

const (
	// AggCount is the count distribution: the exact PMF of how many
	// objects satisfy the predicate (for PSTkQ: of the total number of
	// window timestamps spent inside the region, summed over objects).
	AggCount AggKind = iota
	// AggOccupancy is the per-timestep occupancy profile: for every
	// timestamp of the window, the distribution of how many objects are
	// inside the spatial predicate at that instant, summarized by its
	// exact mean and variance (and iceberg tail when MinCount is set).
	// Exists-predicate, exact strategies only.
	AggOccupancy
)

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggOccupancy:
		return "occupancy"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggSpec configures one aggregate request.
type AggSpec struct {
	// Kind selects the aggregate.
	Kind AggKind
	// MinCount, when > 0, additionally reports the iceberg tail
	// P(count ≥ MinCount) — the count-threshold query.
	MinCount int
}

func (s AggSpec) validate() error {
	switch s.Kind {
	case AggCount, AggOccupancy:
	default:
		return fmt.Errorf("core: unknown aggregate kind %v", s.Kind)
	}
	if s.MinCount < 0 {
		return fmt.Errorf("core: aggregate min-count must be ≥ 0, got %d", s.MinCount)
	}
	return nil
}

// AggPoint is one timestep of an occupancy profile.
type AggPoint = agg.OccPoint

// AggResult is the answer to an aggregate request, reported on
// Response.Agg.
type AggResult struct {
	// Kind echoes the request's aggregate kind.
	Kind AggKind
	// MinCount echoes the request's iceberg threshold (0 when unset).
	MinCount int
	// PMF[k] = P(count = k), for AggCount. Its length is always the
	// maximum possible count plus one (database size plus one for
	// boolean predicates), independent of the probability values.
	PMF []float64
	// Mean and Variance of the count distribution (AggCount).
	Mean, Variance float64
	// ModeCount is the most likely count (smallest on ties, AggCount).
	ModeCount int
	// Tail is P(count ≥ MinCount) when MinCount > 0 (AggCount).
	Tail float64
	// Profile is the per-timestep occupancy summary (AggOccupancy),
	// ordered by ascending timestamp.
	Profile []AggPoint
}

// CDF returns the running P(count ≤ k) of an AggCount result, computed
// from the PMF with compensated prefix sums.
func (a *AggResult) CDF() []float64 { return agg.CDF(a.PMF) }

// ErrAggregateStream is returned by EvaluateSeq for aggregate requests:
// the answer is one distribution, not a per-object stream. Use Evaluate.
var ErrAggregateStream = errors.New("core: aggregate requests answer as one distribution, not a result stream; use Evaluate")

// FactorSet is the per-object decomposition of an aggregate: every
// object's generating factor (AggCount) or per-timestep probability row
// (AggOccupancy, Coeffs parallel to Times), in the engine's emission
// order. The shard router pools FactorSets from its members and re-runs
// the same canonical aggregation the single engine runs, which is what
// makes sharded aggregate responses byte-identical to the engine's.
type FactorSet struct {
	Factors []agg.Factor
	// Times is the resolved profile window (AggOccupancy only).
	Times []int
	// Strategy, Plans, Cache and Filter mirror the Response metadata of
	// the evaluation that produced the factors.
	Strategy Strategy
	Plans    []CostEstimate
	Cache    CacheReport
	Filter   FilterReport
}

// AggregateFactors computes the factor decomposition of an aggregate
// request without folding it into a distribution — the building block
// the shard router merges across members. The request must carry an
// aggregate spec (WithAggregate).
func (e *Engine) AggregateFactors(ctx context.Context, req Request) (*FactorSet, error) {
	spec, ok := req.AggregateHint()
	if !ok {
		return nil, fmt.Errorf("core: AggregateFactors needs an aggregate request (use WithAggregate)")
	}
	plan, err := e.prepare(req)
	if err != nil {
		return nil, err
	}
	fs, err := e.factorSet(ctx, plan, spec)
	if err != nil {
		return nil, err
	}
	fs.Strategy, fs.Plans = plan.strategy, plan.plans
	fs.Cache, fs.Filter = plan.cacheRep, plan.filterRep
	return fs, nil
}

// aggregate answers a prepared aggregate plan: factors, then the
// canonical fold.
func (e *Engine) aggregate(ctx context.Context, plan *evalPlan, spec AggSpec) (*AggResult, error) {
	fs, err := e.factorSet(ctx, plan, spec)
	if err != nil {
		return nil, err
	}
	return FoldFactors(spec, fs)
}

// FoldFactors runs the canonical aggregation over a factor set. It is
// the single fold both the engine and the shard router call — the
// factors are sorted by object id inside, so any partition of the
// database that contributes the same per-object factors produces the
// same distribution, bit for bit.
func FoldFactors(spec AggSpec, fs *FactorSet) (*AggResult, error) {
	out := &AggResult{Kind: spec.Kind, MinCount: spec.MinCount}
	if spec.Kind == AggOccupancy {
		profile, err := agg.Occupancy(fs.Factors, fs.Times, spec.MinCount)
		if err != nil {
			return nil, err
		}
		out.Profile = profile
		return out, nil
	}
	cr, err := agg.Count(fs.Factors, spec.MinCount)
	if err != nil {
		return nil, err
	}
	out.PMF, out.Mean, out.Variance = cr.PMF, cr.Mean, cr.Variance
	out.ModeCount, out.Tail = cr.Mode, cr.Tail
	return out, nil
}

// factorSet dispatches factor computation by aggregate kind.
func (e *Engine) factorSet(ctx context.Context, plan *evalPlan, spec AggSpec) (*FactorSet, error) {
	if spec.Kind == AggOccupancy {
		if plan.strategy == StrategyMonteCarlo {
			return nil, fmt.Errorf("core: occupancy profiles have no Monte-Carlo strategy")
		}
		return e.occupancyRows(ctx, plan)
	}
	factors, err := e.countFactors(ctx, plan)
	if err != nil {
		return nil, err
	}
	return &FactorSet{Factors: factors}, nil
}

// countFactors computes every object's generating factor in the
// engine's emission order. Exists/forall requests on the exact
// strategies go through the certificate-aware loop; everything else
// rides the unmodified per-object stream cores, so strategy semantics
// (including the Monte-Carlo rng discipline) are exactly those of the
// per-object request.
func (e *Engine) countFactors(ctx context.Context, plan *evalPlan) ([]agg.Factor, error) {
	pred := plan.req.Predicate
	if (pred == PredicateExists || pred == PredicateForAll) &&
		plan.strategy != StrategyMonteCarlo && plan.useFilter &&
		(plan.strategy != StrategyObjectBased || plan.workers <= 1) {
		return e.certExistsFactors(ctx, plan, pred == PredicateForAll)
	}
	factors := make([]agg.Factor, 0, e.db.Len())
	for r, err := range e.stream(ctx, plan) {
		if err != nil {
			return nil, err
		}
		if pred == PredicateKTimes {
			factors = append(factors, agg.Factor{ID: r.ObjectID, Coeffs: r.Dist})
			continue
		}
		factors = append(factors, agg.Bernoulli(r.ObjectID, r.Prob))
	}
	return factors, nil
}

// certExistsFactors is the filter–refine factor loop for exists/forall
// on the exact strategies: the envelope bracket answers 0-certain
// exists-objects and 1-certain forall-objects in O(1) with the
// bit-exact zero certificate (see the file comment); the undecided
// middle is refined by the same exact evaluators the plain stream uses.
// The emitted probabilities are bit-identical to the unfiltered
// stream's either way, so the factor VALUES never depend on the filter
// toggle — only the work does.
func (e *Engine) certExistsFactors(ctx context.Context, plan *evalPlan, forAll bool) ([]agg.Factor, error) {
	factors := make([]agg.Factor, 0, e.db.Len())
	for _, grp := range e.db.groupByChain() {
		k, err := e.groupKernel(grp, plan, forAll)
		if err != nil {
			return nil, err
		}
		for _, o := range grp.objects {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			plan.filterRep.Candidates++
			// The kernel window is already complemented for forall, so
			// the certificate reads: P∃(window) is bit-exactly 0 —
			// meaning p = 0 for exists and p = 1 − 0 = 1 for forall.
			ub, ok, err := k.existsUpper(ctx, o)
			if err != nil {
				return nil, err
			}
			if ok && ub == 0 {
				plan.filterRep.Pruned++
				p := 0.0
				if forAll {
					p = 1
				}
				factors = append(factors, agg.Bernoulli(o.ID, p))
				continue
			}
			var r Result
			if plan.strategy == StrategyObjectBased {
				r, err = k.obExistsExact(ctx, o, forAll)
			} else {
				r, err = k.existsExact(ctx, o, forAll)
			}
			if err != nil {
				return nil, err
			}
			plan.filterRep.Refined++
			factors = append(factors, agg.Bernoulli(o.ID, r.Prob))
		}
	}
	return factors, nil
}

// occupancyRows computes, per object, the probability of being inside
// the spatial predicate at EACH timestamp of the window: one
// singleton-window backward sweep per (chain, timestamp, observation
// time) — shared across all objects through the score cache, the same
// kindExists entries a direct exists-request over that instant would
// use — then one dot product per object per timestamp.
func (e *Engine) occupancyRows(ctx context.Context, plan *evalPlan) (*FactorSet, error) {
	times := plan.query.Times
	rows := make([]agg.Factor, 0, e.db.Len())
	for _, grp := range e.db.groupByChain() {
		kerns := make([]*kern, len(times))
		for ti, t := range times {
			w, err := compile(NewQuery(plan.query.States, []int{t}), grp.chain.NumStates())
			if err != nil {
				return nil, err
			}
			kerns[ti] = e.kernel(grp.chain, w, plan)
		}
		for _, o := range grp.objects {
			coeffs := make([]float64, len(times))
			for ti := range times {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				var r Result
				var err error
				if plan.strategy == StrategyObjectBased {
					r, err = kerns[ti].obExistsExact(ctx, o, false)
				} else {
					r, err = kerns[ti].existsExact(ctx, o, false)
				}
				if err != nil {
					return nil, err
				}
				coeffs[ti] = r.Prob
			}
			rows = append(rows, agg.Factor{ID: o.ID, Coeffs: coeffs})
		}
	}
	return &FactorSet{Factors: rows, Times: times}, nil
}
