package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/agg"
	"ust/internal/markov"
)

// randomAggInstance builds a tiny random database with several objects
// on one chain plus a random query, sized for the world-enumeration
// oracle.
func randomAggInstance(rng *rand.Rand) (*Engine, Query) {
	n := 3 + rng.Intn(4)       // 3-6 states
	horizon := 2 + rng.Intn(4) // query horizon 2-5
	chain := randomChainN(rng, n, 2+rng.Intn(2))
	db := NewDatabase(chain)
	for id := 1; id <= 2+rng.Intn(3); id++ {
		spread := 1 + rng.Intn(2)
		states := rng.Perm(n)[:spread]
		weights := make([]float64, spread)
		for i := range weights {
			weights[i] = rng.Float64() + 0.1
		}
		pdf, err := markov.WeightedOver(n, states, weights)
		if err != nil {
			panic(err)
		}
		db.MustAdd(MustObject(id, nil, Observation{Time: 0, PDF: pdf}))
	}
	var qStates []int
	for s := 0; s < n; s++ {
		if rng.Float64() < 0.4 {
			qStates = append(qStates, s)
		}
	}
	if len(qStates) == 0 {
		qStates = []int{rng.Intn(n)}
	}
	var qTimes []int
	for t := 1; t <= horizon; t++ {
		if rng.Float64() < 0.5 {
			qTimes = append(qTimes, t)
		}
	}
	if len(qTimes) == 0 {
		qTimes = []int{horizon}
	}
	return NewEngine(db, Options{}), NewQuery(qStates, qTimes)
}

// TestAggCountMatchesBruteForceQuick pins the aggregate subsystem
// end-to-end against the world-enumeration oracle, for every exactly-
// evaluable predicate × strategy on randomized small instances.
func TestAggCountMatchesBruteForceQuick(t *testing.T) {
	preds := []Predicate{PredicateExists, PredicateForAll, PredicateKTimes}
	strats := []Strategy{StrategyQueryBased, StrategyObjectBased}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, q := randomAggInstance(rng)
		for _, pred := range preds {
			want, err := BruteForceCountPMF(e.db, pred, q, Expr{})
			if err != nil {
				return false
			}
			for _, s := range strats {
				resp, err := e.Evaluate(context.Background(), NewAggRequest(pred,
					AggSpec{Kind: AggCount, MinCount: 1},
					WithWindow(q), WithStrategy(s)))
				if err != nil {
					return false
				}
				a := resp.Agg
				if a == nil || a.Kind != AggCount || len(a.PMF) != len(want) {
					return false
				}
				for k := range want {
					if math.Abs(a.PMF[k]-want[k]) > 1e-9 {
						return false
					}
				}
				if math.Abs(a.Tail-agg.TailGE(want, 1)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAggExprMatchesBruteForce pins compound-expression aggregates
// against the oracle on both exact strategies.
func TestAggExprMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		e, q := randomAggInstance(rng)
		n := e.db.DefaultChain().NumStates()
		x := Or(
			ExistsAtom(WithWindow(q)),
			And(
				ExistsAtom(WithWindow(NewQuery([]int{rng.Intn(n)}, []int{1}))),
				Not(ForAllAtom(WithWindow(q))),
			),
		)
		want, err := BruteForceCountPMF(e.db, PredicateExpr, Query{}, x)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		for _, s := range []Strategy{StrategyQueryBased, StrategyObjectBased} {
			resp, err := e.Evaluate(context.Background(), NewAggRequest(PredicateExpr,
				AggSpec{Kind: AggCount}, WithExpr(x), WithStrategy(s)))
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, s, err)
			}
			if len(resp.Agg.PMF) != len(want) {
				t.Fatalf("trial %d %v: PMF length %d, oracle %d", trial, s, len(resp.Agg.PMF), len(want))
			}
			for k := range want {
				if math.Abs(resp.Agg.PMF[k]-want[k]) > 1e-9 {
					t.Fatalf("trial %d %v: PMF[%d] = %g, oracle %g", trial, s, k, resp.Agg.PMF[k], want[k])
				}
			}
		}
	}
}

// TestAggPMFPropertiesQuick: the PMF is a distribution whose mean is
// Σpᵢ over the per-object stream and whose variance is Σpᵢ(1−pᵢ).
func TestAggPMFPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, q := randomAggInstance(rng)
		var sumP, sumVar float64
		for r, err := range e.EvaluateSeq(context.Background(), NewRequest(PredicateExists, WithWindow(q))) {
			if err != nil {
				return false
			}
			sumP += r.Prob
			sumVar += r.Prob * (1 - r.Prob)
		}
		resp, err := e.Evaluate(context.Background(), NewAggRequest(PredicateExists,
			AggSpec{Kind: AggCount}, WithWindow(q)))
		if err != nil {
			return false
		}
		a := resp.Agg
		mass := 0.0
		for _, p := range a.PMF {
			if p < -1e-15 || p > 1+1e-12 {
				return false
			}
			mass += p
		}
		if math.Abs(mass-1) > 1e-10 {
			return false
		}
		cdf := a.CDF()
		if math.Abs(cdf[len(cdf)-1]-mass) > 1e-12 {
			return false
		}
		if a.ModeCount < 0 || a.ModeCount >= len(a.PMF) {
			return false
		}
		return math.Abs(a.Mean-sumP) < 1e-9 && math.Abs(a.Variance-sumVar) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExpectedCountAggPin: the rerouted ExpectedCount must reproduce
// the legacy accumulation — a plain sum of per-object stream
// probabilities in emission order — bit for bit.
func TestExpectedCountAggPin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, q := randomAggInstance(rng)
		legacy := 0.0
		for r, err := range e.EvaluateSeq(context.Background(), NewRequest(PredicateExists, WithWindow(q))) {
			if err != nil {
				return false
			}
			legacy += r.Prob
		}
		got, err := e.ExpectedCount(q)
		if err != nil {
			return false
		}
		return got == legacy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}

	// And the documented consistency: ExpectedCount equals the PMF mean
	// to float tolerance.
	db := NewDatabase(paperChainV(t))
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(MustObject(2, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 2)}))
	e := NewEngine(db, Options{})
	want, err := e.ExpectedCount(paperQueryV())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Evaluate(context.Background(), NewAggRequest(PredicateExists,
		AggSpec{Kind: AggCount}, WithWindow(paperQueryV())))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Agg.Mean-want) > 1e-12 {
		t.Fatalf("PMF mean %g, ExpectedCount %g", resp.Agg.Mean, want)
	}
}

// disconnectedPairDB builds a chain with two disconnected 2-cycles
// ({0,1} and {2,3}) and one object in each component — the canonical
// setup where the reachability envelope certifies objects exactly.
func disconnectedPairDB(t *testing.T) *Database {
	t.Helper()
	chain, err := markov.FromDense([][]float64{
		{0, 1, 0, 0},
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(chain)
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(4, 0)}))
	db.MustAdd(MustObject(2, nil, Observation{Time: 0, PDF: markov.PointDistribution(4, 2)}))
	return db
}

// TestAggCertificatesPruneAndStayExact: envelope certificates answer
// certain objects in O(1) — visible in the filter report — without
// changing a single PMF bit relative to the filter-disabled evaluation.
func TestAggCertificatesPruneAndStayExact(t *testing.T) {
	e := NewEngine(disconnectedPairDB(t), Options{})
	ctx := context.Background()

	// Exists over {2,3}: object 1 is certified impossible (p = 0).
	q := NewQuery([]int{2, 3}, []int{1, 2})
	on, err := e.Evaluate(ctx, NewAggRequest(PredicateExists, AggSpec{Kind: AggCount}, WithWindow(q)))
	if err != nil {
		t.Fatal(err)
	}
	off, err := e.Evaluate(ctx, NewAggRequest(PredicateExists, AggSpec{Kind: AggCount},
		WithWindow(q), WithFilterRefine(false)))
	if err != nil {
		t.Fatal(err)
	}
	if on.Filter.Pruned == 0 {
		t.Errorf("expected certificate pruning, filter report %+v", on.Filter)
	}
	if off.Filter.Pruned != 0 || off.Filter.Candidates != 0 {
		t.Errorf("filter engaged while disabled: %+v", off.Filter)
	}
	for k := range on.Agg.PMF {
		if on.Agg.PMF[k] != off.Agg.PMF[k] {
			t.Fatalf("PMF[%d] differs bitwise with filter toggle: %v vs %v", k, on.Agg.PMF[k], off.Agg.PMF[k])
		}
	}
	// Object 2 reaches state 2 at t=2 with certainty, object 1 never:
	// count is exactly 1.
	if want := []float64{0, 1, 0}; len(on.Agg.PMF) != 3 || on.Agg.PMF[0] != want[0] ||
		on.Agg.PMF[1] != want[1] || on.Agg.PMF[2] != want[2] {
		t.Fatalf("PMF %v, want %v", on.Agg.PMF, want)
	}

	// ForAll over {2,3}: object 2 never leaves its component, so the
	// complement envelope certifies p = 1 exactly; object 1 certifies
	// p = 0 — wait, for-all of an object outside the region is 0 but
	// that is NOT a complement-envelope certificate; it refines.
	fa, err := e.Evaluate(ctx, NewAggRequest(PredicateForAll, AggSpec{Kind: AggCount}, WithWindow(q)))
	if err != nil {
		t.Fatal(err)
	}
	faOff, err := e.Evaluate(ctx, NewAggRequest(PredicateForAll, AggSpec{Kind: AggCount},
		WithWindow(q), WithFilterRefine(false)))
	if err != nil {
		t.Fatal(err)
	}
	if fa.Filter.Pruned == 0 {
		t.Errorf("expected for-all certificate pruning, filter report %+v", fa.Filter)
	}
	for k := range fa.Agg.PMF {
		if fa.Agg.PMF[k] != faOff.Agg.PMF[k] {
			t.Fatalf("for-all PMF[%d] differs bitwise with filter toggle", k)
		}
	}
	if fa.Agg.PMF[1] != 1 {
		t.Fatalf("for-all PMF %v, want point mass at 1", fa.Agg.PMF)
	}
}

// TestAggTopologyInvariance: parallelism and strategy toggles must not
// move a bit (exact strategies) or a tolerance (QB vs OB).
func TestAggTopologyInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ctx := context.Background()
	for trial := 0; trial < 15; trial++ {
		e, q := randomAggInstance(rng)
		pmf := func(opts ...RequestOption) []float64 {
			t.Helper()
			resp, err := e.Evaluate(ctx, NewAggRequest(PredicateExists,
				AggSpec{Kind: AggCount}, append([]RequestOption{WithWindow(q)}, opts...)...))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return resp.Agg.PMF
		}
		qb := pmf(WithStrategy(StrategyQueryBased))
		qbPar := pmf(WithStrategy(StrategyQueryBased), WithParallelism(4))
		ob := pmf(WithStrategy(StrategyObjectBased))
		obPar := pmf(WithStrategy(StrategyObjectBased), WithParallelism(4))
		for k := range qb {
			if qb[k] != qbPar[k] || ob[k] != obPar[k] {
				t.Fatalf("trial %d: parallelism moved PMF[%d]", trial, k)
			}
			if math.Abs(qb[k]-ob[k]) > 1e-9 {
				t.Fatalf("trial %d: QB %g vs OB %g at %d", trial, qb[k], ob[k], k)
			}
		}
	}
}

// TestAggMonteCarlo: the MC aggregate rides the plain MC stream — the
// factor probabilities are the stream's, bit for bit — and with a large
// budget the PMF mean approaches the exact answer.
func TestAggMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, q := randomAggInstance(rng)
	ctx := context.Background()

	var factors []agg.Factor
	for r, err := range e.EvaluateSeq(ctx, NewRequest(PredicateExists, WithWindow(q),
		WithStrategy(StrategyMonteCarlo), WithMonteCarloBudget(4000, 99))) {
		if err != nil {
			t.Fatal(err)
		}
		factors = append(factors, agg.Bernoulli(r.ObjectID, r.Prob))
	}
	want, err := agg.CountPMF(factors)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Evaluate(ctx, NewAggRequest(PredicateExists, AggSpec{Kind: AggCount},
		WithWindow(q), WithStrategy(StrategyMonteCarlo), WithMonteCarloBudget(4000, 99)))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Agg.PMF) != len(want) {
		t.Fatalf("PMF length %d, want %d", len(resp.Agg.PMF), len(want))
	}
	for k := range want {
		if resp.Agg.PMF[k] != want[k] {
			t.Fatalf("MC aggregate drifts from MC stream at %d: %v vs %v", k, resp.Agg.PMF[k], want[k])
		}
	}

	exact, err := e.Evaluate(ctx, NewAggRequest(PredicateExists, AggSpec{Kind: AggCount}, WithWindow(q)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Agg.Mean-exact.Agg.Mean) > 0.15 {
		t.Errorf("MC mean %g too far from exact %g", resp.Agg.Mean, exact.Agg.Mean)
	}
}

// TestAggOccupancy: the profile's per-timestep moments equal the
// singleton-window exists answers, and the iceberg tail matches the
// per-timestep Poisson binomial.
func TestAggOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		e, q := randomAggInstance(rng)
		resp, err := e.Evaluate(ctx, NewAggRequest(PredicateExists,
			AggSpec{Kind: AggOccupancy, MinCount: 1}, WithWindow(q)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prof := resp.Agg.Profile
		if len(prof) != len(q.Times) {
			t.Fatalf("trial %d: %d profile points for %d timesteps", trial, len(prof), len(q.Times))
		}
		for ti, tt := range sortedSet(q.Times) {
			if prof[ti].Time != tt {
				t.Fatalf("trial %d: point %d at time %d, want %d", trial, ti, prof[ti].Time, tt)
			}
			single, err := e.Evaluate(ctx, NewRequest(PredicateExists,
				WithWindow(NewQuery(q.States, []int{tt}))))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			var factors []agg.Factor
			var mean, variance float64
			for _, r := range single.Results {
				mean += r.Prob
				variance += r.Prob * (1 - r.Prob)
				factors = append(factors, agg.Bernoulli(r.ObjectID, r.Prob))
			}
			if math.Abs(prof[ti].Mean-mean) > 1e-12 || math.Abs(prof[ti].Variance-variance) > 1e-12 {
				t.Fatalf("trial %d t=%d: profile (%g, %g), direct (%g, %g)",
					trial, tt, prof[ti].Mean, prof[ti].Variance, mean, variance)
			}
			pmf, err := agg.CountPMF(factors)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(prof[ti].Tail-agg.TailGE(pmf, 1)) > 1e-12 {
				t.Fatalf("trial %d t=%d: tail %g, want %g", trial, tt, prof[ti].Tail, agg.TailGE(pmf, 1))
			}
		}
	}
}

// TestAggBatchAndEventually: aggregates ride the batch path next to
// plain requests, and the eventually predicate aggregates through the
// generic factor route.
func TestAggBatchAndEventually(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	e, q := randomAggInstance(rng)
	ctx := context.Background()
	resps, err := e.EvaluateBatch(ctx, []Request{
		NewAggRequest(PredicateExists, AggSpec{Kind: AggCount}, WithWindow(q)),
		NewRequest(PredicateExists, WithWindow(q)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Agg == nil || len(resps[0].Results) != 0 {
		t.Fatalf("batch aggregate response: %+v", resps[0])
	}
	if resps[1].Agg != nil || len(resps[1].Results) == 0 {
		t.Fatalf("batch plain response: %+v", resps[1])
	}
	single, err := e.Evaluate(ctx, NewAggRequest(PredicateExists, AggSpec{Kind: AggCount}, WithWindow(q)))
	if err != nil {
		t.Fatal(err)
	}
	for k := range single.Agg.PMF {
		if resps[0].Agg.PMF[k] != single.Agg.PMF[k] {
			t.Fatalf("batch aggregate differs from single at %d", k)
		}
	}

	ev, err := e.Evaluate(ctx, NewAggRequest(PredicateEventually, AggSpec{Kind: AggCount},
		WithWindow(NewQuery(q.States, nil))))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for r, err := range e.EvaluateSeq(ctx, NewRequest(PredicateEventually, WithWindow(NewQuery(q.States, nil)))) {
		if err != nil {
			t.Fatal(err)
		}
		sum += r.Prob
	}
	if math.Abs(ev.Agg.Mean-sum) > 1e-9 {
		t.Fatalf("eventually aggregate mean %g, stream sum %g", ev.Agg.Mean, sum)
	}
}

// TestAggRequestErrors: invalid combinations fail loudly, and the
// streaming surface refuses aggregates with the shared sentinel.
func TestAggRequestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	e, q := randomAggInstance(rng)
	ctx := context.Background()

	for r, err := range e.EvaluateSeq(ctx, NewAggRequest(PredicateExists, AggSpec{Kind: AggCount}, WithWindow(q))) {
		if !errors.Is(err, ErrAggregateStream) {
			t.Fatalf("EvaluateSeq yielded (%+v, %v), want ErrAggregateStream", r, err)
		}
	}

	bad := []Request{
		NewAggRequest(PredicateExists, AggSpec{Kind: AggCount}, WithWindow(q), WithTopK(2)),
		NewAggRequest(PredicateExists, AggSpec{Kind: AggCount}, WithWindow(q), WithThreshold(0.5)),
		NewAggRequest(PredicateExists, AggSpec{Kind: AggCount, MinCount: -1}, WithWindow(q)),
		NewAggRequest(PredicateExists, AggSpec{Kind: AggKind(99)}, WithWindow(q)),
		NewAggRequest(PredicateKTimes, AggSpec{Kind: AggOccupancy}, WithWindow(q)),
		NewAggRequest(PredicateExists, AggSpec{Kind: AggOccupancy}, WithWindow(q), WithStrategy(StrategyMonteCarlo)),
	}
	for i, req := range bad {
		if _, err := e.Evaluate(ctx, req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}
