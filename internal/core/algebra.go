package core

import (
	"fmt"
	"strings"

	"ust/internal/spatial"
)

// The composable predicate algebra. An Expr is a boolean combination of
// spatio-temporal atoms — each atom a PST∃Q or PST∀Q with its OWN
// window/region — asked of one object's single trajectory distribution:
//
//	P( exists(A, [5,10]) AND NOT forall(B, [20,30]) )
//
// The critical point is that the atoms are correlated through the shared
// trajectory: P(A ∧ B) is NOT P(A)·P(B), so clients combining per-atom
// answers from separate requests get wrong numbers. The engine evaluates
// compound expressions exactly by flag-bit state-space augmentation
// (plan.go): the chain's state space is crossed with {0,1}^m, bit i
// recording whether atom i has "fired" along the trajectory so far, and
// one augmented sweep answers the whole expression — the same
// state-space-blowup technique the paper uses for the PSTkQ count
// (ktimes_augmented.go), with visit counts replaced by an atom bitmask.
//
// Build expressions with ExistsAtom/ForAllAtom and combine with And, Or,
// Not and Then; evaluate them through the regular Request/Evaluate
// surface via NewExprRequest (ranking, strategies, caching and
// filter–refine pruning all apply).

// ExprOp identifies the node kind of an Expr.
type ExprOp int

const (
	// ExprLeaf is an atom: one predicate with its own window.
	ExprLeaf ExprOp = iota
	// ExprAnd requires every operand.
	ExprAnd
	// ExprOr requires at least one operand.
	ExprOr
	// ExprNot negates its single operand.
	ExprNot
	// ExprThen is sequencing: like ExprAnd, but each operand's time
	// window must end strictly before the next operand's begins.
	ExprThen
)

func (op ExprOp) String() string {
	switch op {
	case ExprLeaf:
		return "atom"
	case ExprAnd:
		return "and"
	case ExprOr:
		return "or"
	case ExprNot:
		return "not"
	case ExprThen:
		return "then"
	default:
		return fmt.Sprintf("ExprOp(%d)", int(op))
	}
}

// ExprAtom is the leaf payload of an Expr: one of the two boolean
// predicates over its own spatio-temporal window. (PSTkQ and
// eventually-queries are not boolean and cannot appear inside a compound
// expression; ask them as plain Requests.)
type ExprAtom struct {
	// ForAll selects PST∀Q semantics; false means PST∃Q.
	ForAll bool
	// States is the spatial predicate as raw state identifiers.
	States []int
	// Times is the temporal predicate as absolute timestamps.
	Times []int
	// Region is an optional geometric spatial predicate, resolved
	// through Resolver at evaluation time and unioned with States.
	Region spatial.Region
	// Resolver grounds Region; the serving layer attaches its dataset's
	// resolver to wire-decoded atoms.
	Resolver spatial.Resolver
}

// Expr is a node of the predicate algebra. The zero value is an empty
// exists-atom (constant false over any non-empty horizon). Expr values
// are immutable once built — combinators copy their operand slices, so
// sub-expressions can be shared and reused freely.
type Expr struct {
	op   ExprOp
	atom ExprAtom
	kids []Expr
}

// MaxExprAtoms bounds the number of atoms in one expression: the
// augmented evaluation crosses the state space with one flag bit per
// atom, so cost grows with 2^atoms.
const MaxExprAtoms = 8

// NewAtom wraps an ExprAtom as an expression leaf, normalizing the
// window (states/times copied, sorted, deduped).
func NewAtom(a ExprAtom) Expr {
	a.States = sortedSet(a.States)
	a.Times = sortedSet(a.Times)
	return Expr{op: ExprLeaf, atom: a}
}

// atomFromOptions extracts the window fields set by With… options.
func atomFromOptions(forAll bool, opts []RequestOption) Expr {
	var r Request
	for _, opt := range opts {
		opt(&r)
	}
	return NewAtom(ExprAtom{
		ForAll:   forAll,
		States:   r.States,
		Times:    r.Times,
		Region:   r.Region,
		Resolver: r.Resolver,
	})
}

// ExistsAtom is a PST∃Q leaf: true for a trajectory that is inside the
// window's region at SOME window timestamp. Only the window options
// (WithStates, WithTimes, WithTimeRange, WithWindow, WithRegion) are
// meaningful; execution hints belong on the enclosing Request.
func ExistsAtom(opts ...RequestOption) Expr { return atomFromOptions(false, opts) }

// ForAllAtom is a PST∀Q leaf: true for a trajectory inside the window's
// region at EVERY window timestamp (vacuously true when no window
// timestamp lies on the trajectory).
func ForAllAtom(opts ...RequestOption) Expr { return atomFromOptions(true, opts) }

// And is the conjunction of its operands.
func And(operands ...Expr) Expr { return Expr{op: ExprAnd, kids: copyExprs(operands)} }

// Or is the disjunction of its operands.
func Or(operands ...Expr) Expr { return Expr{op: ExprOr, kids: copyExprs(operands)} }

// Not negates an expression.
func Not(operand Expr) Expr { return Expr{op: ExprNot, kids: []Expr{operand}} }

// Then is temporal sequencing: every operand must hold AND each
// operand's time window must end strictly before the next one's begins
// ("reaches A during [5,10], then B during [20,30]"). The ordering is
// validated when the request is evaluated.
func Then(operands ...Expr) Expr { return Expr{op: ExprThen, kids: copyExprs(operands)} }

func copyExprs(in []Expr) []Expr {
	if len(in) == 0 {
		return nil
	}
	return append([]Expr(nil), in...)
}

// Op returns the node kind.
func (x Expr) Op() ExprOp { return x.op }

// Operands returns a copy of the node's children (empty for atoms).
func (x Expr) Operands() []Expr { return copyExprs(x.kids) }

// Atom returns the leaf payload; ok is false for combinator nodes.
func (x Expr) Atom() (a ExprAtom, ok bool) {
	if x.op != ExprLeaf {
		return ExprAtom{}, false
	}
	return x.atom, true
}

// walkAtoms visits every leaf in deterministic (left-to-right) order.
func (x Expr) walkAtoms(fn func(a *ExprAtom)) {
	if x.op == ExprLeaf {
		fn(&x.atom)
		return
	}
	for i := range x.kids {
		x.kids[i].walkAtoms(fn)
	}
}

// countAtoms returns the number of leaves.
func (x Expr) countAtoms() int {
	n := 0
	x.walkAtoms(func(*ExprAtom) { n++ })
	return n
}

// needsResolver reports whether some atom carries a region without a
// resolver to ground it.
func (x Expr) needsResolver() bool {
	missing := false
	x.walkAtoms(func(a *ExprAtom) {
		if a.Region != nil && a.Resolver == nil {
			missing = true
		}
	})
	return missing
}

// attachResolver returns a deep copy of the expression with res filled
// in on every region-carrying atom that lacks a resolver.
func (x Expr) attachResolver(res spatial.Resolver) Expr {
	if x.op == ExprLeaf {
		if x.atom.Region != nil && x.atom.Resolver == nil {
			x.atom.Resolver = res
		}
		return x
	}
	kids := make([]Expr, len(x.kids))
	for i := range x.kids {
		kids[i] = x.kids[i].attachResolver(res)
	}
	x.kids = kids
	return x
}

// resolved returns a copy of the expression with every atom's region
// resolved into raw state ids (unioned with the atom's explicit states)
// and the region dropped — the form the compiler consumes.
func (x Expr) resolved() (Expr, error) {
	if x.op == ExprLeaf {
		if x.atom.Region == nil {
			return x, nil
		}
		if x.atom.Resolver == nil {
			return Expr{}, fmt.Errorf("core: expression atom has a region but no resolver (use WithRegion)")
		}
		merged := append(append([]int(nil), x.atom.States...), x.atom.Resolver.StatesIn(x.atom.Region)...)
		x.atom.States = sortedSet(merged)
		x.atom.Region, x.atom.Resolver = nil, nil
		return x, nil
	}
	kids := make([]Expr, len(x.kids))
	for i := range x.kids {
		k, err := x.kids[i].resolved()
		if err != nil {
			return Expr{}, err
		}
		kids[i] = k
	}
	x.kids = kids
	return x, nil
}

// timeSpan returns the [min, max] timestamp over every atom of the
// subtree; ok is false when no atom has any timestamp.
func (x Expr) timeSpan() (lo, hi int, ok bool) {
	x.walkAtoms(func(a *ExprAtom) {
		if len(a.Times) == 0 {
			return
		}
		if !ok || a.Times[0] < lo {
			lo = a.Times[0]
		}
		if !ok || a.Times[len(a.Times)-1] > hi {
			hi = a.Times[len(a.Times)-1]
		}
		ok = true
	})
	return lo, hi, ok
}

// validate checks structural well-formedness: combinator arity, the atom
// budget and Then's window ordering.
func (x Expr) validate() error {
	if n := x.countAtoms(); n == 0 {
		return fmt.Errorf("core: expression has no atoms")
	} else if n > MaxExprAtoms {
		return fmt.Errorf("core: expression has %d atoms, more than the limit of %d (augmented evaluation cost doubles per atom)", n, MaxExprAtoms)
	}
	return x.validateNode()
}

func (x Expr) validateNode() error {
	switch x.op {
	case ExprLeaf:
		return nil
	case ExprNot:
		if len(x.kids) != 1 {
			return fmt.Errorf("core: not takes exactly one operand, got %d", len(x.kids))
		}
	case ExprAnd, ExprOr, ExprThen:
		if len(x.kids) == 0 {
			return fmt.Errorf("core: %s needs at least one operand", x.op)
		}
	default:
		return fmt.Errorf("core: unknown expression op %v", x.op)
	}
	if x.op == ExprThen {
		for i := 0; i+1 < len(x.kids); i++ {
			_, leftHi, leftOK := x.kids[i].timeSpan()
			rightLo, _, rightOK := x.kids[i+1].timeSpan()
			if leftOK && rightOK && leftHi >= rightLo {
				return fmt.Errorf("core: then-sequence out of order: left window ends at t=%d, right begins at t=%d (must be strictly after)", leftHi, rightLo)
			}
		}
	}
	for i := range x.kids {
		if err := x.kids[i].validateNode(); err != nil {
			return err
		}
	}
	return nil
}

// String renders the expression in the text query language of package
// ust/query ("exists(states(1,2) @ [5,15]) and not forall(…)"). Regions
// outside the rect/circle vocabulary render as region(?); use the wire
// codec for a lossless encoding.
func (x Expr) String() string {
	var b strings.Builder
	x.format(&b, 0)
	return b.String()
}

// precedence: or < and < then < not/atom. A child at strictly lower
// precedence than its parent needs parentheses.
func (x Expr) precedence() int {
	switch x.op {
	case ExprOr:
		return 1
	case ExprAnd:
		return 2
	case ExprThen:
		return 3
	default:
		return 4
	}
}

func (x Expr) format(b *strings.Builder, parentPrec int) {
	prec := x.precedence()
	paren := prec < parentPrec
	if paren {
		b.WriteByte('(')
	}
	switch x.op {
	case ExprLeaf:
		x.atom.format(b)
	case ExprNot:
		b.WriteString("not ")
		x.kids[0].format(b, 4)
	default:
		for i := range x.kids {
			if i > 0 {
				b.WriteByte(' ')
				b.WriteString(x.op.String())
				b.WriteByte(' ')
			}
			x.kids[i].format(b, prec)
		}
	}
	if paren {
		b.WriteByte(')')
	}
}

func (a ExprAtom) format(b *strings.Builder) {
	if a.ForAll {
		b.WriteString("forall(")
	} else {
		b.WriteString("exists(")
	}
	switch {
	case a.Region != nil && len(a.States) > 0:
		formatRegion(b, a.Region)
		b.WriteByte('+')
		formatStates(b, a.States)
	case a.Region != nil:
		formatRegion(b, a.Region)
	default:
		formatStates(b, a.States)
	}
	b.WriteString(" @ ")
	formatTimes(b, a.Times)
	b.WriteByte(')')
}

func formatRegion(b *strings.Builder, r spatial.Region) {
	switch v := r.(type) {
	case spatial.Rect:
		fmt.Fprintf(b, "region(%g,%g,%g,%g)", v.MinX, v.MinY, v.MaxX, v.MaxY)
	case spatial.Circle:
		fmt.Fprintf(b, "circle(%g,%g,%g)", v.Center.X, v.Center.Y, v.Radius)
	default:
		b.WriteString("region(?)")
	}
}

// formatStates renders a sorted id set with contiguous runs collapsed to
// lo-hi ranges — the canonical form package ust/query parses back.
func formatStates(b *strings.Builder, ids []int) {
	b.WriteString("states(")
	formatIntSet(b, ids)
	b.WriteByte(')')
}

func formatTimes(b *strings.Builder, times []int) {
	if n := len(times); n > 1 && times[n-1]-times[0] == n-1 {
		fmt.Fprintf(b, "[%d,%d]", times[0], times[n-1])
		return
	}
	b.WriteByte('{')
	formatIntSet(b, times)
	b.WriteByte('}')
}

func formatIntSet(b *strings.Builder, ids []int) {
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case j == i:
			fmt.Fprintf(b, "%d", ids[i])
		case j == i+1:
			fmt.Fprintf(b, "%d,%d", ids[i], ids[j])
		default:
			fmt.Fprintf(b, "%d-%d", ids[i], ids[j])
		}
		i = j + 1
	}
}
