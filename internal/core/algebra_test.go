package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ust/internal/markov"
)

// Property tests for the compound-expression algebra: the augmented
// evaluations (query-based family sweep, object-based forward pass)
// must agree with brute-force possible-worlds enumeration on random
// tiny instances covering every combinator, including Then sequencing
// and nested Not.

// randomAtomWindow draws a random window inside [0, horizon].
func randomAtomWindow(rng *rand.Rand, n, horizon int) (states, times []int) {
	for s := 0; s < n; s++ {
		if rng.Float64() < 0.4 {
			states = append(states, s)
		}
	}
	if len(states) == 0 && rng.Float64() < 0.8 {
		states = []int{rng.Intn(n)}
	}
	for t := 0; t <= horizon; t++ {
		if rng.Float64() < 0.4 {
			times = append(times, t)
		}
	}
	if len(times) == 0 && rng.Float64() < 0.8 {
		times = []int{rng.Intn(horizon + 1)}
	}
	return states, times
}

// randomExpr draws a random expression with at most maxAtoms atoms.
func randomExpr(rng *rand.Rand, n, horizon, maxAtoms int, depth int) Expr {
	if maxAtoms <= 1 || depth > 2 || rng.Float64() < 0.35 {
		states, times := randomAtomWindow(rng, n, horizon)
		if rng.Float64() < 0.5 {
			return ForAllAtom(WithStates(states), WithTimes(times))
		}
		return ExistsAtom(WithStates(states), WithTimes(times))
	}
	switch rng.Intn(4) {
	case 0:
		return Not(randomExpr(rng, n, horizon, maxAtoms, depth+1))
	case 1:
		k := 2 + rng.Intn(2)
		kids := make([]Expr, k)
		budget := maxAtoms / k
		if budget < 1 {
			budget = 1
		}
		for i := range kids {
			kids[i] = randomExpr(rng, n, horizon, budget, depth+1)
		}
		return And(kids...)
	case 2:
		k := 2 + rng.Intn(2)
		kids := make([]Expr, k)
		budget := maxAtoms / k
		if budget < 1 {
			budget = 1
		}
		for i := range kids {
			kids[i] = randomExpr(rng, n, horizon, budget, depth+1)
		}
		return Or(kids...)
	default:
		// Then: split the horizon so the ordering constraint holds.
		mid := horizon / 2
		aStates, _ := randomAtomWindow(rng, n, horizon)
		bStates, _ := randomAtomWindow(rng, n, horizon)
		a := ExistsAtom(WithStates(aStates), WithTimes([]int{rng.Intn(mid + 1)}))
		b := ForAllAtom(WithStates(bStates), WithTimes([]int{mid + 1 + rng.Intn(horizon-mid)}))
		return Then(a, b)
	}
}

func TestExprMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(4)
		horizon := 2 + rng.Intn(5)
		chain := randomChainN(rng, n, 2+rng.Intn(2))
		db := NewDatabase(chain)
		spread := 1 + rng.Intn(2)
		pdf, err := markov.WeightedOver(n, rng.Perm(n)[:spread], []float64{0.7, 0.3}[:spread])
		if err != nil {
			t.Fatal(err)
		}
		t0 := rng.Intn(2)
		db.MustAdd(MustObject(1, nil, Observation{Time: t0, PDF: pdf}))
		engine := NewEngine(db, Options{})

		x := randomExpr(rng, n, horizon, 4, 0)
		want, err := BruteForceExpr(chain, db.Get(1), x)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		for _, strat := range []Strategy{StrategyQueryBased, StrategyObjectBased} {
			resp, err := engine.Evaluate(ctx, NewExprRequest(x, WithStrategy(strat)))
			if err != nil {
				t.Fatalf("trial %d (%v): %v\nexpr: %s", trial, strat, err, x)
			}
			if len(resp.Results) != 1 {
				t.Fatalf("trial %d (%v): got %d results", trial, strat, len(resp.Results))
			}
			got := resp.Results[0].Prob
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d (%v): got %.12f, brute force %.12f\nexpr: %s",
					trial, strat, got, want, x)
			}
		}
	}
}

// TestExprCombinatorsExplicit pins each combinator on the paper's
// running example chain, including nested Not and Then.
func TestExprCombinatorsExplicit(t *testing.T) {
	chain, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(chain)
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 2)}))
	engine := NewEngine(db, Options{})
	ctx := context.Background()
	o := db.Get(1)

	a := ExistsAtom(WithStates([]int{0}), WithTimes([]int{2, 3}))
	b := ForAllAtom(WithStates([]int{1, 2}), WithTimes([]int{1, 2}))
	c := ExistsAtom(WithStates([]int{1}), WithTimes([]int{5, 6}))

	exprs := []Expr{
		a,
		b,
		And(a, b),
		Or(a, b),
		Not(a),
		Not(Not(And(a, Not(b)))),
		Then(a, c),
		Or(And(a, b), Not(c)),
	}
	for i, x := range exprs {
		want, err := BruteForceExpr(chain, o, x)
		if err != nil {
			t.Fatalf("expr %d: %v", i, err)
		}
		for _, strat := range []Strategy{StrategyQueryBased, StrategyObjectBased} {
			resp, err := engine.Evaluate(ctx, NewExprRequest(x, WithStrategy(strat)))
			if err != nil {
				t.Fatalf("expr %d (%v): %v", i, strat, err)
			}
			if got := resp.Results[0].Prob; math.Abs(got-want) > 1e-12 {
				t.Errorf("expr %d (%v): got %.15f want %.15f (%s)", i, strat, got, want, x)
			}
		}
	}

	// Single atoms agree with the atomic predicates they wrap.
	existsResp, err := engine.Evaluate(ctx, NewRequest(PredicateExists,
		WithStates([]int{0}), WithTimes([]int{2, 3})))
	if err != nil {
		t.Fatal(err)
	}
	atomResp, err := engine.Evaluate(ctx, NewExprRequest(a))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := atomResp.Results[0].Prob, existsResp.Results[0].Prob; math.Abs(got-want) > 1e-12 {
		t.Errorf("exists atom %.15f != PredicateExists %.15f", got, want)
	}
}

// TestExprCorrelation demonstrates the point of the algebra: atoms on
// one trajectory are correlated, so P(A and not A) must be exactly 0
// even though P(A)·P(not A) is not.
func TestExprCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	chain := randomChainN(rng, 5, 3)
	db := NewDatabase(chain)
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.UniformOver(5, []int{0, 1})}))
	engine := NewEngine(db, Options{})

	a := ExistsAtom(WithStates([]int{2, 3}), WithTimeRange(1, 4))
	resp, err := engine.Evaluate(context.Background(), NewExprRequest(And(a, Not(a))))
	if err != nil {
		t.Fatal(err)
	}
	if p := resp.Results[0].Prob; p != 0 {
		t.Fatalf("P(A and not A) = %g, want exactly 0", p)
	}
	resp, err = engine.Evaluate(context.Background(), NewExprRequest(Or(a, Not(a))))
	if err != nil {
		t.Fatal(err)
	}
	if p := resp.Results[0].Prob; math.Abs(p-1) > 1e-12 {
		t.Fatalf("P(A or not A) = %g, want 1", p)
	}
}

func TestExprThenValidation(t *testing.T) {
	a := ExistsAtom(WithStates([]int{0}), WithTimeRange(5, 10))
	b := ExistsAtom(WithStates([]int{1}), WithTimeRange(8, 12))
	c := ExistsAtom(WithStates([]int{1}), WithTimeRange(11, 12))

	if err := Then(a, b).validate(); err == nil {
		t.Fatal("overlapping then-sequence validated")
	} else if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := Then(a, c).validate(); err != nil {
		t.Fatalf("ordered then-sequence rejected: %v", err)
	}
	if err := And().validate(); err == nil {
		t.Fatal("empty and validated")
	}
	// Atom budget.
	atoms := make([]Expr, MaxExprAtoms+1)
	for i := range atoms {
		atoms[i] = ExistsAtom(WithStates([]int{0}), WithTimes([]int{i}))
	}
	if err := And(atoms...).validate(); err == nil {
		t.Fatal("oversized expression validated")
	}
}

// TestExprRanking pins the filter–refine path: threshold and top-k
// compound requests must return byte-identical results to the
// unfiltered evaluation, for both exact strategies.
func TestExprRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	chain := randomChainN(rng, 12, 3)
	db := NewDatabase(chain)
	for id := 1; id <= 40; id++ {
		s := rng.Intn(12)
		db.MustAdd(MustObject(id, nil, Observation{Time: 0, PDF: markov.PointDistribution(12, s)}))
	}
	engine := NewEngine(db, Options{})
	ctx := context.Background()

	x := And(
		ExistsAtom(WithStates([]int{2, 3, 4}), WithTimeRange(2, 6)),
		Not(ForAllAtom(WithStates([]int{0, 1, 2, 3, 4, 5, 6, 7}), WithTimeRange(1, 3))),
	)
	for _, strat := range []Strategy{StrategyQueryBased, StrategyObjectBased} {
		plain, err := engine.Evaluate(ctx, NewExprRequest(x, WithStrategy(strat), WithThreshold(0.25), WithFilterRefine(false)))
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := engine.Evaluate(ctx, NewExprRequest(x, WithStrategy(strat), WithThreshold(0.25)))
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Results) != len(filtered.Results) {
			t.Fatalf("%v: threshold filtered %d results, unfiltered %d", strat, len(filtered.Results), len(plain.Results))
		}
		for i := range plain.Results {
			if plain.Results[i].ObjectID != filtered.Results[i].ObjectID || plain.Results[i].Prob != filtered.Results[i].Prob {
				t.Fatalf("%v: threshold result %d differs: %+v vs %+v", strat, i, plain.Results[i], filtered.Results[i])
			}
		}

		plainK, err := engine.Evaluate(ctx, NewExprRequest(x, WithStrategy(strat), WithTopK(5), WithFilterRefine(false)))
		if err != nil {
			t.Fatal(err)
		}
		filteredK, err := engine.Evaluate(ctx, NewExprRequest(x, WithStrategy(strat), WithTopK(5)))
		if err != nil {
			t.Fatal(err)
		}
		if len(plainK.Results) != len(filteredK.Results) {
			t.Fatalf("%v: top-k sizes differ", strat)
		}
		for i := range plainK.Results {
			if plainK.Results[i].ObjectID != filteredK.Results[i].ObjectID || plainK.Results[i].Prob != filteredK.Results[i].Prob {
				t.Fatalf("%v: top-k result %d differs: %+v vs %+v", strat, i, plainK.Results[i], filteredK.Results[i])
			}
		}
	}
}

// TestExprMonteCarlo sanity-checks the sampling strategy against the
// exact answer within statistical error.
func TestExprMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	chain := randomChainN(rng, 6, 3)
	db := NewDatabase(chain)
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(6, 0)}))
	engine := NewEngine(db, Options{})
	ctx := context.Background()

	x := Or(
		ExistsAtom(WithStates([]int{1, 2}), WithTimeRange(1, 4)),
		ForAllAtom(WithStates([]int{0, 1, 2, 3}), WithTimeRange(2, 5)),
	)
	exact, err := engine.Evaluate(ctx, NewExprRequest(x))
	if err != nil {
		t.Fatal(err)
	}
	mc, err := engine.Evaluate(ctx, NewExprRequest(x,
		WithStrategy(StrategyMonteCarlo), WithMonteCarloBudget(20000, 1)))
	if err != nil {
		t.Fatal(err)
	}
	want, got := exact.Results[0].Prob, mc.Results[0].Prob
	if sd := MonteCarloStdDev(want, 20000); math.Abs(got-want) > 5*sd+1e-9 {
		t.Fatalf("Monte-Carlo %.4f vs exact %.4f (5σ = %.4f)", got, want, 5*sd)
	}
}

func TestExprErrors(t *testing.T) {
	chain, _ := markov.FromDense([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	db := NewDatabase(chain)
	db.MustAdd(MustObject(1, nil,
		Observation{Time: 0, PDF: markov.PointDistribution(2, 0)},
		Observation{Time: 2, PDF: markov.PointDistribution(2, 1)}))
	engine := NewEngine(db, Options{})
	ctx := context.Background()

	x := ExistsAtom(WithStates([]int{1}), WithTimeRange(1, 3))
	for _, strat := range []Strategy{StrategyQueryBased, StrategyObjectBased, StrategyMonteCarlo} {
		if _, err := engine.Evaluate(ctx, NewExprRequest(x, WithStrategy(strat))); err == nil {
			t.Errorf("%v: multi-observation object accepted", strat)
		}
	}
	// A request with an expression but the wrong predicate is rejected.
	req := NewExprRequest(x)
	req.Predicate = PredicateExists
	if _, err := engine.Evaluate(ctx, req); err == nil {
		t.Error("expression under PredicateExists accepted")
	}
	// A PredicateExpr request without an expression is rejected.
	if _, err := engine.Evaluate(ctx, NewRequest(PredicateExpr)); err == nil {
		t.Error("empty expression request accepted")
	}
}

// TestExprVacuous pins the decided-in-the-past semantics: an object
// observed after every atom window gets the constant value of the
// all-unfired flag word instead of an error.
func TestExprVacuous(t *testing.T) {
	chain, _ := markov.FromDense([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	db := NewDatabase(chain)
	db.MustAdd(MustObject(1, nil, Observation{Time: 10, PDF: markov.PointDistribution(2, 0)}))
	engine := NewEngine(db, Options{})
	ctx := context.Background()

	past := ExistsAtom(WithStates([]int{1}), WithTimeRange(1, 3))
	for _, tc := range []struct {
		x    Expr
		want float64
	}{
		{past, 0},      // exists over a passed window: unfired, false
		{Not(past), 1}, // its negation
		{ForAllAtom(WithStates([]int{0}), WithTimeRange(1, 3)), 1}, // vacuous forall
	} {
		for _, strat := range []Strategy{StrategyQueryBased, StrategyObjectBased, StrategyMonteCarlo} {
			resp, err := engine.Evaluate(ctx, NewExprRequest(tc.x, WithStrategy(strat)))
			if err != nil {
				t.Fatalf("%v: %v", strat, err)
			}
			if got := resp.Results[0].Prob; got != tc.want {
				t.Errorf("%v: %s: got %g want %g", strat, tc.x, got, tc.want)
			}
		}
	}
}

// TestExprStringRoundTrip spot-checks the canonical rendering.
func TestExprString(t *testing.T) {
	x := And(
		ExistsAtom(WithStates([]int{1, 2, 3, 7}), WithTimeRange(5, 15)),
		Not(ForAllAtom(WithStates([]int{3, 4}), WithTimes([]int{0, 2, 9}))),
	)
	want := "exists(states(1-3,7) @ [5,15]) and not forall(states(3,4) @ {0,2,9})"
	if got := x.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	y := Or(Then(
		ExistsAtom(WithStates([]int{0}), WithTimes([]int{1})),
		ExistsAtom(WithStates([]int{1}), WithTimes([]int{2})),
	), ForAllAtom(WithStates([]int{5}), WithTimes([]int{4})))
	wantY := "exists(states(0) @ {1}) then exists(states(1) @ {2}) or forall(states(5) @ {4})"
	if got := y.String(); got != wantY {
		t.Errorf("String() = %q, want %q", got, wantY)
	}
}
