package core

import (
	"context"
	"iter"
	"runtime"
	"sort"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// Batch evaluation: answer many Requests as one unit of work, letting
// the multi-query optimizer (planner.go) detect sweep work shared
// between them — the dashboard workload, where tens of standing panels
// ask overlapping questions of the same database at once.
//
// The optimizer's main weapon is the FUSED backward sweep below:
// instead of running each request's backward sweep as its own pass over
// the transition matrix (one sparse matrix traversal per request per
// time step), all sweeps of one chain advance together on the absolute
// time axis, so each time step traverses the matrix ONCE and updates
// every request's scoring vector in a cache-friendly state-major block.
// The matrix read — the memory-bound part of a sweep — is amortized
// over the whole batch, which is where the wall-clock win comes from
// even on a single core; BenchmarkEvaluateBatch measures it. Fused
// results are bit-identical to the serial sweeps by construction (same
// additions in the same order, zero terms interspersed), so EvaluateBatch
// answers are byte-identical to sequential Evaluate calls.
//
// The fused vectors are published through the engine's score cache, so
// after the warm phase every request's normal evaluation path runs with
// all sweeps hitting — threshold, top-k, filter–refine and streaming
// behave exactly as in the sequential path.

// BatchItem is one request's outcome within a batch: the Response for
// reqs[Index], or the error that request failed with. Failures are
// per-item — one malformed request does not poison the rest.
type BatchItem struct {
	Index    int
	Response *Response
	Err      error
}

// EvaluateBatch answers every request, applying the multi-query
// optimizer across them, and returns one Response per request in input
// order. The first per-request error (lowest index) aborts the batch;
// use EvaluateBatchSeq for per-item error tolerance. Results are
// byte-identical to len(reqs) sequential Evaluate calls.
func (e *Engine) EvaluateBatch(ctx context.Context, reqs []Request) ([]*Response, error) {
	out := make([]*Response, len(reqs))
	for item := range e.EvaluateBatchSeq(ctx, reqs) {
		if item.Err != nil {
			return nil, item.Err
		}
		out[item.Index] = item.Response
	}
	return out, nil
}

// EvaluateBatchSeq is the streaming variant of EvaluateBatch: items are
// yielded in input order as their evaluations complete, each carrying
// its own error. Breaking out of the loop cancels the remaining work.
func (e *Engine) EvaluateBatchSeq(ctx context.Context, reqs []Request) iter.Seq[BatchItem] {
	return func(yield func(BatchItem) bool) {
		plans := make([]*evalPlan, len(reqs))
		errs := make([]error, len(reqs))
		for i, req := range reqs {
			plans[i], errs[i] = e.prepare(req)
		}
		if err := e.warmBatch(ctx, plans); err != nil {
			for i := range reqs {
				if !yield(BatchItem{Index: i, Err: err}) {
					return
				}
			}
			return
		}
		workers := runtime.GOMAXPROCS(0)
		if workers > 1 && len(reqs) > 1 {
			// Concurrent plan evaluations may share a chain whose lazy
			// transpose has not been built yet (Chain.Transposed's first
			// call is not concurrency-safe); warm it once up front, like
			// the parallel OB fan-out does. Backward sweeps need it for
			// the default query-based strategy anyway.
			for _, grp := range e.db.groupByChain() {
				grp.chain.Transposed()
			}
		}
		eval := func(ctx context.Context, i int) (BatchItem, error) {
			if errs[i] != nil {
				return BatchItem{Index: i, Err: errs[i]}, nil
			}
			resp, err := e.evaluatePlan(ctx, plans[i])
			return BatchItem{Index: i, Response: resp, Err: err}, nil
		}
		next := 0
		for item, perr := range parallelOrdered(ctx, len(reqs), workers, eval) {
			if perr != nil {
				// Pipeline-level failure (context cancellation): surface it
				// on the next undelivered index — clamped, because the
				// pipeline can report cancellation after the final item
				// and Index must always name a real request.
				if next >= len(reqs) {
					next = len(reqs) - 1
				}
				yield(BatchItem{Index: next, Err: perr})
				return
			}
			next = item.Index + 1
			if !yield(item) {
				return
			}
		}
	}
}

// --- fused backward sweeps -------------------------------------------------

// maxFusedFloats bounds one fused block's buffer (per ping-pong copy) so
// huge state spaces fall back to narrower blocks instead of allocating
// gigabytes: width = min(32, maxFusedFloats/numStates).
const (
	maxFusedFloats  = 4 << 20
	maxFusedColumns = 32
)

// fusedWidth returns the fused block width for a state-space size.
func fusedWidth(numStates int) int {
	if numStates <= 0 {
		return 1
	}
	w := maxFusedFloats / numStates
	if w > maxFusedColumns {
		w = maxFusedColumns
	}
	if w < 1 {
		w = 1
	}
	return w
}

// fusedLane is one column of a fused block: a unit plus its activation
// schedule. Leaders start at their own horizon with an empty column
// exactly like hitScores; followers — units whose window is a SUFFIX of
// their leader's (same region, times equal above the follower's first
// timestamp) — share the leader's descent down to that first timestamp
// and only then fork a copy for their remaining unpinned steps. A
// follower whose observation time lies inside the shared suffix never
// needs a column at all: its scoring vector is read straight off the
// leader ("alias"). This is where nested dashboard windows ("in the
// next 5 / 10 / 15 minutes") collapse to one shared descent.
type fusedLane struct {
	u   sweepUnit
	act int // time the column materializes: horizon (leader) or fork time (follower)
	// leader is the column index this lane forks from (-1 for leaders).
	leader int
}

// planFusedLanes splits units into columns and leader-aliases.
// Units must share one chain; the returned lanes are sorted by
// descending activation time so live columns form a prefix.
func planFusedLanes(units []sweepUnit, width int) (lanes []fusedLane, aliases map[int]int, order []sweepUnit) {
	type group struct{ leaderLane int }
	groups := map[uint64]*group{}
	aliases = map[int]int{}

	regionKey := func(w *window) uint64 {
		h := uint64(fnvOffset)
		for _, s := range w.states {
			h = fnvMix(h, uint64(s)+1)
		}
		if w.invert {
			h = fnvMix(h, fnvSep)
		}
		h = fnvMix(h, uint64(w.horizon)+1)
		return h
	}
	// suffixOf reports whether f's timestamps are exactly l's above
	// f's first timestamp — the condition under which both sweeps are
	// bit-identical down to that timestamp.
	suffixOf := func(f, l *window) bool {
		ft := sortedKeys(f.timeSet)
		lt := sortedKeys(l.timeSet)
		if len(ft) == 0 || len(ft) > len(lt) {
			return false
		}
		tail := lt[len(lt)-len(ft):]
		for i := range ft {
			if ft[i] != tail[i] {
				return false
			}
		}
		return true
	}

	// Widest window first, so group leaders carry the longest suffix.
	order = append([]sweepUnit(nil), units...)
	sort.Slice(order, func(a, b int) bool {
		wa, wb := order[a].w, order[b].w
		if wa.horizon != wb.horizon {
			return wa.horizon > wb.horizon
		}
		if len(wa.timeSet) != len(wb.timeSet) {
			return len(wa.timeSet) > len(wb.timeSet)
		}
		if order[a].key.sig != order[b].key.sig {
			return order[a].key.sig < order[b].key.sig
		}
		return order[a].t0 < order[b].t0
	})
	for ui, u := range order {
		minTime := sortedKeys(u.w.timeSet)[0]
		if g, ok := groups[regionKey(u.w)]; ok && len(lanes) > 0 {
			l := lanes[g.leaderLane]
			if suffixOf(u.w, l.u.w) && l.leader == -1 {
				if u.t0 >= minTime {
					// Whole answer lies inside the shared suffix.
					aliases[ui] = g.leaderLane
					continue
				}
				if countLanes(lanes, g.leaderLane) < width {
					lanes = append(lanes, fusedLane{u: u, act: minTime, leader: g.leaderLane})
					continue
				}
			}
		}
		lane := fusedLane{u: u, act: u.w.horizon, leader: -1}
		lanes = append(lanes, lane)
		groups[regionKey(u.w)] = &group{leaderLane: len(lanes) - 1}
	}
	sortLanes(lanes, aliases)
	return lanes, aliases, order
}

// sortLanes orders columns by descending activation (ties: leaders
// first), remapping follower/alias leader indices accordingly.
func sortLanes(lanes []fusedLane, aliases map[int]int) {
	idx := make([]int, len(lanes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		la, lb := lanes[idx[a]], lanes[idx[b]]
		if la.act != lb.act {
			return la.act > lb.act
		}
		return (la.leader == -1) && (lb.leader != -1)
	})
	remap := make([]int, len(lanes))
	out := make([]fusedLane, len(lanes))
	for newPos, oldPos := range idx {
		remap[oldPos] = newPos
		out[newPos] = lanes[oldPos]
	}
	for i := range out {
		if out[i].leader >= 0 {
			out[i].leader = remap[out[i].leader]
		}
	}
	copy(lanes, out)
	for ui, lane := range aliases {
		aliases[ui] = remap[lane]
	}
}

func countLanes(lanes []fusedLane, leader int) int {
	n := 1
	for _, l := range lanes {
		if l.leader == leader {
			n++
		}
	}
	return n
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// fusedSchedule is the shared per-block bookkeeping of both fused
// kernels: planned lanes, alias extractions, dependency counts and
// per-lane pin lists (the window's region states materialized once, so
// inverted forall-windows do not walk the full state mask every step).
type fusedSchedule struct {
	lanes   []fusedLane
	aliases map[int]int
	order   []sweepUnit
	pending []int
	laneOf  map[int]int
	pins    [][]int32
	maxH    int
	minT0   int
}

func newFusedSchedule(units []sweepUnit, width int) *fusedSchedule {
	sch := &fusedSchedule{}
	sch.lanes, sch.aliases, sch.order = planFusedLanes(units, width)
	sch.maxH, sch.minT0 = sch.order[0].w.horizon, sch.order[0].t0
	for _, u := range sch.order[1:] {
		if u.w.horizon > sch.maxH {
			sch.maxH = u.w.horizon
		}
		if u.t0 < sch.minT0 {
			sch.minT0 = u.t0
		}
	}
	// pending counts unresolved dependents per column: its own
	// extraction, plus every un-forked follower and un-read alias. A
	// column retires (zeroed, pins stop) only at zero, because a fork or
	// alias below the leader's own observation time still needs its
	// pinned descent to continue.
	sch.pending = make([]int, len(sch.lanes))
	sch.laneOf = map[int]int{}
	for k, lane := range sch.lanes {
		sch.pending[k]++ // own extraction
		if lane.leader >= 0 {
			sch.pending[lane.leader]++
		}
	}
	for ui := range sch.order {
		if lane, ok := sch.aliases[ui]; ok {
			sch.pending[lane]++
			continue
		}
		for k := range sch.lanes {
			if sch.lanes[k].u.key == sch.order[ui].key {
				sch.laneOf[ui] = k
				break
			}
		}
	}
	sch.pins = make([][]int32, len(sch.lanes))
	for k, lane := range sch.lanes {
		var pin []int32
		lane.u.w.eachRegionState(func(s int) { pin = append(pin, int32(s)) })
		sch.pins[k] = pin
	}
	return sch
}

// fusedExistsSweeps runs the PST∃Q backward sweeps of all units — same
// chain, arbitrary windows and observation times — in one pass down the
// absolute time axis and publishes each resulting scoring vector to the
// score cache. Columns join the block at their activation time (the
// descending sort makes live columns a prefix): leaders empty at their
// horizon exactly like hitScores, followers as a copy of their leader's
// column at the fork point. Each column replays exactly the addition
// sequence of hitScores for its unit — skipped all-zero states,
// inactive columns and shared suffixes only elide or share identical
// terms — so the cached vectors are bit-identical to what the serial
// path would have computed.
func (e *Engine) fusedExistsSweeps(ctx context.Context, chain *markov.Chain, units []sweepUnit) error {
	if len(units) == 1 {
		// A lone sweep gains nothing from the block layout; run the
		// plain kernel and seed the cache with its result.
		score, err := hitScores(ctx, chain, units[0].w, units[0].t0, e.pool)
		if err != nil {
			return err
		}
		e.cache.put(units[0].key, scoreValue{vecs: []*sparse.Vec{score}})
		return nil
	}
	sch := newFusedSchedule(units, maxFusedColumns)
	n := chain.NumStates()
	K := len(sch.lanes)
	extract := func(cur []float64, k int) *sparse.Vec {
		col := make([]float64, n)
		for s := range col {
			col[s] = cur[s*K+k]
		}
		return sparse.AdoptDense(col)
	}
	resolve := func(cur []float64, k int) {
		sch.pending[k]--
		if sch.pending[k] == 0 {
			for s := 0; s < n; s++ {
				cur[s*K+k] = 0 // retire the column
			}
		}
	}

	cur := make([]float64, n*K)
	next := make([]float64, n*K)
	extracted := make([]bool, K)
	active := 0 // live-column prefix: lanes[0:active] have act ≥ t
	mt := chain.Transposed()
	for t := sch.maxH; ; t-- {
		newlyActive := active
		for active < K && sch.lanes[active].act >= t {
			active++
		}
		// Pin every live, unretired column whose window covers t.
		for k, lane := range sch.lanes[:active] {
			if sch.pending[k] > 0 && lane.u.w.atTime(t) {
				for _, s := range sch.pins[k] {
					cur[int(s)*K+k] = 1
				}
			}
		}
		// Fork freshly activated follower columns off their leaders
		// (after pinning, so the copy includes this step's pins — the
		// leader pins at the fork time whenever the follower would).
		for k := newlyActive; k < active; k++ {
			if l := sch.lanes[k].leader; l >= 0 {
				for s := 0; s < n; s++ {
					cur[s*K+k] = cur[s*K+l]
				}
				resolve(cur, l)
			}
		}
		// Extract every unit whose observation time this is.
		for ui, u := range sch.order {
			if u.t0 != t {
				continue
			}
			if lane, ok := sch.aliases[ui]; ok {
				e.cache.put(u.key, scoreValue{vecs: []*sparse.Vec{extract(cur, lane)}})
				resolve(cur, lane)
				continue
			}
			k := sch.laneOf[ui]
			if k < active && !extracted[k] {
				e.cache.put(u.key, scoreValue{vecs: []*sparse.Vec{extract(cur, k)}})
				extracted[k] = true
				resolve(cur, k)
			}
		}
		if t == sch.minT0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		fusedStepBack(next, cur, mt, K, active)
		cur, next = next, cur
	}
}

// fusedStepBack advances the first `active` columns one backward step:
// the block analogue of chain.StepBack (dst = x · Mᵀ, Gustavson row
// scatter). The transposed matrix is traversed once; each non-zero
// updates the live columns contiguously. States whose live columns are
// all zero are skipped without touching the matrix row at all — early
// in a sweep most of the state space is.
func fusedStepBack(dst, x []float64, mt *sparse.CSR, K, active int) {
	clear(dst)
	n := mt.Rows()
	for i := 0; i < n; i++ {
		xb := x[i*K : i*K+active : i*K+active]
		nz := false
		for _, v := range xb {
			if v != 0 {
				nz = true
				break
			}
		}
		if !nz {
			continue
		}
		cols, vals := mt.RowSlices(i)
		vals = vals[:len(cols)] // equal lengths: lets the compiler drop bounds checks
		for p, j := range cols {
			v := vals[p]
			db := dst[j*K : j*K+active : j*K+active]
			db = db[:len(xb)]
			for c, xc := range xb {
				db[c] += xc * v
			}
		}
	}
}

// fusedMaskSweeps runs the boolean reachability-envelope sweeps of all
// units — same chain, same envelope kind — as ONE word-packed sweep:
// bit k of the uint64 lane word is unit k's bitset, so a single OR
// (possible-envelope) or AND (certain-envelope) per transition edge
// advances every unit at once. Up to 64 units amortize each matrix
// traversal, and the same suffix-sharing schedule as the float kernel
// applies: follower bits copy their leader's bit at the fork point,
// alias units are read straight off the leader. Booleans make
// bit-identity to supportEnvelope trivial.
func (e *Engine) fusedMaskSweeps(ctx context.Context, chain *markov.Chain, units []sweepUnit, certain bool) error {
	sch := newFusedSchedule(units, 64)
	n := chain.NumStates()
	extract := func(cur []uint64, k int) *sparse.Bitset {
		bits := sparse.NewBitset(n)
		bit := uint64(1) << uint(k)
		for s, w := range cur {
			if w&bit != 0 {
				bits.Set(s)
			}
		}
		return bits
	}
	resolve := func(cur []uint64, k int) {
		sch.pending[k]--
		if sch.pending[k] == 0 {
			mask := ^(uint64(1) << uint(k))
			for s := range cur {
				cur[s] &= mask // retire the bit column
			}
		}
	}

	cur := make([]uint64, n)
	next := make([]uint64, n)
	extracted := make([]bool, len(sch.lanes))
	active := 0
	m := chain.Matrix()
	for t := sch.maxH; ; t-- {
		newlyActive := active
		for active < len(sch.lanes) && sch.lanes[active].act >= t {
			active++
		}
		for k, lane := range sch.lanes[:active] {
			if sch.pending[k] > 0 && lane.u.w.atTime(t) {
				bit := uint64(1) << uint(k)
				for _, s := range sch.pins[k] {
					cur[s] |= bit
				}
			}
		}
		for k := newlyActive; k < active; k++ {
			if l := sch.lanes[k].leader; l >= 0 {
				shift := uint(k)
				from := uint(l)
				for s := range cur {
					cur[s] |= ((cur[s] >> from) & 1) << shift
				}
				resolve(cur, l)
			}
		}
		for ui, u := range sch.order {
			if u.t0 != t {
				continue
			}
			if lane, ok := sch.aliases[ui]; ok {
				e.cache.put(u.key, scoreValue{bits: extract(cur, lane)})
				resolve(cur, lane)
				continue
			}
			k := sch.laneOf[ui]
			if k < active && !extracted[k] {
				e.cache.put(u.key, scoreValue{bits: extract(cur, k)})
				extracted[k] = true
				resolve(cur, k)
			}
		}
		if t == sch.minT0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if certain {
			fusedStepBackCertain(next, cur, m)
		} else {
			fusedStepBackSupport(next, cur, m)
		}
		cur, next = next, cur
	}
}

// fusedStepBackSupport is the word-packed StepBackSupport: lane word i
// becomes the OR of its successors' words ("some successor can still
// satisfy the predicate").
func fusedStepBackSupport(dst, x []uint64, m *sparse.CSR) {
	for i := range dst {
		cols, _ := m.RowSlices(i)
		var w uint64
		for _, j := range cols {
			w |= x[j]
		}
		dst[i] = w
	}
}

// fusedStepBackCertain is the word-packed StepBackCertain: lane word i
// becomes the AND of its successors' words; dangling states (no
// successors) are conservatively zero, exactly like the serial kernel.
func fusedStepBackCertain(dst, x []uint64, m *sparse.CSR) {
	for i := range dst {
		cols, _ := m.RowSlices(i)
		if len(cols) == 0 {
			dst[i] = 0
			continue
		}
		w := ^uint64(0)
		for _, j := range cols {
			w &= x[j]
		}
		dst[i] = w
	}
}
