package core

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"ust/internal/markov"
)

// Batch evaluation must be byte-identical to sequential Evaluate calls
// — the fused sweeps replay the serial addition order exactly — across
// every predicate × strategy × ranking combination, on cold and warm
// caches alike.

// batchTestEngine builds a database with mixed observation times so the
// optimizer sees several sweep units per window. (Single-observation
// objects throughout: the workload mixes in PSTkQ and eventually-
// requests, which reject multi-observation objects.)
func batchTestEngine(rng *rand.Rand, cacheBytes int) *Engine {
	n := 40
	chain := randomChainN(rng, n, 4)
	db := NewDatabase(chain)
	for id := 1; id <= 60; id++ {
		t0 := rng.Intn(3)
		db.MustAdd(MustObject(id, nil, Observation{Time: t0, PDF: markov.PointDistribution(n, rng.Intn(n))}))
	}
	return NewEngine(db, Options{CacheBytes: cacheBytes})
}

// overlappingRequests builds a dashboard-style workload: sliding
// windows over a handful of regions, mixing predicates, strategies and
// rankings.
func overlappingRequests(rng *rand.Rand, n int) []Request {
	var reqs []Request
	for i := 0; i < n; i++ {
		states := []int{(i * 3) % 35, (i*3)%35 + 1, (i*3)%35 + 2}
		lo := 2 + i%6
		opts := []RequestOption{WithStates(states), WithTimeRange(lo, lo+8)}
		pred := PredicateExists
		switch i % 4 {
		case 1:
			pred = PredicateForAll
		case 2:
			opts = append(opts, WithThreshold(0.2))
		case 3:
			opts = append(opts, WithTopK(5))
		}
		if i%7 == 3 {
			opts = append(opts, WithStrategy(StrategyObjectBased))
		}
		if i%9 == 4 {
			pred = PredicateKTimes
			opts = opts[:2]
		}
		reqs = append(reqs, NewRequest(pred, opts...))
	}
	return reqs
}

func sameResults(t *testing.T, tag string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i].ObjectID != want[i].ObjectID || got[i].Prob != want[i].Prob ||
			!slices.Equal(got[i].Dist, want[i].Dist) {
			t.Fatalf("%s: result %d differs:\n got %+v\nwant %+v", tag, i, got[i], want[i])
		}
	}
}

func TestEvaluateBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ctx := context.Background()
	reqs := overlappingRequests(rng, 24)
	reqs = append(reqs,
		NewRequest(PredicateEventually, WithStates([]int{7, 8})),
		NewRequest(PredicateExists, WithStates([]int{1, 2}), WithTimeRange(2, 9),
			WithStrategy(StrategyMonteCarlo), WithMonteCarloBudget(200, 5)),
		NewExprRequest(And(
			ExistsAtom(WithStates([]int{3, 4}), WithTimeRange(2, 6)),
			Not(ForAllAtom(WithStates([]int{10, 11}), WithTimeRange(3, 5))),
		)),
	)

	// Sequential reference on a fresh engine (cold cache).
	seqEngine := batchTestEngine(rand.New(rand.NewSource(5)), 0)
	var want []*Response
	for _, req := range reqs {
		resp, err := seqEngine.Evaluate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, resp)
	}

	// Batch on an identically-built fresh engine.
	batchEngine := batchTestEngine(rand.New(rand.NewSource(5)), 0)
	got, err := batchEngine.EvaluateBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		sameResults(t, reqs[i].Predicate.String(), got[i].Results, want[i].Results)
		if got[i].Strategy != want[i].Strategy {
			t.Errorf("request %d: strategy %v != %v", i, got[i].Strategy, want[i].Strategy)
		}
	}

	// Re-running the batch on the warm engine must not change anything.
	again, err := batchEngine.EvaluateBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		sameResults(t, "warm", again[i].Results, want[i].Results)
	}

	// Batch with the cache disabled engine-wide still matches.
	noCache := batchTestEngine(rand.New(rand.NewSource(5)), -1)
	plain, err := noCache.EvaluateBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		sameResults(t, "nocache", plain[i].Results, want[i].Results)
	}
}

// TestFusedSweepBitIdentical pins the fused block kernel against the
// serial hitScores sweep, vector by vector, bit by bit.
func TestFusedSweepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	chain := randomChainN(rng, 30, 4)
	e := NewEngine(NewDatabase(chain), Options{})
	ctx := context.Background()

	var units []sweepUnit
	var wants []struct {
		w  *window
		t0 int
	}
	for i := 0; i < 9; i++ {
		var states []int
		for s := 0; s < 30; s++ {
			if rng.Float64() < 0.2 {
				states = append(states, s)
			}
		}
		if states == nil {
			states = []int{i}
		}
		lo := rng.Intn(5)
		w, err := compile(NewQuery(states, Interval(lo+2, lo+4+rng.Intn(6))), 30)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 1 {
			w = w.complemented()
		}
		t0 := rng.Intn(3)
		units = append(units, sweepUnit{
			key: scoreKey{chain: chain, kind: kindExists, sig: w.signature(), t0: t0},
			w:   w, t0: t0,
		})
		wants = append(wants, struct {
			w  *window
			t0 int
		}{w, t0})
	}
	// The fused kernel's contract: units arrive sorted by descending
	// horizon (warmBatch's schedule).
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int { return units[b].w.horizon - units[a].w.horizon })
	sorted := make([]sweepUnit, len(units))
	for i, idx := range order {
		sorted[i] = units[idx]
	}
	if err := e.fusedExistsSweeps(ctx, chain, sorted); err != nil {
		t.Fatal(err)
	}
	for i, u := range units {
		v, ok := e.cache.get(u.key, nil)
		if !ok {
			t.Fatalf("unit %d not cached", i)
		}
		want, err := hitScores(ctx, chain, wants[i].w, wants[i].t0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 30; s++ {
			if got, exp := v.vecs[0].At(s), want.At(s); got != exp {
				t.Fatalf("unit %d state %d: fused %v != serial %v", i, s, got, exp)
			}
		}
	}
}

func TestEvaluateBatchSeqPerItemErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := batchTestEngine(rng, 0)
	ctx := context.Background()
	reqs := []Request{
		NewRequest(PredicateExists, WithStates([]int{1}), WithTimeRange(1, 4)),
		NewRequest(PredicateExists, WithStates([]int{999}), WithTimeRange(1, 4)), // out of range
		NewRequest(PredicateForAll, WithStates([]int{2}), WithTimeRange(1, 4)),
	}
	var items []BatchItem
	for item := range e.EvaluateBatchSeq(ctx, reqs) {
		items = append(items, item)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("valid requests errored: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("out-of-range request did not error")
	}
	if items[0].Index != 0 || items[1].Index != 1 || items[2].Index != 2 {
		t.Fatal("items out of order")
	}

	// The strict entry point aborts on the first error.
	if _, err := e.EvaluateBatch(ctx, reqs); err == nil {
		t.Fatal("EvaluateBatch swallowed the per-request error")
	}
}

func TestEvaluateBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := batchTestEngine(rng, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.EvaluateBatch(ctx, overlappingRequests(rng, 8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v", err)
	}
}

func TestEvaluateBatchEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := batchTestEngine(rng, 0)
	out, err := e.EvaluateBatch(context.Background(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d responses", err, len(out))
	}
}
