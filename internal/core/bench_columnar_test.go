package core

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// ingestDB builds a database of multi-observation objects for the
// ingest benchmarks.
func ingestDB(b *testing.B, chain *markov.Chain, nObjects, nObs int) *Database {
	b.Helper()
	n := chain.NumStates()
	db := NewDatabase(chain)
	for id := 0; id < nObjects; id++ {
		obs := make([]Observation, 0, nObs)
		for k := 0; k < nObs; k++ {
			obs = append(obs, Observation{Time: 3 * k, PDF: markov.PointDistribution(n, (id+7*k)%n)})
		}
		o, err := NewObjectSorted(id, nil, obs)
		if err != nil {
			b.Fatal(err)
		}
		db.MustAdd(o)
	}
	return db
}

// BenchmarkIngest measures one observation append (build the updated
// object, swap it into the database, refresh the column plane).
// "columnar" is the current single-copy WithObservation path with
// column reuse; "row-baseline" re-runs the historical sequence — copy,
// append, full re-sort and re-validation through NewObject — against
// the same database. The allocation gap between the two is pinned by
// the CI alloc gate.
func BenchmarkIngest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	chain := randomChainN(rng, 500, 4)

	b.Run("columnar", func(b *testing.B) {
		db := ingestDB(b, chain, 100, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := i % 100
			o := db.Get(id)
			upd, err := o.WithObservation(Observation{
				Time: 100 + i/100,
				PDF:  markov.PointDistribution(500, i%500),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := db.ReplaceObject(upd); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("row-baseline", func(b *testing.B) {
		db := ingestDB(b, chain, 100, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := i % 100
			o := db.Get(id)
			merged := append(append([]Observation(nil), o.Observations...), Observation{
				Time: 100 + i/100,
				PDF:  markov.PointDistribution(500, i%500),
			})
			upd, err := NewObject(id, o.Chain, merged...)
			if err != nil {
				b.Fatal(err)
			}
			if err := db.ReplaceObject(upd); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// posteriorFixture builds one object whose observations follow a sampled
// trajectory (so the joint mass is never zero) plus its column segment.
func posteriorFixture(b *testing.B, n, nObs int) (*markov.Chain, []Observation, ObsSeg) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	chain := randomChainN(rng, n, 4)
	obs := []Observation{{Time: 0, PDF: markov.PointDistribution(n, 0)}}
	cur := markov.PointDistribution(n, 0).Vec().Clone()
	for k := 1; k < nObs; k++ {
		cur = chain.Evolve(cur, 3)
		// Observe the two most likely states.
		supp := cur.Support()
		sort.Slice(supp, func(a, c int) bool { return cur.At(supp[a]) > cur.At(supp[c]) })
		if len(supp) > 2 {
			supp = supp[:2]
		}
		sort.Ints(supp)
		pdf := markov.UniformOver(n, supp)
		obs = append(obs, Observation{Time: 3 * k, PDF: pdf})
		cur = pdf.Clone().Vec()
		cur.Normalize()
	}
	return chain, obs, segFromObservations(obs)
}

// BenchmarkMultiObsPosterior compares the retained row-oriented
// posterior kernel against the vectorized columnar one (both cold), and
// the serial-keyed cache hit (warm).
func BenchmarkMultiObsPosterior(b *testing.B) {
	const n, nObs, at = 1000, 6, 7
	chain, obs, seg := posteriorFixture(b, n, nObs)

	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := posteriorAtRow(chain, obs, at); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("columnar", func(b *testing.B) {
		fpool := &sparse.FloatPool{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := posteriorAtSeg(chain, seg, at, fpool); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		db := NewDatabase(chain)
		o, err := NewObjectSorted(0, nil, obs)
		if err != nil {
			b.Fatal(err)
		}
		db.MustAdd(o)
		e := NewEngine(db, Options{})
		if _, err := e.Marginal(o, at); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Marginal(o, at); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMultiObsExists compares the doubled-space P∃ pass row vs
// columnar (cold) and the cached scalar (warm).
func BenchmarkMultiObsExists(b *testing.B) {
	const n, nObs = 1000, 6
	chain, obs, seg := posteriorFixture(b, n, nObs)
	w, err := compile(NewQuery([]int{1, 2, 3}, []int{4, 5, 6}), n)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := existsMultiObsRow(context.Background(), chain, obs, w); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("columnar", func(b *testing.B) {
		fpool := &sparse.FloatPool{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := existsMultiObsSeg(context.Background(), chain, seg, w, nil, fpool); err != nil {
				b.Fatal(err)
			}
		}
	})
}
