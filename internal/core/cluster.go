package core

import (
	"fmt"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// Heterogeneous-chain pruning (the Section V-C discussion). When objects
// follow different Markov chains, the query-based strategy degrades to
// one backward sweep per chain. The paper suggests clustering chains and
// representing each cluster by an approximated chain whose entries are
// probability *intervals*; a cluster whose interval-valued query
// probability is decided against a threshold as a whole never needs its
// member chains swept individually.

// IntervalChain bounds a set of Markov chains elementwise: for every
// chain C in the set and every (i, j), Lo[i,j] ≤ C[i,j] ≤ Hi[i,j].
type IntervalChain struct {
	lo, hi *sparse.CSR
}

// NewIntervalChain builds the elementwise envelope of the given chains.
// All chains must share the state-space size.
func NewIntervalChain(chains []*markov.Chain) (*IntervalChain, error) {
	if len(chains) == 0 {
		return nil, fmt.Errorf("core: interval chain needs at least one member")
	}
	n := chains[0].NumStates()
	for _, c := range chains[1:] {
		if c.NumStates() != n {
			return nil, fmt.Errorf("core: interval chain members disagree on state count: %d vs %d", c.NumStates(), n)
		}
	}
	loB := sparse.NewBuilder(n, n)
	hiB := sparse.NewBuilder(n, n)
	// Collect the union support with min/max entries in one pass per
	// row, counting how many members carry each cell: a cell absent
	// from any member has lower bound zero.
	type cell struct {
		lo, hi float64
		seen   int
	}
	row := map[int]*cell{}
	for i := 0; i < n; i++ {
		clear(row)
		for _, c := range chains {
			c.Matrix().Row(i, func(j int, x float64) {
				e, ok := row[j]
				if !ok {
					row[j] = &cell{lo: x, hi: x, seen: 1}
					return
				}
				e.seen++
				if x < e.lo {
					e.lo = x
				}
				if x > e.hi {
					e.hi = x
				}
			})
		}
		for j, e := range row {
			if e.seen < len(chains) {
				e.lo = 0
			}
			loB.Add(i, j, e.lo)
			hiB.Add(i, j, e.hi)
		}
	}
	return &IntervalChain{lo: loB.Build(), hi: hiB.Build()}, nil
}

// NumStates returns the state-space size.
func (ic *IntervalChain) NumStates() int { return ic.lo.Rows() }

// Lo returns the lower-bound matrix.
func (ic *IntervalChain) Lo() *sparse.CSR { return ic.lo }

// Hi returns the upper-bound matrix.
func (ic *IntervalChain) Hi() *sparse.CSR { return ic.hi }

// Contains reports whether chain c lies inside the envelope.
func (ic *IntervalChain) Contains(c *markov.Chain) bool {
	if c.NumStates() != ic.NumStates() {
		return false
	}
	ok := true
	for i := 0; i < ic.NumStates(); i++ {
		c.Matrix().Row(i, func(j int, x float64) {
			if x < ic.lo.At(i, j)-1e-12 || x > ic.hi.At(i, j)+1e-12 {
				ok = false
			}
		})
	}
	return ok
}

// BoundScores runs one backward interval sweep for the query down to
// time t0, returning per-state scoring vectors: for any chain inside
// the envelope and any object at state s at time t0, the true hit
// probability lies in [loScore[s], hiScore[s]]. The vectors depend only
// on the envelope and the query — one sweep serves every member object
// via dot products.
func (ic *IntervalChain) BoundScores(q Query, t0 int) (loScore, hiScore *sparse.Vec, err error) {
	w, cerr := compile(q, ic.NumStates())
	if cerr != nil {
		return nil, nil, cerr
	}
	n := ic.NumStates()
	loScore = sparse.NewVec(n)
	hiScore = sparse.NewVec(n)
	if w.k == 0 {
		return loScore, hiScore, nil
	}
	if t0 > w.horizon {
		return nil, nil, fmt.Errorf("core: start time %d after query horizon %d", t0, w.horizon)
	}
	bufLo := sparse.NewVec(n)
	bufHi := sparse.NewVec(n)
	for t := w.horizon; t > t0; t-- {
		if w.atTime(t) {
			pinRegion(loScore, w)
			pinRegion(hiScore, w)
		}
		sparse.MatVec(bufLo, ic.lo, loScore)
		loScore, bufLo = bufLo, loScore
		sparse.MatVec(bufHi, ic.hi, hiScore)
		hiScore, bufHi = bufHi, hiScore
		clip1(hiScore)
	}
	if w.atTime(t0) {
		pinRegion(loScore, w)
		pinRegion(hiScore, w)
	}
	return loScore, hiScore, nil
}

// ExistsBoundsCluster computes sound lower and upper bounds on
// P∃(o, S□, T□) that hold simultaneously for *every* chain inside the
// envelope, for an object whose initial pdf is init at time t0.
//
// The bounds propagate backward like hitScores: the lower (upper) score
// vector uses the lower (upper) transition bounds, clipping the upper
// scores at 1. The result brackets the true value because the backward
// recurrence is monotone in both the matrix entries and the scores, all
// of which are non-negative.
func (ic *IntervalChain) ExistsBoundsCluster(init *sparse.Vec, t0 int, q Query) (lo, hi float64, err error) {
	loScore, hiScore, err := ic.BoundScores(q, t0)
	if err != nil {
		return 0, 0, err
	}
	x := init.Clone()
	x.Normalize()
	lo = x.Dot(loScore)
	hi = x.Dot(hiScore)
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

func clip1(v *sparse.Vec) {
	v.Range(func(i int, x float64) {
		if x > 1 {
			v.Set(i, 1)
		}
	})
}

// ClusterIndex holds prebuilt interval envelopes for a clustering of
// the database's objects. Building the envelopes costs one pass over
// every member chain; a ClusterIndex amortizes that across queries —
// the intended production usage of Section V-C's pruning.
type ClusterIndex struct {
	labels    []int
	envelopes map[int]*IntervalChain
}

// BuildClusterIndex groups the database's objects by the given cluster
// labels (one per object, in database order) and builds one interval
// envelope per cluster.
func (e *Engine) BuildClusterIndex(clusters []int) (*ClusterIndex, error) {
	objs := e.db.Objects()
	if len(clusters) != len(objs) {
		return nil, fmt.Errorf("core: %d cluster labels for %d objects", len(clusters), len(objs))
	}
	chainSets := map[int][]*markov.Chain{}
	seen := map[int]map[*markov.Chain]bool{}
	for i, o := range objs {
		cid := clusters[i]
		ch := e.db.ChainOf(o)
		if seen[cid] == nil {
			seen[cid] = map[*markov.Chain]bool{}
		}
		if !seen[cid][ch] {
			seen[cid][ch] = true
			chainSets[cid] = append(chainSets[cid], ch)
		}
	}
	idx := &ClusterIndex{
		labels:    append([]int(nil), clusters...),
		envelopes: map[int]*IntervalChain{},
	}
	for cid, chains := range chainSets {
		env, err := NewIntervalChain(chains)
		if err != nil {
			return nil, err
		}
		idx.envelopes[cid] = env
	}
	return idx, nil
}

// ClusteredExists evaluates PST∃Q for a database of heterogeneous
// chains against threshold tau, using one interval envelope per cluster
// of chains to decide whole clusters cheaply. clusters maps each object
// index (position in db.Objects()) to a cluster id; objects in an
// undecided cluster fall back to exact per-chain evaluation.
//
// The return is the set of objects with P∃ ≥ tau (exact, not bounded),
// plus the number of objects decided by the cluster bounds alone —
// the pruning effectiveness measure. For repeated queries over the same
// clustering, build the index once with BuildClusterIndex and call
// ExistsThresholdClustered.
func (e *Engine) ClusteredExists(q Query, tau float64, clusters []int) (qualifying []Result, pruned int, err error) {
	idx, err := e.BuildClusterIndex(clusters)
	if err != nil {
		return nil, 0, err
	}
	return e.ExistsThresholdClustered(q, tau, idx)
}

// ExistsThresholdClustered is ClusteredExists over a prebuilt index.
func (e *Engine) ExistsThresholdClustered(q Query, tau float64, idx *ClusterIndex) (qualifying []Result, pruned int, err error) {
	objs := e.db.Objects()
	if len(idx.labels) != len(objs) {
		return nil, 0, fmt.Errorf("core: cluster index covers %d objects, database has %d", len(idx.labels), len(objs))
	}
	clusters := idx.labels
	envelopes := idx.envelopes
	// One backward interval sweep per (cluster, observation time); each
	// object is then bounded with two dot products.
	type scoreKey struct{ cid, t0 int }
	type scorePair struct{ lo, hi *sparse.Vec }
	scores := map[scoreKey]scorePair{}
	for i, o := range objs {
		if len(o.Observations) != 1 {
			// Multi-observation objects are always evaluated exactly.
			p, oerr := e.ExistsOB(o, q)
			if oerr != nil {
				return nil, 0, oerr
			}
			if p >= tau {
				qualifying = append(qualifying, Result{ObjectID: o.ID, Prob: p})
			}
			continue
		}
		first := o.First()
		key := scoreKey{clusters[i], first.Time}
		sp, ok := scores[key]
		if !ok {
			loV, hiV, berr := envelopes[key.cid].BoundScores(q, first.Time)
			if berr != nil {
				return nil, 0, berr
			}
			sp = scorePair{lo: loV, hi: hiV}
			scores[key] = sp
		}
		x := first.PDF.Vec().Clone()
		x.Normalize()
		lo := x.Dot(sp.lo)
		hi := x.Dot(sp.hi)
		if hi > 1 {
			hi = 1
		}
		switch {
		case hi < tau:
			pruned++ // whole-cluster refutation
		case lo >= tau:
			pruned++
			// Decided qualifying; still report the exact probability so
			// downstream consumers see a usable number.
			p, oerr := e.ExistsOB(o, q)
			if oerr != nil {
				return nil, 0, oerr
			}
			qualifying = append(qualifying, Result{ObjectID: o.ID, Prob: p})
		default:
			p, oerr := e.ExistsOB(o, q)
			if oerr != nil {
				return nil, 0, oerr
			}
			if p >= tau {
				qualifying = append(qualifying, Result{ObjectID: o.ID, Prob: p})
			}
		}
	}
	return qualifying, pruned, nil
}
