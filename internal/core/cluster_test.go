package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/markov"
)

// perturbedChain returns a copy of base with each row's weights jittered
// by up to eps (support preserved, rows renormalized) — a "similar"
// chain in the Section V-C clustering sense.
func perturbedChain(base *markov.Chain, eps float64, rng *rand.Rand) *markov.Chain {
	n := base.NumStates()
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		sum := 0.0
		base.Matrix().Row(i, func(j int, x float64) {
			v := x * (1 + eps*(2*rng.Float64()-1))
			rows[i][j] = v
			sum += v
		})
		for j := range rows[i] {
			rows[i][j] /= sum
		}
	}
	return mustCSR(rows)
}

func mustCSR(rows [][]float64) *markov.Chain {
	c, err := markov.FromDense(rows)
	if err != nil {
		panic(err)
	}
	return c
}

func TestIntervalChainEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := paperChainV(t)
	members := []*markov.Chain{base}
	for i := 0; i < 4; i++ {
		members = append(members, perturbedChain(base, 0.2, rng))
	}
	env, err := NewIntervalChain(members)
	if err != nil {
		t.Fatalf("NewIntervalChain: %v", err)
	}
	for i, c := range members {
		if !env.Contains(c) {
			t.Errorf("member %d escapes its own envelope", i)
		}
	}
	// An unrelated chain must not be contained.
	other := mustCSR([][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
	})
	if env.Contains(other) {
		t.Error("identity chain reported inside the paper-chain envelope")
	}
}

func TestIntervalChainErrors(t *testing.T) {
	if _, err := NewIntervalChain(nil); err == nil {
		t.Error("empty member set accepted")
	}
	a := paperChainV(t)
	b := mustCSR([][]float64{{0.5, 0.5}, {1, 0}})
	if _, err := NewIntervalChain([]*markov.Chain{a, b}); err == nil {
		t.Error("mismatched state counts accepted")
	}
}

func TestClusterBoundsBracketEveryMemberQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomChainN(rng, 4+rng.Intn(4), 3)
		members := []*markov.Chain{base}
		for i := 0; i < 3; i++ {
			members = append(members, perturbedChain(base, 0.15, rng))
		}
		env, err := NewIntervalChain(members)
		if err != nil {
			return false
		}
		n := base.NumStates()
		init := markov.PointDistribution(n, rng.Intn(n))
		q := NewQuery([]int{rng.Intn(n)}, []int{1 + rng.Intn(3), 4})
		lo, hi, err := env.ExistsBoundsCluster(init.Vec(), 0, q)
		if err != nil {
			return false
		}
		if lo > hi+1e-12 || lo < -1e-12 || hi > 1+1e-12 {
			return false
		}
		for _, c := range members {
			db := NewDatabase(c)
			o := MustObject(1, nil, Observation{Time: 0, PDF: init.Clone()})
			db.MustAdd(o)
			p, perr := NewEngine(db, Options{}).ExistsOB(o, q)
			if perr != nil {
				return false
			}
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClusteredExistsMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := randomChainN(rng, 8, 3)
	db := NewDatabase(base)
	// Cluster 0: the base chain family. Cluster 1: a drifted family.
	drifted := perturbedChain(base, 0.4, rng)
	var clusters []int
	for id := 0; id < 20; id++ {
		var ch *markov.Chain
		cid := id % 2
		if cid == 0 {
			ch = perturbedChain(base, 0.05, rng)
		} else {
			ch = perturbedChain(drifted, 0.05, rng)
		}
		o := MustObject(id, ch, Observation{Time: 0, PDF: markov.PointDistribution(8, rng.Intn(8))})
		db.MustAdd(o)
		clusters = append(clusters, cid)
	}
	e := NewEngine(db, Options{})
	q := NewQuery([]int{2, 3}, []int{2, 3, 4})
	const tau = 0.3

	got, pruned, err := e.ClusteredExists(q, tau, clusters)
	if err != nil {
		t.Fatalf("ClusteredExists: %v", err)
	}
	if pruned < 0 {
		t.Fatalf("negative pruned count %d", pruned)
	}
	// Reference: exact per-object evaluation.
	want := map[int]float64{}
	for _, o := range db.Objects() {
		p, perr := e.ExistsOB(o, q)
		if perr != nil {
			t.Fatalf("exact: %v", perr)
		}
		if p >= tau {
			want[o.ID] = p
		}
	}
	gotIDs := map[int]bool{}
	for _, r := range got {
		gotIDs[r.ObjectID] = true
		wp, ok := want[r.ObjectID]
		if !ok {
			t.Errorf("object %d qualified but exact P = below threshold", r.ObjectID)
			continue
		}
		if math.Abs(r.Prob-wp) > 1e-9 {
			t.Errorf("object %d: clustered P %g != exact %g", r.ObjectID, r.Prob, wp)
		}
	}
	for id := range want {
		if !gotIDs[id] {
			t.Errorf("object %d missing from clustered result", id)
		}
	}
}

func TestClusteredExistsLabelMismatch(t *testing.T) {
	db, _ := paperDB(t)
	e := NewEngine(db, Options{})
	if _, _, err := e.ClusteredExists(paperQueryV(), 0.5, []int{0, 1}); err == nil {
		t.Error("wrong label count accepted")
	}
}

func TestTightEnvelopePrunesEffectively(t *testing.T) {
	// Identical chains → zero-width envelope → every single-observation
	// object is decided by the bounds.
	db := NewDatabase(paperChainV(t))
	var clusters []int
	for id := 0; id < 10; id++ {
		state := id % 3
		db.MustAdd(MustObject(id, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, state)}))
		clusters = append(clusters, 0)
	}
	e := NewEngine(db, Options{})
	_, pruned, err := e.ClusteredExists(paperQueryV(), 0.5, clusters)
	if err != nil {
		t.Fatalf("ClusteredExists: %v", err)
	}
	if pruned != 10 {
		t.Errorf("pruned = %d, want 10 (zero-width envelope decides everything)", pruned)
	}
}
