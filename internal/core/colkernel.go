package core

import (
	"context"
	"fmt"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// Vectorized multi-observation kernels. These are the columnar twins of
// the Vec-based passes in multiobs.go: they consume ObsSeg column blocks
// directly and run on flat state-major float lanes — the doubled state
// space of Section VI becomes a K=2 interleaved block [pNot₀ pHit₀ pNot₁
// pHit₁ …] advanced by the same fused Gustavson scatter the batch sweeps
// use (fusedStepBack over the un-transposed matrix IS a forward step:
// dst[j] += x[i]·M[i,j]). Observation fusion is a gather/scatter over
// the observation's support columns — the fused result's support is
// contained in the observation's, so one clear + |supp| writes replaces
// the Hadamard + Compact support churn of the row path, and the only
// per-call allocations are pooled lane blocks.

// regionPins materializes the window's (possibly inverted) spatial
// predicate as a flat state list — the columnar form of eachRegionState,
// built once per kern and reused across objects.
func regionPins(w *window) []int32 {
	var pins []int32
	w.eachRegionState(func(s int) { pins = append(pins, int32(s)) })
	return pins
}

// fuse2 multiplies both lanes elementwise by the observation pdf given
// as support columns (Lemma 1), returning the total remaining mass.
// scratch must hold 2·len(ids) values.
func fuse2(cur, scratch []float64, ids []int32, probs []float64) float64 {
	for p, s := range ids {
		scratch[2*p] = cur[2*int(s)] * probs[p]
		scratch[2*p+1] = cur[2*int(s)+1] * probs[p]
	}
	clear(cur)
	total := 0.0
	for p, s := range ids {
		a, b := scratch[2*p], scratch[2*p+1]
		cur[2*int(s)] = a
		cur[2*int(s)+1] = b
		total += a + b
	}
	return total
}

// fuse1 is the single-lane variant used by the posterior pass.
func fuse1(cur, scratch []float64, ids []int32, probs []float64) float64 {
	for p, s := range ids {
		scratch[p] = cur[int(s)] * probs[p]
	}
	clear(cur)
	total := 0.0
	for p, s := range ids {
		cur[int(s)] = scratch[p]
		total += scratch[p]
	}
	return total
}

// maxSupp returns the widest observation support in the segment.
func maxSupp(seg ObsSeg) int {
	m := 0
	for k := 0; k < seg.Len(); k++ {
		if w := int(seg.Off[k+1] - seg.Off[k]); w > m {
			m = w
		}
	}
	return m
}

// laneFrontier tracks which states carry nonzero lanes across flat
// steps, so sparse phases cost O(frontier·deg) instead of the O(n) row
// scan and full-lane clear of fusedStepBack. Every observation fusion
// collapses the frontier back to the observation's support, and between
// fusions it grows by at most the out-degree per step, so multi-obs
// passes spend most of their steps far below the dense threshold. Once
// the frontier passes a quarter of the state space the kernel flips to
// the dense fused step (whose fixed O(n) overhead is then amortized)
// until the next fusion re-sparsifies it.
//
// Invariant in sparse mode: both lane buffers are zero outside the
// frontier — step clears the source lanes behind itself, and reset
// clears the spare buffer when leaving dense mode.
type laneFrontier struct {
	rows  []int32 // active states (sparse mode only)
	spare []int32 // storage for the next frontier
	stamp []int32 // stamp[s]==epoch ⇒ s already collected for the next frontier
	epoch int32
	dense bool
}

func newLaneFrontier(n int) *laneFrontier {
	return &laneFrontier{
		stamp: make([]int32, n),
		rows:  make([]int32, 0, n),
		spare: make([]int32, 0, n),
	}
}

// reset re-sparsifies the frontier to exactly ids (an observation's
// support). other is the inactive lane buffer, cleared if dense data may
// be lingering in it.
func (f *laneFrontier) reset(ids []int32, other []float64) {
	if f.dense {
		clear(other)
		f.dense = false
	}
	f.rows = append(f.rows[:0], ids...)
}

// step advances one scatter step dst[j] += x[i]·m[i,j] over the active
// frontier (or densely once past the threshold). In sparse mode x is
// cleared behind the scatter, keeping both buffers zero outside the
// frontier; callers swap dst and x afterwards exactly as with
// fusedStepBack.
func (f *laneFrontier) step(dst, x []float64, m *sparse.CSR, K, active int) {
	if f.dense {
		fusedStepBack(dst, x, m, K, active)
		return
	}
	f.epoch++
	nxt := f.spare[:0]
	for _, si := range f.rows {
		i := int(si)
		xb := x[i*K : i*K+active : i*K+active]
		nz := false
		for _, v := range xb {
			if v != 0 {
				nz = true
				break
			}
		}
		if nz {
			cols, vals := m.RowSlices(i)
			vals = vals[:len(cols)]
			for p, j := range cols {
				v := vals[p]
				if f.stamp[j] != f.epoch {
					f.stamp[j] = f.epoch
					nxt = append(nxt, int32(j))
				}
				db := dst[j*K : j*K+active : j*K+active]
				db = db[:len(xb)]
				for c, xc := range xb {
					db[c] += xc * v
				}
			}
			clear(xb)
		}
	}
	f.rows, f.spare = nxt, f.rows
	if 4*len(f.rows) > len(f.stamp) {
		f.dense = true
	}
}

// sum totals the active lanes of x without touching dead states.
func (f *laneFrontier) sum(x []float64, K, active int) float64 {
	total := 0.0
	if f.dense {
		for _, v := range x {
			total += v
		}
		return total
	}
	for _, si := range f.rows {
		i := int(si)
		for c := 0; c < active; c++ {
			total += x[i*K+c]
		}
	}
	return total
}

// existsMultiObsSeg computes P∃ for a multi-observation object from its
// column segment. pins may be nil (derived from w); fpool may be nil
// (plain allocation). Semantics mirror existsMultiObsRow exactly — same
// pass structure, same deferred normalization — modulo floating-point
// summation order.
func existsMultiObsSeg(ctx context.Context, chain *markov.Chain, seg ObsSeg, w *window, pins []int32, fpool *sparse.FloatPool) (float64, error) {
	if seg.Len() == 0 {
		return 0, fmt.Errorf("core: no observations")
	}
	if pins == nil {
		pins = regionPins(w)
	}
	n := chain.NumStates()
	cur := fpool.Get(2 * n)
	nxt := fpool.Get(2 * n)
	defer func() {
		fpool.Put(cur)
		fpool.Put(nxt)
	}()
	scratch := make([]float64, 2*maxSupp(seg))

	ids, probs := seg.Supp(0)
	mass := 0.0
	for _, v := range probs {
		mass += v
	}
	if mass <= 0 {
		return 0, fmt.Errorf("core: observations are mutually impossible under the motion model")
	}
	inv := 1 / mass
	for p, s := range ids {
		cur[2*int(s)] = probs[p] * inv
	}
	front := newLaneFrontier(n)
	front.reset(ids, nxt)

	end := w.horizon
	if last := int(seg.Times[seg.Len()-1]); last > end {
		end = last
	}
	t := int(seg.Times[0])
	if w.atTime(t) {
		transferHitsFlat(cur, pins)
	}
	nextObs := 1
	m := chain.Matrix()
	for ; t < end; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		front.step(nxt, cur, m, 2, 2) // un-transposed matrix: a forward step
		cur, nxt = nxt, cur
		if w.atTime(t + 1) {
			transferHitsFlat(cur, pins)
		}
		if nextObs < seg.Len() && int(seg.Times[nextObs]) == t+1 {
			oIds, oProbs := seg.Supp(nextObs)
			nextObs++
			total := fuse2(cur, scratch, oIds, oProbs)
			if total == 0 {
				return 0, fmt.Errorf("core: observations are mutually impossible under the motion model")
			}
			// Rescale jointly; the ratio P(B)/(P(B)+P(C)) is invariant
			// under a common factor and renormalizing here prevents
			// underflow across long observation sequences.
			inv := 1 / total
			for _, s := range oIds {
				cur[2*int(s)] *= inv
				cur[2*int(s)+1] *= inv
			}
			front.reset(oIds, nxt)
		}
	}
	b, c := 0.0, 0.0
	for s := 0; s < n; s++ {
		c += cur[2*s]
		b += cur[2*s+1]
	}
	total := b + c
	if total == 0 {
		return 0, fmt.Errorf("core: observations are mutually impossible under the motion model")
	}
	return b / total, nil
}

// transferHitsFlat moves in-window mass from the pNot lane into the pHit
// lane — the redirected block of the doubled M+ matrix, as an O(|S□|)
// walk over the pinned region states.
func transferHitsFlat(cur []float64, pins []int32) {
	for _, s := range pins {
		cur[2*s+1] += cur[2*s]
		cur[2*s] = 0
	}
}

// posteriorAtSeg computes the smoothed posterior P(o(t) | all
// observations) from a column segment: a flat forward pass with
// gather/scatter observation fusion, then — when observations exist
// after t — one flat backward likelihood sweep that reuses its two lane
// buffers instead of allocating a vector per step like the row path.
func posteriorAtSeg(chain *markov.Chain, seg ObsSeg, t int, fpool *sparse.FloatPool) (*markov.Distribution, error) {
	if seg.Len() == 0 {
		return nil, fmt.Errorf("core: no observations")
	}
	t0 := int(seg.Times[0])
	if t < t0 {
		return nil, fmt.Errorf("core: cannot infer before the first observation (t=%d < %d)", t, t0)
	}
	n := chain.NumStates()
	cur := fpool.Get(n)
	nxt := fpool.Get(n)
	atT := fpool.Get(n)
	defer func() {
		fpool.Put(cur)
		fpool.Put(nxt)
		fpool.Put(atT)
	}()
	scratch := make([]float64, maxSupp(seg))

	ids, probs := seg.Supp(0)
	mass := 0.0
	for _, v := range probs {
		mass += v
	}
	if mass <= 0 {
		return nil, fmt.Errorf("core: observations are mutually impossible under the motion model")
	}
	inv := 1 / mass
	for p, s := range ids {
		cur[int(s)] = probs[p] * inv
	}
	front := newLaneFrontier(n)
	front.reset(ids, nxt)

	end := t
	if last := int(seg.Times[seg.Len()-1]); last > end {
		end = last
	}
	if t0 == t {
		copy(atT, cur)
	}
	nextObs := 1
	m := chain.Matrix()
	for tau := t0; tau < end; tau++ {
		front.step(nxt, cur, m, 1, 1) // forward step on one lane
		cur, nxt = nxt, cur
		if nextObs < seg.Len() && int(seg.Times[nextObs]) == tau+1 {
			oIds, oProbs := seg.Supp(nextObs)
			nextObs++
			fuse1(cur, scratch, oIds, oProbs)
			front.reset(oIds, nxt)
		}
		if front.sum(cur, 1, 1) == 0 {
			return nil, fmt.Errorf("core: observations are mutually impossible under the motion model")
		}
		if tau+1 == t {
			copy(atT, cur)
		}
	}
	if t < end {
		// Future observations reweight the past: multiply by the
		// backward likelihood L[s] = P(observations in (t, end] | s at t).
		// Scattering over the transposed matrix (dst[i] += like[j]·M[i,j])
		// lets the same frontier machinery track the live support, which
		// collapses to the last observation's support on the first fuse.
		like := fpool.Get(n)
		lbuf := fpool.Get(n)
		for i := range like {
			like[i] = 1
		}
		front.dense = true
		mt := chain.Transposed()
		obsIdx := seg.Len() - 1
		for tau := end; tau > t; tau-- {
			for obsIdx >= 0 && int(seg.Times[obsIdx]) > tau {
				obsIdx--
			}
			if obsIdx >= 0 && int(seg.Times[obsIdx]) == tau {
				oIds, oProbs := seg.Supp(obsIdx)
				fuse1(like, scratch, oIds, oProbs)
				front.reset(oIds, lbuf)
			}
			front.step(lbuf, like, mt, 1, 1) // transposed scatter: dst = M·like
			like, lbuf = lbuf, like
		}
		for i := range atT {
			atT[i] *= like[i]
		}
		fpool.Put(like)
		fpool.Put(lbuf)
	}
	mass = 0.0
	for _, v := range atT {
		mass += v
	}
	if mass == 0 {
		return nil, fmt.Errorf("core: observations are mutually impossible under the motion model")
	}
	inv = 1 / mass
	nnz := 0
	for _, v := range atT {
		if v != 0 {
			nnz++
		}
	}
	data := make([]float64, n)
	if float64(nnz) > sparse.DenseThreshold*float64(n) {
		for i, v := range atT {
			data[i] = v * inv
		}
		return markov.FromVec(sparse.AdoptDense(data)), nil
	}
	supp := make([]int, 0, nnz)
	for i, v := range atT {
		if v != 0 {
			data[i] = v * inv
			supp = append(supp, i)
		}
	}
	return markov.FromVec(sparse.AdoptSparse(data, supp)), nil
}

// segForObject returns the database plane's segment for exactly this
// object version, falling back to a transient row→column conversion for
// free-standing objects (plane-less callers, stale pointers, objects not
// inserted into the kern's database).
func segForObject(cols *ObsColumns, o *Object) ObsSeg {
	if cols != nil {
		if seg, ok := cols.segmentOf(o); ok {
			return seg
		}
	}
	return segFromObservations(o.Observations)
}
