package core

import "ust/internal/markov"

// The columnar observation plane. Observations live twice: as the
// row-oriented []Observation on each Object (the pinned public surface
// every evaluator, the wire codec and the shard router see) and as
// per-object column segments — parallel times/support/mass arrays — that
// the vectorized multi-observation and posterior kernels consume and the
// store's v2 format serializes as delta-encoded blocks. The Database
// keeps the plane in sync on Add/ReplaceObject; the store's mapped load
// path pre-seeds it so bulk ingest never re-derives columns from boxed
// pdfs.

// ObsSeg is one object's observations in columnar form: four parallel
// arrays. Entry k of Times is the k-th observation's timestamp;
// IDs[Off[k]:Off[k+1]] are its pdf's support states in ascending order
// and Probs[Off[k]:Off[k+1]] the matching mass values, bit-identical to
// the boxed pdf. Segments are immutable once published; the slices may
// alias shared arenas (the store's adopted prob column) and must never
// be written through.
type ObsSeg struct {
	Times []int32   // observation timestamps, ascending
	Off   []int32   // len(Times)+1 offsets into IDs/Probs
	IDs   []int32   // support state ids, ascending within an observation
	Probs []float64 // mass values parallel to IDs
}

// Len returns the number of observations in the segment.
func (s ObsSeg) Len() int { return len(s.Times) }

// Supp returns the k-th observation's support and mass columns.
func (s ObsSeg) Supp(k int) ([]int32, []float64) {
	return s.IDs[s.Off[k]:s.Off[k+1]], s.Probs[s.Off[k]:s.Off[k+1]]
}

// segFromObservations derives the column segment of a sorted observation
// list — the row→column conversion run once per Add/ReplaceObject (and
// by the free-standing kernels when no plane is available).
func segFromObservations(obs []Observation) ObsSeg {
	seg := ObsSeg{
		Times: make([]int32, len(obs)),
		Off:   make([]int32, len(obs)+1),
	}
	for k, ob := range obs {
		seg.Times[k] = int32(ob.Time)
		sup := ob.PDF.Support()
		for _, s := range sup {
			seg.IDs = append(seg.IDs, int32(s))
			seg.Probs = append(seg.Probs, ob.PDF.P(s))
		}
		seg.Off[k+1] = int32(len(seg.IDs))
	}
	return seg
}

// reuseSeg builds the updated object's segment by copying column ranges
// from the previous segment wherever an observation is carried over
// unchanged (same time, same pdf pointer — WithObservation shares pdf
// pointers, so pointer identity is content identity) and extracting from
// the boxed pdf only for genuinely new or replaced observations. This
// keeps the per-ingest column cost proportional to the appended
// observation, not the object's history.
func reuseSeg(prev *Object, prevSeg ObsSeg, updated *Object) ObsSeg {
	seg := ObsSeg{
		Times: make([]int32, len(updated.Observations)),
		Off:   make([]int32, len(updated.Observations)+1),
		// Size the columns for "previous history plus a point-ish new
		// observation" — the dominant ingest shape — so the appends below
		// almost never regrow.
		IDs:   make([]int32, 0, len(prevSeg.IDs)+4),
		Probs: make([]float64, 0, len(prevSeg.IDs)+4),
	}
	pk := 0
	for k, ob := range updated.Observations {
		seg.Times[k] = int32(ob.Time)
		for pk < len(prev.Observations) && prev.Observations[pk].Time < ob.Time {
			pk++
		}
		if pk < len(prev.Observations) &&
			prev.Observations[pk].Time == ob.Time && prev.Observations[pk].PDF == ob.PDF {
			ids, probs := prevSeg.Supp(pk)
			seg.IDs = append(seg.IDs, ids...)
			seg.Probs = append(seg.Probs, probs...)
		} else {
			sup := ob.PDF.Support()
			for _, s := range sup {
				seg.IDs = append(seg.IDs, int32(s))
				seg.Probs = append(seg.Probs, ob.PDF.P(s))
			}
		}
		seg.Off[k+1] = int32(len(seg.IDs))
	}
	return seg
}

// ObsColumns is a database's columnar observation plane: the directory
// of per-object column segments. Each entry remembers the serial of the
// Object it describes, so kernels can pair a segment with an object by
// construction identity — a stale object pointer (a lazy stream
// interleaved with ReplaceObject) never silently picks up its
// successor's columns. Mutation follows the Database's own concurrency
// contract (no concurrent mutation; concurrent reads are fine between
// mutations).
type ObsColumns struct {
	segs map[int]colEntry
}

type colEntry struct {
	serial uint64 // Object.serial; 0 = pre-seeded, not yet claimed by Add
	seg    ObsSeg
}

// NewObsColumns returns an empty plane. The store's bulk loader fills it
// with AppendSeg and installs it via NewDatabaseWithColumns.
func NewObsColumns() *ObsColumns {
	return &ObsColumns{segs: map[int]colEntry{}}
}

// AppendSeg publishes a pre-built segment for object id, adopting the
// slices without copying. The caller warrants the ObsSeg invariants
// (ascending unique times, per-observation ascending unique support,
// offsets consistent) — the store decoder validates them while decoding
// its delta-encoded blocks. The entry is claimed by the Add of the
// matching object.
func (c *ObsColumns) AppendSeg(id int, seg ObsSeg) { c.segs[id] = colEntry{seg: seg} }

// Segment returns object id's current column segment — the store
// writer's iteration entry point.
func (c *ObsColumns) Segment(id int) (ObsSeg, bool) {
	e, ok := c.segs[id]
	return e.seg, ok
}

// segmentOf returns the segment describing exactly this object version.
func (c *ObsColumns) segmentOf(o *Object) (ObsSeg, bool) {
	e, ok := c.segs[o.ID]
	if !ok || e.serial != o.serial {
		return ObsSeg{}, false
	}
	return e.seg, true
}

// Len returns the number of objects with a published segment.
func (c *ObsColumns) Len() int { return len(c.segs) }

// add derives (or, when the plane was pre-seeded by the bulk loader,
// adopts) the segment for a newly inserted object.
func (c *ObsColumns) add(o *Object) {
	if e, ok := c.segs[o.ID]; ok && e.serial == 0 && e.seg.Len() == len(o.Observations) {
		e.serial = o.serial // claim the pre-seeded columns
		c.segs[o.ID] = e
		return
	}
	c.segs[o.ID] = colEntry{serial: o.serial, seg: segFromObservations(o.Observations)}
}

// replace swaps in the updated object's segment, reusing the previous
// object's columns for carried-over observations.
func (c *ObsColumns) replace(prev, updated *Object) {
	if e, ok := c.segs[prev.ID]; ok && e.serial == prev.serial {
		c.segs[updated.ID] = colEntry{serial: updated.serial, seg: reuseSeg(prev, e.seg, updated)}
		return
	}
	c.segs[updated.ID] = colEntry{serial: updated.serial, seg: segFromObservations(updated.Observations)}
}

// remove drops the segment of a departed object.
func (c *ObsColumns) remove(id int) { delete(c.segs, id) }

// Columns returns the database's columnar observation plane. The
// returned plane is live: it reflects subsequent Add/ReplaceObject
// calls.
func (db *Database) Columns() *ObsColumns { return db.cols }

// NewDatabaseWithColumns creates a database whose columnar plane is
// pre-seeded — the store's zero-copy load path builds the plane straight
// from the file's delta-encoded blocks, and subsequent Add calls adopt
// the matching segment instead of re-deriving it from boxed pdfs.
func NewDatabaseWithColumns(defaultChain *markov.Chain, cols *ObsColumns) *Database {
	db := NewDatabase(defaultChain)
	if cols != nil {
		if cols.segs == nil {
			cols.segs = map[int]colEntry{}
		}
		db.cols = cols
	}
	return db
}
