package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ust/internal/markov"
)

// segEqual compares two column segments element-wise.
func segEqual(a, b ObsSeg) bool {
	if len(a.Times) != len(b.Times) || len(a.Off) != len(b.Off) ||
		len(a.IDs) != len(b.IDs) || len(a.Probs) != len(b.Probs) {
		return false
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			return false
		}
	}
	for i := range a.Off {
		if a.Off[i] != b.Off[i] {
			return false
		}
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] || a.Probs[i] != b.Probs[i] {
			return false
		}
	}
	return true
}

// TestObsColumnsTracksMutations pins the plane invariant: after any
// Add/ReplaceObject sequence, segmentOf(o) succeeds for every live
// object and matches a fresh row→column conversion bit-exactly.
func TestObsColumnsTracksMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 12
	chain := randomChainN(rng, n, 3)
	db := NewDatabase(chain)

	for id := 0; id < 6; id++ {
		obs := []Observation{{Time: 0, PDF: markov.PointDistribution(n, rng.Intn(n))}}
		for k := 0; k < rng.Intn(3); k++ {
			obs = append(obs, Observation{
				Time: 1 + 2*k,
				PDF:  markov.UniformOver(n, rng.Perm(n)[:1+rng.Intn(3)]),
			})
		}
		o, err := NewObject(id, nil, obs...)
		if err != nil {
			t.Fatal(err)
		}
		db.MustAdd(o)
	}
	checkPlane := func(stage string) {
		t.Helper()
		if db.Columns().Len() != db.Len() {
			t.Fatalf("%s: plane has %d segments for %d objects", stage, db.Columns().Len(), db.Len())
		}
		for _, o := range db.Objects() {
			seg, ok := db.Columns().segmentOf(o)
			if !ok {
				t.Fatalf("%s: no segment for live object %d", stage, o.ID)
			}
			if !segEqual(seg, segFromObservations(o.Observations)) {
				t.Fatalf("%s: object %d segment diverged from its observations", stage, o.ID)
			}
		}
	}
	checkPlane("after add")

	// Observation updates: the updated object's segment must follow it,
	// and the superseded object must no longer resolve.
	for round := 0; round < 8; round++ {
		id := rng.Intn(db.Len())
		old := db.Get(id)
		updated, err := old.WithObservation(Observation{
			Time: 20 + round,
			PDF:  markov.UniformOver(n, rng.Perm(n)[:1+rng.Intn(4)]),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.ReplaceObject(updated); err != nil {
			t.Fatal(err)
		}
		if _, ok := db.Columns().segmentOf(old); ok {
			t.Fatalf("round %d: superseded object %d still resolves a segment", round, id)
		}
	}
	checkPlane("after replace")
}

// TestPreSeededColumnsClaimed pins the bulk-load contract: a segment
// published with AppendSeg before the matching Add is adopted (claimed
// by serial) rather than re-derived, and mismatched pre-seeds are
// discarded in favour of a fresh conversion.
func TestPreSeededColumnsClaimed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 8
	chain := randomChainN(rng, n, 3)

	o := MustObject(7, nil,
		Observation{Time: 0, PDF: markov.PointDistribution(n, 2)},
		Observation{Time: 3, PDF: markov.UniformOver(n, []int{1, 4, 5})})
	seg := segFromObservations(o.Observations)

	cols := NewObsColumns()
	cols.AppendSeg(7, seg)
	db := NewDatabaseWithColumns(chain, cols)
	db.MustAdd(o)

	got, ok := db.Columns().segmentOf(o)
	if !ok {
		t.Fatal("pre-seeded segment not claimed by Add")
	}
	if &got.Probs[0] != &seg.Probs[0] {
		t.Fatal("Add re-derived columns instead of adopting the pre-seeded segment")
	}

	// A stale pre-seed (wrong observation count) must be replaced, not
	// adopted.
	cols2 := NewObsColumns()
	cols2.AppendSeg(7, segFromObservations(o.Observations[:1]))
	db2 := NewDatabaseWithColumns(chain, cols2)
	db2.MustAdd(o)
	got2, ok := db2.Columns().segmentOf(o)
	if !ok || !segEqual(got2, seg) {
		t.Fatal("mismatched pre-seed was not replaced by a fresh conversion")
	}
}

// TestWithObservationSingleCopy pins the ingest fast path: appending a
// sighting copies the observation slice exactly once (2 allocations:
// the merged slice and the Object), keeps time order for out-of-order
// arrivals, and reports the same validation errors as NewObject.
func TestWithObservationSingleCopy(t *testing.T) {
	n := 6
	o := MustObject(1, nil,
		Observation{Time: 0, PDF: markov.PointDistribution(n, 0)},
		Observation{Time: 4, PDF: markov.PointDistribution(n, 3)})
	late := Observation{Time: 2, PDF: markov.PointDistribution(n, 1)}

	allocs := testing.AllocsPerRun(100, func() {
		if _, err := o.WithObservation(late); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("WithObservation allocates %.0f times per append, want <= 2 (single copy)", allocs)
	}

	got, err := o.WithObservation(late)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewObject(1, nil, append(append([]Observation(nil), o.Observations...), late)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Observations) != len(want.Observations) {
		t.Fatalf("merged %d observations, want %d", len(got.Observations), len(want.Observations))
	}
	for i := range got.Observations {
		if got.Observations[i] != want.Observations[i] {
			t.Fatalf("observation %d: %+v, want %+v", i, got.Observations[i], want.Observations[i])
		}
	}
	if got.serial == o.serial {
		t.Fatal("WithObservation did not mint a new serial")
	}

	// Error parity with NewObject for every rejected input.
	bad := []struct {
		obs  Observation
		want string
	}{
		{Observation{Time: -1, PDF: markov.PointDistribution(n, 0)}, "negative observation time"},
		{Observation{Time: 9, PDF: nil}, "nil pdf"},
		{Observation{Time: 9, PDF: markov.NewDistribution(n)}, "carries no mass"},
		{Observation{Time: 4, PDF: markov.PointDistribution(n, 0)}, "duplicate observation time 4"},
	}
	for _, tc := range bad {
		_, err := o.WithObservation(tc.obs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("WithObservation(%+v): err = %v, want substring %q", tc.obs, err, tc.want)
		}
	}
}

// TestColumnarKernelsMatchRow cross-checks the vectorized column
// kernels against the retained row-oriented baselines on random
// multi-observation instances.
func TestColumnarKernelsMatchRow(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(5)
		chain := randomChainN(rng, n, 2+rng.Intn(2))
		obs := []Observation{{Time: 0, PDF: markov.UniformOver(n, rng.Perm(n)[:1+rng.Intn(2)])}}
		for k := 0; k < 1+rng.Intn(3); k++ {
			obs = append(obs, Observation{
				Time: obs[len(obs)-1].Time + 1 + rng.Intn(2),
				PDF:  markov.UniformOver(n, rng.Perm(n)[:1+rng.Intn(n-1)]),
			})
		}
		horizon := obs[len(obs)-1].Time + 1
		q := NewQuery(rng.Perm(n)[:1+rng.Intn(2)], []int{1 + rng.Intn(horizon)})
		w, err := compile(q, n)
		if err != nil {
			t.Fatal(err)
		}

		col, colErr := existsMultiObs(context.Background(), chain, obs, w)
		row, rowErr := existsMultiObsRow(context.Background(), chain, obs, w)
		if (colErr == nil) != (rowErr == nil) {
			t.Fatalf("trial %d: exists error mismatch: %v vs %v", trial, colErr, rowErr)
		}
		if colErr == nil && math.Abs(col-row) > 1e-12 {
			t.Fatalf("trial %d: columnar P∃ = %g, row %g", trial, col, row)
		}

		tq := rng.Intn(horizon + 1)
		cd, cdErr := posteriorAtSeg(chain, segFromObservations(obs), tq, nil)
		rd, rdErr := posteriorAtRow(chain, obs, tq)
		if (cdErr == nil) != (rdErr == nil) {
			t.Fatalf("trial %d: posterior error mismatch: %v vs %v", trial, cdErr, rdErr)
		}
		if cdErr != nil {
			continue
		}
		for s := 0; s < n; s++ {
			if math.Abs(cd.P(s)-rd.P(s)) > 1e-12 {
				t.Fatalf("trial %d: posterior(t=%d) state %d: columnar %g, row %g",
					trial, tq, s, cd.P(s), rd.P(s))
			}
		}
	}
}

// TestPerObjectCacheAcrossIngest pins the serial-keyed caching: repeat
// posterior and multi-observation evaluations of an UNCHANGED object
// stay cached across ingest of other objects (generation advances), and
// only the changed object recomputes.
func TestPerObjectCacheAcrossIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 10
	chain := randomChainN(rng, n, 3)
	db := NewDatabase(chain)
	o := MustObject(0, nil,
		Observation{Time: 0, PDF: markov.PointDistribution(n, 1)},
		Observation{Time: 4, PDF: markov.UniformOver(n, []int{2, 3, 5, 7})})
	db.MustAdd(o)
	e := NewEngine(db, Options{})

	if _, err := e.Marginal(o, 2); err != nil {
		t.Fatal(err)
	}
	base := e.CacheStats()
	if _, err := e.Marginal(o, 2); err != nil {
		t.Fatal(err)
	}
	s := e.CacheStats()
	if s.Misses != base.Misses || s.Hits != base.Hits+1 {
		t.Fatalf("repeat Marginal not cached: before %+v after %+v", base, s)
	}

	// Ingest a different object: the generation advances, but the
	// serial-keyed posterior of the unchanged object must stay warm.
	if err := db.AddSimple(99, markov.PointDistribution(n, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Marginal(o, 2); err != nil {
		t.Fatal(err)
	}
	s2 := e.CacheStats()
	if s2.Misses != s.Misses {
		t.Fatalf("ingest of object 99 expired object 0's cached posterior: %+v -> %+v", s, s2)
	}

	// Same contract for the multi-observation P∃ scalar through Evaluate.
	req := NewRequest(PredicateExists, WithStates(Interval(2, 5)), WithTimes(Interval(1, 5)))
	if _, err := e.Evaluate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	r2, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cache.Misses != 0 {
		t.Fatalf("repeat multi-obs Evaluate not fully cached: %+v", r2.Cache)
	}
}
