package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/gen"
	"ust/internal/markov"
	"ust/internal/sparse"
)

// Cross-validation: the independent implementations (object-based,
// query-based, materialized-augmented, brute-force possible worlds,
// Monte-Carlo) must agree on randomized instances.

// randomChainN builds a random chain over n states with ≤ maxOut
// successors per state.
func randomChainN(rng *rand.Rand, n, maxOut int) *markov.Chain {
	m := sparse.FromRows(n, n, func(i int) ([]int, []float64) {
		k := 1 + rng.Intn(maxOut)
		seen := map[int]bool{}
		var idx []int
		for len(idx) < k {
			j := rng.Intn(n)
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
			}
		}
		vals := make([]float64, len(idx))
		s := 0.0
		for p := range vals {
			vals[p] = rng.Float64() + 1e-3
			s += vals[p]
		}
		for p := range vals {
			vals[p] /= s
		}
		return idx, vals
	})
	return markov.MustChain(m)
}

// randomInstance builds a tiny random database with one object plus a
// random query, sized for brute-force enumeration.
func randomInstance(rng *rand.Rand) (*Engine, *Object, Query) {
	n := 3 + rng.Intn(4)       // 3-6 states
	maxOut := 2 + rng.Intn(2)  // 2-3 successors
	horizon := 2 + rng.Intn(5) // query horizon 2-6
	chain := randomChainN(rng, n, maxOut)
	db := NewDatabase(chain)

	spread := 1 + rng.Intn(2)
	states := rng.Perm(n)[:spread]
	weights := make([]float64, spread)
	for i := range weights {
		weights[i] = rng.Float64() + 0.1
	}
	pdf, err := markov.WeightedOver(n, states, weights)
	if err != nil {
		panic(err)
	}
	o := MustObject(1, nil, Observation{Time: 0, PDF: pdf})
	db.MustAdd(o)

	var qStates []int
	for s := 0; s < n; s++ {
		if rng.Float64() < 0.4 {
			qStates = append(qStates, s)
		}
	}
	if len(qStates) == 0 {
		qStates = []int{rng.Intn(n)}
	}
	var qTimes []int
	for t := 0; t <= horizon; t++ {
		if rng.Float64() < 0.5 {
			qTimes = append(qTimes, t)
		}
	}
	if len(qTimes) == 0 {
		qTimes = []int{horizon}
	}
	return NewEngine(db, Options{}), o, NewQuery(qStates, qTimes)
}

func TestExistsOBMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		ob, err := e.ExistsOB(o, q)
		if err != nil {
			return false
		}
		bf, err := BruteForce(e.db.ChainOf(o), o, q)
		if err != nil {
			return false
		}
		return math.Abs(ob-bf.PExists) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestExistsQBMatchesOBQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		ob, err := e.ExistsOB(o, q)
		if err != nil {
			return false
		}
		res, err := e.ExistsQB(q)
		if err != nil {
			return false
		}
		return math.Abs(ob-res[0].Prob) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAugmentedMatchesImplicitQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		implicit, err := e.ExistsOB(o, q)
		if err != nil {
			return false
		}
		init := o.First().PDF.Clone()
		init.Vec().Normalize()
		aug, err := ExistsOBAugmented(e.db.ChainOf(o), q.States, q.Times, init.Vec(), 0)
		if err != nil {
			return false
		}
		augQB, err := ExistsQBAugmented(e.db.ChainOf(o), q.States, q.Times, init.Vec(), 0)
		if err != nil {
			return false
		}
		return math.Abs(implicit-aug) < 1e-9 && math.Abs(implicit-augQB) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestForAllComplementIdentityQuick(t *testing.T) {
	// P∀(S□) must equal brute force's for-all mass, and the complement
	// identity must hold: P∀(S□) = 1 − P∃(S \ S□).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		fa, err := e.ForAllOB(o, q)
		if err != nil {
			return false
		}
		bf, err := BruteForce(e.db.ChainOf(o), o, q)
		if err != nil {
			return false
		}
		if math.Abs(fa-bf.PForAll) > 1e-9 {
			return false
		}
		// Explicit complement query.
		n := e.db.ChainOf(o).NumStates()
		inQ := map[int]bool{}
		for _, s := range q.States {
			inQ[s] = true
		}
		var comp []int
		for s := 0; s < n; s++ {
			if !inQ[s] {
				comp = append(comp, s)
			}
		}
		escape, err := e.ExistsOB(o, NewQuery(comp, q.Times))
		if err != nil {
			return false
		}
		return math.Abs(fa-(1-escape)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKTimesInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		dist, err := e.KTimesOB(o, q)
		if err != nil {
			return false
		}
		// Σ_k P(k) = 1.
		sum := 0.0
		for _, p := range dist {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// P∃ = Σ_{k≥1} P(k).
		ob, err := e.ExistsOB(o, q)
		if err != nil {
			return false
		}
		atLeastOnce := 0.0
		for _, p := range dist[1:] {
			atLeastOnce += p
		}
		if math.Abs(ob-atLeastOnce) > 1e-9 {
			return false
		}
		// P∀ = P(k = |T□|).
		fa, err := e.ForAllOB(o, q)
		if err != nil {
			return false
		}
		if math.Abs(fa-dist[len(dist)-1]) > 1e-9 {
			return false
		}
		// Exact match with brute force.
		bf, err := BruteForce(e.db.ChainOf(o), o, q)
		if err != nil {
			return false
		}
		for k := range dist {
			if math.Abs(dist[k]-bf.KDist[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKTimesQBMatchesOBQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		ob, err := e.KTimesOB(o, q)
		if err != nil {
			return false
		}
		qb, err := e.KTimesQB(q)
		if err != nil {
			return false
		}
		for k := range ob {
			if math.Abs(ob[k]-qb[0].Dist[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiObsMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		chain := randomChainN(rng, n, 2+rng.Intn(2))
		db := NewDatabase(chain)

		horizon := 3 + rng.Intn(3)
		// First observation at t=0; second somewhere in (0, horizon+1].
		obs2Time := 1 + rng.Intn(horizon+1)
		obs := []Observation{
			{Time: 0, PDF: markov.PointDistribution(n, rng.Intn(n))},
			{Time: obs2Time, PDF: markov.UniformOver(n, rng.Perm(n)[:1+rng.Intn(n-1)])},
		}
		o, err := NewObject(1, nil, obs...)
		if err != nil {
			return false
		}
		db.MustAdd(o)
		e := NewEngine(db, Options{})

		q := NewQuery([]int{rng.Intn(n)}, []int{1 + rng.Intn(horizon)})
		got, err := e.ExistsOB(o, q)
		if err != nil {
			// Inconsistent observations are possible in random setups;
			// brute force must then fail too.
			_, bfErr := BruteForce(chain, o, q)
			return bfErr != nil
		}
		bf, err := BruteForce(chain, o, q)
		if err != nil {
			return false
		}
		return math.Abs(got-bf.PExists) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestThreeObservationsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 4
		chain := randomChainN(rng, n, 3)
		db := NewDatabase(chain)
		obs := []Observation{
			{Time: 0, PDF: markov.UniformOver(n, []int{0, 1})},
			{Time: 2, PDF: markov.UniformOver(n, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})},
			{Time: 4, PDF: markov.UniformOver(n, []int{rng.Intn(n), rng.Intn(n)})},
		}
		o, err := NewObject(1, nil, obs...)
		if err != nil {
			t.Fatalf("NewObject: %v", err)
		}
		db.MustAdd(o)
		e := NewEngine(db, Options{})
		q := NewQuery([]int{1, 2}, []int{1, 3})
		got, gotErr := e.ExistsOB(o, q)
		bf, bfErr := BruteForce(chain, o, q)
		if (gotErr == nil) != (bfErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, gotErr, bfErr)
		}
		if gotErr != nil {
			continue
		}
		if math.Abs(got-bf.PExists) > 1e-9 {
			t.Fatalf("trial %d: multi-obs P∃ = %g, brute force %g", trial, got, bf.PExists)
		}
	}
}

func TestObservationAfterWindowStillReweights(t *testing.T) {
	// An observation *after* the query window changes the answer: the
	// paper's Section VI argues later observations exclude worlds.
	chain := paperChainVI(t)
	db := NewDatabase(chain)
	single := MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 0)})
	db.MustAdd(single)
	e := NewEngine(db, Options{})
	q := NewQuery([]int{0, 1}, []int{1, 2})
	pSingle, err := e.ExistsOB(single, q)
	if err != nil {
		t.Fatalf("single obs: %v", err)
	}
	multi := MustObject(2, nil,
		Observation{Time: 0, PDF: markov.PointDistribution(3, 0)},
		Observation{Time: 3, PDF: markov.PointDistribution(3, 1)},
	)
	pMulti, err := existsMultiObsForTest(e, multi, q)
	if err != nil {
		t.Fatalf("multi obs: %v", err)
	}
	if math.Abs(pSingle-pMulti) < 1e-12 {
		t.Error("posterior observation did not change the query probability")
	}
}

func existsMultiObsForTest(e *Engine, o *Object, q Query) (float64, error) {
	ch := e.db.DefaultChain()
	w, err := compile(q, ch.NumStates())
	if err != nil {
		return 0, err
	}
	return existsMultiObs(context.Background(), ch, o.Observations, w)
}

func TestMonteCarloConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	chain := randomChainN(rng, 6, 3)
	db := NewDatabase(chain)
	o := MustObject(1, nil, Observation{Time: 0, PDF: markov.UniformOver(6, []int{0, 1})})
	db.MustAdd(o)
	e := NewEngine(db, Options{})
	q := NewQuery([]int{2, 3}, []int{2, 3, 4})

	exact, err := e.ExistsOB(o, q)
	if err != nil {
		t.Fatalf("ExistsOB: %v", err)
	}
	est, err := MonteCarloExists(chain, o, q, 200000, rng)
	if err != nil {
		t.Fatalf("MonteCarloExists: %v", err)
	}
	// 200k samples: σ ≤ 0.5/sqrt(200000) ≈ 0.0011; allow 5σ.
	if math.Abs(est-exact) > 0.006 {
		t.Errorf("MC estimate %g vs exact %g", est, exact)
	}

	exactFA, err := e.ForAllOB(o, q)
	if err != nil {
		t.Fatalf("ForAllOB: %v", err)
	}
	estFA, err := MonteCarloForAll(chain, o, q, 200000, rng)
	if err != nil {
		t.Fatalf("MonteCarloForAll: %v", err)
	}
	if math.Abs(estFA-exactFA) > 0.006 {
		t.Errorf("MC for-all estimate %g vs exact %g", estFA, exactFA)
	}

	exactK, err := e.KTimesOB(o, q)
	if err != nil {
		t.Fatalf("KTimesOB: %v", err)
	}
	estK, err := MonteCarloKTimes(chain, o, q, 200000, rng)
	if err != nil {
		t.Fatalf("MonteCarloKTimes: %v", err)
	}
	for k := range exactK {
		if math.Abs(estK[k]-exactK[k]) > 0.006 {
			t.Errorf("MC k=%d estimate %g vs exact %g", k, estK[k], exactK[k])
		}
	}
}

func TestMonteCarloMultiObsWeighting(t *testing.T) {
	// The weighted MC estimator must agree with the exact multi-obs
	// result within sampling error.
	chain := paperChainVI(t)
	db := NewDatabase(chain)
	o := MustObject(1, nil,
		Observation{Time: 0, PDF: markov.UniformOver(3, []int{0, 1})},
		Observation{Time: 3, PDF: markov.UniformOver(3, []int{1, 2})},
	)
	db.MustAdd(o)
	e := NewEngine(db, Options{})
	q := NewQuery([]int{0, 1}, []int{1, 2})
	exact, err := e.ExistsOB(o, q)
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	est, err := MonteCarloExists(chain, o, q, 300000, rng)
	if err != nil {
		t.Fatalf("MC: %v", err)
	}
	if math.Abs(est-exact) > 0.01 {
		t.Errorf("weighted MC %g vs exact %g", est, exact)
	}
}

func TestMarginalMassPreservedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, _ := randomInstance(rng)
		for _, tt := range []int{0, 1, 3} {
			m, err := e.Marginal(o, tt)
			if err != nil {
				return false
			}
			if err := m.Validate(1e-9); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTrajectoryObservationsConsistent bridges the gen trajectory
// workload with the query engine: observation sequences emitted from a
// hidden true path are always satisfiable (Equation 1's denominator is
// positive), and the smoothed posterior keeps mass on the truth.
func TestTrajectoryObservationsConsistent(t *testing.T) {
	p := gen.Params{NumObjects: 1, NumStates: 120, ObjectSpread: 1, StateSpread: 4, MaxStep: 12, Seed: 2}
	rng := rand.New(rand.NewSource(2))
	chain, err := gen.GenerateChain(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := gen.GenerateTrajectories(chain, 20, gen.TrajectoryParams{
		Horizon:          10,
		ObservationTimes: []int{0, 5, 10},
		Noise:            1,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(chain)
	for id, tr := range trs {
		obs := make([]Observation, len(tr.Sightings))
		for k, s := range tr.Sightings {
			obs[k] = Observation{Time: s.Time, PDF: s.PDF}
		}
		o, err := NewObject(id, nil, obs...)
		if err != nil {
			t.Fatal(err)
		}
		db.MustAdd(o)
	}
	e := NewEngine(db, Options{})
	q := NewQuery(Interval(40, 80), Interval(3, 7))
	for id, tr := range trs {
		o := db.Get(id)
		if _, err := e.ExistsOB(o, q); err != nil {
			t.Fatalf("object %d: observations reported inconsistent: %v", id, err)
		}
		for _, tt := range []int{2, 7} {
			post, err := PosteriorAt(chain, o.Observations, tt)
			if err != nil {
				t.Fatalf("object %d posterior at %d: %v", id, tt, err)
			}
			if post.P(tr.Path[tt]) <= 0 {
				t.Fatalf("object %d: posterior at t=%d excludes the true state", id, tt)
			}
		}
	}
}
