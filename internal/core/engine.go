package core

import (
	"context"
	"fmt"
	"sort"

	"ust/internal/sparse"
)

// Strategy selects the evaluation plan for database-wide queries.
type Strategy int

const (
	// StrategyQueryBased runs one backward sweep per chain group and a
	// dot product per object (Section V-B). The default: typically
	// orders of magnitude faster on large databases.
	StrategyQueryBased Strategy = iota
	// StrategyObjectBased runs a forward pass per object (Section V-A).
	StrategyObjectBased
	// StrategyMonteCarlo samples trajectories per object — the paper's
	// baseline competitor. Approximate.
	StrategyMonteCarlo
)

func (s Strategy) String() string {
	switch s {
	case StrategyQueryBased:
		return "query-based"
	case StrategyObjectBased:
		return "object-based"
	case StrategyMonteCarlo:
		return "monte-carlo"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultCacheBytes is the default byte budget of the engine's shared
// score cache: enough for ~80 dense sweeps over a 100k-state space.
const DefaultCacheBytes = 64 << 20

// Options tune an Engine. Every option can be overridden per request
// (WithStrategy, WithMonteCarloBudget, …).
type Options struct {
	// Strategy picks the default plan for Evaluate. Default:
	// query-based.
	Strategy Strategy
	// MonteCarloSamples is the per-object path budget for the
	// Monte-Carlo strategy. Default 100 (the paper's setting).
	MonteCarloSamples int
	// MonteCarloSeed seeds the sampler. The default (0) is a fixed seed:
	// results are reproducible unless the caller randomizes.
	MonteCarloSeed int64
	// CacheBytes bounds the engine-wide score cache that shares backward
	// sweeps across requests, Monitors and the CLIs (approximate payload
	// bytes, LRU beyond it). 0 selects DefaultCacheBytes; negative
	// disables engine-side caching entirely. Individual requests can opt
	// out with WithCache(false).
	CacheBytes int
	// Cache, when set, replaces the engine's private score cache with a
	// shared one (NewSharedCache) so several engines — the shards of a
	// router, or independent engines over related databases — compute
	// each distinct sweep once between them. Overrides CacheBytes.
	Cache *SharedCache
	// Sweeps, when set, extends the score cache's per-key single-flight
	// across process boundaries: wireable sweep kinds consult the tier
	// after a local miss, adopting a peer's payload or computing under a
	// fleet-wide lease (sweeptier.go). Requires caching to be enabled;
	// with the cache disabled the tier is ignored.
	Sweeps SweepTier
}

func (o Options) withDefaults() Options {
	if o.MonteCarloSamples <= 0 {
		o.MonteCarloSamples = 100
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = DefaultCacheBytes
	}
	return o
}

// Engine evaluates probabilistic spatio-temporal queries over a
// database. Evaluate and EvaluateSeq are the primary entry points; the
// per-variant methods (Exists, ForAll, KTimes, …) are compatibility
// wrappers over them.
type Engine struct {
	db   *Database
	opts Options
	// cache shares backward-sweep results engine-wide (nil when
	// disabled); pool recycles sweep scratch buffers and fpool the flat
	// lane blocks of the columnar multi-observation kernels.
	cache *scoreCache
	pool  *sparse.VecPool
	fpool *sparse.FloatPool
}

// NewEngine builds an engine over db with the given options.
func NewEngine(db *Database, opts Options) *Engine {
	if db == nil {
		panic("core: nil database")
	}
	e := &Engine{db: db, opts: opts.withDefaults(), pool: &sparse.VecPool{}, fpool: &sparse.FloatPool{}}
	switch {
	case e.opts.Cache != nil:
		e.opts.Cache.attach(db)
		e.cache = e.opts.Cache.cache
	case e.opts.CacheBytes > 0:
		e.cache = newScoreCache(e.opts.CacheBytes, db.Version)
	}
	return e
}

// Database returns the engine's database.
func (e *Engine) Database() *Database { return e.db }

// CacheStats snapshots the engine's score-cache counters. The zero value
// is returned when caching is disabled.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.snapshot()
}

// InvalidateCache drops every cached sweep immediately. Mutations
// through the Database already expire entries generation-wise; this is
// the manual override for callers mutating state the engine cannot see.
func (e *Engine) InvalidateCache() {
	if e.cache != nil {
		e.cache.invalidate()
	}
}

// Result is a per-object query answer. Prob is the predicate
// probability; for ktimes-requests Dist additionally carries the full
// visit-count distribution (Dist[k] = P(inside at exactly k query
// timestamps)) and Prob is the probability of at least one visit.
type Result struct {
	ObjectID int
	Prob     float64
	Dist     []float64 `json:",omitempty"`
}

// KResult is a per-object PSTkQ distribution: Dist[k] is the probability
// of being inside the window at exactly k query timestamps.
type KResult struct {
	ObjectID int
	Dist     []float64
}

// Exists answers the PST∃Q (Definition 2) for every object, using the
// engine's default strategy. Thin wrapper over Evaluate.
func (e *Engine) Exists(q Query) ([]Result, error) {
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateExists, WithWindow(q)))
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// ForAll answers the PST∀Q (Definition 3) for every object. Thin
// wrapper over Evaluate.
func (e *Engine) ForAll(q Query) ([]Result, error) {
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateForAll, WithWindow(q)))
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// KTimes answers the PSTkQ (Definition 4) for every object. Thin
// wrapper over Evaluate.
func (e *Engine) KTimes(q Query) ([]KResult, error) {
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateKTimes, WithWindow(q)))
	if err != nil {
		return nil, err
	}
	return toKResults(resp.Results), nil
}

// ExistsThreshold returns the objects whose PST∃Q probability is at
// least tau, sorted by descending probability. It is the natural
// "retrieve qualifying icebergs" entry point. Thin wrapper over
// Evaluate (which leaves threshold results in evaluation order).
func (e *Engine) ExistsThreshold(q Query, tau float64) ([]Result, error) {
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateExists,
		WithWindow(q), WithThreshold(tau)))
	if err != nil {
		return nil, err
	}
	out := resp.Results
	sort.Slice(out, func(a, b int) bool { return better(out[a], out[b]) })
	return out, nil
}
