package core

import (
	"fmt"
	"sort"
)

// Strategy selects the evaluation plan for database-wide queries.
type Strategy int

const (
	// StrategyQueryBased runs one backward sweep per chain group and a
	// dot product per object (Section V-B). The default: typically
	// orders of magnitude faster on large databases.
	StrategyQueryBased Strategy = iota
	// StrategyObjectBased runs a forward pass per object (Section V-A).
	StrategyObjectBased
	// StrategyMonteCarlo samples trajectories per object — the paper's
	// baseline competitor. Approximate.
	StrategyMonteCarlo
)

func (s Strategy) String() string {
	switch s {
	case StrategyQueryBased:
		return "query-based"
	case StrategyObjectBased:
		return "object-based"
	case StrategyMonteCarlo:
		return "monte-carlo"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options tune an Engine.
type Options struct {
	// Strategy picks the plan for Exists/ForAll/KTimes. Default:
	// query-based.
	Strategy Strategy
	// MonteCarloSamples is the per-object path budget for the
	// Monte-Carlo strategy. Default 100 (the paper's setting).
	MonteCarloSamples int
	// MonteCarloSeed seeds the sampler. The default (0) is a fixed seed:
	// results are reproducible unless the caller randomizes.
	MonteCarloSeed int64
}

func (o Options) withDefaults() Options {
	if o.MonteCarloSamples <= 0 {
		o.MonteCarloSamples = 100
	}
	return o
}

// Engine evaluates probabilistic spatio-temporal queries over a
// database.
type Engine struct {
	db   *Database
	opts Options
}

// NewEngine builds an engine over db with the given options.
func NewEngine(db *Database, opts Options) *Engine {
	if db == nil {
		panic("core: nil database")
	}
	return &Engine{db: db, opts: opts.withDefaults()}
}

// Database returns the engine's database.
func (e *Engine) Database() *Database { return e.db }

// Result is a per-object query probability.
type Result struct {
	ObjectID int
	Prob     float64
}

// KResult is a per-object PSTkQ distribution: Dist[k] is the probability
// of being inside the window at exactly k query timestamps.
type KResult struct {
	ObjectID int
	Dist     []float64
}

// Exists answers the PST∃Q (Definition 2) for every object, using the
// configured strategy.
func (e *Engine) Exists(q Query) ([]Result, error) {
	switch e.opts.Strategy {
	case StrategyObjectBased:
		return e.existsAllOB(q)
	case StrategyMonteCarlo:
		return e.monteCarloAll(q, predicateExists)
	default:
		return e.ExistsQB(q)
	}
}

// ForAll answers the PST∀Q (Definition 3) for every object.
func (e *Engine) ForAll(q Query) ([]Result, error) {
	switch e.opts.Strategy {
	case StrategyObjectBased:
		return e.forAllAllOB(q)
	case StrategyMonteCarlo:
		return e.monteCarloAll(q, predicateForAll)
	default:
		return e.ForAllQB(q)
	}
}

// KTimes answers the PSTkQ (Definition 4) for every object.
func (e *Engine) KTimes(q Query) ([]KResult, error) {
	switch e.opts.Strategy {
	case StrategyObjectBased:
		return e.kTimesAllOB(q)
	case StrategyMonteCarlo:
		return e.monteCarloKTimes(q)
	default:
		return e.KTimesQB(q)
	}
}

func (e *Engine) existsAllOB(q Query) ([]Result, error) {
	results := make([]Result, 0, e.db.Len())
	for _, grp := range e.db.groupByChain() {
		w, err := compile(q, grp.chain.NumStates())
		if err != nil {
			return nil, err
		}
		for _, o := range grp.objects {
			p, oerr := e.existsOB(o, grp.chain, w)
			if oerr != nil {
				return nil, oerr
			}
			results = append(results, Result{ObjectID: o.ID, Prob: p})
		}
	}
	return results, nil
}

func (e *Engine) forAllAllOB(q Query) ([]Result, error) {
	results := make([]Result, 0, e.db.Len())
	for _, grp := range e.db.groupByChain() {
		w, err := compile(q, grp.chain.NumStates())
		if err != nil {
			return nil, err
		}
		if w.k == 0 {
			for _, o := range grp.objects {
				results = append(results, Result{ObjectID: o.ID, Prob: 1})
			}
			continue
		}
		comp := w.complemented()
		for _, o := range grp.objects {
			p, oerr := e.existsOB(o, grp.chain, comp)
			if oerr != nil {
				return nil, oerr
			}
			results = append(results, Result{ObjectID: o.ID, Prob: 1 - p})
		}
	}
	return results, nil
}

func (e *Engine) kTimesAllOB(q Query) ([]KResult, error) {
	results := make([]KResult, 0, e.db.Len())
	for _, o := range e.db.Objects() {
		dist, err := e.KTimesOB(o, q)
		if err != nil {
			return nil, err
		}
		results = append(results, KResult{ObjectID: o.ID, Dist: dist})
	}
	return results, nil
}

// ExistsThreshold returns the objects whose PST∃Q probability is at
// least tau, sorted by descending probability. It uses the query-based
// scores and is the natural "retrieve qualifying icebergs" entry point.
func (e *Engine) ExistsThreshold(q Query, tau float64) ([]Result, error) {
	all, err := e.Exists(q)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, r := range all {
		if r.Prob >= tau {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Prob != out[b].Prob {
			return out[a].Prob > out[b].Prob
		}
		return out[a].ObjectID < out[b].ObjectID
	})
	return out, nil
}
