package core

import (
	"math"
	"testing"

	"ust/internal/markov"
)

func TestEngineStrategies(t *testing.T) {
	db, _ := paperDB(t)
	q := paperQueryV()
	for _, s := range []Strategy{StrategyQueryBased, StrategyObjectBased} {
		e := NewEngine(db, Options{Strategy: s})
		res, err := e.Exists(q)
		if err != nil {
			t.Fatalf("%v Exists: %v", s, err)
		}
		if math.Abs(res[0].Prob-0.864) > tol {
			t.Errorf("%v P∃ = %g, want 0.864", s, res[0].Prob)
		}
	}
	// Monte-Carlo: approximate but in the ballpark with enough samples.
	e := NewEngine(db, Options{Strategy: StrategyMonteCarlo, MonteCarloSamples: 100000})
	res, err := e.Exists(q)
	if err != nil {
		t.Fatalf("MC Exists: %v", err)
	}
	if math.Abs(res[0].Prob-0.864) > 0.01 {
		t.Errorf("MC P∃ = %g, want ≈ 0.864", res[0].Prob)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyQueryBased.String() != "query-based" ||
		StrategyObjectBased.String() != "object-based" ||
		StrategyMonteCarlo.String() != "monte-carlo" {
		t.Error("Strategy.String labels wrong")
	}
	if Strategy(42).String() != "Strategy(42)" {
		t.Error("unknown strategy label wrong")
	}
}

func TestEngineForAllStrategiesAgree(t *testing.T) {
	db, _ := paperDB(t)
	q := paperQueryV()
	qb, err := NewEngine(db, Options{Strategy: StrategyQueryBased}).ForAll(q)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := NewEngine(db, Options{Strategy: StrategyObjectBased}).ForAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qb[0].Prob-ob[0].Prob) > tol {
		t.Errorf("QB ForAll %g != OB ForAll %g", qb[0].Prob, ob[0].Prob)
	}
}

func TestEngineKTimesStrategiesAgree(t *testing.T) {
	db, _ := paperDB(t)
	q := paperQueryV()
	qb, err := NewEngine(db, Options{Strategy: StrategyQueryBased}).KTimes(q)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := NewEngine(db, Options{Strategy: StrategyObjectBased}).KTimes(q)
	if err != nil {
		t.Fatal(err)
	}
	for k := range qb[0].Dist {
		if math.Abs(qb[0].Dist[k]-ob[0].Dist[k]) > tol {
			t.Errorf("k=%d: QB %g != OB %g", k, qb[0].Dist[k], ob[0].Dist[k])
		}
	}
	mc, err := NewEngine(db, Options{Strategy: StrategyMonteCarlo, MonteCarloSamples: 100000}).KTimes(q)
	if err != nil {
		t.Fatal(err)
	}
	for k := range qb[0].Dist {
		if math.Abs(mc[0].Dist[k]-qb[0].Dist[k]) > 0.01 {
			t.Errorf("k=%d: MC %g too far from exact %g", k, mc[0].Dist[k], qb[0].Dist[k])
		}
	}
}

func TestEmptyQuerySides(t *testing.T) {
	db, o := paperDB(t)
	e := NewEngine(db, Options{})

	// Empty time set.
	qNoTimes := NewQuery([]int{0, 1}, nil)
	if p, err := e.ExistsOB(o, qNoTimes); err != nil || p != 0 {
		t.Errorf("P∃ with empty T = (%g, %v), want (0, nil)", p, err)
	}
	if p, err := e.ForAllOB(o, qNoTimes); err != nil || p != 1 {
		t.Errorf("P∀ with empty T = (%g, %v), want (1, nil)", p, err)
	}
	if dist, err := e.KTimesOB(o, qNoTimes); err != nil || len(dist) != 1 || dist[0] != 1 {
		t.Errorf("k-dist with empty T = (%v, %v), want ([1], nil)", dist, err)
	}
	res, err := e.Exists(qNoTimes)
	if err != nil || res[0].Prob != 0 {
		t.Errorf("engine Exists with empty T = %v, %v", res, err)
	}
	resFA, err := e.ForAll(qNoTimes)
	if err != nil || resFA[0].Prob != 1 {
		t.Errorf("engine ForAll with empty T = %v, %v", resFA, err)
	}

	// Empty state set: can never be inside.
	qNoStates := NewQuery(nil, []int{1, 2})
	if p, err := e.ExistsOB(o, qNoStates); err != nil || p != 0 {
		t.Errorf("P∃ with empty S = (%g, %v), want (0, nil)", p, err)
	}
	if p, err := e.ForAllOB(o, qNoStates); err != nil || p != 0 {
		t.Errorf("P∀ with empty S = (%g, %v), want (0, nil)", p, err)
	}
}

func TestQueryValidation(t *testing.T) {
	db, o := paperDB(t)
	e := NewEngine(db, Options{})
	if _, err := e.ExistsOB(o, NewQuery([]int{99}, []int{1})); err == nil {
		t.Error("out-of-range query state accepted")
	}
	if _, err := e.ExistsOB(o, Query{States: []int{0}, Times: []int{-1}}); err == nil {
		t.Error("negative query time accepted")
	}
	if _, err := e.ExistsQB(NewQuery([]int{99}, []int{1})); err == nil {
		t.Error("QB accepted out-of-range state")
	}
}

func TestObservedAfterHorizonErrors(t *testing.T) {
	db := NewDatabase(paperChainV(t))
	late := MustObject(7, nil, Observation{Time: 10, PDF: markov.PointDistribution(3, 0)})
	db.MustAdd(late)
	e := NewEngine(db, Options{})
	q := NewQuery([]int{0}, []int{2, 3})
	if _, err := e.ExistsOB(late, q); err == nil {
		t.Error("OB accepted observation after horizon")
	}
	if _, err := e.ExistsQB(q); err == nil {
		t.Error("QB accepted observation after horizon")
	}
	if _, err := e.KTimesOB(late, q); err == nil {
		t.Error("KTimes accepted observation after horizon")
	}
}

func TestNewQuerySortsAndDedupes(t *testing.T) {
	q := NewQuery([]int{5, 1, 5, 3}, []int{9, 2, 2})
	if len(q.States) != 3 || q.States[0] != 1 || q.States[2] != 5 {
		t.Errorf("States = %v", q.States)
	}
	if len(q.Times) != 2 || q.Times[0] != 2 || q.Times[1] != 9 {
		t.Errorf("Times = %v", q.Times)
	}
	if q.Horizon() != 9 {
		t.Errorf("Horizon = %d", q.Horizon())
	}
	if (Query{}).Horizon() != -1 {
		t.Error("empty query Horizon should be -1")
	}
}

func TestInterval(t *testing.T) {
	got := Interval(3, 6)
	if len(got) != 4 || got[0] != 3 || got[3] != 6 {
		t.Errorf("Interval = %v", got)
	}
	if Interval(5, 4) != nil {
		t.Error("inverted Interval should be nil")
	}
}

func TestMixedChainGroups(t *testing.T) {
	// Two objects on the default chain, one on its own chain: QB must
	// evaluate both groups correctly (Section V-C heterogeneous case).
	defaultChain := paperChainV(t)
	otherChain := paperChainVI(t)
	db := NewDatabase(defaultChain)
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(MustObject(2, otherChain, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(MustObject(3, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 2)}))
	e := NewEngine(db, Options{})
	q := paperQueryV()

	qbRes, err := e.ExistsQB(q)
	if err != nil {
		t.Fatalf("ExistsQB: %v", err)
	}
	if len(qbRes) != 3 {
		t.Fatalf("got %d results, want 3", len(qbRes))
	}
	byID := map[int]float64{}
	for _, r := range qbRes {
		byID[r.ObjectID] = r.Prob
	}
	// Cross-check each against OB.
	for _, o := range db.Objects() {
		ob, err := e.ExistsOB(o, q)
		if err != nil {
			t.Fatalf("ExistsOB(%d): %v", o.ID, err)
		}
		if math.Abs(ob-byID[o.ID]) > tol {
			t.Errorf("object %d: QB %g != OB %g", o.ID, byID[o.ID], ob)
		}
	}
	// Objects 1 and 2 start identically but follow different chains:
	// their probabilities must differ.
	if math.Abs(byID[1]-byID[2]) < 1e-9 {
		t.Error("different chains produced identical probabilities")
	}
}

func TestObserveAtDifferentTimes(t *testing.T) {
	// Objects observed at different timestamps share the QB machinery
	// via per-time scoring vectors.
	db := NewDatabase(paperChainV(t))
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(MustObject(2, nil, Observation{Time: 1, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(MustObject(3, nil, Observation{Time: 2, PDF: markov.PointDistribution(3, 1)}))
	e := NewEngine(db, Options{})
	q := paperQueryV()
	res, err := e.ExistsQB(q)
	if err != nil {
		t.Fatalf("ExistsQB: %v", err)
	}
	for _, r := range res {
		o := db.Get(r.ObjectID)
		ob, err := e.ExistsOB(o, q)
		if err != nil {
			t.Fatalf("ExistsOB(%d): %v", o.ID, err)
		}
		if math.Abs(ob-r.Prob) > tol {
			t.Errorf("object %d: QB %g != OB %g", o.ID, r.Prob, ob)
		}
	}
	// An object observed at t=2 standing at s2 ∈ S□: immediate hit.
	if byID := res[2]; byID.ObjectID == 3 && byID.Prob != 1 {
		t.Errorf("object observed inside window at query time: P = %g, want 1", byID.Prob)
	}
}

func TestExistsThreshold(t *testing.T) {
	db := NewDatabase(paperChainV(t))
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)})) // 0.864
	db.MustAdd(MustObject(2, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 0)}))
	db.MustAdd(MustObject(3, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 2)}))
	e := NewEngine(db, Options{})
	res, err := e.ExistsThreshold(paperQueryV(), 0.5)
	if err != nil {
		t.Fatalf("ExistsThreshold: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no objects above threshold")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Prob > res[i-1].Prob {
			t.Error("results not sorted descending")
		}
	}
	for _, r := range res {
		if r.Prob < 0.5 {
			t.Errorf("object %d below threshold: %g", r.ObjectID, r.Prob)
		}
	}
}

func TestExistsOBBoundsBracket(t *testing.T) {
	db, o := paperDB(t)
	e := NewEngine(db, Options{})
	q := paperQueryV()
	exact := 0.864

	// τ well below the true value: must terminate early with lo ≥ τ and
	// a valid bracket.
	lo, hi, err := e.ExistsOBBounds(o, q, 0.2)
	if err != nil {
		t.Fatalf("bounds: %v", err)
	}
	if lo < 0.2 && hi >= 0.2 {
		t.Errorf("τ=0.2 not decided: [%g, %g]", lo, hi)
	}
	if exact < lo-tol || exact > hi+tol {
		t.Errorf("bracket [%g, %g] excludes exact %g", lo, hi, exact)
	}

	// τ above the max possible: must terminate (possibly early) with
	// hi < τ.
	lo, hi, err = e.ExistsOBBounds(o, q, 0.99)
	if err != nil {
		t.Fatalf("bounds: %v", err)
	}
	if hi >= 0.99 {
		t.Errorf("τ=0.99 should be refuted, bracket [%g, %g]", lo, hi)
	}
	if exact < lo-tol || exact > hi+tol {
		t.Errorf("bracket [%g, %g] excludes exact %g", lo, hi, exact)
	}

	// τ between: full evaluation, lo == hi == exact.
	lo, hi, err = e.ExistsOBBounds(o, q, 0.87)
	if err != nil {
		t.Fatalf("bounds: %v", err)
	}
	if math.Abs(lo-exact) > tol || math.Abs(hi-exact) > tol {
		t.Errorf("exact bracket = [%g, %g], want [%g, %g]", lo, hi, exact, exact)
	}
}

func TestDatabaseValidation(t *testing.T) {
	db := NewDatabase(paperChainV(t))
	if err := db.AddSimple(1, markov.PointDistribution(3, 0)); err != nil {
		t.Fatalf("AddSimple: %v", err)
	}
	if err := db.AddSimple(1, markov.PointDistribution(3, 1)); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := db.AddSimple(2, markov.PointDistribution(5, 0)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
	if db.Get(1) == nil || db.Get(42) != nil {
		t.Error("Get wrong")
	}
}

func TestObjectValidation(t *testing.T) {
	if _, err := NewObject(1, nil); err == nil {
		t.Error("object without observations accepted")
	}
	pdf := markov.PointDistribution(3, 0)
	if _, err := NewObject(1, nil, Observation{Time: -1, PDF: pdf}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := NewObject(1, nil, Observation{Time: 0, PDF: nil}); err == nil {
		t.Error("nil pdf accepted")
	}
	if _, err := NewObject(1, nil,
		Observation{Time: 0, PDF: pdf},
		Observation{Time: 0, PDF: pdf},
	); err == nil {
		t.Error("duplicate observation times accepted")
	}
	// Observations arrive unsorted; constructor must sort them.
	o, err := NewObject(1, nil,
		Observation{Time: 5, PDF: pdf},
		Observation{Time: 2, PDF: pdf},
	)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	if o.First().Time != 2 || o.Last().Time != 5 {
		t.Error("observations not sorted")
	}
}

func TestIndependenceModelOverestimates(t *testing.T) {
	// Figure 9(d): on a chain with temporal correlation, the
	// independence model is biased and the bias grows with the window
	// length.
	//
	// The paper's Figure 1 argument needs a *lingering* object: a world
	// inside the region at time t tends to still be inside at t+1
	// (positive correlation). The independence model then multiplies
	// miss probabilities that are not independent, driving its P∃
	// estimate toward 1 while the true value stays bounded.
	n := 40
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		switch {
		case i+2 < n:
			rows[i][i] = 0.5 // uncertain speed, may stand still
			rows[i][i+1] = 0.3
			rows[i][i+2] = 0.2
		case i+1 < n:
			rows[i][i] = 0.5
			rows[i][i+1] = 0.5
		default:
			rows[i][i] = 1
		}
	}
	chain, err := markov.FromDense(rows)
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	db := NewDatabase(chain)
	o := MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(n, 0)})
	db.MustAdd(o)
	e := NewEngine(db, Options{})

	region := Interval(8, 12)
	firstBias, lastBias := math.NaN(), 0.0
	for _, winLen := range []int{2, 4, 6, 8} {
		q := NewQuery(region, Interval(6, 6+winLen-1))
		exact, err := e.ExistsOB(o, q)
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		indep, err := e.ExistsIndependent(o, q)
		if err != nil {
			t.Fatalf("indep: %v", err)
		}
		bias := indep - exact
		if bias < -1e-12 {
			t.Errorf("window %d: independence model underestimated (bias %g)", winLen, bias)
		}
		if math.IsNaN(firstBias) {
			firstBias = bias
		}
		lastBias = bias
	}
	if lastBias <= firstBias {
		t.Errorf("bias did not grow with the window: first %g, last %g", firstBias, lastBias)
	}
}

func TestForAllIndependent(t *testing.T) {
	// For a single-timestamp window both models coincide.
	db, o := paperDB(t)
	e := NewEngine(db, Options{})
	q := NewQuery([]int{0, 1}, []int{2})
	exact, err := e.ForAllOB(o, q)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := e.ForAllIndependent(o, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-indep) > tol {
		t.Errorf("single-timestamp: exact %g != indep %g", exact, indep)
	}
}
