package core

import (
	"container/heap"
	"context"
	"fmt"
	"iter"
	"math/rand"
	"runtime"

	"ust/internal/markov"
)

func errKTimesMultiObs(o *Object) error {
	return fmt.Errorf("core: PSTkQ with multiple observations is not supported; object %d has %d", o.ID, len(o.Observations))
}

func errEventuallyMultiObs(o *Object) error {
	return fmt.Errorf("core: eventually-queries support single-observation objects; object %d has %d", o.ID, len(o.Observations))
}

// Evaluate and EvaluateSeq are the single entry points of the query
// API: every predicate (exists / forall / ktimes / eventually), every
// strategy (query-based / object-based / Monte-Carlo) and every ranking
// (threshold / top-k) is expressed through a Request. The legacy
// per-variant Engine methods are thin wrappers over these two.

// Evaluator is the query surface every engine implementation serves:
// the in-process Engine, the shard router, and (shape-wise) the remote
// client. The conformance suite (internal/conformance) pins all of them
// to byte-identical results through exactly this interface.
type Evaluator interface {
	// Evaluate answers the request in one batch.
	Evaluate(ctx context.Context, req Request) (*Response, error)
	// EvaluateSeq streams the same results one object at a time.
	EvaluateSeq(ctx context.Context, req Request) iter.Seq2[Result, error]
	// EvaluateBatch answers many requests as one optimized unit.
	EvaluateBatch(ctx context.Context, reqs []Request) ([]*Response, error)
	// EvaluateBatchSeq streams batch outcomes with per-item errors.
	EvaluateBatchSeq(ctx context.Context, reqs []Request) iter.Seq[BatchItem]
}

var _ Evaluator = (*Engine)(nil)

// Response is the batch answer to a Request.
type Response struct {
	// Results holds one entry per qualifying object. Without ranking
	// options the order is the engine's evaluation order (objects
	// grouped by motion model, database order within a group); WithTopK
	// sorts descending by probability.
	Results []Result
	// Strategy is the strategy the evaluation actually ran with, after
	// per-request overrides and auto-planning.
	Strategy Strategy
	// Plans carries the planner's cost estimates (best first) when the
	// request asked for WithAutoPlan; nil otherwise.
	Plans []CostEstimate
	// Cache reports this evaluation's score-cache traffic: Hits sweeps
	// were served from the engine-wide cache, Misses were computed
	// fresh. Zero when caching is disabled.
	Cache CacheReport
	// Filter reports the filter–refine funnel of this evaluation:
	// Candidates considered, Pruned excluded by cheap bounds alone,
	// Refined evaluated exactly. Zero when the filter did not engage.
	Filter FilterReport
	// Agg is the aggregate answer for WithAggregate requests (Results is
	// empty then: the aggregate IS the answer); nil otherwise.
	Agg *AggResult
}

// evalPlan is a Request resolved against an engine: window materialized,
// strategy chosen, budgets defaulted.
type evalPlan struct {
	req       Request
	query     Query
	expr      *Expr // resolved expression (regions grounded), PredicateExpr only
	strategy  Strategy
	plans     []CostEstimate
	workers   int
	samples   int
	seed      int64
	useCache  bool
	useFilter bool
	cacheRep  CacheReport
	filterRep FilterReport
}

// prepare resolves the request's window, strategy and budgets.
func (e *Engine) prepare(req Request) (*evalPlan, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	p := &evalPlan{req: req}
	if req.Predicate == PredicateExpr {
		resolved, err := req.expr.resolved()
		if err != nil {
			return nil, err
		}
		p.expr = &resolved
	} else {
		q, err := req.Window()
		if err != nil {
			return nil, err
		}
		p.query = q
	}

	p.strategy = req.resolveStrategy(e.opts.Strategy)
	if req.autoPlan {
		switch req.Predicate {
		case PredicateExists, PredicateForAll:
			plans, perr := e.PlanExists(p.query)
			if perr != nil {
				return nil, perr
			}
			p.plans = plans
			p.strategy = plans[0].Strategy
		default:
			// The planner models the exists/forall sweeps only; other
			// predicates fall back to the engine default.
		}
	}

	p.workers = ResolveWorkers(req.parallelism)

	p.samples = e.opts.MonteCarloSamples
	if req.mcSamples > 0 {
		p.samples = req.mcSamples
	}
	p.seed = e.opts.MonteCarloSeed
	if req.mcSeed != nil {
		p.seed = *req.mcSeed
	}

	p.useCache = e.cache != nil
	if req.useCache != nil {
		p.useCache = p.useCache && *req.useCache
	}
	p.useFilter = req.useFilter == nil || *req.useFilter
	if p.plans != nil && (req.threshold != nil || req.topK > 0) {
		annotateFilterOps(p.plans, e, p.query)
	}
	return p, nil
}

// ResolveWorkers maps a WithParallelism hint to the worker count the
// engine runs with: 0 (unset) and 1 are serial, negative selects
// GOMAXPROCS. Exported so layered engines (the shard router's
// Monte-Carlo seeding rule) apply the identical resolution instead of
// a drifting copy.
func ResolveWorkers(hint int) int {
	switch {
	case hint > 0:
		return hint
	case hint < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// Evaluate answers the request in one batch. Cancelling ctx aborts the
// evaluation within one work item and returns ctx.Err().
func (e *Engine) Evaluate(ctx context.Context, req Request) (*Response, error) {
	plan, err := e.prepare(req)
	if err != nil {
		return nil, err
	}
	return e.evaluatePlan(ctx, plan)
}

// evaluatePlan runs an already-prepared plan to a batch Response.
func (e *Engine) evaluatePlan(ctx context.Context, plan *evalPlan) (*Response, error) {
	resp := &Response{Strategy: plan.strategy, Plans: plan.plans}

	if spec, ok := plan.req.AggregateHint(); ok {
		a, err := e.aggregate(ctx, plan, spec)
		if err != nil {
			return nil, err
		}
		resp.Agg = a
		resp.Cache, resp.Filter = plan.cacheRep, plan.filterRep
		return resp, nil
	}

	if plan.req.topK > 0 {
		out, err := e.topK(ctx, plan)
		if err != nil {
			return nil, err
		}
		resp.Results = out
		resp.Cache, resp.Filter = plan.cacheRep, plan.filterRep
		return resp, nil
	}

	results := make([]Result, 0, e.db.Len())
	for r, serr := range e.stream(ctx, plan) {
		if serr != nil {
			return nil, serr
		}
		results = append(results, r)
	}
	resp.Results = results
	resp.Cache, resp.Filter = plan.cacheRep, plan.filterRep
	return resp, nil
}

// topK runs ranked retrieval: the stream folded through a k-sized
// min-heap so memory stays O(k) regardless of database size. When the
// plan is filter-eligible the fold additionally prunes objects whose
// upper bound provably cannot displace the current k-th result
// (filter.go); both paths share the same heap semantics and exact
// evaluators, so results are identical.
func (e *Engine) topK(ctx context.Context, plan *evalPlan) ([]Result, error) {
	h := &resultMinHeap{}
	heap.Init(h)
	if plan.filterEligible() {
		if err := e.topKFiltered(ctx, plan, h); err != nil {
			return nil, err
		}
	} else {
		for r, serr := range e.stream(ctx, plan) {
			if serr != nil {
				return nil, serr
			}
			pushTopK(h, plan.req.topK, r)
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, nil
}

// pushTopK folds one result into the k-bounded min-heap.
func pushTopK(h *resultMinHeap, k int, r Result) {
	if h.Len() < k {
		heap.Push(h, r)
		return
	}
	if better(r, (*h)[0]) {
		(*h)[0] = r
		heap.Fix(h, 0)
	}
}

// EvaluateSeq answers the request as a stream: results are yielded one
// object at a time, in evaluation order, without materializing the full
// result slice — the entry point for million-object scans. The sequence
// yields a non-nil error (and stops) on the first failure, including
// ctx.Err() on cancellation. Threshold filtering applies on the fly;
// a WithTopK request needs the full pass anyway and is materialized
// internally before streaming the ranked tail.
func (e *Engine) EvaluateSeq(ctx context.Context, req Request) iter.Seq2[Result, error] {
	plan, err := e.prepare(req)
	if err != nil {
		return func(yield func(Result, error) bool) { yield(Result{}, err) }
	}
	if _, ok := req.AggregateHint(); ok {
		return func(yield func(Result, error) bool) { yield(Result{}, ErrAggregateStream) }
	}
	if req.topK > 0 {
		return func(yield func(Result, error) bool) {
			resp, rerr := e.evaluatePlan(ctx, plan)
			if rerr != nil {
				yield(Result{}, rerr)
				return
			}
			for _, r := range resp.Results {
				if !yield(r, nil) {
					return
				}
			}
		}
	}
	return e.stream(ctx, plan)
}

// stream dispatches to the per-predicate/per-strategy evaluation cores
// and applies threshold filtering. Filter-eligible threshold requests
// route through the filter–refine core (filter.go), which skips exact
// evaluation of objects that provably cannot reach the threshold.
func (e *Engine) stream(ctx context.Context, plan *evalPlan) iter.Seq2[Result, error] {
	if plan.req.topK <= 0 && plan.req.threshold != nil && plan.filterEligible() {
		return e.streamFilteredThreshold(ctx, plan)
	}
	var inner iter.Seq2[Result, error]
	switch plan.req.Predicate {
	case PredicateExpr:
		switch plan.strategy {
		case StrategyObjectBased:
			inner = e.streamExprOB(ctx, plan)
		case StrategyMonteCarlo:
			inner = e.streamExprMC(ctx, plan)
		default:
			inner = e.streamExprQB(ctx, plan)
		}
	case PredicateEventually:
		inner = e.streamEventually(ctx, plan)
	case PredicateKTimes:
		switch plan.strategy {
		case StrategyObjectBased:
			inner = e.streamKTimesOB(ctx, plan)
		case StrategyMonteCarlo:
			inner = e.streamKTimesMC(ctx, plan)
		default:
			inner = e.streamKTimesQB(ctx, plan)
		}
	default: // exists / forall
		forAll := plan.req.Predicate == PredicateForAll
		switch plan.strategy {
		case StrategyObjectBased:
			inner = e.streamExistsOB(ctx, plan, forAll)
		case StrategyMonteCarlo:
			inner = e.streamExistsMC(ctx, plan, forAll)
		default:
			inner = e.streamExistsQB(ctx, plan, forAll)
		}
	}
	if plan.req.threshold == nil {
		return inner
	}
	tau := *plan.req.threshold
	return func(yield func(Result, error) bool) {
		for r, err := range inner {
			if err != nil {
				yield(Result{}, err)
				return
			}
			if r.Prob < tau {
				continue
			}
			if !yield(r, nil) {
				return
			}
		}
	}
}

// streamExistsQB is the query-based core: one ctx-aware backward sweep
// per (chain, observation time) — shared through the score cache — then
// a dot product per object.
func (e *Engine) streamExistsQB(ctx context.Context, plan *evalPlan, forAll bool) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		for _, grp := range e.db.groupByChain() {
			k, err := e.groupKernel(grp, plan, forAll)
			if err != nil {
				yield(Result{}, err)
				return
			}
			for _, o := range grp.objects {
				if err := ctx.Err(); err != nil {
					yield(Result{}, err)
					return
				}
				r, oerr := k.existsExact(ctx, o, forAll)
				if oerr != nil {
					yield(Result{}, oerr)
					return
				}
				if !yield(r, nil) {
					return
				}
			}
		}
	}
}

// groupKernel compiles the plan's window for one chain group (taking the
// PST∀Q complement when requested) and binds it to the engine kernel.
func (e *Engine) groupKernel(grp chainGroup, plan *evalPlan, complement bool) (*kern, error) {
	w, err := compile(plan.query, grp.chain.NumStates())
	if err != nil {
		return nil, err
	}
	if complement {
		w = w.complemented()
	}
	return e.kernel(grp.chain, w, plan), nil
}

// obTask is one unit of object-based work: an object bound to its chain
// group's kernel.
type obTask struct {
	o *Object
	k *kern
}

// obTasks flattens the database into evaluation order with one kernel
// per chain group. complement selects the PST∀Q view. warm pre-builds
// each chain's transpose so concurrent lazy initialization cannot race
// when workers share the chain; serial paths skip it.
func (e *Engine) obTasks(plan *evalPlan, complement, warm bool) ([]obTask, error) {
	tasks := make([]obTask, 0, e.db.Len())
	for _, grp := range e.db.groupByChain() {
		k, err := e.groupKernel(grp, plan, complement)
		if err != nil {
			return nil, err
		}
		if warm {
			grp.chain.Transposed()
		}
		for _, o := range grp.objects {
			tasks = append(tasks, obTask{o: o, k: k})
		}
	}
	return tasks, nil
}

// streamExistsOB is the object-based core: a ctx-aware forward pass per
// object, optionally fanned out over plan.workers goroutines with
// in-order delivery.
func (e *Engine) streamExistsOB(ctx context.Context, plan *evalPlan, forAll bool) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		tasks, err := e.obTasks(plan, forAll, plan.workers > 1)
		if err != nil {
			yield(Result{}, err)
			return
		}
		eval := func(ctx context.Context, i int) (Result, error) {
			return tasks[i].k.obExistsExact(ctx, tasks[i].o, forAll)
		}
		if plan.workers > 1 {
			parallelOrdered(ctx, len(tasks), plan.workers, eval)(yield)
			return
		}
		for i := range tasks {
			if err := ctx.Err(); err != nil {
				yield(Result{}, err)
				return
			}
			r, oerr := eval(ctx, i)
			if oerr != nil {
				yield(Result{}, oerr)
				return
			}
			if !yield(r, nil) {
				return
			}
		}
	}
}

// mcTask is one unit of Monte-Carlo work: an object bound to its chain
// and compiled window (no kernel — sampling neither caches nor filters).
type mcTask struct {
	o     *Object
	chain *markov.Chain
	w     *window
}

// mcTasks flattens the database in insertion order (not chain-group
// order) with one compiled window per distinct chain: the Monte-Carlo
// rng sequence is part of the observable output, and the serial shared
// rng has always consumed objects in database order.
func (e *Engine) mcTasks(q Query) ([]mcTask, error) {
	windows := map[*markov.Chain]*window{}
	tasks := make([]mcTask, 0, e.db.Len())
	for _, o := range e.db.Objects() {
		ch := e.db.ChainOf(o)
		w, ok := windows[ch]
		if !ok {
			var err error
			w, err = compile(q, ch.NumStates())
			if err != nil {
				return nil, err
			}
			windows[ch] = w
		}
		tasks = append(tasks, mcTask{o: o, chain: ch, w: w})
	}
	return tasks, nil
}

// streamExistsMC is the Monte-Carlo core. Serial evaluation shares one
// deterministic rng across objects in database order (the legacy
// behaviour); parallel evaluation derives an independent per-object
// seed so results stay reproducible regardless of scheduling.
func (e *Engine) streamExistsMC(ctx context.Context, plan *evalPlan, forAll bool) iter.Seq2[Result, error] {
	pred := predicateExists
	if forAll {
		pred = predicateForAll
	}
	return func(yield func(Result, error) bool) {
		tasks, err := e.mcTasks(plan.query)
		if err != nil {
			yield(Result{}, err)
			return
		}
		if plan.workers > 1 {
			eval := func(ctx context.Context, i int) (Result, error) {
				t := tasks[i]
				rng := rand.New(rand.NewSource(perObjectSeed(plan.seed, t.o.ID)))
				p, merr := monteCarloRun(ctx, t.chain, t.o, t.w, plan.samples, rng, pred)
				if merr != nil {
					return Result{}, merr
				}
				return Result{ObjectID: t.o.ID, Prob: p}, nil
			}
			parallelOrdered(ctx, len(tasks), plan.workers, eval)(yield)
			return
		}
		rng := rand.New(rand.NewSource(plan.seed))
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				yield(Result{}, err)
				return
			}
			p, merr := monteCarloRun(ctx, t.chain, t.o, t.w, plan.samples, rng, pred)
			if merr != nil {
				yield(Result{}, merr)
				return
			}
			if !yield(Result{ObjectID: t.o.ID, Prob: p}, nil) {
				return
			}
		}
	}
}

// perObjectSeed derives a deterministic per-object rng seed from the
// request seed (splitmix64 finalizer over the pair).
func perObjectSeed(seed int64, objectID int) int64 {
	z := uint64(seed) ^ (uint64(objectID)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// kTimesResult wraps a PSTkQ distribution as a unified Result: Dist is
// the full distribution, Prob the probability of at least one visit.
func kTimesResult(objectID int, dist []float64) Result {
	p := 0.0
	if len(dist) > 0 {
		p = 1 - dist[0]
	}
	return Result{ObjectID: objectID, Prob: p, Dist: dist}
}

// streamKTimesQB is the query-based PSTkQ core: |T□|+1 backward vectors
// per (chain, observation time) — shared through the score cache — then
// |T□|+1 dot products per object.
func (e *Engine) streamKTimesQB(ctx context.Context, plan *evalPlan) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		for _, grp := range e.db.groupByChain() {
			k, err := e.groupKernel(grp, plan, false)
			if err != nil {
				yield(Result{}, err)
				return
			}
			for _, o := range grp.objects {
				if err := ctx.Err(); err != nil {
					yield(Result{}, err)
					return
				}
				r, oerr := k.ktimesQBExact(ctx, o)
				if oerr != nil {
					yield(Result{}, oerr)
					return
				}
				if !yield(r, nil) {
					return
				}
			}
		}
	}
}

// streamKTimesOB is the object-based PSTkQ core: one ctx-aware forward
// pass per object over the (|T□|+1)-row count matrix, optionally fanned
// out over plan.workers goroutines.
func (e *Engine) streamKTimesOB(ctx context.Context, plan *evalPlan) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		tasks, err := e.obTasks(plan, false, plan.workers > 1)
		if err != nil {
			yield(Result{}, err)
			return
		}
		eval := func(ctx context.Context, i int) (Result, error) {
			return tasks[i].k.ktimesOBExact(ctx, tasks[i].o)
		}
		if plan.workers > 1 {
			parallelOrdered(ctx, len(tasks), plan.workers, eval)(yield)
			return
		}
		for i := range tasks {
			if err := ctx.Err(); err != nil {
				yield(Result{}, err)
				return
			}
			r, kerr := eval(ctx, i)
			if kerr != nil {
				yield(Result{}, kerr)
				return
			}
			if !yield(r, nil) {
				return
			}
		}
	}
}

// streamKTimesMC is the Monte-Carlo PSTkQ core.
func (e *Engine) streamKTimesMC(ctx context.Context, plan *evalPlan) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		tasks, err := e.mcTasks(plan.query)
		if err != nil {
			yield(Result{}, err)
			return
		}
		if plan.workers > 1 {
			eval := func(ctx context.Context, i int) (Result, error) {
				t := tasks[i]
				rng := rand.New(rand.NewSource(perObjectSeed(plan.seed, t.o.ID)))
				dist, merr := monteCarloKTimesRun(ctx, t.chain, t.o, t.w, plan.samples, rng)
				if merr != nil {
					return Result{}, merr
				}
				return kTimesResult(t.o.ID, dist), nil
			}
			parallelOrdered(ctx, len(tasks), plan.workers, eval)(yield)
			return
		}
		rng := rand.New(rand.NewSource(plan.seed))
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				yield(Result{}, err)
				return
			}
			dist, merr := monteCarloKTimesRun(ctx, t.chain, t.o, t.w, plan.samples, rng)
			if merr != nil {
				yield(Result{}, merr)
				return
			}
			if !yield(kTimesResult(t.o.ID, dist), nil) {
				return
			}
		}
	}
}

// streamEventually is the unbounded-horizon core: one ctx-aware
// fixed-point sweep per chain group — shared through the score cache —
// then a dot product per object. (The legacy per-object ExistsEventually
// recomputed the sweep per object; the grouped evaluation amortizes it
// across the database.)
func (e *Engine) streamEventually(ctx context.Context, plan *evalPlan) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		region := sortedSet(plan.query.States)
		for _, grp := range e.db.groupByChain() {
			k := e.kernel(grp.chain, nil, plan)
			scores, err := k.hittingFor(ctx, region, plan.req.maxSteps, plan.req.tol)
			if err != nil {
				yield(Result{}, err)
				return
			}
			for _, o := range grp.objects {
				if err := ctx.Err(); err != nil {
					yield(Result{}, err)
					return
				}
				if len(o.Observations) > 1 {
					yield(Result{}, errEventuallyMultiObs(o))
					return
				}
				pdf := o.First().PDF.Vec()
				mass := pdf.Sum()
				if mass == 0 {
					yield(Result{}, errZeroMass(o.ID))
					return
				}
				p := pdf.Dot(scores) / mass
				if p > 1 {
					p = 1
				}
				if !yield(Result{ObjectID: o.ID, Prob: p}, nil) {
					return
				}
			}
		}
	}
}
