package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"ust/internal/gen"
	"ust/internal/markov"
	"ust/internal/spatial"
)

// evalTestDB builds a medium synthetic database for evaluation tests.
func evalTestDB(t testing.TB, numObjects, numStates int) *Database {
	t.Helper()
	p := gen.Params{NumObjects: numObjects, NumStates: numStates, ObjectSpread: 4, StateSpread: 4, MaxStep: 30, Seed: 11}
	ds := gen.MustGenerate(p)
	db := NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		db.MustAdd(MustObject(i, nil, Observation{Time: 0, PDF: o}))
	}
	return db
}

func collectSeq(t *testing.T, e *Engine, ctx context.Context, req Request) []Result {
	t.Helper()
	var out []Result
	for r, err := range e.EvaluateSeq(ctx, req) {
		if err != nil {
			t.Fatalf("EvaluateSeq: %v", err)
		}
		out = append(out, r)
	}
	return out
}

// TestStreamingMatchesBatch: EvaluateSeq must yield exactly the batch
// Evaluate results, for every predicate × strategy combination and with
// ranking options.
func TestStreamingMatchesBatch(t *testing.T) {
	db := evalTestDB(t, 80, 600)
	e := NewEngine(db, Options{})
	ctx := context.Background()
	win := []RequestOption{WithStates(Interval(100, 140)), WithTimes(Interval(5, 9))}

	cases := []struct {
		name string
		req  Request
	}{
		{"exists/qb", NewRequest(PredicateExists, append(win, WithStrategy(StrategyQueryBased))...)},
		{"exists/ob", NewRequest(PredicateExists, append(win, WithStrategy(StrategyObjectBased))...)},
		{"exists/ob-parallel", NewRequest(PredicateExists, append(win, WithStrategy(StrategyObjectBased), WithParallelism(4))...)},
		{"exists/mc", NewRequest(PredicateExists, append(win, WithStrategy(StrategyMonteCarlo), WithMonteCarloBudget(40, 7))...)},
		{"forall/qb", NewRequest(PredicateForAll, append(win, WithStrategy(StrategyQueryBased))...)},
		{"forall/ob", NewRequest(PredicateForAll, append(win, WithStrategy(StrategyObjectBased))...)},
		{"ktimes/qb", NewRequest(PredicateKTimes, append(win, WithStrategy(StrategyQueryBased))...)},
		{"ktimes/ob", NewRequest(PredicateKTimes, append(win, WithStrategy(StrategyObjectBased))...)},
		{"eventually", NewRequest(PredicateEventually, WithStates(Interval(100, 140)), WithHittingLimits(500, 1e-9))},
		{"exists/threshold", NewRequest(PredicateExists, append(win, WithThreshold(0.2))...)},
		{"exists/topk", NewRequest(PredicateExists, append(win, WithTopK(7))...)},
		{"auto", NewRequest(PredicateExists, append(win, WithAutoPlan())...)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := e.Evaluate(ctx, c.req)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			streamed := collectSeq(t, e, ctx, c.req)
			if len(streamed) != len(resp.Results) {
				t.Fatalf("stream yielded %d results, batch %d", len(streamed), len(resp.Results))
			}
			for i := range streamed {
				if !reflect.DeepEqual(streamed[i], resp.Results[i]) {
					t.Fatalf("result %d differs: stream %+v, batch %+v", i, streamed[i], resp.Results[i])
				}
			}
		})
	}
}

// TestRequestStrategyOverride: a per-request strategy must beat the
// engine default, and the response must report the strategy actually
// used.
func TestRequestStrategyOverride(t *testing.T) {
	db := evalTestDB(t, 30, 400)
	// Engine default: Monte-Carlo with a 1-sample budget — results are
	// coarse {0,1} estimates.
	e := NewEngine(db, Options{Strategy: StrategyMonteCarlo, MonteCarloSamples: 1})
	exact := NewEngine(db, Options{Strategy: StrategyQueryBased})
	q := NewQuery(Interval(50, 90), Interval(4, 8))

	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateExists,
		WithWindow(q), WithStrategy(StrategyQueryBased)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != StrategyQueryBased {
		t.Fatalf("response strategy = %v, want query-based", resp.Strategy)
	}
	want, err := exact.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(resp.Results[i], want[i]) {
			t.Fatalf("override result %d = %+v, want exact %+v", i, resp.Results[i], want[i])
		}
	}

	// Default path (no override) must actually use the engine default.
	resp, err = e.Evaluate(context.Background(), NewRequest(PredicateExists, WithWindow(q)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != StrategyMonteCarlo {
		t.Fatalf("default strategy = %v, want monte-carlo", resp.Strategy)
	}
}

// TestLegacyWrappersMatchEvaluate: every legacy method must return
// exactly what the equivalent Request produces.
func TestLegacyWrappersMatchEvaluate(t *testing.T) {
	db := evalTestDB(t, 60, 500)
	e := NewEngine(db, Options{})
	ctx := context.Background()
	q := NewQuery(Interval(80, 130), Interval(6, 10))

	mustEval := func(req Request) *Response {
		resp, err := e.Evaluate(ctx, req)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return resp
	}

	exists, err := e.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exists, mustEval(NewRequest(PredicateExists, WithWindow(q))).Results) {
		t.Error("Exists differs from Evaluate")
	}

	forAll, err := e.ForAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forAll, mustEval(NewRequest(PredicateForAll, WithWindow(q))).Results) {
		t.Error("ForAll differs from Evaluate")
	}

	kt, err := e.KTimes(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kt, toKResults(mustEval(NewRequest(PredicateKTimes, WithWindow(q))).Results)) {
		t.Error("KTimes differs from Evaluate")
	}

	topK, err := e.TopKExists(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topK, mustEval(NewRequest(PredicateExists, WithWindow(q), WithTopK(5))).Results) {
		t.Error("TopKExists differs from Evaluate")
	}

	par, err := e.ExistsOBParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, mustEval(NewRequest(PredicateExists, WithWindow(q),
		WithStrategy(StrategyObjectBased), WithParallelism(4))).Results) {
		t.Error("ExistsOBParallel differs from Evaluate")
	}

	// ExistsThreshold sorts; Evaluate keeps evaluation order. The sets
	// and the per-object values must agree.
	thr, err := e.ExistsThreshold(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	flat := mustEval(NewRequest(PredicateExists, WithWindow(q), WithThreshold(0.1))).Results
	if len(thr) != len(flat) {
		t.Fatalf("ExistsThreshold %d results, Evaluate %d", len(thr), len(flat))
	}
	byID := map[int]float64{}
	for _, r := range flat {
		byID[r.ObjectID] = r.Prob
	}
	for _, r := range thr {
		if p, ok := byID[r.ObjectID]; !ok || p != r.Prob {
			t.Fatalf("ExistsThreshold object %d = %g, Evaluate %g (present %v)", r.ObjectID, r.Prob, p, ok)
		}
	}
}

// TestEvaluateCancellation: cancelling the context mid-scan must stop
// the evaluation within one work item and surface ctx.Err().
func TestEvaluateCancellation(t *testing.T) {
	db := evalTestDB(t, 10000, 300)
	e := NewEngine(db, Options{})
	win := []RequestOption{WithStates(Interval(50, 80)), WithTimes(Interval(10, 14))}

	strategies := []struct {
		name string
		opts []RequestOption
	}{
		{"qb", []RequestOption{WithStrategy(StrategyQueryBased)}},
		{"ob", []RequestOption{WithStrategy(StrategyObjectBased)}},
		{"mc", []RequestOption{WithStrategy(StrategyMonteCarlo), WithMonteCarloBudget(5, 1)}},
	}
	for _, s := range strategies {
		t.Run(s.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req := NewRequest(PredicateExists, append(win, s.opts...)...)
			seen := 0
			var gotErr error
			for _, err := range e.EvaluateSeq(ctx, req) {
				if err != nil {
					gotErr = err
					break
				}
				seen++
				if seen == 3 {
					cancel()
				}
			}
			if !errors.Is(gotErr, context.Canceled) {
				t.Fatalf("stream error = %v, want context.Canceled", gotErr)
			}
			// Serial paths stop on the very next object.
			if seen > 4 {
				t.Fatalf("stream yielded %d results after cancellation at 3", seen)
			}
		})
	}

	// Parallel path: already-buffered results may still drain, but the
	// stream must stop within the pipeline depth and report ctx.Err().
	t.Run("ob-parallel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		req := NewRequest(PredicateExists, append(win,
			WithStrategy(StrategyObjectBased), WithParallelism(4))...)
		seen := 0
		var gotErr error
		for _, err := range e.EvaluateSeq(ctx, req) {
			if err != nil {
				gotErr = err
				break
			}
			seen++
			if seen == 3 {
				cancel()
			}
		}
		if !errors.Is(gotErr, context.Canceled) {
			t.Fatalf("stream error = %v, want context.Canceled", gotErr)
		}
		if seen > 3+2*4+1 {
			t.Fatalf("stream yielded %d results after cancellation at 3 (pipeline depth 8)", seen)
		}
	})

	// Batch path with a pre-cancelled context returns immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Evaluate(ctx, NewRequest(PredicateExists, win...)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Evaluate on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestParallelErrorDeterministic: with several failing objects, the
// parallel path must always report the failure at the lowest evaluation
// index, and a failure must cancel the remaining work.
func TestParallelErrorDeterministic(t *testing.T) {
	db := evalTestDB(t, 200, 300)
	// Objects observed after the horizon fail; plant two at different
	// indices (the query horizon below is 8).
	db.MustAdd(MustObject(500, nil, Observation{Time: 50, PDF: markov.PointDistribution(300, 0)}))
	db.MustAdd(MustObject(501, nil, Observation{Time: 60, PDF: markov.PointDistribution(300, 1)}))
	e := NewEngine(db, Options{})
	q := NewQuery(Interval(50, 80), Interval(4, 8))

	var first string
	for run := 0; run < 8; run++ {
		_, err := e.ExistsOBParallel(q, 4)
		if err == nil {
			t.Fatal("parallel evaluation ignored failing objects")
		}
		if first == "" {
			first = err.Error()
			// The lowest-index failing object is 500.
			if want := "object 500"; !strings.Contains(first, want) {
				t.Fatalf("error %q does not name the first failing object", first)
			}
			continue
		}
		if err.Error() != first {
			t.Fatalf("error not deterministic: %q vs %q", err.Error(), first)
		}
	}
}

// TestParallelFirstObjectError: a failure at the very FIRST evaluation
// index must be returned (not deadlock) — the feeder is still blocked
// on the pipeline when the consumer bails out, so shutdown must cancel
// before it waits.
func TestParallelFirstObjectError(t *testing.T) {
	db := NewDatabase(evalTestDB(t, 1, 300).DefaultChain())
	db.MustAdd(MustObject(0, nil, Observation{Time: 99, PDF: markov.PointDistribution(300, 0)}))
	for i := 1; i < 400; i++ {
		db.MustAdd(MustObject(i, nil, Observation{Time: 0, PDF: markov.PointDistribution(300, i%300)}))
	}
	e := NewEngine(db, Options{})
	q := NewQuery(Interval(50, 80), Interval(4, 8))

	done := make(chan error, 1)
	go func() {
		_, err := e.ExistsOBParallel(q, 4)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "object 0") {
			t.Fatalf("error = %v, want failure naming object 0", err)
		}
	case <-timeAfter(t):
		t.Fatal("parallel evaluation deadlocked on first-object failure")
	}
}

// TestParallelStreamEarlyBreak: a consumer that stops iterating a
// parallel stream mid-way must not leak or deadlock the pipeline.
func TestParallelStreamEarlyBreak(t *testing.T) {
	db := evalTestDB(t, 500, 300)
	e := NewEngine(db, Options{})
	req := NewRequest(PredicateExists, WithStates(Interval(50, 80)),
		WithTimes(Interval(4, 8)), WithStrategy(StrategyObjectBased), WithParallelism(4))

	done := make(chan int, 1)
	go func() {
		n := 0
		for _, err := range e.EvaluateSeq(context.Background(), req) {
			if err != nil {
				break
			}
			n++
			if n == 3 {
				break
			}
		}
		done <- n
	}()
	select {
	case n := <-done:
		if n != 3 {
			t.Fatalf("consumer saw %d results, want 3", n)
		}
	case <-timeAfter(t):
		t.Fatal("early break deadlocked the parallel stream")
	}
}

// timeAfter returns a generous deadline channel: these paths complete
// in milliseconds unless they deadlock.
func timeAfter(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(10 * time.Second)
}

// TestMonteCarloLegacyOrderMixedChains: the serial Monte-Carlo path
// shares one rng and must consume objects in DATABASE order even when
// chain overrides interleave — the rng sequence is observable output.
func TestMonteCarloLegacyOrderMixedChains(t *testing.T) {
	chA := paperChainV(t)
	chB := paperChainVI(t)
	db := NewDatabase(chA)
	// Interleave chains so group order differs from insertion order.
	db.MustAdd(MustObject(0, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(MustObject(1, chB, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(MustObject(2, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 2)}))
	e := NewEngine(db, Options{Strategy: StrategyMonteCarlo, MonteCarloSamples: 50, MonteCarloSeed: 4})
	q := paperQueryV()

	res, err := e.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.ObjectID != i {
			t.Fatalf("result %d is object %d; serial MC must run in database order", i, r.ObjectID)
		}
	}
	// The shared-rng sequence is deterministic: a second run matches.
	again, err := e.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("serial Monte-Carlo is not reproducible at a fixed seed")
	}
}

// TestRegionRequest: a request carrying geometry must resolve to the
// same results as the equivalent raw-state request.
func TestRegionRequest(t *testing.T) {
	grid := spatial.NewGrid(20, 15)
	n := grid.NumStates()
	p := gen.Params{NumObjects: 1, NumStates: n, ObjectSpread: 1, StateSpread: 3, MaxStep: 8, Seed: 3}
	ds := gen.MustGenerate(p)
	db := NewDatabase(ds.Chain)
	for i := 0; i < 40; i++ {
		db.MustAdd(MustObject(i, nil, Observation{Time: 0, PDF: markov.PointDistribution(n, (i*7)%n)}))
	}
	e := NewEngine(db, Options{})
	ctx := context.Background()

	rect := spatial.NewRect(4, 4, 11, 9)
	times := Interval(2, 5)

	// Resolve through the grid directly and through an R-tree index;
	// both must match the raw-state request.
	raw, err := e.Evaluate(ctx, NewRequest(PredicateExists,
		WithStates(grid.StatesIn(rect)), WithTimes(times)))
	if err != nil {
		t.Fatal(err)
	}
	viaGrid, err := e.Evaluate(ctx, NewRequest(PredicateExists,
		WithRegion(rect, grid), WithTimes(times)))
	if err != nil {
		t.Fatal(err)
	}
	viaRTree, err := e.Evaluate(ctx, NewRequest(PredicateExists,
		WithRegion(rect, spatial.IndexSpace(grid, 0)), WithTimes(times)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(raw.Results, viaGrid.Results) {
		t.Error("grid-resolved region differs from raw states")
	}
	if !reflect.DeepEqual(raw.Results, viaRTree.Results) {
		t.Error("rtree-resolved region differs from raw states")
	}

	// A region without a resolver is an error.
	if _, err := e.Evaluate(ctx, NewRequest(PredicateExists,
		WithRegion(rect, nil), WithTimes(times))); err == nil {
		t.Error("region without resolver accepted")
	}
}

// TestEventuallyGrouped: the grouped eventually-evaluation must match
// the per-object legacy path.
func TestEventuallyGrouped(t *testing.T) {
	db := evalTestDB(t, 25, 200)
	e := NewEngine(db, Options{})
	region := Interval(40, 60)
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateEventually,
		WithStates(region), WithHittingLimits(2000, 1e-10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != db.Len() {
		t.Fatalf("%d results for %d objects", len(resp.Results), db.Len())
	}
	for _, r := range resp.Results {
		want, err := e.ExistsEventually(db.Get(r.ObjectID), region, 2000, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Prob-want) > 1e-9 {
			t.Fatalf("object %d: grouped %g, per-object %g", r.ObjectID, r.Prob, want)
		}
	}
}

// TestKTimesResultProb: the unified ktimes Result carries the full
// distribution plus P(at least one visit) in Prob.
func TestKTimesResultProb(t *testing.T) {
	db := evalTestDB(t, 10, 200)
	e := NewEngine(db, Options{})
	q := NewQuery(Interval(40, 80), Interval(3, 6))
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateKTimes, WithWindow(q)))
	if err != nil {
		t.Fatal(err)
	}
	exists, err := e.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if len(r.Dist) != len(q.Times)+1 {
			t.Fatalf("object %d: dist has %d entries, want %d", r.ObjectID, len(r.Dist), len(q.Times)+1)
		}
		if math.Abs(r.Prob-(1-r.Dist[0])) > 1e-12 {
			t.Fatalf("object %d: Prob %g != 1-Dist[0] %g", r.ObjectID, r.Prob, 1-r.Dist[0])
		}
		if math.Abs(r.Prob-exists[i].Prob) > 1e-9 {
			t.Fatalf("object %d: ktimes Prob %g != exists %g", r.ObjectID, r.Prob, exists[i].Prob)
		}
	}
}

// TestRequestValidation rejects malformed hint combinations.
func TestRequestValidation(t *testing.T) {
	db := evalTestDB(t, 3, 100)
	e := NewEngine(db, Options{})
	ctx := context.Background()
	bad := []Request{
		NewRequest(Predicate(99), WithStates([]int{1}), WithTimes([]int{1})),
		NewRequest(PredicateExists, WithStates([]int{1}), WithTimes([]int{1}), WithThreshold(1.5)),
		NewRequest(PredicateEventually, WithStates([]int{1}), WithStrategy(StrategyMonteCarlo)),
	}
	for i, req := range bad {
		if _, err := e.Evaluate(ctx, req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}
