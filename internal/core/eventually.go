package core

import (
	"context"
	"fmt"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// Unbounded-horizon queries: the probability that the object *ever*
// enters the region, with no time limit. This is the limit of PST∃Q as
// T□ → {t0+1, t0+2, …} and equals the chain-theoretic hitting
// probability of the region. The paper's framework covers finite
// windows; this extension reuses the same backward operator iterated to
// a fixed point:
//
//	h[s] = 1                       s ∈ S□
//	h[s] = Σ_j M[s,j] · h[j]       otherwise
//
// which converges monotonically from h ≡ 0 (it is exactly the
// query-based sweep with the region pinned every step).

// HittingScores returns, for every state s, the probability that a
// world starting at s ever reaches the region within maxSteps
// transitions; with maxSteps large enough this converges to the true
// hitting probability (convergence is checked against tol and reported
// via the returned step count; steps == maxSteps with err == nil means
// tolerance was not reached — the scores are then a lower bound).
func HittingScores(chain *markov.Chain, regionStates []int, maxSteps int, tol float64) (*sparse.Vec, int, error) {
	return hittingScores(context.Background(), chain, regionStates, maxSteps, tol)
}

// hittingScores is the ctx-aware fixed-point kernel behind
// HittingScores; it checks ctx once per backward sweep.
func hittingScores(ctx context.Context, chain *markov.Chain, regionStates []int, maxSteps int, tol float64) (*sparse.Vec, int, error) {
	n := chain.NumStates()
	maxSteps, tol = hittingLimits(n, maxSteps, tol)
	mask := make([]bool, n)
	for _, s := range regionStates {
		if s < 0 || s >= n {
			return nil, 0, fmt.Errorf("core: region state %d outside space of %d", s, n)
		}
		mask[s] = true
	}
	score := sparse.NewVec(n)
	next := sparse.NewVec(n)
	pin := func(v *sparse.Vec) {
		for _, s := range regionStates {
			v.Set(s, 1)
		}
	}
	pin(score)
	for step := 1; step <= maxSteps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		chain.StepBack(next, score)
		pin(next)
		// Monotone convergence: sup-norm of the increment.
		maxDelta := 0.0
		nd, sd := next.RawData(), score.RawData()
		for i := range nd {
			if d := nd[i] - sd[i]; d > maxDelta {
				maxDelta = d
			}
		}
		score, next = next, score
		if maxDelta < tol {
			return score, step, nil
		}
	}
	return score, maxSteps, nil
}

// hittingLimits resolves the fixed-point iteration limits: callers pass
// ≤ 0 for defaults. Slow-mixing chains (e.g. long random walks) converge
// in O(n²·log(1/tol)) iterations; the default favors correctness over
// speed for moderate spaces and callers tune it down. Centralized so the
// score cache can key on the resolved values and explicit-vs-defaulted
// requests share entries.
func hittingLimits(n, maxSteps int, tol float64) (int, float64) {
	if maxSteps <= 0 {
		maxSteps = 20 * n
		if maxSteps < 5000 {
			maxSteps = 5000
		}
	}
	if tol <= 0 {
		tol = 1e-12
	}
	return maxSteps, tol
}

// ExistsEventually returns the probability that the object ever enters
// the region after (or at) its first observation. maxSteps/tol as in
// HittingScores; defaults apply when ≤ 0. Only single-observation
// objects are supported (the unbounded pass has no natural place to
// fuse later observations).
func (e *Engine) ExistsEventually(o *Object, regionStates []int, maxSteps int, tol float64) (float64, error) {
	if len(o.Observations) > 1 {
		return 0, fmt.Errorf("core: ExistsEventually supports single-observation objects; object %d has %d", o.ID, len(o.Observations))
	}
	ch := e.db.ChainOf(o)
	scores, _, err := HittingScores(ch, regionStates, maxSteps, tol)
	if err != nil {
		return 0, err
	}
	init := o.First().PDF.Clone()
	if init.Vec().Normalize() == 0 {
		return 0, errZeroMass(o.ID)
	}
	p := init.Vec().Dot(scores)
	if p > 1 {
		p = 1
	}
	return p, nil
}
