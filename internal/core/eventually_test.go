package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/markov"
)

// gamblersRuin builds the random walk on {0..n} with absorbing
// boundaries and P(right) = p.
func gamblersRuin(t testing.TB, n int, p float64) *markov.Chain {
	t.Helper()
	rows := make([][]float64, n+1)
	for i := range rows {
		rows[i] = make([]float64, n+1)
		switch {
		case i == 0 || i == n:
			rows[i][i] = 1
		default:
			rows[i][i+1] = p
			rows[i][i-1] = 1 - p
		}
	}
	c, err := markov.FromDense(rows)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHittingScoresGamblersRuinFair(t *testing.T) {
	// Fair walk: P(hit n before 0 | start i) = i/n.
	const n = 10
	chain := gamblersRuin(t, n, 0.5)
	scores, steps, err := HittingScores(chain, []int{n}, 100000, 1e-12)
	if err != nil {
		t.Fatalf("HittingScores: %v", err)
	}
	if steps == 0 {
		t.Fatal("no iterations")
	}
	for i := 0; i <= n; i++ {
		want := float64(i) / n
		if math.Abs(scores.At(i)-want) > 1e-6 {
			t.Errorf("h(%d) = %g, want %g", i, scores.At(i), want)
		}
	}
}

func TestHittingScoresGamblersRuinBiased(t *testing.T) {
	// Biased walk: h(i) = (1−r^i)/(1−r^n), r = q/p.
	const n = 8
	p := 0.6
	r := (1 - p) / p
	chain := gamblersRuin(t, n, p)
	scores, _, err := HittingScores(chain, []int{n}, 100000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		want := (1 - math.Pow(r, float64(i))) / (1 - math.Pow(r, float64(n)))
		if math.Abs(scores.At(i)-want) > 1e-6 {
			t.Errorf("h(%d) = %g, want %g", i, scores.At(i), want)
		}
	}
}

func TestExistsEventually(t *testing.T) {
	const n = 10
	chain := gamblersRuin(t, n, 0.5)
	db := NewDatabase(chain)
	o := MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(n+1, 3)})
	db.MustAdd(o)
	e := NewEngine(db, Options{})
	got, err := e.ExistsEventually(o, []int{n}, 100000, 1e-13)
	if err != nil {
		t.Fatalf("ExistsEventually: %v", err)
	}
	if math.Abs(got-0.3) > 1e-6 {
		t.Errorf("P(eventually) = %g, want 0.3", got)
	}
	// Starting inside the region: certain.
	atGoal := MustObject(2, nil, Observation{Time: 0, PDF: markov.PointDistribution(n+1, n)})
	db.MustAdd(atGoal)
	if p, err := e.ExistsEventually(atGoal, []int{n}, 0, 0); err != nil || p != 1 {
		t.Errorf("from inside region: (%g, %v), want 1", p, err)
	}
}

func TestExistsEventuallyDominatesFiniteWindowQuick(t *testing.T) {
	// The unbounded probability upper-bounds every finite window's P∃
	// and the finite-window values converge up to it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		if len(q.States) == 0 {
			return true
		}
		ever, err := e.ExistsEventually(o, q.States, 2000, 1e-12)
		if err != nil {
			return false
		}
		finite, err := e.ExistsOB(o, NewQuery(q.States, Interval(0, 12)))
		if err != nil {
			return false
		}
		return finite <= ever+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExistsEventuallyRejectsMultiObs(t *testing.T) {
	chain := paperChainVI(t)
	db := NewDatabase(chain)
	o := MustObject(1, nil,
		Observation{Time: 0, PDF: markov.PointDistribution(3, 0)},
		Observation{Time: 3, PDF: markov.PointDistribution(3, 1)},
	)
	db.MustAdd(o)
	e := NewEngine(db, Options{})
	if _, err := e.ExistsEventually(o, []int{0}, 0, 0); err == nil {
		t.Error("multi-observation object accepted")
	}
}

func TestHittingScoresValidation(t *testing.T) {
	chain := paperChainV(t)
	if _, _, err := HittingScores(chain, []int{5}, 0, 0); err == nil {
		t.Error("out-of-range region state accepted")
	}
	// Irreducible chain: every state eventually reaches the region.
	scores, _, err := HittingScores(chain, []int{0}, 10000, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if math.Abs(scores.At(s)-1) > 1e-9 {
			t.Errorf("irreducible chain: h(%d) = %g, want 1", s, scores.At(s))
		}
	}
}
