package core

import (
	"context"
	"iter"
)

// The filter–refine path for ranked and thresholded retrieval — the
// standard architecture for uncertain spatial query processing (Züfle's
// overview, §filter–refine; Range Queries on Uncertain Data applies it
// to threshold/top-k retrieval). The filter stage computes, per object,
// conservative probability bounds from boolean reachability envelopes
// (kernel.go) that cost bit-ops instead of float sweeps and are shared
// per (chain, window, observation time) through the score cache. Objects
// whose bounds prove they cannot qualify are pruned without any exact
// evaluation; survivors are refined by the SAME exact evaluators the
// unfiltered streams use, so filtered and unfiltered results are
// byte-identical — the filter can only skip work, never change answers.
//
// For the object-based strategy the refine step additionally uses the
// ExistsOBBounds bracketing: the forward pass aborts as soon as the
// accumulated ◆ mass proves the object falls outside the acceptance
// band (Section V-C's pruning), again without affecting survivors'
// values.

// FilterReport summarizes the filter–refine funnel of one evaluation,
// reported on Response.Filter. Candidates = Pruned + Refined; the ratio
// Refined/Candidates is the fraction of the database that needed exact
// per-object work.
type FilterReport struct {
	// Candidates is the number of objects the filter considered.
	Candidates int
	// Pruned is the number answered or excluded by bounds alone, with
	// no exact evaluation (including exists-objects whose envelope
	// proves a bit-exact zero).
	Pruned int
	// Refined is the number of exact per-object evaluations.
	Refined int
}

// exactZero reports whether the filter may answer this object with a
// bit-exact Prob = 0 result instead of refining: the upper bound is the
// exact zero certificate (see kern.existsUpper) and the predicate's
// result is plain P∃ with no distribution attached.
func exactZero(plan *evalPlan, ub float64, ok bool) bool {
	return ok && ub == 0 && plan.req.Predicate == PredicateExists
}

// filterEligible reports whether this plan runs the filter–refine path.
// The filter applies to exact strategies only: Monte-Carlo evaluation
// consumes a shared rng stream whose sequence is part of the observable
// output, so skipping an object would change every later answer. The
// parallel OB fan-out keeps its own unfiltered path (bound computation
// is inherently sequential against the evolving top-k bar).
func (p *evalPlan) filterEligible() bool {
	if !p.useFilter {
		return false
	}
	if p.req.topK <= 0 && p.req.threshold == nil {
		return false
	}
	switch p.req.Predicate {
	case PredicateExists, PredicateForAll, PredicateKTimes, PredicateExpr:
	default:
		return false
	}
	switch p.strategy {
	case StrategyQueryBased:
		return true // QB evaluation is serial regardless of workers
	case StrategyObjectBased:
		return p.workers <= 1
	default:
		return false
	}
}

// upperBound returns a conservative upper bound on the result
// probability of o under the plan's predicate, where k is the group
// kernel over the evaluation window (already complemented for PST∀Q).
// ok is false when no cheap bound exists and o must be refined.
//
// For exists and ktimes (whose Prob is P(≥1 visit) = P∃) the bound is
// the initial mass on the possible-envelope. For forall, P∀ = 1 −
// P∃(complement window), so the bound needs the LOWER bound of the
// complemented exists-query: the initial mass on the certain-envelope.
func upperBound(ctx context.Context, plan *evalPlan, k *kern, o *Object) (float64, bool, error) {
	switch plan.req.Predicate {
	case PredicateForAll:
		lo, ok, err := k.existsLower(ctx, o)
		return 1 - lo, ok, err
	case PredicateExpr:
		return k.exprUpper(ctx, o)
	default:
		return k.existsUpper(ctx, o)
	}
}

// refineOne evaluates one surviving object exactly, dispatching on the
// plan's predicate × strategy — the same evaluators the unfiltered
// streams call. bar is the current acceptance bar (threshold or top-k
// floor); the OB exists/forall refine may use it to abort bracketed
// passes early, reporting qualified = false exactly when the result
// probability is provably below bar.
func refineOne(ctx context.Context, plan *evalPlan, k *kern, o *Object, bar float64) (r Result, qualified bool, err error) {
	forAll := plan.req.Predicate == PredicateForAll
	switch {
	case plan.req.Predicate == PredicateKTimes && plan.strategy == StrategyObjectBased:
		r, err = k.ktimesOBExact(ctx, o)
	case plan.req.Predicate == PredicateKTimes:
		r, err = k.ktimesQBExact(ctx, o)
	case plan.req.Predicate == PredicateExpr && plan.strategy == StrategyObjectBased:
		r, err = k.exprOBExact(ctx, o)
	case plan.req.Predicate == PredicateExpr:
		r, err = k.exprExact(ctx, o)
	case plan.strategy == StrategyObjectBased:
		return k.obExistsRefine(ctx, o, forAll, bar)
	default:
		r, err = k.existsExact(ctx, o, forAll)
	}
	return r, true, err
}

// obExistsRefine is the OB refine step with ExistsOBBounds-style
// bracketing against the acceptance bar: P(result) < bar is proven as
// early as the bracket allows, skipping the rest of the forward pass.
// Ineligible shapes (k = 0, multi-observation, after-horizon, bar ≤ 0)
// fall back to the plain exact pass.
func (k *kern) obExistsRefine(ctx context.Context, o *Object, forAll bool, bar float64) (Result, bool, error) {
	if bar <= 0 || !k.boundable(o) {
		r, err := k.obExistsExact(ctx, o, forAll)
		return r, true, err
	}
	init := o.First().PDF.Clone()
	if init.Vec().Normalize() == 0 {
		return Result{}, false, errZeroMass(o.ID)
	}
	// The pass computes P∃ over k.w (the complemented window for PST∀Q).
	// Result < bar translates to: exists — P∃ < bar (reject below);
	// forall — 1 − P∃ < bar, i.e. P∃ > 1 − bar (reject above).
	rejectBelow, rejectAbove := bar, 2.0
	if forAll {
		rejectBelow, rejectAbove = -1, 1-bar
	}
	p, qualified, err := existsOBRefine(ctx, k.chain, init.Vec(), o.First().Time, k.w, rejectBelow, rejectAbove, k.pool)
	if err != nil || !qualified {
		return Result{}, false, err
	}
	if forAll {
		p = 1 - p
	}
	return Result{ObjectID: o.ID, Prob: p}, true, nil
}

// filterGroupKernel builds the group kernel for the filter paths,
// dispatching on the plan's predicate: compound expressions compile
// their augmented program, everything else the (possibly complemented)
// single window.
func (e *Engine) filterGroupKernel(grp chainGroup, plan *evalPlan, complement bool) (*kern, error) {
	if plan.req.Predicate == PredicateExpr {
		return e.exprGroupKernel(grp, plan)
	}
	return e.groupKernel(grp, plan, complement)
}

// streamFilteredThreshold is the filter–refine core for WithThreshold
// requests without ranking: objects whose upper bound falls below τ are
// pruned; survivors are refined exactly and post-filtered exactly like
// the unfiltered stream.
func (e *Engine) streamFilteredThreshold(ctx context.Context, plan *evalPlan) iter.Seq2[Result, error] {
	tau := *plan.req.threshold
	forAll := plan.req.Predicate == PredicateForAll
	return func(yield func(Result, error) bool) {
		for _, grp := range e.db.groupByChain() {
			k, err := e.filterGroupKernel(grp, plan, forAll)
			if err != nil {
				yield(Result{}, err)
				return
			}
			for _, o := range grp.objects {
				if err := ctx.Err(); err != nil {
					yield(Result{}, err)
					return
				}
				plan.filterRep.Candidates++
				ub, ok, err := upperBound(ctx, plan, k, o)
				if err != nil {
					yield(Result{}, err)
					return
				}
				if ok && ub < tau {
					plan.filterRep.Pruned++
					continue
				}
				if exactZero(plan, ub, ok) { // reachable only when τ = 0
					plan.filterRep.Pruned++
					if !yield(Result{ObjectID: o.ID, Prob: 0}, nil) {
						return
					}
					continue
				}
				r, qualified, err := refineOne(ctx, plan, k, o, tau)
				if err != nil {
					yield(Result{}, err)
					return
				}
				plan.filterRep.Refined++
				if !qualified || r.Prob < tau {
					continue
				}
				if !yield(r, nil) {
					return
				}
			}
		}
	}
}

// topKFiltered folds the database through the k-bounded min-heap while
// pruning objects whose upper bound proves they cannot displace the
// current k-th result. The pruning bar is the heap minimum once the heap
// is full (strictly: an object with ub < bar has true probability ≤ ub
// < bar, so it loses every comparison including id tie-breaks), combined
// with the request threshold when present.
func (e *Engine) topKFiltered(ctx context.Context, plan *evalPlan, h *resultMinHeap) error {
	kk := plan.req.topK
	tau := -1.0
	if plan.req.threshold != nil {
		tau = *plan.req.threshold
	}
	forAll := plan.req.Predicate == PredicateForAll
	for _, grp := range e.db.groupByChain() {
		k, err := e.filterGroupKernel(grp, plan, forAll)
		if err != nil {
			return err
		}
		for _, o := range grp.objects {
			if err := ctx.Err(); err != nil {
				return err
			}
			plan.filterRep.Candidates++
			// bar: results provably below it cannot enter the answer.
			// The threshold is inclusive (keep Prob ≥ τ) and the heap
			// bar exclusive (must strictly beat the minimum), so they
			// prune at ub < τ and ub < heapMin respectively — both
			// covered by ub < bar with bar = max(τ, heapMin).
			bar := tau
			if h.Len() == kk && (*h)[0].Prob > bar {
				bar = (*h)[0].Prob
			}
			ub, ok, err := upperBound(ctx, plan, k, o)
			if err != nil {
				return err
			}
			if ok && bar >= 0 && ub < bar {
				plan.filterRep.Pruned++
				continue
			}
			if exactZero(plan, ub, ok) && tau <= 0 {
				// The bar could not prune (ties at the current minimum
				// are resolved by object id), but the result is known
				// bit-exactly: fold it in without evaluation.
				plan.filterRep.Pruned++
				pushTopK(h, kk, Result{ObjectID: o.ID, Prob: 0})
				continue
			}
			refineBar := bar
			if h.Len() < kk {
				// The heap still has room: every exact value is needed.
				refineBar = tau
			}
			r, qualified, err := refineOne(ctx, plan, k, o, refineBar)
			if err != nil {
				return err
			}
			plan.filterRep.Refined++
			if !qualified || (tau >= 0 && r.Prob < tau) {
				continue
			}
			pushTopK(h, kk, r)
		}
	}
	return nil
}
