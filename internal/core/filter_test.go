package core

import (
	"context"
	"math/rand"
	"testing"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// lineWalkDB builds a database over a 1-D random-walk chain of n states
// (±1 steps with a small stay probability) with objects observed at
// points spread over the line. Reachability is limited by the horizon,
// so a window near one end is provably unreachable for most objects —
// the shape that makes filter pruning effective and testable.
func lineWalkDB(t testing.TB, n, objects int, seed int64) *Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	chain := markov.MustChain(sparse.FromRows(n, n, func(i int) ([]int, []float64) {
		switch i {
		case 0:
			return []int{0, 1}, []float64{0.5, 0.5}
		case n - 1:
			return []int{n - 2, n - 1}, []float64{0.5, 0.5}
		default:
			return []int{i - 1, i, i + 1}, []float64{0.45, 0.1, 0.45}
		}
	}))
	db := NewDatabase(chain)
	for id := 0; id < objects; id++ {
		if err := db.AddSimple(id, markov.PointDistribution(n, rng.Intn(n))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// responsesEqual requires bit-identical result streams.
func responsesEqual(t *testing.T, label string, got, want *Response) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if !sameResult(got.Results[i], want.Results[i]) {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got.Results[i], want.Results[i])
		}
	}
}

// TestFilterRefineMatchesExact is the randomized cross-validation of the
// acceptance criteria: for every predicate × strategy × ranking shape,
// the filter–refine path must return results byte-identical to the
// unpruned exact path.
func TestFilterRefineMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	predicates := []Predicate{PredicateExists, PredicateForAll, PredicateKTimes}
	strategies := []Strategy{StrategyQueryBased, StrategyObjectBased, StrategyMonteCarlo}
	for trial := 0; trial < 12; trial++ {
		n := 30 + rng.Intn(40)
		db := lineWalkDB(t, n, 20+rng.Intn(30), int64(trial))
		e := NewEngine(db, Options{})
		lo := rng.Intn(n - 8)
		states := Interval(lo, lo+3+rng.Intn(5))
		t0 := 1 + rng.Intn(4)
		times := Interval(t0, t0+2+rng.Intn(6))
		tau := rng.Float64() * 0.5
		k := 1 + rng.Intn(8)

		for _, pred := range predicates {
			for _, strat := range strategies {
				if pred == PredicateKTimes && strat == StrategyMonteCarlo {
					// MC ktimes exists but is approximate and unfiltered;
					// skip the heavy sampling in this loop.
					continue
				}
				rankings := [][]RequestOption{
					{WithThreshold(tau)},
					{WithTopK(k)},
					{WithThreshold(tau), WithTopK(k)},
				}
				for ri, rank := range rankings {
					opts := append([]RequestOption{
						WithStates(states), WithTimes(times), WithStrategy(strat),
					}, rank...)
					req := NewRequest(pred, opts...)
					filtered, err := e.Evaluate(context.Background(), req)
					if err != nil {
						t.Fatalf("trial %d %v/%v/rank%d filtered: %v", trial, pred, strat, ri, err)
					}
					exact, err := e.Evaluate(context.Background(), req.With(WithFilterRefine(false)))
					if err != nil {
						t.Fatalf("trial %d %v/%v/rank%d exact: %v", trial, pred, strat, ri, err)
					}
					if exact.Filter != (FilterReport{}) {
						t.Fatalf("WithFilterRefine(false) still reported a funnel: %+v", exact.Filter)
					}
					label := pred.String() + "/" + strat.String()
					responsesEqual(t, label, filtered, exact)
				}
			}
		}
	}
}

// TestFilterEventuallyAndParallelUnaffected pins the non-eligible shapes
// (eventually predicate; parallel OB) to the plain path: same results,
// empty funnel.
func TestFilterIneligibleShapes(t *testing.T) {
	db := lineWalkDB(t, 40, 20, 7)
	e := NewEngine(db, Options{})

	ev := NewRequest(PredicateEventually, WithStates(Interval(0, 3)), WithThreshold(0.2), WithHittingLimits(300, 1e-10))
	resp, err := e.Evaluate(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Filter != (FilterReport{}) {
		t.Fatalf("eventually-request reported a filter funnel: %+v", resp.Filter)
	}

	par := NewRequest(PredicateExists, WithStates(Interval(0, 5)), WithTimes(Interval(2, 6)),
		WithStrategy(StrategyObjectBased), WithParallelism(4), WithThreshold(0.1))
	respPar, err := e.Evaluate(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	if respPar.Filter != (FilterReport{}) {
		t.Fatalf("parallel OB request reported a filter funnel: %+v", respPar.Filter)
	}
	want, err := e.Evaluate(context.Background(), par.With(WithParallelism(1), WithFilterRefine(false)))
	if err != nil {
		t.Fatal(err)
	}
	responsesEqual(t, "parallel-ob-threshold", respPar, want)
}

// TestFilterPrunesUnreachableObjects checks the funnel itself: on the
// line-walk database a window at the far end is unreachable within the
// horizon for most objects, which must be pruned without exact
// evaluation — at least 2× fewer refinements than candidates.
func TestFilterPrunesUnreachableObjects(t *testing.T) {
	db := lineWalkDB(t, 200, 100, 11)
	e := NewEngine(db, Options{})

	for _, tc := range []struct {
		name string
		opts []RequestOption
	}{
		{"threshold/qb", []RequestOption{WithThreshold(0.05)}},
		{"threshold/ob", []RequestOption{WithThreshold(0.05), WithStrategy(StrategyObjectBased)}},
		{"topk/qb", []RequestOption{WithTopK(10)}},
		{"topk/ob", []RequestOption{WithTopK(10), WithStrategy(StrategyObjectBased)}},
	} {
		opts := append([]RequestOption{WithStates(Interval(0, 9)), WithTimes(Interval(3, 8))}, tc.opts...)
		req := NewRequest(PredicateExists, opts...)
		resp, err := e.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		f := resp.Filter
		if f.Candidates != db.Len() {
			t.Fatalf("%s: Candidates = %d, want %d", tc.name, f.Candidates, db.Len())
		}
		if f.Pruned+f.Refined != f.Candidates {
			t.Fatalf("%s: funnel does not add up: %+v", tc.name, f)
		}
		if f.Refined*2 > f.Candidates {
			t.Fatalf("%s: refined %d of %d candidates, want ≥2× pruning", tc.name, f.Refined, f.Candidates)
		}
		exact, err := e.Evaluate(context.Background(), req.With(WithFilterRefine(false)))
		if err != nil {
			t.Fatalf("%s exact: %v", tc.name, err)
		}
		responsesEqual(t, tc.name, resp, exact)
	}
}

// TestFilterBoundsAreConservative cross-checks the envelope bounds
// against exact per-object probabilities on random instances: lo ≤ p ≤
// hi must hold for every object, window and observation time.
func TestFilterBoundsAreConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(30)
		db := cacheTestDB(t, n, 15, int64(trial+100))
		e := NewEngine(db, Options{})
		lo := rng.Intn(n - 6)
		q := NewQuery(Interval(lo, lo+2+rng.Intn(4)), Interval(1+rng.Intn(3), 4+rng.Intn(6)))
		w, err := compile(q, n)
		if err != nil {
			t.Fatal(err)
		}
		k := e.kernel(db.DefaultChain(), w, nil)
		for _, o := range db.Objects() {
			hi, okU, err := k.existsUpper(context.Background(), o)
			if err != nil {
				t.Fatal(err)
			}
			low, okL, err := k.existsLower(context.Background(), o)
			if err != nil {
				t.Fatal(err)
			}
			if !okU || !okL {
				continue
			}
			p, err := e.ExistsOB(o, q)
			if err != nil {
				t.Fatal(err)
			}
			if p > hi || p < low {
				t.Fatalf("trial %d object %d: p=%g outside bounds [%g, %g]", trial, o.ID, p, low, hi)
			}
		}
	}
}
