package core

import (
	"ust/internal/markov"
	"ust/internal/sparse"
)

// Temporal-independence baseline. Prior models (Section II, Figure 1b)
// treat the object's location at each timestamp as an independent random
// variable. Under that assumption
//
//	P∃_indep = 1 − Π_{t ∈ T□} (1 − P(o(t) ∈ S□))
//
// with the per-timestamp marginals taken from the (exact) Markov
// forward evolution. This is the comparison model of Figure 9(d): it
// systematically overestimates P∃ because it counts worlds that would
// have to "leap" between timestamps, and the bias grows with |T□|.

// ExistsIndependent computes the independence-model estimate of P∃ for a
// single-observation object.
func (e *Engine) ExistsIndependent(o *Object, q Query) (float64, error) {
	ch := e.db.ChainOf(o)
	w, err := compile(q, ch.NumStates())
	if err != nil {
		return 0, err
	}
	if w.k == 0 {
		return 0, nil
	}
	first := o.First()
	if first.Time > w.horizon {
		return 0, errObservedAfterHorizon(o.ID, first.Time, w.horizon)
	}
	init := first.PDF.Clone()
	if init.Vec().Normalize() == 0 {
		return 0, errZeroMass(o.ID)
	}
	return existsIndependent(ch, init.Vec(), first.Time, w), nil
}

func existsIndependent(chain *markov.Chain, init *sparse.Vec, t0 int, w *window) float64 {
	cur := init.Clone()
	pMissAll := 1.0
	if w.atTime(t0) {
		pMissAll *= 1 - regionMass(cur, w)
	}
	next := sparse.NewVec(init.Len())
	for t := t0; t < w.horizon; t++ {
		chain.Step(next, cur)
		cur, next = next, cur
		if w.atTime(t + 1) {
			pMissAll *= 1 - regionMass(cur, w)
		}
	}
	return 1 - pMissAll
}

// ForAllIndependent computes the independence-model estimate of P∀:
// Π_{t ∈ T□} P(o(t) ∈ S□).
func (e *Engine) ForAllIndependent(o *Object, q Query) (float64, error) {
	ch := e.db.ChainOf(o)
	w, err := compile(q, ch.NumStates())
	if err != nil {
		return 0, err
	}
	if w.k == 0 {
		return 1, nil
	}
	first := o.First()
	if first.Time > w.horizon {
		return 0, errObservedAfterHorizon(o.ID, first.Time, w.horizon)
	}
	init := first.PDF.Clone()
	if init.Vec().Normalize() == 0 {
		return 0, errZeroMass(o.ID)
	}

	cur := init.Vec().Clone()
	pInAll := 1.0
	if w.atTime(first.Time) {
		pInAll *= regionMass(cur, w)
	}
	next := sparse.NewVec(cur.Len())
	for t := first.Time; t < w.horizon; t++ {
		ch.Step(next, cur)
		cur, next = next, cur
		if w.atTime(t + 1) {
			pInAll *= regionMass(cur, w)
		}
	}
	return pInAll, nil
}

// regionMass returns the probability mass of v inside the (possibly
// inverted) spatial predicate, without modifying v.
func regionMass(v *sparse.Vec, w *window) float64 {
	s := 0.0
	v.Range(func(i int, x float64) {
		if w.inRegion(i) {
			s += x
		}
	})
	return s
}

// Marginal returns the exact marginal distribution P(o, t) of a single-
// observation object at time t ≥ its observation time — the
// per-timestamp view that both models share.
func (e *Engine) Marginal(o *Object, t int) (*markov.Distribution, error) {
	ch := e.db.ChainOf(o)
	if len(o.Observations) > 1 {
		// Columnar + cached: repeat marginals of an unchanged object are
		// served from the score cache under its construction serial.
		return e.kernel(ch, nil, nil).posteriorOf(o, t)
	}
	first := o.First()
	if t < first.Time {
		return nil, errObservedAfterHorizon(o.ID, first.Time, t)
	}
	init := first.PDF.Clone()
	if init.Vec().Normalize() == 0 {
		return nil, errZeroMass(o.ID)
	}
	return markov.FromVec(ch.Evolve(init.Vec(), t-first.Time)), nil
}
