package core

import (
	"context"
	"math"
	"sync"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// The sweep kernel layer. Every evaluation strategy in this package
// reduces to a small set of per-(chain, window, observation-time)
// primitives: the PST∃Q backward scoring sweep, the PSTkQ backward
// vector family, the unbounded-horizon hitting fixed point, and the
// boolean reachability envelopes that bound them from above and below.
// kern binds one chain and compiled window to the engine's shared score
// cache and buffer pool so that Evaluate, EvaluateSeq, Monitor, the
// experiment harness and the CLIs all share the same sweeps instead of
// each owning private ones (previously qbGroupEval in querybased.go,
// a private map in streamKTimesQB, and Monitor's evals map — three
// uncoordinated caches of the same data).
//
// A kern is cheap to construct (no precomputation). Concurrent Evaluate
// calls each build their own kern over the same underlying cache, which
// is concurrency-safe — but the parallel OB fan-out shares ONE kern
// across its workers, and the multi-observation evaluator reaches the
// memoizing accessors from that shared position, so the kern's mutable
// request-local state (the memo map and the lazily built region pins)
// is guarded by mu.
type kern struct {
	chain *markov.Chain
	w     *window
	cache *scoreCache // nil: engine-wide caching disabled for this request
	// tier, when set alongside cache, coordinates sweep computation
	// fleet-wide (sweeptier.go): wireable kinds consult it after a local
	// miss, adopting a peer's payload or computing under a lease.
	tier  SweepTier
	rep   *CacheReport
	pool  *sparse.VecPool
	fpool *sparse.FloatPool
	// cols is the owning database's columnar observation plane; the
	// multi-observation and posterior kernels consume its column blocks
	// directly instead of walking boxed pdfs.
	cols *ObsColumns
	// pins lazily materializes the window's region states for the flat
	// transfer step of the columnar multi-observation pass. Guarded by
	// mu (shared-kern fan-out).
	pins []int32
	// prog/exprTree are set instead of w for compound-expression
	// requests (plan.go): the compiled augmented program and the
	// resolved tree the filter bounds fold over.
	prog     *exprProg
	exprTree *Expr
	// local memoizes sweeps within this kern's lifetime (one chain group
	// of one request, or one Monitor). It serves two purposes: with the
	// engine cache bypassed it preserves the historical one-sweep-per-
	// distinct-time behavior (WithCache(false) must never degrade QB
	// evaluation to a sweep per object), and with the engine cache on it
	// short-circuits the per-object lookups — a scan over a million
	// objects takes the engine-wide mutex once per distinct sweep, not
	// once per object. Untracked by CacheReport, which therefore counts
	// DISTINCT sweep fetches of the evaluation, not object touches.
	// Guarded by mu.
	local map[scoreKey]scoreValue
	// mu guards local and pins: cheap (uncontended in the serial paths,
	// and the parallel workers only touch it once per fetch, never
	// inside a sweep).
	mu sync.Mutex
}

// fetch returns the payload for key, computing it at most once per
// distinct key across every engine sharing the cache: the request-local
// memo answers first, then — under the cache's per-key single-flight
// lock — the engine cache, then compute. Concurrent evaluations that
// miss the same key serialize on it, so exactly one runs compute and
// the rest observe a hit; holders of different keys never contend, and
// a waiter whose own context ends while queued behind another caller's
// sweep returns ctx.Err() instead of overstaying its deadline. A
// compute failure (typically the caller's context cancelling mid-sweep)
// releases the key so the next waiter computes with its own context.
func (k *kern) fetch(ctx context.Context, key scoreKey, compute func() (scoreValue, error)) (scoreValue, error) {
	k.mu.Lock()
	v, ok := k.local[key]
	k.mu.Unlock()
	if ok {
		return v, nil
	}
	if k.cache == nil {
		v, err := compute()
		if err != nil {
			return scoreValue{}, err
		}
		k.memo(key, v)
		return v, nil
	}
	// Optimistic read first: warm keys answer with one cache-mutex
	// acquisition and no per-key serialization. A miss here is
	// uncounted — the locked get below records the real outcome.
	if v, ok := k.cache.tryGet(key, k.rep); ok {
		k.memo(key, v)
		return v, nil
	}
	unlock, err := k.cache.lock(ctx, key)
	if err != nil {
		return scoreValue{}, err
	}
	defer unlock()
	if v, ok := k.cache.get(key, k.rep); ok {
		k.memo(key, v)
		return v, nil
	}
	if k.tier != nil && key.kind.wireable() {
		return k.fetchTier(ctx, key, compute)
	}
	v, err = compute()
	if err != nil {
		return scoreValue{}, err
	}
	k.memo(key, v)
	k.cache.put(key, v)
	return v, nil
}

// fetchTier resolves a locally missed, wireable sweep through the
// networked tier. It runs under the cache's per-key lock, so at most one
// goroutine per process talks to the tier about a given key. The tier is
// advisory: a peer payload that fails to decode, an Acquire error or an
// empty grant all degrade to local compute, and a failed compute under a
// held lease releases it so a waiting peer takes over at once.
func (k *kern) fetchTier(ctx context.Context, key scoreKey, compute func() (scoreValue, error)) (scoreValue, error) {
	sk := SweepKey{Chain: k.chain.Fingerprint(), Kind: uint8(key.kind), Sig: key.sig, T0: int64(key.t0)}
	payload, lease, aerr := k.tier.Acquire(ctx, sk)
	if aerr == nil && payload != nil {
		if v, derr := decodeSweepValue(payload, k.chain.NumStates()); derr == nil {
			k.memo(key, v)
			k.cache.adopt(key, v, k.rep)
			return v, nil
		}
	}
	v, err := compute()
	if err != nil {
		if lease != "" {
			k.tier.Release(ctx, sk, lease)
		}
		return scoreValue{}, err
	}
	k.memo(key, v)
	k.cache.put(key, v)
	if lease != "" {
		// Best-effort publish: a Fill error only costs peers a recompute.
		_ = k.tier.Fill(ctx, sk, lease, encodeSweepValue(v))
	}
	return v, nil
}

func (k *kern) memo(key scoreKey, v scoreValue) {
	if key.kind.genSensitive() {
		// Long-lived kerns (Monitor) would serve such entries across
		// database generations; only the engine cache knows how to
		// expire them. Every kind cached today is insensitive.
		return
	}
	k.mu.Lock()
	if k.local == nil {
		k.local = map[scoreKey]scoreValue{}
	}
	k.local[key] = v
	k.mu.Unlock()
}

// kernel builds the sweep kernel for one chain group under a prepared
// plan. plan may be nil (Monitor, legacy wrappers): caching is then on
// whenever the engine has a cache, and traffic goes unreported.
func (e *Engine) kernel(chain *markov.Chain, w *window, plan *evalPlan) *kern {
	k := &kern{chain: chain, w: w, pool: e.pool, fpool: e.fpool, cols: e.db.cols}
	if e.cache != nil && (plan == nil || plan.useCache) {
		k.cache = e.cache
		k.tier = e.opts.Sweeps
		if plan != nil {
			k.rep = &plan.cacheRep
		}
	}
	return k
}

// existsScoreAt returns the PST∃Q scoring vector for objects observed at
// time t0: entry s is the probability that a world at state s at t0
// satisfies the predicate. Served from the shared cache when possible.
// The returned vector is shared and must not be mutated.
func (k *kern) existsScoreAt(ctx context.Context, t0 int) (*sparse.Vec, error) {
	key := scoreKey{chain: k.chain, kind: kindExists, sig: k.w.signature(), t0: t0}
	v, err := k.fetch(ctx, key, func() (scoreValue, error) {
		score, serr := hitScores(ctx, k.chain, k.w, t0, k.pool)
		if serr != nil {
			return scoreValue{}, serr
		}
		return scoreValue{vecs: []*sparse.Vec{score}}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.vecs[0], nil
}

// ktimesBacksAt returns the |T□|+1 PSTkQ backward vectors at time t0.
// The returned vectors are shared and must not be mutated.
func (k *kern) ktimesBacksAt(ctx context.Context, t0 int) ([]*sparse.Vec, error) {
	key := scoreKey{chain: k.chain, kind: kindKTimes, sig: k.w.signature(), t0: t0}
	v, err := k.fetch(ctx, key, func() (scoreValue, error) {
		backs, berr := kTimesBackward(ctx, k.chain, k.w, t0, k.pool)
		if berr != nil {
			return scoreValue{}, berr
		}
		return scoreValue{vecs: backs}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.vecs, nil
}

// hittingFor returns the unbounded-horizon hitting-probability vector
// for the region, caching on the resolved (maxSteps, tol) so explicit
// and defaulted limits share entries. The returned vector is shared and
// must not be mutated.
func (k *kern) hittingFor(ctx context.Context, region []int, maxSteps int, tol float64) (*sparse.Vec, error) {
	maxSteps, tol = hittingLimits(k.chain.NumStates(), maxSteps, tol)
	h := uint64(fnvOffset)
	for _, s := range region {
		h = fnvMix(h, uint64(s)+1)
	}
	h = fnvMix(h, fnvSep)
	h = fnvMix(h, uint64(maxSteps))
	h = fnvMix(h, math.Float64bits(tol))
	key := scoreKey{chain: k.chain, kind: kindHitting, sig: h}
	v, err := k.fetch(ctx, key, func() (scoreValue, error) {
		scores, _, serr := hittingScores(ctx, k.chain, region, maxSteps, tol)
		if serr != nil {
			return scoreValue{}, serr
		}
		return scoreValue{vecs: []*sparse.Vec{scores}}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.vecs[0], nil
}

// possibleMaskAt returns the backward reachability envelope at t0: the
// states from which a trajectory CAN satisfy the (possibly inverted)
// window predicate. Mass outside the envelope can never contribute, so
// an object's initial mass on it upper-bounds its query probability.
func (k *kern) possibleMaskAt(ctx context.Context, t0 int) (*sparse.Bitset, error) {
	return k.maskAt(ctx, t0, kindPossible)
}

// certainMaskAt returns the dual envelope: the states from which EVERY
// trajectory satisfies the predicate. Initial mass on it lower-bounds
// the query probability.
func (k *kern) certainMaskAt(ctx context.Context, t0 int) (*sparse.Bitset, error) {
	return k.maskAt(ctx, t0, kindCertain)
}

func (k *kern) maskAt(ctx context.Context, t0 int, kind scoreKind) (*sparse.Bitset, error) {
	return k.maskFor(ctx, k.w, t0, kind)
}

// maskFor is maskAt over an explicit window — the compound-expression
// bounds need envelopes for each atom's fire window, not the kern's
// own.
func (k *kern) maskFor(ctx context.Context, w *window, t0 int, kind scoreKind) (*sparse.Bitset, error) {
	key := scoreKey{chain: k.chain, kind: kind, sig: w.signature(), t0: t0}
	v, err := k.fetch(ctx, key, func() (scoreValue, error) {
		m, merr := supportEnvelope(ctx, k.chain, w, t0, kind == kindCertain)
		if merr != nil {
			return scoreValue{}, merr
		}
		return scoreValue{bits: m}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.bits, nil
}

// supportEnvelope runs the boolean shadow of the backward sweep: the
// same loop shape as hitScores, propagating supports instead of mass.
// certain selects the all-successors (lower-bound) propagation.
func supportEnvelope(ctx context.Context, chain *markov.Chain, w *window, t0 int, certain bool) (*sparse.Bitset, error) {
	n := chain.NumStates()
	m := sparse.NewBitset(n)
	if w.k == 0 || w.horizon < t0 {
		return m, nil
	}
	next := sparse.NewBitset(n)
	for t := w.horizon; t > t0; t-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if w.atTime(t) {
			orRegion(m, w)
		}
		if certain {
			chain.StepBackCertain(next, m)
		} else {
			chain.StepBackSupport(next, m)
		}
		m, next = next, m
	}
	if w.atTime(t0) {
		orRegion(m, w)
	}
	return m, nil
}

// orRegion adds every state of the (possibly inverted) spatial predicate
// to the set — the boolean twin of pinRegion.
func orRegion(b *sparse.Bitset, w *window) {
	w.eachRegionState(func(s int) { b.Set(s) })
}

// boundSlack absorbs the floating-point daylight between a bound
// computed by mask-mass summation and the exact sweep's dot product, so
// conservative pruning decisions stay conservative under rounding.
const boundSlack = 1e-9

// boundable reports whether o is eligible for envelope bounds: exactly
// one observation, inside the horizon, against a non-empty window.
// Ineligible objects are simply refined exactly (multi-observation
// conditioning can concentrate mass anywhere, and after-horizon objects
// must surface the same error the exact path raises).
func (k *kern) boundable(o *Object) bool {
	return k.w.k > 0 && len(o.Observations) == 1 && o.First().Time <= k.w.horizon
}

// existsUpper returns a conservative upper bound on P∃(o) under the
// kern's window. ok is false when o is not boundable. A returned bound
// of exactly 0 is not merely conservative but EXACT: the observation
// support is disjoint from the reachability envelope, the score
// vector's support is contained in that envelope (float propagation
// follows the same edge structure and can only shrink support), so the
// exact dot product — and the OB forward pass's absorbed mass — is
// bit-exactly 0.0. Filter paths answer such objects without refinement.
func (k *kern) existsUpper(ctx context.Context, o *Object) (hi float64, ok bool, err error) {
	if !k.boundable(o) {
		return 1, false, nil
	}
	pm, err := k.possibleMaskAt(ctx, o.First().Time)
	if err != nil {
		return 1, false, err
	}
	pdf := o.First().PDF.Vec()
	mass := pdf.Sum()
	if mass <= 0 {
		return 1, false, nil
	}
	raw := pm.MassOn(pdf)
	if raw == 0 {
		return 0, true, nil
	}
	return raw/mass + boundSlack, true, nil
}

// existsLower returns a conservative lower bound on P∃(o). ok is false
// when o is not boundable.
func (k *kern) existsLower(ctx context.Context, o *Object) (lo float64, ok bool, err error) {
	if !k.boundable(o) {
		return 0, false, nil
	}
	cm, err := k.certainMaskAt(ctx, o.First().Time)
	if err != nil {
		return 0, false, err
	}
	pdf := o.First().PDF.Vec()
	mass := pdf.Sum()
	if mass <= 0 {
		return 0, false, nil
	}
	lo = cm.MassOn(pdf)/mass - boundSlack
	if lo < 0 {
		lo = 0
	}
	return lo, true, nil
}

// --- exact per-object evaluators -----------------------------------------
//
// These are THE per-object evaluation cores: the unfiltered streams, the
// filter–refine paths and Monitor all call the same functions, which is
// what makes pruned and unpruned results byte-identical by construction.

// existsExact answers one object with the query-based strategy (backward
// scoring sweep + dot product), handling the k = 0, multi-observation
// and after-horizon cases exactly like the historical stream core.
func (k *kern) existsExact(ctx context.Context, o *Object, forAll bool) (Result, error) {
	var p float64
	var err error
	switch {
	case k.w.k == 0:
		p = 0
	case len(o.Observations) > 1:
		p, err = k.multiObsExists(ctx, o)
	default:
		p, err = k.existsDot(ctx, o)
	}
	if err != nil {
		return Result{}, err
	}
	if forAll {
		p = 1 - p
	}
	return Result{ObjectID: o.ID, Prob: p}, nil
}

// existsDot is the single-observation QB core: dot the observation pdf
// with the (cached) scoring vector. Normalization is folded into the
// result (dot(pdf, s)/mass == dot(pdf/mass, s)) so the per-object cost
// is O(|supp(pdf)|) — no O(|S|) clone per object per request.
func (k *kern) existsDot(ctx context.Context, o *Object) (float64, error) {
	first := o.First()
	if first.Time > k.w.horizon {
		return 0, errObservedAfterHorizon(o.ID, first.Time, k.w.horizon)
	}
	pdf := first.PDF.Vec()
	mass := pdf.Sum()
	if mass == 0 {
		return 0, errZeroMass(o.ID)
	}
	score, err := k.existsScoreAt(ctx, first.Time)
	if err != nil {
		return 0, err
	}
	return pdf.Dot(score) / mass, nil
}

// obExistsExact answers one object with the object-based strategy (a
// forward pass), handling the PST∀Q complement edge cases exactly like
// the historical stream core. The kern's window must already be the
// complemented one for forAll requests.
func (k *kern) obExistsExact(ctx context.Context, o *Object, forAll bool) (Result, error) {
	if forAll && k.w.k == 0 {
		return Result{ObjectID: o.ID, Prob: 1}, nil
	}
	var p float64
	var err error
	if k.w.k > 0 && len(o.Observations) > 1 {
		// Multi-observation conditioning has no separate OB form — both
		// strategies run the same doubled-space pass (existsOBOne routes
		// here too), so the kern intercepts to consume the columnar
		// plane and share cached per-object results across strategies.
		p, err = k.multiObsExists(ctx, o)
	} else {
		p, err = existsOBOne(ctx, k.chain, o, k.w, k.pool)
	}
	if err != nil {
		return Result{}, err
	}
	if forAll {
		p = 1 - p
	}
	return Result{ObjectID: o.ID, Prob: p}, nil
}

// ktimesQBExact answers one object's PSTkQ distribution with the
// query-based strategy: |T□|+1 (cached) backward vectors, |T□|+1 dots.
func (k *kern) ktimesQBExact(ctx context.Context, o *Object) (Result, error) {
	if k.w.k == 0 {
		return kTimesResult(o.ID, []float64{1}), nil
	}
	if len(o.Observations) > 1 {
		return Result{}, errKTimesMultiObs(o)
	}
	first := o.First()
	if first.Time > k.w.horizon {
		return Result{}, errObservedAfterHorizon(o.ID, first.Time, k.w.horizon)
	}
	backs, err := k.ktimesBacksAt(ctx, first.Time)
	if err != nil {
		return Result{}, err
	}
	pdf := first.PDF.Vec()
	mass := pdf.Sum()
	if mass == 0 {
		return Result{}, errZeroMass(o.ID)
	}
	dist := make([]float64, k.w.k+1)
	for i := range dist {
		dist[i] = pdf.Dot(backs[i]) / mass
	}
	return kTimesResult(o.ID, dist), nil
}

// ktimesOBExact answers one object's PSTkQ distribution with the
// object-based count-matrix forward pass.
func (k *kern) ktimesOBExact(ctx context.Context, o *Object) (Result, error) {
	dist, err := kTimesOne(ctx, k.chain, o, k.w, k.pool)
	if err != nil {
		return Result{}, err
	}
	return kTimesResult(o.ID, dist), nil
}

// regionPins returns the window's region state list, materialized once
// per kern for the columnar transfer step.
func (k *kern) regionPins() []int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.pins == nil {
		k.pins = regionPins(k.w)
		if k.pins == nil {
			k.pins = []int32{} // distinguish "built, empty" from "unbuilt"
		}
	}
	return k.pins
}

// multiObsExists answers one multi-observation object through the
// columnar doubled-space kernel, caching the scalar under a key derived
// from the object's construction serial + window signature: repeat
// queries over an unchanged object hit, ingest mints a new serial and
// naturally misses, and entries for superseded objects age out of the
// LRU without any invalidation traffic.
func (k *kern) multiObsExists(ctx context.Context, o *Object) (float64, error) {
	key := scoreKey{chain: k.chain, kind: kindMultiObs, sig: fnvMix(k.w.signature(), o.serial)}
	v, err := k.fetch(ctx, key, func() (scoreValue, error) {
		p, perr := existsMultiObsSeg(ctx, k.chain, segForObject(k.cols, o), k.w, k.regionPins(), k.fpool)
		if perr != nil {
			return scoreValue{}, perr
		}
		return scoreValue{scalars: []float64{p}}, nil
	})
	if err != nil {
		return 0, err
	}
	return v.scalars[0], nil
}

// posteriorOf returns the object's smoothed posterior at time t through
// the columnar kernel, cached per (object serial, t). The cached vector
// is shared; the returned distribution wraps a clone so callers may
// Fuse/mutate it like the historical PosteriorAt result.
func (k *kern) posteriorOf(o *Object, t int) (*markov.Distribution, error) {
	key := scoreKey{chain: k.chain, kind: kindPosterior, sig: fnvMix(fnvOffset, o.serial), t0: t}
	v, err := k.fetch(context.Background(), key, func() (scoreValue, error) {
		d, derr := posteriorAtSeg(k.chain, segForObject(k.cols, o), t, k.fpool)
		if derr != nil {
			return scoreValue{}, derr
		}
		return scoreValue{vecs: []*sparse.Vec{d.Vec()}}, nil
	})
	if err != nil {
		return nil, err
	}
	return markov.FromVec(v.vecs[0].Clone()), nil
}
