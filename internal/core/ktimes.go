package core

import (
	"context"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// PSTkQ (Definition 4, algorithm of Section VII): the probability
// distribution over the number of query timestamps at which the object
// lies inside S□.
//
// The memory-efficient algorithm maintains the (|T□|+1) × |S| matrix
// C(t): entry c[k][s] is the probability that the object is at state s
// at time t having been inside the window at exactly k processed query
// timestamps. Each transition multiplies every row by M; arriving at a
// query timestamp shifts the in-window columns down one row (the visit
// count increments).

// KTimesOB computes the full k-distribution for one object with the
// object-based forward algorithm. The returned slice has |T□|+1 entries;
// entry k is P(object inside S□ at exactly k query timestamps).
func (e *Engine) KTimesOB(o *Object, q Query) ([]float64, error) {
	ch := e.db.ChainOf(o)
	w, err := compile(q, ch.NumStates())
	if err != nil {
		return nil, err
	}
	return kTimesOne(context.Background(), ch, o, w, e.pool)
}

// kTimesOne is the shared per-object PSTkQ kernel over a compiled
// window.
func kTimesOne(ctx context.Context, ch *markov.Chain, o *Object, w *window, pool *sparse.VecPool) ([]float64, error) {
	if w.k == 0 {
		return []float64{1}, nil
	}
	if len(o.Observations) > 1 {
		return nil, errKTimesMultiObs(o)
	}
	first := o.First()
	if first.Time > w.horizon {
		return nil, errObservedAfterHorizon(o.ID, first.Time, w.horizon)
	}
	init := first.PDF.Clone()
	if init.Vec().Normalize() == 0 {
		return nil, errZeroMass(o.ID)
	}
	return kTimesForward(ctx, ch, init.Vec(), first.Time, w, pool)
}

// kTimesForward steps the count matrix forward, checking ctx once per
// transition. All |T□|+2 scratch rows come from pool (nil allowed) and
// return to it.
func kTimesForward(ctx context.Context, chain *markov.Chain, init *sparse.Vec, t0 int, w *window, pool *sparse.VecPool) ([]float64, error) {
	n := chain.NumStates()
	rows := make([]*sparse.Vec, w.k+1)
	for i := range rows {
		rows[i] = pool.Get(n)
	}
	buf := pool.Get(n)
	defer func() {
		for _, r := range rows {
			pool.Put(r)
		}
		pool.Put(buf)
	}()
	rows[0].CopyFrom(init)
	if w.atTime(t0) {
		shiftDown(rows, w)
	}
	for t := t0; t < w.horizon; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Rows above the number of processed query times are all zero;
		// stepping them would be wasted work but correct. Step every
		// non-empty row.
		for i := range rows {
			if rows[i].NNZ() == 0 {
				continue
			}
			chain.Step(buf, rows[i])
			rows[i], buf = buf, rows[i]
		}
		if w.atTime(t + 1) {
			shiftDown(rows, w)
		}
	}
	out := make([]float64, w.k+1)
	for i, r := range rows {
		out[i] = r.Sum()
	}
	return out, nil
}

// shiftDown moves the in-window mass of row k into row k+1 (same
// states), from the top down so each world shifts exactly once. Mass in
// the last row stays: it has already visited at every query timestamp
// processed so far and the final shift would exceed |T□| (impossible —
// the last shift happens at the last query time, so the top row can only
// receive).
func shiftDown(rows []*sparse.Vec, w *window) {
	for i := len(rows) - 2; i >= 0; i-- {
		src, dst := rows[i], rows[i+1]
		src.Range(func(s int, x float64) {
			if w.inRegion(s) {
				dst.Add(s, x)
				src.Set(s, 0)
			}
		})
		src.Compact()
	}
}

// KTimesQB computes the k-distribution for every object in the database
// with a query-based backward sweep. For each chain group it maintains
// |T□|+1 backward vectors B_k, where B_k(t)[s] is the probability that a
// world at state s at time t visits the window at exactly k of the query
// timestamps in (t, horizon]; stepping back INTO a query timestamp
// first re-indexes in-window states to consume one visit. Each object is
// then answered with |T□|+1 dot products. Thin wrapper over Evaluate.
func (e *Engine) KTimesQB(q Query) ([]KResult, error) {
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateKTimes,
		WithWindow(q), WithStrategy(StrategyQueryBased)))
	if err != nil {
		return nil, err
	}
	return toKResults(resp.Results), nil
}

// toKResults converts unified ktimes Results into the legacy KResult
// form.
func toKResults(results []Result) []KResult {
	out := make([]KResult, len(results))
	for i, r := range results {
		out[i] = KResult{ObjectID: r.ObjectID, Dist: r.Dist}
	}
	return out
}

// kTimesBackward produces the scoring vectors B_0 … B_K at time t0,
// checking ctx once per backward step. The returned vectors are owned by
// the caller (and typically handed to the score cache); only the swap
// buffer is pooled.
func kTimesBackward(ctx context.Context, chain *markov.Chain, w *window, t0 int, pool *sparse.VecPool) ([]*sparse.Vec, error) {
	n := chain.NumStates()
	backs := make([]*sparse.Vec, w.k+1)
	for k := range backs {
		backs[k] = pool.Get(n)
	}
	// At the horizon, no future query times remain: every state has
	// exactly 0 future visits with probability 1.
	for s := 0; s < n; s++ {
		backs[0].Set(s, 1)
	}
	buf := pool.Get(n)
	for t := w.horizon; t > t0; t-- {
		if err := ctx.Err(); err != nil {
			pool.Put(buf)
			return nil, err
		}
		if w.atTime(t) {
			consumeVisit(backs, w)
		}
		// B_k(t-1) = M · B_k(t) for every k.
		for k := range backs {
			sparse.MatVec(buf, chain.Matrix(), backs[k])
			backs[k], buf = buf, backs[k]
		}
	}
	if w.atTime(t0) {
		consumeVisit(backs, w)
	}
	pool.Put(buf)
	return backs, nil
}

// consumeVisit re-indexes the backward vectors at a query timestamp: a
// world standing inside the window consumes one visit, so B_k[s ∈ S□]
// becomes B_{k-1}[s ∈ S□], and B_0[s ∈ S□] becomes 0 (a world inside the
// window cannot have zero visits from here on). Processed top-down so
// each level moves once.
func consumeVisit(backs []*sparse.Vec, w *window) {
	for k := len(backs) - 1; k >= 1; k-- {
		dst, src := backs[k], backs[k-1]
		w.eachRegionState(func(s int) { dst.Set(s, src.At(s)) })
	}
	b0 := backs[0]
	w.eachRegionState(func(s int) { b0.Set(s, 0) })
	b0.Compact()
}
