package core

import (
	"fmt"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// Materialized PSTkQ matrices (Section VII). Before presenting the
// memory-efficient C(t) algorithm, the paper defines the direct
// construction over the blown-up state space S′ = S × {0, …, |T□|}:
//
//	M− = diag(M, M, …, M)
//
//	M+ = | M−M′  M′            |
//	     |       M−M′  M′      |
//	     |             …       |
//	     |             M−M′ M′ |
//
// where M′ keeps only the columns inside S□. A world in block k sits at
// its current state having visited the window k times; stepping into a
// query timestamp moves in-window arrivals one block up. The paper
// notes this "blows up the memory requirement by a factor of |T□|" —
// this implementation exists to validate the efficient algorithm and to
// measure that cost (BenchmarkAblationKTimesAugmented).

// KTimesAugmented holds the blown-up matrices for one query region and
// window size.
type KTimesAugmented struct {
	base   *markov.Chain
	k      int // |T□|
	minus  *sparse.CSR
	plus   *sparse.CSR
	states int // |S|
}

// NewKTimesAugmented materializes the blown-up M− and M+.
func NewKTimesAugmented(chain *markov.Chain, regionStates []int, numQueryTimes int) *KTimesAugmented {
	if numQueryTimes < 1 {
		panic(fmt.Sprintf("core: k-times augmentation needs ≥ 1 query time, got %d", numQueryTimes))
	}
	n := chain.NumStates()
	mask := make([]bool, n)
	for _, s := range regionStates {
		if s < 0 || s >= n {
			panic(fmt.Sprintf("core: region state %d outside space of %d", s, n))
		}
		mask[s] = true
	}
	blocks := numQueryTimes + 1
	m := chain.Matrix()
	big := n * blocks

	minus := sparse.FromRows(big, big, func(row int) ([]int, []float64) {
		block, i := row/n, row%n
		cols, vals := m.RowSlices(i)
		idx := make([]int, len(cols))
		for p, j := range cols {
			idx[p] = block*n + j
		}
		return idx, vals
	})

	plus := sparse.FromRows(big, big, func(row int) ([]int, []float64) {
		block, i := row/n, row%n
		cols, vals := m.RowSlices(i)
		idx := make([]int, 0, len(cols))
		out := make([]float64, 0, len(cols))
		for p, j := range cols {
			target := block
			if mask[j] {
				// Arrival inside the window: bump the visit count,
				// saturating at the top block (which cannot occur for
				// valid windows — there are only |T□| chances).
				if target < blocks-1 {
					target++
				}
			}
			idx = append(idx, target*n+j)
			out = append(out, vals[p])
		}
		return idx, out
	})

	return &KTimesAugmented{base: chain, k: numQueryTimes, minus: minus, plus: plus, states: n}
}

// Minus returns the blown-up M− matrix.
func (a *KTimesAugmented) Minus() *sparse.CSR { return a.minus }

// Plus returns the blown-up M+ matrix.
func (a *KTimesAugmented) Plus() *sparse.CSR { return a.plus }

// KTimesOBAugmented evaluates the PSTkQ with the materialized blown-up
// matrices, returning the same |T□|+1 distribution as Engine.KTimesOB.
func KTimesOBAugmented(chain *markov.Chain, regionStates []int, times []int, init *sparse.Vec, t0 int) ([]float64, error) {
	q := NewQuery(regionStates, times)
	w, err := compile(q, chain.NumStates())
	if err != nil {
		return nil, err
	}
	if w.k == 0 {
		return []float64{1}, nil
	}
	if t0 > w.horizon {
		return nil, fmt.Errorf("core: start time %d after query horizon %d", t0, w.horizon)
	}
	aug := NewKTimesAugmented(chain, q.States, w.k)
	n := chain.NumStates()
	big := n * (w.k + 1)

	// Footnote 3: if t0 ∈ T□, worlds starting inside the window begin in
	// block 1.
	cur := sparse.NewVec(big)
	init.Range(func(s int, p float64) {
		block := 0
		if w.atTime(t0) && w.inRegion(s) {
			block = 1
		}
		cur.Add(block*n+s, p)
	})
	next := sparse.NewVec(big)
	for t := t0; t < w.horizon; t++ {
		if w.atTime(t + 1) {
			sparse.VecMat(next, cur, aug.plus)
		} else {
			sparse.VecMat(next, cur, aug.minus)
		}
		cur, next = next, cur
	}
	out := make([]float64, w.k+1)
	cur.Range(func(idx int, p float64) {
		out[idx/n] += p
	})
	return out, nil
}
