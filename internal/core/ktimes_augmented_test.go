package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/sparse"
)

func TestKTimesAugmentedPaperExample(t *testing.T) {
	chain := paperChainV(t)
	init := paperInit(t)
	dist, err := KTimesOBAugmented(chain, []int{0, 1}, []int{2, 3}, init, 0)
	if err != nil {
		t.Fatalf("KTimesOBAugmented: %v", err)
	}
	want := []float64{0.136, 0.672, 0.192}
	for k, w := range want {
		if math.Abs(dist[k]-w) > tol {
			t.Errorf("P(%d visits) = %.12f, want %g", k, dist[k], w)
		}
	}
}

func paperInit(t testing.TB) *sparse.Vec {
	t.Helper()
	v := sparse.NewVec(3)
	v.Set(1, 1)
	return v
}

func TestKTimesAugmentedMatchesEfficientQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		efficient, err := e.KTimesOB(o, q)
		if err != nil {
			return false
		}
		init := o.First().PDF.Clone()
		init.Vec().Normalize()
		augmented, err := KTimesOBAugmented(e.db.ChainOf(o), q.States, q.Times, init.Vec(), 0)
		if err != nil {
			return false
		}
		if len(efficient) != len(augmented) {
			return false
		}
		for k := range efficient {
			if math.Abs(efficient[k]-augmented[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKTimesAugmentedBlockStructure(t *testing.T) {
	chain := paperChainV(t)
	aug := NewKTimesAugmented(chain, []int{0, 1}, 2)
	minus, plus := aug.Minus(), aug.Plus()
	// Dimensions: (k+1)·|S| = 9.
	if r, c := minus.Dims(); r != 9 || c != 9 {
		t.Fatalf("M− dims %dx%d, want 9x9", r, c)
	}
	// M− is block diagonal: block 1's s2 row equals the base row,
	// shifted by |S|.
	if minus.At(3+1, 3+0) != 0.6 || minus.At(3+1, 3+2) != 0.4 {
		t.Error("M− block 1 wrong")
	}
	// Cross-block entries in M− must not exist.
	if minus.At(1, 3+0) != 0 {
		t.Error("M− leaks across blocks")
	}
	// M+: s2 -> s1 (in region) moves from block 0 to block 1.
	if plus.At(1, 3+0) != 0.6 {
		t.Error("M+ does not promote in-region arrivals")
	}
	// s2 -> s3 (outside region) stays in block 0.
	if plus.At(1, 2) != 0.4 {
		t.Error("M+ moved an out-of-region arrival")
	}
	// Top block saturates: s2 in block 2 -> s1 stays in block 2.
	if plus.At(2*3+1, 2*3+0) != 0.6 {
		t.Error("top block does not saturate")
	}
	// Both matrices remain stochastic (mass is only re-indexed).
	if err := minus.CheckStochastic(1e-12); err != nil {
		t.Errorf("M− not stochastic: %v", err)
	}
	if err := plus.CheckStochastic(1e-12); err != nil {
		t.Errorf("M+ not stochastic: %v", err)
	}
}

func TestKTimesAugmentedValidation(t *testing.T) {
	chain := paperChainV(t)
	if _, err := KTimesOBAugmented(chain, []int{0}, nil, paperInit(t), 0); err != nil {
		t.Errorf("empty window should return trivially: %v", err)
	}
	if _, err := KTimesOBAugmented(chain, []int{0}, []int{1}, paperInit(t), 5); err == nil {
		t.Error("start after horizon accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero query times did not panic in NewKTimesAugmented")
		}
	}()
	NewKTimesAugmented(chain, []int{0}, 0)
}
