package core

import (
	"context"
	"fmt"

	"ust/internal/markov"
)

// Monitor is a continuous (standing) PST∃Q: register a window once,
// then feed new observations as they arrive and read fresh results
// incrementally. Only objects whose observation set changed since the
// last read are re-evaluated — the backbone of the paper's monitoring
// applications (the Ice Patrol keeps one standing query per shipping
// lane and updates bergs as sightings come in).
//
// A Monitor is not safe for concurrent use.
type Monitor struct {
	engine *Engine
	query  Query
	// cached per-object probabilities and the dirty set.
	probs map[int]float64
	dirty map[int]bool
	// qb evaluators per chain, shared across refreshes; observation
	// changes do not invalidate backward scores (those depend only on
	// chain + query + observation time).
	evals map[*markov.Chain]*qbGroupEval
}

// NewMonitor registers a standing PST∃Q over the engine's database.
// All current objects are marked for evaluation on the first Results
// call.
func (e *Engine) NewMonitor(q Query) *Monitor {
	m := &Monitor{
		engine: e,
		query:  q,
		probs:  map[int]float64{},
		dirty:  map[int]bool{},
		evals:  map[*markov.Chain]*qbGroupEval{},
	}
	for _, o := range e.db.Objects() {
		m.dirty[o.ID] = true
	}
	return m
}

// Query returns the standing query window.
func (m *Monitor) Query() Query { return m.query }

// Observe attaches a new observation to an existing object and marks it
// dirty. The observation time must not duplicate an existing one.
func (m *Monitor) Observe(objectID int, obs Observation) error {
	db := m.engine.db
	o := db.Get(objectID)
	if o == nil {
		return fmt.Errorf("core: unknown object %d", objectID)
	}
	ch := db.ChainOf(o)
	if obs.PDF == nil || obs.PDF.NumStates() != ch.NumStates() {
		return fmt.Errorf("core: observation pdf dimension mismatch for object %d", objectID)
	}
	updated, err := NewObject(o.ID, o.Chain, append(append([]Observation(nil), o.Observations...), obs)...)
	if err != nil {
		return err
	}
	// Swap in place: preserve database order.
	for i, cur := range db.objects {
		if cur.ID == objectID {
			db.objects[i] = updated
			break
		}
	}
	db.byID[objectID] = updated
	m.dirty[objectID] = true
	return nil
}

// Track adds a brand-new object to the database and marks it dirty.
func (m *Monitor) Track(o *Object) error {
	if err := m.engine.db.Add(o); err != nil {
		return err
	}
	m.dirty[o.ID] = true
	return nil
}

// Dirty returns how many objects await re-evaluation.
func (m *Monitor) Dirty() int { return len(m.dirty) }

// Results refreshes every dirty object and returns the complete result
// set in database order. Clean objects are served from cache.
func (m *Monitor) Results() ([]Result, error) {
	db := m.engine.db
	if len(m.dirty) > 0 {
		for _, grp := range db.groupByChain() {
			var eval *qbGroupEval
			for _, o := range grp.objects {
				if !m.dirty[o.ID] {
					continue
				}
				if eval == nil {
					var err error
					eval, err = m.evalFor(grp.chain)
					if err != nil {
						return nil, err
					}
				}
				var p float64
				var err error
				switch {
				case eval.w.k == 0:
					p = 0
				case len(o.Observations) > 1:
					p, err = existsMultiObs(context.Background(), grp.chain, o.Observations, eval.w)
				default:
					p, err = eval.exists(context.Background(), o)
				}
				if err != nil {
					return nil, err
				}
				m.probs[o.ID] = p
				delete(m.dirty, o.ID)
			}
		}
	}
	out := make([]Result, 0, db.Len())
	for _, o := range db.Objects() {
		out = append(out, Result{ObjectID: o.ID, Prob: m.probs[o.ID]})
	}
	return out, nil
}

// evalFor returns (building if needed) the cached QB evaluator for a
// chain.
func (m *Monitor) evalFor(chain *markov.Chain) (*qbGroupEval, error) {
	if ev, ok := m.evals[chain]; ok {
		return ev, nil
	}
	w, err := compile(m.query, chain.NumStates())
	if err != nil {
		return nil, err
	}
	ev := newQBGroupEval(chain, w)
	m.evals[chain] = ev
	return ev, nil
}
