package core

import (
	"context"
	"fmt"

	"ust/internal/markov"
)

// Monitor is a continuous (standing) PST∃Q: register a window once,
// then feed new observations as they arrive and read fresh results
// incrementally. Only objects whose observation set changed since the
// last read are re-evaluated — the backbone of the paper's monitoring
// applications (the Ice Patrol keeps one standing query per shipping
// lane and updates bergs as sightings come in).
//
// Backward scoring sweeps are served by the engine's shared score cache
// — the same entries every Evaluate call uses — so a Monitor no longer
// owns a private sweep cache, and concurrent ad-hoc queries against the
// same engine reuse the standing query's sweeps (and vice versa).
// Observation updates advance the database generation, which expires
// cached sweeps lazily; results are identical to a fresh evaluation at
// every read.
//
// A Monitor is not safe for concurrent use.
type Monitor struct {
	engine *Engine
	query  Query
	// cached per-object probabilities and the dirty set.
	probs map[int]float64
	dirty map[int]bool
	// kernels per chain (compiled window + shared-cache binding).
	kerns map[*markov.Chain]*kern
}

// NewMonitor registers a standing PST∃Q over the engine's database.
// All current objects are marked for evaluation on the first Results
// call.
func (e *Engine) NewMonitor(q Query) *Monitor {
	m := &Monitor{
		engine: e,
		query:  q,
		probs:  map[int]float64{},
		dirty:  map[int]bool{},
		kerns:  map[*markov.Chain]*kern{},
	}
	for _, o := range e.db.Objects() {
		m.dirty[o.ID] = true
	}
	return m
}

// Query returns the standing query window.
func (m *Monitor) Query() Query { return m.query }

// Observe attaches a new observation to an existing object and marks it
// dirty. The observation time must not duplicate an existing one.
func (m *Monitor) Observe(objectID int, obs Observation) error {
	db := m.engine.db
	o := db.Get(objectID)
	if o == nil {
		return fmt.Errorf("core: unknown object %d", objectID)
	}
	ch := db.ChainOf(o)
	if obs.PDF == nil || obs.PDF.NumStates() != ch.NumStates() {
		return fmt.Errorf("core: observation pdf dimension mismatch for object %d", objectID)
	}
	updated, err := o.WithObservation(obs)
	if err != nil {
		return err
	}
	if err := db.ReplaceObject(updated); err != nil {
		return err
	}
	m.dirty[objectID] = true
	return nil
}

// Track adds a brand-new object to the database and marks it dirty.
func (m *Monitor) Track(o *Object) error {
	if err := m.engine.db.Add(o); err != nil {
		return err
	}
	m.dirty[o.ID] = true
	return nil
}

// Dirty returns how many objects await re-evaluation.
func (m *Monitor) Dirty() int { return len(m.dirty) }

// Results refreshes every dirty object and returns the complete result
// set in database order. Clean objects are served from cache.
func (m *Monitor) Results() ([]Result, error) {
	db := m.engine.db
	if len(m.dirty) > 0 {
		for _, grp := range db.groupByChain() {
			var k *kern
			for _, o := range grp.objects {
				if !m.dirty[o.ID] {
					continue
				}
				if k == nil {
					var err error
					k, err = m.kernFor(grp.chain)
					if err != nil {
						return nil, err
					}
				}
				r, err := k.existsExact(context.Background(), o, false)
				if err != nil {
					return nil, err
				}
				m.probs[o.ID] = r.Prob
				delete(m.dirty, o.ID)
			}
		}
	}
	out := make([]Result, 0, db.Len())
	for _, o := range db.Objects() {
		out = append(out, Result{ObjectID: o.ID, Prob: m.probs[o.ID]})
	}
	return out, nil
}

// kernFor returns (building if needed) the kernel binding for a chain:
// the compiled window is monitor-local, the sweeps behind it engine-wide.
func (m *Monitor) kernFor(chain *markov.Chain) (*kern, error) {
	if k, ok := m.kerns[chain]; ok {
		return k, nil
	}
	w, err := compile(m.query, chain.NumStates())
	if err != nil {
		return nil, err
	}
	k := m.engine.kernel(chain, w, nil)
	m.kerns[chain] = k
	return k, nil
}
