package core

import (
	"math"
	"testing"

	"ust/internal/markov"
)

func TestMonitorInitialResultsMatchEngine(t *testing.T) {
	db, _ := paperDB(t)
	db.MustAdd(MustObject(2, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 0)}))
	e := NewEngine(db, Options{})
	q := paperQueryV()
	m := e.NewMonitor(q)
	if m.Dirty() != 2 {
		t.Fatalf("Dirty = %d, want 2", m.Dirty())
	}
	got, err := m.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	want, err := e.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ObjectID != want[i].ObjectID || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
			t.Errorf("result %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if m.Dirty() != 0 {
		t.Errorf("Dirty after refresh = %d", m.Dirty())
	}
	if m.Query().Horizon() != q.Horizon() {
		t.Error("Query accessor wrong")
	}
}

func TestMonitorObserveUpdatesOnlyThatObject(t *testing.T) {
	// Chain VI scenario: a second observation at t=3 collapses object
	// 1's probability from 0.8 to 0.
	chain := paperChainVI(t)
	db := NewDatabase(chain)
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 0)}))
	db.MustAdd(MustObject(2, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 0)}))
	e := NewEngine(db, Options{})
	q := NewQuery([]int{0, 1}, []int{1, 2})
	m := e.NewMonitor(q)
	before, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before[0].Prob-0.8) > 1e-12 {
		t.Fatalf("initial P = %g, want 0.8", before[0].Prob)
	}

	if err := m.Observe(1, Observation{Time: 3, PDF: markov.PointDistribution(3, 1)}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if m.Dirty() != 1 {
		t.Fatalf("Dirty = %d, want 1", m.Dirty())
	}
	after, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Prob != 0 {
		t.Errorf("object 1 after second observation: P = %g, want 0", after[0].Prob)
	}
	if math.Abs(after[1].Prob-0.8) > 1e-12 {
		t.Errorf("object 2 unchanged expected: P = %g, want 0.8", after[1].Prob)
	}
	// The database object itself now carries two observations.
	if got := len(db.Get(1).Observations); got != 2 {
		t.Errorf("object 1 has %d observations, want 2", got)
	}
}

func TestMonitorObserveErrors(t *testing.T) {
	db, _ := paperDB(t)
	e := NewEngine(db, Options{})
	m := e.NewMonitor(paperQueryV())
	if err := m.Observe(99, Observation{Time: 1, PDF: markov.PointDistribution(3, 0)}); err == nil {
		t.Error("unknown object accepted")
	}
	if err := m.Observe(1, Observation{Time: 1, PDF: nil}); err == nil {
		t.Error("nil pdf accepted")
	}
	if err := m.Observe(1, Observation{Time: 1, PDF: markov.PointDistribution(5, 0)}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := m.Observe(1, Observation{Time: 0, PDF: markov.PointDistribution(3, 0)}); err == nil {
		t.Error("duplicate observation time accepted")
	}
}

func TestMonitorTrack(t *testing.T) {
	db, _ := paperDB(t)
	e := NewEngine(db, Options{})
	m := e.NewMonitor(paperQueryV())
	if _, err := m.Results(); err != nil {
		t.Fatal(err)
	}
	newObj := MustObject(42, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)})
	if err := m.Track(newObj); err != nil {
		t.Fatalf("Track: %v", err)
	}
	res, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results after Track, want 2", len(res))
	}
	if math.Abs(res[1].Prob-0.864) > 1e-12 {
		t.Errorf("tracked object P = %g, want 0.864", res[1].Prob)
	}
	// Duplicate ids refused.
	if err := m.Track(newObj); err == nil {
		t.Error("duplicate Track accepted")
	}
}

func TestMonitorCacheConsistencyUnderManyUpdates(t *testing.T) {
	// Interleave observations and reads; the monitor's incremental
	// answers must always equal a fresh engine evaluation.
	chain := paperChainVI(t)
	db := NewDatabase(chain)
	for id := 0; id < 6; id++ {
		db.MustAdd(MustObject(id, nil, Observation{Time: 0, PDF: markov.UniformOver(3, []int{0, 2})}))
	}
	e := NewEngine(db, Options{})
	q := NewQuery([]int{0, 1}, []int{1, 2})
	m := e.NewMonitor(q)
	for round := 0; round < 4; round++ {
		id := round % 6
		if err := m.Observe(id, Observation{Time: 3 + round, PDF: markov.UniformOver(3, []int{1, 2})}); err != nil {
			t.Fatalf("round %d Observe: %v", round, err)
		}
		got, err := m.Results()
		if err != nil {
			t.Fatalf("round %d Results: %v", round, err)
		}
		want, err := e.Exists(q)
		if err != nil {
			t.Fatalf("round %d fresh eval: %v", round, err)
		}
		for i := range want {
			if math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
				t.Fatalf("round %d object %d: monitor %g != fresh %g",
					round, want[i].ObjectID, got[i].Prob, want[i].Prob)
			}
		}
	}
}
