package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"ust/internal/markov"
)

// Monte-Carlo baseline (Section VIII-A): sample trajectories per object
// and report the fraction satisfying the predicate. Approximate; the
// paper notes the standard deviation of the estimate is
// sqrt(p(1−p)/n) — at n = 100 samples that is up to 5 percentage points.

type predicate int

const (
	predicateExists predicate = iota
	predicateForAll
)

// MonteCarloExists estimates P∃ for one object with n sampled paths.
func MonteCarloExists(chain *markov.Chain, o *Object, q Query, n int, rng *rand.Rand) (float64, error) {
	return monteCarloEval(chain, o, q, n, rng, predicateExists)
}

// MonteCarloForAll estimates P∀ for one object with n sampled paths.
func MonteCarloForAll(chain *markov.Chain, o *Object, q Query, n int, rng *rand.Rand) (float64, error) {
	return monteCarloEval(chain, o, q, n, rng, predicateForAll)
}

func monteCarloEval(chain *markov.Chain, o *Object, q Query, n int, rng *rand.Rand, pred predicate) (float64, error) {
	w, err := compile(q, chain.NumStates())
	if err != nil {
		return 0, err
	}
	return monteCarloRun(context.Background(), chain, o, w, n, rng, pred)
}

// monteCarloRun is the sampling kernel over a compiled window. It
// checks ctx once per sampled path and aborts with ctx.Err().
func monteCarloRun(ctx context.Context, chain *markov.Chain, o *Object, w *window, n int, rng *rand.Rand, pred predicate) (float64, error) {
	if w.k == 0 {
		if pred == predicateForAll {
			return 1, nil
		}
		return 0, nil
	}
	first := o.First()
	if first.Time > w.horizon {
		return 0, errObservedAfterHorizon(o.ID, first.Time, w.horizon)
	}
	if n <= 0 {
		return 0, fmt.Errorf("core: Monte-Carlo needs a positive sample count, got %d", n)
	}
	multi := len(o.Observations) > 1
	steps := w.horizon - first.Time
	if multi {
		if last := o.Last().Time; last > w.horizon {
			steps = last - first.Time
		}
	}
	var hitWeight, totalWeight float64
	for s := 0; s < n; s++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		path := chain.SamplePath(first.PDF.Vec(), steps, rng)
		weight := 1.0
		if multi {
			// Importance weight: likelihood of the later observations
			// given the sampled path. Worlds inconsistent with an
			// observation get weight 0 (class A of Section VI).
			for _, ob := range o.Observations[1:] {
				idx := ob.Time - first.Time
				if idx < 0 || idx >= len(path) {
					continue
				}
				weight *= ob.PDF.P(path[idx])
				if weight == 0 {
					break
				}
			}
		}
		if weight == 0 {
			continue
		}
		totalWeight += weight
		if pathSatisfies(path, first.Time, w, pred) {
			hitWeight += weight
		}
	}
	if totalWeight == 0 {
		return 0, fmt.Errorf("core: all %d sampled worlds contradict the observations", n)
	}
	return hitWeight / totalWeight, nil
}

func pathSatisfies(path []int, t0 int, w *window, pred predicate) bool {
	for t, s := range path {
		if !w.atTime(t0 + t) {
			continue
		}
		in := w.inRegion(s)
		if pred == predicateExists && in {
			return true
		}
		if pred == predicateForAll && !in {
			return false
		}
	}
	return pred == predicateForAll
}

// MonteCarloKTimes estimates the PSTkQ distribution for one object.
func MonteCarloKTimes(chain *markov.Chain, o *Object, q Query, n int, rng *rand.Rand) ([]float64, error) {
	w, err := compile(q, chain.NumStates())
	if err != nil {
		return nil, err
	}
	return monteCarloKTimesRun(context.Background(), chain, o, w, n, rng)
}

// monteCarloKTimesRun is the PSTkQ sampling kernel over a compiled
// window, checking ctx once per sampled path.
func monteCarloKTimesRun(ctx context.Context, chain *markov.Chain, o *Object, w *window, n int, rng *rand.Rand) ([]float64, error) {
	if w.k == 0 {
		return []float64{1}, nil
	}
	first := o.First()
	if first.Time > w.horizon {
		return nil, errObservedAfterHorizon(o.ID, first.Time, w.horizon)
	}
	if len(o.Observations) > 1 {
		return nil, errKTimesMultiObs(o)
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: Monte-Carlo needs a positive sample count, got %d", n)
	}
	steps := w.horizon - first.Time
	counts := make([]float64, w.k+1)
	for s := 0; s < n; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		path := chain.SamplePath(first.PDF.Vec(), steps, rng)
		visits := 0
		for t, st := range path {
			if w.atTime(first.Time+t) && w.inRegion(st) {
				visits++
			}
		}
		counts[visits]++
	}
	for k := range counts {
		counts[k] /= float64(n)
	}
	return counts, nil
}

// MonteCarloStdDev returns the paper's error formula sqrt(p(1−p)/n) for
// an estimated probability p from n samples.
func MonteCarloStdDev(p float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(p * (1 - p) / float64(n))
}
