package core

import (
	"context"
	"fmt"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// Multiple observations (Section VI of the paper). The paper doubles the
// state space to S × {¬hit, hit} so that worlds which already intersected
// the query window keep their current state and stay fusible with later
// observations. We represent the doubled space as two parallel vectors:
//
//	pNot — mass of worlds that have not yet intersected the window,
//	pHit — mass of worlds that have.
//
// Stepping both vectors by M and sweeping the in-window part of pNot
// into pHit at query timestamps is exactly the action of the paper's
// 2|S|×2|S| matrices M− and M+ without materializing them.
//
// At an observation time both halves are multiplied elementwise by the
// observation pdf (Lemma 1); normalization is deferred to the end, which
// leaves the possible-worlds ratio P(B)/(P(B)+P(C)) (Equation 1)
// unchanged while avoiding per-step rounding.

// existsMultiObs computes P∃ for an object with ≥ 1 observations.
// Observation list must be sorted by time (Object guarantees this).
// Checks ctx once per forward step. It delegates to the columnar kernel
// (colkernel.go) through a transient row→column conversion; callers with
// access to the database's columnar plane (the kern layer) skip the
// conversion and add per-object caching on top.
func existsMultiObs(ctx context.Context, chain *markov.Chain, obs []Observation, w *window) (float64, error) {
	if len(obs) == 0 {
		return 0, fmt.Errorf("core: no observations")
	}
	return existsMultiObsSeg(ctx, chain, segFromObservations(obs), w, nil, nil)
}

// existsMultiObsRow is the historical Vec-based pass, kept as the
// cross-validation and benchmark baseline for the columnar kernel.
func existsMultiObsRow(ctx context.Context, chain *markov.Chain, obs []Observation, w *window) (float64, error) {
	if len(obs) == 0 {
		return 0, fmt.Errorf("core: no observations")
	}
	n := chain.NumStates()
	pNot := obs[0].PDF.Vec().Clone()
	pNot.Normalize()
	pHit := sparse.NewVec(n)

	// The pass must run to the later of the query horizon and the last
	// observation: observations after the window still reweight worlds.
	end := w.horizon
	if last := obs[len(obs)-1].Time; last > end {
		end = last
	}
	nextObs := 1 // obs[0] seeds the pass

	t := obs[0].Time
	if w.atTime(t) {
		transferHits(pNot, pHit, w)
	}
	bufA := sparse.NewVec(n)
	bufB := sparse.NewVec(n)
	for ; t < end; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		chain.Step(bufA, pNot)
		pNot, bufA = bufA, pNot
		chain.Step(bufB, pHit)
		pHit, bufB = bufB, pHit
		if w.atTime(t + 1) {
			transferHits(pNot, pHit, w)
		}
		fused := false
		for nextObs < len(obs) && obs[nextObs].Time == t+1 {
			// Lemma 1: elementwise product with the observation pdf.
			pNot.Hadamard(obs[nextObs].PDF.Vec())
			pHit.Hadamard(obs[nextObs].PDF.Vec())
			nextObs++
			fused = true
		}
		if fused {
			// Rescale jointly; the ratio P(B)/(P(B)+P(C)) is invariant
			// under a common factor and renormalizing here prevents
			// underflow across long observation sequences.
			total := pNot.Sum() + pHit.Sum()
			if total == 0 {
				return 0, fmt.Errorf("core: observations are mutually impossible under the motion model")
			}
			pNot.Scale(1 / total)
			pHit.Scale(1 / total)
		}
	}
	b := pHit.Sum() // worlds that satisfy the predicate (class B)
	c := pNot.Sum() // possible worlds that do not (class C)
	total := b + c
	if total == 0 {
		return 0, fmt.Errorf("core: observations are mutually impossible under the motion model")
	}
	return b / total, nil
}

// transferHits moves in-window mass from pNot into the same states of
// pHit: the redirected block of the doubled M+ matrix.
func transferHits(pNot, pHit *sparse.Vec, w *window) {
	pNot.Range(func(i int, x float64) {
		if w.inRegion(i) {
			pHit.Add(i, x)
			pNot.Set(i, 0)
		}
	})
	pNot.Compact()
}

// PosteriorAt returns the object's state distribution at time t given
// all its observations — the smoothed/interpolated distribution that
// Section VI's machinery induces. It runs the same two-vector pass
// without any query window (the window never absorbs), fusing every
// observation, then normalizes.
//
// Observations at times > t still inform the result only if t lies
// between observations; this implementation conditions on observations
// at times ≤ max(t, last observation) and evolves/fuses in order, which
// matches the paper's forward treatment.
func PosteriorAt(chain *markov.Chain, obs []Observation, t int) (*markov.Distribution, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: no observations")
	}
	return posteriorAtSeg(chain, segFromObservations(obs), t, nil)
}

// posteriorAtRow is the historical Vec-based smoothing pass, kept as the
// cross-validation and benchmark baseline for the columnar kernel: it
// allocates a fresh vector per backward step, which is exactly the GC
// pressure posteriorAtSeg removes.
func posteriorAtRow(chain *markov.Chain, obs []Observation, t int) (*markov.Distribution, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: no observations")
	}
	if t < obs[0].Time {
		return nil, fmt.Errorf("core: cannot infer before the first observation (t=%d < %d)", t, obs[0].Time)
	}
	n := chain.NumStates()
	cur := obs[0].PDF.Vec().Clone()
	cur.Normalize()
	end := t
	if last := obs[len(obs)-1].Time; last > end {
		end = last
	}
	// forward[τ] snapshots are needed only at τ == t; keep one clone.
	var atT *sparse.Vec
	if obs[0].Time == t {
		atT = cur.Clone()
	}
	nextObs := 1
	buf := sparse.NewVec(n)
	for tau := obs[0].Time; tau < end; tau++ {
		chain.Step(buf, cur)
		cur, buf = buf, cur
		for nextObs < len(obs) && obs[nextObs].Time == tau+1 {
			cur.Hadamard(obs[nextObs].PDF.Vec())
			nextObs++
		}
		if cur.Sum() == 0 {
			return nil, fmt.Errorf("core: observations are mutually impossible under the motion model")
		}
		if tau+1 == t {
			atT = cur.Clone()
		}
	}
	if atT == nil {
		return nil, fmt.Errorf("core: internal error: no snapshot at t=%d", t)
	}
	if t < end {
		// Future observations reweight the past: the proper smoothed
		// posterior needs a backward pass. Compute it as
		// P(s at t | future obs) ∝ P(s at t) · P(future obs | s at t)
		// via one backward sweep of likelihoods.
		like := likelihoodBackward(chain, obs, t, end)
		atT.Hadamard(like)
	}
	if atT.Normalize() == 0 {
		return nil, fmt.Errorf("core: observations are mutually impossible under the motion model")
	}
	return markov.FromVec(atT), nil
}

// likelihoodBackward returns the vector L with L[s] = P(observations in
// (t, end] | state s at time t), computed by a backward sweep with the
// transposed chain.
func likelihoodBackward(chain *markov.Chain, obs []Observation, t, end int) *sparse.Vec {
	n := chain.NumStates()
	// L(end) starts as all ones *after* folding observations at end.
	like := sparse.NewVec(n)
	for i := 0; i < n; i++ {
		like.Set(i, 1)
	}
	for tau := end; tau > t; tau-- {
		for _, ob := range obs {
			if ob.Time == tau {
				like.Hadamard(ob.PDF.Vec())
			}
		}
		// L(tau-1)[s] = Σ_j M[s,j] · L(tau)[j] = row-wise MatVec.
		next := sparse.NewVec(n)
		sparse.MatVec(next, chain.Matrix(), like)
		like = next
	}
	return like
}

func errZeroMass(id int) error {
	return fmt.Errorf("core: object %d has zero-mass observation", id)
}

func errObservedAfterHorizon(id, tObs, horizon int) error {
	return fmt.Errorf("core: object %d observed at t=%d, after query horizon %d", id, tObs, horizon)
}
