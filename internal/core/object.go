package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ust/internal/markov"
)

// Observation is a (possibly uncertain) sighting of an object: a pdf
// over the state space at an absolute timestamp. A precise observation is
// a point distribution.
type Observation struct {
	Time int
	PDF  *markov.Distribution
}

// Object is an uncertain spatio-temporal object: its motion model (a
// Markov chain, possibly shared across the database) plus one or more
// observations. With a single observation the trajectory is extrapolated
// forward; with several it is interpolated between them (Section VI).
type Object struct {
	ID           int
	Chain        *markov.Chain // nil means "use the database default"
	Observations []Observation // sorted by Time, unique times
	// serial is a process-unique construction counter. Objects are
	// immutable after construction (ingest replaces the whole object),
	// so the serial is a content handle: caches key observation-derived
	// payloads (per-object posteriors, multi-observation sweep results)
	// on it and entries for superseded objects simply stop being asked
	// for, aging out of the LRU instead of needing invalidation.
	serial uint64
}

// objectSerials issues Object.serial values.
var objectSerials atomic.Uint64

// NewObject builds an object with the given id and observations, sorting
// them by time. chain may be nil when the object follows the database
// default chain.
func NewObject(id int, chain *markov.Chain, obs ...Observation) (*Object, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: object %d needs at least one observation", id)
	}
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Time < sorted[b].Time })
	for i, o := range sorted {
		if o.Time < 0 {
			return nil, fmt.Errorf("core: object %d has negative observation time %d", id, o.Time)
		}
		if o.PDF == nil {
			return nil, fmt.Errorf("core: object %d observation %d has nil pdf", id, i)
		}
		if o.PDF.Mass() <= 0 {
			return nil, fmt.Errorf("core: object %d observation at t=%d carries no mass", id, o.Time)
		}
		if i > 0 && sorted[i-1].Time == o.Time {
			return nil, fmt.Errorf("core: object %d has duplicate observation time %d", id, o.Time)
		}
	}
	return &Object{ID: id, Chain: chain, Observations: sorted, serial: objectSerials.Add(1)}, nil
}

// NewObjectSorted wraps an already-sorted observation slice without
// copying or re-sorting — the bulk-load entry point used by the store's
// columnar decoder, which materializes observation slices from shared
// arenas. It runs the same validation as NewObject (the input is a file,
// not a trusted caller) but adopts the slice: the caller must not touch
// obs afterwards.
func NewObjectSorted(id int, chain *markov.Chain, obs []Observation) (*Object, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: object %d needs at least one observation", id)
	}
	for i, o := range obs {
		if o.Time < 0 {
			return nil, fmt.Errorf("core: object %d has negative observation time %d", id, o.Time)
		}
		if o.PDF == nil {
			return nil, fmt.Errorf("core: object %d observation %d has nil pdf", id, i)
		}
		if o.PDF.Mass() <= 0 {
			return nil, fmt.Errorf("core: object %d observation at t=%d carries no mass", id, o.Time)
		}
		if i > 0 && obs[i-1].Time >= o.Time {
			return nil, fmt.Errorf("core: object %d observations not sorted by unique times", id)
		}
	}
	return &Object{ID: id, Chain: chain, Observations: obs, serial: objectSerials.Add(1)}, nil
}

// MustObject is NewObject that panics on error.
func MustObject(id int, chain *markov.Chain, obs ...Observation) *Object {
	o, err := NewObject(id, chain, obs...)
	if err != nil {
		panic(err)
	}
	return o
}

// WithObservation returns a copy of the object with one more
// observation added, keeping the time order — the single place the
// "append a sighting to an immutable object" sequence lives (used by
// Monitor, the service ingest path and the shard router). Only the new
// observation is validated (the existing ones were validated when o was
// built) and the observation slice is copied exactly once, into its
// sorted position; historically this path copied the slice twice and
// re-sorted/re-validated the whole history on every ingest.
func (o *Object) WithObservation(obs Observation) (*Object, error) {
	if obs.Time < 0 {
		return nil, fmt.Errorf("core: object %d has negative observation time %d", o.ID, obs.Time)
	}
	if obs.PDF == nil {
		return nil, fmt.Errorf("core: object %d observation %d has nil pdf", o.ID, len(o.Observations))
	}
	if obs.PDF.Mass() <= 0 {
		return nil, fmt.Errorf("core: object %d observation at t=%d carries no mass", o.ID, obs.Time)
	}
	at := sort.Search(len(o.Observations), func(i int) bool {
		return o.Observations[i].Time >= obs.Time
	})
	if at < len(o.Observations) && o.Observations[at].Time == obs.Time {
		return nil, fmt.Errorf("core: object %d has duplicate observation time %d", o.ID, obs.Time)
	}
	merged := make([]Observation, len(o.Observations)+1)
	copy(merged, o.Observations[:at])
	merged[at] = obs
	copy(merged[at+1:], o.Observations[at:])
	return &Object{ID: o.ID, Chain: o.Chain, Observations: merged, serial: objectSerials.Add(1)}, nil
}

// First returns the earliest observation.
func (o *Object) First() Observation { return o.Observations[0] }

// Last returns the latest observation.
func (o *Object) Last() Observation { return o.Observations[len(o.Observations)-1] }

// Database is a collection of uncertain objects sharing a default motion
// model. Objects may override the default with their own chain (buses vs
// cars vs trucks); the query-based strategy automatically groups objects
// by chain.
type Database struct {
	chain   *markov.Chain
	objects []*Object
	byID    map[int]*Object
	pos     map[int]int // object id → index into objects
	// cols is the columnar twin of objects: per-object observation
	// segments the vectorized kernels and the store's v2 writer consume.
	// Maintained by Add/ReplaceObject; pre-seeded by the store's mapped
	// load path.
	cols *ObsColumns
	// version counts mutations (inserts and observation updates). The
	// engine's score cache tags entries with the version current when
	// they were computed and lazily expires entries from older
	// generations — the generation-based invalidation that keeps cached
	// sweeps and standing queries honest across updates. Databases are
	// not safe for concurrent mutation (reads may be concurrent); the
	// version itself is atomic so generation checks — including a
	// SharedCache polling several databases — race-freely observe
	// mutations made to OTHER databases under their own locks.
	version atomic.Uint64
}

// NewDatabase creates a database with the given default chain.
func NewDatabase(defaultChain *markov.Chain) *Database {
	if defaultChain == nil {
		panic("core: nil default chain")
	}
	return &Database{chain: defaultChain, byID: map[int]*Object{}, pos: map[int]int{}, cols: NewObsColumns()}
}

// DefaultChain returns the database's default motion model.
func (db *Database) DefaultChain() *markov.Chain { return db.chain }

// Add inserts an object. The object's observations must be dimensioned
// for its effective chain.
func (db *Database) Add(o *Object) error {
	ch := db.ChainOf(o)
	for _, obs := range o.Observations {
		if obs.PDF.NumStates() != ch.NumStates() {
			return fmt.Errorf("core: object %d observation over %d states, chain has %d",
				o.ID, obs.PDF.NumStates(), ch.NumStates())
		}
	}
	if _, dup := db.byID[o.ID]; dup {
		return fmt.Errorf("core: duplicate object id %d", o.ID)
	}
	db.objects = append(db.objects, o)
	db.byID[o.ID] = o
	db.pos[o.ID] = len(db.objects) - 1
	db.cols.add(o)
	db.version.Add(1)
	return nil
}

// Version returns the database's mutation generation. It advances on
// every insert and observation update; caches keyed on derived state
// (the engine's score cache, a Monitor's per-object results) compare
// generations to decide staleness.
func (db *Database) Version() uint64 { return db.version.Load() }

// ReplaceObject swaps in a new version of an existing object (same ID),
// preserving database order, and advances the generation. It is the
// observation-update entry point used by Monitor.Observe.
func (db *Database) ReplaceObject(updated *Object) error {
	if updated == nil {
		return fmt.Errorf("core: nil object")
	}
	old := db.byID[updated.ID]
	if old == nil {
		return fmt.Errorf("core: unknown object %d", updated.ID)
	}
	ch := db.ChainOf(updated)
	for _, obs := range updated.Observations {
		if obs.PDF.NumStates() != ch.NumStates() {
			return fmt.Errorf("core: object %d observation over %d states, chain has %d",
				updated.ID, obs.PDF.NumStates(), ch.NumStates())
		}
	}
	db.objects[db.pos[updated.ID]] = updated
	db.byID[updated.ID] = updated
	db.cols.replace(old, updated)
	db.version.Add(1)
	return nil
}

// Remove deletes the object with the given id, preserving the insertion
// order of the survivors, and advances the generation. It is the
// migration entry point: a ring rebalance moves an object between
// workers as an insert on the destination followed by a Remove on the
// source. Removing an unknown id is an error — migration must never
// silently "succeed" at dropping an object that was not there.
func (db *Database) Remove(id int) error {
	if _, ok := db.byID[id]; !ok {
		return fmt.Errorf("core: unknown object %d", id)
	}
	at := db.pos[id]
	db.objects = append(db.objects[:at], db.objects[at+1:]...)
	for _, o := range db.objects[at:] {
		db.pos[o.ID]--
	}
	delete(db.byID, id)
	delete(db.pos, id)
	db.cols.remove(id)
	db.version.Add(1)
	return nil
}

// MustAdd is Add that panics on error.
func (db *Database) MustAdd(o *Object) {
	if err := db.Add(o); err != nil {
		panic(err)
	}
}

// AddSimple inserts an object with a single observation at time 0 under
// the default chain — the common case in the paper's experiments.
func (db *Database) AddSimple(id int, initial *markov.Distribution) error {
	o, err := NewObject(id, nil, Observation{Time: 0, PDF: initial})
	if err != nil {
		return err
	}
	return db.Add(o)
}

// Len returns the number of objects.
func (db *Database) Len() int { return len(db.objects) }

// Objects returns the backing object slice; callers must not mutate it.
func (db *Database) Objects() []*Object { return db.objects }

// Get returns the object with the given id, or nil.
func (db *Database) Get(id int) *Object { return db.byID[id] }

// ChainOf returns the effective chain of an object (its own or the
// database default).
func (db *Database) ChainOf(o *Object) *markov.Chain {
	if o.Chain != nil {
		return o.Chain
	}
	return db.chain
}

// groupByChain partitions the database's objects by effective chain,
// preserving insertion order within groups. The query-based strategy
// runs one backward sweep per group (Section V-C).
func (db *Database) groupByChain() []chainGroup {
	var groups []chainGroup
	index := map[*markov.Chain]int{}
	for _, o := range db.objects {
		ch := db.ChainOf(o)
		gi, ok := index[ch]
		if !ok {
			gi = len(groups)
			index[ch] = gi
			groups = append(groups, chainGroup{chain: ch})
		}
		groups[gi].objects = append(groups[gi].objects, o)
	}
	return groups
}

type chainGroup struct {
	chain   *markov.Chain
	objects []*Object
}
