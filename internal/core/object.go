package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ust/internal/markov"
)

// Observation is a (possibly uncertain) sighting of an object: a pdf
// over the state space at an absolute timestamp. A precise observation is
// a point distribution.
type Observation struct {
	Time int
	PDF  *markov.Distribution
}

// Object is an uncertain spatio-temporal object: its motion model (a
// Markov chain, possibly shared across the database) plus one or more
// observations. With a single observation the trajectory is extrapolated
// forward; with several it is interpolated between them (Section VI).
type Object struct {
	ID           int
	Chain        *markov.Chain // nil means "use the database default"
	Observations []Observation // sorted by Time, unique times
}

// NewObject builds an object with the given id and observations, sorting
// them by time. chain may be nil when the object follows the database
// default chain.
func NewObject(id int, chain *markov.Chain, obs ...Observation) (*Object, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: object %d needs at least one observation", id)
	}
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Time < sorted[b].Time })
	for i, o := range sorted {
		if o.Time < 0 {
			return nil, fmt.Errorf("core: object %d has negative observation time %d", id, o.Time)
		}
		if o.PDF == nil {
			return nil, fmt.Errorf("core: object %d observation %d has nil pdf", id, i)
		}
		if o.PDF.Mass() <= 0 {
			return nil, fmt.Errorf("core: object %d observation at t=%d carries no mass", id, o.Time)
		}
		if i > 0 && sorted[i-1].Time == o.Time {
			return nil, fmt.Errorf("core: object %d has duplicate observation time %d", id, o.Time)
		}
	}
	return &Object{ID: id, Chain: chain, Observations: sorted}, nil
}

// MustObject is NewObject that panics on error.
func MustObject(id int, chain *markov.Chain, obs ...Observation) *Object {
	o, err := NewObject(id, chain, obs...)
	if err != nil {
		panic(err)
	}
	return o
}

// WithObservation returns a copy of the object with one more
// observation appended, re-validated and re-sorted — the single place
// the "append a sighting to an immutable object" sequence lives (used
// by Monitor, the service ingest path and the shard router).
func (o *Object) WithObservation(obs Observation) (*Object, error) {
	return NewObject(o.ID, o.Chain,
		append(append([]Observation(nil), o.Observations...), obs)...)
}

// First returns the earliest observation.
func (o *Object) First() Observation { return o.Observations[0] }

// Last returns the latest observation.
func (o *Object) Last() Observation { return o.Observations[len(o.Observations)-1] }

// Database is a collection of uncertain objects sharing a default motion
// model. Objects may override the default with their own chain (buses vs
// cars vs trucks); the query-based strategy automatically groups objects
// by chain.
type Database struct {
	chain   *markov.Chain
	objects []*Object
	byID    map[int]*Object
	// version counts mutations (inserts and observation updates). The
	// engine's score cache tags entries with the version current when
	// they were computed and lazily expires entries from older
	// generations — the generation-based invalidation that keeps cached
	// sweeps and standing queries honest across updates. Databases are
	// not safe for concurrent mutation (reads may be concurrent); the
	// version itself is atomic so generation checks — including a
	// SharedCache polling several databases — race-freely observe
	// mutations made to OTHER databases under their own locks.
	version atomic.Uint64
}

// NewDatabase creates a database with the given default chain.
func NewDatabase(defaultChain *markov.Chain) *Database {
	if defaultChain == nil {
		panic("core: nil default chain")
	}
	return &Database{chain: defaultChain, byID: map[int]*Object{}}
}

// DefaultChain returns the database's default motion model.
func (db *Database) DefaultChain() *markov.Chain { return db.chain }

// Add inserts an object. The object's observations must be dimensioned
// for its effective chain.
func (db *Database) Add(o *Object) error {
	ch := db.ChainOf(o)
	for _, obs := range o.Observations {
		if obs.PDF.NumStates() != ch.NumStates() {
			return fmt.Errorf("core: object %d observation over %d states, chain has %d",
				o.ID, obs.PDF.NumStates(), ch.NumStates())
		}
	}
	if _, dup := db.byID[o.ID]; dup {
		return fmt.Errorf("core: duplicate object id %d", o.ID)
	}
	db.objects = append(db.objects, o)
	db.byID[o.ID] = o
	db.version.Add(1)
	return nil
}

// Version returns the database's mutation generation. It advances on
// every insert and observation update; caches keyed on derived state
// (the engine's score cache, a Monitor's per-object results) compare
// generations to decide staleness.
func (db *Database) Version() uint64 { return db.version.Load() }

// ReplaceObject swaps in a new version of an existing object (same ID),
// preserving database order, and advances the generation. It is the
// observation-update entry point used by Monitor.Observe.
func (db *Database) ReplaceObject(updated *Object) error {
	if updated == nil {
		return fmt.Errorf("core: nil object")
	}
	old := db.byID[updated.ID]
	if old == nil {
		return fmt.Errorf("core: unknown object %d", updated.ID)
	}
	ch := db.ChainOf(updated)
	for _, obs := range updated.Observations {
		if obs.PDF.NumStates() != ch.NumStates() {
			return fmt.Errorf("core: object %d observation over %d states, chain has %d",
				updated.ID, obs.PDF.NumStates(), ch.NumStates())
		}
	}
	for i, cur := range db.objects {
		if cur.ID == updated.ID {
			db.objects[i] = updated
			break
		}
	}
	db.byID[updated.ID] = updated
	db.version.Add(1)
	return nil
}

// MustAdd is Add that panics on error.
func (db *Database) MustAdd(o *Object) {
	if err := db.Add(o); err != nil {
		panic(err)
	}
}

// AddSimple inserts an object with a single observation at time 0 under
// the default chain — the common case in the paper's experiments.
func (db *Database) AddSimple(id int, initial *markov.Distribution) error {
	o, err := NewObject(id, nil, Observation{Time: 0, PDF: initial})
	if err != nil {
		return err
	}
	return db.Add(o)
}

// Len returns the number of objects.
func (db *Database) Len() int { return len(db.objects) }

// Objects returns the backing object slice; callers must not mutate it.
func (db *Database) Objects() []*Object { return db.objects }

// Get returns the object with the given id, or nil.
func (db *Database) Get(id int) *Object { return db.byID[id] }

// ChainOf returns the effective chain of an object (its own or the
// database default).
func (db *Database) ChainOf(o *Object) *markov.Chain {
	if o.Chain != nil {
		return o.Chain
	}
	return db.chain
}

// groupByChain partitions the database's objects by effective chain,
// preserving insertion order within groups. The query-based strategy
// runs one backward sweep per group (Section V-C).
func (db *Database) groupByChain() []chainGroup {
	var groups []chainGroup
	index := map[*markov.Chain]int{}
	for _, o := range db.objects {
		ch := db.ChainOf(o)
		gi, ok := index[ch]
		if !ok {
			gi = len(groups)
			index[ch] = gi
			groups = append(groups, chainGroup{chain: ch})
		}
		groups[gi].objects = append(groups[gi].objects, o)
	}
	return groups
}

type chainGroup struct {
	chain   *markov.Chain
	objects []*Object
}
