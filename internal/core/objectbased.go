package core

import (
	"context"
	"fmt"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// The object-based (OB) strategy of Section V-A evaluates a query for one
// object by propagating its distribution forward through time. Instead of
// materializing the paper's augmented matrices M− and M+, the default
// implementation applies the identical linear operator implicitly:
//
//   - a step into a non-query timestamp is a plain transition (M−),
//   - a step into a query timestamp additionally sweeps the mass that
//     landed inside S□ into the absorbing ◆ accumulator (M+).
//
// The materialized variant lives in absorbing.go and is used to validate
// this one (and in the ablation benchmark).

// sweepHits moves the probability mass of v that lies inside the spatial
// predicate into the return value, zeroing those entries. This is the
// action of M+'s extra column, applied in place.
func sweepHits(v *sparse.Vec, w *window) float64 {
	moved := 0.0
	v.Range(func(i int, x float64) {
		if w.inRegion(i) {
			moved += x
			v.Set(i, 0)
		}
	})
	v.Compact()
	return moved
}

// existsForward computes P∃(o, S□, T□) for an initial distribution
// observed at time t0, stepping forward to the query horizon. It is the
// shared kernel of the OB strategy. stopAt, when in (0, 1], allows early
// termination as soon as the accumulated hit probability reaches it; the
// returned value is then a lower bound (Section V-C's "sufficiently
// large ◆" pruning). Use stopAt > 1 (or 0, normalized to >1) for the
// exact result. The pass checks ctx once per forward step and aborts
// with ctx.Err() on cancellation. Scratch buffers come from pool (nil is
// allowed).
func existsForward(ctx context.Context, chain *markov.Chain, init *sparse.Vec, t0 int, w *window, stopAt float64, pool *sparse.VecPool) (float64, error) {
	if stopAt <= 0 {
		stopAt = 2 // never reached: exact evaluation
	}
	cur := pool.Get(init.Len())
	cur.CopyFrom(init)
	next := pool.Get(init.Len())
	defer func() {
		pool.Put(cur)
		pool.Put(next)
	}()
	hit := 0.0
	if w.atTime(t0) {
		hit += sweepHits(cur, w)
	}
	for t := t0; t < w.horizon; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if hit >= stopAt {
			break
		}
		if cur.NNZ() == 0 {
			break // every world already absorbed
		}
		chain.Step(next, cur)
		cur, next = next, cur
		if w.atTime(t + 1) {
			hit += sweepHits(cur, w)
		}
	}
	return hit, nil
}

// ExistsOB answers the PST∃Q for a single-observation object by the
// object-based strategy. Objects with multiple observations are routed
// through the multi-observation kernel (Section VI) automatically.
func (e *Engine) ExistsOB(o *Object, q Query) (float64, error) {
	ch := e.db.ChainOf(o)
	w, err := compile(q, ch.NumStates())
	if err != nil {
		return 0, err
	}
	return e.existsOB(context.Background(), o, ch, w)
}

func (e *Engine) existsOB(ctx context.Context, o *Object, ch *markov.Chain, w *window) (float64, error) {
	return existsOBOne(ctx, ch, o, w, e.pool)
}

// existsOBOne is the free-standing OB core shared by the engine wrappers
// and the kernel layer.
func existsOBOne(ctx context.Context, ch *markov.Chain, o *Object, w *window, pool *sparse.VecPool) (float64, error) {
	if w.k == 0 {
		return 0, nil
	}
	if len(o.Observations) > 1 {
		return existsMultiObs(ctx, ch, o.Observations, w)
	}
	first := o.First()
	if first.Time > w.horizon {
		return 0, fmt.Errorf("core: object %d observed at t=%d, after query horizon %d", o.ID, first.Time, w.horizon)
	}
	init := first.PDF.Clone()
	mass := init.Vec().Normalize()
	if mass == 0 {
		return 0, fmt.Errorf("core: object %d has zero-mass observation", o.ID)
	}
	return existsForward(ctx, ch, init.Vec(), first.Time, w, 0, pool)
}

// ExistsOBBounds runs the object-based forward pass with early
// termination against a probability threshold τ: it stops as soon as the
// query probability is provably ≥ τ (lower bound reached) or provably
// < τ (upper bound fell below). It returns the bracket [lo, hi] around
// the true probability at the moment of termination; lo == hi means the
// evaluation ran to completion. Only single-observation objects are
// eligible.
func (e *Engine) ExistsOBBounds(o *Object, q Query, tau float64) (lo, hi float64, err error) {
	ch := e.db.ChainOf(o)
	w, cerr := compile(q, ch.NumStates())
	if cerr != nil {
		return 0, 0, cerr
	}
	if w.k == 0 {
		return 0, 0, nil
	}
	if len(o.Observations) > 1 {
		p, merr := existsMultiObs(context.Background(), ch, o.Observations, w)
		return p, p, merr
	}
	first := o.First()
	if first.Time > w.horizon {
		return 0, 0, fmt.Errorf("core: object %d observed at t=%d, after query horizon %d", o.ID, first.Time, w.horizon)
	}
	init := first.PDF.Clone()
	init.Vec().Normalize()

	cur := init.Vec()
	hit := 0.0
	// remainingQueryTimes counts query timestamps not yet processed;
	// once zero, the remaining free mass can never be absorbed.
	remaining := w.k
	if w.atTime(first.Time) {
		hit += sweepHits(cur, w)
		remaining--
	}
	next := sparse.NewVec(cur.Len())
	for t := first.Time; t < w.horizon; t++ {
		free := cur.Sum()
		if hit >= tau {
			return hit, hit + free, nil // provably ≥ τ
		}
		if hit+free < tau {
			return hit, hit + free, nil // provably < τ
		}
		if cur.NNZ() == 0 || remaining == 0 {
			break
		}
		ch.Step(next, cur)
		cur, next = next, cur
		if w.atTime(t + 1) {
			hit += sweepHits(cur, w)
			remaining--
		}
	}
	return hit, hit, nil
}

// existsOBRefine is the filter–refine variant of the OB forward pass
// bracketed against a rejection band: it either proves the exact P∃
// falls outside [rejectBelow, rejectAbove] and stops early (qualified =
// false, p meaningless), or runs to completion and returns the exact
// probability — bit-identical to existsForward's, since the loop body is
// the same arithmetic in the same order. The proof side is the
// ExistsOBBounds bracketing: the accumulated hit mass is a lower bound,
// hit plus the free (unabsorbed) mass an upper bound. Rejection widens
// the band by boundSlack so float rounding can only make the filter keep
// more, never drop a qualifying object. Disable a side with rejectBelow
// ≤ 0 / rejectAbove ≥ 1+.
func existsOBRefine(ctx context.Context, chain *markov.Chain, init *sparse.Vec, t0 int, w *window, rejectBelow, rejectAbove float64, pool *sparse.VecPool) (p float64, qualified bool, err error) {
	cur := pool.Get(init.Len())
	cur.CopyFrom(init)
	next := pool.Get(init.Len())
	defer func() {
		pool.Put(cur)
		pool.Put(next)
	}()
	hit := 0.0
	if w.atTime(t0) {
		hit += sweepHits(cur, w)
	}
	for t := t0; t < w.horizon; t++ {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		if hit+cur.Sum() < rejectBelow-boundSlack {
			return 0, false, nil // provably below the band
		}
		if hit > rejectAbove+boundSlack {
			return 0, false, nil // provably above the band
		}
		if cur.NNZ() == 0 {
			break
		}
		chain.Step(next, cur)
		cur, next = next, cur
		if w.atTime(t + 1) {
			hit += sweepHits(cur, w)
		}
	}
	return hit, true, nil
}

// ForAllOB answers the PST∀Q by the complement identity of Section VII:
// P∀(o, S□, T□) = 1 − P∃(o, S \ S□, T□).
func (e *Engine) ForAllOB(o *Object, q Query) (float64, error) {
	ch := e.db.ChainOf(o)
	w, err := compile(q, ch.NumStates())
	if err != nil {
		return 0, err
	}
	if w.k == 0 {
		return 1, nil // vacuously inside for all of zero timestamps
	}
	pEscape, err := e.existsOB(context.Background(), o, ch, w.complemented())
	if err != nil {
		return 0, err
	}
	return 1 - pEscape, nil
}
