package core

import (
	"math"
	"testing"

	"ust/internal/markov"
)

// The tests in this file pin the exact numbers worked in the paper's
// running examples (Sections V-A, V-B, VI, VII).

// paperChain is the example chain of Section V:
//
//	      s1   s2   s3
//	s1 (   0,   0,   1 )
//	s2 ( 0.6,   0, 0.4 )
//	s3 (   0, 0.8, 0.2 )
func paperChainV(t testing.TB) *markov.Chain {
	t.Helper()
	c, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatalf("paper chain invalid: %v", err)
	}
	return c
}

// paperQueryV is the window S□ = {s1, s2}, T□ = {2, 3}.
func paperQueryV() Query {
	return NewQuery([]int{0, 1}, []int{2, 3})
}

// paperDB builds a database holding the single object observed at s2 at
// time 0.
func paperDB(t testing.TB) (*Database, *Object) {
	t.Helper()
	db := NewDatabase(paperChainV(t))
	o := MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)})
	db.MustAdd(o)
	return db, o
}

const tol = 1e-12

func TestPaperRunningExampleOB(t *testing.T) {
	db, o := paperDB(t)
	e := NewEngine(db, Options{})
	got, err := e.ExistsOB(o, paperQueryV())
	if err != nil {
		t.Fatalf("ExistsOB: %v", err)
	}
	if math.Abs(got-0.864) > tol {
		t.Errorf("P∃ via OB = %.12f, want 0.864", got)
	}
}

func TestPaperRunningExampleQB(t *testing.T) {
	db, _ := paperDB(t)
	e := NewEngine(db, Options{})
	res, err := e.ExistsQB(paperQueryV())
	if err != nil {
		t.Fatalf("ExistsQB: %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	if math.Abs(res[0].Prob-0.864) > tol {
		t.Errorf("P∃ via QB = %.12f, want 0.864", res[0].Prob)
	}
}

func TestPaperBackwardScoresExample2(t *testing.T) {
	// Section V-B works the backward vectors explicitly:
	// P(t=0) = (0.96, 0.864, 0.928, 1).
	db, _ := paperDB(t)
	e := NewEngine(db, Options{})
	scores, err := e.ExistsQBScores(db.DefaultChain(), paperQueryV(), 0)
	if err != nil {
		t.Fatalf("ExistsQBScores: %v", err)
	}
	want := []float64{0.96, 0.864, 0.928}
	for s, w := range want {
		if math.Abs(scores.At(s)-w) > tol {
			t.Errorf("score[s%d] = %.12f, want %g", s+1, scores.At(s), w)
		}
	}
}

func TestPaperAugmentedMatricesExample1(t *testing.T) {
	// Example 1 materializes M− and M+ for S□ = {s1, s2}:
	//
	//	M− = | 0   0   1   0 |    M+ = | 0  0  1   0  |
	//	     | 0.6 0   0.4 0 |         | 0  0  0.4 0.6|
	//	     | 0   0.8 0.2 0 |         | 0  0  0.2 0.8|
	//	     | 0   0   0   1 |         | 0  0  0   1  |
	aug := NewAugmentedChain(paperChainV(t), []int{0, 1})
	wantMinus := [][]float64{
		{0, 0, 1, 0},
		{0.6, 0, 0.4, 0},
		{0, 0.8, 0.2, 0},
		{0, 0, 0, 1},
	}
	wantPlus := [][]float64{
		{0, 0, 1, 0},
		{0, 0, 0.4, 0.6},
		{0, 0, 0.2, 0.8},
		{0, 0, 0, 1},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got := aug.Minus().At(i, j); math.Abs(got-wantMinus[i][j]) > tol {
				t.Errorf("M−[%d][%d] = %g, want %g", i, j, got, wantMinus[i][j])
			}
			if got := aug.Plus().At(i, j); math.Abs(got-wantPlus[i][j]) > tol {
				t.Errorf("M+[%d][%d] = %g, want %g", i, j, got, wantPlus[i][j])
			}
		}
	}
}

func TestPaperAugmentedEvaluationMatchesImplicit(t *testing.T) {
	chain := paperChainV(t)
	init := markov.PointDistribution(3, 1)
	got, err := ExistsOBAugmented(chain, []int{0, 1}, []int{2, 3}, init.Vec(), 0)
	if err != nil {
		t.Fatalf("ExistsOBAugmented: %v", err)
	}
	if math.Abs(got-0.864) > tol {
		t.Errorf("augmented OB = %.12f, want 0.864", got)
	}
	gotQB, err := ExistsQBAugmented(chain, []int{0, 1}, []int{2, 3}, init.Vec(), 0)
	if err != nil {
		t.Fatalf("ExistsQBAugmented: %v", err)
	}
	if math.Abs(gotQB-0.864) > tol {
		t.Errorf("augmented QB = %.12f, want 0.864", gotQB)
	}
}

func TestPaperKTimesExample(t *testing.T) {
	// Section VII works the k-times distribution for the same window:
	// P(0 visits) = 0.136, P(1) = 0.672, P(2) = 0.192.
	db, o := paperDB(t)
	e := NewEngine(db, Options{})
	dist, err := e.KTimesOB(o, paperQueryV())
	if err != nil {
		t.Fatalf("KTimesOB: %v", err)
	}
	want := []float64{0.136, 0.672, 0.192}
	if len(dist) != len(want) {
		t.Fatalf("k-distribution has %d entries, want %d", len(dist), len(want))
	}
	for k, w := range want {
		if math.Abs(dist[k]-w) > tol {
			t.Errorf("P(%d visits) = %.12f, want %g", k, dist[k], w)
		}
	}
	// The QB variant must agree.
	kres, err := e.KTimesQB(paperQueryV())
	if err != nil {
		t.Fatalf("KTimesQB: %v", err)
	}
	for k, w := range want {
		if math.Abs(kres[0].Dist[k]-w) > tol {
			t.Errorf("QB P(%d visits) = %.12f, want %g", k, kres[0].Dist[k], w)
		}
	}
}

// paperChainVI is the chain of the multi-observation example
// (Section VI): s2's row changes to (0.5, 0, 0.5).
func paperChainVI(t testing.TB) *markov.Chain {
	t.Helper()
	c, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.5, 0, 0.5},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatalf("chain invalid: %v", err)
	}
	return c
}

func TestPaperMultiObsExample(t *testing.T) {
	// Figure 7 / Section VI: object observed at s1 at t=0 and at s2 at
	// t=3; window S□ = {s1, s2}, T□ = {1, 2}. The only possible path
	// s1→s3→s3→s2 misses the window, so P∃ = 0.
	chain := paperChainVI(t)
	db := NewDatabase(chain)
	o := MustObject(1, nil,
		Observation{Time: 0, PDF: markov.PointDistribution(3, 0)},
		Observation{Time: 3, PDF: markov.PointDistribution(3, 1)},
	)
	db.MustAdd(o)
	e := NewEngine(db, Options{})
	q := NewQuery([]int{0, 1}, []int{1, 2})
	got, err := e.ExistsOB(o, q)
	if err != nil {
		t.Fatalf("ExistsOB: %v", err)
	}
	if got != 0 {
		t.Errorf("P∃ = %g, want exactly 0", got)
	}
	// The posterior at t=3 must collapse to s2, not-hit — i.e. the
	// normalized distribution the paper derives: (0, 1, 0, 0, 0, 0).
	post, err := PosteriorAt(chain, o.Observations, 3)
	if err != nil {
		t.Fatalf("PosteriorAt: %v", err)
	}
	if math.Abs(post.P(1)-1) > tol {
		t.Errorf("posterior at t=3 = %v, want point mass on s2", post)
	}
}

func TestPaperMultiObsIntermediateVectors(t *testing.T) {
	// The paper's trace before the second observation:
	// P(o,2) = (0, 0, 0.2 | 0, 0.8, 0) and
	// P(o,3) = (0, 0.16, 0.04 | 0.4, 0, 0.4).
	// With the two-vector representation this means at t=3:
	// pNot = (0, 0.16, 0.04), pHit = (0.4, 0, 0.4), total exists
	// probability before fusing obs2 would be 0.8.
	chain := paperChainVI(t)
	db := NewDatabase(chain)
	// Without the second observation the same pass gives P(B) directly.
	oSingle := MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 0)})
	db.MustAdd(oSingle)
	e := NewEngine(db, Options{})
	q := NewQuery([]int{0, 1}, []int{1, 2})
	got, err := e.ExistsOB(oSingle, q)
	if err != nil {
		t.Fatalf("ExistsOB: %v", err)
	}
	if math.Abs(got-0.8) > tol {
		t.Errorf("P∃ without obs2 = %.12f, want 0.8 (= 0.4 + 0.4)", got)
	}
}

func TestPaperFootnote2StartInsideWindow(t *testing.T) {
	// Footnote 2: when t=0 ∈ T□, initial mass inside S□ is an immediate
	// hit. Object starts at s2 ∈ S□.
	db, o := paperDB(t)
	e := NewEngine(db, Options{})
	q := NewQuery([]int{0, 1}, []int{0})
	got, err := e.ExistsOB(o, q)
	if err != nil {
		t.Fatalf("ExistsOB: %v", err)
	}
	if got != 1 {
		t.Errorf("P∃ with t0 in window = %g, want 1", got)
	}
	// QB path must agree (score pinning at t0).
	res, err := e.ExistsQB(q)
	if err != nil {
		t.Fatalf("ExistsQB: %v", err)
	}
	if res[0].Prob != 1 {
		t.Errorf("QB P∃ with t0 in window = %g, want 1", res[0].Prob)
	}
	// And the k-times footnote 3: the distribution starts at k=1.
	dist, err := e.KTimesOB(o, q)
	if err != nil {
		t.Fatalf("KTimesOB: %v", err)
	}
	if math.Abs(dist[1]-1) > tol || dist[0] != 0 {
		t.Errorf("k-dist with t0 in window = %v, want [0 1]", dist)
	}
}
