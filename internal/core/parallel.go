package core

import (
	"fmt"
	"runtime"
	"sync"
)

// Parallel object-based evaluation. The OB strategy is embarrassingly
// parallel across objects (each forward pass touches only per-object
// state); chains are immutable after construction, so workers share
// them freely. The QB strategy needs no such treatment: its per-object
// work is already a dot product.

// ExistsOBParallel evaluates the PST∃Q for every object with the
// object-based strategy fanned out over workers goroutines
// (workers ≤ 0 selects GOMAXPROCS). Results are in database order, as
// with ExistsQB.
func (e *Engine) ExistsOBParallel(q Query, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	objs := e.db.Objects()
	results := make([]Result, len(objs))
	// Pre-compile one window per chain group and warm the transposes so
	// concurrent lazy initialization cannot race.
	windows := map[int]*window{} // object index -> compiled window
	for _, grp := range e.db.groupByChain() {
		w, err := compile(q, grp.chain.NumStates())
		if err != nil {
			return nil, err
		}
		grp.chain.Transposed()
		for _, o := range grp.objects {
			windows[o.ID] = w
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				o := objs[idx]
				p, err := e.existsOB(o, e.db.ChainOf(o), windows[o.ID])
				if err != nil {
					select {
					case errs <- fmt.Errorf("object %d: %w", o.ID, err):
					default:
					}
					continue
				}
				results[idx] = Result{ObjectID: o.ID, Prob: p}
			}
		}()
	}
	for idx := range objs {
		next <- idx
	}
	close(next)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return results, nil
}
