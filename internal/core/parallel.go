package core

import (
	"context"
	"sync"
)

// Ordered parallel evaluation. Per-object work (object-based forward
// passes, Monte-Carlo sampling) is embarrassingly parallel: chains are
// immutable after construction, so workers share them freely. The
// query-based strategy needs no such treatment — its per-object work is
// already a dot product.
//
// parallelOrdered delivers results in input order through a bounded
// reorder pipeline, so streaming consumers see the same sequence as the
// serial path while memory stays O(workers) regardless of input size.
// The first failure — the one at the lowest input index, which makes
// the returned error deterministic regardless of goroutine scheduling —
// cancels all remaining work. It is generic over the work-item result
// type: the per-object streams instantiate it with Result, the batch
// entry points (batch.go) with whole Responses.
func parallelOrdered[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, idx int) (T, error)) func(yield func(T, error) bool) {
	var zero T
	return func(yield func(T, error) bool) {
		if n == 0 {
			return
		}
		if workers > n {
			workers = n
		}
		ctx, cancel := context.WithCancel(ctx)

		type slot struct {
			r   T
			err error
		}
		type job struct {
			idx int
			out chan slot
		}
		// order carries each job's result channel in submission order;
		// its capacity bounds how far workers may run ahead of the
		// consumer.
		order := make(chan chan slot, 2*workers)
		jobs := make(chan job)

		go func() { // feeder
			defer close(jobs)
			defer close(order)
			for i := 0; i < n; i++ {
				out := make(chan slot, 1)
				select {
				case order <- out:
				case <-ctx.Done():
					return
				}
				select {
				case jobs <- job{idx: i, out: out}:
				case <-ctx.Done():
					return
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					r, err := fn(ctx, j.idx)
					j.out <- slot{r: r, err: err} // buffered: never blocks
				}
			}()
		}
		// Cancel BEFORE waiting: on an early return (consumer break or
		// error) the feeder is blocked sending into the full pipeline
		// and only the cancellation releases it — waiting first would
		// deadlock.
		defer func() {
			cancel()
			wg.Wait()
		}()

		for out := range order {
			var s slot
			select {
			case s = <-out:
			case <-ctx.Done():
				yield(zero, ctx.Err())
				return
			}
			if s.err != nil {
				yield(zero, s.err)
				return
			}
			if !yield(s.r, nil) {
				return
			}
		}
		// The feeder closes order early when ctx is cancelled; if every
		// in-flight item still completed cleanly the loop above ends
		// without an error slot. A cancelled scan must never look like a
		// complete one — surface ctx.Err() explicitly.
		if err := ctx.Err(); err != nil {
			yield(zero, err)
		}
	}
}

// ExistsOBParallel evaluates the PST∃Q for every object with the
// object-based strategy fanned out over workers goroutines
// (workers ≤ 0 selects GOMAXPROCS). Results are in evaluation order, as
// with Evaluate. The first per-object error cancels all remaining work
// and is returned deterministically (lowest object index wins).
func (e *Engine) ExistsOBParallel(q Query, workers int) ([]Result, error) {
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateExists,
		WithWindow(q), WithStrategy(StrategyObjectBased), WithParallelism(workers)))
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}
