package core

import (
	"context"
	"fmt"
	"iter"
	"math/rand"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// Compilation and evaluation of compound expressions (algebra.go) by
// flag-bit state-space augmentation. The chain's state space S is
// crossed with the flag space {0,1}^m, one bit per atom; bit i is set
// ("fired") once the trajectory has been inside atom i's FIRE region at
// one of its window timestamps. For an exists-atom the fire region is
// the atom's own region (firing makes it true); for a forall-atom it is
// the complement (firing means a violation, making it false). At the
// end of the horizon a world's atom truth values are a pure function of
// its flag word, so the expression's probability is the mass accepted
// by a 2^m-entry truth table.
//
// Both exact strategies run over this augmented space:
//
//   - query-based: ONE backward sweep per (chain, observation time)
//     maintaining 2^m scoring vectors — shared across all objects of
//     the group through the score cache — then a flag-aware dot product
//     per object;
//   - object-based: one forward pass per object over the (lazily
//     materialized) flag-indexed vector family, the direct analogue of
//     the PSTkQ count-matrix pass in ktimes.go.
//
// Correlations between atoms are handled exactly by construction: every
// world carries all its flags through the same trajectory. Evaluating
// the atoms separately and multiplying would be wrong whenever windows
// overlap or the chain mixes slowly; pinning tests compare both
// strategies against BruteForceExpr world enumeration.

func errExprMultiObs(o *Object) error {
	return fmt.Errorf("core: compound expressions support single-observation objects; object %d has %d", o.ID, len(o.Observations))
}

// exprProg is one expression compiled against a fixed state space.
// Immutable after compileExpr returns, so it can be shared by parallel
// workers.
type exprProg struct {
	n    int // state-space size
	m    int // atom count
	fire []*window
	// accept[b] answers the expression for a world whose final flag
	// word is b.
	accept []bool
	// horizon is the largest timestamp of any atom window (-1 when all
	// atom windows are empty).
	horizon int
	// deltas maps each event timestamp to the per-state fired-bit mask:
	// deltas[t][s] has bit i set iff atom i is active at t and state s
	// lies in its fire region. Timestamps with identical active-atom
	// sets share one backing array.
	deltas map[int][]uint8
	sig    uint64
}

// compileExpr compiles a resolved (region-free), validated expression.
func compileExpr(x Expr, numStates int) (*exprProg, error) {
	if err := x.validate(); err != nil {
		return nil, err
	}
	var atoms []ExprAtom
	x.walkAtoms(func(a *ExprAtom) { atoms = append(atoms, *a) })
	m := len(atoms)
	prog := &exprProg{n: numStates, m: m, fire: make([]*window, m), horizon: -1}

	for i, a := range atoms {
		if a.Region != nil {
			return nil, fmt.Errorf("core: internal: compiling unresolved expression atom")
		}
		w, err := compile(NewQuery(a.States, a.Times), numStates)
		if err != nil {
			return nil, err
		}
		if a.ForAll {
			w = w.complemented()
		}
		prog.fire[i] = w
		if w.horizon > prog.horizon {
			prog.horizon = w.horizon
		}
	}

	prog.accept = make([]bool, 1<<m)
	for b := range prog.accept {
		idx := 0
		prog.accept[b] = x.evalBits(uint32(b), &idx)
	}

	// Event timetable: group timestamps by their active-atom set so
	// identical sets share one delta array.
	activeAt := map[int]uint32{}
	for i, w := range prog.fire {
		for t := range w.timeSet {
			activeAt[t] |= 1 << i
		}
	}
	prog.deltas = make(map[int][]uint8, len(activeAt))
	byActive := map[uint32][]uint8{}
	for t, act := range activeAt {
		arr, ok := byActive[act]
		if !ok {
			arr = make([]uint8, numStates)
			for s := 0; s < numStates; s++ {
				var d uint8
				for i := 0; i < m; i++ {
					if act&(1<<i) != 0 && prog.fire[i].inRegion(s) {
						d |= 1 << i
					}
				}
				arr[s] = d
			}
			byActive[act] = arr
		}
		prog.deltas[t] = arr
	}

	prog.sig = x.signature(numStates)
	return prog, nil
}

// evalBits answers the expression for one flag word, consuming atom
// indices in the same left-to-right order walkAtoms visits them.
func (x Expr) evalBits(bits uint32, idx *int) bool {
	switch x.op {
	case ExprLeaf:
		fired := bits&(1<<uint(*idx)) != 0
		*idx++
		if x.atom.ForAll {
			return !fired
		}
		return fired
	case ExprNot:
		return !x.kids[0].evalBits(bits, idx)
	case ExprOr:
		any := false
		for i := range x.kids {
			if x.kids[i].evalBits(bits, idx) {
				any = true
			}
		}
		return any
	default: // and / then
		all := true
		for i := range x.kids {
			if !x.kids[i].evalBits(bits, idx) {
				all = false
			}
		}
		return all
	}
}

// signature fingerprints a resolved expression against a state-space
// size, for score-cache keys: preorder structure plus atom windows.
func (x Expr) signature(numStates int) uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(numStates))
	return x.mixInto(h)
}

func (x Expr) mixInto(h uint64) uint64 {
	h = fnvMix(h, uint64(x.op)+0x51)
	if x.op == ExprLeaf {
		if x.atom.ForAll {
			h = fnvMix(h, 2)
		} else {
			h = fnvMix(h, 1)
		}
		for _, s := range x.atom.States {
			h = fnvMix(h, uint64(s)+1)
		}
		h = fnvMix(h, fnvSep)
		for _, t := range x.atom.Times {
			h = fnvMix(h, uint64(t)+1)
		}
		h = fnvMix(h, fnvSep)
		return h
	}
	h = fnvMix(h, uint64(len(x.kids)))
	for i := range x.kids {
		h = x.kids[i].mixInto(h)
	}
	return h
}

// constResult is the expression's value when no event can fire on the
// trajectory (observation after every atom window): the flag word stays
// zero.
func (prog *exprProg) constResult() float64 {
	if prog.accept[0] {
		return 1
	}
	return 0
}

// --- query-based core ------------------------------------------------------

// exprBackward runs the augmented backward sweep down to time t0 and
// returns the 2^m scoring vectors S_b: entry s of S_b is the
// probability that a world at state s at t0, having already accumulated
// flag word b (events at t0 included), ends up accepted. Requires
// t0 ≤ prog.horizon.
func exprBackward(ctx context.Context, chain *markov.Chain, prog *exprProg, t0 int, pool *sparse.VecPool) ([]*sparse.Vec, error) {
	n := chain.NumStates()
	nb := 1 << prog.m
	cur := make([]*sparse.Vec, nb)
	release := func(vs []*sparse.Vec) {
		for _, v := range vs {
			if v != nil {
				pool.Put(v)
			}
		}
	}
	for b := range cur {
		cur[b] = pool.Get(n)
		if prog.accept[b] {
			for s := 0; s < n; s++ {
				cur[b].Set(s, 1)
			}
		}
	}
	next := make([]*sparse.Vec, nb)
	for b := range next {
		next[b] = pool.Get(n)
	}
	gather := pool.Get(n)
	defer pool.Put(gather)

	for t := prog.horizon; t > t0; t-- {
		if err := ctx.Err(); err != nil {
			release(cur)
			release(next)
			return nil, err
		}
		d := prog.deltas[t]
		for b := 0; b < nb; b++ {
			src := cur[b]
			if d != nil {
				// Gather the event re-indexing at time t: a world arriving
				// at state s fires d[s], so its continuation value comes
				// from the b|d[s] family member.
				gather.CopyFrom(src)
				for s, ds := range d {
					if ds != 0 && b|int(ds) != b {
						gather.Set(s, cur[b|int(ds)].At(s))
					}
				}
				src = gather
			}
			sparse.MatVec(next[b], chain.Matrix(), src)
		}
		cur, next = next, cur
	}
	release(next)
	return cur, nil
}

// exprDot answers one object from a backward family: the initial mass
// at state s starts with flag word deltas[t0][s] (events at the
// observation time itself, footnote 3 of the paper applied per atom).
// The result is unnormalized — callers divide by the pdf mass.
func (prog *exprProg) exprDot(init *sparse.Vec, family []*sparse.Vec, t0 int) float64 {
	d := prog.deltas[t0]
	p := 0.0
	init.Range(func(s int, x float64) {
		b := 0
		if d != nil {
			b = int(d[s])
		}
		p += x * family[b].At(s)
	})
	return p
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// --- object-based core -----------------------------------------------------

// exprForward is the augmented forward pass for one object: 2^m
// flag-indexed mass vectors (materialized lazily — most flag words are
// never reached), stepped jointly to the horizon; events move mass to
// higher flag words in place. The returned value is the accepted mass,
// unnormalized — callers divide by the pdf mass.
func exprForward(ctx context.Context, chain *markov.Chain, init *sparse.Vec, t0 int, prog *exprProg, pool *sparse.VecPool) (float64, error) {
	if prog.horizon < t0 {
		if prog.accept[0] {
			return init.Sum(), nil
		}
		return 0, nil
	}
	n := chain.NumStates()
	nb := 1 << prog.m
	cur := make([]*sparse.Vec, nb)
	get := func(b int) *sparse.Vec {
		if cur[b] == nil {
			cur[b] = pool.Get(n)
		}
		return cur[b]
	}
	scratch := pool.Get(n)
	defer func() {
		for _, v := range cur {
			if v != nil {
				pool.Put(v)
			}
		}
		pool.Put(scratch)
	}()

	seed := prog.deltas[t0]
	init.Range(func(s int, x float64) {
		b := 0
		if seed != nil {
			b = int(seed[s])
		}
		get(b).Add(s, x)
	})

	for t := t0; t < prog.horizon; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for b := 0; b < nb; b++ {
			if cur[b] == nil || cur[b].NNZ() == 0 {
				continue
			}
			chain.Step(scratch, cur[b])
			cur[b], scratch = scratch, cur[b]
		}
		if d := prog.deltas[t+1]; d != nil {
			// Ascending flag order is safe: mass moved into b|d[s] has
			// d[s] ⊆ flags already, so revisiting the target moves
			// nothing twice.
			for b := 0; b < nb; b++ {
				v := cur[b]
				if v == nil || v.NNZ() == 0 {
					continue
				}
				moved := false
				v.Range(func(s int, x float64) {
					if ds := int(d[s]); ds != 0 && b|ds != b {
						get(b|ds).Add(s, x)
						v.Set(s, 0)
						moved = true
					}
				})
				if moved {
					v.Compact()
				}
			}
		}
	}
	p := 0.0
	for b, v := range cur {
		if prog.accept[b] && v != nil {
			p += v.Sum()
		}
	}
	return p, nil
}

// --- Monte-Carlo core ------------------------------------------------------

// exprMCRun estimates the expression probability by path sampling:
// track the flag word along each sampled trajectory, accept by the
// truth table.
func exprMCRun(ctx context.Context, chain *markov.Chain, o *Object, prog *exprProg, n int, rng *rand.Rand) (float64, error) {
	if len(o.Observations) > 1 {
		return 0, errExprMultiObs(o)
	}
	first := o.First()
	if prog.horizon < first.Time {
		return prog.constResult(), nil
	}
	if n <= 0 {
		return 0, fmt.Errorf("core: Monte-Carlo needs a positive sample count, got %d", n)
	}
	steps := prog.horizon - first.Time
	hits := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		path := chain.SamplePath(first.PDF.Vec(), steps, rng)
		bits := 0
		for t, s := range path {
			if d := prog.deltas[first.Time+t]; d != nil {
				bits |= int(d[s])
			}
		}
		if prog.accept[bits] {
			hits++
		}
	}
	return float64(hits) / float64(n), nil
}

// --- kernel integration ----------------------------------------------------

// exprKernel builds the kernel for one chain group of an expression
// plan: the expression is compiled against the group's state space and
// bound to the engine cache.
func (e *Engine) exprKernel(chain *markov.Chain, plan *evalPlan) (*kern, error) {
	prog, err := compileExpr(*plan.expr, chain.NumStates())
	if err != nil {
		return nil, err
	}
	k := e.kernel(chain, nil, plan)
	k.prog = prog
	return k, nil
}

// exprScoresAt returns the augmented backward family at t0, served from
// the score cache when possible. The returned vectors are shared and
// must not be mutated.
func (k *kern) exprScoresAt(ctx context.Context, t0 int) ([]*sparse.Vec, error) {
	key := scoreKey{chain: k.chain, kind: kindExpr, sig: k.prog.sig, t0: t0}
	v, err := k.fetch(ctx, key, func() (scoreValue, error) {
		family, ferr := exprBackward(ctx, k.chain, k.prog, t0, k.pool)
		if ferr != nil {
			return scoreValue{}, ferr
		}
		return scoreValue{vecs: family}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.vecs, nil
}

// exprExact answers one object with the query-based augmented sweep.
func (k *kern) exprExact(ctx context.Context, o *Object) (Result, error) {
	if len(o.Observations) > 1 {
		return Result{}, errExprMultiObs(o)
	}
	first := o.First()
	if k.prog.horizon < first.Time {
		// Every atom window lies in the past: the expression is decided
		// by the all-unfired flag word, vacuously.
		return Result{ObjectID: o.ID, Prob: k.prog.constResult()}, nil
	}
	pdf := first.PDF.Vec()
	mass := pdf.Sum()
	if mass == 0 {
		return Result{}, errZeroMass(o.ID)
	}
	family, err := k.exprScoresAt(ctx, first.Time)
	if err != nil {
		return Result{}, err
	}
	return Result{ObjectID: o.ID, Prob: clamp01(k.prog.exprDot(pdf, family, first.Time) / mass)}, nil
}

// exprOBExact answers one object with the object-based augmented
// forward pass.
func (k *kern) exprOBExact(ctx context.Context, o *Object) (Result, error) {
	if len(o.Observations) > 1 {
		return Result{}, errExprMultiObs(o)
	}
	first := o.First()
	pdf := first.PDF.Vec()
	mass := pdf.Sum()
	if mass == 0 {
		return Result{}, errZeroMass(o.ID)
	}
	p, err := exprForward(ctx, k.chain, pdf, first.Time, k.prog, k.pool)
	if err != nil {
		return Result{}, err
	}
	return Result{ObjectID: o.ID, Prob: clamp01(p / mass)}, nil
}

// --- filter bounds ---------------------------------------------------------

// exprUpper returns a conservative upper bound on the expression
// probability of o, composed from per-atom reachability-envelope bounds
// by interval arithmetic (Fréchet inequalities: correlation-free, so
// always valid). ok is false when o is not boundable.
func (k *kern) exprUpper(ctx context.Context, o *Object) (float64, bool, error) {
	_, hi, ok, err := k.exprBounds(ctx, o)
	return hi, ok, err
}

// exprBounds computes [lo, hi] bounds on the expression probability.
// Per atom, the probability of FIRING is bracketed by the initial mass
// on the certain/possible envelopes of its fire window (kernel.go);
// the brackets are folded through the expression tree:
//
//	not:      [1−hi, 1−lo]
//	and/then: [max(0, Σlo − (n−1)), min hi]
//	or:       [max lo, min(1, Σhi)]
func (k *kern) exprBounds(ctx context.Context, o *Object) (lo, hi float64, ok bool, err error) {
	if len(o.Observations) != 1 {
		return 0, 1, false, nil
	}
	t0 := o.First().Time
	pdf := o.First().PDF.Vec()
	mass := pdf.Sum()
	if mass <= 0 {
		return 0, 1, false, nil
	}
	fired := make([][2]float64, k.prog.m)
	for i, w := range k.prog.fire {
		pm, merr := k.maskFor(ctx, w, t0, kindPossible)
		if merr != nil {
			return 0, 1, false, merr
		}
		cm, merr := k.maskFor(ctx, w, t0, kindCertain)
		if merr != nil {
			return 0, 1, false, merr
		}
		fired[i] = [2]float64{cm.MassOn(pdf) / mass, pm.MassOn(pdf) / mass}
	}
	idx := 0
	lo, hi = foldBounds(*k.exprTree, &idx, fired)
	lo = clamp01(lo - boundSlack)
	hi = clamp01(hi + boundSlack)
	return lo, hi, true, nil
}

// foldBounds folds per-atom fired-probability brackets through the
// expression tree, consuming atoms in walkAtoms order.
func foldBounds(x Expr, idx *int, fired [][2]float64) (lo, hi float64) {
	switch x.op {
	case ExprLeaf:
		f := fired[*idx]
		*idx++
		if x.atom.ForAll {
			return 1 - f[1], 1 - f[0]
		}
		return f[0], f[1]
	case ExprNot:
		clo, chi := foldBounds(x.kids[0], idx, fired)
		return 1 - chi, 1 - clo
	case ExprOr:
		lo, hi = 0, 0
		for i := range x.kids {
			clo, chi := foldBounds(x.kids[i], idx, fired)
			if clo > lo {
				lo = clo
			}
			hi += chi
		}
		return lo, min1(hi)
	default: // and / then
		sumLo, hi := 0.0, 1.0
		for i := range x.kids {
			clo, chi := foldBounds(x.kids[i], idx, fired)
			sumLo += clo
			if chi < hi {
				hi = chi
			}
		}
		lo = sumLo - float64(len(x.kids)-1)
		if lo < 0 {
			lo = 0
		}
		return lo, hi
	}
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// --- stream cores ----------------------------------------------------------

// streamExprQB is the query-based compound core: one augmented backward
// family per (chain, observation time) — shared through the score cache
// — then a flag-aware dot product per object.
func (e *Engine) streamExprQB(ctx context.Context, plan *evalPlan) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		for _, grp := range e.db.groupByChain() {
			k, err := e.exprGroupKernel(grp, plan)
			if err != nil {
				yield(Result{}, err)
				return
			}
			for _, o := range grp.objects {
				if err := ctx.Err(); err != nil {
					yield(Result{}, err)
					return
				}
				r, oerr := k.exprExact(ctx, o)
				if oerr != nil {
					yield(Result{}, oerr)
					return
				}
				if !yield(r, nil) {
					return
				}
			}
		}
	}
}

// exprGroupKernel compiles the plan's expression for one chain group.
func (e *Engine) exprGroupKernel(grp chainGroup, plan *evalPlan) (*kern, error) {
	k, err := e.exprKernel(grp.chain, plan)
	if err != nil {
		return nil, err
	}
	k.exprTree = plan.expr
	return k, nil
}

// streamExprOB is the object-based compound core: one augmented forward
// pass per object, optionally fanned out over plan.workers goroutines.
func (e *Engine) streamExprOB(ctx context.Context, plan *evalPlan) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		tasks := make([]obTask, 0, e.db.Len())
		for _, grp := range e.db.groupByChain() {
			k, err := e.exprGroupKernel(grp, plan)
			if err != nil {
				yield(Result{}, err)
				return
			}
			// No transpose warm here: the augmented forward pass only
			// ever steps forward (chain.Step), unlike the OB exists
			// kernel.
			for _, o := range grp.objects {
				tasks = append(tasks, obTask{o: o, k: k})
			}
		}
		eval := func(ctx context.Context, i int) (Result, error) {
			return tasks[i].k.exprOBExact(ctx, tasks[i].o)
		}
		if plan.workers > 1 {
			parallelOrdered(ctx, len(tasks), plan.workers, eval)(yield)
			return
		}
		for i := range tasks {
			if err := ctx.Err(); err != nil {
				yield(Result{}, err)
				return
			}
			r, oerr := eval(ctx, i)
			if oerr != nil {
				yield(Result{}, oerr)
				return
			}
			if !yield(r, nil) {
				return
			}
		}
	}
}

// streamExprMC is the Monte-Carlo compound core, following the exists-
// query convention: serial evaluation shares one deterministic rng in
// database insertion order; parallel evaluation derives per-object
// seeds.
func (e *Engine) streamExprMC(ctx context.Context, plan *evalPlan) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		progs := map[*markov.Chain]*exprProg{}
		type task struct {
			o     *Object
			chain *markov.Chain
			prog  *exprProg
		}
		tasks := make([]task, 0, e.db.Len())
		for _, o := range e.db.Objects() {
			ch := e.db.ChainOf(o)
			prog, ok := progs[ch]
			if !ok {
				var err error
				prog, err = compileExpr(*plan.expr, ch.NumStates())
				if err != nil {
					yield(Result{}, err)
					return
				}
				progs[ch] = prog
			}
			tasks = append(tasks, task{o: o, chain: ch, prog: prog})
		}
		if plan.workers > 1 {
			eval := func(ctx context.Context, i int) (Result, error) {
				t := tasks[i]
				rng := rand.New(rand.NewSource(perObjectSeed(plan.seed, t.o.ID)))
				p, merr := exprMCRun(ctx, t.chain, t.o, t.prog, plan.samples, rng)
				if merr != nil {
					return Result{}, merr
				}
				return Result{ObjectID: t.o.ID, Prob: p}, nil
			}
			parallelOrdered(ctx, len(tasks), plan.workers, eval)(yield)
			return
		}
		rng := rand.New(rand.NewSource(plan.seed))
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				yield(Result{}, err)
				return
			}
			p, merr := exprMCRun(ctx, t.chain, t.o, t.prog, plan.samples, rng)
			if merr != nil {
				yield(Result{}, merr)
				return
			}
			if !yield(Result{ObjectID: t.o.ID, Prob: p}, nil) {
				return
			}
		}
	}
}
