package core

import (
	"context"
	"sort"

	"ust/internal/markov"
)

// Cost-based strategy selection. Section V-C derives the asymptotic
// costs of the two exact strategies:
//
//	object-based:  O(|D| · |S_reach|² · δt)   — forward pass per object
//	query-based:   O(|D| + |S_reach|² · δt)   — one backward sweep, then
//	                                            a dot product per object
//
// In practice the per-step cost is the touched non-zeros, not
// |S_reach|²; CostEstimate models exactly that and Plan picks the
// cheaper strategy. The query-based strategy is almost always the
// winner on multi-object databases — the estimator's job is mostly to
// spot the single-object / tiny-horizon cases where the forward pass's
// smaller constant wins, and to quantify the gap for EXPLAIN-style
// introspection.

// CostEstimate is the predicted work of one strategy for one query, in
// abstract "touched matrix entries" units.
type CostEstimate struct {
	Strategy Strategy
	// Sweeps is the number of full vector-matrix passes (backward
	// sweeps for QB, forward object passes for OB).
	Sweeps int
	// Ops approximates the touched non-zero count.
	Ops float64
	// FilterOps approximates the extra cost of the filter stage
	// (boolean envelope sweeps, in the same touched-entries units scaled
	// by the 64× word-packing) when the request carries a threshold or
	// top-k and the strategy is filter-eligible; 0 otherwise. The filter
	// pays this once per (chain, observation time) to skip Ops-scale
	// exact work per pruned object.
	FilterOps float64
}

// estimateAvgRowNNZ samples rows to approximate nnz per row.
func estimateAvgRowNNZ(c *markov.Chain) float64 {
	n := c.NumStates()
	if n == 0 {
		return 0
	}
	return float64(c.NNZ()) / float64(n)
}

// PlanExists returns cost estimates for evaluating the given PST∃Q over
// the database with each exact strategy, ordered best-first.
func (e *Engine) PlanExists(q Query) ([]CostEstimate, error) {
	horizon := q.Horizon()
	var obOps, qbOps float64
	obSweeps, qbSweeps := 0, 0
	for _, grp := range e.db.groupByChain() {
		if err := q.Validate(grp.chain.NumStates()); err != nil {
			return nil, err
		}
		rowNNZ := estimateAvgRowNNZ(grp.chain)
		n := float64(grp.chain.NumStates())

		// Distinct observation times drive the QB sweep count.
		times := map[int]bool{}
		for _, o := range grp.objects {
			first := o.First()
			if first.Time > horizon {
				continue
			}
			steps := float64(horizon - first.Time)
			// Forward support growth: starts at the observation spread
			// and roughly doubles-by-locality each step until it
			// saturates at n. Model as min(n, spread + steps·rowNNZ·2),
			// averaged over the pass (half the final support).
			spread := float64(o.First().PDF.Vec().NNZ())
			finalSupp := spread + steps*rowNNZ*2
			if finalSupp > n {
				finalSupp = n
			}
			avgSupp := (spread + finalSupp) / 2
			obOps += steps * avgSupp * rowNNZ
			obSweeps++
			times[first.Time] = true
		}
		for t0 := range times {
			steps := float64(horizon - t0)
			// Backward sweeps densify almost immediately (the region
			// pins |S□| ones each query step): model as full matrix
			// cost per step.
			qbOps += steps * float64(grp.chain.NNZ())
			qbSweeps++
		}
		// Plus a dot product per object.
		qbOps += float64(len(grp.objects)) * 4
	}
	plans := []CostEstimate{
		{Strategy: StrategyQueryBased, Sweeps: qbSweeps, Ops: qbOps},
		{Strategy: StrategyObjectBased, Sweeps: obSweeps, Ops: obOps},
	}
	if plans[1].Ops < plans[0].Ops {
		plans[0], plans[1] = plans[1], plans[0]
	}
	return plans, nil
}

// annotateFilterOps fills CostEstimate.FilterOps for a threshold/top-k
// request: one boolean backward sweep per (chain, distinct observation
// time) — the envelope kernels touch every transition non-zero per
// step, like the float sweeps, just with a bit-set instead of a
// multiply-add — plus a bound dot per object. Reported for
// EXPLAIN-style introspection; the actual funnel lands in
// Response.Filter.
func annotateFilterOps(plans []CostEstimate, e *Engine, q Query) {
	horizon := q.Horizon()
	ops := 0.0
	for _, grp := range e.db.groupByChain() {
		times := map[int]bool{}
		for _, o := range grp.objects {
			first := o.First()
			if first.Time > horizon {
				continue
			}
			times[first.Time] = true
			// One mask-mass dot per object over its observation support.
			ops += float64(first.PDF.Vec().NNZ())
		}
		for t0 := range times {
			ops += float64(horizon-t0) * float64(grp.chain.NNZ())
		}
	}
	for i := range plans {
		switch plans[i].Strategy {
		case StrategyQueryBased, StrategyObjectBased:
			plans[i].FilterOps = ops
		}
	}
}

// --- multi-query optimizer -------------------------------------------------
//
// Batch requests (batch.go) are planned together: the optimizer walks
// every prepared plan, extracts the backward-sweep work each one will
// need — keyed exactly like the score cache, (chain, window signature,
// observation time) — deduplicates it across requests, and schedules
// the distinct sweeps once through the fused block kernel before any
// request evaluates. Requests that share windows (identical panels,
// forall-complements, repeated observation times) collapse to one
// sweep; requests with merely overlapping windows still win because
// their sweeps advance through the transition matrix together. The
// results land in the engine's score cache, so the per-request
// evaluation afterwards is all cache hits and the sequential semantics
// (ranking, filtering, streaming, reports) are untouched.

// sweepUnit is one deduplicated unit of backward-sweep work.
type sweepUnit struct {
	key scoreKey
	w   *window
	t0  int
}

// warmBatch pre-computes the distinct sweep work the plans will need:
// float scoring sweeps for query-based exists/forall plans (fused in
// state-major blocks) and boolean reachability envelopes for
// filter-eligible threshold/top-k plans (fused 64 to the machine word).
// The other predicates' sweeps (ktimes families, hitting fixed points,
// expression families) still deduplicate across the batch through the
// score cache, they just run at first use. A nil cache disables warming
// entirely.
func (e *Engine) warmBatch(ctx context.Context, plans []*evalPlan) error {
	if e.cache == nil {
		return nil
	}
	seen := map[scoreKey]bool{}
	type chainUnits struct {
		exists, possible, certain []sweepUnit
	}
	perChain := map[*markov.Chain]*chainUnits{}
	chains := []*markov.Chain{}
	add := func(chain *markov.Chain, key scoreKey, w *window, t0 int) {
		if seen[key] || e.cache.contains(key) {
			return
		}
		seen[key] = true
		cu := perChain[chain]
		if cu == nil {
			cu = &chainUnits{}
			perChain[chain] = cu
			chains = append(chains, chain)
		}
		u := sweepUnit{key: key, w: w, t0: t0}
		switch key.kind {
		case kindPossible:
			cu.possible = append(cu.possible, u)
		case kindCertain:
			cu.certain = append(cu.certain, u)
		default:
			cu.exists = append(cu.exists, u)
		}
	}
	for _, plan := range plans {
		if plan == nil || !plan.useCache {
			continue
		}
		forAll := plan.req.Predicate == PredicateForAll
		if plan.req.Predicate != PredicateExists && !forAll {
			continue
		}
		needFloat := plan.strategy == StrategyQueryBased
		// The filter's upper bound reads one envelope per object: the
		// possible-mask for exists, the certain-mask (of the complemented
		// window the kernel evaluates) for forall.
		maskKind, needMask := kindPossible, plan.filterEligible()
		if forAll {
			maskKind = kindCertain
		}
		if !needFloat && !needMask {
			continue
		}
		for _, grp := range e.db.groupByChain() {
			w, err := compile(plan.query, grp.chain.NumStates())
			if err != nil {
				continue // the request's own evaluation surfaces this
			}
			if forAll {
				w = w.complemented()
			}
			if w.k == 0 {
				continue
			}
			for _, o := range grp.objects {
				if len(o.Observations) != 1 {
					continue // multi-observation objects use the forward kernel
				}
				t0 := o.First().Time
				if t0 > w.horizon {
					continue
				}
				if needFloat {
					add(grp.chain, scoreKey{chain: grp.chain, kind: kindExists, sig: w.signature(), t0: t0}, w, t0)
				}
				if needMask {
					add(grp.chain, scoreKey{chain: grp.chain, kind: maskKind, sig: w.signature(), t0: t0}, w, t0)
				}
			}
		}
	}
	// Descending horizon keeps the fused float block's live columns a
	// prefix; ties broken deterministically regardless of map iteration
	// order. Mask blocks use the same schedule for determinism.
	byHorizon := func(units []sweepUnit) {
		sort.Slice(units, func(a, b int) bool {
			if units[a].w.horizon != units[b].w.horizon {
				return units[a].w.horizon > units[b].w.horizon
			}
			if units[a].key.sig != units[b].key.sig {
				return units[a].key.sig < units[b].key.sig
			}
			return units[a].t0 < units[b].t0
		})
	}
	for _, chain := range chains {
		cu := perChain[chain]
		byHorizon(cu.exists)
		width := fusedWidth(chain.NumStates())
		for start := 0; start < len(cu.exists); start += width {
			end := min(start+width, len(cu.exists))
			if err := e.fusedExistsSweeps(ctx, chain, cu.exists[start:end]); err != nil {
				return err
			}
		}
		for _, masks := range [][]sweepUnit{cu.possible, cu.certain} {
			byHorizon(masks)
			for start := 0; start < len(masks); start += 64 {
				end := min(start+64, len(masks))
				certain := len(masks) > 0 && masks[0].key.kind == kindCertain
				if err := e.fusedMaskSweeps(ctx, chain, masks[start:end], certain); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// PlanRequest resolves the strategy Evaluate would run req with —
// engine default, per-request override, or the cost planner's choice
// for WithAutoPlan — plus the planner's estimates when auto-planning
// engaged (annotated with filter costs for ranked requests, exactly as
// Response.Plans reports them). It validates the request and resolves
// its window, so a nil error here means the request is well-formed.
// The shard router uses it to plan once, over the full database, and
// pin every shard to the same strategy.
func (e *Engine) PlanRequest(req Request) (Strategy, []CostEstimate, error) {
	plan, err := e.prepare(req)
	if err != nil {
		return 0, nil, err
	}
	return plan.strategy, plan.plans, nil
}

// WarmBatch precomputes and publishes to the score cache every backward
// sweep the requests' query-based evaluations and filter stages will
// need, using the fused state-major kernels — EvaluateBatch's warm
// phase as a standalone entry point. The shard router calls it once on
// a full-database engine so that the per-shard batch evaluations all
// hit the shared cache instead of warming per shard. Malformed requests
// are skipped (their own evaluation surfaces the error).
func (e *Engine) WarmBatch(ctx context.Context, reqs []Request) error {
	plans := make([]*evalPlan, len(reqs))
	for i, req := range reqs {
		plans[i], _ = e.prepare(req)
	}
	return e.warmBatch(ctx, plans)
}

// ExistsAuto evaluates the PST∃Q with the strategy the planner
// predicts to be cheaper. It returns the results and the chosen
// strategy. Thin wrapper over Evaluate with WithAutoPlan.
func (e *Engine) ExistsAuto(q Query) ([]Result, Strategy, error) {
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateExists,
		WithWindow(q), WithAutoPlan()))
	if err != nil {
		return nil, 0, err
	}
	return resp.Results, resp.Strategy, nil
}

// ExpectedCount returns the expected number of database objects
// satisfying the PST∃Q — Σ_o P∃(o). This is the paper's "predict the
// number of cars that will be in a congested road segment after 10-15
// minutes" aggregate. It rides the aggregate subsystem's factor
// decomposition (aggregate.go): each object's Bernoulli factor carries
// the same bit-exact P∃ the per-object stream emits, and the plain sum
// over factors in emission order reproduces the historical accumulation
// exactly — one counting code path, pinned by TestExpectedCountAggPin.
func (e *Engine) ExpectedCount(q Query) (float64, error) {
	fs, err := e.AggregateFactors(context.Background(),
		NewAggRequest(PredicateExists, AggSpec{Kind: AggCount}, WithWindow(q)))
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, f := range fs.Factors {
		sum += f.Coeffs[1]
	}
	return sum, nil
}

// AtLeastKTimes returns, for one object, the probability of being
// inside the window at k or more query timestamps: the tail of the
// PSTkQ distribution. k = 1 coincides with PST∃Q; k = |T□| with PST∀Q.
func (e *Engine) AtLeastKTimes(o *Object, q Query, k int) (float64, error) {
	if k <= 0 {
		return 1, nil
	}
	dist, err := e.KTimesOB(o, q)
	if err != nil {
		return 0, err
	}
	if k >= len(dist) {
		return 0, nil
	}
	tail := 0.0
	for _, p := range dist[k:] {
		tail += p
	}
	return tail, nil
}
