package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"ust/internal/gen"
	"ust/internal/markov"
)

func TestPlanExistsPrefersQBOnLargeDB(t *testing.T) {
	p := gen.Params{NumObjects: 500, NumStates: 2000, ObjectSpread: 5, StateSpread: 5, MaxStep: 40, Seed: 1}
	ds := gen.MustGenerate(p)
	db := NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		db.MustAdd(MustObject(i, nil, Observation{Time: 0, PDF: o}))
	}
	e := NewEngine(db, Options{})
	q := NewQuery(Interval(100, 120), Interval(20, 25))
	plans, err := e.PlanExists(q)
	if err != nil {
		t.Fatalf("PlanExists: %v", err)
	}
	if plans[0].Strategy != StrategyQueryBased {
		t.Errorf("large DB plan = %v, want query-based", plans[0].Strategy)
	}
	if plans[0].Ops >= plans[1].Ops {
		t.Error("plans not ordered best-first")
	}
	if plans[0].Sweeps <= 0 {
		t.Error("QB plan should have at least one sweep")
	}
}

func TestPlanExistsPrefersOBOnSingleObjectShortHorizon(t *testing.T) {
	p := gen.Params{NumObjects: 1, NumStates: 5000, ObjectSpread: 1, StateSpread: 5, MaxStep: 40, Seed: 1}
	ds := gen.MustGenerate(p)
	db := NewDatabase(ds.Chain)
	db.MustAdd(MustObject(0, nil, Observation{Time: 0, PDF: ds.Objects[0]}))
	e := NewEngine(db, Options{})
	// One object, two-step horizon: the forward pass touches a handful
	// of entries while the backward sweep touches the whole matrix.
	q := NewQuery(Interval(100, 120), []int{2})
	plans, err := e.PlanExists(q)
	if err != nil {
		t.Fatalf("PlanExists: %v", err)
	}
	if plans[0].Strategy != StrategyObjectBased {
		t.Errorf("single-object plan = %v, want object-based", plans[0].Strategy)
	}
}

func TestExistsAutoMatchesExact(t *testing.T) {
	db, o := paperDB(t)
	e := NewEngine(db, Options{})
	q := paperQueryV()
	res, chosen, err := e.ExistsAuto(q)
	if err != nil {
		t.Fatalf("ExistsAuto: %v", err)
	}
	if chosen != StrategyQueryBased && chosen != StrategyObjectBased {
		t.Errorf("auto chose %v", chosen)
	}
	exact, err := e.ExistsOB(o, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].Prob-exact) > tol {
		t.Errorf("auto result %g != exact %g", res[0].Prob, exact)
	}
}

func TestExpectedCount(t *testing.T) {
	db := NewDatabase(paperChainV(t))
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)})) // 0.864
	db.MustAdd(MustObject(2, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)})) // 0.864
	e := NewEngine(db, Options{})
	got, err := e.ExpectedCount(paperQueryV())
	if err != nil {
		t.Fatalf("ExpectedCount: %v", err)
	}
	if math.Abs(got-2*0.864) > tol {
		t.Errorf("ExpectedCount = %g, want %g", got, 2*0.864)
	}
}

func TestAtLeastKTimes(t *testing.T) {
	db, o := paperDB(t)
	e := NewEngine(db, Options{})
	q := paperQueryV()
	// k = 0: certain.
	if p, err := e.AtLeastKTimes(o, q, 0); err != nil || p != 1 {
		t.Errorf("AtLeastKTimes(0) = (%g, %v)", p, err)
	}
	// k = 1 == PST∃Q.
	p1, err := e.AtLeastKTimes(o, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-0.864) > tol {
		t.Errorf("AtLeastKTimes(1) = %g, want 0.864", p1)
	}
	// k = |T□| == PST∀Q (via k-dist tail).
	p2, err := e.AtLeastKTimes(o, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2-0.192) > tol {
		t.Errorf("AtLeastKTimes(2) = %g, want 0.192", p2)
	}
	// k beyond the window: impossible.
	if p, err := e.AtLeastKTimes(o, q, 3); err != nil || p != 0 {
		t.Errorf("AtLeastKTimes(3) = (%g, %v), want 0", p, err)
	}
}

func TestExistsOBParallelMatchesSequential(t *testing.T) {
	p := gen.Params{NumObjects: 200, NumStates: 1500, ObjectSpread: 5, StateSpread: 4, MaxStep: 30, Seed: 5}
	ds := gen.MustGenerate(p)
	db := NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		db.MustAdd(MustObject(i, nil, Observation{Time: 0, PDF: o}))
	}
	e := NewEngine(db, Options{})
	q := NewQuery(Interval(100, 140), Interval(10, 15))

	seqResp, err := e.Evaluate(context.Background(), NewRequest(PredicateExists,
		WithWindow(q), WithStrategy(StrategyObjectBased)))
	if err != nil {
		t.Fatal(err)
	}
	seq := seqResp.Results
	for _, workers := range []int{1, 4, 0} {
		par, err := e.ExistsOBParallel(q, workers)
		if err != nil {
			t.Fatalf("parallel(%d): %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("parallel(%d): %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].ObjectID != seq[i].ObjectID {
				t.Fatalf("parallel(%d): order differs at %d", workers, i)
			}
			if math.Abs(par[i].Prob-seq[i].Prob) > 1e-12 {
				t.Fatalf("parallel(%d): object %d: %g != %g", workers, par[i].ObjectID, par[i].Prob, seq[i].Prob)
			}
		}
	}
}

func TestExistsOBParallelPropagatesError(t *testing.T) {
	db := NewDatabase(paperChainV(t))
	db.MustAdd(MustObject(1, nil, Observation{Time: 10, PDF: markov.PointDistribution(3, 0)}))
	e := NewEngine(db, Options{})
	if _, err := e.ExistsOBParallel(NewQuery([]int{0}, []int{2}), 4); err == nil {
		t.Error("late observation not reported by parallel evaluation")
	}
}

func TestExistsOBParallelMixedChains(t *testing.T) {
	db := NewDatabase(paperChainV(t))
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(MustObject(2, paperChainVI(t), Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	e := NewEngine(db, Options{})
	q := paperQueryV()
	par, err := e.ExistsOBParallel(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range par {
		want, err := e.ExistsOB(db.Get(r.ObjectID), q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Prob-want) > tol {
			t.Errorf("object %d: parallel %g != exact %g", r.ObjectID, r.Prob, want)
		}
	}
}

func TestConcurrentReadOnlyQueries(t *testing.T) {
	// Engines over a shared database must support concurrent read-only
	// querying once the transposes are warmed (ExistsOBParallel warms
	// them; plain QB readers arriving concurrently afterwards are
	// safe). Run under -race in CI.
	p := gen.Params{NumObjects: 60, NumStates: 800, ObjectSpread: 3, StateSpread: 4, MaxStep: 20, Seed: 13}
	ds := gen.MustGenerate(p)
	db := NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		db.MustAdd(MustObject(i, nil, Observation{Time: 0, PDF: o}))
	}
	e := NewEngine(db, Options{})
	ds.Chain.Transposed() // warm before sharing

	q := NewQuery(Interval(100, 140), Interval(5, 9))
	want, err := e.ExistsQB(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.ExistsQB(q)
			if err != nil {
				errs <- err
				return
			}
			for i := range want {
				if math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
					errs <- fmt.Errorf("object %d: %g != %g", want[i].ObjectID, got[i].Prob, want[i].Prob)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
