package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/markov"
)

// bruteForcePosterior computes P(o(t) = s | all observations) by full
// path enumeration — the reference for PosteriorAt's smoothing pass.
func bruteForcePosterior(chain *markov.Chain, obs []Observation, t int) ([]float64, error) {
	end := t
	if last := obs[len(obs)-1].Time; last > end {
		end = last
	}
	obsAt := map[int]*markov.Distribution{}
	for _, ob := range obs[1:] {
		obsAt[ob.Time] = ob.PDF
	}
	n := chain.NumStates()
	post := make([]float64, n)
	total := 0.0
	var walk func(tau, state int, prob float64, atT int)
	walk = func(tau, state int, prob float64, atT int) {
		if pdf, ok := obsAt[tau]; ok {
			prob *= pdf.P(state)
			if prob == 0 {
				return
			}
		}
		if tau == t {
			atT = state
		}
		if tau == end {
			post[atT] += prob
			total += prob
			return
		}
		chain.Successors(state, func(next int, p float64) {
			walk(tau+1, next, prob*p, atT)
		})
	}
	init := obs[0].PDF.Clone()
	init.Vec().Normalize()
	init.Vec().Range(func(s int, p float64) { walk(obs[0].Time, s, p, s) })
	if total == 0 {
		return nil, errZeroMass(0)
	}
	for i := range post {
		post[i] /= total
	}
	return post, nil
}

func TestPosteriorBetweenObservationsMatchesBruteForceQuick(t *testing.T) {
	// PosteriorAt at a time strictly between two observations exercises
	// the backward likelihood sweep; it must agree with exhaustive
	// enumeration.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		chain := randomChainN(rng, n, 2+rng.Intn(2))
		obs := []Observation{
			{Time: 0, PDF: markov.UniformOver(n, rng.Perm(n)[:1+rng.Intn(2)])},
			{Time: 4, PDF: markov.UniformOver(n, rng.Perm(n)[:1+rng.Intn(n-1)])},
		}
		o, err := NewObject(1, nil, obs...)
		if err != nil {
			return false
		}
		for _, tt := range []int{1, 2, 3} {
			got, gotErr := PosteriorAt(chain, o.Observations, tt)
			want, wantErr := bruteForcePosterior(chain, o.Observations, tt)
			if (gotErr == nil) != (wantErr == nil) {
				return false
			}
			if gotErr != nil {
				continue // inconsistent observations: both agree
			}
			for s := 0; s < n; s++ {
				if math.Abs(got.P(s)-want[s]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPosteriorAtObservationTimes(t *testing.T) {
	// At the exact time of a point observation, the posterior must be
	// that point.
	chain := paperChainVI(t)
	obs := []Observation{
		{Time: 0, PDF: markov.PointDistribution(3, 0)},
		{Time: 3, PDF: markov.PointDistribution(3, 1)},
	}
	for _, c := range []struct {
		t    int
		s    int
		want float64
	}{
		{0, 0, 1},
		{3, 1, 1},
	} {
		post, err := PosteriorAt(chain, obs, c.t)
		if err != nil {
			t.Fatalf("PosteriorAt(%d): %v", c.t, err)
		}
		if math.Abs(post.P(c.s)-c.want) > 1e-12 {
			t.Errorf("posterior(t=%d) P(s%d) = %g, want %g", c.t, c.s+1, post.P(c.s), c.want)
		}
	}
}

func TestPosteriorBeforeFirstObservationErrors(t *testing.T) {
	chain := paperChainV(t)
	obs := []Observation{{Time: 5, PDF: markov.PointDistribution(3, 0)}}
	if _, err := PosteriorAt(chain, obs, 2); err == nil {
		t.Error("backward inference before the first observation accepted")
	}
	if _, err := PosteriorAt(chain, nil, 2); err == nil {
		t.Error("no observations accepted")
	}
}

func TestPosteriorInconsistentObservationsError(t *testing.T) {
	// s1 -> s3 deterministically; an observation of s2 at t=1 is
	// impossible.
	chain := paperChainV(t)
	obs := []Observation{
		{Time: 0, PDF: markov.PointDistribution(3, 0)},
		{Time: 1, PDF: markov.PointDistribution(3, 1)},
	}
	if _, err := PosteriorAt(chain, obs, 1); err == nil {
		t.Error("impossible observation sequence accepted")
	}
}

func TestQueryHelpers(t *testing.T) {
	q := NewQuery([]int{1}, []int{2})
	if q.Empty() {
		t.Error("non-empty query reported Empty")
	}
	if !(Query{}).Empty() || !NewQuery(nil, []int{1}).Empty() || !NewQuery([]int{1}, nil).Empty() {
		t.Error("empty query not reported Empty")
	}
	if s := q.String(); s != "Query{|S|=1, T=[2]}" {
		t.Errorf("String = %q", s)
	}
}

func TestMonteCarloStdDev(t *testing.T) {
	// The paper's formula: sqrt(p(1-p)/n); at p=0.5, n=100 -> 0.05.
	if got := MonteCarloStdDev(0.5, 100); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("stddev = %g, want 0.05", got)
	}
	if got := MonteCarloStdDev(0, 100); got != 0 {
		t.Errorf("stddev at p=0 should be 0, got %g", got)
	}
	if got := MonteCarloStdDev(0.5, 0); !math.IsInf(got, 1) {
		t.Errorf("stddev with no samples = %g, want +Inf", got)
	}
}

func TestIntervalChainAccessors(t *testing.T) {
	env, err := NewIntervalChain([]*markov.Chain{paperChainV(t)})
	if err != nil {
		t.Fatal(err)
	}
	if env.Lo() == nil || env.Hi() == nil {
		t.Fatal("nil bound matrices")
	}
	// Singleton envelope: lo == hi == the chain itself.
	if !env.Lo().Equal(paperChainV(t).Matrix(), 1e-12) {
		t.Error("singleton lower bound differs from member")
	}
	if !env.Hi().Equal(paperChainV(t).Matrix(), 1e-12) {
		t.Error("singleton upper bound differs from member")
	}
}

func TestEngineDatabaseAccessor(t *testing.T) {
	db, _ := paperDB(t)
	e := NewEngine(db, Options{})
	if e.Database() != db {
		t.Error("Database() does not return the engine's database")
	}
}

func TestNewEngineNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil database accepted")
		}
	}()
	NewEngine(nil, Options{})
}

func TestMustAddPanics(t *testing.T) {
	db, _ := paperDB(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MustAdd did not panic")
		}
	}()
	db.MustAdd(MustObject(1, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 0)}))
}
