// Package core implements the probabilistic spatio-temporal query
// processing framework of the paper (Sections V-VII): PST∃Q, PST∀Q and
// PSTkQ evaluation over uncertain object trajectories modeled as Markov
// chains, with object-based (forward) and query-based (backward)
// strategies, possible-worlds-exact handling via absorbing "hit" states,
// support for multiple observations, a Monte-Carlo baseline and a
// brute-force possible-worlds reference.
package core

import (
	"fmt"
	"sort"
)

// Query is a probabilistic spatio-temporal query window Q = S□ × T□:
// a set of states (not necessarily contiguous) crossed with a set of
// timestamps (not necessarily contiguous). Timestamps are absolute, on
// the same axis as observation times.
type Query struct {
	// States is the spatial predicate S□ as state identifiers.
	States []int
	// Times is the temporal predicate T□ as absolute timestamps.
	Times []int
}

// NewQuery copies, sorts and dedupes its arguments into a Query.
func NewQuery(states, times []int) Query {
	return Query{States: sortedSet(states), Times: sortedSet(times)}
}

// Validate rejects negative states/timestamps and (for a space of n
// states) out-of-range state identifiers.
func (q Query) Validate(n int) error {
	for _, s := range q.States {
		if s < 0 || s >= n {
			return fmt.Errorf("core: query state %d outside space of %d states", s, n)
		}
	}
	for _, t := range q.Times {
		if t < 0 {
			return fmt.Errorf("core: negative query timestamp %d", t)
		}
	}
	return nil
}

// Empty reports whether either side of the window is empty, in which
// case PST∃Q is identically 0 and PST∀Q identically 1.
func (q Query) Empty() bool { return len(q.States) == 0 || len(q.Times) == 0 }

// Horizon returns the largest query timestamp (tend), or -1 when the
// temporal predicate is empty.
func (q Query) Horizon() int {
	if len(q.Times) == 0 {
		return -1
	}
	return q.Times[len(q.Times)-1]
}

func (q Query) String() string {
	return fmt.Sprintf("Query{|S|=%d, T=%v}", len(q.States), q.Times)
}

// window is the compiled form of a query against a fixed state space:
// constant-time membership tests for both predicates. invert flips the
// spatial predicate, which is how PST∀Q queries the complement region
// without materializing |S| − |S□| state ids.
type window struct {
	mask    []bool
	states  []int // sorted unique region states (the mask's true set)
	invert  bool
	timeSet map[int]bool
	horizon int
	k       int    // |T□|
	sig     uint64 // content fingerprint of (numStates, S□, T□), invert excluded
}

func compile(q Query, numStates int) (*window, error) {
	if err := q.Validate(numStates); err != nil {
		return nil, err
	}
	w := &window{
		mask:    make([]bool, numStates),
		states:  sortedSet(q.States),
		timeSet: make(map[int]bool, len(q.Times)),
		horizon: q.Horizon(),
		k:       len(q.Times),
	}
	for _, s := range w.states {
		w.mask[s] = true
	}
	for _, t := range q.Times {
		w.timeSet[t] = true
	}
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(numStates))
	for _, s := range w.states {
		h = fnvMix(h, uint64(s)+1)
	}
	h = fnvMix(h, fnvSep)
	for _, t := range sortedSet(q.Times) {
		h = fnvMix(h, uint64(t)+1)
	}
	w.sig = h
	return w, nil
}

// signature fingerprints the compiled window for score-cache keys. Two
// windows with equal signatures over the same chain compile to the same
// predicate (modulo the astronomically unlikely 64-bit collision);
// inversion flips a dedicated bit so PST∀Q complements never alias their
// base window.
func (w *window) signature() uint64 {
	if w.invert {
		return w.sig ^ invertSigFlip
	}
	return w.sig
}

// FNV-1a over uint64 words, with a separator word between the state and
// time lists so {1}×{} never collides with {}×{1}.
const (
	fnvOffset     = 0xcbf29ce484222325
	fnvPrime      = 0x100000001b3
	fnvSep        = 0xfffffffffffffffe
	invertSigFlip = 0x9e3779b97f4a7c15
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// eachRegionState calls fn for every state satisfying the (possibly
// inverted) spatial predicate. Non-inverted windows iterate the compact
// state list; inverted windows must walk the mask.
func (w *window) eachRegionState(fn func(s int)) {
	if !w.invert {
		for _, s := range w.states {
			fn(s)
		}
		return
	}
	for s, in := range w.mask {
		if !in {
			fn(s)
		}
	}
}

// inRegion reports whether state s satisfies the (possibly inverted)
// spatial predicate.
func (w *window) inRegion(s int) bool { return w.mask[s] != w.invert }

// atTime reports whether timestamp t belongs to T□.
func (w *window) atTime(t int) bool { return w.timeSet[t] }

// complemented returns a view of w with the spatial predicate inverted
// (S \ S□). The underlying mask is shared.
func (w *window) complemented() *window {
	c := *w
	c.invert = !c.invert
	return &c
}

func sortedSet(in []int) []int {
	if len(in) == 0 {
		return nil
	}
	out := append([]int(nil), in...)
	sort.Ints(out)
	dst := out[:1]
	for _, v := range out[1:] {
		if v != dst[len(dst)-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

// Interval returns the contiguous set {lo, …, hi}; a convenience for the
// paper's interval-shaped windows.
func Interval(lo, hi int) []int {
	if hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}
