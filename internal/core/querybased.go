package core

import (
	"context"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// The query-based (QB) strategy of Section V-B computes, in a single
// backward sweep from the query horizon to t = 0, a scoring vector
// score(t0) whose entry s is the probability that an object located at
// state s at time t0 satisfies the query predicate. Every object is then
// answered with one sparse dot product — the batch evaluation that makes
// QB orders of magnitude faster than OB on large databases.
//
// The sweep works on the transposed chain. Where the paper transposes
// the augmented matrices (M±)ᵀ, we fold the absorbing state in
// implicitly: stepping backward INTO a query timestamp first replaces
// the scores of states inside S□ by 1 (any world standing there is a
// certain hit — the redirected column of M+), then applies Mᵀ.
//
// Sweep results are shared engine-wide through the score cache; the
// per-object machinery lives in the kernel layer (kernel.go).

// hitScores runs the backward sweep down to time t0 and returns the
// scoring vector. The result additionally accounts for t0 itself being a
// query timestamp (footnote 2 of the paper): scores of states in S□ are
// pinned to 1. The sweep checks ctx once per backward step and aborts
// with ctx.Err() on cancellation. Scratch buffers come from pool (nil is
// allowed); the returned vector is freshly owned by the caller.
func hitScores(ctx context.Context, chain *markov.Chain, w *window, t0 int, pool *sparse.VecPool) (*sparse.Vec, error) {
	n := chain.NumStates()
	score := pool.Get(n)
	if w.k == 0 || w.horizon < t0 {
		return score, nil
	}
	next := pool.Get(n)
	for t := w.horizon; t > t0; t-- {
		if err := ctx.Err(); err != nil {
			pool.Put(score)
			pool.Put(next)
			return nil, err
		}
		if w.atTime(t) {
			pinRegion(score, w)
		}
		chain.StepBack(next, score)
		score, next = next, score
	}
	if w.atTime(t0) {
		pinRegion(score, w)
	}
	pool.Put(next)
	return score, nil
}

// pinRegion sets score[s] = 1 for every state inside the (possibly
// inverted) spatial predicate — the redirected M+ column, viewed
// backward.
func pinRegion(score *sparse.Vec, w *window) {
	w.eachRegionState(func(s int) { score.Set(s, 1) })
}

// ExistsQB answers the PST∃Q for every object in the database using the
// query-based strategy: one backward sweep per (chain, observation time)
// pair, then one dot product per object. Multi-observation objects fall
// back to the forward multi-observation kernel, preserving exactness.
// Thin wrapper over Evaluate.
func (e *Engine) ExistsQB(q Query) ([]Result, error) {
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateExists,
		WithWindow(q), WithStrategy(StrategyQueryBased)))
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// ForAllQB answers the PST∀Q for every object via the complement
// identity, sharing the query-based machinery. Thin wrapper over
// Evaluate.
func (e *Engine) ForAllQB(q Query) ([]Result, error) {
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateForAll,
		WithWindow(q), WithStrategy(StrategyQueryBased)))
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// ExistsQBScores exposes the raw scoring vector for a chain at a given
// observation time: entry s is the probability that an object starting
// at s at time t0 satisfies the query. Useful for visualization and for
// answering "which starting positions are dangerous" questions directly.
// Served through the engine's score cache when enabled; the returned
// vector is a private copy the caller may mutate freely.
func (e *Engine) ExistsQBScores(chain *markov.Chain, q Query, t0 int) (*sparse.Vec, error) {
	w, err := compile(q, chain.NumStates())
	if err != nil {
		return nil, err
	}
	score, err := e.kernel(chain, w, nil).existsScoreAt(context.Background(), t0)
	if err != nil {
		return nil, err
	}
	return score.Clone(), nil
}
