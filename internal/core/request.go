package core

import (
	"fmt"

	"ust/internal/spatial"
)

// The unified query surface. A Request is one self-contained question —
// predicate kind × spatio-temporal window × execution hints — and
// Engine.Evaluate / Engine.EvaluateSeq are the only entry points needed
// to ask it. The legacy per-variant Engine methods (Exists, ExistsQB,
// ExistsThreshold, TopKExists, …) are thin wrappers over this surface.

// Predicate identifies the query predicate of a Request.
type Predicate int

const (
	// PredicateExists is the PST∃Q (Definition 2): probability the
	// object is inside the region at SOME timestamp of the window.
	PredicateExists Predicate = iota
	// PredicateForAll is the PST∀Q (Definition 3): probability the
	// object is inside the region at EVERY timestamp of the window.
	PredicateForAll
	// PredicateKTimes is the PSTkQ (Definition 4): the distribution over
	// how many window timestamps the object spends inside the region.
	// Results carry the distribution in Result.Dist; Result.Prob is the
	// probability of at least one visit (1 − Dist[0]).
	PredicateKTimes
	// PredicateEventually is the unbounded-horizon extension: the
	// probability the object EVER enters the region, with no time limit
	// (the chain-theoretic hitting probability). The temporal predicate
	// is ignored; tune convergence with WithHittingLimits.
	PredicateEventually
	// PredicateExpr is a compound expression over exists/forall atoms
	// (algebra.go), each with its own window, combined with And/Or/Not/
	// Then and evaluated exactly by flag-bit state-space augmentation.
	// Set the expression with WithExpr or build the request with
	// NewExprRequest; the top-level States/Times/Region are unused.
	PredicateExpr
)

func (p Predicate) String() string {
	switch p {
	case PredicateExists:
		return "exists"
	case PredicateForAll:
		return "forall"
	case PredicateKTimes:
		return "ktimes"
	case PredicateEventually:
		return "eventually"
	case PredicateExpr:
		return "expr"
	default:
		return fmt.Sprintf("Predicate(%d)", int(p))
	}
}

// Request is a complete query: what to ask (predicate + window) and how
// to run it (strategy, ranking, budgets). Build one with NewRequest and
// functional options; the zero value is an exists-query with an empty
// window. Requests are values — copy and re-use them freely; options
// never mutate shared state.
type Request struct {
	// Predicate selects the query semantics.
	Predicate Predicate
	// States is the spatial predicate S□ as raw state identifiers.
	// It is merged with the states resolved from Region, if any.
	States []int
	// Times is the temporal predicate T□ as absolute timestamps.
	Times []int
	// Region is an optional geometric spatial predicate. It is resolved
	// into state ids through Resolver at evaluation time and unioned
	// with States.
	Region spatial.Region
	// Resolver maps Region to state ids (an *spatial.RTree over the
	// state space, or a Grid/LineSpace directly). Required when Region
	// is set.
	Resolver spatial.Resolver

	// expr is the compound expression of a PredicateExpr request, set
	// via WithExpr / NewExprRequest.
	expr *Expr

	// agg turns the request into a database-level aggregate (count
	// distribution or occupancy profile) over the predicate, set via
	// WithAggregate / NewAggRequest.
	agg *AggSpec

	// Execution hints, set via options. nil/zero means "engine default".
	strategy    *Strategy
	autoPlan    bool
	threshold   *float64
	topK        int
	parallelism int
	mcSamples   int
	mcSeed      *int64
	maxSteps    int
	tol         float64
	useCache    *bool
	useFilter   *bool
}

// RequestOption customizes one Request.
type RequestOption func(*Request)

// NewRequest builds a Request for the given predicate.
func NewRequest(p Predicate, opts ...RequestOption) Request {
	r := Request{Predicate: p}
	for _, opt := range opts {
		opt(&r)
	}
	return r
}

// With returns a copy of the request with the extra options applied.
func (r Request) With(opts ...RequestOption) Request {
	for _, opt := range opts {
		opt(&r)
	}
	return r
}

// WithWindow sets the spatio-temporal window from a legacy Query value.
func WithWindow(q Query) RequestOption {
	return func(r *Request) {
		r.States = q.States
		r.Times = q.Times
	}
}

// WithStates sets the spatial predicate as raw state identifiers.
func WithStates(states []int) RequestOption {
	return func(r *Request) { r.States = states }
}

// WithTimes sets the temporal predicate as absolute timestamps.
func WithTimes(times []int) RequestOption {
	return func(r *Request) { r.Times = times }
}

// WithTimeRange sets the temporal predicate to the contiguous window
// {lo..hi}.
func WithTimeRange(lo, hi int) RequestOption {
	return func(r *Request) { r.Times = Interval(lo, hi) }
}

// WithRegion sets a geometric spatial predicate, resolved to state ids
// through the resolver (an R-tree over the state space, or a raster
// space directly) when the request is evaluated. Resolved ids are
// unioned with any raw ids set via WithStates.
func WithRegion(region spatial.Region, resolver spatial.Resolver) RequestOption {
	return func(r *Request) {
		r.Region = region
		r.Resolver = resolver
	}
}

// WithExpr turns the request into a compound-expression query: the
// predicate becomes PredicateExpr and x replaces the request's own
// window (each atom carries its own). Build expressions with
// ExistsAtom/ForAllAtom and And/Or/Not/Then.
func WithExpr(x Expr) RequestOption {
	return func(r *Request) {
		r.Predicate = PredicateExpr
		r.expr = &x
	}
}

// NewExprRequest builds a compound-expression request: NewRequest
// (PredicateExpr, WithExpr(x), opts...). Ranking, strategy, caching and
// filter–refine options apply exactly as for atomic requests.
func NewExprRequest(x Expr, opts ...RequestOption) Request {
	return NewRequest(PredicateExpr, append([]RequestOption{WithExpr(x)}, opts...)...)
}

// WithAggregate turns the request into a database-level aggregate: the
// answer is no longer one Result per object but the exact distribution
// of how many objects satisfy the predicate (or, for PSTkQ, of the
// total visit count), reported on Response.Agg. The per-object
// probabilities come from the same exact kernels the plain request
// would run — strategy, auto-planning, caching and parallelism options
// apply unchanged — so the aggregate is consistent with the per-object
// answers to the ulp. Ranking options (WithTopK / WithThreshold) do not
// combine with aggregates.
func WithAggregate(spec AggSpec) RequestOption {
	return func(r *Request) { r.agg = &spec }
}

// NewAggRequest builds an aggregate request over the given predicate:
// NewRequest(p, WithAggregate(spec), opts...).
func NewAggRequest(p Predicate, spec AggSpec, opts ...RequestOption) Request {
	return NewRequest(p, append([]RequestOption{WithAggregate(spec)}, opts...)...)
}

// WithStrategy forces the evaluation strategy for this request,
// overriding the engine default and WithAutoPlan.
func WithStrategy(s Strategy) RequestOption {
	return func(r *Request) {
		r.strategy = &s
		r.autoPlan = false
	}
}

// WithAutoPlan lets the cost planner pick the cheaper exact strategy
// per request (Section V-C). The chosen strategy and the cost estimates
// are reported in the Response.
func WithAutoPlan() RequestOption {
	return func(r *Request) {
		r.autoPlan = true
		r.strategy = nil
	}
}

// WithThreshold keeps only objects whose probability is ≥ tau. Results
// stay in database order (rank them with WithTopK when needed).
func WithThreshold(tau float64) RequestOption {
	return func(r *Request) { r.threshold = &tau }
}

// WithTopK keeps the k highest-probability objects, sorted descending
// (ties break toward smaller object id). Memory stays O(k) regardless
// of database size.
func WithTopK(k int) RequestOption {
	return func(r *Request) { r.topK = k }
}

// WithParallelism fans per-object work out over the given number of
// goroutines (≤ 0 selects GOMAXPROCS). Only the object-based and
// Monte-Carlo strategies parallelize; the query-based strategy's
// per-object work is already a dot product.
func WithParallelism(workers int) RequestOption {
	return func(r *Request) {
		if workers <= 0 {
			workers = -1 // resolved to GOMAXPROCS at evaluation time
		}
		r.parallelism = workers
	}
}

// WithMonteCarloBudget overrides the per-object sample budget (and
// seed) for the Monte-Carlo strategy on this request.
func WithMonteCarloBudget(samples int, seed int64) RequestOption {
	return func(r *Request) {
		r.mcSamples = samples
		r.mcSeed = &seed
	}
}

// WithHittingLimits tunes the fixed-point iteration of
// PredicateEventually: maxSteps bounds the backward sweeps, tol is the
// sup-norm convergence tolerance. ≤ 0 selects the defaults.
func WithHittingLimits(maxSteps int, tol float64) RequestOption {
	return func(r *Request) {
		r.maxSteps = maxSteps
		r.tol = tol
	}
}

// WithCache toggles the engine's shared score cache for this request.
// Caching is on by default (when the engine has a cache); WithCache
// (false) forces fresh sweeps — useful for benchmarking and for one-off
// windows not worth the cache residency. Results are identical either
// way.
func WithCache(enabled bool) RequestOption {
	return func(r *Request) { r.useCache = &enabled }
}

// WithFilterRefine toggles the filter–refine stage for WithThreshold /
// WithTopK requests on the exact strategies: cheap reachability-envelope
// bounds prune objects that provably cannot qualify before any exact
// per-object evaluation runs. On by default; results are identical
// either way (the filter is strictly conservative), so the switch exists
// for benchmarking and fallback. Response.Filter reports the funnel.
func WithFilterRefine(enabled bool) RequestOption {
	return func(r *Request) { r.useFilter = &enabled }
}

// --- hint accessors -------------------------------------------------------
//
// The execution hints are unexported (only the With… options set them),
// but serialization layers — the wire codec behind the network API —
// need to read a Request back out field by field. These accessors expose
// exactly the information the options can set, so encode(decode(x)) can
// reproduce a Request precisely.

// StrategyHint returns the forced strategy, if WithStrategy set one.
func (r Request) StrategyHint() (Strategy, bool) {
	if r.strategy == nil {
		return 0, false
	}
	return *r.strategy, true
}

// AutoPlanHint reports whether WithAutoPlan was requested.
func (r Request) AutoPlanHint() bool { return r.autoPlan }

// ThresholdHint returns the threshold, if WithThreshold set one.
func (r Request) ThresholdHint() (float64, bool) {
	if r.threshold == nil {
		return 0, false
	}
	return *r.threshold, true
}

// TopKHint returns k (0 when WithTopK was not used).
func (r Request) TopKHint() int { return r.topK }

// ParallelismHint returns the requested worker count: 0 when unset, -1
// for "GOMAXPROCS", a positive count otherwise.
func (r Request) ParallelismHint() int { return r.parallelism }

// MonteCarloHint returns the per-request sample budget and seed, if
// WithMonteCarloBudget set them.
func (r Request) MonteCarloHint() (samples int, seed int64, ok bool) {
	if r.mcSeed == nil {
		return 0, 0, false
	}
	return r.mcSamples, *r.mcSeed, true
}

// HittingHint returns the fixed-point limits set by WithHittingLimits
// (zero values when unset; the evaluator resolves ≤ 0 to defaults
// either way).
func (r Request) HittingHint() (maxSteps int, tol float64) { return r.maxSteps, r.tol }

// CacheHint returns the per-request cache toggle, if WithCache set one.
func (r Request) CacheHint() (enabled, ok bool) {
	if r.useCache == nil {
		return false, false
	}
	return *r.useCache, true
}

// AggregateHint returns the aggregate spec, if WithAggregate set one.
func (r Request) AggregateHint() (AggSpec, bool) {
	if r.agg == nil {
		return AggSpec{}, false
	}
	return *r.agg, true
}

// ExprHint returns the compound expression, if WithExpr set one.
func (r Request) ExprHint() (Expr, bool) {
	if r.expr == nil {
		return Expr{}, false
	}
	return *r.expr, true
}

// NeedsResolver reports whether the request carries a geometric region
// — top-level or inside an expression atom — with no resolver attached
// to ground it. The serving layer uses this to attach its dataset's
// spatial index to wire-decoded requests.
func (r Request) NeedsResolver() bool {
	if r.Region != nil && r.Resolver == nil {
		return true
	}
	return r.expr != nil && r.expr.needsResolver()
}

// AttachResolver returns a copy of the request with res attached to
// every region that lacks a resolver, including expression atoms.
func (r Request) AttachResolver(res spatial.Resolver) Request {
	if r.Region != nil && r.Resolver == nil {
		r.Resolver = res
	}
	if r.expr != nil && r.expr.needsResolver() {
		attached := r.expr.attachResolver(res)
		r.expr = &attached
	}
	return r
}

// FilterRefineHint returns the per-request filter–refine toggle, if
// WithFilterRefine set one.
func (r Request) FilterRefineHint() (enabled, ok bool) {
	if r.useFilter == nil {
		return false, false
	}
	return *r.useFilter, true
}

// Window resolves the request's spatio-temporal window into a legacy
// Query value: the union of the raw state ids and the region resolved
// against the state space. It is the inverse of WithWindow.
func (r Request) Window() (Query, error) {
	states := r.States
	if r.Region != nil {
		if r.Resolver == nil {
			return Query{}, fmt.Errorf("core: request has a region but no resolver (use WithRegion)")
		}
		resolved := r.Resolver.StatesIn(r.Region)
		if len(r.States) > 0 {
			merged := make([]int, 0, len(r.States)+len(resolved))
			merged = append(merged, r.States...)
			merged = append(merged, resolved...)
			states = merged
		} else {
			states = resolved
		}
	}
	return NewQuery(states, r.Times), nil
}

// resolveStrategy returns the strategy this request should run with
// under the given engine defaults. Auto-planning is handled by the
// caller (it needs the resolved window).
func (r Request) resolveStrategy(def Strategy) Strategy {
	if r.strategy != nil {
		return *r.strategy
	}
	return def
}

// validate rejects nonsensical hint combinations early.
func (r Request) validate() error {
	switch r.Predicate {
	case PredicateExists, PredicateForAll, PredicateKTimes, PredicateEventually:
		if r.expr != nil {
			return fmt.Errorf("core: WithExpr requires PredicateExpr, got %v", r.Predicate)
		}
	case PredicateExpr:
		if r.expr == nil {
			return fmt.Errorf("core: expression request without an expression (use WithExpr or NewExprRequest)")
		}
		if err := r.expr.validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown predicate %v", r.Predicate)
	}
	if r.topK < 0 {
		return fmt.Errorf("core: top-k needs k ≥ 1, got %d", r.topK)
	}
	if r.threshold != nil && (*r.threshold < 0 || *r.threshold > 1) {
		return fmt.Errorf("core: threshold %g outside [0, 1]", *r.threshold)
	}
	if r.mcSamples < 0 {
		return fmt.Errorf("core: Monte-Carlo needs a positive sample count, got %d", r.mcSamples)
	}
	if r.Predicate == PredicateEventually {
		if r.strategy != nil && *r.strategy == StrategyMonteCarlo {
			return fmt.Errorf("core: eventually-queries have no Monte-Carlo strategy")
		}
	}
	if r.agg != nil {
		if err := r.agg.validate(); err != nil {
			return err
		}
		if r.topK > 0 || r.threshold != nil {
			return fmt.Errorf("core: aggregates answer the whole database; WithTopK/WithThreshold do not apply")
		}
		if r.agg.Kind == AggOccupancy {
			if r.Predicate != PredicateExists {
				return fmt.Errorf("core: occupancy profiles require PredicateExists, got %v", r.Predicate)
			}
			if r.strategy != nil && *r.strategy == StrategyMonteCarlo {
				return fmt.Errorf("core: occupancy profiles have no Monte-Carlo strategy")
			}
		}
	}
	return nil
}
