package core

import (
	"container/list"
	"context"
	"sync"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// The engine-wide score cache. A backward sweep's result — the scoring
// vector(s) for one (chain, compiled window, observation time) — depends
// on nothing else: not on the object being answered, not on the rest of
// the database. That makes it the natural unit of sharing across
// repeated Evaluate calls, standing Monitors, the experiment harness and
// ustquery sessions against one engine. The cache is a concurrency-safe,
// size-bounded LRU over those sweep results plus the boolean
// reachability envelopes the filter stage derives from the same keys.
//
// Invalidation is generation-based: every entry records the database
// generation (Database.Version) current when it was computed; lookups
// compare against the live generation and lazily expire mismatched
// entries of generation-SENSITIVE kinds — payloads whose inputs include
// mutable state their keys cannot see. The sweep/envelope kinds are
// pure functions of the immutable chain, the window and the observation
// time, so mutations can never make them wrong; the per-object kinds
// (multi-observation results, posteriors) depend on observations but
// key themselves on the object's construction serial, which ingest
// replaces — so both families are revalidated in place instead of
// recomputed, which keeps standing queries and ingest loops
// (Observe/Add, then Evaluate) fully cached for everything that did not
// change. The generation machinery remains the correctness rail for
// future kinds whose keys DO have a blind spot; Engine.InvalidateCache
// remains the manual override.

// scoreKind discriminates what a cache entry holds.
type scoreKind uint8

const (
	// kindExists: one scoring vector from the PST∃Q backward sweep.
	kindExists scoreKind = iota
	// kindKTimes: the |T□|+1 backward vectors of the PSTkQ sweep.
	kindKTimes
	// kindHitting: the fixed-point hitting-probability vector
	// (PredicateEventually); t0 is unused, sig folds in maxSteps/tol.
	kindHitting
	// kindPossible: the "can possibly hit" reachability envelope.
	kindPossible
	// kindCertain: the "hits with certainty" envelope.
	kindCertain
	// kindExpr: the 2^m augmented backward family of a compound
	// expression (plan.go); sig is the expression signature.
	kindExpr
	// kindMultiObs: one multi-observation P∃ scalar. The key sig folds
	// the OBJECT SERIAL together with the window signature, so the entry
	// is content-addressed: replacing the object mints a new serial (and
	// thus a new key) and the old entry simply ages out of the LRU.
	kindMultiObs
	// kindPosterior: one cached per-object posterior distribution
	// (multiobs.go); sig is serial-based like kindMultiObs, t0 is the
	// query time.
	kindPosterior
)

// genSensitive reports whether entries of this kind depend on mutable
// database state THROUGH THEIR KEY's blind spot and must therefore
// expire when the database generation advances. Sweeps and envelopes
// depend only on the immutable chain + window + time; the per-object
// kinds (kindMultiObs, kindPosterior) DO depend on observations, but
// their keys fold in the object's construction serial, which changes on
// every ingest — the key itself is the invalidation, so generation
// expiry would only throw away entries for objects that did not change
// (precisely the recomputation ingest-during-query workloads must
// avoid). Unknown kinds default to sensitive so a future cache user is
// safe by default.
func (k scoreKind) genSensitive() bool {
	switch k {
	case kindExists, kindKTimes, kindHitting, kindPossible, kindCertain, kindExpr,
		kindMultiObs, kindPosterior:
		return false
	}
	return true
}

// scoreKey identifies one cached sweep. The chain pointer is identity:
// chains are immutable after construction, so pointer equality is value
// equality for our purposes.
type scoreKey struct {
	chain *markov.Chain
	kind  scoreKind
	sig   uint64 // window signature (or hashed hitting parameters)
	t0    int    // observation time the sweep descends to
}

// scoreValue is the payload of one entry: float vectors for exact
// sweeps, bitsets for envelopes, bare scalars for per-object results.
// Cached payloads are shared and must be treated as immutable by every
// reader.
type scoreValue struct {
	vecs    []*sparse.Vec
	bits    *sparse.Bitset
	scalars []float64
}

// bytes approximates the resident size of the payload.
func (v scoreValue) bytes() int {
	b := 8 * len(v.scalars)
	for _, vec := range v.vecs {
		b += 8 * vec.Len()
	}
	if v.bits != nil {
		b += 8 * v.bits.Words()
	}
	return b
}

// CacheStats is a snapshot of the engine score cache's lifetime
// counters, exposed through Engine.CacheStats.
type CacheStats struct {
	// Hits and Misses count lookups. A hit means a backward sweep (or
	// envelope) was served without recomputation.
	Hits, Misses uint64
	// Evictions counts entries dropped to respect the size bound.
	Evictions uint64
	// Expired counts entries dropped by generation invalidation after
	// database mutations.
	Expired uint64
	// Entries and Bytes describe the current residency.
	Entries int
	Bytes   int
}

// CacheReport is the per-request slice of cache traffic, reported on
// Response.Cache. Hits+Misses is the number of sweeps the request
// needed; Hits of them were served from the shared cache.
type CacheReport struct {
	Hits, Misses int
}

func (r *CacheReport) hit() {
	if r != nil {
		r.Hits++
	}
}

func (r *CacheReport) miss() {
	if r != nil {
		r.Misses++
	}
}

// scoreCache is the LRU proper. The zero value is not usable; construct
// with newScoreCache.
type scoreCache struct {
	mu       sync.Mutex
	capacity int // byte budget; entries are evicted LRU-first beyond it
	bytes    int
	ll       *list.List // front = most recently used
	items    map[scoreKey]*list.Element
	gen      func() uint64 // live generation source (Database.Version)
	stats    CacheStats
	// locks single-flights sweep computation per key: concurrent
	// evaluations (shards of one router, parallel requests on one
	// engine) that miss on the same key serialize, so exactly one
	// computes and the rest hit. Entries are reference-counted and
	// removed when the last holder releases.
	locks map[scoreKey]*keyLock
}

// keyLock is a context-aware mutex: the 1-buffered channel is the lock
// token, so a waiter can abandon the acquisition when its own context
// expires instead of stalling behind another caller's slow sweep.
type keyLock struct {
	ch   chan struct{}
	refs int
}

// lock acquires the per-key computation lock and returns its release
// function, or ctx.Err() if the caller's context ends while waiting.
// Callers hold it across the lookup-compute-insert sequence of one
// sweep; holders of DIFFERENT keys never contend (beyond the map access
// itself).
func (c *scoreCache) lock(ctx context.Context, key scoreKey) (unlock func(), err error) {
	c.mu.Lock()
	kl := c.locks[key]
	if kl == nil {
		kl = &keyLock{ch: make(chan struct{}, 1)}
		c.locks[key] = kl
	}
	kl.refs++
	c.mu.Unlock()
	release := func() {
		c.mu.Lock()
		kl.refs--
		if kl.refs == 0 {
			delete(c.locks, key)
		}
		c.mu.Unlock()
	}
	select {
	case kl.ch <- struct{}{}:
	case <-ctx.Done():
		release()
		return nil, ctx.Err()
	}
	return func() {
		<-kl.ch
		release()
	}, nil
}

type scoreEntry struct {
	key scoreKey
	val scoreValue
	gen uint64
}

// newScoreCache builds a cache bounded to roughly capacity bytes of
// payload. gen supplies the live database generation.
func newScoreCache(capacity int, gen func() uint64) *scoreCache {
	return &scoreCache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[scoreKey]*list.Element{},
		gen:      gen,
		locks:    map[scoreKey]*keyLock{},
	}
}

// tryGet is the optimistic, lock-free-of-keyLock read: a hit counts
// (and refreshes LRU) exactly like get, but a miss counts NOTHING —
// the caller is about to retry under the per-key single-flight lock,
// and that locked get is the one that records the outcome. This keeps
// warm-path readers of the same key fully concurrent (no keyLock
// acquisition) without double-counting cold lookups.
func (c *scoreCache) tryGet(key scoreKey, rep *CacheReport) (scoreValue, bool) {
	return c.lookup(key, rep, false)
}

// get returns the cached payload for key if present and current.
func (c *scoreCache) get(key scoreKey, rep *CacheReport) (scoreValue, bool) {
	return c.lookup(key, rep, true)
}

func (c *scoreCache) lookup(key scoreKey, rep *CacheReport, countMiss bool) (scoreValue, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if ok {
		ent := el.Value.(*scoreEntry)
		if gen := c.gen(); ent.gen != gen {
			if ent.key.kind.genSensitive() {
				// The database changed since this payload was computed
				// and the payload depends on what changed: expire and
				// fall through to a miss.
				c.removeLocked(el)
				c.stats.Expired++
				if countMiss {
					c.stats.Misses++
					rep.miss()
				}
				return scoreValue{}, false
			}
			// Generation-independent payload: provably still valid,
			// revalidate in place.
			ent.gen = gen
		}
		c.ll.MoveToFront(el)
		c.stats.Hits++
		rep.hit()
		return ent.val, true
	}
	if countMiss {
		c.stats.Misses++
		rep.miss()
	}
	return scoreValue{}, false
}

// put inserts (or replaces) the payload for key, then evicts LRU entries
// beyond the byte budget. The newest entry always survives its own
// insert, even when it alone exceeds the budget — refusing it would turn
// a hot oversized sweep into a permanent miss.
func (c *scoreCache) put(key scoreKey, val scoreValue) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Duplicate compute under concurrency: keep the existing entry
		// (readers may already share it) and drop the newcomer.
		c.ll.MoveToFront(el)
		return
	}
	ent := &scoreEntry{key: key, val: val, gen: c.gen()}
	el := c.ll.PushFront(ent)
	c.items[key] = el
	c.bytes += val.bytes()
	for c.bytes > c.capacity && c.ll.Len() > 1 {
		c.removeLocked(c.ll.Back())
		c.stats.Evictions++
	}
}

// adopt inserts a payload served by a peer over the networked sweep
// tier and re-classifies the caller's just-counted miss as a hit: the
// locked get that preceded the tier round-trip recorded a miss before
// the outcome was known, and "another process computed it" is service,
// not computation. Adoption keeps the fleet-wide invariant that each
// distinct sweep costs exactly one miss — counted by the lease holder
// that actually computed it — which is what the conformance suite pins
// against the single-engine miss count. Like put, an entry already
// present wins over the newcomer.
func (c *scoreCache) adopt(key scoreKey, val scoreValue, rep *CacheReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stats.Misses > 0 {
		c.stats.Misses--
		c.stats.Hits++
	}
	if rep != nil && rep.Misses > 0 {
		rep.Misses--
		rep.Hits++
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	ent := &scoreEntry{key: key, val: val, gen: c.gen()}
	el := c.ll.PushFront(ent)
	c.items[key] = el
	c.bytes += val.bytes()
	for c.bytes > c.capacity && c.ll.Len() > 1 {
		c.removeLocked(c.ll.Back())
		c.stats.Evictions++
	}
}

// contains reports whether key is present and current, without touching
// LRU order or the hit/miss counters — the batch optimizer's peek for
// "does this sweep still need computing".
func (c *scoreCache) contains(key scoreKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	if key.kind.genSensitive() && el.Value.(*scoreEntry).gen != c.gen() {
		return false
	}
	return true
}

// invalidate drops every entry immediately.
func (c *scoreCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.ll.Len() > 0 {
		c.removeLocked(c.ll.Back())
		c.stats.Expired++
	}
}

func (c *scoreCache) removeLocked(el *list.Element) {
	ent := el.Value.(*scoreEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= ent.val.bytes()
}

// snapshot returns the lifetime counters plus current residency.
func (c *scoreCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	return s
}
