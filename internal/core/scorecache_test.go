package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// cacheTestDB builds a small random database over one chain.
func cacheTestDB(t testing.TB, n, objects int, seed int64) *Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		deg := 1 + rng.Intn(3)
		for d := 0; d < deg; d++ {
			b.Add(i, rng.Intn(n), 0.2+rng.Float64())
		}
	}
	chain := markov.MustChain(b.Build().NormalizeRows())
	db := NewDatabase(chain)
	for id := 0; id < objects; id++ {
		if err := db.AddSimple(id, markov.PointDistribution(n, rng.Intn(n))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// sameResult compares two Results bit-exactly (including Dist).
func sameResult(a, b Result) bool {
	if a.ObjectID != b.ObjectID || a.Prob != b.Prob || len(a.Dist) != len(b.Dist) {
		return false
	}
	for k := range a.Dist {
		if a.Dist[k] != b.Dist[k] {
			return false
		}
	}
	return true
}

func TestRepeatedEvaluateHitsScoreCache(t *testing.T) {
	db := cacheTestDB(t, 40, 20, 1)
	e := NewEngine(db, Options{})
	req := NewRequest(PredicateExists, WithStates([]int{3, 4, 5}), WithTimes(Interval(2, 6)))

	resp1, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// All objects share observation time 0: the request needs exactly one
	// distinct sweep, computed fresh. (Cache traffic counts distinct
	// sweep fetches — repeat per-object touches are absorbed by the
	// request-local memo and never reach the shared cache.)
	if resp1.Cache.Misses != 1 {
		t.Fatalf("first evaluate: Misses = %d, want 1", resp1.Cache.Misses)
	}
	if resp1.Cache.Hits != 0 {
		t.Fatalf("first evaluate: Hits = %d, want 0", resp1.Cache.Hits)
	}

	resp2, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cache.Misses != 0 {
		t.Fatalf("repeated evaluate: Misses = %d, want 0 (sweep should be cached)", resp2.Cache.Misses)
	}
	if resp2.Cache.Hits != 1 {
		t.Fatalf("repeated evaluate: Hits = %d, want 1 (one distinct sweep)", resp2.Cache.Hits)
	}
	for i := range resp1.Results {
		if !sameResult(resp1.Results[i], resp2.Results[i]) {
			t.Fatalf("cached result differs at %d: %+v vs %+v", i, resp1.Results[i], resp2.Results[i])
		}
	}

	stats := e.CacheStats()
	if stats.Entries == 0 || stats.Bytes == 0 {
		t.Fatalf("engine stats report empty cache: %+v", stats)
	}
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("engine stats missing traffic: %+v", stats)
	}
}

func TestCachedResultsIdenticalAcrossPredicates(t *testing.T) {
	db := cacheTestDB(t, 30, 12, 2)
	e := NewEngine(db, Options{})
	reqs := []Request{
		NewRequest(PredicateExists, WithStates(Interval(5, 9)), WithTimes(Interval(1, 5))),
		NewRequest(PredicateForAll, WithStates(Interval(0, 20)), WithTimes(Interval(1, 4))),
		NewRequest(PredicateKTimes, WithStates(Interval(5, 9)), WithTimes(Interval(1, 4))),
		NewRequest(PredicateEventually, WithStates(Interval(5, 9)), WithHittingLimits(200, 1e-10)),
	}
	for ri, req := range reqs {
		uncached, err := e.Evaluate(context.Background(), req.With(WithCache(false)))
		if err != nil {
			t.Fatalf("req %d uncached: %v", ri, err)
		}
		if uncached.Cache != (CacheReport{}) {
			t.Fatalf("req %d: WithCache(false) still reported traffic %+v", ri, uncached.Cache)
		}
		warm, err := e.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatalf("req %d warm: %v", ri, err)
		}
		hot, err := e.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatalf("req %d hot: %v", ri, err)
		}
		if hot.Cache.Misses != 0 || hot.Cache.Hits == 0 {
			t.Fatalf("req %d hot: cache report %+v, want pure hits", ri, hot.Cache)
		}
		for i := range uncached.Results {
			a, b, c := uncached.Results[i], warm.Results[i], hot.Results[i]
			if a.ObjectID != b.ObjectID || a.Prob != b.Prob || a.ObjectID != c.ObjectID || a.Prob != c.Prob {
				t.Fatalf("req %d: results diverge at %d: %+v / %+v / %+v", ri, i, a, b, c)
			}
			for k := range a.Dist {
				if a.Dist[k] != b.Dist[k] || a.Dist[k] != c.Dist[k] {
					t.Fatalf("req %d: dist diverges at %d", ri, i)
				}
			}
		}
	}
}

// TestScoreCacheGenerationInvalidation exercises the generation rail
// directly: entries of a generation-sensitive kind expire when the
// database mutates, generation-independent kinds (every sweep kind)
// revalidate in place, and InvalidateCache drops everything.
func TestScoreCacheGenerationInvalidation(t *testing.T) {
	gen := uint64(0)
	c := newScoreCache(1<<20, func() uint64 { return gen })
	chain := markov.MustChain(sparse.Identity(4).NormalizeRows())
	vec := sparse.NewVec(4)

	sweepKey := scoreKey{chain: chain, kind: kindExists, sig: 1, t0: 0}
	const kindSensitiveTest scoreKind = 200 // unknown kinds default to sensitive
	sensKey := scoreKey{chain: chain, kind: kindSensitiveTest, sig: 2, t0: 0}
	c.put(sweepKey, scoreValue{vecs: []*sparse.Vec{vec}})
	c.put(sensKey, scoreValue{vecs: []*sparse.Vec{vec}})

	gen++ // a database mutation
	if _, ok := c.get(sweepKey, nil); !ok {
		t.Fatalf("generation-independent sweep expired on mutation")
	}
	if _, ok := c.get(sensKey, nil); ok {
		t.Fatalf("generation-sensitive entry survived mutation")
	}
	if s := c.snapshot(); s.Expired != 1 {
		t.Fatalf("Expired = %d, want 1 (%+v)", s.Expired, s)
	}

	c.invalidate()
	if _, ok := c.get(sweepKey, nil); ok {
		t.Fatalf("manual invalidate left entries behind")
	}
	if s := c.snapshot(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("invalidate left residency: %+v", s)
	}
}

// TestCacheSurvivesObservationUpdate: sweeps depend only on the
// immutable chain + window + time, so observation updates must NOT cost
// recomputation — and results must still match a cold engine exactly.
func TestCacheSurvivesObservationUpdate(t *testing.T) {
	db := cacheTestDB(t, 30, 10, 3)
	e := NewEngine(db, Options{})
	req := NewRequest(PredicateExists, WithStates(Interval(2, 6)), WithTimes(Interval(1, 5)))

	if _, err := e.Evaluate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	genBefore := db.Version()

	// Update object 0's observation set through the database.
	o := db.Get(0)
	updated, err := NewObject(0, o.Chain, append(append([]Observation(nil), o.Observations...),
		Observation{Time: 3, PDF: markov.UniformOver(30, Interval(0, 29))})...)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ReplaceObject(updated); err != nil {
		t.Fatal(err)
	}
	if db.Version() == genBefore {
		t.Fatalf("ReplaceObject did not advance the generation")
	}

	resp, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep must survive the update untouched; the single allowed
	// miss is object 0's first multi-observation evaluation, cached
	// per-object under its new construction serial.
	if resp.Cache.Misses > 1 {
		t.Fatalf("observation update needlessly expired observation-independent sweeps: %+v", resp.Cache)
	}
	if resp.Cache.Hits == 0 {
		t.Fatalf("sweep was not served from cache after the update: %+v", resp.Cache)
	}

	// A repeat evaluation is fully cached: the updated object's
	// multi-observation scalar now lives under its serial.
	again, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cache.Misses != 0 {
		t.Fatalf("repeat after update not fully cached: %+v", again.Cache)
	}

	// Ground truth from a cold engine over the same database.
	cold := NewEngine(db, Options{CacheBytes: -1})
	want, err := cold.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Results) != len(resp.Results) {
		t.Fatalf("result count mismatch")
	}
	for i := range want.Results {
		if !sameResult(want.Results[i], resp.Results[i]) {
			t.Fatalf("post-update result %d: %+v, want %+v", i, resp.Results[i], want.Results[i])
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	db := cacheTestDB(t, 50, 4, 4)
	// Budget fits roughly one 50-state sweep (8*50 = 400 bytes): two
	// distinct windows must evict each other.
	e := NewEngine(db, Options{CacheBytes: 500})
	reqA := NewRequest(PredicateExists, WithStates(Interval(0, 4)), WithTimes(Interval(1, 4)))
	reqB := NewRequest(PredicateExists, WithStates(Interval(10, 14)), WithTimes(Interval(1, 4)))
	for i := 0; i < 3; i++ {
		if _, err := e.Evaluate(context.Background(), reqA); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Evaluate(context.Background(), reqB); err != nil {
			t.Fatal(err)
		}
	}
	stats := e.CacheStats()
	if stats.Evictions == 0 {
		t.Fatalf("tiny cache never evicted: %+v", stats)
	}
	if stats.Bytes > 1000 {
		t.Fatalf("cache grew past its budget: %+v", stats)
	}
}

// TestConcurrentEvaluateSharedCache hammers one engine from many
// goroutines (run under -race via make race) and verifies every result
// matches the serial reference.
func TestConcurrentEvaluateSharedCache(t *testing.T) {
	db := cacheTestDB(t, 60, 30, 5)
	e := NewEngine(db, Options{})
	reqs := []Request{
		NewRequest(PredicateExists, WithStates(Interval(3, 9)), WithTimes(Interval(2, 7))),
		NewRequest(PredicateForAll, WithStates(Interval(0, 40)), WithTimes(Interval(1, 4))),
		NewRequest(PredicateKTimes, WithStates(Interval(3, 9)), WithTimes(Interval(2, 5))),
		NewRequest(PredicateExists, WithStates(Interval(3, 9)), WithTimes(Interval(2, 7)), WithThreshold(0.1)),
		NewRequest(PredicateExists, WithStates(Interval(3, 9)), WithTimes(Interval(2, 7)), WithTopK(5)),
	}
	want := make([]*Response, len(reqs))
	ref := NewEngine(db, Options{CacheBytes: -1})
	for i, req := range reqs {
		var err error
		want[i], err = ref.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		for i := range reqs {
			wg.Add(1)
			go func(g, i int) {
				defer wg.Done()
				resp, err := e.Evaluate(context.Background(), reqs[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d req %d: %v", g, i, err)
					return
				}
				if len(resp.Results) != len(want[i].Results) {
					errs <- fmt.Errorf("req %d: %d results, want %d", i, len(resp.Results), len(want[i].Results))
					return
				}
				for j := range resp.Results {
					if resp.Results[j].ObjectID != want[i].Results[j].ObjectID ||
						resp.Results[j].Prob != want[i].Results[j].Prob {
						errs <- fmt.Errorf("req %d result %d: %+v, want %+v", i, j, resp.Results[j], want[i].Results[j])
						return
					}
				}
			}(g, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMonitorSharedCacheIdentical pins Monitor's incremental refresh to
// fresh full evaluations across a stream of observation updates — the
// fold-onto-shared-cache refactor must not change a single bit.
func TestMonitorSharedCacheIdentical(t *testing.T) {
	db := cacheTestDB(t, 40, 15, 6)
	e := NewEngine(db, Options{})
	q := NewQuery(Interval(4, 9), Interval(3, 8))
	m := e.NewMonitor(q)

	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 5; round++ {
		got, err := m.Results()
		if err != nil {
			t.Fatal(err)
		}
		if m.Dirty() != 0 {
			t.Fatalf("round %d: %d dirty after Results", round, m.Dirty())
		}
		// Fresh engine over the same database = ground truth.
		fresh := NewEngine(db, Options{CacheBytes: -1})
		want, err := fresh.Exists(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d results, want %d", round, len(got), len(want))
		}
		for i := range want {
			if !sameResult(got[i], want[i]) {
				t.Fatalf("round %d: result %d = %+v, want %+v", round, i, got[i], want[i])
			}
		}
		// Feed a new observation to a random object.
		id := rng.Intn(db.Len())
		last := db.Get(id).Last()
		// A broad (uniform) sighting stays consistent with any motion
		// model; a random point sighting could be impossible.
		if err := m.Observe(id, Observation{Time: last.Time + 1 + rng.Intn(2), PDF: markov.UniformOver(40, Interval(0, 39))}); err != nil {
			t.Fatal(err)
		}
		if m.Dirty() != 1 {
			t.Fatalf("round %d: Dirty = %d, want 1", round, m.Dirty())
		}
	}
}

// TestKeyLockHonorsWaiterContext pins the single-flight lock's
// context-awareness: a caller queued behind another holder of the same
// key gives up with ctx.Err() when its own context ends, instead of
// stalling for the leader's sweep; and the abandoned reservation does
// not leak the lock entry.
func TestKeyLockHonorsWaiterContext(t *testing.T) {
	c := newScoreCache(1<<20, func() uint64 { return 0 })
	key := scoreKey{kind: kindExists, sig: 1, t0: 0}

	unlock, err := c.lock(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, werr := c.lock(ctx, key); werr == nil {
		t.Fatal("waiter acquired a held key with a dead context")
	} else if !errors.Is(werr, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", werr)
	}
	unlock()

	// The abandoned waiter must not have leaked its refcount: the key
	// re-acquires immediately and the lock table is empty when released.
	unlock2, err := c.lock(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	unlock2()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.locks) != 0 {
		t.Fatalf("lock table leaked %d entries", len(c.locks))
	}
}
