package core

import "sync"

// SharedCache is a score cache shared by several engines — the handle a
// shard router passes to its per-shard engines (Options.Cache) so that
// backward sweeps, which depend only on (chain, window, observation
// time) and never on which objects a shard holds, are computed once per
// distinct key across the whole fleet. The per-key single-flight inside
// the cache (scoreCache.lock) makes "once" literal even under
// concurrent shard fan-out: the first engine to need a sweep computes
// it while the others block on the key and then hit.
//
// Generation-based invalidation generalizes from one database to many:
// the shared generation is the sum of every attached database's
// Version(), so any mutation anywhere advances it. As in the
// single-engine cache, every kind cached today is generation-
// insensitive (pure function of immutable chain + window + time) and
// merely revalidates; the machinery is the correctness rail for future
// observation-dependent kinds.
type SharedCache struct {
	cache *scoreCache

	mu  sync.Mutex
	dbs []*Database
}

// NewSharedCache builds a cache bounded to roughly capacityBytes of
// payload (0 selects DefaultCacheBytes). Pass it to every engine that
// should share sweeps via Options.Cache.
func NewSharedCache(capacityBytes int) *SharedCache {
	if capacityBytes <= 0 {
		capacityBytes = DefaultCacheBytes
	}
	s := &SharedCache{}
	s.cache = newScoreCache(capacityBytes, s.generation)
	return s
}

// attach registers a database as a generation source. Idempotent per
// database; called by NewEngine when Options.Cache is set.
func (s *SharedCache) attach(db *Database) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.dbs {
		if d == db {
			return
		}
	}
	s.dbs = append(s.dbs, db)
}

// generation sums the attached databases' mutation generations:
// versions only ever increase, so any mutation anywhere changes the
// sum.
func (s *SharedCache) generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var g uint64
	for _, db := range s.dbs {
		g += db.Version()
	}
	return g
}

// Stats snapshots the shared cache's lifetime counters.
func (s *SharedCache) Stats() CacheStats { return s.cache.snapshot() }

// Invalidate drops every cached sweep immediately — the manual override
// for callers mutating state the attached databases cannot see.
func (s *SharedCache) Invalidate() { s.cache.invalidate() }
