package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"ust/internal/sparse"
)

// The networked sweep tier. Within one process the score cache already
// guarantees each distinct backward sweep is computed at most once —
// the per-key single-flight lock serializes concurrent missers and the
// LRU serves everyone after. Across processes that guarantee evaporates:
// N workers answering slices of the same query each run the same sweep.
// SweepTier is the generalization of the per-key lock to a fleet: a
// coordinator-granted LEASE on (chain fingerprint, kind, signature, t0)
// so exactly one worker computes, plus a payload channel so the rest
// adopt the bytes instead of recomputing. The tier is strictly an
// optimization layer — every error path degrades to local compute, so a
// dead coordinator slows the fleet down but never wedges or corrupts it.
//
// Only kinds that are pure functions of (chain, window, t0) travel:
// the per-object kinds (kindMultiObs, kindPosterior) key on process-
// unique object serials that mean nothing to a peer.

// SweepKey names one sweep in process-independent terms. It is the wire
// twin of scoreKey: the chain pointer becomes the chain's content
// fingerprint (markov.Chain.Fingerprint), everything else carries over.
type SweepKey struct {
	Chain uint64 `json:"chain"`
	Kind  uint8  `json:"kind"`
	Sig   uint64 `json:"sig"`
	T0    int64  `json:"t0"`
}

// String renders the key in the form the lease endpoints use as a map
// key and in log lines.
func (k SweepKey) String() string {
	return fmt.Sprintf("%016x.%d.%016x.%d", k.Chain, k.Kind, k.Sig, k.T0)
}

// SweepTier coordinates sweep computation across engines that do not
// share an address space. Implementations must be safe for concurrent
// use.
type SweepTier interface {
	// Acquire asks the tier for key. Exactly one of payload and lease is
	// meaningful on success: a non-nil payload means a peer already
	// computed the sweep (adopt it); a non-empty lease token means this
	// caller holds the fleet-wide computation right and must either Fill
	// or Release it. Acquire may block (long-poll) while another process
	// holds the lease; it returns early with the caller's ctx error.
	Acquire(ctx context.Context, key SweepKey) (payload []byte, lease string, err error)
	// Fill publishes the computed payload under a held lease.
	Fill(ctx context.Context, key SweepKey, lease string, payload []byte) error
	// Release abandons a held lease without filling it (the local
	// compute failed), so a waiting peer can take over immediately
	// instead of waiting out the lease TTL.
	Release(ctx context.Context, key SweepKey, lease string)
}

// wireable reports whether entries of this kind may travel over the
// sweep tier: true exactly for the kinds whose key fully determines the
// payload in any process. The serial-keyed per-object kinds stay local.
func (k scoreKind) wireable() bool {
	switch k {
	case kindExists, kindKTimes, kindHitting, kindPossible, kindCertain, kindExpr:
		return true
	}
	return false
}

// --- payload codec --------------------------------------------------------
//
// The payload is the exact internal representation of a scoreValue, not
// just its abstract value: Vec iteration (and therefore every dot
// product downstream) follows the support list in insertion order, so
// the codec round-trips the dense flag, the support order and the raw
// float64 bits. A payload decoded on a peer behaves bit-identically to
// the original — which is what lets remote-shard results stay pinned
// byte-identical to a single engine.

const (
	sweepMagic   byte = 0x75 // 'u'
	sweepVersion byte = 1
)

func encodeSweepValue(v scoreValue) []byte {
	size := 2 + 4
	for _, vec := range v.vecs {
		data, supp, dense := vec.Repr()
		size += 1 + 4
		if dense {
			size += 8 * len(data)
		} else {
			size += 4 + 12*len(supp)
		}
	}
	size++
	if v.bits != nil {
		size += 8 + 8*len(v.bits.Words64())
	}
	size += 4 + 8*len(v.scalars)

	out := make([]byte, 0, size)
	out = append(out, sweepMagic, sweepVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(v.vecs)))
	for _, vec := range v.vecs {
		data, supp, dense := vec.Repr()
		if dense {
			out = append(out, 1)
			out = binary.LittleEndian.AppendUint32(out, uint32(len(data)))
			for _, x := range data {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
			}
			continue
		}
		out = append(out, 0)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(data)))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(supp)))
		for _, i := range supp {
			out = binary.LittleEndian.AppendUint32(out, uint32(i))
		}
		for _, i := range supp {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(data[i]))
		}
	}
	if v.bits != nil {
		out = append(out, 1)
		out = binary.LittleEndian.AppendUint32(out, uint32(v.bits.Len()))
		words := v.bits.Words64()
		out = binary.LittleEndian.AppendUint32(out, uint32(len(words)))
		for _, w := range words {
			out = binary.LittleEndian.AppendUint64(out, w)
		}
	} else {
		out = append(out, 0)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(v.scalars)))
	for _, x := range v.scalars {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
	}
	return out
}

// sweepDecoder is a bounds-checked little-endian reader. The payload
// comes from a peer over the network; every read validates remaining
// length so a truncated or hostile payload decodes to an error, never a
// panic.
type sweepDecoder struct {
	b   []byte
	off int
}

func (d *sweepDecoder) u8() (byte, error) {
	if d.off+1 > len(d.b) {
		return 0, fmt.Errorf("core: sweep payload truncated at byte %d", d.off)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *sweepDecoder) u32() (uint32, error) {
	if d.off+4 > len(d.b) {
		return 0, fmt.Errorf("core: sweep payload truncated at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *sweepDecoder) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, fmt.Errorf("core: sweep payload truncated at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

// count validates a declared element count against the bytes that
// remain, so a hostile header cannot drive a huge allocation.
func (d *sweepDecoder) count(n uint32, elemBytes int) (int, error) {
	if int64(n)*int64(elemBytes) > int64(len(d.b)-d.off) {
		return 0, fmt.Errorf("core: sweep payload declares %d elements past its end", n)
	}
	return int(n), nil
}

// decodeSweepValue parses an encoded payload, validating every declared
// dimension against numStates — a payload computed over a different
// chain (fingerprint collision, version skew) fails here and the caller
// falls back to local compute.
func decodeSweepValue(b []byte, numStates int) (scoreValue, error) {
	d := &sweepDecoder{b: b}
	magic, err := d.u8()
	if err != nil {
		return scoreValue{}, err
	}
	ver, err := d.u8()
	if err != nil {
		return scoreValue{}, err
	}
	if magic != sweepMagic || ver != sweepVersion {
		return scoreValue{}, fmt.Errorf("core: sweep payload magic/version %#x/%d not %#x/%d", magic, ver, sweepMagic, sweepVersion)
	}
	nvecs32, err := d.u32()
	if err != nil {
		return scoreValue{}, err
	}
	nvecs, err := d.count(nvecs32, 5)
	if err != nil {
		return scoreValue{}, err
	}
	var v scoreValue
	for range nvecs {
		dense, derr := d.u8()
		if derr != nil {
			return scoreValue{}, derr
		}
		n32, derr := d.u32()
		if derr != nil {
			return scoreValue{}, derr
		}
		if int(n32) != numStates {
			return scoreValue{}, fmt.Errorf("core: sweep payload vector over %d states, chain has %d", n32, numStates)
		}
		if dense == 1 {
			cnt, cerr := d.count(n32, 8)
			if cerr != nil {
				return scoreValue{}, cerr
			}
			data := make([]float64, cnt)
			for i := range data {
				bits, berr := d.u64()
				if berr != nil {
					return scoreValue{}, berr
				}
				data[i] = math.Float64frombits(bits)
			}
			v.vecs = append(v.vecs, sparse.AdoptDense(data))
			continue
		}
		nnz32, derr := d.u32()
		if derr != nil {
			return scoreValue{}, derr
		}
		nnz, derr := d.count(nnz32, 12)
		if derr != nil {
			return scoreValue{}, derr
		}
		supp := make([]int, nnz)
		seen := make(map[int]bool, nnz)
		for i := range supp {
			si, serr := d.u32()
			if serr != nil {
				return scoreValue{}, serr
			}
			if int(si) >= numStates {
				return scoreValue{}, fmt.Errorf("core: sweep payload support index %d out of range [0,%d)", si, numStates)
			}
			if seen[int(si)] {
				return scoreValue{}, fmt.Errorf("core: sweep payload duplicate support index %d", si)
			}
			seen[int(si)] = true
			supp[i] = int(si)
		}
		data := make([]float64, numStates)
		for _, i := range supp {
			bits, berr := d.u64()
			if berr != nil {
				return scoreValue{}, berr
			}
			data[i] = math.Float64frombits(bits)
		}
		v.vecs = append(v.vecs, sparse.AdoptSparse(data, supp))
	}
	hasBits, err := d.u8()
	if err != nil {
		return scoreValue{}, err
	}
	if hasBits == 1 {
		n32, berr := d.u32()
		if berr != nil {
			return scoreValue{}, berr
		}
		if int(n32) != numStates {
			return scoreValue{}, fmt.Errorf("core: sweep payload bitset over %d states, chain has %d", n32, numStates)
		}
		nw32, berr := d.u32()
		if berr != nil {
			return scoreValue{}, berr
		}
		nw, berr := d.count(nw32, 8)
		if berr != nil {
			return scoreValue{}, berr
		}
		words := make([]uint64, nw)
		for i := range words {
			if words[i], berr = d.u64(); berr != nil {
				return scoreValue{}, berr
			}
		}
		bits, berr := sparse.BitsetFromWords(numStates, words)
		if berr != nil {
			return scoreValue{}, berr
		}
		v.bits = bits
	}
	ns32, err := d.u32()
	if err != nil {
		return scoreValue{}, err
	}
	ns, err := d.count(ns32, 8)
	if err != nil {
		return scoreValue{}, err
	}
	for range ns {
		bits, serr := d.u64()
		if serr != nil {
			return scoreValue{}, serr
		}
		v.scalars = append(v.scalars, math.Float64frombits(bits))
	}
	if d.off != len(b) {
		return scoreValue{}, fmt.Errorf("core: sweep payload has %d trailing bytes", len(b)-d.off)
	}
	return v, nil
}
