package core

import (
	"context"
	"fmt"
	"sort"
)

// Ranked retrieval. The heap machinery here backs WithTopK in Evaluate;
// TopKExists and RankedExists are compatibility wrappers.

// TopKExists returns the k objects with the highest PST∃Q probability,
// sorted descending (ties break toward smaller object id). It evaluates
// with the engine's default strategy and keeps only a k-sized min-heap,
// so memory stays O(k) regardless of database size. Thin wrapper over
// Evaluate.
func (e *Engine) TopKExists(q Query, k int) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: top-k needs k ≥ 1, got %d", k)
	}
	resp, err := e.Evaluate(context.Background(), NewRequest(PredicateExists,
		WithWindow(q), WithTopK(k)))
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// better reports whether a ranks above b: higher probability first,
// then smaller id.
func better(a, b Result) bool {
	if a.Prob != b.Prob {
		return a.Prob > b.Prob
	}
	return a.ObjectID < b.ObjectID
}

// BetterRanked is the engine's ranking order (WithTopK's sort and
// tie-break), exported so merging layers — the shard router's k-way
// heap — use the one comparator instead of a drifting copy.
func BetterRanked(a, b Result) bool { return better(a, b) }

// resultMinHeap keeps the current top-k with the weakest entry on top.
type resultMinHeap []Result

func (h resultMinHeap) Len() int            { return len(h) }
func (h resultMinHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h resultMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultMinHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RankedExists returns every object sorted by descending PST∃Q
// probability: TopKExists with k = |D|, provided for reporting flows.
func (e *Engine) RankedExists(q Query) ([]Result, error) {
	all, err := e.Exists(q)
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(a, b int) bool { return better(all[a], all[b]) })
	return all, nil
}
