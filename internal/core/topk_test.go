package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/gen"
	"ust/internal/markov"
)

func topkDB(t testing.TB, n int) *Database {
	t.Helper()
	p := gen.Params{NumObjects: n, NumStates: 800, ObjectSpread: 3, StateSpread: 4, MaxStep: 30, Seed: 11}
	ds := gen.MustGenerate(p)
	db := NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		db.MustAdd(MustObject(i, nil, Observation{Time: 0, PDF: o}))
	}
	return db
}

func TestTopKExistsMatchesFullSort(t *testing.T) {
	db := topkDB(t, 120)
	e := NewEngine(db, Options{})
	q := NewQuery(Interval(100, 160), Interval(8, 12))

	ranked, err := e.RankedExists(q)
	if err != nil {
		t.Fatalf("RankedExists: %v", err)
	}
	for _, k := range []int{1, 5, 37, 120, 500} {
		top, err := e.TopKExists(q, k)
		if err != nil {
			t.Fatalf("TopKExists(%d): %v", k, err)
		}
		want := k
		if want > len(ranked) {
			want = len(ranked)
		}
		if len(top) != want {
			t.Fatalf("TopKExists(%d) returned %d results", k, len(top))
		}
		for i := range top {
			if top[i].ObjectID != ranked[i].ObjectID || math.Abs(top[i].Prob-ranked[i].Prob) > 1e-12 {
				t.Fatalf("k=%d: rank %d: %+v vs %+v", k, i, top[i], ranked[i])
			}
		}
	}
}

func TestTopKExistsInvalidK(t *testing.T) {
	db, _ := paperDB(t)
	e := NewEngine(db, Options{})
	if _, err := e.TopKExists(paperQueryV(), 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestTopKOrderingTieBreak(t *testing.T) {
	// Several objects with identical probability: order by id.
	db := NewDatabase(paperChainV(t))
	for id := 5; id >= 1; id-- {
		db.MustAdd(MustObject(id, nil, Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	}
	e := NewEngine(db, Options{})
	top, err := e.TopKExists(paperQueryV(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].ObjectID != 1 || top[1].ObjectID != 2 || top[2].ObjectID != 3 {
		t.Errorf("tie-break order wrong: %v", top)
	}
}

// Property: P∃ is monotone in both query dimensions — growing the
// region or the time window can only increase the probability.
func TestExistsMonotoneInWindowQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		if len(q.States) == 0 || len(q.Times) == 0 {
			return true
		}
		base, err := e.ExistsOB(o, q)
		if err != nil {
			return false
		}
		n := e.db.ChainOf(o).NumStates()
		// Grow the region by one state (if possible).
		inQ := map[int]bool{}
		for _, s := range q.States {
			inQ[s] = true
		}
		for s := 0; s < n; s++ {
			if !inQ[s] {
				bigger, err := e.ExistsOB(o, NewQuery(append(append([]int(nil), q.States...), s), q.Times))
				if err != nil || bigger < base-1e-12 {
					return false
				}
				break
			}
		}
		// Grow the time window by one timestamp.
		extended := append(append([]int(nil), q.Times...), q.Horizon()+1)
		bigger, err := e.ExistsOB(o, NewQuery(q.States, extended))
		if err != nil {
			return false
		}
		return bigger >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: P∀ is antitone in the time window — demanding more
// timestamps inside can only decrease the probability — and monotone in
// the region.
func TestForAllMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o, q := randomInstance(rng)
		base, err := e.ForAllOB(o, q)
		if err != nil {
			return false
		}
		extended := append(append([]int(nil), q.Times...), q.Horizon()+1)
		smaller, err := e.ForAllOB(o, NewQuery(q.States, extended))
		if err != nil {
			return false
		}
		if smaller > base+1e-12 {
			return false
		}
		n := e.db.ChainOf(o).NumStates()
		inQ := map[int]bool{}
		for _, s := range q.States {
			inQ[s] = true
		}
		for s := 0; s < n; s++ {
			if !inQ[s] {
				bigger, err := e.ForAllOB(o, NewQuery(append(append([]int(nil), q.States...), s), q.Times))
				if err != nil || bigger < base-1e-12 {
					return false
				}
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
