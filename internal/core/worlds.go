package core

import (
	"fmt"

	"ust/internal/markov"
)

// Brute-force possible-worlds reference (Section IV notes the space is
// O(|S|^T) — this is intentionally exponential and exists purely to
// validate the matrix algorithms on tiny instances).

// WorldStats holds the exact aggregate over all possible worlds of one
// object for a query window.
type WorldStats struct {
	// PExists is the total probability of worlds intersecting the window.
	PExists float64
	// PForAll is the total probability of worlds inside the window at
	// every query timestamp.
	PForAll float64
	// KDist[k] is the total probability of worlds inside the window at
	// exactly k query timestamps.
	KDist []float64
	// Worlds is the number of enumerated trajectories with positive
	// probability.
	Worlds int
}

// maxBruteForceWorlds caps enumeration so a mistaken call cannot hang a
// test run.
const maxBruteForceWorlds = 5_000_000

// BruteForceExpr evaluates a compound expression (algebra.go) for one
// object by exhaustive possible-worlds enumeration: every trajectory of
// positive probability is walked, each atom's fired-flag tracked along
// it, and the expression's truth table applied to the final flag word.
// This is the ground truth the augmented evaluations (plan.go) are
// pinned against; like BruteForce it is intentionally exponential.
// Atoms carrying geometric regions must have resolvers attached.
func BruteForceExpr(chain *markov.Chain, o *Object, x Expr) (float64, error) {
	resolved, err := x.resolved()
	if err != nil {
		return 0, err
	}
	prog, err := compileExpr(resolved, chain.NumStates())
	if err != nil {
		return 0, err
	}
	first := o.First()
	end := prog.horizon
	if last := o.Last().Time; last > end {
		end = last
	}
	if end < first.Time {
		end = first.Time
	}

	obsAt := map[int]*markov.Distribution{}
	for _, ob := range o.Observations[1:] {
		obsAt[ob.Time] = ob.PDF
	}

	var acceptMass, totalMass float64
	worlds := 0
	var walk func(t, state int, prob float64, bits int)
	walk = func(t, state int, prob float64, bits int) {
		if d := prog.deltas[t]; d != nil {
			bits |= int(d[state])
		}
		if pdf, ok := obsAt[t]; ok {
			prob *= pdf.P(state)
			if prob == 0 {
				return
			}
		}
		if t == end {
			worlds++
			if worlds > maxBruteForceWorlds {
				panic(fmt.Sprintf("core: brute force exceeded %d worlds", maxBruteForceWorlds))
			}
			totalMass += prob
			if prog.accept[bits] {
				acceptMass += prob
			}
			return
		}
		chain.Successors(state, func(next int, p float64) {
			walk(t+1, next, prob*p, bits)
		})
	}

	init := first.PDF.Clone()
	if init.Vec().Normalize() == 0 {
		return 0, errZeroMass(o.ID)
	}
	init.Vec().Range(func(s int, p float64) {
		walk(first.Time, s, p, 0)
	})
	if totalMass == 0 {
		return 0, fmt.Errorf("core: observations are mutually impossible under the motion model")
	}
	return acceptMass / totalMass, nil
}

// BruteForce enumerates every trajectory of positive probability from
// the object's first observation to the query horizon (or last
// observation if later), weights each by its path probability times the
// likelihood of the remaining observations (possible-worlds semantics of
// Section VI), and aggregates the three query predicates exactly.
func BruteForce(chain *markov.Chain, o *Object, q Query) (*WorldStats, error) {
	w, err := compile(q, chain.NumStates())
	if err != nil {
		return nil, err
	}
	first := o.First()
	if w.k > 0 && first.Time > w.horizon {
		return nil, errObservedAfterHorizon(o.ID, first.Time, w.horizon)
	}
	end := w.horizon
	if last := o.Last().Time; last > end {
		end = last
	}
	if end < first.Time {
		end = first.Time
	}

	obsAt := map[int]*markov.Distribution{}
	for _, ob := range o.Observations[1:] {
		obsAt[ob.Time] = ob.PDF
	}

	stats := &WorldStats{KDist: make([]float64, w.k+1)}
	var totalMass float64

	var walk func(t, state int, prob float64, visits int)
	walk = func(t, state int, prob float64, visits int) {
		if w.atTime(t) && w.inRegion(state) {
			visits++
		}
		if pdf, ok := obsAt[t]; ok {
			prob *= pdf.P(state)
			if prob == 0 {
				return
			}
		}
		if t == end {
			stats.Worlds++
			if stats.Worlds > maxBruteForceWorlds {
				panic(fmt.Sprintf("core: brute force exceeded %d worlds", maxBruteForceWorlds))
			}
			totalMass += prob
			if visits > 0 {
				stats.PExists += prob
			}
			if visits == w.k {
				stats.PForAll += prob
			}
			if visits < len(stats.KDist) {
				stats.KDist[visits] += prob
			}
			return
		}
		chain.Successors(state, func(next int, p float64) {
			walk(t+1, next, prob*p, visits)
		})
	}

	init := first.PDF.Clone()
	if init.Vec().Normalize() == 0 {
		return nil, errZeroMass(o.ID)
	}
	init.Vec().Range(func(s int, p float64) {
		walk(first.Time, s, p, 0)
	})

	if totalMass == 0 {
		return nil, fmt.Errorf("core: observations are mutually impossible under the motion model")
	}
	// Renormalize to the possible worlds (Equation 1): conditioning on
	// the observations.
	stats.PExists /= totalMass
	stats.PForAll /= totalMass
	for k := range stats.KDist {
		stats.KDist[k] /= totalMass
	}
	return stats, nil
}

// BruteForceCountPMF is the world-enumeration oracle for the aggregate
// subsystem (aggregate.go): the exact database-level count PMF, computed
// WITHOUT the canonical generating-function machinery. Objects are
// independent, so the joint world space factorizes — each object's
// contribution distribution comes from exhaustive per-object enumeration
// (BruteForce / BruteForceExpr), and the factors combine by a plain
// left-to-right convolution in database order. Like its siblings it is
// intentionally exponential per object and exists only for tiny test
// instances. x is consulted for PredicateExpr only.
func BruteForceCountPMF(db *Database, pred Predicate, q Query, x Expr) ([]float64, error) {
	pmf := []float64{1}
	for _, o := range db.Objects() {
		chain := db.ChainOf(o)
		var coeffs []float64
		switch pred {
		case PredicateExists, PredicateForAll, PredicateKTimes:
			ws, err := BruteForce(chain, o, q)
			if err != nil {
				return nil, err
			}
			switch pred {
			case PredicateExists:
				coeffs = []float64{1 - ws.PExists, ws.PExists}
			case PredicateForAll:
				coeffs = []float64{1 - ws.PForAll, ws.PForAll}
			default:
				coeffs = ws.KDist
			}
		case PredicateExpr:
			p, err := BruteForceExpr(chain, o, x)
			if err != nil {
				return nil, err
			}
			coeffs = []float64{1 - p, p}
		default:
			return nil, fmt.Errorf("core: no brute-force count oracle for predicate %v", pred)
		}
		out := make([]float64, len(pmf)+len(coeffs)-1)
		for i, a := range pmf {
			for j, b := range coeffs {
				out[i+j] += a * b
			}
		}
		pmf = out
	}
	return pmf, nil
}
