package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"iter"

	"ust/client"
	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/store"
)

// Backend is one remote shard: the shard.Backend surface dispatched to
// a ustserve worker's dataset over the wire contract. Results come back
// with the exact float64 bits the worker computed, so the router's
// merge stays byte-identical to the in-process case.
type Backend struct {
	c       *client.Client
	dataset string
	// chain is the default chain import batches are staged against
	// (store images need one); the shadow's default chain.
	chain *markov.Chain
}

// NewBackend wraps a worker dataset as a shard backend. chain is the
// default chain of the database the shard serves a slice of.
func NewBackend(c *client.Client, dataset string, chain *markov.Chain) *Backend {
	return &Backend{c: c, dataset: dataset, chain: chain}
}

func (b *Backend) Evaluate(ctx context.Context, req core.Request) (*core.Response, error) {
	return b.c.Query(ctx, b.dataset, req)
}

// errStopSeq aborts the underlying HTTP stream when the seq consumer
// breaks early; it never escapes EvaluateSeq.
var errStopSeq = errors.New("dist: seq consumer stopped")

func (b *Backend) EvaluateSeq(ctx context.Context, req core.Request) iter.Seq2[core.Result, error] {
	return func(yield func(core.Result, error) bool) {
		err := b.c.QueryStream(ctx, b.dataset, req, func(r core.Result) error {
			if !yield(r, nil) {
				return errStopSeq
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopSeq) {
			yield(core.Result{}, err)
		}
	}
}

func (b *Backend) AggregateFactors(ctx context.Context, req core.Request) (*core.FactorSet, error) {
	return b.c.Factors(ctx, b.dataset, req)
}

// Import ships a migration batch to the worker: the objects are encoded
// as a store image (insertion order preserved — the order the router
// hands them in is the order the worker's database adopts, which is
// what keeps the worker's emission order identical to the coordinator
// shadow's) and applied under the generation fence.
func (b *Backend) Import(ctx context.Context, gen uint64, objs []*core.Object) error {
	if len(objs) == 0 {
		return nil
	}
	if b.chain == nil {
		return fmt.Errorf("dist: backend for %q has no chain to encode against", b.dataset)
	}
	batch := core.NewDatabase(b.chain)
	for _, o := range objs {
		if err := batch.Add(o); err != nil {
			return fmt.Errorf("dist: staging import batch: %w", err)
		}
	}
	var buf bytes.Buffer
	if err := store.SaveDatabase(&buf, batch); err != nil {
		return fmt.Errorf("dist: encoding import batch: %w", err)
	}
	return b.c.ImportObjects(ctx, b.dataset, gen, buf.Bytes())
}

func (b *Backend) Evict(ctx context.Context, gen uint64, ids []int) error {
	if len(ids) == 0 {
		return nil
	}
	return b.c.EvictObjects(ctx, b.dataset, gen, ids)
}

// Close is a no-op: the HTTP client is shared across backends and owned
// by the caller.
func (b *Backend) Close() error { return nil }
