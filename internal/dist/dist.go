// Package dist is the multi-process deployment of the sharded engine:
// shard.Backend implemented over the pinned wire contract, so a
// shard.Router can drive ustserve worker processes — or a mix of
// workers and in-process engines — behind the same rendezvous ring that
// serves the single-process case. The coordinator keeps the router's
// shadow bookkeeping; workers hold the data slices, receive them
// through the generation-fenced Import/Evict migration protocol, and
// share backward sweeps through the networked lease tier
// (core.SweepTier over /v1/sweeps).
//
// Topology:
//
//	client ──HTTP──▶ coordinator (ustserve -coordinator)
//	                   │ shard.Router: ring, planner, merge, fold
//	        ┌──────────┼──────────┐
//	      worker0    worker1    worker2   (ustserve -dataset …)
//	        └──────────┴──────────┘
//	          /v1/sweeps lease tier (one backward sweep fleet-wide)
//
// Everything stays byte-identical to a single engine: workers answer
// their slices with the same float64 bits (wire shortest round-trip),
// the coordinator merges in emission order and folds aggregate factors
// in canonical order, and sweep payloads travel as their exact internal
// representation (core sweep codec).
package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"ust/client"
	"ust/internal/core"
	"ust/internal/shard"
	"ust/internal/store"
)

// Factory returns a shard.BackendFactory whose shards are remote
// ustserve workers: shard label i is served by workers[i mod len],
// under the dataset name "<base>.shard<label>". Each new shard's
// dataset is created empty on its worker (same default chain as the
// router's database); an already-existing dataset is adopted as-is —
// which is how deployments pre-create worker datasets with a spatial
// resolver so region queries ground remotely.
func Factory(base string, workers []*client.Client) shard.BackendFactory {
	return func(label int, shadow *core.Database) (shard.Backend, error) {
		if len(workers) == 0 {
			return nil, fmt.Errorf("dist: no workers")
		}
		c := workers[label%len(workers)]
		name := fmt.Sprintf("%s.shard%d", base, label)
		if err := bootstrap(c, name, shadow); err != nil {
			return nil, err
		}
		return NewBackend(c, name, shadow.DefaultChain()), nil
	}
}

// bootstrap creates the worker-side dataset when it does not exist yet:
// an empty database over the shadow's default chain, populated through
// the router's Import mirroring afterwards. An existing dataset (HTTP
// 409) is adopted.
func bootstrap(c *client.Client, name string, shadow *core.Database) error {
	empty := core.NewDatabase(shadow.DefaultChain())
	var buf bytes.Buffer
	if err := store.SaveDatabase(&buf, empty); err != nil {
		return fmt.Errorf("dist: encoding bootstrap image: %w", err)
	}
	_, err := c.CreateDataset(context.Background(), name, &buf)
	if err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status == 409 {
			return nil // pre-created (e.g. with a resolver); adopt
		}
		return fmt.Errorf("dist: bootstrapping %q: %w", name, err)
	}
	return nil
}

// NewRouter builds a shard.Router whose every shard is a remote worker:
// the coordinator's engine. base names the worker-side datasets
// ("<base>.shard<label>").
func NewRouter(db *core.Database, shards int, opts core.Options, base string, workers []*client.Client) (*shard.Router, error) {
	return shard.NewWithBackends(db, shards, opts, Factory(base, workers))
}
