package dist_test

// End-to-end tests of the distributed deployment: a coordinator-side
// shard.Router whose every shard is a remote ustserve worker — real
// service.Service instances behind real localhost HTTP servers, wire
// codec and all — plus the networked sweep lease tier between them.
// The central invariant is unchanged from the in-process router:
// byte-identical results to a single engine over the same database, at
// every worker count, including aggregates, batch and streaming.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ust/client"
	"ust/internal/conformance"
	"ust/internal/core"
	"ust/internal/dist"
	"ust/internal/service"
	"ust/internal/shard"
	"ust/internal/spatial"
)

// fleet is one distributed deployment under test: N worker services
// (each behind its own HTTP server) and a coordinator-side router over
// them, with the sweep lease tier served by a coordinator service.
type fleet struct {
	router  *shard.Router
	workers []*service.Service
	clients []*client.Client
	coord   *service.Service
}

// newFleet builds a deployment with one worker process per shard. Worker
// datasets are pre-created empty (same default chain, same resolver —
// the deployment-side move that lets region queries ground remotely);
// the router's construction then populates them through the migration
// protocol. Workers join the coordinator's sweep tier over HTTP.
func newFleet(t *testing.T, db *core.Database, res spatial.Resolver, shards int, workerOpts core.Options) *fleet {
	t.Helper()
	coord := service.New(service.Config{Role: "coordinator"})
	coordTS := httptest.NewServer(service.NewHandler(coord))
	t.Cleanup(func() { coord.Close(); coordTS.Close() })
	if workerOpts.Sweeps == nil {
		workerOpts.Sweeps = dist.NewSweepClient(coordTS.URL, nil)
	}

	f := &fleet{coord: coord}
	for i := 0; i < shards; i++ {
		wsvc := service.New(service.Config{Options: workerOpts, Role: "worker"})
		if err := wsvc.Create(fmt.Sprintf("conf.shard%d", i), core.NewDatabase(db.DefaultChain()), res); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(service.NewHandler(wsvc))
		t.Cleanup(func() { wsvc.Close(); ts.Close() })
		f.workers = append(f.workers, wsvc)
		f.clients = append(f.clients, client.NewWithConfig(ts.URL, client.Config{HTTPClient: ts.Client()}))
	}
	router, err := dist.NewRouter(db, shards, core.Options{}, "conf", f.clients)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	f.router = router
	return f
}

// TestDistributedConformance runs the shared conformance table against
// a live multi-process-shaped deployment at every worker count the PR
// cares about: requests fan out to worker HTTP servers, results travel
// back through the wire codec, aggregates come home as factors and fold
// coordinator-side — all byte-identical to a single engine.
func TestDistributedConformance(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", shards), func(t *testing.T) {
			db, res := conformance.NewDataset()
			f := newFleet(t, db, res, shards, core.Options{})
			ref := core.NewEngine(db, core.Options{})
			conformance.Verify(t, res, ref, f.router, conformance.Options{SkipSerialMC: true})
		})
	}
}

// TestDistributedMultiObsConformance runs the multi-observation table,
// including the ingest-during-query pass: observations appended through
// the coordinator's router must migrate to the owning worker before the
// table replays.
func TestDistributedMultiObsConformance(t *testing.T) {
	db, res := conformance.NewMultiObsDataset()
	f := newFleet(t, db, res, 2, core.Options{})
	ref := core.NewEngine(db, core.Options{})
	conformance.VerifyMultiObs(t, db, res, ref, f.router, f.router.Observe,
		conformance.Options{SkipSerialMC: true})
}

// TestSweepLeaseMissEquality pins the acceptance criterion of the
// networked sweep tier: for a repeated-query workload, the SUMMED
// worker cache misses equal a single engine's miss count — each
// distinct backward sweep is computed exactly once fleet-wide (the
// lease holder's miss), every other worker adopts the payload as a hit.
func TestSweepLeaseMissEquality(t *testing.T) {
	reqs := []core.Request{
		core.NewRequest(core.PredicateExists,
			core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8))),
		core.NewRequest(core.PredicateForAll,
			core.WithStates(core.Interval(10, 30)), core.WithTimes(core.Interval(2, 6))),
	}
	workload := func(t *testing.T, eval func(core.Request) error) {
		t.Helper()
		for round := 0; round < 3; round++ {
			for _, req := range reqs {
				if err := eval(req); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Reference: a fresh single engine, no tier.
	refDB, _ := conformance.NewDataset()
	single := core.NewEngine(refDB, core.Options{})
	workload(t, func(req core.Request) error {
		_, err := single.Evaluate(context.Background(), req)
		return err
	})
	want := single.CacheStats().Misses

	db, res := conformance.NewDataset()
	f := newFleet(t, db, res, 3, core.Options{})
	workload(t, func(req core.Request) error {
		_, err := f.router.Evaluate(context.Background(), req)
		return err
	})
	var got uint64
	for _, w := range f.workers {
		got += w.CacheStats().Misses
	}
	if got != want {
		t.Fatalf("summed worker misses %d, single engine %d (each sweep must be computed once fleet-wide)", got, want)
	}
	if st := f.coord.Sweeps().Stats(); st.Fills == 0 {
		t.Fatalf("lease tier saw no fills; stats %+v", st)
	}
}

// TestSweepTierDegradesWithoutCoordinator pins the tier's failure
// contract: a worker whose sweep tier points at a dead coordinator
// still answers every query correctly — the tier is an optimization,
// every error path falls back to local compute.
func TestSweepTierDegradesWithoutCoordinator(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	db, res := conformance.NewDataset()
	f := newFleet(t, db, res, 2, core.Options{Sweeps: dist.NewSweepClient(deadURL, nil)})
	ref := core.NewEngine(db, core.Options{})
	req := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8)))
	want, err := ref.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.router.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("degraded fleet returned %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if !reflect.DeepEqual(got.Results[i], want.Results[i]) {
			t.Fatalf("result %d diverged under dead tier: %+v vs %+v", i, got.Results[i], want.Results[i])
		}
	}
	_ = res
}

// TestDistributedRebalance drives the live-rebalance path over real
// HTTP workers: grow the ring by a worker, verify byte-identical
// results, shrink a worker away, verify again. Every migration travels
// as generation-fenced Import/Evict batches.
func TestDistributedRebalance(t *testing.T) {
	db, res := conformance.NewDataset()
	f := newFleet(t, db, res, 2, core.Options{})

	// The grown shard lands on a fresh worker process. Its dataset is
	// pre-created with the resolver (the deployment-side move that lets
	// region queries ground remotely); the grown label on a 2-shard ring
	// is max+1 = 2, so Factory will adopt "conf.shard2" via 409.
	wsvc := service.New(service.Config{Role: "worker"})
	if err := wsvc.Create("conf.shard2", core.NewDatabase(db.DefaultChain()), res); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(wsvc))
	t.Cleanup(func() { wsvc.Close(); ts.Close() })
	grownClient := client.NewWithConfig(ts.URL, client.Config{HTTPClient: ts.Client()})
	label, err := f.router.Grow(func(label int, shadow *core.Database) (shard.Backend, error) {
		return dist.Factory("conf", []*client.Client{grownClient})(label, shadow)
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewEngine(db, core.Options{})
	conformance.Verify(t, res, ref, f.router, conformance.Options{SkipSerialMC: true})

	if err := f.router.Shrink(label); err != nil {
		t.Fatal(err)
	}
	conformance.Verify(t, res, ref, f.router, conformance.Options{SkipSerialMC: true})
}

// TestStaleGenerationRejected pins the migration fence end to end: a
// replayed Import (same generation) against a live worker is rejected
// with HTTP 409 and changes nothing.
func TestStaleGenerationRejected(t *testing.T) {
	db, res := conformance.NewDataset()
	f := newFleet(t, db, res, 2, core.Options{})
	_ = res

	// Find a worker dataset and its current object count.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	infos, err := f.clients[0].Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("worker datasets: %+v", infos)
	}
	name := infos[0].Name

	// Replay generation 1 (the bootstrap sync already used it).
	err = f.clients[0].EvictObjects(ctx, name, 1, []int{db.Objects()[0].ID})
	var ae *client.APIError
	if err == nil || !errors.As(err, &ae) || ae.Status != 409 {
		t.Fatalf("stale-generation evict: %v", err)
	}
	after, err := f.clients[0].Dataset(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if after.Objects != infos[0].Objects {
		t.Fatalf("stale evict mutated the worker: %d -> %d objects", infos[0].Objects, after.Objects)
	}
}
