package dist_test

// Failover tests for the replicated distributed tier: shards placed on
// their top-k workers, reads surviving a killed worker — including one
// killed mid-stream — with byte-identical results, and the health
// prober shrinking the read set within its probe window.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ust/client"
	"ust/internal/conformance"
	"ust/internal/core"
	"ust/internal/dist"
	"ust/internal/service"
	"ust/internal/shard"
	"ust/internal/spatial"
)

// repFleet is a replicated deployment under test: workerCount worker
// services, each shard placed on its top-`replicas` workers, fronted by
// a router with health-probed failover and a coordinator service whose
// /metrics exposes the probe state.
type repFleet struct {
	router  *shard.Router
	workers []*service.Service
	servers []*httptest.Server
	clients []*client.Client
	names   []string
	prober  *dist.Prober
	coord   *client.Client
}

// newReplicatedFleet builds the deployment. Every worker pre-creates
// every shard dataset with the resolver (so region queries ground
// remotely wherever the shard lands); the replicated factory adopts the
// ones the rendezvous placement actually uses. wrap, when non-nil, may
// wrap each worker's handler (fault injection).
func newReplicatedFleet(t *testing.T, db *core.Database, res spatial.Resolver, shards, workerCount, replicas int, wrap func(i int, h http.Handler) http.Handler) *repFleet {
	t.Helper()
	f := &repFleet{}
	for i := 0; i < workerCount; i++ {
		wsvc := service.New(service.Config{Role: "worker"})
		for s := 0; s < shards; s++ {
			if err := wsvc.Create(fmt.Sprintf("conf.shard%d", s), core.NewDatabase(db.DefaultChain()), res); err != nil {
				t.Fatal(err)
			}
		}
		var h http.Handler = service.NewHandler(wsvc)
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(func() { wsvc.Close(); ts.Close() })
		f.workers = append(f.workers, wsvc)
		f.servers = append(f.servers, ts)
		f.names = append(f.names, ts.URL)
		f.clients = append(f.clients, client.NewWithConfig(ts.URL, client.Config{HTTPClient: ts.Client()}))
	}
	f.prober = dist.NewProber(f.clients, f.names, dist.ProberConfig{Interval: 25 * time.Millisecond})
	f.prober.Start()
	t.Cleanup(f.prober.Stop)

	coord := service.New(service.Config{Role: "coordinator", WorkerHealth: func() []service.WorkerHealth {
		snap := f.prober.Snapshot()
		out := make([]service.WorkerHealth, len(snap))
		for i, wh := range snap {
			out[i] = service.WorkerHealth{Worker: wh.Worker, Healthy: wh.Healthy}
		}
		return out
	}})
	coordTS := httptest.NewServer(service.NewHandler(coord))
	t.Cleanup(func() { coord.Close(); coordTS.Close() })
	f.coord = client.NewWithConfig(coordTS.URL, client.Config{HTTPClient: coordTS.Client()})

	router, err := dist.NewReplicatedRouter(db, shards, core.Options{}, "conf", f.clients, replicas, f.prober)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	f.router = router
	return f
}

// kill terminates worker i abruptly: existing coordinator connections
// reset, new ones refused — a process death, not a drain.
func (f *repFleet) kill(i int) {
	f.servers[i].CloseClientConnections()
	f.servers[i].Close()
}

// primaryOf recomputes the replicated factory's placement: the worker
// index that is shard `label`'s first owner on a fleet of workerCount
// workers (the same rendezvous ring ReplicatedFactory builds).
func primaryOf(t *testing.T, label, workerCount, replicas int) int {
	t.Helper()
	wring, err := shard.NewRing(workerCount)
	if err != nil {
		t.Fatal(err)
	}
	return wring.Owners(label, replicas)[0]
}

// waitHealthy polls the prober until worker i's state matches want.
func (f *repFleet) waitHealthy(t *testing.T, i int, want bool, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for f.prober.Healthy(i) != want {
		if time.Now().After(deadline) {
			t.Fatalf("prober never marked worker %d healthy=%v within %v", i, want, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicatedConformanceKilledWorker is the acceptance criterion: a
// 4-worker, replicas=2 fleet answers the full conformance table
// byte-identically; a worker is killed mid-suite; the table passes
// again with zero errors while the prober flips ust_worker_healthy
// within its window.
func TestReplicatedConformanceKilledWorker(t *testing.T) {
	db, res := conformance.NewDataset()
	f := newReplicatedFleet(t, db, res, 4, 4, 2, nil)
	ref := core.NewEngine(db, core.Options{})
	conformance.Verify(t, res, ref, f.router, conformance.Options{SkipSerialMC: true})

	// Kill shard 0's primary so the suite is guaranteed to cross a
	// failover path, not just a probe flip.
	victim := primaryOf(t, 0, 4, 2)
	f.kill(victim)
	// Immediately after the kill — before the probe window elapses —
	// reads must already survive via connection-failure failover.
	conformance.Verify(t, res, ref, f.router, conformance.Options{SkipSerialMC: true})

	// The prober must declare the worker dead within its window
	// (FailThreshold consecutive failed probes).
	f.waitHealthy(t, victim, false, 3*time.Second)

	// The coordinator's /metrics expose the flip, per worker.
	m, err := f.coord.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("ust_worker_healthy{worker=\"%s\"} 0\n", f.names[victim]); !strings.Contains(m, want) {
		t.Fatalf("metrics missing %q:\n%s", want, m)
	}
	if want := fmt.Sprintf("ust_worker_healthy{worker=\"%s\"} 1\n", f.names[0]); !strings.Contains(m, want) {
		t.Fatalf("metrics missing %q:\n%s", want, m)
	}

	// With the dead worker demoted out of the read set, the table still
	// passes — replicas cover its shards.
	conformance.Verify(t, res, ref, f.router, conformance.Options{SkipSerialMC: true})
}

// TestReplicatedIngestSurvivesKilledWorker pins the write path: after a
// worker dies, generation-fenced writes keep succeeding (the dead
// replica is marked stale, the survivors apply), and subsequent reads
// reflect the ingest byte-identically to a single engine.
func TestReplicatedIngestSurvivesKilledWorker(t *testing.T) {
	db, res := conformance.NewDataset()
	f := newReplicatedFleet(t, db, res, 4, 4, 2, nil)
	f.kill(primaryOf(t, 0, 4, 2))

	// Ingest a consistent sighting for every object through the router:
	// each Import mirrors to that shard's replicas, one of which may be
	// the dead worker.
	for _, o := range db.Objects() {
		if err := f.router.Observe(o.ID, conformance.NextObservation(db, o)); err != nil {
			t.Fatalf("observe object %d after worker death: %v", o.ID, err)
		}
	}
	// The router's shadow db mutated in place; a fresh engine over it is
	// the reference for the post-ingest state.
	ref := core.NewEngine(db, core.Options{})
	req := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(10, 50)), core.WithTimes(core.Interval(4, 9)))
	want, err := ref.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.router.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("post-ingest results diverged:\n got %+v\nwant %+v", got.Results, want.Results)
	}
}

// cutAfter wraps a streaming handler so each /v1/query/stream response
// is cut (connection aborted) after `lines` NDJSON lines — a worker
// dying with results already on the wire. Other endpoints pass through.
type cutAfter struct {
	next  http.Handler
	lines int
	cuts  atomic.Int32
}

func (c *cutAfter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/query/stream" {
		c.next.ServeHTTP(w, r)
		return
	}
	c.next.ServeHTTP(&cutWriter{ResponseWriter: w, remaining: c.lines, cuts: &c.cuts}, r)
}

type cutWriter struct {
	http.ResponseWriter
	remaining int
	cuts      *atomic.Int32
}

func (cw *cutWriter) Write(p []byte) (int, error) {
	for i, b := range p {
		if b != '\n' {
			continue
		}
		cw.remaining--
		if cw.remaining <= 0 {
			// Deliver the line fully, then die: the client has consumed
			// results when the connection drops without a done marker.
			cw.ResponseWriter.Write(p[:i+1])
			cw.Flush()
			cw.cuts.Add(1)
			panic(http.ErrAbortHandler)
		}
	}
	return cw.ResponseWriter.Write(p)
}

func (cw *cutWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestReplicatedMidStreamFailover pins the replay contract: a worker
// that dies after emitting part of its result stream is covered by a
// replica replaying the identical deterministic stream, the
// already-emitted prefix skipped — the merged sequence stays
// byte-identical and complete. Never a silent truncation.
func TestReplicatedMidStreamFailover(t *testing.T) {
	db, res := conformance.NewDataset()
	cut := &cutAfter{lines: 2}
	victim := primaryOf(t, 0, 2, 2) // shard 0's primary is guaranteed to stream
	f := newReplicatedFleet(t, db, res, 2, 2, 2, func(i int, h http.Handler) http.Handler {
		if i == victim {
			cut.next = h
			return cut
		}
		return h
	})
	ref := core.NewEngine(db, core.Options{})
	req := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(0, 63)), core.WithTimes(core.Interval(1, 12)))

	var want []core.Result
	for r, err := range ref.EvaluateSeq(context.Background(), req) {
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	var got []core.Result
	for r, err := range f.router.EvaluateSeq(context.Background(), req) {
		if err != nil {
			t.Fatalf("stream error despite replica replay: %v", err)
		}
		got = append(got, r)
	}
	if cut.cuts.Load() == 0 {
		t.Fatal("fault injection never fired: worker 0 was not asked to stream")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed stream diverged: %d results vs %d\n got %+v\nwant %+v",
			len(got), len(want), got, want)
	}
}

// TestReplicatedEvalErrorDoesNotFailOver pins the negative failover
// rule: a server-REPORTED evaluation error is deterministic and would
// reproduce identically on every replica, so it must surface
// immediately instead of burning failover attempts — unlike a cut
// connection, which replays. Every worker's stream endpoint answers
// with a mid-stream error line; the router must error out after at
// most one stream open per shard.
func TestReplicatedEvalErrorDoesNotFailOver(t *testing.T) {
	db, res := conformance.NewDataset()
	var streams atomic.Int32
	f := newReplicatedFleet(t, db, res, 2, 2, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/query/stream" {
				streams.Add(1)
				w.Header().Set("Content-Type", "application/x-ndjson")
				fmt.Fprintf(w, "{\"error\":\"injected deterministic failure\"}\n")
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	req := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(0, 63)), core.WithTimes(core.Interval(1, 6)))
	var seqErr error
	for _, err := range f.router.EvaluateSeq(context.Background(), req) {
		if err != nil {
			seqErr = err
			break
		}
	}
	if seqErr == nil {
		t.Fatal("injected server error never surfaced — silent truncation")
	}
	if !strings.Contains(seqErr.Error(), "injected deterministic failure") {
		t.Fatalf("surfaced error lost the server's message: %v", seqErr)
	}
	if n := streams.Load(); n > 2 {
		// 2 shards → at most one stream open each; more means the
		// deterministic error was retried on a replica.
		t.Fatalf("deterministic evaluation error was retried: %d stream opens", n)
	}
}
