package dist

import (
	"context"
	"sync"
	"time"

	"ust/client"
)

// HealthView reports worker liveness to the replicated read path: reads
// skip workers the view declares dead and fail over to the next
// replica. A nil view treats every worker as healthy — connection-level
// failover still applies, the probe only removes dead workers from the
// first-choice read set proactively.
type HealthView interface {
	// Healthy reports whether worker i (by index into the fleet's
	// client slice) is currently serving reads.
	Healthy(i int) bool
}

// ProberConfig tunes the coordinator's active health prober.
type ProberConfig struct {
	// Interval is the probe period per worker. 0 means 1s.
	Interval time.Duration
	// Timeout bounds each individual probe. 0 means Interval.
	Timeout time.Duration
	// FailThreshold is the number of CONSECUTIVE failed probes before a
	// worker is marked dead (a single lost packet must not shrink the
	// read set). 0 means 2.
	FailThreshold int
	// LiveThreshold is the number of consecutive successful probes
	// before a dead worker is marked live again (no flapping on a
	// worker that answers one probe mid-crash-loop). 0 means 2.
	LiveThreshold int
}

// Prober actively probes each worker's /readyz on a fixed interval and
// keeps a per-worker healthy bit behind consecutive-failure /
// consecutive-success thresholds — the probe state machine:
//
//	LIVE --FailThreshold consecutive failures--> DEAD
//	DEAD --LiveThreshold consecutive successes--> LIVE
//
// Workers start LIVE (the fleet was reachable when configured; a dead
// worker fails its first probes and transitions within
// FailThreshold·Interval). The prober implements HealthView for the
// replicated read path and Snapshot for metrics exposition.
type Prober struct {
	clients []*client.Client
	names   []string
	cfg     ProberConfig

	mu      sync.Mutex
	healthy []bool
	fails   []int
	oks     []int

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewProber builds a prober over the fleet's workers. names label the
// workers in metrics (typically their base URLs); it must align with
// clients.
func NewProber(clients []*client.Client, names []string, cfg ProberConfig) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.LiveThreshold <= 0 {
		cfg.LiveThreshold = 2
	}
	p := &Prober{
		clients: clients,
		names:   names,
		cfg:     cfg,
		healthy: make([]bool, len(clients)),
		fails:   make([]int, len(clients)),
		oks:     make([]int, len(clients)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := range p.healthy {
		p.healthy[i] = true
	}
	return p
}

// Start launches the probe loop. Idempotent.
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		go func() {
			defer close(p.done)
			t := time.NewTicker(p.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-t.C:
					p.probeOnce()
				}
			}
		}()
	})
}

// Stop ends the probe loop and waits for it to exit. Idempotent; safe
// to call without Start.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.startOnce.Do(func() { close(p.done) }) // never started: nothing to wait for
	<-p.done
}

// probeOnce probes every worker concurrently and applies the threshold
// state machine to each outcome.
func (p *Prober) probeOnce() {
	var wg sync.WaitGroup
	for i, c := range p.clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
			defer cancel()
			p.record(i, c.Ready(ctx) == nil)
		}(i, c)
	}
	wg.Wait()
}

// record applies one probe outcome to worker i's state machine.
func (p *Prober) record(i int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ok {
		p.fails[i] = 0
		p.oks[i]++
		if !p.healthy[i] && p.oks[i] >= p.cfg.LiveThreshold {
			p.healthy[i] = true
		}
	} else {
		p.oks[i] = 0
		p.fails[i]++
		if p.healthy[i] && p.fails[i] >= p.cfg.FailThreshold {
			p.healthy[i] = false
		}
	}
}

// Healthy implements HealthView.
func (p *Prober) Healthy(i int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.healthy) {
		return true
	}
	return p.healthy[i]
}

// WorkerHealth is one worker's probe state, for metrics exposition.
type WorkerHealth struct {
	Worker  string
	Healthy bool
}

// Snapshot returns every worker's current state in fleet order.
func (p *Prober) Snapshot() []WorkerHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerHealth, len(p.healthy))
	for i := range p.healthy {
		name := ""
		if i < len(p.names) {
			name = p.names[i]
		}
		out[i] = WorkerHealth{Worker: name, Healthy: p.healthy[i]}
	}
	return out
}
