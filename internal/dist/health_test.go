package dist

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ust/client"
)

// TestProberStateMachine pins the threshold state machine in
// isolation: workers start live, need FailThreshold CONSECUTIVE
// failures to die, LiveThreshold consecutive successes to revive, and
// a single blip in either direction never flips the state.
func TestProberStateMachine(t *testing.T) {
	p := NewProber(make([]*client.Client, 1), []string{"w0"},
		ProberConfig{FailThreshold: 2, LiveThreshold: 2})
	if !p.Healthy(0) {
		t.Fatal("workers must start live")
	}
	p.record(0, false)
	if !p.Healthy(0) {
		t.Fatal("one failed probe flipped the state (threshold is 2)")
	}
	p.record(0, true) // blip recovers: consecutive counter resets
	p.record(0, false)
	if !p.Healthy(0) {
		t.Fatal("non-consecutive failures flipped the state")
	}
	p.record(0, false)
	if p.Healthy(0) {
		t.Fatal("two consecutive failures must mark the worker dead")
	}
	p.record(0, true)
	if p.Healthy(0) {
		t.Fatal("one successful probe revived a dead worker (threshold is 2)")
	}
	p.record(0, false) // blip: consecutive successes reset
	p.record(0, true)
	if p.Healthy(0) {
		t.Fatal("non-consecutive successes revived the worker")
	}
	p.record(0, true)
	if !p.Healthy(0) {
		t.Fatal("two consecutive successes must revive the worker")
	}
	snap := p.Snapshot()
	if len(snap) != 1 || snap[0].Worker != "w0" || !snap[0].Healthy {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestProberProbesReadyz drives the probe loop against a live /readyz
// that flips 200 → 503 → 200, pinning that the healthy bit follows
// within a few probe intervals in both directions.
func TestProberProbesReadyz(t *testing.T) {
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	p := NewProber([]*client.Client{c}, []string{ts.URL},
		ProberConfig{Interval: 10 * time.Millisecond})
	p.Start()
	defer p.Stop()

	wait := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for p.Healthy(0) != want {
			if time.Now().After(deadline) {
				t.Fatalf("prober never observed %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	time.Sleep(50 * time.Millisecond) // several successful probes
	if !p.Healthy(0) {
		t.Fatal("live worker marked dead")
	}
	down.Store(true)
	wait(false, "the worker going down")
	down.Store(false)
	wait(true, "the worker recovering")
}
