package dist

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"

	"ust/client"
	"ust/internal/core"
	"ust/internal/shard"
)

// ReplicatedBackend serves one shard from k replica workers. Reads go
// to the primary (the shard's top rendezvous owner) and fail over in
// deterministic replica order — probe-dead workers are demoted to
// last-resort, write-failed ("stale") replicas are never read. Writes
// (Import/Evict) mirror the generation fence to every replica; the
// shard keeps accepting writes while at least one replica applies them,
// and a replica that misses a fenced write is marked stale so reads
// can never observe its incomplete slice. Because evaluation is
// deterministic and byte-identical across replicas, a read that fails
// over — even mid-stream — replays on the next replica and skips the
// results already emitted, producing the exact stream one healthy
// worker would have.
type ReplicatedBackend struct {
	replicas []*Backend
	// workers[i] is replicas[i]'s index into the fleet's client slice —
	// the key health probes are recorded under.
	workers []int
	health  HealthView

	mu    sync.Mutex
	stale []bool
}

// NewReplicatedBackend wraps replicas (in deterministic preference
// order: Owners(label, k); index 0 is the primary) with failover reads
// and mirrored writes. workers aligns with replicas; health may be nil
// (connection-level failover only).
func NewReplicatedBackend(replicas []*Backend, workers []int, health HealthView) *ReplicatedBackend {
	return &ReplicatedBackend{
		replicas: replicas,
		workers:  workers,
		health:   health,
		stale:    make([]bool, len(replicas)),
	}
}

// readOrder returns replica indices in the order reads should try
// them: non-stale healthy replicas in preference order, then non-stale
// probe-dead ones as a last resort (the probe can lag a recovery;
// trying a dead-marked replica after every live one failed costs one
// connection attempt and can save the query). Stale replicas never
// appear — their slice is incomplete and reading one would break
// byte-identity.
func (b *ReplicatedBackend) readOrder() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	order := make([]int, 0, len(b.replicas))
	for i := range b.replicas {
		if !b.stale[i] && b.healthyLocked(i) {
			order = append(order, i)
		}
	}
	for i := range b.replicas {
		if !b.stale[i] && !b.healthyLocked(i) {
			order = append(order, i)
		}
	}
	return order
}

func (b *ReplicatedBackend) healthyLocked(i int) bool {
	if b.health == nil {
		return true
	}
	return b.health.Healthy(b.workers[i])
}

func (b *ReplicatedBackend) markStale(i int) {
	b.mu.Lock()
	b.stale[i] = true
	b.mu.Unlock()
}

// failoverable reports whether a read error may be answered by another
// replica. Deterministic evaluation errors (HTTP 500, server-reported
// stream errors) reproduce identically on every replica and must
// surface as-is — retrying them elsewhere would only delay the same
// answer. Backpressure (429) is a signal to the caller, not a worker
// fault. What remains — transport failures (connection refused/reset,
// a stream cut without its done marker) and gateway-class statuses
// (502/503/504, a worker mid-restart or draining) — is exactly the
// "this worker, right now" class failover exists for.
func failoverable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var se *client.ServerStreamError
	if errors.As(err, &se) {
		return false
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status == 502 || ae.Status == 503 || ae.Status == 504
	}
	return true
}

// errNoReplica is returned when every replica was stale — the shard has
// lost all its copies (writes outpaced every replica's availability).
var errNoReplica = errors.New("dist: no live replica holds this shard")

func (b *ReplicatedBackend) Evaluate(ctx context.Context, req core.Request) (*core.Response, error) {
	var lastErr error
	for _, i := range b.readOrder() {
		resp, err := b.replicas[i].Evaluate(ctx, req)
		if err == nil {
			return resp, nil
		}
		if !failoverable(ctx, err) {
			return nil, err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errNoReplica
	}
	return nil, lastErr
}

func (b *ReplicatedBackend) AggregateFactors(ctx context.Context, req core.Request) (*core.FactorSet, error) {
	var lastErr error
	for _, i := range b.readOrder() {
		fs, err := b.replicas[i].AggregateFactors(ctx, req)
		if err == nil {
			return fs, nil
		}
		if !failoverable(ctx, err) {
			return nil, err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errNoReplica
	}
	return nil, lastErr
}

// EvaluateSeq streams with mid-stream failover: if a replica dies after
// emitting part of its stream, the next replica replays the identical
// deterministic stream and the first already-emitted results are
// skipped, so the consumer sees one uninterrupted, byte-identical
// sequence. A server-reported evaluation error surfaces immediately
// (it would reproduce on every replica); only when every replica fails
// mid-transport does the last transport error surface — never a silent
// truncation.
func (b *ReplicatedBackend) EvaluateSeq(ctx context.Context, req core.Request) iter.Seq2[core.Result, error] {
	return func(yield func(core.Result, error) bool) {
		emitted := 0
		var lastErr error
		for _, i := range b.readOrder() {
			skip := emitted
			failed := false
			for r, err := range b.replicas[i].EvaluateSeq(ctx, req) {
				if err != nil {
					if failoverable(ctx, err) {
						lastErr = err
						failed = true
						break
					}
					yield(core.Result{}, err)
					return
				}
				if skip > 0 {
					skip--
					continue
				}
				if !yield(r, nil) {
					return
				}
				emitted++
			}
			if !failed {
				return
			}
		}
		if lastErr == nil {
			lastErr = errNoReplica
		}
		yield(core.Result{}, lastErr)
	}
}

// Import mirrors the batch to every non-stale replica. The call
// succeeds while at least one replica applied it; a replica that
// failed is marked stale and drops out of the read set for good (its
// slice is missing a fenced generation — re-admitting it would need a
// full rebuild, which is rebalance territory, not the write path's).
func (b *ReplicatedBackend) Import(ctx context.Context, gen uint64, objs []*core.Object) error {
	return b.mirror(ctx, func(r *Backend) error { return r.Import(ctx, gen, objs) })
}

// Evict mirrors the eviction to every non-stale replica, under the same
// ≥1-replica success rule as Import.
func (b *ReplicatedBackend) Evict(ctx context.Context, gen uint64, ids []int) error {
	return b.mirror(ctx, func(r *Backend) error { return r.Evict(ctx, gen, ids) })
}

// mirror fans one fenced write to every non-stale replica concurrently.
func (b *ReplicatedBackend) mirror(ctx context.Context, apply func(*Backend) error) error {
	b.mu.Lock()
	targets := make([]int, 0, len(b.replicas))
	for i := range b.replicas {
		if !b.stale[i] {
			targets = append(targets, i)
		}
	}
	b.mu.Unlock()
	if len(targets) == 0 {
		return fmt.Errorf("dist: write rejected: %w", errNoReplica)
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for j, i := range targets {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			errs[j] = apply(b.replicas[i])
		}(j, i)
	}
	wg.Wait()
	applied := 0
	var firstErr error
	for j, i := range targets {
		if errs[j] == nil {
			applied++
			continue
		}
		b.markStale(i)
		if firstErr == nil {
			firstErr = errs[j]
		}
	}
	if applied == 0 {
		return firstErr
	}
	return nil
}

// Close is a no-op like the underlying backends': the HTTP clients are
// shared across shards and owned by the caller.
func (b *ReplicatedBackend) Close() error { return nil }

// ReplicatedFactory places each shard on its top-k workers: shard
// labels hash onto a rendezvous ring over worker indices, and
// Ring.Owners(label, k) is the deterministic replica list — index 0
// the primary, the rest the failover order (exactly the owners a ring
// without the dead workers would pick, so failover and rebalance
// agree). Every replica's dataset is bootstrapped (or adopted) under
// the same "<base>.shard<label>" name. replicas is clamped to the
// worker count; health gates the read path and may be nil.
func ReplicatedFactory(base string, workers []*client.Client, replicas int, health HealthView) (shard.BackendFactory, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("dist: no workers")
	}
	if replicas < 1 {
		return nil, fmt.Errorf("dist: replicas must be ≥ 1, got %d", replicas)
	}
	replicas = min(replicas, len(workers))
	wring, err := shard.NewRing(len(workers))
	if err != nil {
		return nil, err
	}
	return func(label int, shadow *core.Database) (shard.Backend, error) {
		owners := wring.Owners(label, replicas)
		name := fmt.Sprintf("%s.shard%d", base, label)
		reps := make([]*Backend, len(owners))
		for j, w := range owners {
			if err := bootstrap(workers[w], name, shadow); err != nil {
				return nil, err
			}
			reps[j] = NewBackend(workers[w], name, shadow.DefaultChain())
		}
		return NewReplicatedBackend(reps, owners, health), nil
	}, nil
}

// NewReplicatedRouter builds a shard.Router whose every shard lives on
// its top-`replicas` workers with health-gated failover reads — the
// coordinator engine for a fleet that survives worker death.
func NewReplicatedRouter(db *core.Database, shards int, opts core.Options, base string, workers []*client.Client, replicas int, health HealthView) (*shard.Router, error) {
	factory, err := ReplicatedFactory(base, workers, replicas, health)
	if err != nil {
		return nil, err
	}
	return shard.NewWithBackends(db, shards, opts, factory)
}
