package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"ust/internal/core"
	"ust/internal/wire"
)

// SweepClient is the worker side of the networked sweep tier: a
// core.SweepTier over the coordinator's /v1/sweeps endpoints. Wire it
// into a worker's engine via Options.Sweeps and a repeated-query fleet
// computes each distinct backward sweep exactly once — the lease
// holder's miss is the only miss, everyone else adopts the payload.
//
// The tier is an optimization layer by contract: every error here
// (coordinator down, decode failure) surfaces to the kernel, which
// falls back to local compute. It uses its own plain HTTP path rather
// than ust/client because Acquire long-polls — retry-with-backoff
// semantics would fight the lease TTL.
type SweepClient struct {
	base string
	hc   *http.Client
}

// NewSweepClient builds a tier client against the coordinator at
// baseURL. hc may be nil for http.DefaultClient; it must not carry a
// short Timeout, since Acquire long-polls while a peer computes.
func NewSweepClient(baseURL string, hc *http.Client) *SweepClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &SweepClient{base: baseURL, hc: hc}
}

func (s *SweepClient) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("dist: sweep tier returned %s", resp.Status)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Acquire implements core.SweepTier.
func (s *SweepClient) Acquire(ctx context.Context, key core.SweepKey) ([]byte, string, error) {
	var grant wire.SweepGrant
	if err := s.post(ctx, "/v1/sweeps/acquire", wire.SweepAcquire{Key: key}, &grant); err != nil {
		return nil, "", err
	}
	return grant.Payload, grant.Lease, nil
}

// detach unhooks a lease-settling call from the request context: Fill
// and Release must reach the coordinator even when the query that held
// the lease was just cancelled — otherwise every waiter on the key
// stalls for the full lease TTL. Bounded so a dead coordinator cannot
// hang the caller either.
func detach(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
}

// Fill implements core.SweepTier.
func (s *SweepClient) Fill(ctx context.Context, key core.SweepKey, lease string, payload []byte) error {
	ctx, cancel := detach(ctx)
	defer cancel()
	return s.post(ctx, "/v1/sweeps/fill", wire.SweepFill{Key: key, Lease: lease, Payload: payload}, nil)
}

// Release implements core.SweepTier. Best-effort: the lease TTL covers
// a lost release.
func (s *SweepClient) Release(ctx context.Context, key core.SweepKey, lease string) {
	ctx, cancel := detach(ctx)
	defer cancel()
	_ = s.post(ctx, "/v1/sweeps/release", wire.SweepRelease{Key: key, Lease: lease}, nil)
}
