package exp

import (
	"context"
	"time"

	"ust/internal/core"
	"ust/internal/gen"
)

// Kernel-layer experiment: the engine-wide score cache and the
// filter–refine stage, measured on the Table I synthetic workload. The
// paper evaluates single-shot queries; production traffic repeats them
// (dashboards, standing monitors, polling clients), which is exactly
// what the shared sweep kernel accelerates.

func init() {
	register(Experiment{
		ID:          "ext-kernel",
		Description: "Extension: score-cache and filter–refine speedups on repeated/ranked queries",
		Run:         runExtKernel,
	})
}

func extKernelSizes(s Scale) (numObjects []int, numStates, repeats int) {
	switch s {
	case ScaleTiny:
		return []int{50, 100}, 800, 3
	case ScalePaper:
		return []int{1000, 5000, 10000}, 100000, 10
	default:
		return []int{250, 500, 1000}, 10000, 5
	}
}

// runExtKernel sweeps |D| and measures, per database size: a repeated
// PST∃Q with and without the score cache, and top-k retrieval with and
// without filter–refine pruning (plus the fraction of objects that
// needed exact refinement).
func runExtKernel(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	sizes, numStates, repeats := extKernelSizes(cfg.Scale)
	rep := &Report{
		ID:     "ext-kernel",
		Title:  "score cache and filter–refine on repeated/ranked queries",
		XLabel: "|D|",
		Series: []string{"uncached(s)", "cached(s)", "topk(s)", "topk-pruned(s)", "refined(%)"},
		Notes: []string{
			"uncached/cached: identical PST∃Q evaluated `repeats` times per engine",
			"topk: k=20 ranked retrieval, filter–refine off vs on (byte-identical results)",
		},
	}
	w := gen.DefaultWindow()
	for _, numObjects := range sizes {
		p := gen.Defaults(cfg.Seed)
		p.NumObjects, p.NumStates = numObjects, numStates
		ds, err := gen.Generate(p)
		if err != nil {
			return nil, err
		}
		db := core.NewDatabase(ds.Chain)
		for i, o := range ds.Objects {
			if err := db.AddSimple(i, o); err != nil {
				return nil, err
			}
		}
		q := core.NewQuery(w.States(numStates), w.Times())
		base := core.NewRequest(core.PredicateExists, core.WithWindow(q))

		repeat := func(req core.Request) (float64, error) {
			e := core.NewEngine(db, core.Options{})
			return timeIt(func() error {
				for r := 0; r < repeats; r++ {
					if _, err := e.Evaluate(ctx, req); err != nil {
						return err
					}
				}
				return nil
			})
		}
		uncached, err := repeat(base.With(core.WithCache(false)))
		if err != nil {
			return nil, err
		}
		cached, err := repeat(base)
		if err != nil {
			return nil, err
		}

		topkReq := base.With(core.WithTopK(20))
		var refinedPct float64
		ranked := func(req core.Request) (float64, error) {
			e := core.NewEngine(db, core.Options{})
			return timeIt(func() error {
				resp, err := e.Evaluate(ctx, req)
				if err != nil {
					return err
				}
				if resp.Filter.Candidates > 0 {
					refinedPct = 100 * float64(resp.Filter.Refined) / float64(resp.Filter.Candidates)
				}
				return nil
			})
		}
		topk, err := ranked(topkReq.With(core.WithFilterRefine(false)))
		if err != nil {
			return nil, err
		}
		topkPruned, err := ranked(topkReq)
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(numObjects), uncached, cached, topk, topkPruned, refinedPct)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
