package exp

import (
	"fmt"
	"math/rand"

	"ust/internal/core"
	"ust/internal/gen"
	"ust/internal/markov"
	"ust/internal/network"
)

// buildSyntheticDB generates a Table I dataset and loads it into a
// database (one observation per object at t = 0).
func buildSyntheticDB(p gen.Params) (*core.Database, error) {
	ds, err := gen.Generate(p)
	if err != nil {
		return nil, err
	}
	db := core.NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		if err := db.AddSimple(i, o); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// buildNetworkDB generates a road network, derives its randomized
// transition matrix, and scatters objects uniformly over the nodes. The
// graph is returned alongside for query-window construction.
func buildNetworkDB(spec network.RoadNetworkSpec, numObjects, objectSpread int) (*core.Database, *network.Graph, error) {
	g, err := network.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	chain, err := markov.NewChain(g.TransitionMatrix(rng))
	if err != nil {
		return nil, nil, fmt.Errorf("exp: network transition matrix: %w", err)
	}
	db := core.NewDatabase(chain)
	n := g.NumNodes()
	for id := 0; id < numObjects; id++ {
		// Anchor each object at a node; the spread covers the anchor's
		// graph neighborhood (an uncertain GPS fix snaps to nearby
		// intersections).
		anchor := rng.Intn(n)
		states := []int{anchor}
		g.Successors(anchor, func(v int) {
			if len(states) < objectSpread {
				states = append(states, v)
			}
		})
		pdf := markov.UniformOver(n, states)
		if err := db.AddSimple(id, pdf); err != nil {
			return nil, nil, err
		}
	}
	return db, g, nil
}

// networkWindow picks a deterministic query region on a road network: a
// node and its breadth-first neighborhood of the requested size.
func networkWindow(g *network.Graph, size int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	start := rng.Intn(g.NumNodes())
	seen := map[int]bool{start: true}
	frontier := []int{start}
	states := []int{start}
	for len(states) < size && len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			g.Successors(u, func(v int) {
				if !seen[v] && len(states) < size {
					seen[v] = true
					states = append(states, v)
					next = append(next, v)
				}
			})
		}
		frontier = next
	}
	return states
}
