// Package exp is the experiment harness: it regenerates every figure of
// the paper's evaluation (Section VIII) as a table of measurements, at
// configurable scale. cmd/ustbench is its CLI; the root bench_test.go
// wraps each experiment in a testing.B benchmark.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleTiny sizes experiments for unit tests: everything finishes in
	// well under a second.
	ScaleTiny Scale = iota
	// ScaleSmall is the default: minutes for the full suite, preserving
	// every qualitative shape of the paper's figures.
	ScaleSmall
	// ScalePaper uses the paper's dataset sizes (|S| up to 100,000,
	// road networks at full size). Expect long runs.
	ScalePaper
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return ScaleTiny, nil
	case "small", "default", "":
		return ScaleSmall, nil
	case "paper", "full":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("exp: unknown scale %q (tiny|small|paper)", s)
	}
}

func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Config parameterizes a harness run.
type Config struct {
	Scale Scale
	Seed  int64
}

// Row is one x-position of a figure with one measured value per series.
type Row struct {
	X      float64
	Values []float64
}

// Report is the regenerated form of one paper figure: a titled table
// with one column per series (e.g. MC/OB/QB runtimes).
type Report struct {
	ID      string // e.g. "fig8a"
	Title   string
	XLabel  string
	Series  []string // column names
	Rows    []Row
	Notes   []string
	Elapsed time.Duration
}

// AddRow appends a measurement row; values must match Series in length.
func (r *Report) AddRow(x float64, values ...float64) {
	if len(values) != len(r.Series) {
		panic(fmt.Sprintf("exp: row with %d values for %d series", len(values), len(r.Series)))
	}
	r.Rows = append(r.Rows, Row{X: x, Values: values})
}

// Render writes an aligned text table.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s (elapsed %s)\n", r.ID, r.Title, r.Elapsed.Round(time.Millisecond)); err != nil {
		return err
	}
	headers := append([]string{r.XLabel}, r.Series...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(headers))
		cells[ri][0] = formatNum(row.X)
		for ci, v := range row.Values {
			cells[ri][ci+1] = formatNum(v)
		}
		for ci, c := range cells[ri] {
			if len(c) > widths[ci] {
				widths[ci] = len(c)
			}
		}
	}
	line := func(fields []string) string {
		parts := make([]string, len(fields))
		for i, f := range fields {
			parts[i] = fmt.Sprintf("%*s", widths[i], f)
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	for _, row := range cells {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values with a header line.
func (r *Report) CSV(w io.Writer) error {
	headers := append([]string{r.XLabel}, r.Series...)
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		fields := make([]string, 0, len(headers))
		fields = append(fields, formatNum(row.X))
		for _, v := range row.Values {
			fields = append(fields, formatNum(v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 1e-3 || v >= 1e6):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.6g", v)
	}
}

// Experiment is a runnable paper figure. Run honors ctx cancellation:
// a cancelled context aborts the measurement loops within one work
// item and surfaces ctx.Err().
type Experiment struct {
	ID          string
	Description string
	Run         func(context.Context, Config) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[strings.ToLower(id)]
	return e, ok
}

// All returns every registered experiment, ordered by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// timeIt measures the wall-clock seconds taken by fn.
func timeIt(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}
