package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ust/internal/network"
)

func tinyConfig() Config { return Config{Scale: ScaleTiny, Seed: 42} }

func TestParseScale(t *testing.T) {
	cases := []struct {
		in   string
		want Scale
		ok   bool
	}{
		{"tiny", ScaleTiny, true},
		{"small", ScaleSmall, true},
		{"", ScaleSmall, true},
		{"default", ScaleSmall, true},
		{"paper", ScalePaper, true},
		{"FULL", ScalePaper, true},
		{"huge", 0, false},
	}
	for _, c := range cases {
		got, err := ParseScale(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseScale(%q) = (%v, %v), want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseScale(%q) accepted", c.in)
		}
	}
}

func TestScaleString(t *testing.T) {
	if ScaleTiny.String() != "tiny" || ScaleSmall.String() != "small" || ScalePaper.String() != "paper" {
		t.Error("Scale labels wrong")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ext-cluster", "ext-kernel", "ext-parallel",
		"fig10a", "fig10b", "fig11a", "fig11b",
		"fig8a", "fig8b", "fig9a", "fig9b", "fig9c", "fig9d",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("FIG8A"); !ok {
		t.Error("Lookup should be case-insensitive")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup invented an experiment")
	}
}

// TestAllExperimentsRunTiny executes every registered experiment at tiny
// scale: smoke coverage for the whole harness.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(context.Background(), tinyConfig())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q != experiment id %q", rep.ID, e.ID)
			}
			if len(rep.Rows) == 0 {
				t.Error("no measurement rows")
			}
			for _, row := range rep.Rows {
				if len(row.Values) != len(rep.Series) {
					t.Fatalf("row has %d values for %d series", len(row.Values), len(rep.Series))
				}
			}
			var buf bytes.Buffer
			if err := rep.Render(&buf); err != nil {
				t.Fatalf("Render: %v", err)
			}
			if !strings.Contains(buf.String(), rep.ID) {
				t.Error("rendered table missing id")
			}
			buf.Reset()
			if err := rep.CSV(&buf); err != nil {
				t.Fatalf("CSV: %v", err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if len(lines) != len(rep.Rows)+1 {
				t.Errorf("CSV has %d lines, want %d", len(lines), len(rep.Rows)+1)
			}
		})
	}
}

func TestFig9dBiasGrowsWithWindow(t *testing.T) {
	// The deterministic shape assertion for the accuracy experiment: at
	// every window length the independence model is at or above the
	// exact model, and its excess widens from the first to last window.
	rep, err := runFig9d(context.Background(), Config{Scale: ScaleTiny, Seed: 7})
	if err != nil {
		t.Fatalf("fig9d: %v", err)
	}
	first := rep.Rows[0]
	last := rep.Rows[len(rep.Rows)-1]
	for _, row := range rep.Rows {
		exact, indep := row.Values[0], row.Values[1]
		if indep < exact-1e-9 {
			t.Errorf("window %g: independence %g below exact %g", row.X, indep, exact)
		}
	}
	firstBias := first.Values[1] - first.Values[0]
	lastBias := last.Values[1] - last.Values[0]
	if lastBias < firstBias {
		t.Errorf("bias shrank with window: first %g, last %g", firstBias, lastBias)
	}
}

func TestReportAddRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched AddRow did not panic")
		}
	}()
	r := &Report{Series: []string{"a", "b"}}
	r.AddRow(1, 1.0)
}

func TestFormatNum(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"},
		{0, "0"},
		{0.25, "0.25"},
		{1e-7, "1.000e-07"},
		{2.5e7, "25000000"}, // integral values render as integers
		{2.5e7 + 0.5, "2.500e+07"},
	}
	for _, c := range cases {
		if got := formatNum(c.in); got != c.want {
			t.Errorf("formatNum(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNetworkWindowConnected(t *testing.T) {
	_, g, err := buildNetworkDB(
		// Tiny network for speed.
		networkSpecForTest(),
		10, 3,
	)
	if err != nil {
		t.Fatalf("buildNetworkDB: %v", err)
	}
	states := networkWindow(g, 15, 1)
	if len(states) != 15 {
		t.Fatalf("window has %d states, want 15", len(states))
	}
	seen := map[int]bool{}
	for _, s := range states {
		if seen[s] {
			t.Fatal("duplicate state in window")
		}
		seen[s] = true
		if s < 0 || s >= g.NumNodes() {
			t.Fatalf("state %d out of range", s)
		}
	}
}

func networkSpecForTest() network.RoadNetworkSpec {
	return network.RoadNetworkSpec{Name: "test", Nodes: 300, UndirectedEdges: 400, Seed: 3}
}
