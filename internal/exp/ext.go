package exp

import (
	"context"
	"math/rand"
	"time"

	"ust/internal/core"
	"ust/internal/gen"
	"ust/internal/markov"
	"ust/internal/sparse"
)

// Extension experiments beyond the paper's figures: measurements for
// the Section V-C machinery the paper describes but does not evaluate —
// interval-chain cluster pruning over heterogeneous databases — and for
// the parallel object-based evaluation this library adds.

func init() {
	register(Experiment{
		ID:          "ext-cluster",
		Description: "Extension: cluster pruning on heterogeneous chains (Section V-C discussion)",
		Run:         runExtCluster,
	})
	register(Experiment{
		ID:          "ext-parallel",
		Description: "Extension: object-based evaluation under goroutine fan-out",
		Run:         runExtParallel,
	})
}

// runExtCluster sweeps the number of distinct chains per cluster and
// measures: exact per-object evaluation vs cluster-pruned evaluation
// (index prebuilt) and the fraction of objects decided by bounds alone.
func runExtCluster(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	numObjects, numStates := 150, 1200
	if cfg.Scale == ScaleTiny {
		numObjects, numStates = 30, 300
	}
	rep := &Report{
		ID:     "ext-cluster",
		Title:  "cluster pruning vs exact evaluation (heterogeneous chains)",
		XLabel: "perturbation(%)",
		Series: []string{"exact(s)", "pruned(s)", "decided(%)"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := gen.Params{NumObjects: 1, NumStates: numStates, ObjectSpread: 1, StateSpread: 4, MaxStep: 20, Seed: cfg.Seed}
	baseChain, err := gen.GenerateChain(p, rng)
	if err != nil {
		return nil, err
	}
	for _, pct := range []int{1, 5, 10, 20} {
		eps := float64(pct) / 100
		db := core.NewDatabase(baseChain)
		clusters := make([]int, 0, numObjects)
		for id := 0; id < numObjects; id++ {
			personal := perturbChain(baseChain, eps, rng)
			o, oerr := core.NewObject(id, personal, core.Observation{
				Time: 0,
				PDF:  markov.PointDistribution(numStates, rng.Intn(numStates)),
			})
			if oerr != nil {
				return nil, oerr
			}
			if err := db.Add(o); err != nil {
				return nil, err
			}
			clusters = append(clusters, 0)
		}
		e := core.NewEngine(db, core.Options{})
		q := core.NewQuery(core.Interval(numStates/2, numStates/2+20), core.Interval(8, 12))
		const tau = 0.3

		tExact, err := timeIt(func() error {
			_, err := e.Evaluate(ctx, core.NewRequest(core.PredicateExists,
				core.WithWindow(q), core.WithThreshold(tau)))
			return err
		})
		if err != nil {
			return nil, err
		}
		idx, err := e.BuildClusterIndex(clusters)
		if err != nil {
			return nil, err
		}
		var decided int
		tPruned, err := timeIt(func() error {
			_, d, err := e.ExistsThresholdClustered(q, tau, idx)
			decided = d
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(pct), tExact, tPruned, 100*float64(decided)/float64(numObjects))
	}
	rep.Notes = append(rep.Notes,
		"tighter clusters (small perturbation) decide more objects by bounds alone",
		"index build time excluded: it is amortized across queries",
	)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func perturbChain(base *markov.Chain, eps float64, rng *rand.Rand) *markov.Chain {
	n := base.NumStates()
	m := sparse.FromRows(n, n, func(i int) ([]int, []float64) {
		var idx []int
		var vals []float64
		sum := 0.0
		base.Successors(i, func(j int, p float64) {
			v := p * (1 + eps*(2*rng.Float64()-1))
			idx = append(idx, j)
			vals = append(vals, v)
			sum += v
		})
		for k := range vals {
			vals[k] /= sum
		}
		return idx, vals
	})
	return markov.MustChain(m)
}

// runExtParallel measures OB evaluation at increasing worker counts.
func runExtParallel(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	p := gen.Defaults(cfg.Seed)
	switch cfg.Scale {
	case ScaleTiny:
		p.NumObjects, p.NumStates = 40, 2000
	case ScalePaper:
		p.NumObjects, p.NumStates = 10000, 100000
	default:
		p.NumObjects, p.NumStates = 1000, 20000
	}
	db, err := buildSyntheticDB(p)
	if err != nil {
		return nil, err
	}
	e := core.NewEngine(db, core.Options{})
	q := defaultWindowQuery(p.NumStates)
	rep := &Report{
		ID:     "ext-parallel",
		Title:  "object-based PST∃Q under goroutine fan-out",
		XLabel: "workers",
		Series: []string{"OB(s)"},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		w := workers
		t, err := timeIt(func() error {
			_, err := e.Evaluate(ctx, core.NewRequest(core.PredicateExists, core.WithWindow(q),
				core.WithStrategy(core.StrategyObjectBased), core.WithParallelism(w)))
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(workers), t)
	}
	rep.Notes = append(rep.Notes, "forward passes are independent per object; speedup tracks cores")
	rep.Elapsed = time.Since(start)
	return rep, nil
}
