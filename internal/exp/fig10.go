package exp

import (
	"context"
	"time"

	"ust/internal/core"
	"ust/internal/gen"
)

// Figure 10: runtime of the three query predicates (∃, ∀, k-times) as a
// function of the query-window length, under the object-based (a) and
// query-based (b) strategies.

func init() {
	register(Experiment{
		ID:          "fig10a",
		Description: "Fig 10(a): predicate runtimes vs window length, object-based",
		Run: func(ctx context.Context, cfg Config) (*Report, error) {
			return runFig10(ctx, cfg, "fig10a", core.StrategyObjectBased)
		},
	})
	register(Experiment{
		ID:          "fig10b",
		Description: "Fig 10(b): predicate runtimes vs window length, query-based",
		Run: func(ctx context.Context, cfg Config) (*Report, error) {
			return runFig10(ctx, cfg, "fig10b", core.StrategyQueryBased)
		},
	})
}

func fig10WindowLengths(s Scale) []int {
	if s == ScaleTiny {
		return []int{1, 3}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
}

func runFig10(ctx context.Context, cfg Config, id string, strategy core.Strategy) (*Report, error) {
	start := time.Now()
	p := gen.Defaults(cfg.Seed)
	switch cfg.Scale {
	case ScaleTiny:
		p.NumObjects, p.NumStates = 20, 2000
	case ScalePaper:
		// paper defaults
	default:
		p.NumObjects, p.NumStates = 300, 20000
	}
	db, err := buildSyntheticDB(p)
	if err != nil {
		return nil, err
	}
	e := core.NewEngine(db, core.Options{Strategy: strategy})
	rep := &Report{
		ID:     id,
		Title:  "query predicate runtimes vs window length (" + strategy.String() + ")",
		XLabel: "query window timeslots",
		Series: []string{"kT(s)", "∃(s)", "∀(s)"},
	}
	w := gen.DefaultWindow()
	region := w.States(p.NumStates)
	for _, winLen := range fig10WindowLengths(cfg.Scale) {
		q := core.NewQuery(region, core.Interval(w.TimeLo, w.TimeLo+winLen-1))
		tK, err := timeIt(func() error {
			_, err := e.Evaluate(ctx, core.NewRequest(core.PredicateKTimes, core.WithWindow(q)))
			return err
		})
		if err != nil {
			return nil, err
		}
		tExists, err := timeIt(func() error {
			_, err := e.Evaluate(ctx, core.NewRequest(core.PredicateExists, core.WithWindow(q)))
			return err
		})
		if err != nil {
			return nil, err
		}
		tForAll, err := timeIt(func() error {
			_, err := e.Evaluate(ctx, core.NewRequest(core.PredicateForAll, core.WithWindow(q)))
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(winLen), tK, tExists, tForAll)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: k-times costs ≈ (|T□|+1)× the ∃ cost; ∃ and ∀ comparable",
	)
	rep.Elapsed = time.Since(start)
	return rep, nil
}
