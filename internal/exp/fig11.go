package exp

import (
	"context"
	"time"

	"ust/internal/gen"
)

// Figure 11: runtime sensitivity to the two locality parameters of the
// synthetic generator — max_step (a) and state_spread (b). Both OB and
// QB should scale at most linearly.

func init() {
	register(Experiment{
		ID:          "fig11a",
		Description: "Fig 11(a): runtime vs max_step (OB and QB)",
		Run:         runFig11a,
	})
	register(Experiment{
		ID:          "fig11b",
		Description: "Fig 11(b): runtime vs state_spread (OB and QB)",
		Run:         runFig11b,
	})
}

func fig11Params(cfg Config) gen.Params {
	p := gen.Defaults(cfg.Seed)
	switch cfg.Scale {
	case ScaleTiny:
		p.NumObjects, p.NumStates = 20, 2000
	case ScalePaper:
		// paper defaults
	default:
		p.NumObjects, p.NumStates = 300, 20000
	}
	return p
}

func runFig11a(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	rep := &Report{
		ID:     "fig11a",
		Title:  "PST∃Q runtime vs max_step",
		XLabel: "max_step",
		Series: []string{"OB(s)", "QB(s)"},
	}
	steps := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if cfg.Scale == ScaleTiny {
		steps = []int{10, 40}
	}
	for _, ms := range steps {
		p := fig11Params(cfg)
		p.MaxStep = ms
		db, err := buildSyntheticDB(p)
		if err != nil {
			return nil, err
		}
		q := defaultWindowQuery(p.NumStates)
		tOB, tQB, err := timeExistsOBQB(ctx, db, q)
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(ms), tOB, tQB)
	}
	rep.Notes = append(rep.Notes, "expected shape: at most linear growth for both strategies")
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func runFig11b(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	rep := &Report{
		ID:     "fig11b",
		Title:  "PST∃Q runtime vs state_spread",
		XLabel: "state_spread",
		Series: []string{"OB(s)", "QB(s)"},
	}
	spreads := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	if cfg.Scale == ScaleTiny {
		spreads = []int{2, 6}
	}
	for _, sp := range spreads {
		p := fig11Params(cfg)
		p.StateSpread = sp
		db, err := buildSyntheticDB(p)
		if err != nil {
			return nil, err
		}
		q := defaultWindowQuery(p.NumStates)
		tOB, tQB, err := timeExistsOBQB(ctx, db, q)
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(sp), tOB, tQB)
	}
	rep.Notes = append(rep.Notes, "expected shape: at most linear growth for both strategies")
	rep.Elapsed = time.Since(start)
	return rep, nil
}
