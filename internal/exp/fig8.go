package exp

import (
	"context"
	"time"

	"ust/internal/core"
	"ust/internal/gen"
)

// Figure 8: PST∃Q runtime as a function of the state-space size.
// (a) small database including the Monte-Carlo baseline;
// (b) large database, OB vs QB only (the paper drops MC as hopeless).

func init() {
	register(Experiment{
		ID:          "fig8a",
		Description: "Fig 8(a): PST∃Q runtime vs |S|, small DB (MC vs OB vs QB)",
		Run:         runFig8a,
	})
	register(Experiment{
		ID:          "fig8b",
		Description: "Fig 8(b): PST∃Q runtime vs |S|, large DB (OB vs QB)",
		Run:         runFig8b,
	})
}

func fig8aSizes(s Scale) (numObjects int, states []int, mcPaper, mcAccurate int) {
	switch s {
	case ScaleTiny:
		return 20, []int{2000, 6000}, 20, 200
	case ScalePaper:
		return 1000, []int{2000, 6000, 10000, 14000, 18000}, 100, 10000
	default:
		return 200, []int{2000, 6000, 10000, 14000, 18000}, 100, 10000
	}
}

func runFig8a(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	numObjects, states, mcPaper, mcAccurate := fig8aSizes(cfg.Scale)
	rep := &Report{
		ID:     "fig8a",
		Title:  "PST∃Q runtime vs state-space size (small database)",
		XLabel: "states",
		Series: []string{"MC-n100(s)", "MC-acc(s)", "OB(s)", "QB(s)"},
	}
	timeMC := func(db *core.Database, q core.Query, n int) (float64, error) {
		return timeIt(func() error {
			e := core.NewEngine(db, core.Options{})
			_, err := e.Evaluate(ctx, core.NewRequest(core.PredicateExists, core.WithWindow(q),
				core.WithStrategy(core.StrategyMonteCarlo), core.WithMonteCarloBudget(n, cfg.Seed)))
			return err
		})
	}
	for _, nStates := range states {
		p := gen.Defaults(cfg.Seed)
		p.NumObjects = numObjects
		p.NumStates = nStates
		db, err := buildSyntheticDB(p)
		if err != nil {
			return nil, err
		}
		q := defaultWindowQuery(nStates)

		tMCPaper, err := timeMC(db, q, mcPaper)
		if err != nil {
			return nil, err
		}
		tMCAcc, err := timeMC(db, q, mcAccurate)
		if err != nil {
			return nil, err
		}
		tOB, tQB, err := timeExistsOBQB(ctx, db, q)
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(nStates), tMCPaper, tMCAcc, tOB, tQB)
	}
	rep.Notes = append(rep.Notes,
		"MC-n100 uses the paper's 100 samples/object (σ up to 5 points — barely usable answers)",
		"MC-acc uses enough samples for ~0.5-point accuracy; the paper's MC ≫ OB ≫ QB ordering holds there",
		"the paper's Matlab MC was interpreter-bound; compiled Go sampling narrows the n=100 gap (see EXPERIMENTS.md)",
	)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func fig8bSizes(s Scale) (numObjects int, states []int) {
	switch s {
	case ScaleTiny:
		return 50, []int{10000, 30000}
	case ScalePaper:
		return 100000, []int{10000, 30000, 50000, 70000, 90000}
	default:
		return 2000, []int{10000, 30000, 50000, 70000, 90000}
	}
}

func runFig8b(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	numObjects, states := fig8bSizes(cfg.Scale)
	rep := &Report{
		ID:     "fig8b",
		Title:  "PST∃Q runtime vs state-space size (large database)",
		XLabel: "states",
		Series: []string{"OB(s)", "QB(s)"},
	}
	for _, nStates := range states {
		p := gen.Defaults(cfg.Seed)
		p.NumObjects = numObjects
		p.NumStates = nStates
		db, err := buildSyntheticDB(p)
		if err != nil {
			return nil, err
		}
		q := defaultWindowQuery(nStates)
		tOB, tQB, err := timeExistsOBQB(ctx, db, q)
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(nStates), tOB, tQB)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: QB below OB by 1-3 orders of magnitude; both grow slowly with |S|",
	)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// defaultWindowQuery is the paper's default window (states [100,120],
// times [20,25]) clamped to the state space.
func defaultWindowQuery(numStates int) core.Query {
	w := gen.DefaultWindow()
	return core.NewQuery(w.States(numStates), w.Times())
}

// timeExistsOBQB measures the wall time of the OB and QB strategies for
// PST∃Q over the whole database, via per-request strategy overrides.
func timeExistsOBQB(ctx context.Context, db *core.Database, q core.Query) (tOB, tQB float64, err error) {
	e := core.NewEngine(db, core.Options{})
	tOB, err = timeIt(func() error {
		_, err := e.Evaluate(ctx, core.NewRequest(core.PredicateExists,
			core.WithWindow(q), core.WithStrategy(core.StrategyObjectBased)))
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	tQB, err = timeIt(func() error {
		_, err := e.Evaluate(ctx, core.NewRequest(core.PredicateExists,
			core.WithWindow(q), core.WithStrategy(core.StrategyQueryBased)))
		return err
	})
	return tOB, tQB, err
}
