package exp

import (
	"context"
	"time"

	"ust/internal/core"
	"ust/internal/gen"
	"ust/internal/network"
)

// Figure 9: PST∃Q runtime as a function of the query start time, on
// synthetic data (a), the Munich network (b) and the North America
// network (c); plus the accuracy comparison against the temporal-
// independence model (d).

func init() {
	register(Experiment{
		ID:          "fig9a",
		Description: "Fig 9(a): PST∃Q runtime vs query start time (synthetic)",
		Run:         runFig9a,
	})
	register(Experiment{
		ID:          "fig9b",
		Description: "Fig 9(b): PST∃Q runtime vs query start time (Munich-like network)",
		Run: func(ctx context.Context, cfg Config) (*Report, error) {
			return runFig9Network(ctx, cfg, "fig9b", "Munich", network.MunichSpec(cfg.Seed))
		},
	})
	register(Experiment{
		ID:          "fig9c",
		Description: "Fig 9(c): PST∃Q runtime vs query start time (North-America-like network)",
		Run: func(ctx context.Context, cfg Config) (*Report, error) {
			return runFig9Network(ctx, cfg, "fig9c", "North America", network.NorthAmericaSpec(cfg.Seed))
		},
	})
	register(Experiment{
		ID:          "fig9d",
		Description: "Fig 9(d): accuracy — Markov model vs temporal-independence model",
		Run:         runFig9d,
	})
}

func fig9StartTimes(s Scale) []int {
	switch s {
	case ScaleTiny:
		return []int{5, 10}
	default:
		return []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	}
}

func runFig9a(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	p := gen.Defaults(cfg.Seed)
	switch cfg.Scale {
	case ScaleTiny:
		p.NumObjects, p.NumStates = 20, 2000
	case ScalePaper:
		// paper defaults: 10,000 objects over 100,000 states
	default:
		p.NumObjects, p.NumStates = 500, 20000
	}
	db, err := buildSyntheticDB(p)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig9a",
		Title:  "PST∃Q runtime vs query start time (synthetic)",
		XLabel: "query starttime",
		Series: []string{"OB(s)", "QB(s)"},
	}
	w := gen.DefaultWindow()
	for _, h := range fig9StartTimes(cfg.Scale) {
		q := core.NewQuery(w.States(p.NumStates), core.Interval(h, h+5))
		tOB, tQB, err := timeExistsOBQB(ctx, db, q)
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(h), tOB, tQB)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: OB grows much faster with the start time than QB (vectors densify)",
	)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func runFig9Network(ctx context.Context, cfg Config, id, name string, spec network.RoadNetworkSpec) (*Report, error) {
	start := time.Now()
	numObjects := 500
	switch cfg.Scale {
	case ScaleTiny:
		spec = spec.Scaled(400)
		numObjects = 20
	case ScalePaper:
		numObjects = 10000
	default:
		spec = spec.Scaled(10)
	}
	db, g, err := buildNetworkDB(spec, numObjects, 3)
	if err != nil {
		return nil, err
	}
	region := networkWindow(g, 21, cfg.Seed)
	rep := &Report{
		ID:     id,
		Title:  "PST∃Q runtime vs query start time (" + name + " road network)",
		XLabel: "query starttime",
		Series: []string{"OB(s)", "QB(s)"},
	}
	for _, h := range fig9StartTimes(cfg.Scale) {
		q := core.NewQuery(region, core.Interval(h, h+5))
		tOB, tQB, err := timeExistsOBQB(ctx, db, q)
		if err != nil {
			return nil, err
		}
		rep.AddRow(float64(h), tOB, tQB)
	}
	rep.Notes = append(rep.Notes,
		"network is a synthetic stand-in matched on |V|, |E| and locality (see DESIGN.md)",
	)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func runFig9d(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	p := gen.Defaults(cfg.Seed)
	switch cfg.Scale {
	case ScaleTiny:
		p.NumObjects, p.NumStates = 50, 2000
	case ScalePaper:
		p.NumObjects, p.NumStates = 10000, 100000
	default:
		p.NumObjects, p.NumStates = 1000, 10000
	}
	db, err := buildSyntheticDB(p)
	if err != nil {
		return nil, err
	}
	e := core.NewEngine(db, core.Options{})
	rep := &Report{
		ID:     "fig9d",
		Title:  "average P∃ with vs without temporal correlation",
		XLabel: "query window timeslots",
		Series: []string{"with correlation", "without correlation"},
	}
	w := gen.DefaultWindow()
	region := w.States(p.NumStates)
	for winLen := 1; winLen <= 10; winLen++ {
		q := core.NewQuery(region, core.Interval(w.TimeLo, w.TimeLo+winLen-1))
		var sumExact, sumIndep float64
		var nonZero int
		for _, o := range db.Objects() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			exact, err := e.ExistsOB(o, q)
			if err != nil {
				return nil, err
			}
			indep, err := e.ExistsIndependent(o, q)
			if err != nil {
				return nil, err
			}
			if exact > 0 || indep > 0 {
				nonZero++
				sumExact += exact
				sumIndep += indep
			}
		}
		if nonZero == 0 {
			rep.AddRow(float64(winLen), 0, 0)
			continue
		}
		rep.AddRow(float64(winLen), sumExact/float64(nonZero), sumIndep/float64(nonZero))
	}
	rep.Notes = append(rep.Notes,
		"expected shape: the independence model overestimates and the bias grows with the window",
	)
	rep.Elapsed = time.Since(start)
	return rep, nil
}
