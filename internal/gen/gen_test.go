package gen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallParams(seed int64) Params {
	return Params{
		NumObjects:   50,
		NumStates:    500,
		ObjectSpread: 5,
		StateSpread:  5,
		MaxStep:      40,
		Seed:         seed,
	}
}

func TestTableIDefaults(t *testing.T) {
	// The generator must honour every row of Table I at the defaults.
	p := Defaults(1)
	if p.NumObjects != 10000 {
		t.Errorf("|D| default = %d, want 10,000", p.NumObjects)
	}
	if p.NumStates != 100000 {
		t.Errorf("|S| default = %d, want 100,000", p.NumStates)
	}
	if p.ObjectSpread != 5 {
		t.Errorf("object spread default = %d, want 5", p.ObjectSpread)
	}
	if p.StateSpread != 5 {
		t.Errorf("state spread default = %d, want 5", p.StateSpread)
	}
	if p.MaxStep != 40 {
		t.Errorf("max step default = %d, want 40", p.MaxStep)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"no objects", func(p *Params) { p.NumObjects = 0 }},
		{"one state", func(p *Params) { p.NumStates = 1 }},
		{"zero spread", func(p *Params) { p.ObjectSpread = 0 }},
		{"spread exceeds space", func(p *Params) { p.ObjectSpread = p.NumStates + 1 }},
		{"zero state spread", func(p *Params) { p.StateSpread = 0 }},
		{"zero max step", func(p *Params) { p.MaxStep = 0 }},
		{"spread exceeds window", func(p *Params) { p.StateSpread = 50; p.MaxStep = 10 }},
	}
	for _, c := range cases {
		p := smallParams(1)
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGenerateChainContract(t *testing.T) {
	p := smallParams(3)
	d := MustGenerate(p)
	chain := d.Chain
	if chain.NumStates() != p.NumStates {
		t.Fatalf("chain has %d states, want %d", chain.NumStates(), p.NumStates)
	}
	if err := chain.Matrix().CheckStochastic(1e-9); err != nil {
		t.Fatalf("chain not stochastic: %v", err)
	}
	half := p.MaxStep / 2
	for i := 0; i < p.NumStates; i++ {
		if got := chain.OutDegree(i); got != p.StateSpread {
			t.Fatalf("state %d has %d successors, want %d", i, got, p.StateSpread)
		}
		chain.Successors(i, func(j int, prob float64) {
			if j < i-half || j > i+half {
				t.Fatalf("transition %d->%d violates max_step %d", i, j, p.MaxStep)
			}
			if prob <= 0 {
				t.Fatalf("non-positive transition probability %g", prob)
			}
		})
	}
}

func TestGenerateChainBorderClamping(t *testing.T) {
	// Tiny space: windows at the borders shrink below state_spread.
	p := Params{NumObjects: 1, NumStates: 6, ObjectSpread: 1, StateSpread: 5, MaxStep: 4, Seed: 1}
	d := MustGenerate(p)
	// State 0's window is [0, 2] — only 3 candidates.
	if got := d.Chain.OutDegree(0); got != 3 {
		t.Errorf("border state out-degree = %d, want clamped 3", got)
	}
	if err := d.Chain.Matrix().CheckStochastic(1e-9); err != nil {
		t.Errorf("clamped chain not stochastic: %v", err)
	}
}

func TestGenerateObjectsContract(t *testing.T) {
	p := smallParams(4)
	d := MustGenerate(p)
	if len(d.Objects) != p.NumObjects {
		t.Fatalf("generated %d objects, want %d", len(d.Objects), p.NumObjects)
	}
	for i, o := range d.Objects {
		if err := o.Validate(1e-9); err != nil {
			t.Fatalf("object %d invalid: %v", i, err)
		}
		sup := o.Support()
		if len(sup) != p.ObjectSpread {
			t.Fatalf("object %d spread = %d, want %d", i, len(sup), p.ObjectSpread)
		}
		// Support must be consecutive states (anchored run).
		for k := 1; k < len(sup); k++ {
			if sup[k] != sup[k-1]+1 {
				t.Fatalf("object %d support not consecutive: %v", i, sup)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallParams(9))
	b := MustGenerate(smallParams(9))
	if !a.Chain.Matrix().Equal(b.Chain.Matrix(), 0) {
		t.Error("same seed produced different chains")
	}
	for i := range a.Objects {
		if !a.Objects[i].Vec().Equal(b.Objects[i].Vec(), 0) {
			t.Fatalf("same seed produced different object %d", i)
		}
	}
	c := MustGenerate(smallParams(10))
	if a.Chain.Matrix().Equal(c.Chain.Matrix(), 0) {
		t.Error("different seeds produced identical chains")
	}
}

func TestGenerateChainContractQuick(t *testing.T) {
	f := func(seed int64, spreadRaw, stepRaw uint8) bool {
		spread := 1 + int(spreadRaw)%10
		step := 10 + int(stepRaw)%30
		p := Params{
			NumObjects:   5,
			NumStates:    200,
			ObjectSpread: 3,
			StateSpread:  spread,
			MaxStep:      step,
			Seed:         seed,
		}
		d, err := Generate(p)
		if err != nil {
			return false
		}
		if d.Chain.Matrix().CheckStochastic(1e-9) != nil {
			return false
		}
		half := step / 2
		for i := 0; i < p.NumStates; i++ {
			ok := true
			d.Chain.Successors(i, func(j int, _ float64) {
				if j < i-half || j > i+half {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWindow(t *testing.T) {
	w := DefaultWindow()
	if err := w.Validate(); err != nil {
		t.Fatalf("default window invalid: %v", err)
	}
	states := w.States(100000)
	if len(states) != 21 || states[0] != 100 || states[20] != 120 {
		t.Errorf("States = %d items [%d..%d]", len(states), states[0], states[len(states)-1])
	}
	times := w.Times()
	if len(times) != 6 || times[0] != 20 || times[5] != 25 {
		t.Errorf("Times = %v", times)
	}
	if w.Horizon() != 25 {
		t.Errorf("Horizon = %d", w.Horizon())
	}
	if w.String() != "S=[100,120] T=[20,25]" {
		t.Errorf("String = %q", w.String())
	}
}

func TestWindowClamping(t *testing.T) {
	w := Window{StateLo: 90, StateHi: 200, TimeLo: 0, TimeHi: 2}
	states := w.States(100)
	if len(states) != 10 || states[0] != 90 || states[9] != 99 {
		t.Errorf("clamped States = %v", states)
	}
	w2 := Window{StateLo: 200, StateHi: 300, TimeLo: 0, TimeHi: 0}
	if got := w2.States(100); got != nil {
		t.Errorf("fully out-of-space window returned %v", got)
	}
}

func TestWindowValidate(t *testing.T) {
	bad := []Window{
		{StateLo: -1, StateHi: 5, TimeLo: 0, TimeHi: 1},
		{StateLo: 5, StateHi: 4, TimeLo: 0, TimeHi: 1},
		{StateLo: 0, StateHi: 5, TimeLo: -1, TimeHi: 1},
		{StateLo: 0, StateHi: 5, TimeLo: 2, TimeHi: 1},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("window %v accepted", w)
		}
	}
}

func TestWindowWorkloadDraw(t *testing.T) {
	wl := WindowWorkload{NumStates: 1000, StateExtent: 21, TimeStart: 20, TimeExtent: 6}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		w := wl.Draw(rng)
		if err := w.Validate(); err != nil {
			t.Fatalf("drawn window invalid: %v", err)
		}
		if w.StateHi-w.StateLo+1 != 21 {
			t.Fatalf("state extent = %d", w.StateHi-w.StateLo+1)
		}
		if w.TimeLo != 20 || w.TimeHi != 25 {
			t.Fatalf("time interval = [%d,%d]", w.TimeLo, w.TimeHi)
		}
		if w.StateHi >= 1000 {
			t.Fatalf("window exceeds space: %v", w)
		}
	}
}

func TestWindowWorkloadTinySpace(t *testing.T) {
	wl := WindowWorkload{NumStates: 5, StateExtent: 10, TimeStart: 0, TimeExtent: 1}
	w := wl.Draw(rand.New(rand.NewSource(1)))
	if w.StateLo != 0 {
		t.Errorf("tiny-space window should anchor at 0, got %d", w.StateLo)
	}
}
