// Package gen generates the synthetic datasets and query workloads of
// the paper's evaluation (Section VIII-A, Table I). All generation is
// deterministic for a given seed.
package gen

import (
	"fmt"
	"math/rand"

	"ust/internal/markov"
	"ust/internal/sparse"
)

// Params are the synthetic dataset parameters of Table I.
//
//	parameter     value range      default
//	|D|           1,000-100,000    10,000
//	|S|           2,000-100,000    100,000
//	object spread 5                5
//	state spread  1-20             5
//	max step      10-100           40
type Params struct {
	NumObjects   int // |D|
	NumStates    int // |S|
	ObjectSpread int // states per object's initial pdf
	StateSpread  int // successors per state
	MaxStep      int // locality window: successors within [i-max/2, i+max/2]
	Seed         int64
}

// Defaults returns the paper's default parameter set with the given
// seed. Note the paper's default state space is 100,000; tests and
// benchmarks override NumStates downward where runtime budgets demand.
func Defaults(seed int64) Params {
	return Params{
		NumObjects:   10000,
		NumStates:    100000,
		ObjectSpread: 5,
		StateSpread:  5,
		MaxStep:      40,
		Seed:         seed,
	}
}

// Validate checks the parameters against Table I's ranges, relaxed at
// the low end so that tests can use tiny instances.
func (p Params) Validate() error {
	if p.NumObjects < 1 {
		return fmt.Errorf("gen: NumObjects %d < 1", p.NumObjects)
	}
	if p.NumStates < 2 {
		return fmt.Errorf("gen: NumStates %d < 2", p.NumStates)
	}
	if p.ObjectSpread < 1 || p.ObjectSpread > p.NumStates {
		return fmt.Errorf("gen: ObjectSpread %d outside [1, %d]", p.ObjectSpread, p.NumStates)
	}
	if p.StateSpread < 1 {
		return fmt.Errorf("gen: StateSpread %d < 1", p.StateSpread)
	}
	if p.MaxStep < 1 {
		return fmt.Errorf("gen: MaxStep %d < 1", p.MaxStep)
	}
	// The locality window must be able to host state_spread successors.
	if p.StateSpread > p.MaxStep+1 {
		return fmt.Errorf("gen: StateSpread %d exceeds locality window of %d states", p.StateSpread, p.MaxStep+1)
	}
	return nil
}

// Dataset is a generated synthetic dataset: a shared chain plus the
// initial distributions of |D| objects.
type Dataset struct {
	Params  Params
	Chain   *markov.Chain
	Objects []*markov.Distribution
}

// Generate builds the synthetic dataset per Section VIII-A:
//
//   - Transition matrix: from each state si it is possible to transition
//     into state_spread states, all within
//     [si − max_step/2, si + max_step/2] (clamped at the space borders);
//     weights are random and row-normalized.
//   - Objects: the location of each object at t0 is a pdf over
//     object_spread states around a random anchor.
func Generate(p Params) (*Dataset, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	chain, err := GenerateChain(p, rng)
	if err != nil {
		return nil, err
	}
	objects := GenerateObjects(p, rng)
	return &Dataset{Params: p, Chain: chain, Objects: objects}, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(p Params) *Dataset {
	d, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return d
}

// GenerateChain builds only the transition matrix part of the dataset.
func GenerateChain(p Params, rng *rand.Rand) (*markov.Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	half := p.MaxStep / 2
	scratch := make([]int, 0, p.MaxStep+1)
	m := sparse.FromRows(p.NumStates, p.NumStates, func(i int) ([]int, []float64) {
		lo := i - half
		hi := i + half
		if lo < 0 {
			lo = 0
		}
		if hi > p.NumStates-1 {
			hi = p.NumStates - 1
		}
		window := hi - lo + 1
		k := p.StateSpread
		if k > window {
			k = window
		}
		// Partial Fisher-Yates over the window to pick k distinct states.
		scratch = scratch[:0]
		for s := lo; s <= hi; s++ {
			scratch = append(scratch, s)
		}
		idx := make([]int, k)
		for c := 0; c < k; c++ {
			pick := c + rng.Intn(window-c)
			scratch[c], scratch[pick] = scratch[pick], scratch[c]
			idx[c] = scratch[c]
		}
		vals := make([]float64, k)
		sum := 0.0
		for c := range vals {
			vals[c] = rng.Float64() + 1e-3
			sum += vals[c]
		}
		for c := range vals {
			vals[c] /= sum
		}
		return idx, vals
	})
	return markov.NewChain(m)
}

// GenerateObjects builds the |D| initial distributions: each object gets
// a random anchor state and a random pdf over object_spread consecutive
// states starting at the anchor (clamped to the space).
func GenerateObjects(p Params, rng *rand.Rand) []*markov.Distribution {
	objects := make([]*markov.Distribution, p.NumObjects)
	for o := range objects {
		anchor := rng.Intn(p.NumStates)
		if anchor > p.NumStates-p.ObjectSpread {
			anchor = p.NumStates - p.ObjectSpread
		}
		states := make([]int, p.ObjectSpread)
		weights := make([]float64, p.ObjectSpread)
		for k := 0; k < p.ObjectSpread; k++ {
			states[k] = anchor + k
			weights[k] = rng.Float64() + 1e-3
		}
		d, err := markov.WeightedOver(p.NumStates, states, weights)
		if err != nil {
			panic(fmt.Sprintf("gen: internal error building object %d: %v", o, err))
		}
		objects[o] = d
	}
	return objects
}
