package gen

import (
	"fmt"
	"math/rand"

	"ust/internal/markov"
)

// Ground-truth trajectory workloads. The synthetic generator of Table I
// produces initial pdfs only; multi-observation scenarios additionally
// need *consistent* observation sequences — pdfs that some true
// trajectory could actually have produced. TrajectoryParams draws a
// hidden true path from the chain, then emits noisy observations of it,
// guaranteeing the observation set is satisfiable under the motion
// model (class B/C worlds exist; Section VI's Equation 1 denominator is
// positive).
type TrajectoryParams struct {
	// Horizon is the last timestamp of the hidden path (path covers
	// t = 0 … Horizon).
	Horizon int
	// ObservationTimes lists when the object is sighted. Must be within
	// [0, Horizon] and include 0.
	ObservationTimes []int
	// Noise spreads each observation over the true state's chain
	// neighborhood: 0 emits point observations; k > 0 includes states
	// reachable within k transitions of the true state, weighted toward
	// the truth.
	Noise int
}

// Validate rejects inconsistent parameters.
func (p TrajectoryParams) Validate() error {
	if p.Horizon < 0 {
		return fmt.Errorf("gen: negative horizon %d", p.Horizon)
	}
	if len(p.ObservationTimes) == 0 {
		return fmt.Errorf("gen: no observation times")
	}
	seen := map[int]bool{}
	hasZero := false
	for _, t := range p.ObservationTimes {
		if t < 0 || t > p.Horizon {
			return fmt.Errorf("gen: observation time %d outside [0, %d]", t, p.Horizon)
		}
		if seen[t] {
			return fmt.Errorf("gen: duplicate observation time %d", t)
		}
		seen[t] = true
		if t == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		return fmt.Errorf("gen: observation times must include 0")
	}
	if p.Noise < 0 {
		return fmt.Errorf("gen: negative noise %d", p.Noise)
	}
	return nil
}

// Sighting is one emitted observation: a pdf over states at a
// timestamp. It mirrors core.Observation without importing the query
// engine (gen sits below core in the layering).
type Sighting struct {
	Time int
	PDF  *markov.Distribution
}

// Trajectory is a hidden true path plus the noisy sightings emitted
// from it.
type Trajectory struct {
	// Path[t] is the true state at time t.
	Path []int
	// Sightings are consistent with Path by construction.
	Sightings []Sighting
}

// GenerateTrajectory draws one hidden path from the chain (uniform
// start) and emits observations per the parameters.
func GenerateTrajectory(chain *markov.Chain, p TrajectoryParams, rng *rand.Rand) (*Trajectory, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := chain.NumStates()
	start := markov.PointDistribution(n, rng.Intn(n))
	path := chain.SamplePath(start.Vec(), p.Horizon, rng)

	tr := &Trajectory{Path: path}
	for _, t := range p.ObservationTimes {
		truth := path[t]
		pdf, err := noisyObservation(chain, truth, p.Noise, rng)
		if err != nil {
			return nil, err
		}
		tr.Sightings = append(tr.Sightings, Sighting{Time: t, PDF: pdf})
	}
	return tr, nil
}

// noisyObservation spreads mass over the states reachable within noise
// transitions of the true state (in either direction of the transition
// graph), keeping half the mass on the truth.
func noisyObservation(chain *markov.Chain, truth, noise int, rng *rand.Rand) (*markov.Distribution, error) {
	n := chain.NumStates()
	if noise == 0 {
		return markov.PointDistribution(n, truth), nil
	}
	// Collect the forward neighborhood of the truth.
	seen := map[int]bool{truth: true}
	frontier := []int{truth}
	for hop := 0; hop < noise; hop++ {
		var next []int
		for _, u := range frontier {
			chain.Successors(u, func(v int, _ float64) {
				if !seen[v] {
					seen[v] = true
					next = append(next, v)
				}
			})
		}
		frontier = next
	}
	states := make([]int, 0, len(seen))
	weights := make([]float64, 0, len(seen))
	for s := range seen {
		states = append(states, s)
		w := 0.5 * (0.5 + rng.Float64()) / float64(len(seen))
		if s == truth {
			w = 0.5
		}
		weights = append(weights, w)
	}
	return markov.WeightedOver(n, states, weights)
}

// GenerateTrajectories draws numObjects independent hidden paths and
// sighting sequences over the chain, deterministically for a seed.
func GenerateTrajectories(chain *markov.Chain, numObjects int, p TrajectoryParams, seed int64) ([]*Trajectory, error) {
	if numObjects < 1 {
		return nil, fmt.Errorf("gen: need at least one object, got %d", numObjects)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Trajectory, numObjects)
	for id := 0; id < numObjects; id++ {
		tr, err := GenerateTrajectory(chain, p, rng)
		if err != nil {
			return nil, err
		}
		out[id] = tr
	}
	return out, nil
}
