package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/markov"
)

func trajectoryChain(t testing.TB) *markov.Chain {
	t.Helper()
	p := Params{NumObjects: 1, NumStates: 120, ObjectSpread: 1, StateSpread: 4, MaxStep: 12, Seed: 2}
	rng := rand.New(rand.NewSource(2))
	c, err := GenerateChain(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTrajectoryParamsValidate(t *testing.T) {
	good := TrajectoryParams{Horizon: 10, ObservationTimes: []int{0, 5, 10}, Noise: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []TrajectoryParams{
		{Horizon: -1, ObservationTimes: []int{0}},
		{Horizon: 5, ObservationTimes: nil},
		{Horizon: 5, ObservationTimes: []int{0, 7}},
		{Horizon: 5, ObservationTimes: []int{0, 0}},
		{Horizon: 5, ObservationTimes: []int{2}},
		{Horizon: 5, ObservationTimes: []int{0}, Noise: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestGenerateTrajectoryPathValid(t *testing.T) {
	chain := trajectoryChain(t)
	rng := rand.New(rand.NewSource(7))
	p := TrajectoryParams{Horizon: 15, ObservationTimes: []int{0, 8, 15}, Noise: 1}
	tr, err := GenerateTrajectory(chain, p, rng)
	if err != nil {
		t.Fatalf("GenerateTrajectory: %v", err)
	}
	if len(tr.Path) != 16 {
		t.Fatalf("path length %d, want 16", len(tr.Path))
	}
	for k := 0; k+1 < len(tr.Path); k++ {
		if chain.TransitionProb(tr.Path[k], tr.Path[k+1]) == 0 {
			t.Fatalf("impossible step %d->%d at t=%d", tr.Path[k], tr.Path[k+1], k)
		}
	}
	if len(tr.Sightings) != 3 {
		t.Fatalf("%d sightings, want 3", len(tr.Sightings))
	}
	// Every sighting must put positive mass on the true state.
	for _, ob := range tr.Sightings {
		if ob.PDF.P(tr.Path[ob.Time]) <= 0 {
			t.Errorf("sighting at t=%d excludes the truth", ob.Time)
		}
		if err := ob.PDF.Validate(1e-9); err != nil {
			t.Errorf("sighting pdf invalid: %v", err)
		}
	}
}

func TestGenerateTrajectoryPointObservations(t *testing.T) {
	chain := trajectoryChain(t)
	rng := rand.New(rand.NewSource(3))
	p := TrajectoryParams{Horizon: 6, ObservationTimes: []int{0, 6}, Noise: 0}
	tr, err := GenerateTrajectory(chain, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, ob := range tr.Sightings {
		if ob.PDF.P(tr.Path[ob.Time]) != 1 {
			t.Errorf("noise=0 sighting at t=%d is not a point mass on the truth", ob.Time)
		}
	}
}

func TestSightingsIncludeTruthQuick(t *testing.T) {
	chain := trajectoryChain(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := TrajectoryParams{Horizon: 10, ObservationTimes: []int{0, 5, 10}, Noise: 1 + int(seed%2&1)}
		tr, err := GenerateTrajectory(chain, p, rng)
		if err != nil {
			return false
		}
		for _, ob := range tr.Sightings {
			if ob.PDF.P(tr.Path[ob.Time]) <= 0 {
				return false
			}
			// With noise ≥ 1, the truth keeps at least half the mass.
			if ob.PDF.P(tr.Path[ob.Time]) < 0.25 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGenerateTrajectories(t *testing.T) {
	chain := trajectoryChain(t)
	p := TrajectoryParams{Horizon: 8, ObservationTimes: []int{0, 8}, Noise: 1}
	trs, err := GenerateTrajectories(chain, 25, p, 11)
	if err != nil {
		t.Fatalf("GenerateTrajectories: %v", err)
	}
	if len(trs) != 25 {
		t.Fatalf("%d trajectories", len(trs))
	}
	// Determinism.
	trs2, err := GenerateTrajectories(chain, 25, p, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trs {
		for k := range trs[i].Path {
			if trs[i].Path[k] != trs2[i].Path[k] {
				t.Fatalf("trajectory %d differs at t=%d", i, k)
			}
		}
	}
	if _, err := GenerateTrajectories(chain, 0, p, 1); err == nil {
		t.Error("zero objects accepted")
	}
}
