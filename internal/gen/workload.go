package gen

import (
	"fmt"
	"math/rand"
)

// Window is a spatio-temporal query window over the synthetic 1-D state
// space: the state interval [StateLo, StateHi] crossed with the time
// interval [TimeLo, TimeHi], matching the paper's default window
// "states [100, 120], time interval [20, 25]".
type Window struct {
	StateLo, StateHi int
	TimeLo, TimeHi   int
}

// DefaultWindow is the query window used throughout the paper's
// experiments.
func DefaultWindow() Window {
	return Window{StateLo: 100, StateHi: 120, TimeLo: 20, TimeHi: 25}
}

// Validate rejects inverted or negative windows.
func (w Window) Validate() error {
	if w.StateLo < 0 || w.StateHi < w.StateLo {
		return fmt.Errorf("gen: invalid state interval [%d, %d]", w.StateLo, w.StateHi)
	}
	if w.TimeLo < 0 || w.TimeHi < w.TimeLo {
		return fmt.Errorf("gen: invalid time interval [%d, %d]", w.TimeLo, w.TimeHi)
	}
	return nil
}

// States expands the spatial side of the window into a state-id slice,
// clamped to a space of n states.
func (w Window) States(n int) []int {
	lo, hi := w.StateLo, w.StateHi
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for s := lo; s <= hi; s++ {
		out = append(out, s)
	}
	return out
}

// Times expands the temporal side of the window into a timestamp slice.
func (w Window) Times() []int {
	out := make([]int, 0, w.TimeHi-w.TimeLo+1)
	for t := w.TimeLo; t <= w.TimeHi; t++ {
		out = append(out, t)
	}
	return out
}

// Horizon returns the last timestamp the window touches.
func (w Window) Horizon() int { return w.TimeHi }

func (w Window) String() string {
	return fmt.Sprintf("S=[%d,%d] T=[%d,%d]", w.StateLo, w.StateHi, w.TimeLo, w.TimeHi)
}

// WindowWorkload draws random query windows with the given spatial and
// temporal extents, for averaging benchmark measurements over query
// placements.
type WindowWorkload struct {
	NumStates   int // size of the state space
	StateExtent int // number of states per window
	TimeStart   int // first timestamp of every window
	TimeExtent  int // number of timestamps per window
}

// Draw produces one random window.
func (wl WindowWorkload) Draw(rng *rand.Rand) Window {
	maxLo := wl.NumStates - wl.StateExtent
	if maxLo < 0 {
		maxLo = 0
	}
	lo := 0
	if maxLo > 0 {
		lo = rng.Intn(maxLo)
	}
	return Window{
		StateLo: lo,
		StateHi: lo + wl.StateExtent - 1,
		TimeLo:  wl.TimeStart,
		TimeHi:  wl.TimeStart + wl.TimeExtent - 1,
	}
}
