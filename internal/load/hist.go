// Package load is the open-loop traffic harness behind cmd/ustload: a
// Poisson-arrival load generator that drives any deployment shape of
// the serving stack (in-process Service, remote ustserve, coordinator
// fleet) with configurable workload mixes, records per-request latency
// into lock-free sharded log-linear histograms, and emits the
// machine-readable BENCH_LOAD.json traffic trajectory tracked per PR.
//
// Open-loop means arrivals never wait for responses: the dispatcher
// fires requests on the Poisson schedule regardless of how many are
// still in flight, so queueing delay under overload is measured rather
// than hidden — the failure mode closed-loop microbenchmarks cannot
// see (coalescing collapse, admission-limiter tail latency, cache
// thrash under mixed traffic).
package load

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucketing: values (latencies in nanoseconds) below 2^subBits
// land in exact unit buckets; above that, each power-of-two octave is
// split into 2^subBits linear sub-buckets, bounding the relative
// quantile error at 2^-subBits (6.25%). 40 octaves cover ~18 minutes.
const (
	subBits    = 4
	subCount   = 1 << subBits
	numOctaves = 40
	numBuckets = subCount * (numOctaves - subBits + 1)
)

// bucketIdx maps a nanosecond value onto its log-linear bucket.
func bucketIdx(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e ≤ v < 2^(e+1), e ≥ subBits
	if e >= numOctaves {
		return numBuckets - 1
	}
	return subCount*(e-subBits+1) + int((v>>(e-subBits))&(subCount-1))
}

// bucketUpper is the exclusive upper bound (ns) of bucket idx — the
// value quantiles report, so a quantile never understates latency.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx) + 1
	}
	e := idx/subCount + subBits - 1
	sub := int64(idx % subCount)
	return (1 << e) + (sub+1)<<(e-subBits)
}

// histShards spreads the hot counters across cache lines; the recorder
// picks a shard from a caller-supplied hint (the request's dispatch
// index), so concurrent completions don't serialize on one line.
const histShards = 8

type histShard struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // total ns
	max    atomic.Int64  // ns
	_      [64]byte      // keep neighbouring shards off this line
}

// Hist is a lock-free sharded log-linear latency histogram. The zero
// value is NOT ready; use NewHist. Record may be called from any number
// of goroutines concurrently; Snapshot may race with Record and returns
// a consistent-enough view (counters are monotone).
type Hist struct {
	shards [histShards]histShard
}

// NewHist builds an empty histogram.
func NewHist() *Hist { return &Hist{} }

// Record adds one observation. hint spreads contention — pass anything
// cheap and varied (the request's dispatch index).
func (h *Hist) Record(hint uint64, d time.Duration) {
	s := &h.shards[hint&(histShards-1)]
	v := int64(d)
	if v < 0 {
		v = 0
	}
	s.counts[bucketIdx(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(uint64(v))
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Summary is a merged snapshot of a Hist.
type Summary struct {
	Count  uint64
	MeanMs float64
	P50Ms  float64
	P90Ms  float64
	P99Ms  float64
	P999Ms float64
	MaxMs  float64
}

// Snapshot merges the shards and computes the summary quantiles.
func (h *Hist) Snapshot() Summary {
	var merged [numBuckets]uint64
	var count, sum uint64
	var maxNs int64
	for i := range h.shards {
		s := &h.shards[i]
		count += s.count.Load()
		sum += s.sum.Load()
		if m := s.max.Load(); m > maxNs {
			maxNs = m
		}
		for b := range s.counts {
			merged[b] += s.counts[b].Load()
		}
	}
	if count == 0 {
		return Summary{}
	}
	q := func(p float64) float64 {
		target := uint64(math.Ceil(p * float64(count)))
		if target < 1 {
			target = 1
		}
		var cum uint64
		for b := range merged {
			cum += merged[b]
			if cum >= target {
				return float64(bucketUpper(b)) / 1e6
			}
		}
		return float64(maxNs) / 1e6
	}
	return Summary{
		Count:  count,
		MeanMs: float64(sum) / float64(count) / 1e6,
		P50Ms:  q(0.50),
		P90Ms:  q(0.90),
		P99Ms:  q(0.99),
		P999Ms: q(0.999),
		MaxMs:  float64(maxNs) / 1e6,
	}
}
