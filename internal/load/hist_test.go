package load

import (
	"math"
	"sync"
	"testing"
	"time"
)

// Every value must land in a bucket whose exclusive upper bound is above
// it — otherwise quantiles could understate latency.
func TestBucketBoundsCoverValues(t *testing.T) {
	values := []int64{0, 1, 15, 16, 17, 100, 1023, 1024, 1025, 1 << 20, 1<<30 + 12345, 1 << 39}
	for _, v := range values {
		idx := bucketIdx(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		if up := bucketUpper(idx); v >= up {
			t.Errorf("value %d not below its bucket upper bound %d (bucket %d)", v, up, idx)
		}
		if idx > 0 {
			// Monotone: the previous bucket's upper bound must not exceed
			// this bucket's.
			if bucketUpper(idx-1) > bucketUpper(idx) {
				t.Errorf("bucket uppers not monotone at %d", idx)
			}
		}
	}
}

func TestBucketIdxMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<22; v += 997 {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone: v=%d idx=%d prev=%d", v, idx, prev)
		}
		prev = idx
	}
}

// Quantiles of a known uniform population must land within the 6.25%
// relative error the log-linear layout promises (plus one bucket).
func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Record(uint64(i), time.Duration(i)*time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	checks := []struct {
		got, want float64 // ms
	}{
		{s.P50Ms, 5.0},
		{s.P90Ms, 9.0},
		{s.P99Ms, 9.9},
		{s.P999Ms, 9.99},
	}
	for _, c := range checks {
		// Upper-bound reporting means got ≥ want; the bucket width bounds
		// the overshoot.
		if c.got < c.want || c.got > c.want*1.10 {
			t.Errorf("quantile = %.4fms, want within [%.4f, %.4f]", c.got, c.want, c.want*1.10)
		}
	}
	if s.MaxMs != 10.0 {
		t.Errorf("max = %gms, want 10", s.MaxMs)
	}
	if math.Abs(s.MeanMs-5.0005) > 0.01 {
		t.Errorf("mean = %gms, want ~5.0005", s.MeanMs)
	}
}

func TestHistConcurrentRecord(t *testing.T) {
	h := NewHist()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(w*per+i), time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

func TestHistEmptySnapshot(t *testing.T) {
	if s := NewHist().Snapshot(); s != (Summary{}) {
		t.Fatalf("empty snapshot = %+v, want zero", s)
	}
}
