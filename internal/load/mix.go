package load

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"ust/internal/core"
	"ust/internal/wire"
)

// The workload classes, each exercising one surface of the serving
// stack. Weights come from the -mix flag ("point=2,scan=1,ingest=0.5").
const (
	ClassPoint     = "point"     // exists at a single timestamp, batch query
	ClassScan      = "scan"      // exists over a window, streamed (NDJSON remotely)
	ClassTopK      = "topk"      // top-k ranked exists
	ClassThreshold = "threshold" // τ-thresholded exists (filter–refine path)
	ClassExpr      = "expr"      // compound expression (and/not of two atoms)
	ClassCount     = "count"     // count(...) aggregate with an iceberg tail
	ClassSubscribe = "subscribe" // standing query: open, first snapshot, close
	ClassIngest    = "ingest"    // observe: one new observation for an object
)

// Classes lists every workload class in canonical order.
var Classes = []string{
	ClassPoint, ClassScan, ClassTopK, ClassThreshold,
	ClassExpr, ClassCount, ClassSubscribe, ClassIngest,
}

// Mix is a weighted set of workload classes.
type Mix struct {
	classes []string
	weights []float64
	cum     []float64 // cumulative, for sampling
	spec    string    // canonical form, for the report
}

// ParseMix parses "class=weight,class=weight" (weights are positive
// floats; unlisted classes get weight 0). "point" alone means
// "point=1".
func ParseMix(spec string) (Mix, error) {
	known := map[string]bool{}
	for _, c := range Classes {
		known[c] = true
	}
	weights := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, has := strings.Cut(part, "=")
		w := 1.0
		if has {
			var err error
			w, err = strconv.ParseFloat(ws, 64)
			if err != nil || w <= 0 {
				return Mix{}, fmt.Errorf("load: bad mix weight %q", part)
			}
		}
		if !known[name] {
			return Mix{}, fmt.Errorf("load: unknown workload class %q (known: %s)",
				name, strings.Join(Classes, ", "))
		}
		weights[name] += w
	}
	if len(weights) == 0 {
		return Mix{}, fmt.Errorf("load: empty mix %q", spec)
	}
	m := Mix{}
	// Canonical class order keeps the generated op sequence a pure
	// function of (seed, spec) regardless of how the spec was spelled.
	for _, c := range Classes {
		if w, ok := weights[c]; ok {
			m.classes = append(m.classes, c)
			m.weights = append(m.weights, w)
		}
	}
	var total float64
	parts := make([]string, 0, len(m.classes))
	for i, c := range m.classes {
		total += m.weights[i]
		m.cum = append(m.cum, total)
		parts = append(parts, fmt.Sprintf("%s=%g", c, m.weights[i]))
	}
	m.spec = strings.Join(parts, ",")
	return m, nil
}

// String returns the canonical spec form.
func (m Mix) String() string { return m.spec }

// ClassNames returns the classes with nonzero weight, canonical order.
func (m Mix) ClassNames() []string { return append([]string(nil), m.classes...) }

// Shape describes the dataset the generator aims requests at.
type Shape struct {
	// NumStates is the state-space size |S|.
	NumStates int
	// NumObjects is the object count |D|; ingest assumes dense ids
	// 0..NumObjects-1 (what ustgen and GenerateSyntheticDatabase emit).
	NumObjects int
	// Horizon bounds query timestamps (windows stay within [1, Horizon]).
	Horizon int
}

// Op is one generated request: a workload class plus either a query
// request or an ingest payload.
type Op struct {
	Class string
	// Req is set for every class except ingest.
	Req core.Request
	// ObjectID/Obs are set for ingest ops.
	ObjectID int
	Obs      core.Observation
	// Desc is the op's canonical description — the request's canonical
	// wire encoding (or the ingest triple) — written to the request log.
	// A fixed seed reproduces the exact Desc sequence (arrival *timing*
	// is wall-clock and not covered).
	Desc string
}

// Generator draws the deterministic op sequence of a run: one seeded
// RNG, consumed only by Next in dispatch order, so the i-th op is a
// pure function of (seed, mix, shape). Not safe for concurrent use —
// the open-loop dispatcher is the only caller.
type Generator struct {
	mix   Mix
	shape Shape
	rng   *rand.Rand
	seq   int // ops drawn so far (drives ingest object/time rotation)
}

// NewGenerator builds the op source for one run.
func NewGenerator(mix Mix, shape Shape, seed int64) (*Generator, error) {
	if shape.NumStates < 8 || shape.NumObjects < 1 {
		return nil, fmt.Errorf("load: implausible dataset shape %+v", shape)
	}
	if shape.Horizon <= 1 {
		shape.Horizon = 30
	}
	return &Generator{mix: mix, shape: shape, rng: rand.New(rand.NewSource(seed))}, nil
}

// span draws a contiguous state range of width ~frac·|S| (at least 1).
func (g *Generator) span(frac float64) (lo, hi int) {
	n := g.shape.NumStates
	w := int(float64(n) * frac)
	if w < 1 {
		w = 1
	}
	lo = g.rng.Intn(n - w + 1)
	return lo, lo + w - 1
}

func stateRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for s := lo; s <= hi; s++ {
		out = append(out, s)
	}
	return out
}

// window draws a time window of the given width within [1, Horizon].
func (g *Generator) window(width int) (lo, hi int) {
	h := g.shape.Horizon
	if width > h {
		width = h
	}
	lo = 1 + g.rng.Intn(h-width+1)
	return lo, lo + width - 1
}

// Next draws the next op. The class is sampled from the mix; the op's
// parameters are drawn with a fixed number of RNG consumptions per
// class, so the sequence replays identically for a fixed seed.
func (g *Generator) Next() (Op, error) {
	u := g.rng.Float64() * g.mix.cum[len(g.mix.cum)-1]
	class := g.mix.classes[sort.SearchFloat64s(g.mix.cum, u)]
	seq := g.seq
	g.seq++

	if class == ClassIngest {
		// Rotate through objects; each object's observation times strictly
		// increase (Horizon+1, Horizon+2, …) so concurrent observes never
		// collide on a timestamp and queries inside [1,Horizon] stay in
		// the interpolation regime between the t=0 sighting and these.
		id := seq % g.shape.NumObjects
		t := g.shape.Horizon + 1 + seq/g.shape.NumObjects
		state := g.rng.Intn(g.shape.NumStates)
		obs := core.Observation{Time: t, PDF: noisySightingPDF(g.shape.NumStates, state)}
		return Op{
			Class:    class,
			ObjectID: id,
			Obs:      obs,
			Desc:     fmt.Sprintf("ingest object=%d time=%d state=%d", id, t, state),
		}, nil
	}

	var req core.Request
	switch class {
	case ClassPoint:
		lo, hi := g.span(0.01)
		t, _ := g.window(1)
		req = core.NewRequest(core.PredicateExists,
			core.WithStates(stateRange(lo, hi)), core.WithTimes([]int{t}))
	case ClassScan:
		lo, hi := g.span(0.02)
		tlo, thi := g.window(5)
		req = core.NewRequest(core.PredicateExists,
			core.WithStates(stateRange(lo, hi)), core.WithTimeRange(tlo, thi))
	case ClassTopK:
		lo, hi := g.span(0.02)
		tlo, thi := g.window(5)
		req = core.NewRequest(core.PredicateExists,
			core.WithStates(stateRange(lo, hi)), core.WithTimeRange(tlo, thi),
			core.WithTopK(10))
	case ClassThreshold:
		lo, hi := g.span(0.02)
		tlo, thi := g.window(5)
		req = core.NewRequest(core.PredicateExists,
			core.WithStates(stateRange(lo, hi)), core.WithTimeRange(tlo, thi),
			core.WithThreshold(0.2))
	case ClassExpr:
		alo, ahi := g.span(0.02)
		atlo, athi := g.window(4)
		blo, bhi := g.span(0.02)
		btlo, bthi := g.window(3)
		x := core.And(
			core.ExistsAtom(core.WithStates(stateRange(alo, ahi)), core.WithTimeRange(atlo, athi)),
			core.Not(core.ForAllAtom(core.WithStates(stateRange(blo, bhi)), core.WithTimeRange(btlo, bthi))),
		)
		req = core.NewExprRequest(x, core.WithThreshold(0.1))
	case ClassCount:
		lo, hi := g.span(0.02)
		tlo, thi := g.window(5)
		req = core.NewAggRequest(core.PredicateExists,
			core.AggSpec{Kind: core.AggCount, MinCount: 3},
			core.WithStates(stateRange(lo, hi)), core.WithTimeRange(tlo, thi))
	case ClassSubscribe:
		lo, hi := g.span(0.02)
		tlo, thi := g.window(5)
		req = core.NewRequest(core.PredicateExists,
			core.WithStates(stateRange(lo, hi)), core.WithTimeRange(tlo, thi),
			core.WithThreshold(0.2))
	default:
		return Op{}, fmt.Errorf("load: unhandled class %q", class)
	}
	enc, err := wire.EncodeRequest(req)
	if err != nil {
		return Op{}, fmt.Errorf("load: encoding %s request: %w", class, err)
	}
	return Op{Class: class, Req: req, Desc: class + " " + string(enc)}, nil
}
