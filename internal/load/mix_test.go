package load

import (
	"strings"
	"testing"
)

func TestParseMixCanonicalOrder(t *testing.T) {
	// The same weights spelled in any order canonicalize identically —
	// the determinism contract depends on it.
	a, err := ParseMix("ingest=1,point=2,scan=0.5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseMix("scan=0.5, point=2 ,ingest=1")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("canonical forms differ: %q vs %q", a, b)
	}
	if got, want := a.String(), "point=2,scan=0.5,ingest=1"; got != want {
		t.Fatalf("canonical form = %q, want %q", got, want)
	}
}

func TestParseMixBareClassMeansWeightOne(t *testing.T) {
	m, err := ParseMix("point")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.String(); got != "point=1" {
		t.Fatalf("bare class = %q, want point=1", got)
	}
}

func TestParseMixErrors(t *testing.T) {
	for _, spec := range []string{"", "warp=1", "point=-2", "point=zero", "point=0"} {
		if _, err := ParseMix(spec); err == nil {
			t.Errorf("ParseMix(%q) accepted, want error", spec)
		}
	}
}

// The tentpole determinism pin: the same (seed, mix, shape) must replay
// the identical op sequence, Desc for Desc.
func TestGeneratorDeterministicSequence(t *testing.T) {
	mix, err := ParseMix("point=2,scan=1,topk=1,threshold=1,expr=1,count=1,subscribe=0.2,ingest=1")
	if err != nil {
		t.Fatal(err)
	}
	shape := Shape{NumStates: 64, NumObjects: 10, Horizon: 20}
	draw := func(seed int64, n int) []string {
		g, err := NewGenerator(mix, shape, seed)
		if err != nil {
			t.Fatal(err)
		}
		descs := make([]string, n)
		for i := range descs {
			op, err := g.Next()
			if err != nil {
				t.Fatal(err)
			}
			descs[i] = op.Desc
		}
		return descs
	}
	a, b := draw(7, 500), draw(7, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged for same seed:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	c := draw(8, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestGeneratorIngestTimesStrictlyIncreasePerObject(t *testing.T) {
	mix, err := ParseMix("ingest=1")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(mix, Shape{NumStates: 16, NumObjects: 3, Horizon: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]int{}
	for i := 0; i < 30; i++ {
		op, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if op.Class != ClassIngest {
			t.Fatalf("op %d class %q, want ingest", i, op.Class)
		}
		if op.Obs.Time <= 10 {
			t.Fatalf("ingest time %d inside the query horizon", op.Obs.Time)
		}
		if prev, ok := last[op.ObjectID]; ok && op.Obs.Time <= prev {
			t.Fatalf("object %d time %d not after %d", op.ObjectID, op.Obs.Time, prev)
		}
		last[op.ObjectID] = op.Obs.Time
	}
}

func TestGeneratorCoversEveryClass(t *testing.T) {
	mix, err := ParseMix(strings.Join(Classes, "=1,") + "=1")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(mix, Shape{NumStates: 64, NumObjects: 5, Horizon: 15}, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 2000 && len(seen) < len(Classes); i++ {
		op, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		seen[op.Class] = true
		if op.Class != ClassIngest && op.Desc == "" {
			t.Fatalf("empty Desc for class %s", op.Class)
		}
	}
	for _, c := range Classes {
		if !seen[c] {
			t.Errorf("class %s never drawn in 2000 ops", c)
		}
	}
}
