package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ReportVersion is the current BENCH_LOAD.json schema version.
// History:
//
//	1 — latencies measured from dispatch (subject to coordinated
//	    omission when the generator fell behind schedule).
//	2 — service latency measured from dispatch AND intended latency
//	    measured from the scheduled arrival. The service quantiles are
//	    not comparable to v1's (v1 silently excluded queueing delay),
//	    which is why Analyze refuses to diff across versions.
const ReportVersion = 2

// Report is the BENCH_LOAD.json schema: the machine-readable traffic
// trajectory emitted next to BENCH.json so latency under load is
// tracked per PR, not per anecdote.
type Report struct {
	Version int    `json:"version"`
	Target  string `json:"target"` // inproc | http
	Mix     string `json:"mix"`    // canonical mix spec
	Seed    int64  `json:"seed"`
	Shards  int    `json:"shards,omitempty"` // in-process shard count, when known
	Steps   []Step `json:"steps"`
}

// Step is one rate point of a run (a fixed-duration run has one).
type Step struct {
	OfferedRate  float64                 `json:"offered_rate"`
	AchievedRate float64                 `json:"achieved_rate"`
	DurationS    float64                 `json:"duration_s"`
	Dispatched   uint64                  `json:"dispatched"`
	Dropped      uint64                  `json:"dropped"`
	Classes      map[string]ClassSummary `json:"classes"`
}

// ClassSummary is one workload class's counters and latency quantiles
// within a step. Latencies cover successful requests only; failures are
// counted, not timed (an instant 429 would otherwise "improve" p50).
// The plain quantiles are service latency (dispatch → completion); the
// Intended* quantiles are measured from each request's scheduled
// arrival instead, so queueing delay when the generator fell behind
// schedule is included rather than coordinated-omission'd away.
type ClassSummary struct {
	Count      uint64  `json:"count"`
	Overloaded uint64  `json:"overloaded"`
	Timeouts   uint64  `json:"timeouts"`
	Errors     uint64  `json:"errors"`
	Dropped    uint64  `json:"dropped"`
	MeanMs     float64 `json:"mean_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	MaxMs      float64 `json:"max_ms"`

	IntendedMeanMs float64 `json:"intended_mean_ms"`
	IntendedP50Ms  float64 `json:"intended_p50_ms"`
	IntendedP90Ms  float64 `json:"intended_p90_ms"`
	IntendedP99Ms  float64 `json:"intended_p99_ms"`
	IntendedP999Ms float64 `json:"intended_p999_ms"`
	IntendedMaxMs  float64 `json:"intended_max_ms"`
}

// Summarize converts a finished StepResult into its report form.
func Summarize(res *StepResult) Step {
	step := Step{
		OfferedRate:  res.OfferedRate,
		AchievedRate: round3(res.AchievedRate),
		DurationS:    round3(res.Elapsed.Seconds()),
		Dispatched:   res.Dispatched,
		Dropped:      res.Dropped,
		Classes:      map[string]ClassSummary{},
	}
	for name, cr := range res.Classes {
		s := cr.hist.Snapshot()
		si := cr.intended.Snapshot()
		step.Classes[name] = ClassSummary{
			Count:      s.Count,
			Overloaded: cr.Overloaded.Load(),
			Timeouts:   cr.Timeouts.Load(),
			Errors:     cr.Errors.Load(),
			Dropped:    cr.Dropped.Load(),
			MeanMs:     round3(s.MeanMs),
			P50Ms:      round3(s.P50Ms),
			P90Ms:      round3(s.P90Ms),
			P99Ms:      round3(s.P99Ms),
			P999Ms:     round3(s.P999Ms),
			MaxMs:      round3(s.MaxMs),

			IntendedMeanMs: round3(si.MeanMs),
			IntendedP50Ms:  round3(si.P50Ms),
			IntendedP90Ms:  round3(si.P90Ms),
			IntendedP99Ms:  round3(si.P99Ms),
			IntendedP999Ms: round3(si.P999Ms),
			IntendedMaxMs:  round3(si.MaxMs),
		}
	}
	return step
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport loads a BENCH_LOAD.json file.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("load: parsing %s: %w", path, err)
	}
	if r.Version > ReportVersion {
		return nil, fmt.Errorf("load: %s is schema v%d, this build reads ≤ v%d", path, r.Version, ReportVersion)
	}
	if len(r.Steps) == 0 {
		return nil, fmt.Errorf("load: %s has no steps", path)
	}
	return &r, nil
}

// Finding is one regression (or notable change) from Analyze.
type Finding struct {
	// Step/Class locate the regression.
	OfferedRate float64
	Class       string
	// Metric names what regressed (p99_ms, p999_ms, drop/err counts).
	Metric   string
	Old, New float64
}

func (f Finding) String() string {
	if f.Old == 0 {
		return fmt.Sprintf("rate %g %s: %s 0 -> %g", f.OfferedRate, f.Class, f.Metric, f.New)
	}
	return fmt.Sprintf("rate %g %s: %s %.3f -> %.3f (%+.0f%%)",
		f.OfferedRate, f.Class, f.Metric, f.Old, f.New, (f.New/f.Old-1)*100)
}

// Analyze diffs two reports (old baseline, new candidate): for every
// step present in both (matched by offered rate) and every class
// present in both, a p99 (and p999) exceeding baseline·(1+tolerance)
// plus an absolute floor of 0.2ms is a finding — on both the service
// and the intended quantiles — as is a class that newly drops or
// rejects requests. Analyzing a report against itself returns nothing
// — the round-trip sanity the CI smoke pins. Reports of different
// schema versions are an error, never silently diffed: the v1→v2
// change altered what the histograms measure, so cross-version
// quantile comparisons are meaningless.
func Analyze(old, new_ *Report, tolerance float64) ([]Finding, error) {
	if old.Version != new_.Version {
		return nil, fmt.Errorf("load: cannot compare schema v%d against v%d (the latency semantics differ); regenerate the baseline", old.Version, new_.Version)
	}
	if tolerance <= 0 {
		tolerance = 0.25
	}
	const floorMs = 0.2
	oldSteps := map[float64]Step{}
	for _, s := range old.Steps {
		oldSteps[s.OfferedRate] = s
	}
	var findings []Finding
	for _, ns := range new_.Steps {
		base, ok := oldSteps[ns.OfferedRate]
		if !ok {
			continue
		}
		classes := make([]string, 0, len(ns.Classes))
		for c := range ns.Classes {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			nc := ns.Classes[c]
			oc, ok := base.Classes[c]
			if !ok {
				continue
			}
			check := func(metric string, oldV, newV float64) {
				if newV > oldV*(1+tolerance) && newV-oldV > floorMs {
					findings = append(findings, Finding{
						OfferedRate: ns.OfferedRate, Class: c,
						Metric: metric, Old: oldV, New: newV,
					})
				}
			}
			check("p99_ms", oc.P99Ms, nc.P99Ms)
			check("p999_ms", oc.P999Ms, nc.P999Ms)
			check("intended_p99_ms", oc.IntendedP99Ms, nc.IntendedP99Ms)
			check("intended_p999_ms", oc.IntendedP999Ms, nc.IntendedP999Ms)
			if oc.Overloaded+oc.Dropped == 0 && nc.Overloaded+nc.Dropped > 0 {
				findings = append(findings, Finding{
					OfferedRate: ns.OfferedRate, Class: c,
					Metric: "overloaded+dropped",
					Old:    0, New: float64(nc.Overloaded + nc.Dropped),
				})
			}
		}
	}
	return findings, nil
}
