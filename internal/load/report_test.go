package load

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleReport(t *testing.T) *Report {
	t.Helper()
	mix, err := ParseMix("point=1,scan=1")
	if err != nil {
		t.Fatal(err)
	}
	res := &StepResult{
		OfferedRate:  100,
		AchievedRate: 98.5,
		Elapsed:      2 * time.Second,
		Dispatched:   200,
		Classes:      map[string]*ClassResult{AllClass: newClassResult()},
	}
	for _, c := range mix.ClassNames() {
		res.Classes[c] = newClassResult()
	}
	for i := 0; i < 100; i++ {
		d := time.Duration(i+1) * time.Millisecond
		res.Classes[ClassPoint].hist.Record(uint64(i), d)
		res.Classes[ClassPoint].intended.Record(uint64(i), d+2*time.Millisecond)
		res.Classes[ClassPoint].OK.Add(1)
		res.Classes[AllClass].hist.Record(uint64(i), d)
		res.Classes[AllClass].intended.Record(uint64(i), d+2*time.Millisecond)
		res.Classes[AllClass].OK.Add(1)
	}
	return &Report{
		Version: ReportVersion, Target: "inproc", Mix: mix.String(), Seed: 7,
		Steps: []Step{Summarize(res)},
	}
}

func writeReport(t *testing.T, r *Report, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The acceptance-criterion round-trip: a report analyzed against itself
// reports nothing, and survives a write/read cycle intact.
func TestReportRoundTripAndSelfAnalyze(t *testing.T) {
	r := sampleReport(t)
	path := writeReport(t, r, "BENCH_LOAD.json")
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != r.Target || got.Mix != r.Mix || got.Seed != r.Seed || len(got.Steps) != 1 {
		t.Fatalf("round-trip mangled header: %+v", got)
	}
	if got.Steps[0].Classes[ClassPoint].P99Ms != r.Steps[0].Classes[ClassPoint].P99Ms {
		t.Fatal("round-trip mangled quantiles")
	}
	f, err := Analyze(got, got, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 0 {
		t.Fatalf("self-analyze found %d regressions: %v", len(f), f)
	}
}

func TestAnalyzeFlagsP99Regression(t *testing.T) {
	old := sampleReport(t)
	cand := sampleReport(t)
	cs := cand.Steps[0].Classes[ClassPoint]
	cs.P99Ms = old.Steps[0].Classes[ClassPoint].P99Ms * 2
	cand.Steps[0].Classes[ClassPoint] = cs

	findings, err := Analyze(old, cand, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("2x p99 regression not flagged")
	}
	f := findings[0]
	if f.Class != ClassPoint || f.Metric != "p99_ms" {
		t.Fatalf("finding = %+v, want point/p99_ms", f)
	}
	if f.String() == "" {
		t.Fatal("empty finding string")
	}
}

func TestAnalyzeFlagsNewOverload(t *testing.T) {
	old := sampleReport(t)
	cand := sampleReport(t)
	cs := cand.Steps[0].Classes[ClassScan]
	cs.Overloaded = 17
	cand.Steps[0].Classes[ClassScan] = cs

	findings, err := Analyze(old, cand, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Class == ClassScan && f.Metric == "overloaded+dropped" {
			found = true
			if f.New != 17 {
				t.Fatalf("overload finding new = %g, want 17", f.New)
			}
		}
	}
	if !found {
		t.Fatalf("newly-overloaded class not flagged; findings = %v", findings)
	}
}

func TestAnalyzeIgnoresWithinTolerance(t *testing.T) {
	old := sampleReport(t)
	cand := sampleReport(t)
	cs := cand.Steps[0].Classes[ClassPoint]
	cs.P99Ms *= 1.10 // inside the 25% budget
	cand.Steps[0].Classes[ClassPoint] = cs
	if f, err := Analyze(old, cand, 0.25); err != nil || len(f) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v (err %v)", f, err)
	}
}

func TestAnalyzeSkipsUnmatchedSteps(t *testing.T) {
	old := sampleReport(t)
	cand := sampleReport(t)
	cand.Steps[0].OfferedRate = 999 // no matching step in old
	cs := cand.Steps[0].Classes[ClassPoint]
	cs.P99Ms *= 10
	cand.Steps[0].Classes[ClassPoint] = cs
	if f, err := Analyze(old, cand, 0.25); err != nil || len(f) != 0 {
		t.Fatalf("unmatched step produced findings: %v (err %v)", f, err)
	}
}

// TestAnalyzeRejectsVersionMismatch pins the schema fence: the v1→v2
// change altered what the latency histograms measure, so diffing a v1
// baseline against a v2 candidate must be a loud error, never a silent
// (and meaningless) quantile comparison.
func TestAnalyzeRejectsVersionMismatch(t *testing.T) {
	old := sampleReport(t)
	old.Version = 1
	cand := sampleReport(t)
	if _, err := Analyze(old, cand, 0.25); err == nil {
		t.Fatal("v1 baseline silently diffed against v2 candidate")
	}
	if _, err := Analyze(cand, old, 0.25); err == nil {
		t.Fatal("v2 baseline silently diffed against v1 candidate")
	}
}

// TestReadReportRejectsFutureVersion: a report written by a newer build
// may carry semantics this build does not know; refuse it.
func TestReadReportRejectsFutureVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.json")
	body := []byte(`{"version":99,"steps":[{"offered_rate":1,"classes":{}}]}`)
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("future-version report accepted")
	}
}

// TestSummarizeReportsIntendedLatency pins the coordinated-omission
// fix end to end through Summarize: intended quantiles are present,
// and ≥ the service quantiles (scheduled arrival precedes dispatch).
func TestSummarizeReportsIntendedLatency(t *testing.T) {
	r := sampleReport(t)
	cs := r.Steps[0].Classes[ClassPoint]
	if cs.IntendedP99Ms == 0 {
		t.Fatal("intended p99 missing from summary")
	}
	if cs.IntendedP50Ms < cs.P50Ms || cs.IntendedP99Ms < cs.P99Ms {
		t.Fatalf("intended quantiles below service quantiles: %+v", cs)
	}
	if cs.IntendedMaxMs < cs.MaxMs {
		t.Fatalf("intended max %.3f < service max %.3f", cs.IntendedMaxMs, cs.MaxMs)
	}
}

// TestAnalyzeFlagsIntendedRegression: a regression visible only in the
// schedule-corrected quantiles (queueing delay, the thing v1 hid) is
// still a finding.
func TestAnalyzeFlagsIntendedRegression(t *testing.T) {
	old := sampleReport(t)
	cand := sampleReport(t)
	cs := cand.Steps[0].Classes[ClassPoint]
	cs.IntendedP99Ms = old.Steps[0].Classes[ClassPoint].IntendedP99Ms * 3
	cand.Steps[0].Classes[ClassPoint] = cs
	findings, err := Analyze(old, cand, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Class == ClassPoint && f.Metric == "intended_p99_ms" {
			found = true
		}
	}
	if !found {
		t.Fatalf("intended-p99 regression not flagged; findings = %v", findings)
	}
}

func TestReadReportRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"steps":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("empty report accepted")
	}
}
