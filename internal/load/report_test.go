package load

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleReport(t *testing.T) *Report {
	t.Helper()
	mix, err := ParseMix("point=1,scan=1")
	if err != nil {
		t.Fatal(err)
	}
	res := &StepResult{
		OfferedRate:  100,
		AchievedRate: 98.5,
		Elapsed:      2 * time.Second,
		Dispatched:   200,
		Classes:      map[string]*ClassResult{AllClass: {hist: NewHist()}},
	}
	for _, c := range mix.ClassNames() {
		res.Classes[c] = &ClassResult{hist: NewHist()}
	}
	for i := 0; i < 100; i++ {
		d := time.Duration(i+1) * time.Millisecond
		res.Classes[ClassPoint].hist.Record(uint64(i), d)
		res.Classes[ClassPoint].OK.Add(1)
		res.Classes[AllClass].hist.Record(uint64(i), d)
		res.Classes[AllClass].OK.Add(1)
	}
	return &Report{
		Version: 1, Target: "inproc", Mix: mix.String(), Seed: 7,
		Steps: []Step{Summarize(res)},
	}
}

func writeReport(t *testing.T, r *Report, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The acceptance-criterion round-trip: a report analyzed against itself
// reports nothing, and survives a write/read cycle intact.
func TestReportRoundTripAndSelfAnalyze(t *testing.T) {
	r := sampleReport(t)
	path := writeReport(t, r, "BENCH_LOAD.json")
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != r.Target || got.Mix != r.Mix || got.Seed != r.Seed || len(got.Steps) != 1 {
		t.Fatalf("round-trip mangled header: %+v", got)
	}
	if got.Steps[0].Classes[ClassPoint].P99Ms != r.Steps[0].Classes[ClassPoint].P99Ms {
		t.Fatal("round-trip mangled quantiles")
	}
	if f := Analyze(got, got, 0.25); len(f) != 0 {
		t.Fatalf("self-analyze found %d regressions: %v", len(f), f)
	}
}

func TestAnalyzeFlagsP99Regression(t *testing.T) {
	old := sampleReport(t)
	cand := sampleReport(t)
	cs := cand.Steps[0].Classes[ClassPoint]
	cs.P99Ms = old.Steps[0].Classes[ClassPoint].P99Ms * 2
	cand.Steps[0].Classes[ClassPoint] = cs

	findings := Analyze(old, cand, 0.25)
	if len(findings) == 0 {
		t.Fatal("2x p99 regression not flagged")
	}
	f := findings[0]
	if f.Class != ClassPoint || f.Metric != "p99_ms" {
		t.Fatalf("finding = %+v, want point/p99_ms", f)
	}
	if f.String() == "" {
		t.Fatal("empty finding string")
	}
}

func TestAnalyzeFlagsNewOverload(t *testing.T) {
	old := sampleReport(t)
	cand := sampleReport(t)
	cs := cand.Steps[0].Classes[ClassScan]
	cs.Overloaded = 17
	cand.Steps[0].Classes[ClassScan] = cs

	findings := Analyze(old, cand, 0.25)
	found := false
	for _, f := range findings {
		if f.Class == ClassScan && f.Metric == "overloaded+dropped" {
			found = true
			if f.New != 17 {
				t.Fatalf("overload finding new = %g, want 17", f.New)
			}
		}
	}
	if !found {
		t.Fatalf("newly-overloaded class not flagged; findings = %v", findings)
	}
}

func TestAnalyzeIgnoresWithinTolerance(t *testing.T) {
	old := sampleReport(t)
	cand := sampleReport(t)
	cs := cand.Steps[0].Classes[ClassPoint]
	cs.P99Ms *= 1.10 // inside the 25% budget
	cand.Steps[0].Classes[ClassPoint] = cs
	if f := Analyze(old, cand, 0.25); len(f) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", f)
	}
}

func TestAnalyzeSkipsUnmatchedSteps(t *testing.T) {
	old := sampleReport(t)
	cand := sampleReport(t)
	cand.Steps[0].OfferedRate = 999 // no matching step in old
	cs := cand.Steps[0].Classes[ClassPoint]
	cs.P99Ms *= 10
	cand.Steps[0].Classes[ClassPoint] = cs
	if f := Analyze(old, cand, 0.25); len(f) != 0 {
		t.Fatalf("unmatched step produced findings: %v", f)
	}
}

func TestReadReportRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"steps":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("empty report accepted")
	}
}
