package load

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes one open-loop run (one step of a ramp).
type Config struct {
	// Rate is the offered arrival rate in requests/second (Poisson).
	Rate float64
	// Duration is how long arrivals are generated; in-flight requests
	// are drained afterwards (bounded by Timeout).
	Duration time.Duration
	// Seed fixes the generated request *sequence* (not arrival timing):
	// the same seed, mix and shape replay the identical op stream.
	Seed int64
	// Timeout bounds each individual request. 0 means 5s.
	Timeout time.Duration
	// MaxInFlight caps concurrently outstanding requests; arrivals past
	// the cap are counted as dropped instead of launched (the open-loop
	// queue has collapsed — that count IS the finding). 0 means 16384.
	MaxInFlight int
	// RequestLog, when set, receives one line per dispatched op (class +
	// canonical request encoding) in dispatch order — the determinism
	// witness and the input to offline analysis.
	RequestLog io.Writer
}

// StepResult is one completed step: counters and latency summaries per
// workload class plus the "_all" rollup.
type StepResult struct {
	OfferedRate  float64
	AchievedRate float64
	Elapsed      time.Duration
	Dispatched   uint64
	Dropped      uint64
	Classes      map[string]*ClassResult
}

// ClassResult is one workload class's outcome within a step. Each
// success is timed twice: service latency (dispatch → completion, what
// the server did) and intended latency (scheduled arrival →
// completion, what a client arriving on schedule would have seen).
// When the generator falls behind schedule the difference is the
// queueing delay coordinated omission would hide — dispatch-only
// timing silently excludes exactly the moments the system was too slow
// to keep up.
type ClassResult struct {
	hist     *Hist // service latency
	intended *Hist // intended latency (schedule-corrected)

	OK         atomic.Uint64
	Overloaded atomic.Uint64
	Timeouts   atomic.Uint64
	Errors     atomic.Uint64
	Dropped    atomic.Uint64
}

// newClassResult builds a ClassResult with both histograms live.
func newClassResult() *ClassResult {
	return &ClassResult{hist: NewHist(), intended: NewHist()}
}

// AllClass is the rollup pseudo-class present in every step.
const AllClass = "_all"

// Run drives one open-loop step: Poisson arrivals at cfg.Rate against
// target, ops drawn from gen in dispatch order, latencies recorded per
// class. The call returns once every dispatched request completed (each
// is individually bounded by cfg.Timeout, so drain is bounded too).
// Cancelling ctx stops dispatching early; in-flight requests still
// drain.
func Run(ctx context.Context, target Target, gen *Generator, mix Mix, cfg Config) (*StepResult, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("load: rate must be > 0, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: duration must be > 0, got %v", cfg.Duration)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 16384
	}

	res := &StepResult{OfferedRate: cfg.Rate, Classes: map[string]*ClassResult{AllClass: newClassResult()}}
	for _, c := range mix.ClassNames() {
		res.Classes[c] = newClassResult()
	}

	// Arrival timing uses its own RNG so the op sequence (gen's RNG) is
	// independent of scheduling — the determinism contract.
	arrivals := rand.New(rand.NewSource(cfg.Seed ^ 0x5851f42d4c957f2d))

	var (
		wg       sync.WaitGroup
		inFlight atomic.Int64
		index    uint64
	)
	start := time.Now()
	next := start
	deadline := start.Add(cfg.Duration)

	for {
		// Exponential inter-arrival gap: a Poisson process at cfg.Rate.
		gap := time.Duration(arrivals.ExpFloat64() / cfg.Rate * float64(time.Second))
		next = next.Add(gap)
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		// If we're behind schedule (or ctx fired), dispatch immediately /
		// stop: open loop never re-times arrivals to hide queueing.
		if ctx.Err() != nil {
			break
		}
		op, err := gen.Next()
		if err != nil {
			return nil, err
		}
		if cfg.RequestLog != nil {
			fmt.Fprintf(cfg.RequestLog, "%d %s\n", index, op.Desc)
		}
		res.Dispatched++
		cls := res.Classes[op.Class]
		if inFlight.Load() >= int64(cfg.MaxInFlight) {
			res.Dropped++
			cls.Dropped.Add(1)
			index++
			continue
		}
		inFlight.Add(1)
		wg.Add(1)
		// sched is this op's SCHEDULED arrival (next), not its dispatch
		// time: when the generator falls behind, dispatch-relative timing
		// would silently exclude the queueing delay (coordinated
		// omission), so intended latency is measured from sched while
		// service latency is measured from dispatch.
		go func(op Op, hint uint64, sched time.Time) {
			defer wg.Done()
			defer inFlight.Add(-1)
			rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			err := execute(rctx, target, op)
			done := time.Now()
			d, di := done.Sub(t0), done.Sub(sched)
			switch Classify(err) {
			case OutcomeOK:
				cls.OK.Add(1)
				cls.hist.Record(hint, d)
				cls.intended.Record(hint, di)
				all := res.Classes[AllClass]
				all.OK.Add(1)
				all.hist.Record(hint, d)
				all.intended.Record(hint, di)
			case OutcomeOverloaded:
				cls.Overloaded.Add(1)
				res.Classes[AllClass].Overloaded.Add(1)
			case OutcomeTimeout:
				cls.Timeouts.Add(1)
				res.Classes[AllClass].Timeouts.Add(1)
			default:
				cls.Errors.Add(1)
				res.Classes[AllClass].Errors.Add(1)
			}
		}(op, index, next)
		index++
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.AchievedRate = float64(res.Classes[AllClass].OK.Load()) / s
	}
	return res, nil
}

// execute routes one op to the target surface its class exercises.
func execute(ctx context.Context, t Target, op Op) error {
	switch op.Class {
	case ClassScan:
		return t.Stream(ctx, op.Req)
	case ClassSubscribe:
		return t.SubscribeOnce(ctx, op.Req)
	case ClassIngest:
		return t.Observe(ctx, op.ObjectID, op.Obs)
	default:
		return t.Query(ctx, op.Req)
	}
}

// RampRates expands a "start:end:step" ramp into its rate ladder.
func RampRates(start, end, step float64) ([]float64, error) {
	if start <= 0 || end < start || step <= 0 {
		return nil, fmt.Errorf("load: bad ramp %g:%g:%g (want 0 < start ≤ end, step > 0)", start, end, step)
	}
	var rates []float64
	for r := start; r <= end+1e-9; r += step {
		rates = append(rates, math.Round(r*1000)/1000)
	}
	return rates, nil
}
