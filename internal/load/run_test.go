package load

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ust/client"
	"ust/internal/core"
	"ust/internal/gen"
	"ust/internal/service"
)

func loadTestService(t *testing.T, shards int) *service.Service {
	t.Helper()
	ds, err := gen.Generate(gen.Params{
		NumObjects: 12, NumStates: 64,
		ObjectSpread: 3, StateSpread: 3, MaxStep: 10, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		if err := db.AddSimple(i, o); err != nil {
			t.Fatal(err)
		}
	}
	svc := service.New(service.Config{Shards: shards})
	if err := svc.Create("load", db, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// fullMix covers every class except expr: compound expressions require
// single-observation objects, so expr cannot ride in an ingest soak
// (TestRunExprClass covers it on a read-only mix).
func fullMix(t *testing.T) Mix {
	t.Helper()
	m, err := ParseMix("point=2,scan=1,topk=1,threshold=1,count=1,subscribe=0.2,ingest=1")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runStep drives a short open-loop step against the target and asserts
// the basic accounting invariants hold.
func runStep(t *testing.T, target Target, logW *bytes.Buffer) *StepResult {
	t.Helper()
	mix := fullMix(t)
	shape, err := ShapeOf(context.Background(), target, 12)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(mix, shape, 7)
	if err != nil {
		t.Fatal(err)
	}
	var reqLog *bytes.Buffer
	if logW != nil {
		reqLog = logW
	}
	cfg := Config{Rate: 400, Duration: 300 * time.Millisecond, Seed: 7, Timeout: 5 * time.Second}
	if reqLog != nil {
		cfg.RequestLog = reqLog
	}
	res, err := Run(context.Background(), target, g, mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatched == 0 {
		t.Fatal("no requests dispatched in 300ms at 400/s")
	}
	all := res.Classes[AllClass]
	total := all.OK.Load() + all.Overloaded.Load() + all.Timeouts.Load() + all.Errors.Load() + all.Dropped.Load()
	if total != res.Dispatched {
		t.Fatalf("outcome counts %d != dispatched %d", total, res.Dispatched)
	}
	if all.Errors.Load() > 0 {
		t.Fatalf("%d hard errors against a healthy target (target=%s)", all.Errors.Load(), target.Name())
	}
	if all.OK.Load() == 0 {
		t.Fatal("no request succeeded")
	}
	if res.AchievedRate <= 0 {
		t.Fatalf("achieved rate %g, want > 0", res.AchievedRate)
	}
	return res
}

func TestRunInProcess(t *testing.T) {
	svc := loadTestService(t, 1)
	runStep(t, &InProcTarget{Svc: svc, Dataset: "load"}, nil)
}

func TestRunInProcessSharded(t *testing.T) {
	svc := loadTestService(t, 4)
	runStep(t, &InProcTarget{Svc: svc, Dataset: "load"}, nil)
}

func TestRunRemote(t *testing.T) {
	svc := loadTestService(t, 1)
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)
	c := client.NewWithConfig(ts.URL, client.Config{MaxIdleConnsPerHost: 64})
	runStep(t, &RemoteTarget{Client: c, Dataset: "load"}, nil)
}

// The satellite determinism pin at the Run level: two runs with one seed
// dispatch the identical op sequence (the request log diffs clean), even
// though arrival timing and completion order float.
func TestRunRequestLogDeterministic(t *testing.T) {
	var logA, logB bytes.Buffer
	svcA := loadTestService(t, 1)
	runStep(t, &InProcTarget{Svc: svcA, Dataset: "load"}, &logA)
	svcB := loadTestService(t, 1)
	runStep(t, &InProcTarget{Svc: svcB, Dataset: "load"}, &logB)

	a, b := logA.Bytes(), logB.Bytes()
	// Timing jitter can cut the two arrival windows at different op
	// counts; the shared prefix must match exactly.
	n := min(len(a), len(b))
	if n == 0 {
		t.Fatal("empty request logs")
	}
	if !bytes.Equal(a[:n], b[:n]) {
		t.Fatal("request logs diverged within the shared prefix: op sequence is not seed-deterministic")
	}
}

// expr queries work on read-only mixes (compound expressions reject
// multi-observation objects, so no ingest alongside).
func TestRunExprClass(t *testing.T) {
	svc := loadTestService(t, 1)
	target := &InProcTarget{Svc: svc, Dataset: "load"}
	mix, err := ParseMix("expr=1")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(mix, Shape{NumStates: 64, NumObjects: 12, Horizon: 12}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), target, g, mix, Config{
		Rate: 200, Duration: 200 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := res.Classes[AllClass]
	if all.Errors.Load() > 0 {
		t.Fatalf("%d expr errors on a read-only dataset", all.Errors.Load())
	}
	if all.OK.Load() == 0 {
		t.Fatal("no expr query succeeded")
	}
}

func TestRunConfigValidation(t *testing.T) {
	svc := loadTestService(t, 1)
	target := &InProcTarget{Svc: svc, Dataset: "load"}
	mix := fullMix(t)
	g, err := NewGenerator(mix, Shape{NumStates: 64, NumObjects: 12, Horizon: 12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), target, g, mix, Config{Rate: 0, Duration: time.Second}); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := Run(context.Background(), target, g, mix, Config{Rate: 10, Duration: 0}); err == nil {
		t.Error("duration 0 accepted")
	}
}

func TestRampRates(t *testing.T) {
	rates, err := RampRates(100, 300, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 3 || rates[0] != 100 || rates[2] != 300 {
		t.Fatalf("ramp = %v, want [100 200 300]", rates)
	}
	if _, err := RampRates(0, 10, 5); err == nil {
		t.Error("start 0 accepted")
	}
	if _, err := RampRates(10, 5, 5); err == nil {
		t.Error("end < start accepted")
	}
	if _, err := RampRates(10, 20, 0); err == nil {
		t.Error("step 0 accepted")
	}
}

func TestClassifyOutcomes(t *testing.T) {
	cases := []struct {
		err  error
		want Outcome
	}{
		{nil, OutcomeOK},
		{service.ErrOverloaded, OutcomeOverloaded},
		{&client.APIError{Status: 429}, OutcomeOverloaded},
		{&client.APIError{Status: 503}, OutcomeOverloaded},
		{&client.APIError{Status: 500}, OutcomeError},
		{context.DeadlineExceeded, OutcomeTimeout},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
