package load

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"ust/client"
	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/service"
)

// noisySightingPDF is the ingest payload: a strong peak at the sighted
// state over a uniform full-support background. Full support keeps the
// observation consistent with any motion model — a point observation at
// a random state is usually unreachable from the object's trajectory
// and would poison every later query on that object with a
// mutually-impossible-observations error.
func noisySightingPDF(numStates, state int) *markov.Distribution {
	states := make([]int, numStates)
	weights := make([]float64, numStates)
	for i := range states {
		states[i] = i
		weights[i] = 1
	}
	weights[state] = float64(numStates)
	d, err := markov.WeightedOver(numStates, states, weights)
	if err != nil {
		// Unreachable: the weights above are positive and finite.
		panic(err)
	}
	return d
}

// Target is one deployment shape under load: the in-process Service,
// a remote ustserve (or coordinator — same wire contract) via
// ust/client. Every method is safe for concurrent use; errors are
// classified by Classify.
type Target interface {
	// Query answers one batch request (point, topk, threshold, expr,
	// count classes).
	Query(ctx context.Context, req core.Request) error
	// Stream drains one streaming scan.
	Stream(ctx context.Context, req core.Request) error
	// SubscribeOnce opens a standing query, waits for the first
	// (snapshot) update, and closes it — the time-to-consistent-snapshot
	// latency of the subscribe surface.
	SubscribeOnce(ctx context.Context, req core.Request) error
	// Observe ingests one observation.
	Observe(ctx context.Context, objectID int, obs core.Observation) error
	// Name labels the target in BENCH_LOAD.json.
	Name() string
}

// --- in-process -------------------------------------------------------------

// InProcTarget drives a Service in the same process — the deployment
// shape of embedders, and the zero-network baseline the remote shapes
// are compared against.
type InProcTarget struct {
	Svc     *service.Service
	Dataset string
}

func (t *InProcTarget) Name() string { return "inproc" }

func (t *InProcTarget) Query(ctx context.Context, req core.Request) error {
	_, err := t.Svc.Evaluate(ctx, t.Dataset, req)
	return err
}

func (t *InProcTarget) Stream(ctx context.Context, req core.Request) error {
	for _, err := range t.Svc.Stream(ctx, t.Dataset, req) {
		if err != nil {
			return err
		}
	}
	return nil
}

func (t *InProcTarget) SubscribeOnce(ctx context.Context, req core.Request) error {
	sub, err := t.Svc.Subscribe(ctx, t.Dataset, req)
	if err != nil {
		return err
	}
	defer sub.Close()
	select {
	case _, ok := <-sub.Updates():
		if !ok {
			return sub.Err()
		}
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (t *InProcTarget) Observe(ctx context.Context, objectID int, obs core.Observation) error {
	return t.Svc.Observe(t.Dataset, objectID, obs)
}

// --- remote -----------------------------------------------------------------

// RemoteTarget drives a ustserve (or a coordinator fronting a worker
// fleet — the wire contract is identical) through ust/client.
type RemoteTarget struct {
	Client  *client.Client
	Dataset string
}

func (t *RemoteTarget) Name() string { return "http" }

func (t *RemoteTarget) Query(ctx context.Context, req core.Request) error {
	_, err := t.Client.Query(ctx, t.Dataset, req)
	return err
}

func (t *RemoteTarget) Stream(ctx context.Context, req core.Request) error {
	return t.Client.QueryStream(ctx, t.Dataset, req, func(core.Result) error { return nil })
}

func (t *RemoteTarget) SubscribeOnce(ctx context.Context, req core.Request) error {
	sub, err := t.Client.Subscribe(ctx, t.Dataset, req)
	if err != nil {
		return err
	}
	defer sub.Close()
	select {
	case _, ok := <-sub.Updates():
		if !ok {
			return sub.Err()
		}
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (t *RemoteTarget) Observe(ctx context.Context, objectID int, obs core.Observation) error {
	return t.Client.Observe(ctx, t.Dataset, objectID, obs)
}

// ShapeOf derives the generator's dataset shape from a target's dataset
// info (dense ids 0..Objects-1 assumed, which is what ustgen and
// GenerateSyntheticDatabase emit).
func ShapeOf(ctx context.Context, t Target, horizon int) (Shape, error) {
	switch tt := t.(type) {
	case *InProcTarget:
		info, err := tt.Svc.Info(tt.Dataset)
		if err != nil {
			return Shape{}, err
		}
		return Shape{NumStates: info.States, NumObjects: info.Objects, Horizon: horizon}, nil
	case *RemoteTarget:
		info, err := tt.Client.Dataset(ctx, tt.Dataset)
		if err != nil {
			return Shape{}, err
		}
		return Shape{NumStates: info.States, NumObjects: info.Objects, Horizon: horizon}, nil
	default:
		return Shape{}, fmt.Errorf("load: unknown target type %T", t)
	}
}

// Outcome classifies one request's result for the per-class counters.
type Outcome int

const (
	OutcomeOK Outcome = iota
	OutcomeOverloaded
	OutcomeTimeout
	OutcomeError
)

// Classify maps an error onto its outcome bucket: admission rejection
// (in-process ErrOverloaded, remote HTTP 429) is overload; a deadline
// hit is a timeout; everything else is an error.
func Classify(err error) Outcome {
	if err == nil {
		return OutcomeOK
	}
	if errors.Is(err, service.ErrOverloaded) {
		return OutcomeOverloaded
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return OutcomeOverloaded
		}
		return OutcomeError
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return OutcomeTimeout
	}
	return OutcomeError
}
