package markov

import (
	"math/rand"
)

// Walker-alias sampling. Chain.SampleStep walks the row's cumulative
// mass, which is O(out-degree) per draw — perfect for the sparse rows
// of Table I datasets, wasteful when rows are heavy or the sampler is
// hot (large Monte-Carlo budgets). A Sampler precomputes one alias
// table per row and draws successors in O(1).

// Sampler draws chain transitions in O(1) per step using precomputed
// alias tables (Walker 1977, Vose 1991). Construction is O(nnz);
// memory is two numbers per transition. Safe for concurrent use with
// independent rand sources.
type Sampler struct {
	chain *Chain
	rows  []aliasTable
}

type aliasTable struct {
	// prob[i] is the probability of keeping slot i's primary column;
	// alias[i] is the fallback column.
	cols  []int32
	alias []int32
	prob  []float64
}

// NewSampler builds alias tables for every row of the chain.
func NewSampler(c *Chain) *Sampler {
	n := c.NumStates()
	s := &Sampler{chain: c, rows: make([]aliasTable, n)}
	for i := 0; i < n; i++ {
		cols, vals := c.Matrix().RowSlices(i)
		s.rows[i] = buildAlias(cols, vals)
	}
	return s
}

// buildAlias constructs the alias table for one probability row using
// Vose's stable two-worklist construction.
func buildAlias(cols []int, vals []float64) aliasTable {
	k := len(cols)
	t := aliasTable{
		cols:  make([]int32, k),
		alias: make([]int32, k),
		prob:  make([]float64, k),
	}
	if k == 0 {
		return t
	}
	for i, c := range cols {
		t.cols[i] = int32(c)
	}
	// Scale to mean 1.
	scaled := make([]float64, k)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	var small, large []int
	for i, v := range vals {
		scaled[i] = v * float64(k) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = t.cols[l]
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = t.cols[i]
	}
	for _, i := range small {
		// Numerical leftovers: treat as probability one.
		t.prob[i] = 1
		t.alias[i] = t.cols[i]
	}
	return t
}

// SampleStep draws the successor of state i in O(1).
func (s *Sampler) SampleStep(i int, rng *rand.Rand) int {
	t := &s.rows[i]
	k := len(t.cols)
	if k == 0 {
		return i // dangling state self-loops, matching Chain.SampleStep
	}
	slot := rng.Intn(k)
	if rng.Float64() < t.prob[slot] {
		return int(t.cols[slot])
	}
	return int(t.alias[slot])
}

// SamplePath draws a trajectory of steps+1 states starting from a state
// drawn from init.
func (s *Sampler) SamplePath(init *Distribution, steps int, rng *rand.Rand) []int {
	path := make([]int, steps+1)
	path[0] = SampleFrom(init.Vec(), rng)
	for t := 0; t < steps; t++ {
		path[t+1] = s.SampleStep(path[t], rng)
	}
	return path
}
