package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/sparse"
)

func TestSamplerMatchesRowDistribution(t *testing.T) {
	chain := paperChain(t)
	s := NewSampler(chain)
	rng := rand.New(rand.NewSource(8))
	const n = 300000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[s.SampleStep(1, rng)]++
	}
	if got := float64(counts[0]) / n; math.Abs(got-0.6) > 0.01 {
		t.Errorf("alias P(s1|s2) = %g, want 0.6", got)
	}
	if got := float64(counts[2]) / n; math.Abs(got-0.4) > 0.01 {
		t.Errorf("alias P(s3|s2) = %g, want 0.4", got)
	}
	if counts[1] != 0 {
		t.Errorf("alias sampled impossible transition %d times", counts[1])
	}
}

func TestSamplerMatchesLinearSamplerQuick(t *testing.T) {
	// The alias sampler and the linear-scan sampler must draw from the
	// same distribution (chi-square-free check: frequency comparison
	// within generous tolerance).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		chain := randomChain(rng, 4+rng.Intn(8), 4)
		s := NewSampler(chain)
		state := rng.Intn(chain.NumStates())
		const n = 20000
		aliasCounts := make([]int, chain.NumStates())
		linearCounts := make([]int, chain.NumStates())
		rngA := rand.New(rand.NewSource(seed + 1))
		rngB := rand.New(rand.NewSource(seed + 2))
		for i := 0; i < n; i++ {
			aliasCounts[s.SampleStep(state, rngA)]++
			linearCounts[chain.SampleStep(state, rngB)]++
		}
		for j := 0; j < chain.NumStates(); j++ {
			pa := float64(aliasCounts[j]) / n
			pl := float64(linearCounts[j]) / n
			if math.Abs(pa-pl) > 0.03 {
				return false
			}
			// Both must respect the support.
			if chain.TransitionProb(state, j) == 0 && (aliasCounts[j] > 0 || linearCounts[j] > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSamplerPath(t *testing.T) {
	chain := paperChain(t)
	s := NewSampler(chain)
	rng := rand.New(rand.NewSource(3))
	init := PointDistribution(3, 1)
	for trial := 0; trial < 100; trial++ {
		path := s.SamplePath(init, 6, rng)
		if len(path) != 7 || path[0] != 1 {
			t.Fatalf("bad path %v", path)
		}
		for k := 0; k < 6; k++ {
			if chain.TransitionProb(path[k], path[k+1]) == 0 {
				t.Fatalf("impossible transition %d->%d", path[k], path[k+1])
			}
		}
	}
}

func TestSamplerDanglingState(t *testing.T) {
	// A hand-built chain with an empty row (bypassing validation).
	c := &Chain{m: sparse.FromDense([][]float64{{0, 1}, {0, 0}})}
	s := NewSampler(c)
	if got := s.SampleStep(1, rand.New(rand.NewSource(1))); got != 1 {
		t.Errorf("dangling state stepped to %d, want self-loop", got)
	}
}

func TestStationaryTwoState(t *testing.T) {
	// Closed form: for M = [[1-a, a], [b, 1-b]], π = (b, a)/(a+b).
	a, b := 0.3, 0.1
	chain, err := FromDense([][]float64{
		{1 - a, a},
		{b, 1 - b},
	})
	if err != nil {
		t.Fatal(err)
	}
	pi, iters, err := Stationary(chain, 10000, 1e-12)
	if err != nil {
		t.Fatalf("Stationary: %v", err)
	}
	if iters <= 0 {
		t.Error("no iterations reported")
	}
	wantP0 := b / (a + b)
	if math.Abs(pi.P(0)-wantP0) > 1e-9 {
		t.Errorf("π(0) = %g, want %g", pi.P(0), wantP0)
	}
	// Fixed point: π·M == π.
	evolved := chain.Evolve(pi.Vec(), 1)
	if !evolved.Equal(pi.Vec(), 1e-9) {
		t.Error("stationary distribution is not a fixed point")
	}
}

func TestStationaryPeriodicFails(t *testing.T) {
	// A 2-cycle is periodic: power iteration from uniform converges
	// (uniform IS stationary), so use a deliberately asymmetric start by
	// checking MixingTime instead, which starts from a point mass and
	// must fail to mix.
	chain, err := FromDense([][]float64{
		{0, 1},
		{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	pi, _, err := Stationary(chain, 1000, 1e-12)
	if err != nil {
		t.Fatalf("uniform start should already be stationary: %v", err)
	}
	if _, err := MixingTime(chain, 0, pi, 100, 1e-3); err == nil {
		t.Error("periodic chain reported as mixing")
	}
}

func TestMixingTime(t *testing.T) {
	chain, err := FromDense([][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	pi, _, err := Stationary(chain, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := MixingTime(chain, 0, pi, 100, 1e-6)
	if err != nil {
		t.Fatalf("MixingTime: %v", err)
	}
	if steps != 1 {
		t.Errorf("doubly-uniform chain mixes in %d steps, want 1", steps)
	}
}
