// Package markov implements the stochastic-process model of Section IV of
// the paper: homogeneous first-order Markov chains over a discrete state
// space, state distributions, and Chapman-Kolmogorov multi-step
// transitions. An uncertain object trajectory is a realization of such a
// chain seeded with the object's observation pdf.
package markov

import (
	"fmt"
	"math/rand"
	"sync"

	"ust/internal/sparse"
)

// DefaultTolerance is the row-sum tolerance accepted when validating
// transition matrices. Generators normalize with float64 arithmetic, so
// exact sums of 1 cannot be demanded.
const DefaultTolerance = 1e-9

// Chain is a homogeneous first-order Markov chain: a finite state space
// {0, …, n−1} together with a row-stochastic single-step transition
// matrix M, where M[i][j] = P(o(t+1) = j | o(t) = i) for all t
// (Definition 5/6 of the paper).
//
// Chains are immutable after construction and safe for concurrent use.
type Chain struct {
	m     *sparse.CSR
	mt    *sparse.CSR // lazily built transpose, guarded by tOnce
	tOnce sync.Once
	// fp is the lazily computed content fingerprint (fingerprint.go),
	// guarded by fpOnce. Immutability makes the memoization sound.
	fp     uint64
	fpOnce sync.Once
}

// NewChain validates m as a row-stochastic square matrix and wraps it.
func NewChain(m *sparse.CSR) (*Chain, error) {
	if err := m.CheckStochastic(DefaultTolerance); err != nil {
		return nil, fmt.Errorf("markov: invalid transition matrix: %w", err)
	}
	return &Chain{m: m}, nil
}

// MustChain is NewChain that panics on error; for tests and literals.
func MustChain(m *sparse.CSR) *Chain {
	c, err := NewChain(m)
	if err != nil {
		panic(err)
	}
	return c
}

// FromDense builds a chain from a dense transition matrix. For worked
// examples and tests.
func FromDense(rows [][]float64) (*Chain, error) {
	return NewChain(sparse.FromDense(rows))
}

// NumStates returns |S|.
func (c *Chain) NumStates() int { return c.m.Rows() }

// Matrix returns the underlying transition matrix. Callers must not
// mutate it.
func (c *Chain) Matrix() *sparse.CSR { return c.m }

// Transposed returns Mᵀ, building and caching it on first use. The
// query-based evaluation walks the chain backward through the transpose.
// Safe for concurrent use, including the first call: shard fan-out runs
// concurrent sweeps over shared chains with no warm-up point, so the
// lazy build is once-guarded rather than a caller convention. (The
// engine's parallel paths still pre-warm to keep the build off the
// per-object critical path.)
func (c *Chain) Transposed() *sparse.CSR {
	c.tOnce.Do(func() { c.mt = c.m.Transpose() })
	return c.mt
}

// TransitionProb returns P(o(t+1)=j | o(t)=i).
func (c *Chain) TransitionProb(i, j int) float64 { return c.m.At(i, j) }

// Successors calls fn for each state j reachable from i in one step with
// its transition probability.
func (c *Chain) Successors(i int, fn func(j int, p float64)) { c.m.Row(i, fn) }

// OutDegree returns the number of one-step successors of state i.
func (c *Chain) OutDegree(i int) int { return c.m.RowNNZ(i) }

// NNZ returns the number of non-zero transition probabilities.
func (c *Chain) NNZ() int { return c.m.NNZ() }

// Step advances the distribution one timestamp: dst = x · M
// (Corollary 1 of the paper). dst must not alias x.
func (c *Chain) Step(dst, x *sparse.Vec) { sparse.VecMat(dst, x, c.m) }

// StepBack applies one transposed step: dst = x · Mᵀ. Used by the
// query-based backward sweep.
func (c *Chain) StepBack(dst, x *sparse.Vec) { sparse.VecMat(dst, x, c.Transposed()) }

// MStep returns the m-step transition matrix Mᵐ (Chapman-Kolmogorov,
// Corollary 2). The result is materialized; prefer repeated Step calls
// for one-off distribution evolution on large spaces.
func (c *Chain) MStep(m int) *sparse.CSR { return sparse.MatPow(c.m, m) }

// Evolve returns the distribution after steps transitions from init,
// allocating two scratch vectors internally: P(o, t+steps) = P(o,t)·Mˢ.
func (c *Chain) Evolve(init *sparse.Vec, steps int) *sparse.Vec {
	cur := init.Clone()
	if steps == 0 {
		return cur
	}
	next := sparse.NewVec(c.NumStates())
	for s := 0; s < steps; s++ {
		c.Step(next, cur)
		cur, next = next, cur
	}
	return cur
}

// Reachable returns the set of states reachable from the support of init
// within maxSteps transitions (the paper's S_reach). Used for pruning
// and for sizing OB cost estimates.
func (c *Chain) Reachable(init *sparse.Vec, maxSteps int) []int {
	n := c.NumStates()
	seen := make([]bool, n)
	frontier := init.Support()
	for _, s := range frontier {
		seen[s] = true
	}
	all := append([]int(nil), frontier...)
	for step := 0; step < maxSteps && len(frontier) > 0; step++ {
		var next []int
		for _, i := range frontier {
			c.m.Row(i, func(j int, _ float64) {
				if !seen[j] {
					seen[j] = true
					next = append(next, j)
				}
			})
		}
		all = append(all, next...)
		frontier = next
	}
	return all
}

// SampleStep draws the successor state of i using rng. It walks the row's
// cumulative mass; rows are short (state spread) so a linear walk wins
// over alias tables built per row.
func (c *Chain) SampleStep(i int, rng *rand.Rand) int {
	cols, vals := c.m.RowSlices(i)
	if len(cols) == 0 {
		// A state with no outgoing transitions self-loops; generators
		// never produce one, but sampling must not fail on user data.
		return i
	}
	u := rng.Float64()
	acc := 0.0
	for k, v := range vals {
		acc += v
		if u < acc {
			return cols[k]
		}
	}
	return cols[len(cols)-1]
}

// SamplePath draws a trajectory of length steps+1 starting from a state
// drawn from init. The returned slice holds the state at t = 0…steps.
func (c *Chain) SamplePath(init *sparse.Vec, steps int, rng *rand.Rand) []int {
	path := make([]int, steps+1)
	path[0] = SampleFrom(init, rng)
	for t := 0; t < steps; t++ {
		path[t+1] = c.SampleStep(path[t], rng)
	}
	return path
}

// SampleFrom draws a state index from the distribution vec. The vector
// must have positive mass; it need not be normalized.
func SampleFrom(vec *sparse.Vec, rng *rand.Rand) int {
	total := vec.Sum()
	if total <= 0 {
		panic("markov: SampleFrom on zero-mass distribution")
	}
	u := rng.Float64() * total
	acc := 0.0
	chosen := -1
	vec.Range(func(i int, x float64) {
		if chosen >= 0 {
			return
		}
		acc += x
		if u < acc {
			chosen = i
		}
	})
	if chosen < 0 {
		// Floating-point slack: fall back to the last non-zero state.
		vec.Range(func(i int, x float64) { chosen = i })
	}
	return chosen
}
