package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/sparse"
)

// paperChain is the running example of Section V.
func paperChain(t testing.TB) *Chain {
	t.Helper()
	c, err := FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatalf("paper chain rejected: %v", err)
	}
	return c
}

func TestNewChainRejectsNonStochastic(t *testing.T) {
	_, err := FromDense([][]float64{{0.5, 0.4}, {0, 1}})
	if err == nil {
		t.Fatal("non-stochastic matrix accepted")
	}
}

func TestNewChainRejectsRectangular(t *testing.T) {
	_, err := NewChain(sparse.FromDense([][]float64{{1, 0}}))
	if err == nil {
		t.Fatal("rectangular matrix accepted")
	}
}

func TestMustChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustChain did not panic on bad input")
		}
	}()
	MustChain(sparse.FromDense([][]float64{{2}}))
}

func TestChainAccessors(t *testing.T) {
	c := paperChain(t)
	if c.NumStates() != 3 {
		t.Errorf("NumStates = %d", c.NumStates())
	}
	if c.NNZ() != 5 {
		t.Errorf("NNZ = %d, want 5", c.NNZ())
	}
	if got := c.TransitionProb(1, 0); got != 0.6 {
		t.Errorf("TransitionProb(1,0) = %g", got)
	}
	if got := c.OutDegree(2); got != 2 {
		t.Errorf("OutDegree(2) = %d", got)
	}
	var succ []int
	c.Successors(0, func(j int, p float64) { succ = append(succ, j) })
	if len(succ) != 1 || succ[0] != 2 {
		t.Errorf("Successors(0) = %v, want [2]", succ)
	}
}

func TestStepMatchesPaperNumbers(t *testing.T) {
	c := paperChain(t)
	d := PointDistribution(3, 1)
	got := c.Evolve(d.Vec(), 2)
	if math.Abs(got.At(1)-0.32) > 1e-12 || math.Abs(got.At(2)-0.68) > 1e-12 {
		t.Errorf("P(o,2) = %v, want [1:0.32 2:0.68]", got)
	}
}

func TestEvolveZeroSteps(t *testing.T) {
	c := paperChain(t)
	d := PointDistribution(3, 0)
	got := c.Evolve(d.Vec(), 0)
	if got.At(0) != 1 {
		t.Error("Evolve(0) should be the identity")
	}
	// And it must be a copy, not an alias.
	got.Set(0, 0.5)
	if d.P(0) != 1 {
		t.Error("Evolve(0) aliases its input")
	}
}

func TestMStepMatchesEvolveQuick(t *testing.T) {
	f := func(seed int64, stepsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		steps := int(stepsRaw % 8)
		c := randomChain(rng, 4+rng.Intn(12), 3)
		init := sparse.NewVec(c.NumStates())
		init.Set(rng.Intn(c.NumStates()), 1)

		viaEvolve := c.Evolve(init, steps)
		pow := c.MStep(steps)
		viaPow := sparse.NewVec(c.NumStates())
		sparse.VecMat(viaPow, init, pow)
		return viaEvolve.Equal(viaPow, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStepBackAdjointQuick(t *testing.T) {
	// ⟨x·M, y⟩ == ⟨x, y·Mᵀ⟩: forward and backward sweeps are adjoint,
	// which is exactly why OB and QB agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomChain(rng, 5+rng.Intn(15), 4)
		n := c.NumStates()
		x := randomVec(rng, n)
		y := randomVec(rng, n)
		fwd := sparse.NewVec(n)
		c.Step(fwd, x)
		bwd := sparse.NewVec(n)
		c.StepBack(bwd, y)
		return math.Abs(fwd.Dot(y)-x.Dot(bwd)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReachable(t *testing.T) {
	c := paperChain(t)
	init := sparse.NewVec(3)
	init.Set(0, 1)
	// From s1: one step reaches {s3}, two steps add {s2}.
	r0 := c.Reachable(init, 0)
	if len(r0) != 1 || r0[0] != 0 {
		t.Errorf("Reachable(0 steps) = %v", r0)
	}
	r1 := c.Reachable(init, 1)
	if len(r1) != 2 {
		t.Errorf("Reachable(1 step) = %v, want 2 states", r1)
	}
	r2 := c.Reachable(init, 2)
	if len(r2) != 3 {
		t.Errorf("Reachable(2 steps) = %v, want all 3 states", r2)
	}
}

func TestSampleStepDistributionConverges(t *testing.T) {
	c := paperChain(t)
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	counts := [3]int{}
	for i := 0; i < n; i++ {
		counts[c.SampleStep(1, rng)]++
	}
	if got := float64(counts[0]) / n; math.Abs(got-0.6) > 0.01 {
		t.Errorf("P(s1|s2) sampled as %g, want 0.6", got)
	}
	if got := float64(counts[2]) / n; math.Abs(got-0.4) > 0.01 {
		t.Errorf("P(s3|s2) sampled as %g, want 0.4", got)
	}
	if counts[1] != 0 {
		t.Errorf("impossible transition sampled %d times", counts[1])
	}
}

func TestSamplePathRespectsSupport(t *testing.T) {
	c := paperChain(t)
	rng := rand.New(rand.NewSource(1))
	init := sparse.NewVec(3)
	init.Set(1, 1)
	for trial := 0; trial < 200; trial++ {
		path := c.SamplePath(init, 5, rng)
		if len(path) != 6 {
			t.Fatalf("path length %d, want 6", len(path))
		}
		if path[0] != 1 {
			t.Fatalf("path start %d, want 1", path[0])
		}
		for t2 := 0; t2 < 5; t2++ {
			if c.TransitionProb(path[t2], path[t2+1]) == 0 {
				t.Fatalf("path uses impossible transition %d->%d", path[t2], path[t2+1])
			}
		}
	}
}

func TestSampleFromZeroMassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleFrom on empty distribution did not panic")
		}
	}()
	SampleFrom(sparse.NewVec(3), rand.New(rand.NewSource(1)))
}

func TestSampleStepDanglingStateSelfLoops(t *testing.T) {
	// User-supplied matrices may contain dangling rows only if they skip
	// validation; SampleStep must still terminate.
	m := sparse.FromDense([][]float64{{0, 1}, {0, 0}})
	c := &Chain{m: m}
	if got := c.SampleStep(1, rand.New(rand.NewSource(1))); got != 1 {
		t.Errorf("dangling state stepped to %d, want self-loop", got)
	}
}

// randomChain builds a random valid chain with ≤ maxOut successors/state.
func randomChain(rng *rand.Rand, n, maxOut int) *Chain {
	m := sparse.FromRows(n, n, func(i int) ([]int, []float64) {
		k := 1 + rng.Intn(maxOut)
		seen := map[int]bool{}
		var idx []int
		for len(idx) < k {
			j := rng.Intn(n)
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
			}
		}
		vals := make([]float64, len(idx))
		s := 0.0
		for p := range vals {
			vals[p] = rng.Float64() + 1e-3
			s += vals[p]
		}
		for p := range vals {
			vals[p] /= s
		}
		return idx, vals
	})
	return MustChain(m)
}

func randomVec(rng *rand.Rand, n int) *sparse.Vec {
	v := sparse.NewVec(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.4 {
			v.Set(i, rng.Float64())
		}
	}
	return v
}
