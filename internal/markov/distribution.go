package markov

import (
	"fmt"
	"math"
	"sort"

	"ust/internal/sparse"
)

// Distribution is a probability distribution over the state space: the
// paper's P(o, t) vector. It wraps sparse.Vec with probability-specific
// construction and validation.
type Distribution struct {
	vec *sparse.Vec
}

// NewDistribution returns the zero distribution over n states (no mass;
// callers fill it in).
func NewDistribution(n int) *Distribution {
	return &Distribution{vec: sparse.NewVec(n)}
}

// PointDistribution puts all mass on a single state: a precise
// observation.
func PointDistribution(n, state int) *Distribution {
	if state < 0 || state >= n {
		panic(fmt.Sprintf("markov: state %d out of range [0,%d)", state, n))
	}
	d := NewDistribution(n)
	d.vec.Set(state, 1)
	return d
}

// UniformOver spreads mass uniformly over the given states: an imprecise
// observation with no interior preference (the shape used by the paper's
// object spread parameter).
func UniformOver(n int, states []int) *Distribution {
	if len(states) == 0 {
		panic("markov: UniformOver with no states")
	}
	d := NewDistribution(n)
	p := 1 / float64(len(states))
	for _, s := range states {
		if s < 0 || s >= n {
			panic(fmt.Sprintf("markov: state %d out of range [0,%d)", s, n))
		}
		d.vec.Set(s, p)
	}
	return d
}

// WeightedOver builds a distribution from parallel state/weight slices,
// normalizing the weights to sum to one.
func WeightedOver(n int, states []int, weights []float64) (*Distribution, error) {
	if len(states) != len(weights) {
		return nil, fmt.Errorf("markov: %d states but %d weights", len(states), len(weights))
	}
	if len(states) == 0 {
		return nil, fmt.Errorf("markov: empty distribution")
	}
	d := NewDistribution(n)
	for k, s := range states {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("markov: state %d out of range [0,%d)", s, n)
		}
		if weights[k] < 0 {
			return nil, fmt.Errorf("markov: negative weight %g for state %d", weights[k], s)
		}
		d.vec.Add(s, weights[k])
	}
	if d.vec.Normalize() == 0 {
		return nil, fmt.Errorf("markov: all weights zero")
	}
	return d, nil
}

// FromVec wraps an existing vector as a distribution without copying.
func FromVec(v *sparse.Vec) *Distribution { return &Distribution{vec: v} }

// Vec exposes the underlying vector. Callers must preserve
// non-negativity.
func (d *Distribution) Vec() *sparse.Vec { return d.vec }

// NumStates returns the dimension of the state space.
func (d *Distribution) NumStates() int { return d.vec.Len() }

// P returns the probability mass on state i.
func (d *Distribution) P(i int) float64 { return d.vec.At(i) }

// Mass returns the total probability mass (1 for a proper distribution,
// less after conditioning on impossible observations).
func (d *Distribution) Mass() float64 { return d.vec.Sum() }

// Support returns the states carrying mass, ascending.
func (d *Distribution) Support() []int { return d.vec.Support() }

// Validate checks that the distribution is a proper pdf: non-negative
// (by construction) with total mass 1 within tol.
func (d *Distribution) Validate(tol float64) error {
	m := d.Mass()
	if m < 1-tol || m > 1+tol {
		return fmt.Errorf("markov: distribution mass %g is not 1", m)
	}
	return nil
}

// Clone returns an independent copy.
func (d *Distribution) Clone() *Distribution {
	return &Distribution{vec: d.vec.Clone()}
}

// Fuse combines d with an independent observation of the same epoch by
// elementwise product followed by normalization (Lemma 1 of the paper).
// It returns the pre-normalization mass, which is the probability that
// the observation is consistent with d — zero means the observation
// contradicts every possible world and the fused distribution is invalid.
func (d *Distribution) Fuse(obs *Distribution) float64 {
	d.vec.Hadamard(obs.vec)
	return d.vec.Normalize()
}

// Entropy returns the Shannon entropy in nats; a convenience for
// diagnostics and examples (0 for a point observation).
func (d *Distribution) Entropy() float64 {
	h := 0.0
	d.vec.Range(func(_ int, p float64) {
		if p > 0 {
			h -= p * math.Log(p)
		}
	})
	return h
}

// Mode returns the state with the largest mass and that mass. Ties break
// toward the smallest state index for determinism.
func (d *Distribution) Mode() (state int, p float64) {
	state = -1
	idx := d.Support()
	sort.Ints(idx)
	for _, i := range idx {
		if x := d.vec.At(i); x > p {
			state, p = i, x
		}
	}
	return state, p
}

// String renders the distribution compactly.
func (d *Distribution) String() string { return d.vec.String() }
