package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/sparse"
)

func TestPointDistribution(t *testing.T) {
	d := PointDistribution(5, 2)
	if d.P(2) != 1 {
		t.Errorf("P(2) = %g, want 1", d.P(2))
	}
	if err := d.Validate(0); err != nil {
		t.Errorf("point distribution invalid: %v", err)
	}
	if d.Entropy() != 0 {
		t.Errorf("point distribution entropy = %g, want 0", d.Entropy())
	}
	if s, p := d.Mode(); s != 2 || p != 1 {
		t.Errorf("Mode = (%d, %g), want (2, 1)", s, p)
	}
}

func TestPointDistributionOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range state did not panic")
		}
	}()
	PointDistribution(3, 3)
}

func TestUniformOver(t *testing.T) {
	d := UniformOver(10, []int{1, 3, 5, 7})
	if err := d.Validate(1e-12); err != nil {
		t.Errorf("uniform distribution invalid: %v", err)
	}
	if d.P(3) != 0.25 {
		t.Errorf("P(3) = %g, want 0.25", d.P(3))
	}
	if d.P(0) != 0 {
		t.Errorf("P(0) = %g, want 0", d.P(0))
	}
	wantH := math.Log(4)
	if math.Abs(d.Entropy()-wantH) > 1e-12 {
		t.Errorf("entropy = %g, want %g", d.Entropy(), wantH)
	}
}

func TestUniformOverEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty UniformOver did not panic")
		}
	}()
	UniformOver(5, nil)
}

func TestWeightedOver(t *testing.T) {
	d, err := WeightedOver(4, []int{0, 2}, []float64{1, 3})
	if err != nil {
		t.Fatalf("WeightedOver: %v", err)
	}
	if math.Abs(d.P(0)-0.25) > 1e-15 || math.Abs(d.P(2)-0.75) > 1e-15 {
		t.Errorf("weights not normalized: %v", d)
	}
	if s, p := d.Mode(); s != 2 || math.Abs(p-0.75) > 1e-15 {
		t.Errorf("Mode = (%d, %g)", s, p)
	}
}

func TestWeightedOverErrors(t *testing.T) {
	if _, err := WeightedOver(4, []int{0}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedOver(4, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := WeightedOver(4, []int{9}, []float64{1}); err == nil {
		t.Error("out-of-range state accepted")
	}
	if _, err := WeightedOver(4, []int{0}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedOver(4, []int{0, 1}, []float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
}

func TestWeightedOverDuplicateStatesAccumulate(t *testing.T) {
	d, err := WeightedOver(3, []int{1, 1}, []float64{1, 1})
	if err != nil {
		t.Fatalf("WeightedOver: %v", err)
	}
	if d.P(1) != 1 {
		t.Errorf("duplicate states should accumulate: P(1) = %g", d.P(1))
	}
}

func TestFuseLemma1(t *testing.T) {
	// Lemma 1: joint pdf of independent observations is the normalized
	// elementwise product.
	a := UniformOver(4, []int{0, 1, 2})
	b := UniformOver(4, []int{1, 2, 3})
	mass := a.Fuse(b)
	// Product mass: states 1,2 each (1/3)(1/3) = 1/9 → total 2/9.
	if math.Abs(mass-2.0/9) > 1e-12 {
		t.Errorf("pre-normalization mass = %g, want 2/9", mass)
	}
	if math.Abs(a.P(1)-0.5) > 1e-12 || math.Abs(a.P(2)-0.5) > 1e-12 {
		t.Errorf("fused = %v, want uniform on {1,2}", a)
	}
	if err := a.Validate(1e-12); err != nil {
		t.Errorf("fused distribution invalid: %v", err)
	}
}

func TestFuseContradiction(t *testing.T) {
	a := PointDistribution(4, 0)
	b := PointDistribution(4, 3)
	if mass := a.Fuse(b); mass != 0 {
		t.Errorf("contradictory fuse mass = %g, want 0", mass)
	}
	if a.Mass() != 0 {
		t.Errorf("contradictory fuse left mass %g", a.Mass())
	}
}

func TestFuseCommutesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		a1 := randomDistribution(rng, n)
		b1 := randomDistribution(rng, n)
		a2 := a1.Clone()
		b2 := b1.Clone()
		a1.Fuse(b1)
		b2.Fuse(a2)
		return a1.Vec().Equal(b2.Vec(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectsNonUnitMass(t *testing.T) {
	d := NewDistribution(3)
	d.Vec().Set(0, 0.5)
	if err := d.Validate(1e-9); err == nil {
		t.Error("half-mass distribution validated")
	}
}

func TestCloneIndependent(t *testing.T) {
	d := PointDistribution(3, 1)
	c := d.Clone()
	c.Vec().Set(1, 0)
	c.Vec().Set(0, 1)
	if d.P(1) != 1 {
		t.Error("Clone aliases original")
	}
}

func TestFromVecShares(t *testing.T) {
	v := sparse.NewVec(3)
	v.Set(2, 1)
	d := FromVec(v)
	if d.P(2) != 1 {
		t.Error("FromVec lost data")
	}
	v.Set(2, 0.5)
	if d.P(2) != 0.5 {
		t.Error("FromVec should share storage")
	}
}

func TestModeTieBreaksLow(t *testing.T) {
	d := UniformOver(5, []int{4, 1})
	if s, _ := d.Mode(); s != 1 {
		t.Errorf("Mode tie broke to %d, want 1", s)
	}
}

func TestSupportAscending(t *testing.T) {
	d := UniformOver(9, []int{8, 0, 4})
	sup := d.Support()
	if len(sup) != 3 || sup[0] != 0 || sup[1] != 4 || sup[2] != 8 {
		t.Errorf("Support = %v", sup)
	}
}

func randomDistribution(rng *rand.Rand, n int) *Distribution {
	d := NewDistribution(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			d.Vec().Set(i, rng.Float64()+1e-6)
		}
	}
	if d.Mass() == 0 {
		d.Vec().Set(rng.Intn(n), 1)
	}
	d.Vec().Normalize()
	return d
}
