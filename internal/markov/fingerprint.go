package markov

import "math"

// The chain fingerprint. The in-process score cache keys sweeps on the
// chain POINTER — sound because chains are immutable, but meaningless
// across process boundaries. The networked sweep tier needs an identity
// that two processes holding separately decoded copies of the same
// motion model agree on, so it keys on a content hash of the transition
// matrix instead: dimensions, row structure and the exact float64 bit
// patterns of every probability. Equal fingerprints mean (up to hash
// collision on 64 bits) equal matrices, and therefore bit-identical
// backward sweeps.

const (
	fpOffset uint64 = 0xcbf29ce484222325
	fpPrime  uint64 = 0x100000001b3
)

// fpMix folds one 64-bit value into an FNV-1a running hash bytewise.
func fpMix(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= (v >> i) & 0xff
		h *= fpPrime
	}
	return h
}

// Fingerprint returns the chain's 64-bit content fingerprint, computing
// it on first use and caching it (chains are immutable). Safe for
// concurrent use.
func (c *Chain) Fingerprint() uint64 {
	c.fpOnce.Do(func() {
		h := fpMix(fpOffset, uint64(c.m.Rows()))
		for i := 0; i < c.m.Rows(); i++ {
			cols, vals := c.m.RowSlices(i)
			h = fpMix(h, uint64(len(cols)))
			for k, j := range cols {
				h = fpMix(h, uint64(j))
				h = fpMix(h, math.Float64bits(vals[k]))
			}
		}
		c.fp = h
	})
	return c.fp
}
