package markov

import (
	"fmt"
	"math"

	"ust/internal/sparse"
)

// Long-run diagnostics: stationary distribution and mixing estimates.
// These support capacity planning on top of the query engine ("which
// road segments will be congested in the steady state?") and sanity
// checks on generated models.

// Stationary approximates the stationary distribution π (π = π·M) by
// power iteration from the uniform distribution. It returns the
// distribution and the number of iterations used.
//
// Convergence requires the chain to be irreducible and aperiodic on the
// reachable component; maxIter bounds the work and tol is the L1
// convergence threshold. An error is returned when the iteration fails
// to converge (e.g. a periodic chain).
func Stationary(c *Chain, maxIter int, tol float64) (*Distribution, int, error) {
	if maxIter <= 0 {
		maxIter = 1000
	}
	if tol <= 0 {
		tol = 1e-10
	}
	n := c.NumStates()
	cur := sparse.NewVec(n)
	for i := 0; i < n; i++ {
		cur.Set(i, 1/float64(n))
	}
	next := sparse.NewVec(n)
	for iter := 1; iter <= maxIter; iter++ {
		c.Step(next, cur)
		if l1Dist(cur, next) < tol {
			out := next.Clone()
			out.Normalize()
			return FromVec(out), iter, nil
		}
		cur, next = next, cur
	}
	return nil, maxIter, fmt.Errorf("markov: power iteration did not converge in %d iterations", maxIter)
}

// MixingTime estimates how many steps a point mass at the given state
// needs before its distribution is within tol (L1) of the stationary
// distribution. Returns an error if the bound maxSteps is hit first.
func MixingTime(c *Chain, start int, pi *Distribution, maxSteps int, tol float64) (int, error) {
	if maxSteps <= 0 {
		maxSteps = 1000
	}
	if tol <= 0 {
		tol = 1e-3
	}
	cur := PointDistribution(c.NumStates(), start).Vec()
	next := sparse.NewVec(c.NumStates())
	for step := 1; step <= maxSteps; step++ {
		c.Step(next, cur)
		cur, next = next, cur
		if l1Dist(cur, pi.Vec()) < tol {
			return step, nil
		}
	}
	return 0, fmt.Errorf("markov: chain did not mix from state %d within %d steps", start, maxSteps)
}

func l1Dist(a, b *sparse.Vec) float64 {
	d := 0.0
	ad, bd := a.RawData(), b.RawData()
	for i := range ad {
		d += math.Abs(ad[i] - bd[i])
	}
	return d
}
