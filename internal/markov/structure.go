package markov

// Structural analysis of a chain's transition graph: strongly connected
// components, irreducibility and aperiodicity. Generated models should
// usually be irreducible and aperiodic (otherwise Stationary diverges
// and long-horizon queries degenerate); these helpers let callers
// validate inputs up front.

// SCCs returns the strongly connected components of the transition
// graph (positive-probability edges), each as a sorted slice of state
// ids, in reverse topological order (Tarjan's algorithm, iterative).
func SCCs(c *Chain) [][]int {
	n := c.NumStates()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		stack   []int32
		out     [][]int
	)

	type frame struct {
		v    int32
		edge int // cursor into v's successor list
	}
	// Collect adjacency once; row iteration is closure-based.
	succ := make([][]int32, n)
	for i := 0; i < n; i++ {
		c.Successors(i, func(j int, p float64) {
			succ[i] = append(succ[i], int32(j))
		})
	}

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{v: int32(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := int(f.v)
			if f.edge < len(succ[v]) {
				w := int(succ[v][f.edge])
				f.edge++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, int32(w))
					onStack[w] = true
					work = append(work, frame{v: int32(w)})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished.
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := int(work[len(work)-1].v)
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, int(w))
					if int(w) == v {
						break
					}
				}
				sortInts(comp)
				out = append(out, comp)
			}
		}
	}
	return out
}

// Irreducible reports whether every state reaches every other state:
// exactly one strongly connected component.
func Irreducible(c *Chain) bool {
	return len(SCCs(c)) == 1
}

// Aperiodic reports whether the chain's period is 1, assuming it is
// irreducible (callers should check Irreducible first; for reducible
// chains the result refers to the component of state 0).
//
// The period is the gcd of all cycle lengths; it is computed by BFS
// level labeling: for every edge (u, v), gcd accumulates
// |level(u) + 1 − level(v)|.
func Aperiodic(c *Chain) bool {
	n := c.NumStates()
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := []int{0}
	g := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		c.Successors(u, func(v int, p float64) {
			if level[v] == -1 {
				level[v] = level[u] + 1
				queue = append(queue, v)
				return
			}
			d := level[u] + 1 - level[v]
			if d < 0 {
				d = -d
			}
			g = gcd(g, d)
		})
	}
	return g == 1
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func sortInts(a []int) {
	// Insertion sort: components are usually small; avoids an import.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
