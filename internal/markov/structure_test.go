package markov

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/sparse"
)

func TestSCCsPaperChain(t *testing.T) {
	// The paper chain is irreducible: one SCC covering all states.
	c := paperChain(t)
	comps := SCCs(c)
	if len(comps) != 1 {
		t.Fatalf("SCCs = %v, want one component", comps)
	}
	if len(comps[0]) != 3 {
		t.Errorf("component = %v, want all 3 states", comps[0])
	}
	if !Irreducible(c) {
		t.Error("paper chain should be irreducible")
	}
}

func TestSCCsReducibleChain(t *testing.T) {
	// s0 -> s1 -> s2 (absorbing): three singleton components.
	c := MustChain(mustFromDense([][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{0, 0, 1},
	}))
	comps := SCCs(c)
	if len(comps) != 3 {
		t.Fatalf("SCCs = %v, want 3 components", comps)
	}
	if Irreducible(c) {
		t.Error("absorbing-path chain reported irreducible")
	}
	// Reverse topological order: the absorbing component first.
	if comps[0][0] != 2 {
		t.Errorf("first (sink) component = %v, want [2]", comps[0])
	}
}

func TestSCCsTwoCycles(t *testing.T) {
	// Two disjoint 2-cycles.
	c := MustChain(mustFromDense([][]float64{
		{0, 1, 0, 0},
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	}))
	comps := SCCs(c)
	if len(comps) != 2 {
		t.Fatalf("SCCs = %v, want 2 components", comps)
	}
	for _, comp := range comps {
		if len(comp) != 2 {
			t.Errorf("component %v should have 2 states", comp)
		}
	}
}

func TestAperiodic(t *testing.T) {
	// Self-loop → aperiodic.
	if !Aperiodic(paperChain(t)) {
		t.Error("paper chain (has self-loop) should be aperiodic")
	}
	// Pure 2-cycle → period 2.
	cycle := MustChain(mustFromDense([][]float64{
		{0, 1},
		{1, 0},
	}))
	if Aperiodic(cycle) {
		t.Error("2-cycle reported aperiodic")
	}
	// 2-cycle plus a 3-cycle shortcut → gcd(2,3)=1 → aperiodic.
	mixed := MustChain(mustFromDense([][]float64{
		{0, 0.5, 0.5},
		{1, 0, 0},
		{0, 1, 0},
	}))
	if !Aperiodic(mixed) {
		t.Error("mixed cycle lengths should be aperiodic")
	}
}

func TestIrreducibleAperiodicImpliesStationaryConvergesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomChain(rng, 4+rng.Intn(10), 3)
		if !Irreducible(c) || !Aperiodic(c) {
			return true // nothing to assert
		}
		pi, _, err := Stationary(c, 100000, 1e-10)
		if err != nil {
			return false
		}
		// Fixed point within tolerance.
		next := c.Evolve(pi.Vec(), 1)
		return next.Equal(pi.Vec(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func mustFromDense(rows [][]float64) *sparse.CSR {
	return sparse.FromDense(rows)
}
