package markov

import "ust/internal/sparse"

// Support propagation: the boolean shadow of the chain's transition
// operator. Where Step moves probability mass, these move only *support*
// ("is any mass possible here?"), one bit per state. The query engine's
// filter–refine stage builds reachability envelopes out of them: n-step
// support expansion of a query region yields, per state, a conservative
// answer to "could an object starting here possibly (or certainly) hit
// the region?" — enough to prune most objects before any exact sweep.

// StepSupport computes the one-step forward support expansion
// dst = {j : ∃ i ∈ src, M[i,j] > 0}. dst must not alias src.
func (c *Chain) StepSupport(dst, src *sparse.Bitset) {
	sparse.BoolVecMat(dst, src, c.m)
}

// StepBackSupport computes the one-step backward support expansion
// dst = {i : ∃ j ∈ src, M[i,j] > 0} — the states that can reach src in
// one transition. It walks the cached transpose; warm it with Transposed
// before sharing the chain across goroutines. dst must not alias src.
func (c *Chain) StepBackSupport(dst, src *sparse.Bitset) {
	sparse.BoolVecMat(dst, src, c.Transposed())
}

// StepBackCertain computes dst = {i : out-degree(i) > 0 and every
// successor of i is in src} — the states that reach src in one step with
// certainty. Dangling states (no outgoing transitions) are conservatively
// excluded. dst must not alias src.
func (c *Chain) StepBackCertain(dst, src *sparse.Bitset) {
	sparse.BoolMatVecAll(dst, src, c.m)
}

// SupportExpand returns the support of init expanded forward by up to
// steps transitions: the states an object with that initial support can
// occupy at any t ≤ steps (the paper's S_reach as a bitset). It is the
// fixed-point-truncated union of the step-wise supports.
func (c *Chain) SupportExpand(init *sparse.Bitset, steps int) *sparse.Bitset {
	n := c.NumStates()
	all := init.Clone()
	cur := init.Clone()
	next := sparse.NewBitset(n)
	for s := 0; s < steps; s++ {
		c.StepSupport(next, cur)
		// Stop early once the frontier adds nothing new.
		grew := false
		next.Range(func(i int) {
			if !all.Has(i) {
				all.Set(i)
				grew = true
			}
		})
		if !grew {
			break
		}
		cur, next = next, cur
	}
	return all
}
