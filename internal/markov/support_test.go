package markov

import (
	"math/rand"
	"testing"

	"ust/internal/sparse"
)

// chain3 is the paper's running-example chain: s1 → s3, s2 → {s1, s3},
// s3 → {s2, s3}.
func chain3(t *testing.T) *Chain {
	t.Helper()
	c, err := FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func bitsetOf(n int, ids ...int) *sparse.Bitset {
	b := sparse.NewBitset(n)
	for _, i := range ids {
		b.Set(i)
	}
	return b
}

func TestStepSupportForwardBack(t *testing.T) {
	c := chain3(t)
	dst := sparse.NewBitset(3)

	c.StepSupport(dst, bitsetOf(3, 0))
	if !dst.Equal(bitsetOf(3, 2)) {
		t.Fatalf("StepSupport({0}) = %d members, want {2}", dst.Count())
	}
	c.StepSupport(dst, bitsetOf(3, 1))
	if !dst.Equal(bitsetOf(3, 0, 2)) {
		t.Fatalf("StepSupport({1}) wrong")
	}

	// Backward: predecessors of {0} are states with an edge into 0 = {1}.
	c.StepBackSupport(dst, bitsetOf(3, 0))
	if !dst.Equal(bitsetOf(3, 1)) {
		t.Fatalf("StepBackSupport({0}) wrong")
	}

	// Certain: every successor inside src. succ(0)={2} ⊆ {2}; succ(2)={1,2} ⊄ {2}.
	c.StepBackCertain(dst, bitsetOf(3, 2))
	if !dst.Has(0) || dst.Has(1) || dst.Has(2) {
		t.Fatalf("StepBackCertain({2}) wrong: {0:%v 1:%v 2:%v}", dst.Has(0), dst.Has(1), dst.Has(2))
	}
}

// TestSupportExpandMatchesReachable pins SupportExpand to the existing
// slice-based Reachable on random chains.
func TestSupportExpandMatchesReachable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(30)
		b := sparse.NewBuilder(n, n)
		for i := 0; i < n; i++ {
			deg := 1 + rng.Intn(3)
			for d := 0; d < deg; d++ {
				b.Add(i, rng.Intn(n), 1)
			}
		}
		c := MustChain(b.Build().NormalizeRows())

		start := rng.Intn(n)
		steps := rng.Intn(6)
		init := sparse.NewVec(n)
		init.Set(start, 1)
		want := map[int]bool{}
		for _, s := range c.Reachable(init, steps) {
			want[s] = true
		}

		got := c.SupportExpand(bitsetOf(n, start), steps)
		for s := 0; s < n; s++ {
			if got.Has(s) != want[s] {
				t.Fatalf("trial %d: SupportExpand disagrees with Reachable at state %d (steps=%d)", trial, s, steps)
			}
		}
	}
}

// TestStepSupportMatchesStep pins the boolean step to the support of the
// float step.
func TestStepSupportMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		b := sparse.NewBuilder(n, n)
		for i := 0; i < n; i++ {
			deg := 1 + rng.Intn(3)
			for d := 0; d < deg; d++ {
				b.Add(i, rng.Intn(n), 1)
			}
		}
		c := MustChain(b.Build().NormalizeRows())

		v := sparse.NewVec(n)
		bs := sparse.NewBitset(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.4 {
				v.Set(i, rng.Float64()+0.1)
				bs.Set(i)
			}
		}
		fv := sparse.NewVec(n)
		c.Step(fv, v)
		fb := sparse.NewBitset(n)
		c.StepSupport(fb, bs)
		for i := 0; i < n; i++ {
			if fb.Has(i) != (fv.At(i) != 0) {
				t.Fatalf("trial %d: StepSupport[%d]=%v but Step mass %g", trial, i, fb.Has(i), fv.At(i))
			}
		}
	}
}
