// Package network provides the road-network substrate used by the
// paper's real-data experiments: a directed graph type embedded in the
// plane, randomized transition matrices derived from adjacency, and
// deterministic synthetic generators that mimic the Munich and North
// America road networks used in Section VIII ("the transition matrix is
// equivalent to the adjacency matrix of the corresponding graph" with
// random row-normalized weights).
package network

import (
	"fmt"
	"math/rand"
	"sort"

	"ust/internal/sparse"
	"ust/internal/spatial"
)

// Graph is a directed graph whose nodes are embedded in the plane. Nodes
// are identified by dense integer ids 0…NumNodes−1, which double as
// Markov-chain state identifiers.
type Graph struct {
	coords []spatial.Point
	adj    [][]int32 // adjacency lists, sorted ascending
	edges  int
}

// NewGraph returns an empty graph with n isolated nodes at the origin.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("network: negative node count %d", n))
	}
	return &Graph{
		coords: make([]spatial.Point, n),
		adj:    make([][]int32, n),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.coords) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.edges }

// SetCoord places node id at point p.
func (g *Graph) SetCoord(id int, p spatial.Point) { g.coords[id] = p }

// Coord returns the embedding of node id.
func (g *Graph) Coord(id int) spatial.Point { return g.coords[id] }

// AddEdge inserts the directed edge u→v. Duplicate and self-loop edges
// are ignored; the return reports whether the edge was inserted.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v {
		return false
	}
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("network: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj)))
	}
	lst := g.adj[u]
	pos := sort.Search(len(lst), func(i int) bool { return lst[i] >= int32(v) })
	if pos < len(lst) && lst[pos] == int32(v) {
		return false
	}
	lst = append(lst, 0)
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = int32(v)
	g.adj[u] = lst
	g.edges++
	return true
}

// AddUndirected inserts both u→v and v→u, returning how many directed
// edges were actually new (0, 1 or 2).
func (g *Graph) AddUndirected(u, v int) int {
	n := 0
	if g.AddEdge(u, v) {
		n++
	}
	if g.AddEdge(v, u) {
		n++
	}
	return n
}

// HasEdge reports whether the directed edge u→v exists.
func (g *Graph) HasEdge(u, v int) bool {
	lst := g.adj[u]
	pos := sort.Search(len(lst), func(i int) bool { return lst[i] >= int32(v) })
	return pos < len(lst) && lst[pos] == int32(v)
}

// OutDegree returns the number of outgoing edges of node id.
func (g *Graph) OutDegree(id int) int { return len(g.adj[id]) }

// Successors calls fn for every outgoing neighbor of node id in
// ascending order.
func (g *Graph) Successors(id int, fn func(v int)) {
	for _, v := range g.adj[id] {
		fn(int(v))
	}
}

// DegreeHistogram returns a map from out-degree to node count; used by
// tests to compare generated networks against the paper's shape.
func (g *Graph) DegreeHistogram() map[int]int {
	h := map[int]int{}
	for _, lst := range g.adj {
		h[len(lst)]++
	}
	return h
}

// ConnectedComponents returns the number of weakly connected components.
func (g *Graph) ConnectedComponents() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	// Build an undirected view once.
	und := make([][]int32, n)
	for u, lst := range g.adj {
		for _, v := range lst {
			und[u] = append(und[u], v)
			und[v] = append(und[v], int32(u))
		}
	}
	seen := make([]bool, n)
	comps := 0
	stack := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		comps++
		seen[s] = true
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range und[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return comps
}

// TransitionMatrix derives a row-stochastic matrix from the adjacency
// structure exactly as the paper does: "The value of the non-zero entries
// of one line in the matrix are set randomly and sum up to one." Nodes
// without outgoing edges receive a self-loop so the chain stays valid.
func (g *Graph) TransitionMatrix(rng *rand.Rand) *sparse.CSR {
	n := g.NumNodes()
	return sparse.FromRows(n, n, func(i int) ([]int, []float64) {
		lst := g.adj[i]
		if len(lst) == 0 {
			return []int{i}, []float64{1}
		}
		idx := make([]int, len(lst))
		vals := make([]float64, len(lst))
		s := 0.0
		for k, v := range lst {
			idx[k] = int(v)
			vals[k] = rng.Float64() + 1e-3
			s += vals[k]
		}
		for k := range vals {
			vals[k] /= s
		}
		return idx, vals
	})
}

// SelfLoopTransitionMatrix is TransitionMatrix with an additional stay
// probability on every node, modelling vehicles that wait at a crossing.
// stay must lie in [0, 1).
func (g *Graph) SelfLoopTransitionMatrix(rng *rand.Rand, stay float64) *sparse.CSR {
	if stay < 0 || stay >= 1 {
		panic(fmt.Sprintf("network: stay probability %g outside [0,1)", stay))
	}
	n := g.NumNodes()
	return sparse.FromRows(n, n, func(i int) ([]int, []float64) {
		lst := g.adj[i]
		if len(lst) == 0 {
			return []int{i}, []float64{1}
		}
		idx := make([]int, 0, len(lst)+1)
		vals := make([]float64, 0, len(lst)+1)
		s := 0.0
		w := make([]float64, len(lst))
		for k := range lst {
			w[k] = rng.Float64() + 1e-3
			s += w[k]
		}
		selfAt := -1
		for k, v := range lst {
			if int(v) > i && selfAt < 0 {
				selfAt = len(idx)
				idx = append(idx, i)
				vals = append(vals, stay)
			}
			idx = append(idx, int(v))
			vals = append(vals, (1-stay)*w[k]/s)
		}
		if selfAt < 0 {
			idx = append(idx, i)
			vals = append(vals, stay)
		}
		return idx, vals
	})
}

// RTree builds a spatial index over the node embeddings, mapping query
// regions to node-id sets.
func (g *Graph) RTree(degree int) *spatial.RTree {
	entries := make([]spatial.Entry, g.NumNodes())
	for id := range entries {
		entries[id] = spatial.Entry{P: g.coords[id], ID: id}
	}
	return spatial.BulkLoad(entries, degree)
}
