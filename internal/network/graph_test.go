package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/spatial"
)

func TestAddEdgeBasics(t *testing.T) {
	g := NewGraph(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("first AddEdge returned false")
	}
	if g.AddEdge(0, 1) {
		t.Error("duplicate AddEdge returned true")
	}
	if g.AddEdge(2, 2) {
		t.Error("self-loop accepted")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge wrong")
	}
	if g.OutDegree(0) != 1 || g.OutDegree(1) != 0 {
		t.Error("OutDegree wrong")
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	NewGraph(2).AddEdge(0, 5)
}

func TestAddUndirected(t *testing.T) {
	g := NewGraph(3)
	if n := g.AddUndirected(0, 1); n != 2 {
		t.Errorf("AddUndirected new pair = %d, want 2", n)
	}
	if n := g.AddUndirected(1, 0); n != 0 {
		t.Errorf("AddUndirected existing pair = %d, want 0", n)
	}
	g.AddEdge(1, 2)
	if n := g.AddUndirected(1, 2); n != 1 {
		t.Errorf("AddUndirected half-existing pair = %d, want 1", n)
	}
}

func TestSuccessorsSorted(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 3)
	var got []int
	g.Successors(0, func(v int) { got = append(got, v) })
	want := []int{1, 3, 4}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Successors = %v, want %v", got, want)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(6)
	g.AddUndirected(0, 1)
	g.AddUndirected(1, 2)
	g.AddUndirected(3, 4)
	// node 5 isolated
	if got := g.ConnectedComponents(); got != 3 {
		t.Errorf("ConnectedComponents = %d, want 3", got)
	}
	// Directed edges still connect weakly.
	g2 := NewGraph(2)
	g2.AddEdge(0, 1)
	if got := g2.ConnectedComponents(); got != 1 {
		t.Errorf("weak connectivity: %d components, want 1", got)
	}
	if NewGraph(0).ConnectedComponents() != 0 {
		t.Error("empty graph should have 0 components")
	}
}

func TestTransitionMatrixStochasticQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := NewGraph(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		m := g.TransitionMatrix(rng)
		return m.CheckStochastic(1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransitionMatrixSupportsAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	m := g.TransitionMatrix(rng)
	if m.At(0, 1) <= 0 || m.At(0, 2) <= 0 {
		t.Error("adjacent transitions must be positive")
	}
	if m.At(0, 3) != 0 {
		t.Error("non-adjacent transition must be zero")
	}
	// Dangling nodes self-loop.
	if m.At(3, 3) != 1 {
		t.Errorf("dangling node self-loop = %g, want 1", m.At(3, 3))
	}
}

func TestSelfLoopTransitionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 0)
	m := g.SelfLoopTransitionMatrix(rng, 0.3)
	if err := m.CheckStochastic(1e-9); err != nil {
		t.Fatalf("not stochastic: %v", err)
	}
	if got := m.At(0, 0); got != 0.3 {
		t.Errorf("stay probability = %g, want 0.3", got)
	}
	// Node 2's successors are all smaller than 2: self-loop appended at end.
	if got := m.At(2, 2); got != 0.3 {
		t.Errorf("stay probability (append path) = %g, want 0.3", got)
	}
	if m.At(1, 1) != 1 {
		t.Error("dangling node should self-loop with probability 1")
	}
}

func TestSelfLoopStayOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("stay=1 did not panic")
		}
	}()
	NewGraph(2).SelfLoopTransitionMatrix(rand.New(rand.NewSource(1)), 1)
}

func TestGraphRTree(t *testing.T) {
	g := NewGraph(9)
	for i := 0; i < 9; i++ {
		g.SetCoord(i, spatial.Point{X: float64(i % 3), Y: float64(i / 3)})
	}
	tr := g.RTree(4)
	got := tr.Search(spatial.NewRect(-0.5, -0.5, 1.5, 0.5))
	// Points with x in [-.5,1.5], y in [-.5,.5]: nodes 0,1 (y=0, x=0,1).
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("RTree search = %v, want [0 1]", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	h := g.DegreeHistogram()
	if h[2] != 1 || h[1] != 1 || h[0] != 2 {
		t.Errorf("DegreeHistogram = %v", h)
	}
}
