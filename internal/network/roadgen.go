package network

import (
	"fmt"
	"math"
	"math/rand"

	"ust/internal/spatial"
)

// RoadNetworkSpec describes the target shape of a synthetic road
// network. The generator produces a connected, planar-local graph hitting
// the requested node and (approximately) undirected edge counts.
//
// Substitution note (see DESIGN.md): the paper evaluates on proprietary
// extracts of the Munich and North America road networks. What the query
// engine is sensitive to is matrix size (|V|), density (|E|), degree
// distribution and spatial locality — all captured here — not the actual
// street geometry.
type RoadNetworkSpec struct {
	Name  string
	Nodes int
	// UndirectedEdges is the target number of undirected road segments.
	// Directed edge count will be about twice this (roads are two-way,
	// matching "each edge corresponds to two non-zero entries").
	UndirectedEdges int
	Seed            int64
}

// MunichSpec mirrors the Munich road network of the paper:
// 73,120 nodes, 93,925 edges.
func MunichSpec(seed int64) RoadNetworkSpec {
	return RoadNetworkSpec{Name: "munich", Nodes: 73120, UndirectedEdges: 93925, Seed: seed}
}

// NorthAmericaSpec mirrors the North America road network of the paper:
// 175,813 nodes, 179,102 edges — a much sparser, nearly tree-like graph.
func NorthAmericaSpec(seed int64) RoadNetworkSpec {
	return RoadNetworkSpec{Name: "north-america", Nodes: 175813, UndirectedEdges: 179102, Seed: seed}
}

// Scaled returns a copy of the spec with node and edge counts divided by
// factor (minimum 16 nodes), preserving the density ratio. Benchmarks use
// scaled-down networks by default.
func (s RoadNetworkSpec) Scaled(factor int) RoadNetworkSpec {
	if factor <= 1 {
		return s
	}
	out := s
	out.Name = fmt.Sprintf("%s/%d", s.Name, factor)
	out.Nodes = maxInt(16, s.Nodes/factor)
	out.UndirectedEdges = maxInt(out.Nodes-1, s.UndirectedEdges/factor)
	return out
}

// Generate builds the synthetic road network:
//
//  1. Nodes are scattered in a square with area proportional to the node
//     count (constant density, like real road networks).
//  2. A randomized spanning structure over a spatial grid partition makes
//     the graph connected with |V|−1 undirected edges, each connecting
//     spatial neighbors (roads are short).
//  3. Remaining edge budget is spent on extra short edges between nearby
//     nodes, creating the loops and grid blocks of urban networks.
//
// The result is deterministic for a given spec.
func Generate(spec RoadNetworkSpec) (*Graph, error) {
	if spec.Nodes < 2 {
		return nil, fmt.Errorf("network: spec needs at least 2 nodes, got %d", spec.Nodes)
	}
	if spec.UndirectedEdges < spec.Nodes-1 {
		return nil, fmt.Errorf("network: %d edges cannot connect %d nodes", spec.UndirectedEdges, spec.Nodes)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g := NewGraph(spec.Nodes)

	// 1. Scatter nodes with constant density: side = sqrt(n).
	side := math.Sqrt(float64(spec.Nodes))
	for i := 0; i < spec.Nodes; i++ {
		g.SetCoord(i, spatial.Point{X: rng.Float64() * side, Y: rng.Float64() * side})
	}

	// Bucket nodes into a coarse grid for neighbor lookups. Cell size ~2
	// keeps a handful of nodes per cell at unit density.
	const cell = 2.0
	cols := int(side/cell) + 1
	buckets := make([][]int32, cols*cols)
	bucketOf := func(p spatial.Point) int {
		cx := int(p.X / cell)
		cy := int(p.Y / cell)
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= cols {
			cy = cols - 1
		}
		return cy*cols + cx
	}
	for i := 0; i < spec.Nodes; i++ {
		b := bucketOf(g.Coord(i))
		buckets[b] = append(buckets[b], int32(i))
	}

	// nearbyNodes lists candidates in the 3x3 cell neighborhood of p.
	nearbyNodes := func(p spatial.Point) []int32 {
		cx := int(p.X / cell)
		cy := int(p.Y / cell)
		var out []int32
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cols || ny >= cols {
					continue
				}
				out = append(out, buckets[ny*cols+nx]...)
			}
		}
		return out
	}

	// 2. Connect with a randomized local spanning pass: visit nodes in
	// random order; link each unvisited node to the nearest already-
	// connected node in its neighborhood (falling back to the previous
	// node in the order, which guarantees connectivity).
	order := rng.Perm(spec.Nodes)
	connected := make([]bool, spec.Nodes)
	connected[order[0]] = true
	undirected := 0
	for k := 1; k < len(order); k++ {
		u := order[k]
		best, bestD := -1, math.Inf(1)
		for _, v32 := range nearbyNodes(g.Coord(u)) {
			v := int(v32)
			if !connected[v] || v == u {
				continue
			}
			d := dist(g.Coord(u), g.Coord(v))
			if d < bestD {
				best, bestD = v, d
			}
		}
		if best < 0 {
			best = order[k-1] // guaranteed connected
		}
		undirected += g.AddUndirected(u, best) / 2
		connected[u] = true
	}

	// 3. Spend the remaining budget on short extra edges.
	attempts := 0
	maxAttempts := spec.UndirectedEdges * 20
	for undirected < spec.UndirectedEdges && attempts < maxAttempts {
		attempts++
		u := rng.Intn(spec.Nodes)
		cand := nearbyNodes(g.Coord(u))
		if len(cand) < 2 {
			continue
		}
		v := int(cand[rng.Intn(len(cand))])
		if v == u || g.HasEdge(u, v) {
			continue
		}
		if g.AddUndirected(u, v) == 2 {
			undirected++
		}
	}
	if undirected < spec.UndirectedEdges {
		return nil, fmt.Errorf("network: could only place %d of %d undirected edges", undirected, spec.UndirectedEdges)
	}
	return g, nil
}

// MustGenerate is Generate that panics on error; for tests and examples
// with known-valid specs.
func MustGenerate(spec RoadNetworkSpec) *Graph {
	g, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return g
}

func dist(a, b spatial.Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
