package network

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateSmallNetwork(t *testing.T) {
	spec := RoadNetworkSpec{Name: "test", Nodes: 500, UndirectedEdges: 650, Seed: 42}
	g, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.NumNodes() != 500 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 2*650 {
		t.Errorf("NumEdges = %d, want %d (two-way roads)", g.NumEdges(), 2*650)
	}
	if got := g.ConnectedComponents(); got != 1 {
		t.Errorf("generated network has %d components, want 1", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := RoadNetworkSpec{Name: "det", Nodes: 300, UndirectedEdges: 400, Seed: 7}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Coord(i) != b.Coord(i) {
			t.Fatalf("coords differ at node %d", i)
		}
		var sa, sb []int
		a.Successors(i, func(v int) { sa = append(sa, v) })
		b.Successors(i, func(v int) { sb = append(sb, v) })
		if len(sa) != len(sb) {
			t.Fatalf("adjacency differs at node %d", i)
		}
		for k := range sa {
			if sa[k] != sb[k] {
				t.Fatalf("adjacency differs at node %d", i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(RoadNetworkSpec{Nodes: 300, UndirectedEdges: 400, Seed: 1})
	b := MustGenerate(RoadNetworkSpec{Nodes: 300, UndirectedEdges: 400, Seed: 2})
	same := true
	for i := 0; i < a.NumNodes() && same; i++ {
		if a.Coord(i) != b.Coord(i) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical layouts")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(RoadNetworkSpec{Nodes: 1, UndirectedEdges: 5}); err == nil {
		t.Error("single-node spec accepted")
	}
	if _, err := Generate(RoadNetworkSpec{Nodes: 10, UndirectedEdges: 3}); err == nil {
		t.Error("under-connected spec accepted")
	}
}

func TestGenerateEdgesAreLocal(t *testing.T) {
	// Roads connect spatial neighbors: verify the mean edge length is
	// far below the diameter of the area.
	g := MustGenerate(RoadNetworkSpec{Nodes: 1000, UndirectedEdges: 1300, Seed: 3})
	side := math.Sqrt(1000.0)
	total, n := 0.0, 0
	for u := 0; u < g.NumNodes(); u++ {
		g.Successors(u, func(v int) {
			total += dist(g.Coord(u), g.Coord(v))
			n++
		})
	}
	mean := total / float64(n)
	if mean > side/4 {
		t.Errorf("mean edge length %g too large for side %g: network is not local", mean, side)
	}
}

func TestMunichAndNASpecsScaled(t *testing.T) {
	// Full-size specs are exercised by the harness at -scale full; tests
	// verify the scaled variants keep the density ratios.
	m := MunichSpec(1).Scaled(100)
	if m.Nodes != 731 || m.UndirectedEdges != 939 {
		t.Errorf("Munich/100 = %d nodes %d edges", m.Nodes, m.UndirectedEdges)
	}
	na := NorthAmericaSpec(1).Scaled(100)
	if na.Nodes != 1758 || na.UndirectedEdges != 1791 {
		t.Errorf("NA/100 = %d nodes %d edges", na.Nodes, na.UndirectedEdges)
	}
	// Scaled(1) and below is the identity.
	if s := MunichSpec(1).Scaled(1); s.Nodes != 73120 {
		t.Errorf("Scaled(1) changed the spec: %+v", s)
	}

	gm := MustGenerate(m)
	if gm.ConnectedComponents() != 1 {
		t.Error("scaled Munich not connected")
	}
	gna := MustGenerate(na)
	if gna.ConnectedComponents() != 1 {
		t.Error("scaled NA not connected")
	}
	// NA must be sparser than Munich (average degree 2.04 vs 2.57).
	degM := float64(gm.NumEdges()) / float64(gm.NumNodes())
	degNA := float64(gna.NumEdges()) / float64(gna.NumNodes())
	if degNA >= degM {
		t.Errorf("NA degree %g should be below Munich degree %g", degNA, degM)
	}
}

func TestGeneratedTransitionMatrixValid(t *testing.T) {
	g := MustGenerate(RoadNetworkSpec{Nodes: 400, UndirectedEdges: 520, Seed: 9})
	m := g.TransitionMatrix(rand.New(rand.NewSource(9)))
	if err := m.CheckStochastic(1e-9); err != nil {
		t.Fatalf("road-network transition matrix invalid: %v", err)
	}
	// Each undirected road contributes two non-zeros per the paper.
	if m.NNZ() < g.NumEdges() {
		t.Errorf("NNZ = %d below directed edge count %d", m.NNZ(), g.NumEdges())
	}
}
