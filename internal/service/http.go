package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/store"
	"ust/internal/wire"
	"ust/query"
)

// The HTTP/NDJSON front end over a Service. Routes (all bodies JSON
// unless noted):
//
//	GET    /healthz                     liveness
//	GET    /readyz                      readiness (startup load, drain)
//	GET    /metrics                     Prometheus text format
//	GET    /v1/datasets                 list datasets
//	GET    /v1/datasets/{name}          one dataset's info
//	PUT    /v1/datasets/{name}          create from binary store bytes
//	DELETE /v1/datasets/{name}          drop
//	POST   /v1/datasets/{name}/observe  ingest one observation
//	POST   /v1/datasets/{name}/objects  track a new object
//	POST   /v1/query                    batch query → wire.Response
//	POST   /v1/query/stream             query → NDJSON wire.StreamLine
//	POST   /v1/subscribe                standing query → NDJSON wire.Update
//	POST   /v1/factors                  aggregate factor decomposition
//	POST   /v1/datasets/{name}/import   migration batch (binary, ?gen=N)
//	POST   /v1/datasets/{name}/evict    migration eviction (wire.Evict)
//	POST   /v1/sweeps/acquire           sweep lease acquire (long-poll)
//	POST   /v1/sweeps/fill              publish payload under a lease
//	POST   /v1/sweeps/release           abandon a lease
//
// Streaming responses flush per line; closing the connection cancels
// the evaluation (the request context propagates into the engine).

// maxRequestBody bounds JSON request bodies (dataset uploads are
// allowed maxUploadBody). streamWriteTimeout bounds each single NDJSON
// write: a client that stops reading gets its connection killed instead
// of pinning server resources — for /v1/query/stream that matters
// doubly, because the generator holds the dataset's read lock while
// streaming and a stalled reader would otherwise block ingest (and,
// through RWMutex writer priority, every other query on the dataset)
// indefinitely.
const (
	maxRequestBody     = 16 << 20
	maxUploadBody      = 1 << 30
	streamWriteTimeout = 30 * time.Second
)

// lineWriter wraps per-line NDJSON writing with a fresh write deadline
// per line and an optional flush.
type lineWriter struct {
	w   http.ResponseWriter
	rc  *http.ResponseController
	enc *json.Encoder
	fl  http.Flusher
}

func newLineWriter(w http.ResponseWriter) *lineWriter {
	lw := &lineWriter{w: w, rc: http.NewResponseController(w), enc: json.NewEncoder(w)}
	lw.fl, _ = w.(http.Flusher)
	return lw
}

// clearDeadline removes the per-line write deadline so a keep-alive
// connection is not poisoned for its next request.
func (lw *lineWriter) clearDeadline() {
	lw.rc.SetWriteDeadline(time.Time{}) //nolint:errcheck
}

// writeLine encodes one NDJSON line and flushes it, bounded by
// streamWriteTimeout. Returns false when the client went away (or
// stalled past the deadline).
func (lw *lineWriter) writeLine(v any) bool {
	lw.rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout)) //nolint:errcheck // unsupported writers just stay unbounded
	if err := lw.enc.Encode(v); err != nil {
		return false
	}
	if lw.fl != nil {
		lw.fl.Flush()
	}
	return true
}

// NewHandler builds the HTTP front end over svc. Every route is
// instrumented: handling latency lands in the per-endpoint, per-outcome
// ust_request_duration_seconds histogram and the per-status
// ust_http_requests_total counter, so client-observed latency (what an
// open-loop driver like ustload measures) can be correlated with
// server-observed handling time.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, svc.instrument(endpoint, h))
	}
	handle("GET /healthz", "healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handle("GET /readyz", "readyz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness ≠ readiness: the process answers /healthz from the
		// moment it listens, but /readyz only once startup loading is done
		// and until drain begins — the signal a load balancer or the
		// coordinator's worker probe should route on.
		if !svc.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Deliberately uninstrumented: scrapes must not perturb the
		// latency distributions they read.
		svc.writeMetrics(w)
	})
	handle("GET /v1/datasets", "datasets", func(w http.ResponseWriter, r *http.Request) {
		infos := svc.Datasets()
		out := make([]wire.DatasetInfo, len(infos))
		for i, in := range infos {
			out[i] = wireInfo(in)
		}
		writeJSON(w, http.StatusOK, out)
	})
	handle("GET /v1/datasets/{name}", "datasets", func(w http.ResponseWriter, r *http.Request) {
		info, err := svc.Info(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, wireInfo(info))
	})
	handle("PUT /v1/datasets/{name}", "datasets", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if err := svc.Load(name, io.LimitReader(r.Body, maxUploadBody)); err != nil {
			writeError(w, err)
			return
		}
		info, err := svc.Info(name)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, wireInfo(info))
	})
	handle("DELETE /v1/datasets/{name}", "datasets", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.Drop(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "dropped"})
	})
	handle("POST /v1/datasets/{name}/observe", "observe", svc.handleObserve)
	handle("POST /v1/datasets/{name}/objects", "track", svc.handleTrack)
	handle("POST /v1/query", "query", svc.handleQuery)
	handle("POST /v1/query/stream", "stream", svc.handleQueryStream)
	handle("POST /v1/subscribe", "subscribe", svc.handleSubscribe)
	handle("POST /v1/factors", "factors", svc.handleFactors)
	handle("POST /v1/datasets/{name}/import", "import", svc.handleImport)
	handle("POST /v1/datasets/{name}/evict", "evict", svc.handleEvict)
	handle("POST /v1/sweeps/acquire", "sweeps", svc.handleSweepAcquire)
	handle("POST /v1/sweeps/fill", "sweeps", svc.handleSweepFill)
	handle("POST /v1/sweeps/release", "sweeps", svc.handleSweepRelease)
	return mux
}

func wireInfo(in Info) wire.DatasetInfo {
	return wire.DatasetInfo{Name: in.Name, Objects: in.Objects, States: in.States, Version: in.Version}
}

// decodeEnvelope reads and strictly decodes a query envelope body. The
// request may arrive in either form: the structured wire shape
// ("request") or the text query language ("query"), parsed server-side
// — the same compound queries, rankings and strategy hints either way.
func decodeEnvelope(r *http.Request) (string, core.Request, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		return "", core.Request{}, fmt.Errorf("%w: reading body: %v", wire.ErrDecode, err)
	}
	var env wire.QueryEnvelope
	if err := wire.StrictUnmarshal(body, &env); err != nil {
		return "", core.Request{}, err
	}
	switch {
	case env.Request != nil && env.Query != "":
		return "", core.Request{}, fmt.Errorf("%w: envelope carries both request and query", wire.ErrDecode)
	case env.Request != nil:
		req, err := env.Request.ToRequest()
		if err != nil {
			return "", core.Request{}, err
		}
		return env.Dataset, req, nil
	case env.Query != "":
		req, err := query.Parse(env.Query)
		if err != nil {
			return "", core.Request{}, fmt.Errorf("%w: %v", wire.ErrDecode, err)
		}
		return env.Dataset, req, nil
	default:
		return "", core.Request{}, fmt.Errorf("%w: envelope carries neither request nor query", wire.ErrDecode)
	}
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	name, req, err := decodeEnvelope(r)
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.Evaluate(r.Context(), name, req)
	if err != nil {
		writeError(w, err)
		return
	}
	out, err := wire.FromResponse(resp)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	name, req, err := decodeEnvelope(r)
	if err != nil {
		writeError(w, err)
		return
	}
	// An aggregate request's answer is one distribution, not a result
	// stream; serve it on this endpoint anyway (curl-friendly NDJSON) as
	// exactly one agg line followed by the done marker, going through
	// Evaluate so admission and single-flight coalescing apply.
	if _, isAgg := req.AggregateHint(); isAgg {
		resp, aerr := s.Evaluate(r.Context(), name, req)
		if aerr != nil {
			writeError(w, aerr)
			return
		}
		out, aerr := wire.FromResponse(resp)
		if aerr != nil {
			writeError(w, aerr)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		lw := newLineWriter(w)
		defer lw.clearDeadline()
		if lw.writeLine(wire.StreamLine{Agg: out.Agg}) {
			lw.writeLine(wire.StreamLine{Done: true})
		}
		return
	}
	// Pull the first element before committing the 200/NDJSON header:
	// request-level failures (unknown dataset, missing resolver,
	// admission timeout) surface as the stream's first yield and must
	// map to proper HTTP statuses, not a 200 with an error line.
	next, stop := iter.Pull2(s.Stream(r.Context(), name, req))
	defer stop()
	first, firstErr, ok := next()
	if ok && firstErr != nil {
		writeError(w, firstErr)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	lw := newLineWriter(w)
	defer lw.clearDeadline()
	count := 0
	emit := func(res core.Result) bool {
		wr := wire.FromResult(res)
		if !lw.writeLine(wire.StreamLine{Result: &wr}) {
			return false // client went away or stalled
		}
		count++
		return true
	}
	if ok {
		if !emit(first) {
			return
		}
		for {
			res, serr, more := next()
			if !more {
				break
			}
			if serr != nil {
				lw.writeLine(wire.StreamLine{Error: serr.Error()})
				return
			}
			if !emit(res) {
				return
			}
		}
	}
	lw.writeLine(wire.StreamLine{Done: true, Count: count})
}

func (s *Service) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	name, req, err := decodeEnvelope(r)
	if err != nil {
		writeError(w, err)
		return
	}
	sub, err := s.Subscribe(r.Context(), name, req)
	if err != nil {
		writeError(w, err)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	lw := newLineWriter(w)
	defer lw.clearDeadline()
	for up := range sub.Updates() {
		line := wire.Update{
			Seq:     up.Seq,
			Version: up.Version,
			Full:    up.Full,
			Results: wire.FromResults(up.Results),
			Removed: up.Removed,
		}
		if line.Results == nil {
			line.Results = []wire.Result{}
		}
		if !lw.writeLine(line) {
			return // client went away or stalled
		}
	}
	if err := sub.Err(); err != nil {
		lw.writeLine(wire.Update{Error: err.Error()})
	}
}

func (s *Service) handleObserve(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", wire.ErrDecode, err))
		return
	}
	var payload struct {
		Object int `json:"object"`
		wire.Observation
	}
	if err := wire.StrictUnmarshal(body, &payload); err != nil {
		writeError(w, err)
		return
	}
	info, err := s.Info(name)
	if err != nil {
		writeError(w, err)
		return
	}
	obs, err := toObservation(info.States, payload.Observation)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.Observe(name, payload.Object, obs); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "observed"})
}

func (s *Service) handleTrack(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", wire.ErrDecode, err))
		return
	}
	var payload wire.Object
	if err := wire.StrictUnmarshal(body, &payload); err != nil {
		writeError(w, err)
		return
	}
	info, err := s.Info(name)
	if err != nil {
		writeError(w, err)
		return
	}
	obs := make([]core.Observation, 0, len(payload.Observations))
	for _, wo := range payload.Observations {
		o, oerr := toObservation(info.States, wo)
		if oerr != nil {
			writeError(w, oerr)
			return
		}
		obs = append(obs, o)
	}
	obj, err := core.NewObject(payload.ID, nil, obs...)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", wire.ErrDecode, err))
		return
	}
	if err := s.Track(name, obj); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "tracked"})
}

// handleFactors answers the distributed aggregate protocol: the factor
// decomposition of an aggregate request, for the coordinator to fold in
// canonical order across workers.
func (s *Service) handleFactors(w http.ResponseWriter, r *http.Request) {
	name, req, err := decodeEnvelope(r)
	if err != nil {
		writeError(w, err)
		return
	}
	fs, err := s.AggregateFactors(r.Context(), name, req)
	if err != nil {
		writeError(w, err)
		return
	}
	out, err := wire.FromFactorSet(fs)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleImport applies one migration batch: binary store bytes in the
// body, the generation fence in the ?gen query parameter.
func (s *Service) handleImport(w http.ResponseWriter, r *http.Request) {
	gen, err := strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("%w: bad gen parameter: %v", wire.ErrDecode, err))
		return
	}
	image, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBody))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", wire.ErrDecode, err))
		return
	}
	if err := s.ImportObjects(r.PathValue("name"), gen, image); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "imported"})
}

func (s *Service) handleEvict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", wire.ErrDecode, err))
		return
	}
	var ev wire.Evict
	if err := wire.StrictUnmarshal(body, &ev); err != nil {
		writeError(w, err)
		return
	}
	if err := s.EvictObjects(r.PathValue("name"), ev.Gen, ev.IDs); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "evicted"})
}

// --- sweep lease endpoints -------------------------------------------------
//
// The wire face of the SweepBoard. Acquire long-polls while another
// worker holds the lease — the connection going away cancels the wait
// through the request context, which is what lets a waiting worker fall
// back to local compute on its own deadline.

func (s *Service) handleSweepAcquire(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", wire.ErrDecode, err))
		return
	}
	var req wire.SweepAcquire
	if err := wire.StrictUnmarshal(body, &req); err != nil {
		writeError(w, err)
		return
	}
	payload, lease, err := s.sweeps.Acquire(r.Context(), req.Key)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.SweepGrant{Payload: payload, Lease: lease})
}

func (s *Service) handleSweepFill(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBody))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", wire.ErrDecode, err))
		return
	}
	var req wire.SweepFill
	if err := wire.StrictUnmarshal(body, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.sweeps.Fill(r.Context(), req.Key, req.Lease, req.Payload); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "filled"})
}

func (s *Service) handleSweepRelease(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", wire.ErrDecode, err))
		return
	}
	var req wire.SweepRelease
	if err := wire.StrictUnmarshal(body, &req); err != nil {
		writeError(w, err)
		return
	}
	s.sweeps.Release(r.Context(), req.Key, req.Lease)
	writeJSON(w, http.StatusOK, map[string]string{"status": "released"})
}

// toObservation grounds a wire observation against a state-space size
// (the wire form is a sparse pdf without an explicit dimension).
func toObservation(numStates int, wo wire.Observation) (core.Observation, error) {
	pdf, err := markov.WeightedOver(numStates, wo.States, wo.Probs)
	if err != nil {
		return core.Observation{}, fmt.Errorf("%w: %v", wire.ErrDecode, err)
	}
	return core.Observation{Time: wo.Time, PDF: pdf}, nil
}

// writeError maps service/wire errors onto HTTP statuses with a JSON
// error body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownDataset):
		status = http.StatusNotFound
	case errors.Is(err, ErrDatasetExists), errors.Is(err, ErrStaleGeneration),
		errors.Is(err, ErrStaleLease):
		status = http.StatusConflict
	case errors.Is(err, ErrOverloaded):
		// 429, not 503: the server is up but admission control shed the
		// request — the signal an open-loop client should back off on,
		// and distinct from the retryable 5xx family (hammering an
		// overloaded server with retries makes the overload worse).
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, wire.ErrDecode), errors.Is(err, ErrNoResolver),
		errors.Is(err, ErrBadIngest), errors.Is(err, store.ErrCorrupt),
		errors.Is(err, core.ErrAggregateStream):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, wire.ErrorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeMetrics emits the Prometheus text exposition of the service
// counters — including the single-flight coalescing counter that makes
// request deduplication observable from the outside.
func (s *Service) writeMetrics(w http.ResponseWriter) {
	st := s.Stats()
	cs := s.CacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	mf := func(name, help, typ string, v any, labels string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s%s %v\n", name, help, name, typ, name, labels, v)
	}
	role := s.cfg.Role
	if role == "" {
		role = "server"
	}
	mf("ust_role", "Deployment role of this process (server, coordinator, worker).", "gauge", 1,
		fmt.Sprintf("{role=\"%s\"}", promLabel(role)))
	mf("ust_ring_members", "Evaluation ring width (shards in-process, workers for a coordinator).", "gauge",
		s.ringMembers.Load(), "")
	if s.cfg.WorkerHealth != nil {
		if snap := s.cfg.WorkerHealth(); len(snap) > 0 {
			fmt.Fprintf(w, "# HELP ust_worker_healthy Probed worker liveness as seen by this coordinator (1 = serving reads).\n# TYPE ust_worker_healthy gauge\n")
			for _, wh := range snap {
				v := 0
				if wh.Healthy {
					v = 1
				}
				fmt.Fprintf(w, "ust_worker_healthy{worker=\"%s\"} %d\n", promLabel(wh.Worker), v)
			}
		}
	}
	mf("ust_requests_total", "Evaluation requests accepted.", "counter", st.Requests, "")
	mf("ust_singleflight_coalesced_total", "Requests answered by joining an identical in-flight evaluation.", "counter", st.Coalesced, "")
	mf("ust_evaluations_total", "Evaluations actually executed.", "counter", st.Evaluations, "")
	mf("ust_rejected_total", "Requests rejected by admission control.", "counter", st.Rejected, "")
	mf("ust_ingest_total", "Observation/object mutations.", "counter", st.Ingests, "")
	mf("ust_subscription_updates_total", "Subscription updates delivered.", "counter", st.Updates, "")
	mf("ust_subscriptions", "Active subscriptions.", "gauge", st.Subscriptions, "")
	mf("ust_in_flight", "Evaluations currently holding an admission slot.", "gauge", st.InFlight, "")
	mf("ust_score_cache_hits_total", "Engine score-cache hits across datasets.", "counter", cs.Hits, "")
	mf("ust_score_cache_misses_total", "Engine score-cache misses across datasets.", "counter", cs.Misses, "")
	mf("ust_score_cache_bytes", "Engine score-cache residency across datasets.", "gauge", cs.Bytes, "")
	for _, info := range s.Datasets() {
		label := promLabel(info.Name)
		fmt.Fprintf(w, "ust_dataset_objects{dataset=\"%s\"} %d\n", label, info.Objects)
		fmt.Fprintf(w, "ust_dataset_version{dataset=\"%s\"} %d\n", label, info.Version)
	}
	s.httpMetrics.write(w)
}

// promLabel escapes a label value per the Prometheus text exposition
// format (only \\, \" and \n are defined; Go's %q would emit escapes
// scrapers reject). Other control characters are dropped.
func promLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch {
		case r == '\\':
			b.WriteString(`\\`)
		case r == '"':
			b.WriteString(`\"`)
		case r == '\n':
			b.WriteString(`\n`)
		case r < 0x20 || r == 0x7f:
			// undefined in the exposition format; drop
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
