package service

// HTTP-layer tests for the endpoints the distributed deployment added:
// /readyz gating, role/ring-size metrics, factor fetches, the
// generation-fenced import/evict migration endpoints, ingest handlers,
// and the sweep lease tier over the wire.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/store"
	"ust/internal/wire"
)

func distTestServer(t *testing.T, cfg Config) (*Service, string) {
	t.Helper()
	svc := New(cfg)
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() { svc.Close(); ts.Close() })
	return svc, ts.URL
}

// TestReadyzGate pins liveness ≠ readiness: /healthz always answers
// 200 while /readyz follows SetReady — 503 during startup load and
// drain, 200 in between.
func TestReadyzGate(t *testing.T) {
	svc, base := distTestServer(t, Config{})

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz: %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz while ready: %d", got)
	}
	svc.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while unready: %d", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz must stay live while unready: %d", got)
	}
	svc.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after recovery: %d", got)
	}
}

// TestMetricsRoleAndRing pins the deployment labels: ust_role carries
// the configured role, ust_ring_members the ring width.
func TestMetricsRoleAndRing(t *testing.T) {
	svc, base := distTestServer(t, Config{Role: "coordinator"})
	svc.SetRingMembers(3)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`ust_role{role="coordinator"} 1`, "ust_ring_members 3"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestFactorsEndpoint fetches aggregate factors over HTTP and checks
// them against the engine's own factor set.
func TestFactorsEndpoint(t *testing.T) {
	_, base := distTestServer(t, Config{})
	req := core.NewAggRequest(core.PredicateExists, core.AggSpec{Kind: core.AggCount},
		core.WithStates([]int{0, 1}), core.WithTimes([]int{1, 2}))
	wreq, err := wire.FromRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire.QueryEnvelope{Dataset: "d", Request: &wreq})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/factors", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("factors: %d %s", resp.StatusCode, raw)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := wire.DecodeFactorSet(raw)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewEngine(paperDB(t), core.Options{})
	want, err := ref.AggregateFactors(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Factors) != len(want.Factors) {
		t.Fatalf("factors over HTTP: %d, want %d", len(fs.Factors), len(want.Factors))
	}
	for i := range want.Factors {
		if fs.Factors[i].ID != want.Factors[i].ID {
			t.Fatalf("factor %d id %d, want %d", i, fs.Factors[i].ID, want.Factors[i].ID)
		}
	}
}

// TestImportEvictEndpoints drives the migration endpoints raw: a fenced
// import lands, a replayed generation 409s, an evict at a higher
// generation removes the object, and chains canonicalize by
// fingerprint (the imported object's chain equals the dataset default,
// so the worker keeps one chain group).
func TestImportEvictEndpoints(t *testing.T) {
	svc, base := distTestServer(t, Config{})

	chain, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := core.NewDatabase(chain)
	batch.MustAdd(core.MustObject(500, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	var buf bytes.Buffer
	if err := store.SaveDatabase(&buf, batch); err != nil {
		t.Fatal(err)
	}
	image := buf.Bytes()

	post := func(path string, ct string, body []byte) int {
		t.Helper()
		resp, err := http.Post(base+path, ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("/v1/datasets/d/import?gen=1", "application/octet-stream", image); got != http.StatusOK {
		t.Fatalf("import: %d", got)
	}
	info, err := svc.Info("d")
	if err != nil || info.Objects != 2 {
		t.Fatalf("after import: %+v err=%v", info, err)
	}
	// Replay: same generation must 409 and change nothing.
	if got := post("/v1/datasets/d/import?gen=1", "application/octet-stream", image); got != http.StatusConflict {
		t.Fatalf("replayed import: %d, want 409", got)
	}
	// Missing/garbled gen is a 400.
	if got := post("/v1/datasets/d/import?gen=x", "application/octet-stream", image); got != http.StatusBadRequest {
		t.Fatalf("bad gen: %d, want 400", got)
	}

	ev, _ := json.Marshal(wire.Evict{Gen: 2, IDs: []int{500}})
	if got := post("/v1/datasets/d/evict", "application/json", ev); got != http.StatusOK {
		t.Fatalf("evict: %d", got)
	}
	info, err = svc.Info("d")
	if err != nil || info.Objects != 1 {
		t.Fatalf("after evict: %+v err=%v", info, err)
	}
	// Evicting an unknown id fails without changing the fence direction.
	ev, _ = json.Marshal(wire.Evict{Gen: 3, IDs: []int{9999}})
	if got := post("/v1/datasets/d/evict", "application/json", ev); got/100 == 2 {
		t.Fatalf("evict of unknown id: %d, want error", got)
	}
}

// TestObserveTrackEndpoints covers the ingest handlers raw: track a new
// object, observe it again, and reject malformed bodies.
func TestObserveTrackEndpoints(t *testing.T) {
	svc, base := distTestServer(t, Config{})

	track := `{"id":700,"observations":[{"time":0,"states":[1],"probs":[1]}]}`
	resp, err := http.Post(base+"/v1/datasets/d/objects", "application/json", strings.NewReader(track))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("track: %d", resp.StatusCode)
	}
	obs := `{"object":700,"time":2,"states":[1],"probs":[1]}`
	resp, err = http.Post(base+"/v1/datasets/d/observe", "application/json", strings.NewReader(obs))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("observe: %d", resp.StatusCode)
	}
	info, err := svc.Info("d")
	if err != nil || info.Objects != 2 {
		t.Fatalf("after track: %+v err=%v", info, err)
	}
	resp, err = http.Post(base+"/v1/datasets/d/observe", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed observe: %d, want 400", resp.StatusCode)
	}
}

// TestSweepEndpoints drives the lease tier over raw HTTP: acquire
// grants a lease, fill publishes, a second acquire adopts the payload,
// and a stale fill 409s.
func TestSweepEndpoints(t *testing.T) {
	svc, base := distTestServer(t, Config{})
	key := core.SweepKey{Chain: 9, Kind: 1, Sig: 0xfeed, T0: 3}

	post := func(path string, in any, out any) int {
		t.Helper()
		body, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode
	}

	var grant wire.SweepGrant
	if got := post("/v1/sweeps/acquire", wire.SweepAcquire{Key: key}, &grant); got != http.StatusOK {
		t.Fatalf("acquire: %d", got)
	}
	if grant.Lease == "" || grant.Payload != nil {
		t.Fatalf("first acquire: %+v", grant)
	}
	payload := []byte{0x75, 9, 9}
	if got := post("/v1/sweeps/fill", wire.SweepFill{Key: key, Lease: grant.Lease, Payload: payload}, nil); got != http.StatusOK {
		t.Fatalf("fill: %d", got)
	}
	var adopted wire.SweepGrant
	if got := post("/v1/sweeps/acquire", wire.SweepAcquire{Key: key}, &adopted); got != http.StatusOK {
		t.Fatalf("second acquire: %d", got)
	}
	if adopted.Lease != "" || !bytes.Equal(adopted.Payload, payload) {
		t.Fatalf("adoption: %+v", adopted)
	}
	if got := post("/v1/sweeps/fill", wire.SweepFill{Key: key, Lease: "L999", Payload: payload}, nil); got != http.StatusConflict {
		t.Fatalf("stale fill: %d, want 409", got)
	}
	// Release of a fresh key's lease wakes nobody but must succeed.
	key2 := core.SweepKey{Chain: 9, Kind: 1, Sig: 0xbeef, T0: 4}
	var g2 wire.SweepGrant
	if got := post("/v1/sweeps/acquire", wire.SweepAcquire{Key: key2}, &g2); got != http.StatusOK {
		t.Fatalf("acquire key2: %d", got)
	}
	if got := post("/v1/sweeps/release", wire.SweepRelease{Key: key2, Lease: g2.Lease}, nil); got != http.StatusOK {
		t.Fatalf("release: %d", got)
	}
	if st := svc.Sweeps().Stats(); st.Fills != 1 || st.Served != 1 || st.Leases != 2 {
		t.Fatalf("board stats: %+v", st)
	}
}
