package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestStreamStatusOnBadRequest pins that request-level failures on the
// streaming endpoint surface as proper HTTP statuses — the handler must
// not commit a 200/NDJSON header before validation.
func TestStreamStatusOnBadRequest(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	cases := map[string]struct {
		body   string
		status int
	}{
		"unknown dataset":         {`{"dataset":"nope","request":{"predicate":"exists","states":[0],"times":[1]}}`, http.StatusNotFound},
		"region without resolver": {`{"dataset":"d","request":{"predicate":"exists","region":{"type":"rect","min":[0,0],"max":[1,1]},"times":[1]}}`, http.StatusBadRequest},
	}
	for name, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/query/stream", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.status)
		}
	}
}

// TestMetricsShowCoalescing pins the acceptance criterion end to end:
// N identical concurrent HTTP requests coalesce into one evaluation,
// and the dedup is observable in the /metrics single-flight counter.
func TestMetricsShowCoalescing(t *testing.T) {
	const followers = 5
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", widerDB(t, 8), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var enterOnce sync.Once
	testHookEvalStart = func() {
		enterOnce.Do(func() { close(entered) })
		<-release
	}
	defer func() { testHookEvalStart = nil }()

	body := `{"dataset":"d","request":{"predicate":"exists","states":[0,1],"times":[2,3]}}`
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("status %s: %s", resp.Status, data)
		}
		_, err = io.ReadAll(resp.Body)
		return err
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := post(); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-entered // leader holds the flight slot inside the evaluation
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := post(); err != nil {
				t.Errorf("follower: %v", err)
			}
		}()
	}
	waitFor(t, "followers to coalesce", func() bool {
		return svc.Stats().Coalesced == followers
	})
	close(release)
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("ust_singleflight_coalesced_total %d", followers),
		"ust_evaluations_total 1\n",
		fmt.Sprintf("ust_requests_total %d", followers+1),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
