package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Server-side request latency: ust_request_duration_seconds histograms
// labelled by endpoint and outcome, plus ust_http_requests_total
// counters labelled by endpoint and status code. This is the server
// half of the latency-correlation story — ustload records what clients
// observe, these buckets record what the server spent, and the gap
// between them is queueing (network, kernel, admission).
//
// Buckets follow the Prometheus convention (cumulative, le-labelled,
// +Inf implicit in _count). The bounds ladder from 1ms to 10s — wide
// enough that a subscribe held open for seconds lands in a real bucket
// instead of saturating +Inf.

var durationBuckets = [...]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// durationHist is one (endpoint, outcome) histogram: atomic per-bucket
// counters, non-cumulative in memory (summed at exposition).
type durationHist struct {
	buckets [len(durationBuckets) + 1]atomic.Uint64 // last = overflow (+Inf)
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

func (h *durationHist) observe(d time.Duration) {
	sec := d.Seconds()
	idx := len(durationBuckets)
	for i, ub := range durationBuckets {
		if sec <= ub {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	if d > 0 {
		h.sumNs.Add(uint64(d))
	}
}

type durationKey struct{ endpoint, outcome string }
type codeKey struct {
	endpoint string
	code     int
}

// httpMetrics aggregates the per-endpoint instrumentation. Keys are a
// small fixed population (endpoints × outcomes), so a RWMutex-guarded
// map with atomic leaves keeps the record path contention-free after
// first sight of each pair.
type httpMetrics struct {
	mu        sync.RWMutex
	durations map[durationKey]*durationHist
	codes     map[codeKey]*atomic.Uint64
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{
		durations: map[durationKey]*durationHist{},
		codes:     map[codeKey]*atomic.Uint64{},
	}
}

// outcomeOf maps an HTTP status onto the outcome label: ok (2xx/3xx),
// overloaded (429 — admission control), client_error (other 4xx),
// error (5xx).
func outcomeOf(code int) string {
	switch {
	case code == http.StatusTooManyRequests:
		return "overloaded"
	case code >= 500:
		return "error"
	case code >= 400:
		return "client_error"
	default:
		return "ok"
	}
}

func (m *httpMetrics) observe(endpoint string, code int, d time.Duration) {
	dk := durationKey{endpoint, outcomeOf(code)}
	ck := codeKey{endpoint, code}
	m.mu.RLock()
	h, hok := m.durations[dk]
	c, cok := m.codes[ck]
	m.mu.RUnlock()
	if !hok || !cok {
		m.mu.Lock()
		if h, hok = m.durations[dk]; !hok {
			h = &durationHist{}
			m.durations[dk] = h
		}
		if c, cok = m.codes[ck]; !cok {
			c = &atomic.Uint64{}
			m.codes[ck] = c
		}
		m.mu.Unlock()
	}
	h.observe(d)
	c.Add(1)
}

// write emits the exposition lines, deterministically ordered.
func (m *httpMetrics) write(w io.Writer) {
	m.mu.RLock()
	dkeys := make([]durationKey, 0, len(m.durations))
	for k := range m.durations {
		dkeys = append(dkeys, k)
	}
	ckeys := make([]codeKey, 0, len(m.codes))
	for k := range m.codes {
		ckeys = append(ckeys, k)
	}
	m.mu.RUnlock()
	sort.Slice(dkeys, func(a, b int) bool {
		if dkeys[a].endpoint != dkeys[b].endpoint {
			return dkeys[a].endpoint < dkeys[b].endpoint
		}
		return dkeys[a].outcome < dkeys[b].outcome
	})
	sort.Slice(ckeys, func(a, b int) bool {
		if ckeys[a].endpoint != ckeys[b].endpoint {
			return ckeys[a].endpoint < ckeys[b].endpoint
		}
		return ckeys[a].code < ckeys[b].code
	})

	if len(dkeys) > 0 {
		fmt.Fprint(w, "# HELP ust_request_duration_seconds Server-side request handling latency by endpoint and outcome.\n# TYPE ust_request_duration_seconds histogram\n")
		for _, k := range dkeys {
			m.mu.RLock()
			h := m.durations[k]
			m.mu.RUnlock()
			labels := fmt.Sprintf("endpoint=\"%s\",outcome=\"%s\"", promLabel(k.endpoint), promLabel(k.outcome))
			var cum uint64
			for i, ub := range durationBuckets {
				cum += h.buckets[i].Load()
				fmt.Fprintf(w, "ust_request_duration_seconds_bucket{%s,le=\"%g\"} %d\n", labels, ub, cum)
			}
			cum += h.buckets[len(durationBuckets)].Load()
			fmt.Fprintf(w, "ust_request_duration_seconds_bucket{%s,le=\"+Inf\"} %d\n", labels, cum)
			fmt.Fprintf(w, "ust_request_duration_seconds_sum{%s} %g\n", labels, float64(h.sumNs.Load())/1e9)
			fmt.Fprintf(w, "ust_request_duration_seconds_count{%s} %d\n", labels, h.count.Load())
		}
	}
	if len(ckeys) > 0 {
		fmt.Fprint(w, "# HELP ust_http_requests_total HTTP requests by endpoint and status code.\n# TYPE ust_http_requests_total counter\n")
		for _, k := range ckeys {
			m.mu.RLock()
			c := m.codes[k]
			m.mu.RUnlock()
			fmt.Fprintf(w, "ust_http_requests_total{endpoint=\"%s\",code=\"%d\"} %d\n",
				promLabel(k.endpoint), k.code, c.Load())
		}
	}
}

// statusWriter captures the response status for instrumentation while
// staying transparent to streaming handlers: Flush forwards, and Unwrap
// lets http.ResponseController reach the per-line write deadlines the
// NDJSON handlers set.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// instrument wraps a handler with duration/outcome recording under the
// given endpoint label. Long-lived endpoints (stream, subscribe) record
// their full connection lifetime — by design: that duration IS the
// serving cost of the request.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.httpMetrics.observe(endpoint, sw.code, time.Since(start))
	}
}
